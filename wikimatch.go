// Package repro is a from-scratch Go implementation of WikiMatch, the
// multilingual infobox schema-matching system of Nguyen, Moreira, Nguyen,
// Nguyen and Freire, "Multilingual Schema Matching for Wikipedia
// Infoboxes" (PVLDB 5(2), 2011).
//
// The package is a facade over the repository's subsystems:
//
//   - a Wikipedia data model with wikitext and XML-dump parsing
//     (internal/wiki, internal/dump);
//   - a seeded synthetic multilingual Wikipedia standing in for the
//     paper's Portuguese/Vietnamese/English dumps (internal/synth);
//   - the WikiMatch matcher — LSI-ordered candidate alignment with
//     IntegrateMatches and ReviseUncertain (internal/core, internal/lsi,
//     internal/sim, internal/dict);
//   - the paper's baselines: LSI top-k, Bouma, and a COMA++-style
//     framework (internal/baselines);
//   - the evaluation machinery and the WikiQuery case study
//     (internal/eval, internal/query);
//   - runners for every table and figure in the paper
//     (internal/experiments).
//
// Quick start:
//
//	corpus, truth, _ := repro.GenerateCorpus(repro.SmallCorpus())
//	result := repro.Match(corpus, repro.PtEn)
//	for _, tr := range result.PerType {
//	    fmt.Println(tr.TypeA, "→", tr.CrossPairsSorted())
//	}
//	_ = truth
package repro

import (
	"context"
	"io"
	"net/http"
	"os"

	"repro/internal/audit"
	"repro/internal/baselines"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/dump"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/ingest"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/query"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/text"
	"repro/internal/wiki"
)

// Normalize lowercases, folds diacritics and collapses whitespace — the
// canonical form the matcher keys attribute names and titles by.
func Normalize(s string) string { return text.Normalize(s) }

// Core data model.
type (
	// Language is a Wikipedia language edition code ("en", "pt", "vi").
	Language = wiki.Language
	// LanguagePair names the two editions being matched.
	LanguagePair = wiki.LanguagePair
	// Article is a Wikipedia page with its infobox and cross-language
	// links.
	Article = wiki.Article
	// Infobox is the structured record of attribute–value pairs.
	Infobox = wiki.Infobox
	// Corpus is a multi-language article collection with the indices the
	// matcher needs.
	Corpus = wiki.Corpus
)

// Language editions and pairs used in the paper.
var (
	English    = wiki.English
	Portuguese = wiki.Portuguese
	Vietnamese = wiki.Vietnamese
	PtEn       = wiki.PtEn
	VnEn       = wiki.VnEn
)

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return wiki.NewCorpus() }

// ParsePage parses wikitext into an Article (infobox, categories,
// interlanguage links).
func ParsePage(lang Language, title, wikitext string) (*Article, error) {
	return wiki.ParsePage(lang, title, wikitext)
}

// Synthetic corpus generation.
type (
	// CorpusConfig controls the synthetic multilingual Wikipedia.
	CorpusConfig = synth.Config
	// GroundTruth carries the generator's alignment labels and entity
	// records.
	GroundTruth = synth.GroundTruth
)

// DefaultCorpus is the full-scale experiment configuration (the paper's
// dataset proportions at laptop scale).
func DefaultCorpus() CorpusConfig { return synth.DefaultConfig() }

// SmallCorpus is a fast configuration for tests and demos.
func SmallCorpus() CorpusConfig { return synth.SmallConfig() }

// GenerateCorpus builds the synthetic corpus and its ground truth.
func GenerateCorpus(cfg CorpusConfig) (*Corpus, *GroundTruth, error) {
	return synth.Generate(cfg)
}

// Multi-edition generation: a deterministic corpus over an arbitrary
// language list (ten or more editions, hyphenated long-tail codes,
// star-shaped cross-links through a hub) for exercising the pivot
// planner and the ingestion round trip.
type (
	// EditionsConfig sizes the multi-edition synthetic corpus.
	EditionsConfig = synth.EditionsConfig
	// EditionsTruth is its ground truth: canonical ids for every
	// localized type and attribute surface.
	EditionsTruth = synth.EditionsTruth
)

// DefaultEditionsCorpus is the 12-edition star configuration: English
// hub, no non-hub links, so every non-hub pair is transitive-only.
func DefaultEditionsCorpus() EditionsConfig { return synth.DefaultEditions() }

// GenerateEditions builds the multi-edition corpus and its truth.
func GenerateEditions(cfg EditionsConfig) (*Corpus, *EditionsTruth, error) {
	return synth.Editions(cfg)
}

// Real-dump ingestion (internal/ingest): streaming, bounded-memory
// loading of DBpedia infobox-properties / interlanguage-links N-Triples
// dumps and MediaWiki XML dumps into a corpus, with transparent
// gzip/bzip2 decoding, per-reason skip accounting and a language set
// driven entirely by the data.
type (
	// IngestSource is one dump input (language, format, path or reader).
	IngestSource = ingest.Source
	// IngestOptions configures an ingestion run (language filter,
	// workers, dry run, progress).
	IngestOptions = ingest.Options
	// IngestResult is a completed run: the corpus plus per-language
	// statistics.
	IngestResult = ingest.Result
	// IngestLangStats counts one edition's ingestion outcome.
	IngestLangStats = ingest.LangStats
	// IngestProgress reports one completed source file.
	IngestProgress = ingest.Progress
)

// Ingestion source formats.
const (
	// IngestTTL is a DBpedia N-Triples/TTL dump.
	IngestTTL = ingest.FormatTTL
	// IngestXML is a MediaWiki XML page dump.
	IngestXML = ingest.FormatXML
)

// IngestDir ingests every recognized dump file in a directory
// (<lang>-infobox-properties*.ttl, <lang>-interlanguage-links*.ttl,
// <lang>.xml, each optionally .gz/.bz2) into one corpus.
func IngestDir(ctx context.Context, dir string, opts IngestOptions) (*IngestResult, error) {
	return ingest.Dir(ctx, dir, opts)
}

// IngestRun ingests an explicit source list into one corpus.
func IngestRun(ctx context.Context, sources []IngestSource, opts IngestOptions) (*IngestResult, error) {
	return ingest.Run(ctx, sources, opts)
}

// ScanDumpDir discovers the dump sources IngestDir would load.
func ScanDumpDir(dir string) ([]IngestSource, error) { return ingest.ScanDir(dir) }

// WritePropertiesDump renders one edition's infoboxes as a DBpedia
// infobox-properties N-Triples dump — the inverse of IngestRun.
func WritePropertiesDump(w io.Writer, c *Corpus, lang Language) error {
	return ingest.WriteProperties(w, c, lang)
}

// WriteLinksDump renders one edition's cross-language links as a
// DBpedia interlanguage-links N-Triples dump (owl:sameAs).
func WriteLinksDump(w io.Writer, c *Corpus, lang Language) error {
	return ingest.WriteLinks(w, c, lang)
}

// DefaultHub is the hub edition an all-pairs batch resolves to when none
// is requested: English if the corpus has it, else the lexicographically
// first edition.
func DefaultHub(langs []Language) Language { return multi.DefaultHub(langs) }

// Dump I/O.

// LoadDump parses a MediaWiki XML dump into the corpus; lang overrides
// the dump's own language hint when non-empty.
func LoadDump(c *Corpus, r io.Reader, lang Language) (dump.LoadResult, error) {
	return dump.LoadCorpus(c, r, lang)
}

// WriteDump renders one language edition as a MediaWiki XML dump.
func WriteDump(w io.Writer, c *Corpus, lang Language) error {
	return dump.WriteCorpus(w, c, lang)
}

// Matching.
type (
	// MatcherConfig holds WikiMatch's thresholds and ablation switches.
	MatcherConfig = core.Config
	// Matcher runs WikiMatch.
	Matcher = core.Matcher
	// MatchResult is a full run over one language pair.
	MatchResult = core.Result
	// TypeMatchResult is the alignment outcome for one entity type.
	TypeMatchResult = core.TypeResult
	// Dictionary is a cross-language-link title dictionary.
	Dictionary = dict.Dictionary
)

// DefaultMatcherConfig returns the paper's configuration (Tsim = 0.6,
// TLSI = 0.1).
func DefaultMatcherConfig() MatcherConfig { return core.DefaultConfig() }

// NewMatcher creates a matcher.
func NewMatcher(cfg MatcherConfig) *Matcher { return core.NewMatcher(cfg) }

// Match runs WikiMatch with the paper's default configuration. It is a
// thin wrapper over a throwaway Session; callers doing more than one
// match should create a Session themselves so the per-pair dictionary
// and per-type LSI artifacts are built once and reused.
func Match(c *Corpus, pair LanguagePair) *MatchResult {
	res, _ := NewSession(c).Match(context.Background(), pair)
	return res
}

// Sessions: the long-lived service API.
type (
	// Session is a long-lived matching service over one corpus: it caches
	// per-pair dictionaries, entity-type alignments and per-type LSI
	// artifacts so repeated and overlapping matches reuse work. All
	// methods are safe for concurrent use and honour context
	// cancellation.
	Session = service.Session
	// SessionOption adjusts a session's matcher configuration.
	SessionOption = service.Option
	// SessionCacheStats is a snapshot of a session's artifact cache.
	SessionCacheStats = service.CacheStats
	// TypeUpdate is one streamed per-type result from Session.MatchStream.
	TypeUpdate = service.TypeUpdate
	// ArticleKey identifies one article (language + title) in a corpus —
	// the unit CorpusDelta removals name.
	ArticleKey = wiki.Key
	// CorpusDelta is a batch of corpus edits (whole-article upserts and
	// removals) for Session.ApplyDelta.
	CorpusDelta = wiki.Delta
	// DeltaResult reports what an applied delta changed in the corpus and
	// which cached artifacts it invalidated.
	DeltaResult = service.DeltaResult
)

// NewSession creates a matching session over the corpus. Options start
// from the paper's default configuration.
func NewSession(c *Corpus, opts ...SessionOption) *Session {
	return service.New(c, opts...)
}

// Session options (functional configuration, replacing MatcherConfig
// struct literals at call sites).
var (
	// WithConfig replaces the whole matcher configuration.
	WithConfig = service.WithConfig
	// WithTSim sets the certain-match threshold Tsim (paper: 0.6).
	WithTSim = service.WithTSim
	// WithTLSI sets the LSI correlation threshold TLSI (paper: 0.1).
	WithTLSI = service.WithTLSI
	// WithTEg sets the inductive-grouping threshold of ReviseUncertain.
	WithTEg = service.WithTEg
	// WithLSIRank sets the number of latent dimensions (the paper's f).
	WithLSIRank = service.WithLSIRank
	// WithSeed sets the seed driving the RandomOrder ablation shuffle.
	WithSeed = service.WithSeed
	// WithExactSVD forces the exact dense Jacobi SVD inside LSI.
	WithExactSVD = service.WithExactSVD
	// WithCandidates sets the pruned scoring path's shortlist width
	// (0 = default, -1 disables pruning); results are identical at any
	// width.
	WithCandidates = service.WithCandidates
	// WithExactScore forces the exhaustive reference scoring path.
	WithExactScore = service.WithExactScore
	// WithoutDictionary disables dictionary translation inside vsim.
	WithoutDictionary = service.WithoutDictionary
)

// All-pairs multilingual matching: Session.MatchAll / MatchAllStream
// plan the language-pair DAG (pivot through a hub edition, or direct
// all-pairs), run it on a bounded worker pool over the session's shared
// artifact cache, and merge the pairwise correspondences into
// cross-language attribute clusters with transitive derivation,
// agreement scoring and direct-vs-transitive conflict detection
// (internal/multi).
type (
	// MultiOptions configures an all-pairs batch (mode, hub, workers).
	MultiOptions = multi.Options
	// MultiMode selects pivot or direct pair coverage.
	MultiMode = multi.Mode
	// BatchResult is a completed all-pairs run: per-pair outcomes plus
	// the merged correspondence clusters.
	BatchResult = multi.BatchResult
	// BatchPairOutcome is one pair's result or failure within a batch.
	BatchPairOutcome = multi.PairOutcome
	// BatchUpdate is one progress event from a streaming batch.
	BatchUpdate = multi.Update
	// Cluster is one cross-language attribute correspondence cluster.
	Cluster = multi.Cluster
	// ClusterAttr identifies an attribute node (language, type, name).
	ClusterAttr = multi.Attr
	// ClusterCorrespondence is one (direct or transitive) cross-language
	// equivalence inside a cluster.
	ClusterCorrespondence = multi.Correspondence
	// ClusterConflict is a direct-vs-transitive disagreement.
	ClusterConflict = multi.Conflict
)

// Batch modes.
const (
	// ModePivot matches every language against the hub and derives the
	// rest transitively (N−1 runs).
	ModePivot = multi.ModePivot
	// ModeDirect matches every unordered pair head on (N(N−1)/2 runs)
	// and cross-checks direct matches against transitive chains.
	ModeDirect = multi.ModeDirect
)

// ParseMultiMode parses "pivot" or "direct".
func ParseMultiMode(s string) (MultiMode, error) { return multi.ParseMode(s) }

// Cross-edition value auditing: compare every cross-linked entity's
// values across the matched attribute clusters with typed normalizers
// (numbers, dates, units, currencies) and rank the disagreements
// (internal/audit). The service surface is POST /v1/audit and
// /v1/audit/stream; in process, Audit runs over any cluster set.
type (
	// AuditOptions tunes a report (severity floor, length cap).
	AuditOptions = audit.Options
	// AuditReport is a ranked cross-edition inconsistency report.
	AuditReport = audit.Report
	// AuditFinding is one reported inconsistency.
	AuditFinding = audit.Finding
	// AuditRequest is the typed /v1/audit request.
	AuditRequest = protocol.AuditRequest
	// AuditResponse answers /v1/audit.
	AuditResponse = protocol.AuditResponse
	// AuditFindingJSON is the wire shape of one ranked inconsistency.
	AuditFindingJSON = protocol.AuditFinding
)

// Audit compares values across editions for every cross-linked entity,
// using the correspondence clusters of an all-pairs batch
// (Session.MatchAll / BuildClusters), and returns the ranked
// inconsistency report.
func Audit(c *Corpus, clusters []Cluster, opts AuditOptions) *AuditReport {
	return audit.Run(c, clusters, opts)
}

// AuditEvalResult scores the audit detector against the generator's
// injection ledger.
type AuditEvalResult = audit.EvalResult

// AuditEvalCorpus is SmallCorpus with rendering noise disabled and
// known inconsistencies injected (ledgered in the ground truth) — the
// configuration the audit detector's precision/recall is scored
// against.
func AuditEvalCorpus() CorpusConfig { return synth.AuditEvalConfig() }

// EvaluateAudit scores a report's findings against the ground truth's
// injection ledger: precision over findings at or above minSeverity,
// recall over all injections.
func EvaluateAudit(findings []AuditFinding, truth *GroundTruth, minSeverity float64) AuditEvalResult {
	return audit.Evaluate(findings, truth, minSeverity)
}

// Persistence: the offline/online split. A warm session's artifact
// cache can be saved as a versioned binary snapshot (Session.Save,
// internal/store format) and restored in another process, so servers
// boot with precomputed dictionaries and LSI models instead of
// rebuilding them from the corpus.

// RestoreSession builds a warm session from a snapshot written by
// Session.Save. The snapshot must have been built from the same corpus
// (validated by fingerprint) and with the same artifact-shaping
// configuration (dictionary use, LSI rank, SVD path); otherwise a typed
// error from internal/store is returned and nothing is loaded. Matching
// thresholds may be adjusted freely via opts. A restored session's
// Match results are byte-identical to a cold build's.
func RestoreSession(c *Corpus, r io.Reader, opts ...SessionOption) (*Session, error) {
	return service.Restore(c, r, opts...)
}

// SaveSessionSnapshot writes the session's completed artifact cache to
// path atomically (temp file + fsync + rename): a crash mid-write never
// leaves a partial snapshot behind.
func SaveSessionSnapshot(s *Session, path string) error {
	return store.WriteFile(path, s.Save)
}

// RestoreSessionFromFile is RestoreSession over a snapshot file.
func RestoreSessionFromFile(c *Corpus, path string, opts ...SessionOption) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return service.Restore(c, f, opts...)
}

// RestoreSessionFromFileFiltered is RestoreSessionFromFile keeping only
// the snapshot slice the keep predicate owns — how a shard replica
// warm-starts with just its pairs (see ShardOwned). The corpus itself
// stays full; only the artifact cache is sharded, so the snapshot's
// fingerprint and configuration are validated exactly as in an
// unfiltered restore.
func RestoreSessionFromFileFiltered(c *Corpus, path string, keep func(LanguagePair) bool, opts ...SessionOption) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return service.RestoreFiltered(c, f, keep, opts...)
}

// Wire protocol v1: the typed request/response API served under /v1/
// and spoken by the client SDK. One MatchRequest shape drives pair,
// single-type and all-pairs matching, unary or streaming, with a shared
// validation path across the in-process Session, the HTTP layer and the
// CLI; errors are structured envelopes with stable codes.
type (
	// MatchRequest is the typed request of protocol v1.
	MatchRequest = protocol.MatchRequest
	// MatchResponse answers a pair or single-type match.
	MatchResponse = protocol.MatchResponse
	// MatchAllResponse answers an all-pairs batch.
	MatchAllResponse = protocol.MatchAllResponse
	// StreamLine is one progress line of a streaming request.
	StreamLine = protocol.StreamLine
	// TypeMatchResultJSON is the wire form of one entity type's
	// alignment outcome.
	TypeMatchResultJSON = protocol.TypeResult
	// APIError is the structured protocol error (code / message /
	// retryable / details); it is both the wire envelope's payload and
	// the error value returned in process.
	APIError = protocol.Error
)

// ProtocolVersion is the wire protocol version ("v1").
const ProtocolVersion = protocol.Version

// The stable protocol error codes.
const (
	ErrCodeInvalidArgument  = protocol.CodeInvalidArgument
	ErrCodeNotFound         = protocol.CodeNotFound
	ErrCodeMethodNotAllowed = protocol.CodeMethodNotAllowed
	ErrCodePayloadTooLarge  = protocol.CodePayloadTooLarge
	ErrCodeOverloaded       = protocol.CodeOverloaded
	ErrCodeCanceled         = protocol.CodeCanceled
	ErrCodeDeadlineExceeded = protocol.CodeDeadlineExceeded
	ErrCodeInternal         = protocol.CodeInternal
)

// The client SDK: a typed HTTP client for a running wikimatchd and an
// in-process backend over a Session serving the same interface.
type (
	// APIClient speaks protocol v1 to a wikimatchd base URL: unary
	// calls, a streaming iterator, and retries on retryable codes.
	APIClient = client.Client
	// APIClientOption adjusts an APIClient.
	APIClientOption = client.Option
	// Backend is the protocol surface shared by APIClient and
	// LocalBackend.
	Backend = client.Backend
	// LocalBackend serves the Backend interface from an in-process
	// Session.
	LocalBackend = client.Local
	// APIStream iterates a streaming response line by line.
	APIStream = client.Stream
)

// NewAPIClient creates a protocol v1 client for a wikimatchd base URL.
func NewAPIClient(base string, opts ...APIClientOption) (*APIClient, error) {
	return client.New(base, opts...)
}

// NewLocalBackend wraps a session as a Backend, so code written against
// the protocol runs in process without a server.
func NewLocalBackend(s *Session) LocalBackend { return client.NewLocal(s) }

// Client SDK options.
var (
	// WithHTTPClient replaces the SDK's underlying *http.Client.
	WithHTTPClient = client.WithHTTPClient
	// WithRetries sets the retry budget and base backoff delay.
	WithRetries = client.WithRetries
	// WithHedge arms hedged read-only unary requests: a second attempt
	// fires when the first is still pending after the given delay.
	WithHedge = client.WithHedge
)

// HTTP serving options (the middleware stack of NewHTTPHandler).
type HTTPHandlerOption = service.HandlerOption

var (
	// WithMaxConcurrent bounds concurrently served requests; excess load
	// is shed with 429 + Retry-After.
	WithMaxConcurrent = service.WithMaxConcurrent
	// WithMaxStreams bounds concurrently served NDJSON streams.
	WithMaxStreams = service.WithMaxStreams
	// WithRequestTimeout bounds each non-streaming request.
	WithRequestTimeout = service.WithRequestTimeout
	// WithMaxBodyBytes caps request body size.
	WithMaxBodyBytes = service.WithMaxBodyBytes
	// WithStreamWriteTimeout bounds each NDJSON line write.
	WithStreamWriteTimeout = service.WithStreamWriteTimeout
	// WithAccessLog enables per-request access logging.
	WithAccessLog = service.WithAccessLog
	// WithShardGate marks the handler as one shard of a fleet: requests
	// for pairs outside the ownership predicate answer 503 unavailable
	// pointing the caller back at the router.
	WithShardGate = service.WithShardGate
)

// NewHTTPHandler builds the wikimatchd HTTP API over a session: the
// typed /v1/ protocol (POST JSON + NDJSON streaming, structured
// errors), the legacy GET endpoints as compatibility shims, and the
// middleware stack (request IDs, access logging, per-request timeouts,
// load shedding, panic recovery, /v1/metrics counters) around both. See
// cmd/wikimatchd.
func NewHTTPHandler(s *Session, opts ...HTTPHandlerOption) http.Handler {
	return service.NewHandler(s, opts...)
}

// The fleet layer: a router coordinating N wikimatchd shard replicas
// behind the same /v1 surface a single binary serves. A deterministic
// shard map (ShardForPair) assigns every canonical language pair to one
// replica; the router routes unary requests to their owner and
// scatter-gathers all-pairs batches across the fleet into responses
// byte-identical to a single binary's. See cmd/wikimatchd's -router and
// -shard-index modes.
type (
	// FleetRouter fronts the shard replicas; Handler() serves /v1/.
	FleetRouter = router.Router
	// FleetRouterOption adjusts a FleetRouter.
	FleetRouterOption = router.Option
)

// NewFleetRouter builds a router over the given shard addresses
// (host:port or full URLs), in shard-index order.
func NewFleetRouter(addrs []string, opts ...FleetRouterOption) (*FleetRouter, error) {
	return router.New(addrs, opts...)
}

// Fleet router options.
var (
	// WithFleetClientOptions configures the per-shard SDK clients.
	WithFleetClientOptions = router.WithClientOptions
	// WithFleetHandlerOptions configures the router's own middleware.
	WithFleetHandlerOptions = router.WithHandlerOptions
	// WithFleetHealthInterval sets the background health-poll cadence
	// (negative disables the poller).
	WithFleetHealthInterval = router.WithHealthInterval
	// WithFleetProbeTimeout bounds each shard health probe.
	WithFleetProbeTimeout = router.WithProbeTimeout
	// WithFleetLogger directs router logs.
	WithFleetLogger = router.WithLogger
)

// ShardForPair maps a pair to its owning shard among count replicas —
// the deterministic, orientation-independent fleet shard map.
func ShardForPair(pair LanguagePair, count int) int { return router.ShardFor(pair, count) }

// ShardOwned is shard index's ownership predicate among count replicas:
// the keep function for RestoreSessionFromFileFiltered and the gate for
// WithShardGate.
func ShardOwned(index, count int) func(LanguagePair) bool { return router.Owned(index, count) }

// ParseLanguagePair parses a "pt-en"-style pair string ("vn-en" is an
// alias for Vietnamese–English).
func ParseLanguagePair(s string) (LanguagePair, error) { return service.ParsePair(s) }

// MatchEntityTypes identifies equivalent entity types across a pair via
// cross-language-link voting (Section 3.1).
func MatchEntityTypes(c *Corpus, pair LanguagePair) [][2]string {
	return core.MatchEntityTypes(c, pair)
}

// BuildDictionary derives the title-translation dictionary from the
// corpus's cross-language links.
func BuildDictionary(c *Corpus, from, to Language) *Dictionary {
	return dict.Build(c, from, to)
}

// Baselines.
type (
	// BoumaConfig tunes the Bouma et al. aligner.
	BoumaConfig = baselines.BoumaConfig
	// COMAConfig selects a COMA++-style configuration.
	COMAConfig = baselines.COMAConfig
	// LabelTranslator simulates the external machine-translation system
	// the COMA "+G" configurations translate attribute labels with.
	LabelTranslator = dict.LabelTranslator
)

// DefaultBoumaConfig mirrors the conservative, precision-first behaviour
// the paper reports for the Bouma et al. aligner.
func DefaultBoumaConfig() BoumaConfig { return baselines.DefaultBoumaConfig() }

// COMAConfigs enumerates the six COMA++ configurations of Figure 7 at a
// selection threshold.
func COMAConfigs(threshold float64) []COMAConfig { return baselines.COMAConfigs(threshold) }

// NewLabelTranslator creates the simulated label machine-translation
// system with the given error rate and deterministic seed.
func NewLabelTranslator(errorRate float64, seed int64) *LabelTranslator {
	return dict.NewLabelTranslator(errorRate, seed)
}

// RunBouma runs the Bouma et al. cross-lingual template aligner over one
// matched entity-type pair and returns the derived correspondences.
func RunBouma(c *Corpus, pair LanguagePair, typeA, typeB string, cfg BoumaConfig) Correspondences {
	return baselines.Bouma(c, pair, typeA, typeB, cfg)
}

// RunCOMA runs one COMA++-style configuration over a matched entity-type
// pair: it builds the pair's translation dictionary and similarity
// workspace, then applies the configuration's name/instance matchers. lt
// is the simulated label translator used by the "+G" configurations and
// may be nil. To evaluate several configurations (the Figure 7 sweep),
// use RunCOMASweep, which builds the shared artifacts once.
func RunCOMA(c *Corpus, pair LanguagePair, typeA, typeB string, lt *LabelTranslator, cfg COMAConfig) Correspondences {
	return RunCOMASweep(c, pair, typeA, typeB, lt, cfg)[0]
}

// RunCOMASweep runs several COMA++-style configurations over one matched
// entity-type pair, building the pair's dictionary and similarity
// workspace once and reusing them across configurations. Results are
// returned in configuration order.
func RunCOMASweep(c *Corpus, pair LanguagePair, typeA, typeB string, lt *LabelTranslator, cfgs ...COMAConfig) []Correspondences {
	d := dict.Build(c, pair.A, pair.B)
	td := sim.BuildTypeData(c, pair, typeA, typeB, d)
	out := make([]Correspondences, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = baselines.COMA(td, lt, cfg)
	}
	return out
}

// Evaluation.
type (
	// Correspondences maps source attributes to their aligned targets.
	Correspondences = eval.Correspondences
	// PRF bundles precision, recall and F-measure.
	PRF = eval.PRF
)

// WeightedScores computes the paper's weighted precision/recall/F
// (Equations 1–4).
func WeightedScores(derived, truth Correspondences, freqA, freqB map[string]float64) PRF {
	return eval.Weighted(derived, truth, freqA, freqB)
}

// MacroScores computes the unweighted variant (Appendix B).
func MacroScores(derived, truth Correspondences) PRF {
	return eval.Macro(derived, truth)
}

// BCubedScores computes B-cubed precision/recall of a predicted
// clustering against a gold one — the cluster-level counterpart of the
// pairwise metrics, used to evaluate all-pairs correspondence clusters.
func BCubedScores(pred, gold [][]string) PRF { return eval.BCubed(pred, gold) }

// PairCountingScores computes pair-counting cluster precision/recall:
// co-clustered item pairs in pred scored against gold.
func PairCountingScores(pred, gold [][]string) PRF { return eval.PairCounting(pred, gold) }

// Querying (the Section 5 case study).
type (
	// Query is a parsed c-query.
	Query = query.Query
	// QueryEngine executes c-queries over one language edition.
	QueryEngine = query.Engine
	// QueryAnswer is one ranked result.
	QueryAnswer = query.Answer
	// CGSeries is a named cumulative-gain curve.
	CGSeries = query.CGSeries
)

// ParseQuery parses c-query syntax: `filme(título=?, receita>10000000)
// and ator(ocupação="político")`.
func ParseQuery(s string) (*Query, error) { return query.Parse(s) }

// NewQueryEngine indexes a corpus for querying in one language.
func NewQueryEngine(c *Corpus, lang Language) *QueryEngine {
	return query.NewEngine(c, lang)
}

// TranslateQuery renders a query into the match result's target language
// through the derived correspondences, relaxing untranslatable
// constraints (Section 5).
func TranslateQuery(q *Query, res *MatchResult) query.Translation {
	return query.Translate(q, res)
}

// CaseStudy runs the Table 4 workload monolingually and translated, and
// returns the four cumulative-gain curves of Figure 4.
func CaseStudy(c *Corpus, truth *GroundTruth, resPt, resVn *MatchResult, k int) ([]CGSeries, error) {
	return query.RunCaseStudy(c, truth, resPt, resVn, k)
}

// Experiments.
type (
	// Experiments is the harness reproducing every table and figure.
	Experiments = experiments.Setup
)

// NewExperiments generates a corpus and prepares the per-type evaluation
// units for all experiments.
func NewExperiments(cfg CorpusConfig) (*Experiments, error) {
	return experiments.NewSetup(cfg)
}

// RenderAllExperiments writes every table and figure to w.
func RenderAllExperiments(w io.Writer, s *Experiments, cfg MatcherConfig) error {
	return experiments.RenderAll(w, s, cfg)
}
