package repro

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the entire public API the way a downstream
// user would: generate, dump, reload, match, evaluate, query.
func TestFacadeEndToEnd(t *testing.T) {
	corpus, truth, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	if corpus.Len() == 0 {
		t.Fatal("empty corpus")
	}

	// Dump round-trip through the facade.
	var buf bytes.Buffer
	if err := WriteDump(&buf, corpus, Portuguese); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	reloaded := NewCorpus()
	res, err := LoadDump(reloaded, &buf, Portuguese)
	if err != nil {
		t.Fatalf("LoadDump: %v", err)
	}
	if res.Pages != corpus.LenLang(Portuguese) {
		t.Errorf("reloaded %d pages, want %d", res.Pages, corpus.LenLang(Portuguese))
	}

	// Matching.
	result := Match(corpus, PtEn)
	if len(result.Types) != 14 {
		t.Fatalf("type pairs = %d", len(result.Types))
	}
	films, ok := result.ByTypeA("filme")
	if !ok {
		t.Fatal("no film result")
	}
	if !films.Cross[Normalize("direção")]["directed by"] {
		t.Error("direção ~ directed by missing")
	}

	// Evaluation through the facade.
	derived := Correspondences{}
	for a, bs := range films.Cross {
		for b := range bs {
			derived.Add(a, b)
		}
	}
	g := Correspondences{}
	g.Add(Normalize("direção"), "directed by")
	m := MacroScores(derived, g)
	if m.Recall != 1 {
		t.Errorf("macro recall vs singleton truth = %v", m.Recall)
	}

	// Dictionary.
	d := BuildDictionary(corpus, Portuguese, English)
	if d.Len() == 0 {
		t.Error("empty dictionary")
	}

	// Query pipeline.
	q, err := ParseQuery(`filme(título|nome=?) and ator(ocupação="político")`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	engine := NewQueryEngine(corpus, Portuguese)
	if answers := engine.Run(q, 10); len(answers) == 0 {
		t.Error("no monolingual answers")
	}
	tr := TranslateQuery(q, result)
	if tr.Untranslatable {
		t.Fatal("query untranslatable")
	}
	enEngine := NewQueryEngine(corpus, English)
	if answers := enEngine.Run(tr.Query, 10); len(answers) == 0 {
		t.Error("no translated answers")
	}

	// Case study.
	resVn := Match(corpus, VnEn)
	series, err := CaseStudy(corpus, truth, result, resVn, 5)
	if err != nil {
		t.Fatalf("CaseStudy: %v", err)
	}
	if len(series) != 4 {
		t.Errorf("series = %d", len(series))
	}
}

func TestFacadeParsePage(t *testing.T) {
	a, err := ParsePage(English, "X", "{{Infobox film\n| name = X\n}}\n[[pt:Xis]]")
	if err != nil {
		t.Fatalf("ParsePage: %v", err)
	}
	if a.Type != "film" {
		t.Errorf("type = %q", a.Type)
	}
	if title, ok := a.CrossLink(Portuguese); !ok || title != "Xis" {
		t.Errorf("cross link = %q, %v", title, ok)
	}
}

func TestFacadeMatchEntityTypes(t *testing.T) {
	corpus, _, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	pairs := MatchEntityTypes(corpus, VnEn)
	if len(pairs) != 4 {
		t.Errorf("vn-en type pairs = %v", pairs)
	}
}

// TestFacadeSession drives the session API through the facade: options,
// matching, streaming, cache stats and invalidation, plus the HTTP
// handler constructor.
func TestFacadeSession(t *testing.T) {
	corpus, _, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess := NewSession(corpus, WithTSim(0.6), WithTLSI(0.1))
	res, err := sess.Match(ctx, PtEn)
	if err != nil {
		t.Fatalf("session Match: %v", err)
	}
	legacy := Match(corpus, PtEn)
	if len(res.Types) != len(legacy.Types) {
		t.Fatalf("session types = %d, legacy = %d", len(res.Types), len(legacy.Types))
	}
	for _, tp := range legacy.Types {
		a := legacy.PerType[tp].CrossPairsSorted()
		b := res.PerType[tp].CrossPairsSorted()
		if len(a) != len(b) {
			t.Errorf("type %v: %d vs %d correspondences", tp, len(b), len(a))
		}
	}

	updates, err := sess.MatchStream(ctx, PtEn)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for u := range updates {
		if u.Err != nil {
			t.Fatalf("stream: %v", u.Err)
		}
		n++
	}
	if n != len(res.Types) {
		t.Errorf("streamed %d types, want %d", n, len(res.Types))
	}

	if st := sess.CacheStats(); st.TypeEntries == 0 || st.Hits == 0 {
		t.Errorf("cache unused: %+v", st)
	}
	if sess.Invalidate(Portuguese) == 0 {
		t.Error("Invalidate dropped nothing")
	}
	if NewHTTPHandler(sess) == nil {
		t.Error("nil HTTP handler")
	}
	if pair, err := ParseLanguagePair("vn-en"); err != nil || pair != VnEn {
		t.Errorf("ParseLanguagePair(vn-en) = %v, %v", pair, err)
	}
}

// TestFacadeBaselines checks the baseline runners exposed on the facade.
func TestFacadeBaselines(t *testing.T) {
	corpus, _, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	bouma := RunBouma(corpus, PtEn, "filme", "film", DefaultBoumaConfig())
	if bouma.Pairs() == 0 {
		t.Fatal("Bouma derived nothing")
	}
	if !bouma.Has(Normalize("direção"), "directed by") {
		t.Error("Bouma missed direção ~ directed by")
	}
	lt := NewLabelTranslator(0, 1)
	lt.Add("direção", "directed by")
	cfgs := COMAConfigs(0.01)
	for i, coma := range RunCOMASweep(corpus, PtEn, "filme", "film", lt, cfgs...) {
		if coma.Pairs() == 0 {
			t.Errorf("COMA config %d (%s) derived nothing", i, cfgs[i].Label())
		}
	}
	// The single-config entrypoint agrees with the sweep.
	single := RunCOMA(corpus, PtEn, "filme", "film", lt, cfgs[1])
	sweep := RunCOMASweep(corpus, PtEn, "filme", "film", lt, cfgs[1])[0]
	if single.Pairs() != sweep.Pairs() {
		t.Errorf("RunCOMA %d pairs, RunCOMASweep %d", single.Pairs(), sweep.Pairs())
	}
}

func TestFacadeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	exp, err := NewExperiments(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderAllExperiments(&buf, exp, DefaultMatcherConfig()); err != nil {
		t.Fatalf("RenderAllExperiments: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("output missing Table 2")
	}
}
