package repro

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the entire public API the way a downstream
// user would: generate, dump, reload, match, evaluate, query.
func TestFacadeEndToEnd(t *testing.T) {
	corpus, truth, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	if corpus.Len() == 0 {
		t.Fatal("empty corpus")
	}

	// Dump round-trip through the facade.
	var buf bytes.Buffer
	if err := WriteDump(&buf, corpus, Portuguese); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	reloaded := NewCorpus()
	res, err := LoadDump(reloaded, &buf, Portuguese)
	if err != nil {
		t.Fatalf("LoadDump: %v", err)
	}
	if res.Pages != corpus.LenLang(Portuguese) {
		t.Errorf("reloaded %d pages, want %d", res.Pages, corpus.LenLang(Portuguese))
	}

	// Matching.
	result := Match(corpus, PtEn)
	if len(result.Types) != 14 {
		t.Fatalf("type pairs = %d", len(result.Types))
	}
	films, ok := result.ByTypeA("filme")
	if !ok {
		t.Fatal("no film result")
	}
	if !films.Cross[Normalize("direção")]["directed by"] {
		t.Error("direção ~ directed by missing")
	}

	// Evaluation through the facade.
	derived := Correspondences{}
	for a, bs := range films.Cross {
		for b := range bs {
			derived.Add(a, b)
		}
	}
	g := Correspondences{}
	g.Add(Normalize("direção"), "directed by")
	m := MacroScores(derived, g)
	if m.Recall != 1 {
		t.Errorf("macro recall vs singleton truth = %v", m.Recall)
	}

	// Dictionary.
	d := BuildDictionary(corpus, Portuguese, English)
	if d.Len() == 0 {
		t.Error("empty dictionary")
	}

	// Query pipeline.
	q, err := ParseQuery(`filme(título|nome=?) and ator(ocupação="político")`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	engine := NewQueryEngine(corpus, Portuguese)
	if answers := engine.Run(q, 10); len(answers) == 0 {
		t.Error("no monolingual answers")
	}
	tr := TranslateQuery(q, result)
	if tr.Untranslatable {
		t.Fatal("query untranslatable")
	}
	enEngine := NewQueryEngine(corpus, English)
	if answers := enEngine.Run(tr.Query, 10); len(answers) == 0 {
		t.Error("no translated answers")
	}

	// Case study.
	resVn := Match(corpus, VnEn)
	series, err := CaseStudy(corpus, truth, result, resVn, 5)
	if err != nil {
		t.Fatalf("CaseStudy: %v", err)
	}
	if len(series) != 4 {
		t.Errorf("series = %d", len(series))
	}
}

func TestFacadeParsePage(t *testing.T) {
	a, err := ParsePage(English, "X", "{{Infobox film\n| name = X\n}}\n[[pt:Xis]]")
	if err != nil {
		t.Fatalf("ParsePage: %v", err)
	}
	if a.Type != "film" {
		t.Errorf("type = %q", a.Type)
	}
	if title, ok := a.CrossLink(Portuguese); !ok || title != "Xis" {
		t.Errorf("cross link = %q, %v", title, ok)
	}
}

func TestFacadeMatchEntityTypes(t *testing.T) {
	corpus, _, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	pairs := MatchEntityTypes(corpus, VnEn)
	if len(pairs) != 4 {
		t.Errorf("vn-en type pairs = %v", pairs)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	exp, err := NewExperiments(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderAllExperiments(&buf, exp, DefaultMatcherConfig()); err != nil {
		t.Fatalf("RenderAllExperiments: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("output missing Table 2")
	}
}
