package repro

// One benchmark per table and figure of the paper's evaluation: each
// iteration regenerates the experiment's rows/series from the shared
// corpus (see cmd/benchall for the pretty-printed output). The cheap
// single-pass experiments run at full corpus scale; the multi-variant
// sweeps (Table 3, Figures 3 and 5) run at small scale so a full
// `go test -bench=.` stays in tens of seconds.
//
// Additional ablation benchmarks cover the design choices DESIGN.md §4
// calls out (dictionary translation inside vsim, LSI rank) and the
// substrate hot paths (SVD, dump parsing, one full type alignment).

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/lsi"
	"repro/internal/synth"
	"repro/internal/wiki"
)

var (
	onceFull, onceSmall   sync.Once
	setupFull, setupSmall *experiments.Setup
)

func fullSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	onceFull.Do(func() {
		s, err := experiments.NewSetup(synth.DefaultConfig())
		if err != nil {
			b.Fatalf("setup: %v", err)
		}
		setupFull = s
	})
	return setupFull
}

func smallSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	onceSmall.Do(func() {
		s, err := experiments.NewSetup(synth.SmallConfig())
		if err != nil {
			b.Fatalf("setup: %v", err)
		}
		setupSmall = s
	})
	return setupSmall
}

func BenchmarkTable1Alignments(b *testing.B) {
	s := fullSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table1(cfg)
		if len(rows) == 0 {
			b.Fatal("no alignments")
		}
	}
}

func BenchmarkTable2Effectiveness(b *testing.B) {
	s := fullSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	var avgF float64
	for i := 0; i < b.N; i++ {
		rows := s.Table2(cfg)
		for _, r := range rows {
			if r.Canon == "Avg" && r.Pair == wiki.PtEn {
				avgF = r.WikiMatch.F
			}
		}
	}
	b.ReportMetric(avgF, "F/pt-en-avg")
}

func BenchmarkTable3Ablation(b *testing.B) {
	s := smallSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table3(cfg)
		if len(rows) != 13 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable5Overlap(b *testing.B) {
	s := fullSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table5()
		if len(rows) != 14 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable6Macro(b *testing.B) {
	s := fullSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table6(cfg)
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable7MAP(b *testing.B) {
	s := fullSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	var lsiMAP float64
	for i := 0; i < b.N; i++ {
		rows := s.Table7(cfg, s.Cfg.Seed)
		lsiMAP = rows[0].PtEn
	}
	b.ReportMetric(lsiMAP, "MAP/lsi-pt-en")
}

func BenchmarkFigure3ReviseImpact(b *testing.B) {
	s := smallSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bars := s.Figure3(cfg)
		if len(bars) != 6 {
			b.Fatalf("bars = %d", len(bars))
		}
	}
}

func BenchmarkFigure4CumulativeGain(b *testing.B) {
	s := fullSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	var ptEnCG float64
	for i := 0; i < b.N; i++ {
		series, err := s.Figure4(cfg, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range series {
			if sr.Name == "Pt→En" {
				ptEnCG = sr.CG[len(sr.CG)-1]
			}
		}
	}
	b.ReportMetric(ptEnCG, "CG/pt-en@20")
}

func BenchmarkFigure5Thresholds(b *testing.B) {
	s := smallSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := s.Figure5(cfg)
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure6LSITopK(b *testing.B) {
	s := fullSetup(b)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Figure6(cfg)
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure7COMAConfigs(b *testing.B) {
	s := fullSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Figure7()
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationDictionary quantifies the dictionary's contribution
// to vsim (DESIGN.md §4 item 5): full WikiMatch vs NoDictionary.
func BenchmarkAblationDictionary(b *testing.B) {
	s := smallSetup(b)
	for _, mode := range []struct {
		name string
		mod  func(*core.Config)
	}{
		{"with-dict", func(*core.Config) {}},
		{"no-dict", func(c *core.Config) { c.NoDictionary = true }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			mode.mod(&cfg)
			var f float64
			for i := 0; i < b.N; i++ {
				var sum float64
				n := 0
				for _, tc := range s.Cases(wiki.PtEn) {
					sum += s.EvaluateWeighted(tc, s.RunWikiMatch(tc, cfg)).F
					n++
				}
				f = sum / float64(n)
			}
			b.ReportMetric(f, "F/pt-en-avg")
		})
	}
}

// BenchmarkAblationLSIRank sweeps the truncated-SVD rank (DESIGN.md §4
// item 6).
func BenchmarkAblationLSIRank(b *testing.B) {
	s := smallSetup(b)
	for _, rank := range []int{2, 5, 10, 20, 40} {
		b.Run(rankName(rank), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.LSIRank = rank
			var f float64
			for i := 0; i < b.N; i++ {
				var sum float64
				n := 0
				for _, tc := range s.Cases(wiki.PtEn) {
					sum += s.EvaluateWeighted(tc, s.RunWikiMatch(tc, cfg)).F
					n++
				}
				f = sum / float64(n)
			}
			b.ReportMetric(f, "F/pt-en-avg")
		})
	}
}

func rankName(r int) string {
	return "rank-" + string(rune('0'+r/10)) + string(rune('0'+r%10))
}

// ---------------------------------------------------------------- substrate

// biggestDuals returns the largest dual-language infobox set across the
// full-scale corpus — the occurrence matrix WikiMatch actually has to
// decompose on its hottest type.
func biggestDuals(b *testing.B) []lsi.Dual {
	b.Helper()
	s := fullSetup(b)
	var duals []lsi.Dual
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		for _, tc := range s.Cases(pair) {
			if len(tc.TD.Duals) > len(duals) {
				duals = tc.TD.Duals
			}
		}
	}
	return duals
}

// BenchmarkTruncatedSVD compares the seed's dense-Jacobi-then-truncate
// path against the sparse randomized path on the full-corpus occurrence
// matrix (the acceptance gate for the fast-LSI swap is ≥2× here).
func BenchmarkTruncatedSVD(b *testing.B) {
	duals := biggestDuals(b)
	_, index := lsi.IndexAttrs(duals)
	sp := lsi.OccurrenceMatrix(duals, index)
	svdComparison(b, sp)
}

// svdComparison benchmarks the seed's dense path against the sparse
// subsystem on one occurrence matrix: "sparse-auto" is what lsi.Build
// calls (routing to Gram-exact or randomized by shape) and
// "randomized-sparse" forces the sketch-and-iterate path.
func svdComparison(b *testing.B, sp *linalg.Sparse) {
	b.Helper()
	dense := sp.Dense()
	b.Run("dense-jacobi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := linalg.TruncatedSVD(dense, lsi.DefaultRank); d.Rank() != lsi.DefaultRank {
				b.Fatal("bad rank")
			}
		}
	})
	b.Run("sparse-auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := linalg.SparseTruncatedSVD(sp, lsi.DefaultRank); d.Rank() != lsi.DefaultRank {
				b.Fatal("bad rank")
			}
		}
	})
	b.Run("randomized-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := linalg.RandomizedSVD(sp, lsi.DefaultRank, linalg.RSVDOptions{}); d.Rank() != lsi.DefaultRank {
				b.Fatal("bad rank")
			}
		}
	})
}

// BenchmarkTruncatedSVDDumpScale runs the same comparison on a
// dump-scale occurrence matrix (hundreds of attributes over thousands of
// dual infoboxes, ~4% dense) where the asymptotic gap dominates.
func BenchmarkTruncatedSVDDumpScale(b *testing.B) {
	const (
		attrs   = 200
		duals   = 1500
		perDual = 8
	)
	var entries []linalg.Entry
	state := uint64(1)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for j := 0; j < duals; j++ {
		for t := 0; t < perDual; t++ {
			entries = append(entries, linalg.Entry{Row: next(attrs), Col: j, Val: 1})
		}
	}
	sp := linalg.NewSparse(attrs, duals, entries)
	svdComparison(b, sp)
}

func BenchmarkSVD(b *testing.B) {
	m := linalg.NewMatrix(60, 300)
	for i := range m.Data {
		m.Data[i] = float64((i*2654435761)%7) / 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := linalg.TruncatedSVD(m, 10)
		if d.Rank() != 10 {
			b.Fatal("bad rank")
		}
	}
}

func BenchmarkLSIBuild(b *testing.B) {
	s := fullSetup(b)
	var tc = s.Cases(wiki.PtEn)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := lsi.Build(tc.TD.Duals, 10, tc.TD.Attrs...)
		if model.Len() == 0 {
			b.Fatal("empty model")
		}
	}
}

func BenchmarkWikiMatchFilmType(b *testing.B) {
	s := fullSetup(b)
	m := core.NewMatcher(core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := m.MatchType(s.Corpus, wiki.PtEn, "filme", "film", s.Dict(wiki.PtEn))
		if len(tr.Cross) == 0 {
			b.Fatal("no correspondences")
		}
	}
}

// BenchmarkSessionWarmVsCold is the acceptance gate for the session's
// artifact cache: "cold" pays the full pipeline (dictionary, TypeData,
// truncated SVD per type) on a fresh session every iteration, "warm"
// reuses one prewarmed session so each Match only re-runs Algorithm 1
// over cached artifacts. The warm path must be ≥2× faster while
// producing byte-identical results (asserted by the service tests).
func BenchmarkSessionWarmVsCold(b *testing.B) {
	s := fullSetup(b)
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := NewSession(s.Corpus).Match(ctx, wiki.PtEn)
			if err != nil || len(res.Types) == 0 {
				b.Fatalf("cold match: %v (%d types)", err, len(res.Types))
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sess := NewSession(s.Corpus)
		if _, err := sess.Match(ctx, wiki.PtEn); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Match(ctx, wiki.PtEn)
			if err != nil || len(res.Types) == 0 {
				b.Fatalf("warm match: %v (%d types)", err, len(res.Types))
			}
		}
	})
}

// BenchmarkStoreRestoreVsCold is the persistence acceptance gate:
// "cold" builds every artifact from the corpus (dictionaries, entity-
// type alignments, per-type TypeData and LSI models for both of the
// paper's pairs), "restore" loads the same artifacts from a snapshot —
// the path wikimatchd -store takes on boot. Snapshot load must be ≥5×
// faster than the cold build at dump scale (measured ~10×), and
// restored sessions serve byte-identical results (asserted by
// TestRestoreMatchEquivalence in internal/service).
func BenchmarkStoreRestoreVsCold(b *testing.B) {
	s := fullSetup(b)
	ctx := context.Background()
	pairs := []wiki.LanguagePair{wiki.PtEn, wiki.VnEn}
	matchAll := func(b *testing.B, sess *Session) {
		b.Helper()
		for _, pair := range pairs {
			res, err := sess.Match(ctx, pair)
			if err != nil || len(res.Types) == 0 {
				b.Fatalf("match %s: %v (%d types)", pair, err, len(res.Types))
			}
		}
	}

	warm := NewSession(s.Corpus)
	matchAll(b, warm)
	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matchAll(b, NewSession(s.Corpus))
		}
	})
	b.Run("restore", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			sess, err := RestoreSession(s.Corpus, bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if cs := sess.CacheStats(); cs.RestoredTypes == 0 {
				b.Fatal("nothing restored")
			}
		}
	})
	b.Run("restore+match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess, err := RestoreSession(s.Corpus, bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			matchAll(b, sess)
		}
	})
}

func BenchmarkDumpWriteParse(b *testing.B) {
	s := smallSetup(b)
	var buf bytes.Buffer
	if err := dump.WriteCorpus(&buf, s.Corpus, wiki.Portuguese); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := dump.NewReader(bytes.NewReader(raw))
		n := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n == 0 {
			b.Fatal("no pages")
		}
	}
}

// BenchmarkHTTPMatchThroughput measures the serving path end to end
// over wire protocol v1: a real HTTP server (middleware stack included)
// over one warm session, driven concurrently by the client SDK. Each
// iteration is a full POST /v1/match round trip whose alignment runs on
// cached artifacts — the steady-state request wikimatchd serves under
// load. The cmd-level twin is `benchall -run http`.
func BenchmarkHTTPMatchThroughput(b *testing.B) {
	s := smallSetup(b)
	srv := httptest.NewServer(NewHTTPHandler(NewSession(s.Corpus)))
	defer srv.Close()
	c, err := NewAPIClient(srv.URL)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := MatchRequest{Pair: "pt-en"}
	warm, err := c.Match(ctx, req)
	if err != nil {
		b.Fatal(err)
	}
	if len(warm.Types) == 0 {
		b.Fatal("warm match returned no types")
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := c.Match(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Results) != len(warm.Results) {
				b.Fatalf("response lost results: %d vs %d", len(resp.Results), len(warm.Results))
			}
		}
	})
}
