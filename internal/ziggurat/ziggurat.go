// Package ziggurat implements a Ziggurat-style self-supervised
// cross-language infobox aligner (Adar, Skinner and Weld, WSDM 2009) —
// the system the paper compares against only qualitatively because its
// code and datasets were unavailable (Section 6). Having an
// implementation lets this repository run that missing comparison.
//
// Like the original, the matcher (i) extracts a feature vector per
// candidate attribute pair (name equality and n-gram similarity, value
// overlap, translation hits, link overlap, co-occurrence statistics),
// (ii) self-labels training examples with high-precision heuristics
// (equal names or near-identical value sets → positive; fully disjoint
// evidence → negative), and (iii) trains a logistic-regression
// classifier on them. Its two documented limitations follow from the
// design and are reproduced here: it needs enough self-labeled examples
// per language pair, and its reliance on syntactic (n-gram) features
// favors language pairs with similar roots.
package ziggurat

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/text"
)

// NumFeatures is the dimensionality of the feature vector.
const NumFeatures = 12

// Config tunes self-supervision and training.
type Config struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         int64
	// PosValueSim is the raw value-cosine above which a pair self-labels
	// positive; NegPerPos bounds the negative sample ratio.
	PosValueSim float64
	NegPerPos   int
	// Threshold is the classification probability cutoff at match time.
	Threshold float64
}

// DefaultConfig returns reasonable training parameters.
func DefaultConfig() Config {
	return Config{
		Epochs:       60,
		LearningRate: 0.1,
		L2:           1e-4,
		Seed:         42,
		PosValueSim:  0.8,
		NegPerPos:    2,
		Threshold:    0.5,
	}
}

// Features extracts the classifier's evidence for a cross-language
// attribute pair. All features lie in [0, 1].
func Features(td *sim.TypeData, i, j int) []float64 {
	nameA, nameB := td.Attrs[i].Name, td.Attrs[j].Name
	f := make([]float64, 0, NumFeatures)
	// 1: exact name equality (rare across languages, decisive within).
	if nameA == nameB {
		f = append(f, 1)
	} else {
		f = append(f, 0)
	}
	// 2–3: syntactic name similarity (the n-gram features Adar et al.
	// acknowledge tie Ziggurat to similar-rooted languages).
	f = append(f, text.TrigramSimilarity(nameA, nameB))
	f = append(f, text.EditSimilarity(nameA, nameB))
	// 4: raw value cosine (no translation).
	f = append(f, td.RawVSim(i, j, false))
	// 5: dictionary-translated value cosine (cross-link translation hits).
	f = append(f, td.RawVSim(i, j, true))
	// 6: canonicalized value cosine.
	f = append(f, td.VSim(i, j))
	// 7: link-structure overlap.
	f = append(f, td.LSim(i, j))
	// 8: dual co-occurrence rate.
	minOcc := td.Occurrences(i)
	if td.Occurrences(j) < minOcc {
		minOcc = td.Occurrences(j)
	}
	if minOcc > 0 {
		f = append(f, float64(td.CoOccurDual(i, j))/float64(minOcc))
	} else {
		f = append(f, 0)
	}
	// 9: occurrence-frequency ratio.
	oa, ob := float64(td.Occurrences(i)), float64(td.Occurrences(j))
	if oa > 0 && ob > 0 {
		f = append(f, math.Min(oa, ob)/math.Max(oa, ob))
	} else {
		f = append(f, 0)
	}
	// 10: numeric-content agreement: |numFrac(A) − numFrac(B)| inverted.
	f = append(f, 1-math.Abs(numericFraction(td.ValueVector(i))-numericFraction(td.ValueVector(j))))
	// 11: value-vocabulary size ratio.
	va, vb := float64(len(td.ValueVector(i))), float64(len(td.ValueVector(j)))
	if va > 0 && vb > 0 {
		f = append(f, math.Min(va, vb)/math.Max(va, vb))
	} else {
		f = append(f, 0)
	}
	// 12: token-level name overlap (multi-word names like "data de
	// nascimento" vs "date of birth" share translated stopwords rarely,
	// but within-language synonyms often overlap).
	f = append(f, text.JaccardTokens(nameA, nameB))
	return f
}

func numericFraction(v map[string]float64) float64 {
	if len(v) == 0 {
		return 0
	}
	num := 0
	for term := range v {
		hasDigit := false
		for _, r := range term {
			if r >= '0' && r <= '9' {
				hasDigit = true
				break
			}
		}
		if hasDigit {
			num++
		}
	}
	return float64(num) / float64(len(v))
}

// Model is a trained logistic-regression classifier.
type Model struct {
	W                    []float64
	B                    float64
	Positives, Negatives int // self-labeled training-set sizes
}

// example is one self-labeled training instance.
type example struct {
	x []float64
	y float64
}

// selfLabel harvests training examples from one type's candidate pairs
// using Ziggurat's heuristic style: near-identical raw value vectors or
// equal normalized names are positives; pairs with no shared evidence
// at all are negatives.
func selfLabel(td *sim.TypeData, cfg Config, rng *rand.Rand) []example {
	var pos, neg []example
	for _, p := range td.CrossPairs() {
		i, j := p[0], p[1]
		rawSim := td.RawVSim(i, j, false)
		nameEq := td.Attrs[i].Name == td.Attrs[j].Name
		switch {
		case rawSim >= cfg.PosValueSim || nameEq:
			pos = append(pos, example{x: Features(td, i, j), y: 1})
		case rawSim == 0 && td.LSim(i, j) == 0 && td.CoOccurDual(i, j) == 0:
			neg = append(neg, example{x: Features(td, i, j), y: 0})
		}
	}
	rng.Shuffle(len(neg), func(a, b int) { neg[a], neg[b] = neg[b], neg[a] })
	if limit := len(pos) * cfg.NegPerPos; len(neg) > limit {
		neg = neg[:limit]
	}
	return append(pos, neg...)
}

// Train self-labels examples over the given types (typically all types
// of one language pair — Ziggurat trains per domain and language pair)
// and fits the classifier by stochastic gradient descent.
func Train(cases []*sim.TypeData, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var examples []example
	m := &Model{W: make([]float64, NumFeatures)}
	for _, td := range cases {
		for _, ex := range selfLabel(td, cfg, rng) {
			examples = append(examples, ex)
			if ex.y == 1 {
				m.Positives++
			} else {
				m.Negatives++
			}
		}
	}
	if len(examples) == 0 {
		return m
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(examples), func(a, b int) { examples[a], examples[b] = examples[b], examples[a] })
		for _, ex := range examples {
			p := m.prob(ex.x)
			g := p - ex.y
			for k := range m.W {
				m.W[k] -= cfg.LearningRate * (g*ex.x[k] + cfg.L2*m.W[k])
			}
			m.B -= cfg.LearningRate * g
		}
	}
	return m
}

// prob is the logistic output.
func (m *Model) prob(x []float64) float64 {
	s := m.B
	for k := range m.W {
		s += m.W[k] * x[k]
	}
	return 1 / (1 + math.Exp(-s))
}

// Score returns the classifier probability for a pair.
func (m *Model) Score(td *sim.TypeData, i, j int) float64 {
	return m.prob(Features(td, i, j))
}

// Match classifies every cross-language pair of a type and keeps, per
// source attribute, the candidates above the threshold that score within
// 5% of the row maximum.
func (m *Model) Match(td *sim.TypeData, threshold float64) eval.Correspondences {
	type scored struct {
		i, j int
		p    float64
	}
	var all []scored
	rowMax := map[int]float64{}
	for _, pr := range td.CrossPairs() {
		p := m.Score(td, pr[0], pr[1])
		all = append(all, scored{i: pr[0], j: pr[1], p: p})
		if p > rowMax[pr[0]] {
			rowMax[pr[0]] = p
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].i != all[b].i {
			return all[a].i < all[b].i
		}
		return all[a].j < all[b].j
	})
	out := make(eval.Correspondences)
	for _, s := range all {
		if s.p >= threshold && s.p >= rowMax[s.i]*0.95 {
			out.Add(td.Attrs[s.i].Name, td.Attrs[s.j].Name)
		}
	}
	return out
}
