package ziggurat

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/wiki"
)

type fixtures struct {
	corpus *wiki.Corpus
	truth  *synth.GroundTruth
	cases  map[wiki.LanguagePair][]*sim.TypeData
	truths map[wiki.LanguagePair]map[string]eval.Correspondences // typeA → G
}

var shared *fixtures

func load(t *testing.T) *fixtures {
	t.Helper()
	if shared != nil {
		return shared
	}
	c, g, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	f := &fixtures{
		corpus: c, truth: g,
		cases:  make(map[wiki.LanguagePair][]*sim.TypeData),
		truths: make(map[wiki.LanguagePair]map[string]eval.Correspondences),
	}
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		d := dict.Build(c, pair.A, pair.B)
		f.truths[pair] = make(map[string]eval.Correspondences)
		for _, tp := range core.MatchEntityTypes(c, pair) {
			td := sim.BuildTypeData(c, pair, tp[0], tp[1], d)
			f.cases[pair] = append(f.cases[pair], td)
			canon, _ := g.CanonType(pair.A, tp[0])
			freqA, freqB := eval.AttributeFrequencies(c, pair, tp[0], tp[1])
			f.truths[pair][tp[0]] = eval.TruthPairs(freqA, freqB, pair, g.Types[canon].Correct)
		}
	}
	shared = f
	return f
}

func macroAvg(t *testing.T, f *fixtures, pair wiki.LanguagePair, m *Model) eval.PRF {
	t.Helper()
	var rows []eval.PRF
	for _, td := range f.cases[pair] {
		derived := m.Match(td, DefaultConfig().Threshold)
		rows = append(rows, eval.Macro(derived, f.truths[pair][td.TypeA]))
	}
	return eval.Average(rows)
}

func TestFeaturesBounded(t *testing.T) {
	f := load(t)
	td := f.cases[wiki.PtEn][0]
	for _, p := range td.CrossPairs() {
		feats := Features(td, p[0], p[1])
		if len(feats) != NumFeatures {
			t.Fatalf("feature count = %d", len(feats))
		}
		for k, v := range feats {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("feature %d out of range: %v", k, v)
			}
		}
	}
}

func TestSelfSupervisionHarvestsExamples(t *testing.T) {
	f := load(t)
	m := Train(f.cases[wiki.PtEn], DefaultConfig())
	if m.Positives == 0 || m.Negatives == 0 {
		t.Fatalf("self-labeling produced %d positives, %d negatives", m.Positives, m.Negatives)
	}
	if m.Negatives > m.Positives*DefaultConfig().NegPerPos {
		t.Errorf("negative cap violated: %d > %d×%d", m.Negatives, m.Positives, DefaultConfig().NegPerPos)
	}
}

func TestClassifierIsCompetitivePtEn(t *testing.T) {
	f := load(t)
	m := Train(f.cases[wiki.PtEn], DefaultConfig())
	prf := macroAvg(t, f, wiki.PtEn, m)
	t.Logf("ziggurat pt-en macro: P=%.2f R=%.2f F=%.2f (train: %d+/%d−)",
		prf.Precision, prf.Recall, prf.F, m.Positives, m.Negatives)
	if prf.F < 0.5 {
		t.Errorf("ziggurat pt-en F = %.2f, expected a competitive classifier", prf.F)
	}
}

// TestTrainingDataDependence reproduces the paper's Section 6 argument:
// Ziggurat's effectiveness depends on the amount of (self-)training
// data, so the under-represented Vietnamese pair yields fewer examples
// than Portuguese.
func TestTrainingDataDependence(t *testing.T) {
	f := load(t)
	mPt := Train(f.cases[wiki.PtEn], DefaultConfig())
	mVn := Train(f.cases[wiki.VnEn], DefaultConfig())
	t.Logf("training examples: pt-en %d+/%d−, vn-en %d+/%d−",
		mPt.Positives, mPt.Negatives, mVn.Positives, mVn.Negatives)
	if mVn.Positives+mVn.Negatives >= mPt.Positives+mPt.Negatives {
		t.Errorf("vn-en should yield fewer self-labeled examples (%d vs %d)",
			mVn.Positives+mVn.Negatives, mPt.Positives+mPt.Negatives)
	}
}

func TestModelDeterministic(t *testing.T) {
	f := load(t)
	m1 := Train(f.cases[wiki.PtEn], DefaultConfig())
	m2 := Train(f.cases[wiki.PtEn], DefaultConfig())
	for k := range m1.W {
		if m1.W[k] != m2.W[k] {
			t.Fatalf("weights differ at %d: %v vs %v", k, m1.W[k], m2.W[k])
		}
	}
}

func TestEmptyTraining(t *testing.T) {
	m := Train(nil, DefaultConfig())
	if m.Positives != 0 || m.Negatives != 0 {
		t.Errorf("empty training = %d/%d", m.Positives, m.Negatives)
	}
	f := load(t)
	// An untrained model must not blow up at match time.
	out := m.Match(f.cases[wiki.PtEn][0], 0.5)
	_ = out
}
