package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/lsi"
	"repro/internal/sim"
	"repro/internal/wiki"
)

// Snapshot is the in-memory form of one artifact snapshot: everything a
// matching session caches, plus the provenance needed to validate it at
// load (corpus fingerprint, matcher configuration, creation time).
type Snapshot struct {
	// Fingerprint identifies the corpus the artifacts were built from
	// (wiki.Corpus.Fingerprint). Restore rejects snapshots whose
	// fingerprint does not match the serving corpus.
	Fingerprint uint64
	// CreatedAt is when the snapshot was written; wikimatchd reports the
	// snapshot's age from it on /healthz.
	CreatedAt time.Time
	// Config is the matcher configuration the artifacts were built under.
	Config core.Config
	// Pairs holds the per-language-pair artifacts, sorted by pair.
	Pairs []PairArtifacts
	// Types holds the per-entity-type artifacts, sorted by
	// (pair, typeA, typeB).
	Types []TypeArtifacts
}

// PairArtifacts is one language pair's cached state: the entity-type
// alignment and the cross-language-link translation dictionary (nil when
// the session ran the NoDictionary ablation).
type PairArtifacts struct {
	Pair  wiki.LanguagePair
	Types [][2]string
	Dict  *dict.Dictionary
}

// TypeArtifacts is one entity-type pair's cached state: the similarity
// workspace and the LSI model.
type TypeArtifacts struct {
	Pair         wiki.LanguagePair
	TypeA, TypeB string
	TD           *sim.TypeData
	LSI          *lsi.Model
}

// FilterPairs drops, in place, every pair- and type-artifact section
// whose language pair keep rejects. A fleet replica uses it to warm-load
// only the shard slice it owns from a full snapshot; the fingerprint and
// config are untouched, so the filtered snapshot still validates against
// the full corpus. A nil keep keeps everything.
func (s *Snapshot) FilterPairs(keep func(wiki.LanguagePair) bool) {
	if keep == nil {
		return
	}
	pairs := s.Pairs[:0]
	for _, p := range s.Pairs {
		if keep(p.Pair) {
			pairs = append(pairs, p)
		}
	}
	s.Pairs = pairs
	types := s.Types[:0]
	for _, t := range s.Types {
		if keep(t.Pair) {
			types = append(types, t)
		}
	}
	s.Types = types
}

// Write serializes the snapshot to w in the versioned container format.
// Sections are written in a canonical order (config, pairs sorted by
// pair, types sorted by pair/typeA/typeB) with deterministic payload
// encodings, so the same artifacts always produce the same bytes for a
// fixed CreatedAt (a zero CreatedAt is stamped with time.Now, which
// lands in the checksummed header and varies between saves).
func Write(w io.Writer, snap *Snapshot) error {
	cfg, err := json.Marshal(snap.Config)
	if err != nil {
		return fmt.Errorf("store: encode config: %w", err)
	}
	sections := []section{{kind: kindConfig, name: "config", payload: cfg}}

	pairs := append([]PairArtifacts(nil), snap.Pairs...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Pair.String() < pairs[j].Pair.String() })
	for i := range pairs {
		sections = append(sections, section{
			kind:    kindPair,
			name:    pairs[i].Pair.String(),
			payload: encodePair(&pairs[i]),
		})
	}

	types := append([]TypeArtifacts(nil), snap.Types...)
	sort.Slice(types, func(i, j int) bool {
		a, b := &types[i], &types[j]
		if a.Pair != b.Pair {
			return a.Pair.String() < b.Pair.String()
		}
		if a.TypeA != b.TypeA {
			return a.TypeA < b.TypeA
		}
		return a.TypeB < b.TypeB
	})
	for i := range types {
		sections = append(sections, section{
			kind:    kindType,
			name:    fmt.Sprintf("%s/%s~%s", types[i].Pair, types[i].TypeA, types[i].TypeB),
			payload: encodeType(&types[i]),
		})
	}

	createdAt := snap.CreatedAt
	if createdAt.IsZero() {
		createdAt = time.Now()
	}
	return writeContainer(w, snap.Fingerprint, createdAt.UnixNano(), sections)
}

// Read parses and fully verifies a snapshot from r. On any failure —
// truncation, bit flips, a future format version, malformed payloads —
// it returns a typed error and no snapshot; partial state is never
// handed out. Read does not know the serving corpus, so fingerprint
// validation is the caller's job (the service layer's Restore does it).
func Read(r io.Reader) (*Snapshot, error) {
	fingerprint, createdAt, sections, err := readContainer(r)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Fingerprint: fingerprint,
		CreatedAt:   time.Unix(0, createdAt),
	}
	seenConfig := false
	for _, s := range sections {
		label := sectionLabel(s.kind, s.name)
		switch s.kind {
		case kindConfig:
			if err := json.Unmarshal(s.payload, &snap.Config); err != nil {
				return nil, &CorruptError{Section: label, Err: err}
			}
			seenConfig = true
		case kindPair:
			p, err := decodePair(s.payload)
			if err != nil {
				return nil, &CorruptError{Section: label, Err: err}
			}
			snap.Pairs = append(snap.Pairs, *p)
		case kindType:
			t, err := decodeType(s.payload)
			if err != nil {
				return nil, &CorruptError{Section: label, Err: err}
			}
			snap.Types = append(snap.Types, *t)
		default:
			// Unknown section kinds within a known format version are a
			// writer bug, not forward compatibility; fail loudly.
			return nil, &CorruptError{Section: label, Err: fmt.Errorf("unknown section kind %d", s.kind)}
		}
	}
	if !seenConfig {
		return nil, &CorruptError{Section: "config", Err: fmt.Errorf("missing config section")}
	}
	return snap, nil
}

// ReadFile loads and verifies a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
