package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dict"
	"repro/internal/linalg"
	"repro/internal/lsi"
	"repro/internal/sim"
	"repro/internal/text"
	"repro/internal/wiki"
)

// Payload codecs for the artifact sections. All integers are uvarints,
// strings are length-prefixed UTF-8, and float64 values are stored as
// their exact IEEE-754 bit patterns — the decoded artifacts are
// bit-identical to the encoded ones, which is what lets a restored
// session reproduce a cold session's results byte for byte. Map-shaped
// state (TF vectors, co-occurrence counters, dictionaries) is written in
// sorted order so the same artifacts always produce the same bytes.

// encoder accumulates a payload.
type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(v int) { e.buf = binary.AppendUvarint(e.buf, uint64(v)) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) str(s string)  { e.uvarint(len(s)); e.buf = append(e.buf, s...) }
func (e *encoder) blob(b []byte) { e.uvarint(len(b)); e.buf = append(e.buf, b...) }
func (e *encoder) boolean(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// tf writes a term-frequency vector with sorted terms.
func (e *encoder) tf(v text.TF) {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	e.uvarint(len(terms))
	for _, t := range terms {
		e.str(t)
		e.f64(v[t])
	}
}

// decoder consumes a payload, accumulating the first error.
type decoder struct {
	buf []byte
	err error
}

var errShort = errors.New("unexpected end of payload")

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) uvarint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 || v > math.MaxInt64 {
		d.fail(errShort)
		return 0
	}
	d.buf = d.buf[n:]
	return int(v)
}

// count reads a length and bounds it against the remaining payload
// (each element needs at least one byte), so corrupt lengths cannot
// drive huge allocations.
func (d *decoder) count() int {
	n := d.uvarint()
	if d.err == nil && n > len(d.buf) {
		d.fail(errShort)
		return 0
	}
	return n
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail(errShort)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > len(d.buf) {
		d.fail(errShort)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) blob() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > len(d.buf) {
		d.fail(errShort)
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) boolean() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) < 1 {
		d.fail(errShort)
		return false
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	if v > 1 {
		d.fail(fmt.Errorf("invalid boolean byte %d", v))
		return false
	}
	return v == 1
}

func (d *decoder) tf() text.TF {
	n := d.count()
	v := make(text.TF, n)
	for i := 0; i < n && d.err == nil; i++ {
		term := d.str()
		v[term] = d.f64()
	}
	return v
}

// finish asserts the payload was consumed exactly.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%d trailing bytes", len(d.buf))
	}
	return nil
}

// --- pair section ------------------------------------------------------

// encodePair writes one pair's artifacts: the entity-type alignment and
// the translation dictionary (absent for NoDictionary sessions).
func encodePair(p *PairArtifacts) []byte {
	var e encoder
	e.str(string(p.Pair.A))
	e.str(string(p.Pair.B))
	e.uvarint(len(p.Types))
	for _, tp := range p.Types {
		e.str(tp[0])
		e.str(tp[1])
	}
	e.boolean(p.Dict != nil)
	if p.Dict != nil {
		e.str(string(p.Dict.From))
		e.str(string(p.Dict.To))
		entries := p.Dict.Entries()
		e.uvarint(len(entries))
		for _, kv := range entries {
			e.str(kv[0])
			e.str(kv[1])
		}
	}
	return e.buf
}

func decodePair(payload []byte) (*PairArtifacts, error) {
	d := decoder{buf: payload}
	p := &PairArtifacts{}
	p.Pair.A = wiki.Language(d.str())
	p.Pair.B = wiki.Language(d.str())
	n := d.count()
	p.Types = make([][2]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		a := d.str()
		b := d.str()
		p.Types = append(p.Types, [2]string{a, b})
	}
	if d.boolean() {
		from := wiki.Language(d.str())
		to := wiki.Language(d.str())
		m := d.count()
		entries := make([][2]string, 0, m)
		for i := 0; i < m && d.err == nil; i++ {
			k := d.str()
			v := d.str()
			entries = append(entries, [2]string{k, v})
		}
		p.Dict = dict.FromEntries(from, to, entries)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// --- type section ------------------------------------------------------

// encodeType writes one entity-type pair's artifacts: the similarity
// workspace and the LSI model.
func encodeType(t *TypeArtifacts) []byte {
	var e encoder
	e.str(string(t.Pair.A))
	e.str(string(t.Pair.B))
	e.str(t.TypeA)
	e.str(t.TypeB)
	encodeTypeData(&e, t.TD.Snapshot())
	encodeModel(&e, t.LSI)
	return e.buf
}

func decodeType(payload []byte) (*TypeArtifacts, error) {
	d := decoder{buf: payload}
	t := &TypeArtifacts{}
	t.Pair.A = wiki.Language(d.str())
	t.Pair.B = wiki.Language(d.str())
	t.TypeA = d.str()
	t.TypeB = d.str()
	snap := decodeTypeData(&d)
	model := decodeModel(&d)
	if err := d.finish(); err != nil {
		return nil, err
	}
	t.TD = sim.FromSnapshot(snap)
	t.LSI = model
	return t, nil
}

func encodeAttrs(e *encoder, attrs []sim.Attr) {
	e.uvarint(len(attrs))
	for _, a := range attrs {
		e.str(string(a.Lang))
		e.str(a.Name)
	}
}

func decodeAttrs(d *decoder) []sim.Attr {
	n := d.count()
	attrs := make([]sim.Attr, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		lang := wiki.Language(d.str())
		name := d.str()
		attrs = append(attrs, sim.Attr{Lang: lang, Name: name})
	}
	return attrs
}

// vecs writes one TF vector per attribute; nilable marks sides that may
// be absent (the translated vectors exist only on the pair.A side).
func encodeVecs(e *encoder, vecs []text.TF, nilable bool) {
	e.uvarint(len(vecs))
	for _, v := range vecs {
		if nilable {
			e.boolean(v != nil)
			if v == nil {
				continue
			}
		}
		e.tf(v)
	}
}

func decodeVecs(d *decoder, nilable bool) []text.TF {
	n := d.count()
	vecs := make([]text.TF, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		if nilable && !d.boolean() {
			vecs = append(vecs, nil)
			continue
		}
		vecs = append(vecs, d.tf())
	}
	return vecs
}

func encodeIndexList(e *encoder, idx []int) {
	e.uvarint(len(idx))
	for _, i := range idx {
		e.uvarint(i)
	}
}

func (d *decoder) indexList(limit int) []int {
	n := d.count()
	out := make([]int, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		v := d.uvarint()
		if d.err == nil && v >= limit {
			d.fail(fmt.Errorf("attribute index %d out of range %d", v, limit))
			return out
		}
		out = append(out, v)
	}
	return out
}

func encodeCoCounts(e *encoder, cs []sim.CoCount) {
	e.uvarint(len(cs))
	for _, c := range cs {
		e.uvarint(c.I)
		e.uvarint(c.J)
		e.uvarint(c.N)
	}
}

func decodeCoCounts(d *decoder, limit int) []sim.CoCount {
	n := d.count()
	out := make([]sim.CoCount, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		c := sim.CoCount{I: d.uvarint(), J: d.uvarint(), N: d.uvarint()}
		if d.err == nil && (c.I >= limit || c.J >= limit) {
			d.fail(fmt.Errorf("co-occurrence index (%d,%d) out of range %d", c.I, c.J, limit))
			return out
		}
		out = append(out, c)
	}
	return out
}

func encodeTypeData(e *encoder, s *sim.Snapshot) {
	e.str(string(s.Pair.A))
	e.str(string(s.Pair.B))
	e.str(s.TypeA)
	e.str(s.TypeB)
	encodeAttrs(e, s.Attrs)
	e.uvarint(len(s.Display))
	for _, disp := range s.Display {
		e.str(disp)
	}
	e.uvarint(len(s.DualsA))
	for k := range s.DualsA {
		encodeIndexList(e, s.DualsA[k])
		encodeIndexList(e, s.DualsB[k])
	}
	encodeVecs(e, s.ValueVec, false)
	encodeVecs(e, s.TransVec, true)
	encodeVecs(e, s.LinkVec, false)
	encodeVecs(e, s.RawVec, false)
	encodeVecs(e, s.RawTransVec, true)
	e.uvarint(len(s.Occ))
	for _, o := range s.Occ {
		e.uvarint(o)
	}
	encodeCoCounts(e, s.CoLang)
	encodeCoCounts(e, s.CoDual)
	langs := make([]string, 0, len(s.NBoxes))
	for l := range s.NBoxes {
		langs = append(langs, string(l))
	}
	sort.Strings(langs)
	e.uvarint(len(langs))
	for _, l := range langs {
		e.str(l)
		e.uvarint(s.NBoxes[wiki.Language(l)])
	}
}

func decodeTypeData(d *decoder) *sim.Snapshot {
	s := &sim.Snapshot{}
	s.Pair.A = wiki.Language(d.str())
	s.Pair.B = wiki.Language(d.str())
	s.TypeA = d.str()
	s.TypeB = d.str()
	s.Attrs = decodeAttrs(d)
	nAttrs := len(s.Attrs)
	nd := d.count()
	s.Display = make([]string, 0, nd)
	for i := 0; i < nd && d.err == nil; i++ {
		s.Display = append(s.Display, d.str())
	}
	nDuals := d.count()
	s.DualsA = make([][]int, 0, nDuals)
	s.DualsB = make([][]int, 0, nDuals)
	for k := 0; k < nDuals && d.err == nil; k++ {
		s.DualsA = append(s.DualsA, d.indexList(nAttrs))
		s.DualsB = append(s.DualsB, d.indexList(nAttrs))
	}
	s.ValueVec = decodeVecs(d, false)
	s.TransVec = decodeVecs(d, true)
	s.LinkVec = decodeVecs(d, false)
	s.RawVec = decodeVecs(d, false)
	s.RawTransVec = decodeVecs(d, true)
	nOcc := d.count()
	s.Occ = make([]int, 0, nOcc)
	for i := 0; i < nOcc && d.err == nil; i++ {
		s.Occ = append(s.Occ, d.uvarint())
	}
	s.CoLang = decodeCoCounts(d, nAttrs)
	s.CoDual = decodeCoCounts(d, nAttrs)
	nLangs := d.count()
	s.NBoxes = make(map[wiki.Language]int, nLangs)
	for i := 0; i < nLangs && d.err == nil; i++ {
		l := wiki.Language(d.str())
		s.NBoxes[l] = d.uvarint()
	}
	if d.err == nil && (len(s.Display) != nAttrs ||
		len(s.ValueVec) != nAttrs || len(s.TransVec) != nAttrs ||
		len(s.LinkVec) != nAttrs || len(s.RawVec) != nAttrs ||
		len(s.RawTransVec) != nAttrs || len(s.Occ) != nAttrs) {
		d.fail(fmt.Errorf("attribute-indexed slices disagree with %d attributes", nAttrs))
	}
	return s
}

func encodeModel(e *encoder, m *lsi.Model) {
	e.uvarint(m.Rank())
	encodeAttrs(e, m.Attrs)
	e.blob(m.Embedding().AppendBinary(nil))
	pairs := m.CoOccurrences()
	e.uvarint(len(pairs))
	for _, p := range pairs {
		e.uvarint(p[0])
		e.uvarint(p[1])
	}
}

func decodeModel(d *decoder) *lsi.Model {
	rank := d.uvarint()
	attrs := decodeAttrs(d)
	raw := d.blob()
	if d.err != nil {
		return nil
	}
	var emb linalg.Matrix
	if err := emb.UnmarshalBinary(raw); err != nil {
		d.fail(fmt.Errorf("lsi embedding: %w", err))
		return nil
	}
	if emb.Rows != len(attrs) {
		d.fail(fmt.Errorf("lsi embedding has %d rows for %d attributes", emb.Rows, len(attrs)))
		return nil
	}
	n := d.count()
	pairs := make([][2]int, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		p := [2]int{d.uvarint(), d.uvarint()}
		if d.err == nil && (p[0] >= len(attrs) || p[1] >= len(attrs)) {
			d.fail(fmt.Errorf("lsi co-occurrence (%d,%d) out of range %d", p[0], p[1], len(attrs)))
			return nil
		}
		pairs = append(pairs, p)
	}
	if d.err != nil {
		return nil
	}
	return lsi.Restore(attrs, rank, &emb, pairs)
}
