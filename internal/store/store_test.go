package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/lsi"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/wiki"
)

var (
	snapOnce sync.Once
	snapMem  *Snapshot
	snapRaw  []byte
)

// testSnapshot builds one realistic snapshot from the small synthetic
// corpus: both pair artifact sets and every matched type's workspace and
// LSI model — the same artifacts a warm session would hold.
func testSnapshot(t testing.TB) (*Snapshot, []byte) {
	t.Helper()
	snapOnce.Do(func() {
		c, _, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			panic(err)
		}
		cfg := core.DefaultConfig()
		snap := &Snapshot{
			Fingerprint: c.Fingerprint(),
			CreatedAt:   time.Unix(1700000000, 123456789),
			Config:      cfg,
		}
		for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
			types := core.MatchEntityTypes(c, pair)
			d := dict.Build(c, pair.A, pair.B)
			snap.Pairs = append(snap.Pairs, PairArtifacts{Pair: pair, Types: types, Dict: d})
			for _, tp := range types {
				td := sim.BuildTypeData(c, pair, tp[0], tp[1], d)
				model := lsi.Build(td.Duals, cfg.LSIRank, td.Attrs...)
				snap.Types = append(snap.Types, TypeArtifacts{
					Pair: pair, TypeA: tp[0], TypeB: tp[1], TD: td, LSI: model,
				})
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, snap); err != nil {
			panic(err)
		}
		snapMem, snapRaw = snap, buf.Bytes()
	})
	if snapMem == nil {
		t.Fatal("snapshot setup failed")
	}
	return snapMem, snapRaw
}

func TestRoundTrip(t *testing.T) {
	want, raw := testSnapshot(t)
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("fingerprint %x != %x", got.Fingerprint, want.Fingerprint)
	}
	if !got.CreatedAt.Equal(want.CreatedAt) {
		t.Errorf("createdAt %v != %v", got.CreatedAt, want.CreatedAt)
	}
	if got.Config != want.Config {
		t.Errorf("config %+v != %+v", got.Config, want.Config)
	}
	if len(got.Pairs) != len(want.Pairs) || len(got.Types) != len(want.Types) {
		t.Fatalf("got %d pairs / %d types, want %d / %d",
			len(got.Pairs), len(got.Types), len(want.Pairs), len(want.Types))
	}
	for i, wp := range want.Pairs {
		gp := got.Pairs[i]
		if gp.Pair != wp.Pair || len(gp.Types) != len(wp.Types) {
			t.Fatalf("pair %d: %v (%d types) != %v (%d types)", i, gp.Pair, len(gp.Types), wp.Pair, len(wp.Types))
		}
		if gp.Dict.Len() != wp.Dict.Len() {
			t.Errorf("pair %v: dict %d entries != %d", wp.Pair, gp.Dict.Len(), wp.Dict.Len())
		}
		ge, we := gp.Dict.Entries(), wp.Dict.Entries()
		for k := range we {
			if ge[k] != we[k] {
				t.Fatalf("pair %v: dict entry %d: %v != %v", wp.Pair, k, ge[k], we[k])
			}
		}
	}
	// Restored type artifacts must score every attribute pair
	// bit-identically.
	for i, wt := range want.Types {
		gt := got.Types[i]
		if gt.Pair != wt.Pair || gt.TypeA != wt.TypeA || gt.TypeB != wt.TypeB {
			t.Fatalf("type %d: %v/%s~%s != %v/%s~%s",
				i, gt.Pair, gt.TypeA, gt.TypeB, wt.Pair, wt.TypeA, wt.TypeB)
		}
		if len(gt.TD.Attrs) != len(wt.TD.Attrs) {
			t.Fatalf("type %s: %d attrs != %d", wt.TypeA, len(gt.TD.Attrs), len(wt.TD.Attrs))
		}
		for _, p := range wt.TD.AllPairs() {
			i, j := p[0], p[1]
			if math.Float64bits(gt.TD.VSim(i, j)) != math.Float64bits(wt.TD.VSim(i, j)) {
				t.Fatalf("type %s: VSim(%d,%d) differs", wt.TypeA, i, j)
			}
			if math.Float64bits(gt.TD.LSim(i, j)) != math.Float64bits(wt.TD.LSim(i, j)) {
				t.Fatalf("type %s: LSim(%d,%d) differs", wt.TypeA, i, j)
			}
			if math.Float64bits(gt.TD.Grouping(i, j)) != math.Float64bits(wt.TD.Grouping(i, j)) {
				t.Fatalf("type %s: Grouping(%d,%d) differs", wt.TypeA, i, j)
			}
		}
		if gt.LSI.Len() != wt.LSI.Len() || gt.LSI.Rank() != wt.LSI.Rank() {
			t.Fatalf("type %s: model %d/%d != %d/%d",
				wt.TypeA, gt.LSI.Len(), gt.LSI.Rank(), wt.LSI.Len(), wt.LSI.Rank())
		}
		for i := 0; i < wt.LSI.Len(); i++ {
			for j := 0; j < wt.LSI.Len(); j++ {
				if math.Float64bits(gt.LSI.Score(i, j)) != math.Float64bits(wt.LSI.Score(i, j)) {
					t.Fatalf("type %s: LSI score (%d,%d) differs", wt.TypeA, i, j)
				}
			}
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	snap, raw := testSnapshot(t)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Error("two writes of the same snapshot produced different bytes")
	}
}

// TestTruncated cuts the snapshot at a spread of lengths; every prefix
// must fail with a typed error and never yield a snapshot.
func TestTruncated(t *testing.T) {
	_, raw := testSnapshot(t)
	lengths := []int{0, 4, len(Magic), headerSize - 1, headerSize, headerSize + 3}
	for cut := headerSize; cut < len(raw); cut += len(raw) / 97 {
		lengths = append(lengths, cut)
	}
	lengths = append(lengths, len(raw)-1)
	for _, n := range lengths {
		snap, err := Read(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes: no error", n, len(raw))
		}
		if snap != nil {
			t.Fatalf("truncation at %d: partial snapshot returned", n)
		}
		var ce *ChecksumError
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: untyped error %v", n, err)
		}
	}
}

// TestFlippedBytes flips single bytes across the whole file; every flip
// must be caught by a checksum (or a structural check) — never decode.
func TestFlippedBytes(t *testing.T) {
	_, raw := testSnapshot(t)
	step := len(raw) / 211
	if step < 1 {
		step = 1
	}
	for pos := 0; pos < len(raw); pos += step {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		snap, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flipped byte at %d/%d: accepted", pos, len(raw))
		}
		if snap != nil {
			t.Fatalf("flipped byte at %d: partial snapshot returned", pos)
		}
	}
}

func TestFutureVersion(t *testing.T) {
	_, raw := testSnapshot(t)
	mut := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(mut[8:], Version+1)
	_, err := Read(bytes.NewReader(mut))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("future version: got %v, want VersionError", err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Errorf("VersionError = %+v", ve)
	}
}

func TestBadMagic(t *testing.T) {
	_, raw := testSnapshot(t)
	mut := append([]byte(nil), raw...)
	mut[0] = 'X'
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, err := Read(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage: got %v", err)
	}
}

func TestTrailingGarbage(t *testing.T) {
	_, raw := testSnapshot(t)
	mut := append(append([]byte(nil), raw...), "extra"...)
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing garbage: got %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	snap, raw := testSnapshot(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "artifacts.wmsnap")

	// A failing write must leave neither the target nor temp litter.
	boom := fmt.Errorf("disk on fire")
	err := WriteFile(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("WriteFile error = %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("failed write left %d files behind", len(entries))
	}

	// A successful write must land atomically and read back verbatim.
	if err := WriteFile(path, func(w io.Writer) error { return Write(w, snap) }); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Error("file contents differ from direct Write output")
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	// Overwriting an existing snapshot must also succeed (rename over).
	if err := WriteFile(path, func(w io.Writer) error { return Write(w, snap) }); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
}

// TestFilterPairs: the shard filter drops exactly the rejected pairs'
// sections, in place, leaving fingerprint and config for the full-corpus
// validation a replica still performs.
func TestFilterPairs(t *testing.T) {
	snap, raw := testSnapshot(t)
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got.FilterPairs(func(p wiki.LanguagePair) bool { return p == wiki.PtEn })
	if len(got.Pairs) != 1 || got.Pairs[0].Pair != wiki.PtEn {
		t.Fatalf("filtered pairs = %+v, want only pt-en", got.Pairs)
	}
	for _, typ := range got.Types {
		if typ.Pair != wiki.PtEn {
			t.Errorf("type section for unowned pair %s survived the filter", typ.Pair)
		}
	}
	if got.Fingerprint != snap.Fingerprint {
		t.Error("filter changed the fingerprint")
	}

	// nil keeps everything; rejecting everything empties both sections.
	full, _ := Read(bytes.NewReader(raw))
	full.FilterPairs(nil)
	if len(full.Pairs) != len(snap.Pairs) || len(full.Types) != len(snap.Types) {
		t.Error("nil keep dropped sections")
	}
	full.FilterPairs(func(wiki.LanguagePair) bool { return false })
	if len(full.Pairs) != 0 || len(full.Types) != 0 {
		t.Error("reject-all keep left sections behind")
	}
}
