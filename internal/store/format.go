// Package store persists the expensive matching artifacts — translation
// dictionaries, entity-type alignments, per-type similarity workspaces
// and LSI models — as versioned binary snapshots, giving the system the
// offline/online split production matchers rely on: precompute once
// (wikimatch precompute), ship the artifact file, serve warm
// (wikimatchd -store).
//
// A snapshot is a single self-contained file:
//
//	header    magic, format version, corpus fingerprint, creation time
//	table     one entry per section: kind, name, payload length, CRC32
//	checksum  CRC32 over header+table
//	payloads  section payloads, concatenated in table order
//
// Every payload is covered by its own CRC32 and the header/table region
// by a trailing CRC32, so any flipped byte anywhere in the file is
// detected at load. Loading is all-or-nothing: a snapshot that fails any
// check yields a typed error and no partial state. Snapshots are keyed
// by a corpus fingerprint (wiki.Corpus.Fingerprint); the service layer
// rejects a snapshot whose fingerprint does not match the corpus it is
// being restored against, so stale artifacts are never served.
//
// See README.md in this directory for the exact byte layout.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Magic opens every snapshot file.
const Magic = "WMSTORE\n"

// Version is the current format version. Readers reject snapshots with a
// newer version (they cannot know its layout) with a VersionError;
// writers always emit this version.
const Version uint32 = 1

// Section kinds.
const (
	kindConfig uint16 = 1 // matcher configuration (JSON)
	kindPair   uint16 = 2 // per-pair artifacts: type alignment + dictionary
	kindType   uint16 = 3 // per-type artifacts: TypeData + LSI model
)

// Typed load errors. Every failure mode the robustness tests exercise
// maps to exactly one of these, so callers can tell a stale snapshot
// from a corrupt one from a future one.
var (
	// ErrBadMagic means the input is not a wikimatch snapshot at all.
	ErrBadMagic = errors.New("store: bad magic (not a wikimatch snapshot)")
	// ErrTruncated means the input ended before the structure it
	// promised, or a declared length exceeds the available bytes.
	ErrTruncated = errors.New("store: truncated snapshot")
)

// VersionError reports a snapshot written by a newer format than this
// reader understands.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("store: snapshot format v%d newer than supported v%d", e.Got, e.Want)
}

// ChecksumError reports a CRC32 mismatch: the named region was altered
// after the snapshot was written.
type ChecksumError struct {
	Section string
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("store: checksum mismatch in %s", e.Section)
}

// CorruptError reports a payload that passed its checksum but failed to
// decode — a writer/reader disagreement rather than bit rot.
type CorruptError struct {
	Section string
	Err     error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt section %s: %v", e.Section, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// FingerprintError reports a snapshot built from a different corpus than
// the one it is being restored against.
type FingerprintError struct {
	Snapshot, Corpus uint64
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("store: snapshot corpus fingerprint %016x does not match corpus %016x", e.Snapshot, e.Corpus)
}

// ConfigMismatchError reports a restore whose requested configuration
// diverges from the snapshot's on a field that shaped the persisted
// artifacts (dictionary use, LSI rank, SVD path) — serving them would
// silently produce results a cold build with that configuration would
// not.
type ConfigMismatchError struct {
	Field string
}

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("store: snapshot artifacts were built with a different %s configuration", e.Field)
}

// section is one named, checksummed blob inside a snapshot.
type section struct {
	kind    uint16
	name    string
	payload []byte
}

const headerSize = 8 + 4 + 8 + 8 + 4 // magic, version, fingerprint, created-at, section count

// maxSections bounds the section count a reader will accept, so a
// corrupt header cannot demand an absurd allocation. A snapshot holds a
// handful of pairs and a few dozen types.
const maxSections = 1 << 20

// writeContainer assembles the container around the given sections and
// writes it to w. createdAt is Unix nanoseconds.
func writeContainer(w io.Writer, fingerprint uint64, createdAt int64, sections []section) error {
	head := make([]byte, 0, headerSize+64*len(sections))
	head = append(head, Magic...)
	head = binary.LittleEndian.AppendUint32(head, Version)
	head = binary.LittleEndian.AppendUint64(head, fingerprint)
	head = binary.LittleEndian.AppendUint64(head, uint64(createdAt))
	head = binary.LittleEndian.AppendUint32(head, uint32(len(sections)))
	for _, s := range sections {
		head = binary.LittleEndian.AppendUint16(head, s.kind)
		head = binary.AppendUvarint(head, uint64(len(s.name)))
		head = append(head, s.name...)
		head = binary.AppendUvarint(head, uint64(len(s.payload)))
		head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(s.payload))
	}
	head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(head))
	if _, err := w.Write(head); err != nil {
		return err
	}
	for _, s := range sections {
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}

// readContainer parses and verifies a whole snapshot from r: magic,
// version, header/table checksum, then every section payload against its
// CRC32. It returns the header fields and the verified sections, or a
// typed error and nothing.
func readContainer(r io.Reader) (fingerprint uint64, createdAt int64, sections []section, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(data) < len(Magic) {
		return 0, 0, nil, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, 0, nil, ErrBadMagic
	}
	if len(data) < headerSize {
		return 0, 0, nil, ErrTruncated
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version > Version {
		return 0, 0, nil, &VersionError{Got: version, Want: Version}
	}
	fingerprint = binary.LittleEndian.Uint64(data[12:20])
	createdAt = int64(binary.LittleEndian.Uint64(data[20:28]))
	nSections := binary.LittleEndian.Uint32(data[28:32])
	if nSections > maxSections {
		return 0, 0, nil, ErrTruncated
	}

	// Walk the section table.
	type tableEntry struct {
		kind   uint16
		name   string
		length int
		crc    uint32
	}
	pos := headerSize
	entries := make([]tableEntry, 0, nSections)
	for i := uint32(0); i < nSections; i++ {
		var e tableEntry
		if pos+2 > len(data) {
			return 0, 0, nil, ErrTruncated
		}
		e.kind = binary.LittleEndian.Uint16(data[pos:])
		pos += 2
		nameLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || nameLen > uint64(len(data)-pos-n) {
			return 0, 0, nil, ErrTruncated
		}
		pos += n
		e.name = string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		payLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || payLen > math.MaxInt32 {
			return 0, 0, nil, ErrTruncated
		}
		pos += n
		e.length = int(payLen)
		if pos+4 > len(data) {
			return 0, 0, nil, ErrTruncated
		}
		e.crc = binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		entries = append(entries, e)
	}
	if pos+4 > len(data) {
		return 0, 0, nil, ErrTruncated
	}
	if crc32.ChecksumIEEE(data[:pos]) != binary.LittleEndian.Uint32(data[pos:]) {
		return 0, 0, nil, &ChecksumError{Section: "header"}
	}
	pos += 4

	// Slice out and verify the payloads.
	sections = make([]section, 0, len(entries))
	for _, e := range entries {
		if e.length > len(data)-pos {
			return 0, 0, nil, ErrTruncated
		}
		payload := data[pos : pos+e.length]
		pos += e.length
		if crc32.ChecksumIEEE(payload) != e.crc {
			return 0, 0, nil, &ChecksumError{Section: sectionLabel(e.kind, e.name)}
		}
		sections = append(sections, section{kind: e.kind, name: e.name, payload: payload})
	}
	if pos != len(data) {
		return 0, 0, nil, ErrTruncated
	}
	return fingerprint, createdAt, sections, nil
}

func sectionLabel(kind uint16, name string) string {
	switch kind {
	case kindConfig:
		return "config"
	case kindPair:
		return "pair " + name
	case kindType:
		return "type " + name
	}
	return fmt.Sprintf("kind-%d %s", kind, name)
}

// WriteFile writes a snapshot produced by the write callback to path
// atomically: the bytes land in a temporary file in the same directory,
// are synced to disk, and are renamed over path only on success. A
// crash or error mid-write never leaves a partial snapshot at path.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wmsnap-*")
	if err != nil {
		return fmt.Errorf("store: create temp snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err = os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: chmod snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return nil
}
