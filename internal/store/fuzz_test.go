package store

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/linalg"
	"repro/internal/lsi"
	"repro/internal/sim"
	"repro/internal/text"
	"repro/internal/wiki"
)

// tinySnapshot hand-builds the smallest meaningful snapshot — one pair
// with a dictionary, one type with a two-attribute workspace and a rank-1
// LSI model — without touching the corpus pipeline, so the fuzz seed
// corpus stays a few hundred bytes.
func tinySnapshot() *Snapshot {
	attrs := []sim.Attr{
		{Lang: wiki.Portuguese, Name: "direcao"},
		{Lang: wiki.English, Name: "directed by"},
	}
	td := sim.FromSnapshot(&sim.Snapshot{
		Pair:  wiki.PtEn,
		TypeA: "filme", TypeB: "film",
		Attrs:       attrs,
		Display:     []string{"Direção", "Directed by"},
		DualsA:      [][]int{{0}},
		DualsB:      [][]int{{1}},
		ValueVec:    []text.TF{{"spielberg": 1}, {"spielberg": 1}},
		TransVec:    []text.TF{{"spielberg": 1}, nil},
		LinkVec:     []text.TF{{"steven spielberg": 1}, {"steven spielberg": 1}},
		RawVec:      []text.TF{{"spielberg": 1}, {"spielberg": 1}},
		RawTransVec: []text.TF{{"spielberg": 1}, nil},
		Occ:         []int{1, 1},
		CoDual:      []sim.CoCount{{I: 0, J: 1, N: 1}},
		NBoxes:      map[wiki.Language]int{wiki.Portuguese: 1, wiki.English: 1},
	})
	emb := linalg.NewMatrix(2, 1)
	emb.Data[0], emb.Data[1] = 0.7, 0.7
	model := lsi.Restore(attrs, 1, emb, [][2]int{{0, 1}})
	return &Snapshot{
		Fingerprint: 0xfeedface,
		CreatedAt:   time.Unix(1700000000, 0),
		Config:      core.DefaultConfig(),
		Pairs: []PairArtifacts{{
			Pair:  wiki.PtEn,
			Types: [][2]string{{"filme", "film"}},
			Dict:  dict.FromEntries(wiki.Portuguese, wiki.English, [][2]string{{"direcao", "directed by"}}),
		}},
		Types: []TypeArtifacts{{
			Pair: wiki.PtEn, TypeA: "filme", TypeB: "film", TD: td, LSI: model,
		}},
	}
}

// FuzzReadSnapshot asserts the one property the warm-start path rests
// on: store.Read never panics and never hands out partial state, no
// matter how adversarial the bytes. Anything it does accept must survive
// a write/read round trip.
func FuzzReadSnapshot(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, tinySnapshot()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:len(Magic)+4]) // header cut short
	f.Add(valid[:headerSize+3]) // mid section table
	f.Add(valid[:len(valid)-1]) // truncated payload
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // payload bit flip
	f.Add(flipped)
	future := append([]byte(nil), valid...)
	future[8] = 0xff // format version from the future
	f.Add(future)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err != nil {
			if snap != nil {
				t.Fatalf("Read returned partial state alongside error %v", err)
			}
			return
		}
		// Accepted input must re-encode and re-decode cleanly: the decoded
		// artifacts are structurally sound, not just checksummed.
		var out bytes.Buffer
		if err := Write(&out, snap); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if _, err := Read(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
	})
}
