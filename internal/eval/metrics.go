// Package eval implements the paper's evaluation machinery: the weighted
// precision/recall/F-measure of Section 4 (Equations 1–4), the
// macro-averaged variants of Appendix B, mean average precision for
// candidate orderings (Table 7), the structural-heterogeneity overlap of
// Appendix A (Table 5), Pearson correlation, and the cumulative gain
// measure of the case study (Figure 4).
package eval

import (
	"math"
	"sort"
)

// Correspondences maps each source-language attribute name to the set of
// target-language names it aligns with — both the derived set C and the
// ground truth G take this shape.
type Correspondences map[string]map[string]bool

// Has reports whether the pair (a, b) is present.
func (c Correspondences) Has(a, b string) bool { return c[a][b] }

// Add inserts a pair.
func (c Correspondences) Add(a, b string) {
	if c[a] == nil {
		c[a] = make(map[string]bool)
	}
	c[a][b] = true
}

// Pairs counts the distinct pairs.
func (c Correspondences) Pairs() int {
	n := 0
	for _, bs := range c {
		n += len(bs)
	}
	return n
}

// PRF bundles precision, recall and F-measure.
type PRF struct {
	Precision, Recall, F float64
}

// fmeasure is the harmonic mean of precision and recall.
func fmeasure(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Weighted computes the paper's weighted precision and recall
// (Equations 1–4). freqA and freqB give attribute frequencies |a| in the
// two languages' infobox sets; derived is C and truth is G.
func Weighted(derived, truth Correspondences, freqA, freqB map[string]float64) PRF {
	// Precision (Eqs. 1 and 3): weighted over attributes appearing in C,
	// and within an attribute over its derived counterparts.
	var pNum, pDen float64
	for a, bs := range derived {
		if len(bs) == 0 {
			continue
		}
		wa := freqA[a]
		var inner, innerDen float64
		for b := range bs {
			wb := freqB[b]
			innerDen += wb
			if truth.Has(a, b) {
				inner += wb
			}
		}
		if innerDen == 0 {
			// Counterparts never observed carry no weight; treat the
			// attribute's precision as 0 over uniform weights.
			inner, innerDen = 0, 1
			for b := range bs {
				if truth.Has(a, b) {
					inner++
				}
			}
			innerDen = float64(len(bs))
		}
		pNum += wa * (inner / innerDen)
		pDen += wa
	}
	precision := 0.0
	if pDen > 0 {
		precision = pNum / pDen
	}

	// Recall (Eqs. 2 and 4): weighted over attributes appearing in G,
	// and within an attribute over its ground-truth counterparts,
	// crediting those the algorithm derived.
	var rNum, rDen float64
	for a, bs := range truth {
		if len(bs) == 0 {
			continue
		}
		wa := freqA[a]
		var inner, innerDen float64
		for b := range bs {
			wb := freqB[b]
			innerDen += wb
			if derived.Has(a, b) {
				inner += wb
			}
		}
		if innerDen == 0 {
			inner, innerDen = 0, 1
			for b := range bs {
				if derived.Has(a, b) {
					inner++
				}
			}
			innerDen = float64(len(bs))
		}
		rNum += wa * (inner / innerDen)
		rDen += wa
	}
	recall := 0.0
	if rDen > 0 {
		recall = rNum / rDen
	}
	return PRF{Precision: precision, Recall: recall, F: fmeasure(precision, recall)}
}

// Macro computes the unweighted variant of Appendix B: distinct
// attribute-name pairs are counted equally.
func Macro(derived, truth Correspondences) PRF {
	correct := 0
	for a, bs := range derived {
		for b := range bs {
			if truth.Has(a, b) {
				correct++
			}
		}
	}
	p, r := 0.0, 0.0
	if d := derived.Pairs(); d > 0 {
		p = float64(correct) / float64(d)
	}
	if g := truth.Pairs(); g > 0 {
		r = float64(correct) / float64(g)
	}
	return PRF{Precision: p, Recall: r, F: fmeasure(p, r)}
}

// Average averages a list of PRF rows (the "Avg" row of Table 2).
func Average(rows []PRF) PRF {
	if len(rows) == 0 {
		return PRF{}
	}
	var out PRF
	for _, r := range rows {
		out.Precision += r.Precision
		out.Recall += r.Recall
		out.F += r.F
	}
	n := float64(len(rows))
	out.Precision /= n
	out.Recall /= n
	out.F /= n
	return out
}

// RankedPair is a scored candidate pair for MAP evaluation.
type RankedPair struct {
	A, B  string
	Score float64
}

// MAP computes mean average precision over the ranked candidate pairs
// (Appendix B): for each source attribute with at least one correct
// match, average precision over its ranked candidates; then the mean
// over attributes. Ties are broken by pair name for determinism.
func MAP(ranked []RankedPair, truth Correspondences) float64 {
	byA := make(map[string][]RankedPair)
	for _, rp := range ranked {
		byA[rp.A] = append(byA[rp.A], rp)
	}
	var attrs []string
	for a := range truth {
		if len(truth[a]) > 0 {
			attrs = append(attrs, a)
		}
	}
	sort.Strings(attrs)
	var sum float64
	n := 0
	for _, a := range attrs {
		cands := append([]RankedPair(nil), byA[a]...)
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Score != cands[j].Score {
				return cands[i].Score > cands[j].Score
			}
			return cands[i].B < cands[j].B
		})
		mj := len(truth[a])
		var ap float64
		correctSeen := 0
		for rank, cand := range cands {
			if truth.Has(a, cand.B) {
				correctSeen++
				ap += float64(correctSeen) / float64(rank+1)
			}
		}
		sum += ap / float64(mj)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// series (used to relate overlap and F-measure across types).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// CumulativeGain returns the running sum of relevance scores: CG[k] is
// the total relevance of the top k+1 answers (Järvelin & Kekäläinen).
func CumulativeGain(relevance []float64) []float64 {
	out := make([]float64, len(relevance))
	var sum float64
	for i, r := range relevance {
		sum += r
		out[i] = sum
	}
	return out
}
