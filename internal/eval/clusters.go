package eval

// Cluster-level evaluation for the all-pairs multilingual workload:
// cross-language correspondence clusters (internal/multi) are scored
// against a reference clustering derived from the pairwise gold data,
// either per element (B-cubed) or per co-clustered pair (pair-counting
// precision/recall). Items are opaque strings; an item appearing in
// several clusters of one clustering contributes through the first.

// clusterIndex maps each item to the index of its (first) cluster.
func clusterIndex(clusters [][]string) map[string]int {
	idx := make(map[string]int)
	for i, cl := range clusters {
		for _, item := range cl {
			if _, seen := idx[item]; !seen {
				idx[item] = i
			}
		}
	}
	return idx
}

// BCubed computes B-cubed precision and recall of a predicted clustering
// against a gold one (Bagga & Baldwin): for each item, precision is the
// fraction of its predicted cluster sharing its gold cluster, recall the
// fraction of its gold cluster sharing its predicted cluster, both
// averaged over the items present in both clusterings. Items present in
// only one side are ignored; empty input yields zeros.
func BCubed(pred, gold [][]string) PRF {
	predIdx := clusterIndex(pred)
	goldIdx := clusterIndex(gold)

	// Deduplicated cluster contents, restricted to items the cluster owns
	// (first occurrence wins across clusters) that the other clustering
	// also knows.
	shared := func(cl []string, idx int, own, same map[string]int, want int) (together, total int) {
		seen := make(map[string]bool, len(cl))
		for _, item := range cl {
			if seen[item] || own[item] != idx {
				continue
			}
			seen[item] = true
			if _, ok := same[item]; !ok {
				continue
			}
			total++
			if same[item] == want {
				together++
			}
		}
		return together, total
	}

	var pSum, rSum float64
	n := 0
	for item, pi := range predIdx {
		gi, ok := goldIdx[item]
		if !ok {
			continue
		}
		n++
		if together, total := shared(pred[pi], pi, predIdx, goldIdx, gi); total > 0 {
			pSum += float64(together) / float64(total)
		}
		if together, total := shared(gold[gi], gi, goldIdx, predIdx, pi); total > 0 {
			rSum += float64(together) / float64(total)
		}
	}
	if n == 0 {
		return PRF{}
	}
	p, r := pSum/float64(n), rSum/float64(n)
	return PRF{Precision: p, Recall: r, F: fmeasure(p, r)}
}

// PairCounting computes pair-counting cluster precision/recall: of the
// unordered item pairs co-clustered in pred, the fraction also
// co-clustered in gold (precision), and vice versa (recall). Only items
// present in both clusterings form countable pairs, so singleton
// clusters contribute nothing to either side.
func PairCounting(pred, gold [][]string) PRF {
	predIdx := clusterIndex(pred)
	goldIdx := clusterIndex(gold)
	countPairs := func(clusters [][]string, own, other map[string]int) (together, total int) {
		for i, cl := range clusters {
			// Deduplicated shared members of this cluster.
			var members []string
			seen := make(map[string]bool, len(cl))
			for _, item := range cl {
				if seen[item] || own[item] != i {
					continue
				}
				seen[item] = true
				if _, ok := other[item]; ok {
					members = append(members, item)
				}
			}
			for x := 0; x < len(members); x++ {
				for y := x + 1; y < len(members); y++ {
					total++
					if other[members[x]] == other[members[y]] {
						together++
					}
				}
			}
		}
		return together, total
	}
	var p, r float64
	if together, total := countPairs(pred, predIdx, goldIdx); total > 0 {
		p = float64(together) / float64(total)
	}
	if together, total := countPairs(gold, goldIdx, predIdx); total > 0 {
		r = float64(together) / float64(total)
	}
	return PRF{Precision: p, Recall: r, F: fmeasure(p, r)}
}
