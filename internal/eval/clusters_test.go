package eval

import (
	"math"
	"testing"
)

func TestBCubedIdentical(t *testing.T) {
	clusters := [][]string{{"a", "b"}, {"c"}, {"d", "e", "f"}}
	got := BCubed(clusters, clusters)
	if !prfEq(got, PRF{1, 1, 1}) {
		t.Errorf("identical clusterings = %+v", got)
	}
}

func TestBCubedSplitAndMerge(t *testing.T) {
	gold := [][]string{{"a", "b", "c", "d"}}
	split := [][]string{{"a", "b"}, {"c", "d"}}
	got := BCubed(split, gold)
	// Every item keeps full precision (its small cluster is pure) but
	// only recalls half of its gold cluster.
	if !prfEq(got, PRF{1, 0.5, 2.0 / 3}) {
		t.Errorf("split = %+v, want P=1 R=0.5", got)
	}
	// Merging two gold clusters is the mirror image.
	merged := BCubed(gold, split)
	if !prfEq(merged, PRF{0.5, 1, 2.0 / 3}) {
		t.Errorf("merged = %+v, want P=0.5 R=1", merged)
	}
}

func TestBCubedEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		pred, gold [][]string
		want       PRF
	}{
		{"both empty", nil, nil, PRF{}},
		{"empty predicted", nil, [][]string{{"a"}}, PRF{}},
		{"empty gold", [][]string{{"a"}}, nil, PRF{}},
		{"disjoint item sets", [][]string{{"a"}}, [][]string{{"b"}}, PRF{}},
		{"single-element clusters", [][]string{{"a"}, {"b"}}, [][]string{{"a"}, {"b"}}, PRF{1, 1, 1}},
		{"singletons vs one gold cluster", [][]string{{"a"}, {"b"}}, [][]string{{"a", "b"}}, PRF{1, 0.5, 2.0 / 3}},
		{"empty cluster entries ignored", [][]string{{}, {"a"}}, [][]string{{"a"}, {}}, PRF{1, 1, 1}},
	}
	for _, c := range cases {
		if got := BCubed(c.pred, c.gold); !prfEq(got, c.want) {
			t.Errorf("%s: BCubed = %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestBCubedDuplicateItems: an item listed twice in one cluster, or in
// two clusters, counts once (first occurrence wins).
func TestBCubedDuplicateItems(t *testing.T) {
	pred := [][]string{{"a", "a", "b"}, {"a", "c"}}
	gold := [][]string{{"a", "b"}, {"c"}}
	got := BCubed(pred, gold)
	if !prfEq(got, PRF{1, 1, 1}) {
		t.Errorf("duplicates = %+v, want perfect (first occurrence wins)", got)
	}
}

func TestPairCounting(t *testing.T) {
	gold := [][]string{{"a", "b", "c"}, {"d"}}
	pred := [][]string{{"a", "b"}, {"c", "d"}}
	got := PairCounting(pred, gold)
	// Predicted pairs: (a,b) correct, (c,d) wrong → P=1/2. Gold pairs:
	// (a,b), (a,c), (b,c); only (a,b) co-clustered → R=1/3.
	if math.Abs(got.Precision-0.5) > 1e-12 || math.Abs(got.Recall-1.0/3) > 1e-12 {
		t.Errorf("pair counting = %+v, want P=0.5 R=1/3", got)
	}
}

func TestPairCountingEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		pred, gold [][]string
		want       PRF
	}{
		{"both empty", nil, nil, PRF{}},
		{"all singletons", [][]string{{"a"}, {"b"}}, [][]string{{"a"}, {"b"}}, PRF{}},
		{"identical multi", [][]string{{"a", "b"}}, [][]string{{"a", "b"}}, PRF{1, 1, 1}},
		{"disjoint items", [][]string{{"a", "b"}}, [][]string{{"c", "d"}}, PRF{}},
	}
	for _, c := range cases {
		if got := PairCounting(c.pred, c.gold); !prfEq(got, c.want) {
			t.Errorf("%s: PairCounting = %+v, want %+v", c.name, got, c.want)
		}
	}
}
