package eval

import (
	"repro/internal/text"
	"repro/internal/wiki"
)

// CorrectFunc decides whether two attribute names (by language) have the
// same meaning — the ground-truth predicate.
type CorrectFunc func(langA wiki.Language, a string, langB wiki.Language, b string) bool

// Overlap computes the structural-heterogeneity measure of Appendix A
// (Table 5) for one entity type: for each cross-linked infobox pair of
// the type, the number of ground-truth-aligned attributes over the size
// of the schema union, averaged over pairs.
func Overlap(c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string, correct CorrectFunc) float64 {
	var sum float64
	n := 0
	for _, p := range c.Pairs(pair) {
		if p.A.Type != typeA || p.B.Type != typeB {
			continue
		}
		schemaA := normalizedSchema(p.A)
		schemaB := normalizedSchema(p.B)
		inter := 0
		for _, a := range schemaA {
			for _, b := range schemaB {
				if correct(pair.A, a, pair.B, b) {
					inter++
					break
				}
			}
		}
		union := len(schemaA) + len(schemaB) - inter
		if union > 0 {
			sum += float64(inter) / float64(union)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func normalizedSchema(a *wiki.Article) []string {
	var out []string
	seen := make(map[string]bool)
	for _, name := range a.Infobox.Schema() {
		n := text.Normalize(name)
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// AttributeFrequencies counts, over the cross-linked infobox pairs of a
// type, how often each normalized attribute name occurs on each side —
// the |a| weights of the evaluation metrics.
func AttributeFrequencies(c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string) (freqA, freqB map[string]float64) {
	freqA = make(map[string]float64)
	freqB = make(map[string]float64)
	for _, p := range c.Pairs(pair) {
		if p.A.Type != typeA || p.B.Type != typeB {
			continue
		}
		for _, name := range normalizedSchema(p.A) {
			freqA[name]++
		}
		for _, name := range normalizedSchema(p.B) {
			freqB[name]++
		}
	}
	return freqA, freqB
}

// LanguageAttributeFrequencies counts how often each normalized
// attribute name occurs over every infobox of one entity type in one
// language — the per-side weights for pairs that have no cross-linked
// infoboxes of their own (a transitively matched pair such as Pt–Vi),
// where AttributeFrequencies would see nothing.
func LanguageAttributeFrequencies(c *wiki.Corpus, lang wiki.Language, typ string) map[string]float64 {
	freq := make(map[string]float64)
	for _, a := range c.OfType(lang, typ) {
		if a.Infobox == nil {
			continue
		}
		for _, name := range normalizedSchema(a) {
			freq[name]++
		}
	}
	return freq
}

// TruthPairs builds the ground-truth correspondence set G for a type:
// every (a, b) with a observed on the A side, b observed on the B side,
// and correct(a, b). Restricting to observed attributes mirrors the
// paper's ground truth, which labels the correspondences present in the
// dataset.
func TruthPairs(freqA, freqB map[string]float64, pair wiki.LanguagePair, correct CorrectFunc) Correspondences {
	g := make(Correspondences)
	for a := range freqA {
		for b := range freqB {
			if correct(pair.A, a, pair.B, b) {
				g.Add(a, b)
			}
		}
	}
	return g
}
