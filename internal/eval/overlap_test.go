package eval

import (
	"math"
	"testing"

	"repro/internal/wiki"
)

// buildPairCorpus creates two cross-linked film infoboxes with a known
// overlap structure.
func buildPairCorpus(t *testing.T) *wiki.Corpus {
	t.Helper()
	c := wiki.NewCorpus()
	pt := &wiki.Article{Language: wiki.Portuguese, Title: "A", Type: "filme",
		Infobox: &wiki.Infobox{Template: "Infobox filme", Attrs: []wiki.AttributeValue{
			{Name: "direção", Text: "x"},
			{Name: "país", Text: "y"},
			{Name: "gênero", Text: "z"}, // pt-only
		}},
		CrossLinks: map[wiki.Language]string{wiki.English: "A-en"}}
	en := &wiki.Article{Language: wiki.English, Title: "A-en", Type: "film",
		Infobox: &wiki.Infobox{Template: "Infobox film", Attrs: []wiki.AttributeValue{
			{Name: "directed by", Text: "x"},
			{Name: "country", Text: "y"},
			{Name: "budget", Text: "w"}, // en-only
		}},
		CrossLinks: map[wiki.Language]string{wiki.Portuguese: "A"}}
	c.MustAdd(pt)
	c.MustAdd(en)
	return c
}

func pairCorrect(langA wiki.Language, a string, langB wiki.Language, b string) bool {
	truth := map[[2]string]bool{
		{"direcao", "directed by"}: true,
		{"pais", "country"}:        true,
	}
	return truth[[2]string{a, b}] || truth[[2]string{b, a}]
}

func TestOverlapComputation(t *testing.T) {
	c := buildPairCorpus(t)
	got := Overlap(c, wiki.PtEn, "filme", "film", pairCorrect)
	// intersection = 2 (direção~directed by, país~country);
	// union = 3 + 3 − 2 = 4 → overlap = 0.5.
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("overlap = %v, want 0.5", got)
	}
}

func TestOverlapNoPairs(t *testing.T) {
	c := wiki.NewCorpus()
	if got := Overlap(c, wiki.PtEn, "filme", "film", pairCorrect); got != 0 {
		t.Errorf("overlap on empty corpus = %v", got)
	}
}

func TestAttributeFrequencies(t *testing.T) {
	c := buildPairCorpus(t)
	freqA, freqB := AttributeFrequencies(c, wiki.PtEn, "filme", "film")
	if freqA["direcao"] != 1 || freqA["genero"] != 1 {
		t.Errorf("freqA = %v", freqA)
	}
	if freqB["directed by"] != 1 || freqB["budget"] != 1 {
		t.Errorf("freqB = %v", freqB)
	}
	if len(freqA) != 3 || len(freqB) != 3 {
		t.Errorf("freq sizes = %d / %d", len(freqA), len(freqB))
	}
}

func TestTruthPairsRestrictedToObserved(t *testing.T) {
	freqA := map[string]float64{"direcao": 1}
	freqB := map[string]float64{"directed by": 1, "budget": 1}
	g := TruthPairs(freqA, freqB, wiki.PtEn, pairCorrect)
	if g.Pairs() != 1 || !g.Has("direcao", "directed by") {
		t.Errorf("truth pairs = %v", g)
	}
}
