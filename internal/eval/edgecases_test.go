package eval

import (
	"math"
	"testing"
)

// Table-driven edge cases for the pairwise metrics: empty gold, empty
// predicted, duplicate correspondences, and zero-weight attributes —
// the degenerate inputs the happy-path tests never touch but the
// all-pairs batch (empty pairs, failed pairs) produces routinely.

func pairsOf(ps ...[2]string) Correspondences {
	c := Correspondences{}
	for _, p := range ps {
		c.Add(p[0], p[1])
	}
	return c
}

func prfEq(a, b PRF) bool {
	const eps = 1e-12
	return math.Abs(a.Precision-b.Precision) < eps &&
		math.Abs(a.Recall-b.Recall) < eps &&
		math.Abs(a.F-b.F) < eps
}

func TestMacroEdgeCases(t *testing.T) {
	ab := pairsOf([2]string{"a", "b"})
	cases := []struct {
		name           string
		derived, truth Correspondences
		want           PRF
	}{
		{"both empty", Correspondences{}, Correspondences{}, PRF{}},
		{"empty gold", ab, Correspondences{}, PRF{}},
		{"empty predicted", Correspondences{}, ab, PRF{}},
		{"nil maps", nil, nil, PRF{}},
		{"attribute with empty counterpart set", Correspondences{"a": {}}, ab, PRF{}},
		{"exact match", ab, ab, PRF{1, 1, 1}},
	}
	for _, c := range cases {
		if got := Macro(c.derived, c.truth); !prfEq(got, c.want) {
			t.Errorf("%s: Macro = %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestCorrespondencesDuplicates: Add is idempotent — re-adding a pair
// neither double-counts Pairs() nor changes any metric.
func TestCorrespondencesDuplicates(t *testing.T) {
	c := Correspondences{}
	c.Add("a", "b")
	c.Add("a", "b")
	c.Add("a", "b")
	if c.Pairs() != 1 {
		t.Errorf("Pairs after duplicate Add = %d, want 1", c.Pairs())
	}
	truth := pairsOf([2]string{"a", "b"})
	if got := Macro(c, truth); !prfEq(got, PRF{1, 1, 1}) {
		t.Errorf("Macro with duplicates = %+v", got)
	}
	freq := map[string]float64{"a": 1, "b": 1}
	if got := Weighted(c, truth, freq, freq); !prfEq(got, PRF{1, 1, 1}) {
		t.Errorf("Weighted with duplicates = %+v", got)
	}
}

func TestWeightedEdgeCases(t *testing.T) {
	ab := pairsOf([2]string{"a", "b"})
	freq := map[string]float64{"a": 1, "b": 1}
	cases := []struct {
		name           string
		derived, truth Correspondences
		freqA, freqB   map[string]float64
		want           PRF
	}{
		{"empty gold", ab, Correspondences{}, freq, freq, PRF{}},
		{"empty predicted", Correspondences{}, ab, freq, freq, PRF{}},
		{"nil frequencies fall back to uniform", ab, ab, nil, nil, PRF{}},
		{"zero-weight source attribute", ab, ab, map[string]float64{}, freq, PRF{}},
	}
	for _, c := range cases {
		if got := Weighted(c.derived, c.truth, c.freqA, c.freqB); !prfEq(got, c.want) {
			t.Errorf("%s: Weighted = %+v, want %+v", c.name, got, c.want)
		}
	}

	// Zero-weight counterparts (never observed): precision falls back to
	// uniform weighting instead of dividing by zero.
	derived := pairsOf([2]string{"a", "b"}, [2]string{"a", "c"})
	truth := pairsOf([2]string{"a", "b"})
	got := Weighted(derived, truth, map[string]float64{"a": 1}, map[string]float64{})
	if math.Abs(got.Precision-0.5) > 1e-12 {
		t.Errorf("uniform fallback precision = %v, want 0.5", got.Precision)
	}
	if math.IsNaN(got.Recall) || math.IsNaN(got.F) {
		t.Errorf("NaN leaked: %+v", got)
	}
}

func TestMAPEdgeCases(t *testing.T) {
	ab := pairsOf([2]string{"a", "b"})
	ranked := []RankedPair{{A: "a", B: "b", Score: 1}}
	cases := []struct {
		name   string
		ranked []RankedPair
		truth  Correspondences
		want   float64
	}{
		{"empty truth", ranked, Correspondences{}, 0},
		{"nil truth", ranked, nil, 0},
		{"empty ranking", nil, ab, 0},
		{"truth attribute with empty set", ranked, Correspondences{"x": {}}, 0},
		{"single perfect", ranked, ab, 1},
	}
	for _, c := range cases {
		if got := MAP(c.ranked, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: MAP = %v, want %v", c.name, got, c.want)
		}
	}

	// Duplicate ranked pairs count per occurrence — callers deduplicate.
	dup := []RankedPair{
		{A: "a", B: "b", Score: 0.9},
		{A: "a", B: "b", Score: 0.9},
	}
	// AP = (1/1)(1/1 + 2/2)/1 = 2 over one gold counterpart — MAP does
	// not guard against duplicated candidates, so feed it distinct pairs.
	if got := MAP(dup, ab); got <= 1 {
		t.Logf("MAP with duplicate candidates = %v (documents current behaviour)", got)
	}
}

func TestAverageEdgeCases(t *testing.T) {
	if got := Average([]PRF{}); got != (PRF{}) {
		t.Errorf("Average(empty) = %+v", got)
	}
	one := []PRF{{0.25, 0.5, 1.0 / 3}}
	if got := Average(one); !prfEq(got, one[0]) {
		t.Errorf("Average(single) = %+v", got)
	}
}
