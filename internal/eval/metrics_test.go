package eval

import (
	"math"
	"testing"
	"testing/quick"
)

// TestWeightedPaperExample4 reproduces the worked example of Section 4:
// P = 1, R = 0.775.
func TestWeightedPaperExample4(t *testing.T) {
	freqA := map[string]float64{"a1": 0.6, "a2": 0.4}
	freqB := map[string]float64{"b1": 0.5, "b2": 0.3, "b3": 0.2}
	truth := Correspondences{}
	truth.Add("a1", "b1")
	truth.Add("a1", "b2")
	truth.Add("a2", "b3")
	derived := Correspondences{}
	derived.Add("a1", "b1")
	derived.Add("a2", "b3")

	got := Weighted(derived, truth, freqA, freqB)
	if math.Abs(got.Precision-1) > 1e-12 {
		t.Errorf("precision = %v, want 1", got.Precision)
	}
	if math.Abs(got.Recall-0.775) > 1e-12 {
		t.Errorf("recall = %v, want 0.775", got.Recall)
	}
	wantF := 2 * 1 * 0.775 / 1.775
	if math.Abs(got.F-wantF) > 1e-12 {
		t.Errorf("F = %v, want %v", got.F, wantF)
	}
}

func TestWeightedPenalizesWrongPairs(t *testing.T) {
	freqA := map[string]float64{"a1": 1}
	freqB := map[string]float64{"b1": 1, "b2": 1}
	truth := Correspondences{}
	truth.Add("a1", "b1")
	derived := Correspondences{}
	derived.Add("a1", "b1")
	derived.Add("a1", "b2") // wrong
	got := Weighted(derived, truth, freqA, freqB)
	if math.Abs(got.Precision-0.5) > 1e-12 {
		t.Errorf("precision = %v, want 0.5", got.Precision)
	}
	if math.Abs(got.Recall-1) > 1e-12 {
		t.Errorf("recall = %v, want 1", got.Recall)
	}
}

func TestWeightedEmptySets(t *testing.T) {
	got := Weighted(Correspondences{}, Correspondences{}, nil, nil)
	if got.Precision != 0 || got.Recall != 0 || got.F != 0 {
		t.Errorf("empty = %+v", got)
	}
}

func TestWeightedBounds(t *testing.T) {
	prop := func(pairs [][2]uint8, truthPairs [][2]uint8) bool {
		derived, truth := Correspondences{}, Correspondences{}
		freqA, freqB := map[string]float64{}, map[string]float64{}
		name := func(i uint8) string { return string(rune('a' + i%8)) }
		for _, p := range pairs {
			a, b := name(p[0]), name(p[1])
			derived.Add(a, b)
			freqA[a]++
			freqB[b]++
		}
		for _, p := range truthPairs {
			a, b := name(p[0]), name(p[1])
			truth.Add(a, b)
			freqA[a]++
			freqB[b]++
		}
		r := Weighted(derived, truth, freqA, freqB)
		for _, v := range []float64{r.Precision, r.Recall, r.F} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMacro(t *testing.T) {
	truth := Correspondences{}
	truth.Add("a1", "b1")
	truth.Add("a2", "b2")
	truth.Add("a3", "b3")
	derived := Correspondences{}
	derived.Add("a1", "b1")
	derived.Add("a2", "b9") // wrong
	got := Macro(derived, truth)
	if math.Abs(got.Precision-0.5) > 1e-12 || math.Abs(got.Recall-1.0/3) > 1e-12 {
		t.Errorf("macro = %+v", got)
	}
}

func TestMacroPerfect(t *testing.T) {
	truth := Correspondences{}
	truth.Add("a", "b")
	got := Macro(truth, truth)
	if got.Precision != 1 || got.Recall != 1 || got.F != 1 {
		t.Errorf("perfect macro = %+v", got)
	}
}

func TestAverage(t *testing.T) {
	rows := []PRF{{1, 1, 1}, {0, 0, 0}}
	got := Average(rows)
	if got.Precision != 0.5 || got.Recall != 0.5 || got.F != 0.5 {
		t.Errorf("average = %+v", got)
	}
	if z := Average(nil); z != (PRF{}) {
		t.Errorf("empty average = %+v", z)
	}
}

func TestMAPPerfectOrdering(t *testing.T) {
	truth := Correspondences{}
	truth.Add("a1", "b1")
	truth.Add("a2", "b2")
	ranked := []RankedPair{
		{A: "a1", B: "b1", Score: 0.9},
		{A: "a1", B: "b2", Score: 0.1},
		{A: "a2", B: "b2", Score: 0.8},
		{A: "a2", B: "b1", Score: 0.2},
	}
	if got := MAP(ranked, truth); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAP = %v, want 1", got)
	}
}

func TestMAPWorstOrdering(t *testing.T) {
	truth := Correspondences{}
	truth.Add("a1", "b1")
	ranked := []RankedPair{
		{A: "a1", B: "b2", Score: 0.9},
		{A: "a1", B: "b1", Score: 0.1},
	}
	// Correct match at rank 2 → AP = 1/2.
	if got := MAP(ranked, truth); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MAP = %v, want 0.5", got)
	}
}

func TestMAPOneToMany(t *testing.T) {
	truth := Correspondences{}
	truth.Add("died", "falecimento")
	truth.Add("died", "morte")
	ranked := []RankedPair{
		{A: "died", B: "falecimento", Score: 0.9},
		{A: "died", B: "nascimento", Score: 0.8},
		{A: "died", B: "morte", Score: 0.7},
	}
	// AP = (1/2)(1/1 + 2/3) = 5/6.
	if got := MAP(ranked, truth); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("MAP = %v, want 5/6", got)
	}
}

func TestMAPMissingCandidates(t *testing.T) {
	truth := Correspondences{}
	truth.Add("a1", "b1")
	if got := MAP(nil, truth); got != 0 {
		t.Errorf("MAP with no candidates = %v", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant series = %v", got)
	}
	if got := Pearson(x, []float64{1}); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
}

func TestCumulativeGain(t *testing.T) {
	cg := CumulativeGain([]float64{3, 0, 2, 1})
	want := []float64{3, 3, 5, 6}
	for i := range want {
		if cg[i] != want[i] {
			t.Errorf("CG[%d] = %v, want %v", i, cg[i], want[i])
		}
	}
	if got := CumulativeGain(nil); len(got) != 0 {
		t.Errorf("empty CG = %v", got)
	}
}

func TestCorrespondencesHelpers(t *testing.T) {
	c := Correspondences{}
	c.Add("a", "b")
	c.Add("a", "c")
	if !c.Has("a", "b") || c.Has("b", "a") {
		t.Error("Has wrong")
	}
	if c.Pairs() != 2 {
		t.Errorf("Pairs = %d", c.Pairs())
	}
}
