// The multi-edition fixture: a deterministic corpus over an arbitrary
// language list — ten or more editions, long-tail codes included —
// shaped like the star topology of real interlanguage links: most
// editions link to the hub, few link to each other, so non-hub pairs
// are reachable only transitively. Generate builds linguistically
// rich en/pt/vi corpora for accuracy experiments; Editions instead
// exercises the data-driven paths this scale opens up: the pivot
// planner with 10+ editions, hub choice, transitive-only recovery and
// the TTL/XML ingestion round trip (internal/ingest writes it out and
// reads it back).
package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/wiki"
)

// EditionsConfig sizes the multi-edition corpus.
type EditionsConfig struct {
	// Languages are the editions to generate, at least two. The default
	// set (see DefaultEditions) is twelve real codes including
	// hyphenated long-tail editions.
	Languages []wiki.Language
	// Hub is the pivot edition every other edition cross-links to; it
	// must be in Languages. Hub articles are always present.
	Hub wiki.Language
	// Types is the number of canonical entity types.
	Types int
	// EntitiesPerType is the number of entities per type.
	EntitiesPerType int
	// AttrsPerType is each type's canonical schema width; PerBox of
	// them instantiate in any one article.
	AttrsPerType int
	// PerBox is how many attributes each article instantiates.
	PerBox int
	// CoveragePct is the percentage chance a non-hub edition carries an
	// entity's article.
	CoveragePct int
	// HubLinkPct is the percentage chance a non-hub article carries a
	// cross-link to the hub's article.
	HubLinkPct int
	// NonHubLinkPct is the percentage chance two non-hub articles of
	// the same entity are cross-linked. 0 makes every non-hub pair
	// transitive-only — the pivot planner's stress case.
	NonHubLinkPct int
	// TemplatePct is the percentage chance an article names its typed
	// infobox template. The remainder carry a bare "Infobox" and no
	// type, leaving them to ingestion's property-profile inference.
	TemplatePct int
	// Seed drives the deterministic generator stream.
	Seed uint64
}

// DefaultEditions returns the 12-edition configuration the acceptance
// tests and CI fixtures derive from: a star of editions around an
// English hub with zero non-hub links, so all 55 non-hub pairs are
// transitive-only.
func DefaultEditions() EditionsConfig {
	return EditionsConfig{
		Languages: []wiki.Language{
			"en", "de", "fr", "pt", "vi", "ja", "pl", "sv",
			"zh-min-nan", "be-tarask", "nds-nl", "ceb",
		},
		Hub:             "en",
		Types:           3,
		EntitiesPerType: 80,
		AttrsPerType:    18,
		PerBox:          10,
		CoveragePct:     60,
		HubLinkPct:      95,
		NonHubLinkPct:   0,
		TemplatePct:     100,
		Seed:            11,
	}
}

// EditionsTruth is the generator's ground truth: which canonical type
// and attribute every localized surface form renders.
type EditionsTruth struct {
	// TypeName maps language → localized type name → canonical type id.
	TypeName map[wiki.Language]map[string]string
	// AttrCanon maps language → localized type name → localized
	// attribute name → canonical attribute id.
	AttrCanon map[wiki.Language]map[string]map[string]string
}

// Canon resolves a localized (type, attribute) surface pair to its
// canonical ids.
func (t *EditionsTruth) Canon(lang wiki.Language, typ, attr string) (canonType, canonAttr string, ok bool) {
	ct, ok := t.TypeName[lang][typ]
	if !ok {
		return "", "", false
	}
	ca, ok := t.AttrCanon[lang][typ][attr]
	if !ok {
		return "", "", false
	}
	return ct, ca, true
}

// editionsAnchors is how many attributes per type carry identical
// values in every edition (the certain matches); the rest agree only
// partially, like real dumps.
const editionsAnchors = 4

// editionsValues is each attribute's value-pool size.
const editionsValues = 120

// editionsRefPool is the shared pool of reference entities whose
// localized, fully cross-linked stub articles feed the
// title-translation dictionary and lsim.
const editionsRefPool = 90

// word derives a deterministic lowercase pseudoword from the concept
// key: the same key always renders the same word, independent of
// generation order, and distinct languages render unrelated words.
// Digit-free, like every synth value token, so ValueTerms never
// extracts a spurious shared number from a name.
func word(lang wiki.Language, parts ...string) string {
	h := uint64(1469598103934665603)
	h = h*1099511628211 ^ uint64(len(lang))
	for _, c := range []byte(lang) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for _, p := range parts {
		for _, c := range []byte(p) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		h = (h ^ 0x7c) * 1099511628211
	}
	const consonants = "bdfgklmnprstvz"
	const vowels = "aeiou"
	var b strings.Builder
	syllables := 2 + int(h%3)
	for i := 0; i < syllables; i++ {
		b.WriteByte(consonants[h%uint64(len(consonants))])
		h /= uint64(len(consonants))
		b.WriteByte(vowels[h%uint64(len(vowels))])
		h /= uint64(len(vowels))
		if h&1 == 1 {
			h >>= 1
			b.WriteByte(consonants[h%uint64(len(consonants))])
			h /= uint64(len(consonants))
		}
		if h < 1<<16 {
			h = h*6364136223846793005 + 1442695040888963407
		}
	}
	return b.String()
}

// capitalized returns the word with its first letter uppercased — a
// title surface form.
func capitalized(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// Editions builds the corpus and its ground truth. Everything is a
// pure function of the config: article order, titles, values and links
// are identical across runs and platforms.
func Editions(cfg EditionsConfig) (*wiki.Corpus, *EditionsTruth, error) {
	if len(cfg.Languages) < 2 {
		return nil, nil, fmt.Errorf("synth: editions need at least 2 languages, have %d", len(cfg.Languages))
	}
	langs := append([]wiki.Language(nil), cfg.Languages...)
	sort.Slice(langs, func(i, j int) bool { return langs[i] < langs[j] })
	seen := make(map[wiki.Language]bool, len(langs))
	hubOK := false
	for _, l := range langs {
		if !l.Valid() {
			return nil, nil, fmt.Errorf("synth: invalid language %q", l)
		}
		if seen[l] {
			return nil, nil, fmt.Errorf("synth: duplicate language %q", l)
		}
		seen[l] = true
		if l == cfg.Hub {
			hubOK = true
		}
	}
	if !hubOK {
		return nil, nil, fmt.Errorf("synth: hub %q not among languages", cfg.Hub)
	}
	if cfg.Types <= 0 || cfg.EntitiesPerType <= 0 || cfg.AttrsPerType <= 0 || cfg.PerBox <= 0 {
		return nil, nil, fmt.Errorf("synth: editions need positive Types, EntitiesPerType, AttrsPerType and PerBox")
	}
	if cfg.PerBox > cfg.AttrsPerType {
		cfg.PerBox = cfg.AttrsPerType
	}

	truth := &EditionsTruth{
		TypeName:  make(map[wiki.Language]map[string]string),
		AttrCanon: make(map[wiki.Language]map[string]map[string]string),
	}
	for _, l := range langs {
		truth.TypeName[l] = make(map[string]string)
		truth.AttrCanon[l] = make(map[string]map[string]string)
	}
	// Localized surfaces. Attribute names get a canonical alpha suffix
	// purely for uniqueness within the type (the matcher never compares
	// name strings).
	typeName := func(l wiki.Language, t int) string { return word(l, "type", alpha(t)) }
	attrName := func(l wiki.Language, t, k int) string { return word(l, "attr", alpha(t), alpha(k)) + alpha(k) }
	entTitle := func(l wiki.Language, t, i int) string {
		return fmt.Sprintf("%s %d", capitalized(word(l, "ent", alpha(t))), i)
	}
	refTitle := func(l wiki.Language, r int) string {
		return fmt.Sprintf("%s %d", capitalized(word(l, "ref")), r)
	}
	for _, l := range langs {
		for t := 0; t < cfg.Types; t++ {
			tn := typeName(l, t)
			truth.TypeName[l][tn] = "type-" + alpha(t)
			am := make(map[string]string, cfg.AttrsPerType)
			for k := 0; k < cfg.AttrsPerType; k++ {
				am[attrName(l, t, k)] = "attr-" + alpha(k)
			}
			truth.AttrCanon[l][tn] = am
		}
	}

	c := wiki.NewCorpus()
	// Reference stubs: every edition carries the full pool, star-linked
	// through the hub, so title translation has dense material even when
	// entity articles are sparse.
	for _, l := range langs {
		for r := 0; r < editionsRefPool; r++ {
			a := &wiki.Article{Language: l, Title: refTitle(l, r)}
			if l == cfg.Hub {
				for _, m := range langs {
					if m != cfg.Hub {
						a.SetCrossLink(m, refTitle(m, r))
					}
				}
			} else {
				a.SetCrossLink(cfg.Hub, refTitle(cfg.Hub, r))
			}
			if err := c.Add(a); err != nil {
				return nil, nil, err
			}
		}
	}

	perm := make([]int, cfg.AttrsPerType)
	for t := 0; t < cfg.Types; t++ {
		for i := 0; i < cfg.EntitiesPerType; i++ {
			// One rng stream per entity: membership, subset and values
			// never depend on how other entities drew.
			rng := &dsRand{s: cfg.Seed ^ uint64(t)*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9}
			rng.next()
			for k := range perm {
				perm[k] = k
			}
			for k := 0; k < cfg.PerBox; k++ {
				j := k + rng.intn(cfg.AttrsPerType-k)
				perm[k], perm[j] = perm[j], perm[k]
			}
			subset := append([]int(nil), perm[:cfg.PerBox]...)
			sort.Ints(subset)
			// Shared base values, drawn once per entity.
			baseVal := make([]int, cfg.AttrsPerType)
			baseRef := make([]int, cfg.AttrsPerType)
			for _, k := range subset {
				baseVal[k] = rng.intn(editionsValues)
				baseRef[k] = rng.intn(editionsRefPool)
			}
			present := make(map[wiki.Language]bool, len(langs))
			for _, l := range langs {
				present[l] = l == cfg.Hub || rng.intn(100) < cfg.CoveragePct
			}
			for _, l := range langs {
				if !present[l] {
					continue
				}
				typed := rng.intn(100) < cfg.TemplatePct
				tn := typeName(l, t)
				ib := &wiki.Infobox{Template: "Infobox"}
				if typed {
					ib.Template = "Infobox " + tn
				}
				for _, k := range subset {
					v, ref := baseVal[k], baseRef[k]
					// Non-anchor attributes disagree in roughly a third
					// of editions, keeping gold similarity mid-range.
					if k >= editionsAnchors && rng.intn(3) == 0 {
						v = rng.intn(editionsValues)
						ref = rng.intn(editionsRefPool)
					}
					text := "val" + alpha(k) + "x" + alpha(v)
					var links []wiki.Link
					if k%3 == 0 {
						target := refTitle(l, ref)
						text += ", " + target
						links = []wiki.Link{{Target: target, Anchor: target}}
					}
					ib.Set(attrName(l, t, k), text, links...)
				}
				a := &wiki.Article{Language: l, Title: entTitle(l, t, i), Infobox: ib}
				if typed {
					a.Type = tn
				}
				if l != cfg.Hub {
					if present[cfg.Hub] && rng.intn(100) < cfg.HubLinkPct {
						a.SetCrossLink(cfg.Hub, entTitle(cfg.Hub, t, i))
					}
					for _, m := range langs {
						if m == cfg.Hub || m == l || m < l || !present[m] {
							continue
						}
						if cfg.NonHubLinkPct > 0 && rng.intn(100) < cfg.NonHubLinkPct {
							a.SetCrossLink(m, entTitle(m, t, i))
						}
					}
				}
				if err := c.Add(a); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return c, truth, nil
}
