package synth

import (
	"testing"

	"repro/internal/wiki"
)

func TestEditionsDeterministic(t *testing.T) {
	cfg := DefaultEditions()
	cfg.EntitiesPerType = 20
	a, _, err := Editions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Editions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same config produced different corpora")
	}
	cfg.Seed++
	c, _, err := Editions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seed produced identical corpus")
	}
}

func TestEditionsShape(t *testing.T) {
	cfg := DefaultEditions()
	cfg.EntitiesPerType = 20
	c, truth, err := Editions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	langs := c.Languages()
	if len(langs) != len(cfg.Languages) {
		t.Fatalf("languages = %v", langs)
	}
	stats := c.Stats()
	// The hub edition carries every entity plus the reference stubs.
	if want := cfg.Types * cfg.EntitiesPerType; stats.Infoboxes["en"] != want {
		t.Fatalf("en infoboxes = %d, want %d", stats.Infoboxes["en"], want)
	}
	// With NonHubLinkPct 0 only hub pairs are cross-linked: links exist
	// for exactly the len(langs)-1 pairs that include the hub.
	linked := 0
	// Stats keys pairs in sorted orientation (hubless OrientPair).
	for _, pair := range wiki.AllPairs(langs, "") {
		if stats.CrossPairs[pair.String()] > 0 {
			linked++
			if pair.A != cfg.Hub && pair.B != cfg.Hub {
				t.Fatalf("non-hub pair %s is cross-linked", pair)
			}
		}
	}
	if linked != len(langs)-1 {
		t.Fatalf("%d linked pairs, want %d", linked, len(langs)-1)
	}
	// Every typed article's type and attribute names resolve in the
	// ground truth, and anchors share canonical ids across editions.
	for _, l := range langs {
		for _, a := range c.Articles(l) {
			if a.Infobox == nil {
				continue
			}
			if a.Type == "" {
				t.Fatalf("%s:%s untyped with TemplatePct 100", l, a.Title)
			}
			if _, ok := truth.TypeName[l][a.Type]; !ok {
				t.Fatalf("%s:%s type %q missing from truth", l, a.Title, a.Type)
			}
			for _, av := range a.Infobox.Attrs {
				if _, _, ok := truth.Canon(l, a.Type, av.Name); !ok {
					t.Fatalf("%s:%s attr %q missing from truth", l, a.Title, av.Name)
				}
			}
		}
	}
}

func TestEditionsValidation(t *testing.T) {
	bad := []EditionsConfig{
		{Languages: []wiki.Language{"en"}, Hub: "en", Types: 1, EntitiesPerType: 1, AttrsPerType: 1, PerBox: 1},
		{Languages: []wiki.Language{"en", "pt"}, Hub: "de", Types: 1, EntitiesPerType: 1, AttrsPerType: 1, PerBox: 1},
		{Languages: []wiki.Language{"en", "EN"}, Hub: "en", Types: 1, EntitiesPerType: 1, AttrsPerType: 1, PerBox: 1},
		{Languages: []wiki.Language{"en", "pt", "en"}, Hub: "en", Types: 1, EntitiesPerType: 1, AttrsPerType: 1, PerBox: 1},
		{Languages: []wiki.Language{"en", "pt"}, Hub: "en", Types: 0, EntitiesPerType: 1, AttrsPerType: 1, PerBox: 1},
	}
	for i, cfg := range bad {
		if _, _, err := Editions(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
