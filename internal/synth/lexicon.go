package synth

import "repro/internal/wiki"

// Tri is a term with its English, Portuguese and Vietnamese forms.
type Tri struct {
	EN, PT, VN string
}

// In returns the term's form in the given language, falling back to
// English for unknown languages.
func (t Tri) In(l wiki.Language) string {
	switch l {
	case wiki.Portuguese:
		if t.PT != "" {
			return t.PT
		}
	case wiki.Vietnamese:
		if t.VN != "" {
			return t.VN
		}
	}
	return t.EN
}

// RefSpec seeds a referenceable entity: translated titles and optional
// per-language aliases (alternative anchor texts, e.g. "USA").
type RefSpec struct {
	Titles  Tri
	Aliases Tri
}

// places is the gazetteer of country/region entities. Each becomes a stub
// article per language with cross-language links, so place-valued
// attributes feed both the translation dictionary and lsim.
var places = []RefSpec{
	{Titles: Tri{"United States", "Estados Unidos", "Hoa Kỳ"}, Aliases: Tri{"USA", "EUA", "Mỹ"}},
	{Titles: Tri{"United Kingdom", "Reino Unido", "Vương quốc Anh"}, Aliases: Tri{"UK", "", ""}},
	{Titles: Tri{"Brazil", "Brasil", "Brasil"}},
	{Titles: Tri{"France", "França", "Pháp"}},
	{Titles: Tri{"Italy", "Itália", "Ý"}},
	{Titles: Tri{"Germany", "Alemanha", "Đức"}},
	{Titles: Tri{"Spain", "Espanha", "Tây Ban Nha"}},
	{Titles: Tri{"Portugal", "Portugal", "Bồ Đào Nha"}},
	{Titles: Tri{"Ireland", "Irlanda", "Ireland"}},
	{Titles: Tri{"Japan", "Japão", "Nhật Bản"}},
	{Titles: Tri{"China", "China", "Trung Quốc"}},
	{Titles: Tri{"Vietnam", "Vietnã", "Việt Nam"}},
	{Titles: Tri{"India", "Índia", "Ấn Độ"}},
	{Titles: Tri{"Canada", "Canadá", "Canada"}},
	{Titles: Tri{"Australia", "Austrália", "Úc"}},
	{Titles: Tri{"Mexico", "México", "México"}},
	{Titles: Tri{"Argentina", "Argentina", "Argentina"}},
	{Titles: Tri{"Russia", "Rússia", "Nga"}},
	{Titles: Tri{"England", "Inglaterra", "Anh"}},
	{Titles: Tri{"Sweden", "Suécia", "Thụy Điển"}},
}

// genres become stub entities with translated titles.
var genres = []RefSpec{
	{Titles: Tri{"Drama", "Drama", "Chính kịch"}},
	{Titles: Tri{"Comedy", "Comédia", "Hài kịch"}},
	{Titles: Tri{"Horror", "Terror", "Kinh dị"}},
	{Titles: Tri{"Action", "Ação", "Hành động"}},
	{Titles: Tri{"Romance", "Romance", "Lãng mạn"}},
	{Titles: Tri{"Thriller", "Suspense", "Giật gân"}},
	{Titles: Tri{"Documentary", "Documentário", "Tài liệu"}},
	{Titles: Tri{"Animation", "Animação", "Hoạt hình"}},
	{Titles: Tri{"Science Fiction", "Ficção Científica", "Khoa học viễn tưởng"}},
	{Titles: Tri{"Western", "Faroeste", "Viễn Tây"}},
	{Titles: Tri{"Musical", "Musical", "Nhạc kịch"}},
	{Titles: Tri{"Rock", "Rock", "Rock"}},
	{Titles: Tri{"Jazz", "Jazz", "Jazz"}},
	{Titles: Tri{"Progressive Rock", "Rock Progressivo", "Progressive Rock"}},
	{Titles: Tri{"Pop", "Pop", "Pop"}},
	{Titles: Tri{"Blues", "Blues", "Blues"}},
	{Titles: Tri{"Samba", "Samba", "Samba"}},
	{Titles: Tri{"Folk", "Folk", "Dân ca"}},
}

// langNames are language-name entities used by "language"-style attributes.
var langNames = []RefSpec{
	{Titles: Tri{"English", "Inglês", "Tiếng Anh"}},
	{Titles: Tri{"Portuguese", "Português", "Tiếng Bồ Đào Nha"}},
	{Titles: Tri{"Vietnamese", "Vietnamita", "Tiếng Việt"}},
	{Titles: Tri{"French", "Francês", "Tiếng Pháp"}},
	{Titles: Tri{"Spanish", "Espanhol", "Tiếng Tây Ban Nha"}},
	{Titles: Tri{"Italian", "Italiano", "Tiếng Ý"}},
	{Titles: Tri{"German", "Alemão", "Tiếng Đức"}},
	{Titles: Tri{"Japanese", "Japonês", "Tiếng Nhật"}},
}

// monthNames drive per-language date rendering and day-month stub titles.
var monthNames = [12]Tri{
	{"January", "janeiro", "tháng 1"},
	{"February", "fevereiro", "tháng 2"},
	{"March", "março", "tháng 3"},
	{"April", "abril", "tháng 4"},
	{"May", "maio", "tháng 5"},
	{"June", "junho", "tháng 6"},
	{"July", "julho", "tháng 7"},
	{"August", "agosto", "tháng 8"},
	{"September", "setembro", "tháng 9"},
	{"October", "outubro", "tháng 10"},
	{"November", "novembro", "tháng 11"},
	{"December", "dezembro", "tháng 12"},
}

// vocabs are the small translated vocabularies backing KindTerm
// attributes. Keys are referenced by AttrSpec.Vocab.
var vocabs = map[string][]Tri{
	"occupation": {
		{"actor", "ator", "diễn viên"},
		{"politician", "político", "chính khách"},
		{"director", "diretor", "đạo diễn"},
		{"writer", "escritor", "nhà văn"},
		{"singer", "cantor", "ca sĩ"},
		{"producer", "produtor", "nhà sản xuất"},
		{"comedian", "comediante", "diễn viên hài"},
		{"model", "modelo", "người mẫu"},
		{"dancer", "dançarino", "vũ công"},
		{"painter", "pintor", "họa sĩ"},
		{"journalist", "jornalista", "nhà báo"},
		{"teacher", "professor", "giáo viên"},
		{"athlete", "atleta", "vận động viên"},
		{"musician", "músico", "nhạc sĩ"},
		{"presenter", "apresentador", "người dẫn chương trình"},
		{"photographer", "fotógrafo", "nhiếp ảnh gia"},
	},
	"instrument": {
		{"guitar", "guitarra", "ghi-ta"},
		{"piano", "piano", "dương cầm"},
		{"drums", "bateria", "trống"},
		{"bass", "baixo", "ghi-ta bass"},
		{"vocals", "vocal", "giọng hát"},
		{"violin", "violino", "vĩ cầm"},
	},
	"background": {
		{"solo singer", "", ""},
		{"group or band", "", ""},
		{"non-performing personnel", "", ""},
	},
	"companytype": {
		{"public", "pública", ""},
		{"private", "privada", ""},
		{"subsidiary", "subsidiária", ""},
	},
	"industry": {
		{"entertainment", "entretenimento", ""},
		{"publishing", "editorial", ""},
		{"broadcasting", "radiodifusão", ""},
		{"technology", "tecnologia", ""},
		{"retail", "varejo", ""},
	},
	"powers": {
		{"flight", "voo", ""},
		{"super strength", "superforça", ""},
		{"telepathy", "telepatia", ""},
		{"invisibility", "invisibilidade", ""},
		{"healing", "cura", ""},
	},
	"schedule": {
		{"monthly", "mensal", ""},
		{"weekly", "semanal", ""},
		{"bimonthly", "bimestral", ""},
	},
	"format": {
		{"ongoing series", "série contínua", ""},
		{"limited series", "minissérie", ""},
		{"one-shot", "edição única", ""},
	},
	"species": {
		{"human", "humano", ""},
		{"android", "andróide", ""},
		{"alien", "alienígena", ""},
	},
	"gender": {
		{"male", "masculino", ""},
		{"female", "feminino", ""},
	},
	"eyecolor": {
		{"brown", "castanhos", ""},
		{"blue", "azuis", ""},
		{"green", "verdes", ""},
	},
	"haircolor": {
		{"black", "pretos", ""},
		{"blonde", "loiros", ""},
		{"brown", "castanhos", ""},
		{"red", "ruivos", ""},
	},
	"measurements": {
		{"34-24-34", "34-24-34", ""},
		{"36-26-36", "36-26-36", ""},
	},
	"issue": {
		{"Amazing Tales #1", "Amazing Tales #1", ""},
		{"Midnight Stories #4", "Midnight Stories #4", ""},
		{"Cosmic Annual #2", "Cosmic Annual #2", ""},
		{"Harbor City Comics #7", "Harbor City Comics #7", ""},
		{"Strange Worlds #12", "Strange Worlds #12", ""},
	},
	"alias": {
		{"J. Rivers", "J. Rivers", "J. Rivers"},
		{"The Duke", "The Duke", "The Duke"},
		{"Max Steel", "Max Steel", "Max Steel"},
		{"Kitty West", "Kitty West", "Kitty West"},
		{"Lou Santos", "Lou Santos", "Lou Santos"},
		{"Ray Moon", "Ray Moon", "Ray Moon"},
	},
	"pictureformat": {
		{"1080i HDTV", "", ""},
		{"576i SDTV", "", ""},
		{"4K UHDTV", "", ""},
	},
	"slogan": {
		{"", "sempre com você", ""},
		{"", "a sua tela", ""},
		{"", "perto de você", ""},
	},
}

// titleAdjectives and titleNouns compose article titles for non-person
// entity types. English composes "The {Adj} {Noun}", Portuguese
// "O {Noun} {Adj}", Vietnamese "{Noun} {adj}".
var titleAdjectives = []Tri{
	{"Crimson", "Carmesim", "đỏ thẫm"},
	{"Silent", "Silencioso", "lặng lẽ"},
	{"Golden", "Dourado", "vàng"},
	{"Dark", "Escuro", "tối"},
	{"Lost", "Perdido", "đã mất"},
	{"Eternal", "Eterno", "vĩnh cửu"},
	{"Hidden", "Oculto", "ẩn giấu"},
	{"Burning", "Ardente", "rực cháy"},
	{"Distant", "Distante", "xa xôi"},
	{"Broken", "Quebrado", "tan vỡ"},
	{"Sacred", "Sagrado", "thiêng liêng"},
	{"Frozen", "Congelado", "băng giá"},
	{"Final", "Final", "cuối cùng"},
	{"First", "Primeiro", "đầu tiên"},
	{"Quiet", "Quieto", "yên tĩnh"},
	{"Ancient", "Antigo", "cổ xưa"},
	{"Wild", "Selvagem", "hoang dã"},
	{"Gentle", "Gentil", "dịu dàng"},
}

var titleNouns = []Tri{
	{"River", "Rio", "Dòng sông"},
	{"Mountain", "Montanha", "Ngọn núi"},
	{"Emperor", "Imperador", "Hoàng đế"},
	{"Garden", "Jardim", "Khu vườn"},
	{"Night", "Noite", "Đêm"},
	{"Ocean", "Oceano", "Đại dương"},
	{"Shadow", "Sombra", "Bóng tối"},
	{"Kingdom", "Reino", "Vương quốc"},
	{"Journey", "Jornada", "Hành trình"},
	{"Secret", "Segredo", "Bí mật"},
	{"Dream", "Sonho", "Giấc mơ"},
	{"Island", "Ilha", "Hòn đảo"},
	{"Forest", "Floresta", "Khu rừng"},
	{"Star", "Estrela", "Ngôi sao"},
	{"Winter", "Inverno", "Mùa đông"},
	{"Letter", "Carta", "Lá thư"},
	{"City", "Cidade", "Thành phố"},
	{"Voice", "Voz", "Giọng nói"},
	{"Bridge", "Ponte", "Cây cầu"},
	{"Tiger", "Tigre", "Con hổ"},
	{"Harbor", "Porto", "Bến cảng"},
	{"Mirror", "Espelho", "Tấm gương"},
	{"Tower", "Torre", "Tòa tháp"},
	{"Road", "Estrada", "Con đường"},
}

// firstNames and lastNames compose person names, identical across
// languages (proper names are not translated).
var firstNames = []string{
	"James", "Maria", "John", "Ana", "Robert", "Sofia", "Michael", "Helena",
	"David", "Clara", "Thomas", "Laura", "Daniel", "Alice", "Carlos", "Marta",
	"Peter", "Julia", "Paulo", "Nina", "Hugo", "Teresa", "Victor", "Irene",
}

var lastNames = []string{
	"Silva", "Johnson", "Costa", "Williams", "Santos", "Brown", "Oliveira",
	"Miller", "Pereira", "Davis", "Almeida", "Wilson", "Ferreira", "Moore",
	"Ribeiro", "Taylor", "Martins", "Anderson", "Barbosa", "Reed", "Campos",
	"Hart", "Nogueira", "Blake",
}

// specialPersons are named individuals the case-study queries (Table 4)
// reference explicitly; they are guaranteed to exist in every generated
// corpus and to appear as film directors.
var specialPersons = []string{
	"Francis Ford Coppola",
	"Eric Kripke",
}

// orgNames are studio/label/network/publisher entities, identical across
// languages.
var orgNames = []string{
	"Meridian Pictures", "Atlas Studios", "Blue Harbor Films",
	"Northlight Entertainment", "Vela Records", "Horizon Books",
	"Crescent Network", "Pioneer Broadcasting", "Summit Comics",
	"Aurora Publishing", "Beacon Media", "Stellar Arts",
	"Ironwood Press", "Gateway Channel", "Riverbend Records",
}

const (
	en = wiki.English
	pt = wiki.Portuguese
	vn = wiki.Vietnamese
)

// names is shorthand for the per-language surface-name map.
type names = map[wiki.Language][]WeightedName

// TypeSpecs returns the full catalog of entity types: the 14 types of the
// paper's Portuguese–English dataset, of which the first four also exist
// in Vietnamese (the Vn-En dataset). Overlap targets follow Table 5.
func TypeSpecs() []TypeSpec {
	return []TypeSpec{
		{
			Canon: "film",
			Template: map[wiki.Language]string{
				en: "Infobox film", pt: "Infobox filme", vn: "Infobox phim",
			},
			Overlap: map[string]float64{"pt-en": 0.36, "vi-en": 0.87},
			Attrs: []AttrSpec{
				{Canon: "title", Literal: "title", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.95,
					Names: names{en: N("name"), pt: N2("título", 0.7, "nome", 0.3), vn: N("tên")}},
				{Canon: "directed by", Literal: "direction", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.9,
					Names: names{en: N("directed by"), pt: N("direção"), vn: N("đạo diễn")}},
				{Canon: "produced by", Literal: "production", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 3, Freq: 0.65,
					Names: names{en: N("produced by"), pt: N("produção"), vn: N("sản xuất")}},
				{Canon: "written by", Literal: "script", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.8,
					Names: names{en: N("written by"), pt: N("roteiro"), vn: N("kịch bản")}},
				{Canon: "story by", Literal: "story", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.25,
					Names: names{en: N("story by"), pt: N("história"), vn: N("kịch bản")}},
				{Canon: "starring", Literal: "original cast", Kind: KindWork, MinAtoms: 2, MaxAtoms: 5, Freq: 0.95, Vocab: "actor",
					Names: names{en: N("starring"), pt: N2("elenco original", 0.7, "elenco", 0.3), vn: N("diễn viên")}},
				{Canon: "music by", Literal: "music", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.6,
					Names: names{en: N("music by"), pt: N("música"), vn: N("âm nhạc")}},
				{Canon: "cinematography", Literal: "photography", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("cinematography"), pt: N("fotografia")}},
				{Canon: "editing by", Literal: "editing", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("editing by"), pt: N("edição")}},
				{Canon: "distributed by", Literal: "distribution", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5,
					Names: names{en: N("distributed by"), pt: N("distribuição")}},
				{Canon: "studio", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 1, Freq: 0.55,
					Names: names{en: N("studio"), pt: N("estúdio"), vn: N("hãng sản xuất")}},
				{Canon: "release date", Literal: "launch", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.85,
					Names: names{en: N("release date"), pt: N("lançamento"), vn: N2("ngày phát hành", 0.6, "công chiếu", 0.4)}},
				{Canon: "running time", Literal: "duration", Kind: KindDuration, MinAtoms: 1, MaxAtoms: 1, Freq: 0.8,
					Names: names{en: N("running time"), pt: N("duração"), vn: N("thời lượng")}},
				{Canon: "country", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 2, Freq: 0.85,
					Names: names{en: N("country"), pt: N("país"), vn: N2("quốc gia", 0.7, "nước", 0.3)}},
				{Canon: "language", Kind: KindLangName, MinAtoms: 1, MaxAtoms: 2, Freq: 0.8,
					Names: names{en: N("language"), pt: N2("idioma original", 0.6, "idioma", 0.4), vn: N("ngôn ngữ")}},
				{Canon: "budget", Literal: "funding", Kind: KindMoney, MinAtoms: 1, MaxAtoms: 1, Freq: 0.45,
					Names: names{en: N("budget"), vn: N("kinh phí")}},
				{Canon: "gross revenue", Literal: "income", Kind: KindMoney, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N2("gross revenue", 0.6, "gross", 0.4), pt: N("receita"), vn: N2("doanh thu", 0.6, "thu nhập", 0.4)}},
				{Canon: "genre", Kind: KindGenre, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5,
					Names: names{pt: N("gênero"), vn: N("thể loại")}},
				{Canon: "awards", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.08, Vocab: "award", NoCooccur: true,
					Names: names{en: N("awards"), pt: N("prêmios")}},
				{Canon: "website", Kind: KindURL, MinAtoms: 1, MaxAtoms: 1, Freq: 0.15,
					Names: names{en: N("website"), pt: N("website")}},
			},
		},
		{
			Canon: "show",
			Template: map[wiki.Language]string{
				en: "Infobox television", pt: "Infobox programa de televisão", vn: "Infobox chương trình truyền hình",
			},
			Overlap: map[string]float64{"pt-en": 0.45, "vi-en": 0.75},
			Attrs: []AttrSpec{
				{Canon: "title", Literal: "title", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.95,
					Names: names{en: N("show name"), pt: N2("título", 0.6, "nome", 0.4), vn: N("tên")}},
				{Canon: "genre", Kind: KindGenre, MinAtoms: 1, MaxAtoms: 2, Freq: 0.7,
					Names: names{en: N("genre"), pt: N("gênero"), vn: N("thể loại")}},
				{Canon: "created by", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.6,
					Names: names{en: N("created by"), pt: N("criado por")}},
				{Canon: "starring", Literal: "original cast", Kind: KindWork, MinAtoms: 2, MaxAtoms: 4, Freq: 0.8, Vocab: "actor",
					Names: names{en: N("starring"), pt: N("elenco"), vn: N("diễn viên")}},
				{Canon: "country", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.8,
					Names: names{en: N("country of origin"), pt: N("país"), vn: N("quốc gia")}},
				{Canon: "language", Kind: KindLangName, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("language"), pt: N("idioma"), vn: N("ngôn ngữ")}},
				{Canon: "network", Literal: "broadcaster", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 1, Freq: 0.75,
					Names: names{en: N("network"), pt: N("emissora"), vn: N("kênh trình chiếu")}},
				{Canon: "first aired", Literal: "premiere", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("first aired"), pt: N("estreia"), vn: N("phát sóng")}},
				{Canon: "last aired", Literal: "ending", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("last aired"), pt: N("término")}},
				{Canon: "seasons", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.55,
					Names: names{en: N("no. of seasons"), pt: N("temporadas"), vn: N("số mùa")}},
				{Canon: "episodes", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("no. of episodes"), pt: N("episódios"), vn: N("số tập")}},
				{Canon: "theme composer", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3,
					Names: names{en: N("theme music composer")}},
				{Canon: "executive producer", Literal: "executive production", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.35,
					Names: names{en: N("executive producer"), pt: N("produção executiva")}},
			},
		},
		{
			Canon:        "actor",
			PersonTitled: true,
			Template: map[wiki.Language]string{
				en: "Infobox actor", pt: "Infobox ator", vn: "Infobox diễn viên",
			},
			Overlap: map[string]float64{"pt-en": 0.42, "vi-en": 0.46},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome"), vn: N("tên")}},
				{Canon: "birth date", Literal: "birth", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("born"), pt: N2("nascimento", 0.6, "data de nascimento", 0.4), vn: N2("sinh", 0.6, "ngày sinh", 0.4)}},
				{Canon: "birth place", Literal: "place of birth", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("born"), pt: N2("local de nascimento", 0.6, "país de nascimento", 0.4), vn: N("nơi sinh")}},
				{Canon: "death date", Literal: "death", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("died"), pt: N2("falecimento", 0.55, "morte", 0.45), vn: N2("mất", 0.7, "qua đời", 0.3)}},
				{Canon: "other names", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.3, Vocab: "alias",
					Names: names{en: N("other names"), pt: N("outros nomes"), vn: N("tên khác")}},
				{Canon: "spouse", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.45,
					Names: names{en: N("spouse"), pt: N("cônjuge"), vn: N2("vợ", 0.5, "chồng", 0.5)}},
				{Canon: "occupation", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.7, Vocab: "occupation",
					Names: names{en: N("occupation"), pt: N("ocupação"), vn: N2("vai trò", 0.5, "công việc", 0.5)}},
				{Canon: "years active", Literal: "activity period", Kind: KindSpan, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("years active"), pt: N("período de atividade"), vn: N("năm hoạt động")}},
				{Canon: "website", Kind: KindURL, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3,
					Names: names{en: N("website"), pt: N("website"), vn: N("trang web")}},
				{Canon: "children", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3,
					Names: names{en: N("children"), pt: N("filhos"), vn: N("con")}},
				{Canon: "nationality", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("nationality"), pt: N("nacionalidade"), vn: N("quốc tịch")}},
				{Canon: "height", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.25,
					Names: names{en: N("height"), pt: N("altura")}},
			},
		},
		{
			Canon:        "artist",
			PersonTitled: true,
			Template: map[wiki.Language]string{
				en: "Infobox musical artist", pt: "Infobox artista", vn: "Infobox nghệ sĩ",
			},
			Overlap: map[string]float64{"pt-en": 0.52, "vi-en": 0.67},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome"), vn: N("tên")}},
				{Canon: "background", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4, Vocab: "background",
					Names: names{en: N("background")}},
				{Canon: "origin", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("origin"), pt: N("origem"), vn: N("quê quán")}},
				{Canon: "birth date", Literal: "birth", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("born"), pt: N2("nascimento", 0.6, "data de nascimento", 0.4), vn: N("sinh")}},
				{Canon: "genre", Kind: KindGenre, MinAtoms: 1, MaxAtoms: 3, Freq: 0.8,
					Names: names{en: N("genre"), pt: N("gênero"), vn: N("thể loại")}},
				{Canon: "years active", Literal: "activity period", Kind: KindSpan, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("years active"), pt: N("período em atividade"), vn: N("năm hoạt động")}},
				{Canon: "label", Literal: "record label", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 2, Freq: 0.6,
					Names: names{en: N("label"), pt: N("gravadora"), vn: N("hãng đĩa")}},
				{Canon: "instrument", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5, Vocab: "instrument",
					Names: names{en: N("instrument"), pt: N("instrumento"), vn: N("nhạc cụ")}},
				{Canon: "associated acts", Literal: "associates", Kind: KindWork, MinAtoms: 1, MaxAtoms: 2, Freq: 0.3, Vocab: "artist",
					Names: names{en: N("associated acts"), pt: N("associados")}},
				{Canon: "website", Kind: KindURL, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3,
					Names: names{en: N("website"), pt: N("website"), vn: N("trang web")}},
			},
		},
		{
			Canon: "channel",
			Template: map[wiki.Language]string{
				en: "Infobox TV channel", pt: "Infobox canal de televisão",
			},
			Overlap: map[string]float64{"pt-en": 0.15},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome")}},
				{Canon: "launched", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("launched"), pt: N("lançamento")}},
				{Canon: "owner", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("owner"), pt: N("proprietário")}},
				{Canon: "country", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("country"), pt: N("país")}},
				{Canon: "language", Kind: KindLangName, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("language"), pt: N("idioma")}},
				{Canon: "website", Kind: KindURL, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("website"), pt: N("website")}},
				{Canon: "headquarters", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("headquarters"), pt: N("sede")}},
				{Canon: "sister channels", Kind: KindWork, MinAtoms: 1, MaxAtoms: 2, Freq: 0.3, Vocab: "channel",
					Names: names{en: N("sister channels")}},
				{Canon: "slogan", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3, Vocab: "slogan",
					Names: names{pt: N("slogan")}},
				{Canon: "picture format", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4, Vocab: "pictureformat",
					Names: names{en: N("picture format")}},
				{Canon: "broadcast area", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 2, Freq: 0.3,
					Names: names{en: N("broadcast area"), pt: N("área de transmissão")}},
			},
		},
		{
			Canon: "company",
			Template: map[wiki.Language]string{
				en: "Infobox company", pt: "Infobox empresa",
			},
			Overlap: map[string]float64{"pt-en": 0.31},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome")}},
				{Canon: "type", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6, Vocab: "companytype",
					Names: names{en: N("type"), pt: N("tipo")}},
				{Canon: "founded", Literal: "foundation", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("founded"), pt: N("fundação")}},
				{Canon: "founder", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5,
					Names: names{en: N("founder"), pt: N("fundador")}},
				{Canon: "headquarters", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("headquarters"), pt: N("sede")}},
				{Canon: "industry", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6, Vocab: "industry",
					Names: names{en: N("industry"), pt: N("indústria")}},
				{Canon: "revenue", Literal: "income", Kind: KindMoney, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("revenue"), pt: N2("faturamento", 0.6, "receita", 0.4)}},
				{Canon: "employees", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("employees"), pt: N("funcionários")}},
				{Canon: "website", Kind: KindURL, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("website"), pt: N("website")}},
				{Canon: "key people", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.35,
					Names: names{en: N("key people")}},
				{Canon: "products", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.4, Vocab: "industry",
					Names: names{en: N("products"), pt: N("produtos")}},
			},
		},
		{
			Canon: "comics character",
			Template: map[wiki.Language]string{
				en: "Infobox comics character", pt: "Infobox personagem de banda desenhada",
			},
			Overlap: map[string]float64{"pt-en": 0.59},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("character name"), pt: N("nome")}},
				{Canon: "publisher", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("publisher"), pt: N("editora")}},
				{Canon: "first appearance", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6, Vocab: "issue",
					Names: names{en: N("first appearance"), pt: N("primeira aparição")}},
				{Canon: "created by", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.7,
					Names: names{en: N("created by"), pt: N("criado por")}},
				{Canon: "powers", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 3, Freq: 0.5, Vocab: "powers",
					Names: names{en: N("powers"), pt: N("poderes")}},
				{Canon: "alter ego", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.35,
					Names: names{en: N("alter ego"), pt: N("alter ego")}},
				{Canon: "alliances", Literal: "affiliations", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.4, Vocab: "issue",
					Names: names{en: N("alliances"), pt: N("afiliações")}},
				{Canon: "species", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.2, Vocab: "species",
					Names: names{pt: N("espécie")}},
			},
		},
		{
			Canon: "album",
			Template: map[wiki.Language]string{
				en: "Infobox album", pt: "Infobox álbum",
			},
			Overlap: map[string]float64{"pt-en": 0.52},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome")}},
				{Canon: "artist", Kind: KindWork, MinAtoms: 1, MaxAtoms: 1, Freq: 0.85, Vocab: "artist",
					Names: names{en: N("artist"), pt: N("artista")}},
				{Canon: "released", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.8,
					Names: names{en: N("released"), pt: N("lançamento")}},
				{Canon: "recorded", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("recorded"), pt: N("gravado em")}},
				{Canon: "genre", Kind: KindGenre, MinAtoms: 1, MaxAtoms: 2, Freq: 0.8,
					Names: names{en: N("genre"), pt: N("gênero")}},
				{Canon: "length", Literal: "duration", Kind: KindDuration, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("length"), pt: N("duração")}},
				{Canon: "label", Literal: "record label", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("label"), pt: N("gravadora")}},
				{Canon: "producer", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5,
					Names: names{en: N("producer"), pt: N("produtor")}},
			},
		},
		{
			Canon:        "adult actor",
			PersonTitled: true,
			Template: map[wiki.Language]string{
				en: "Infobox adult biography", pt: "Infobox ator pornográfico",
			},
			Overlap: map[string]float64{"pt-en": 0.47},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome")}},
				{Canon: "birth date", Literal: "birth", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("born"), pt: N("nascimento")}},
				{Canon: "measurements", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4, Vocab: "measurements",
					Names: names{en: N("measurements"), pt: N("medidas")}},
				{Canon: "height", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("height"), pt: N("altura")}},
				{Canon: "alias", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.4, Vocab: "alias",
					Names: names{en: N("alias"), pt: N("outros nomes")}},
				{Canon: "films", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.35,
					Names: names{en: N("no. of films"), pt: N("número de filmes")}},
				{Canon: "eye color", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3, Vocab: "eyecolor",
					Names: names{en: N("eye color")}},
				{Canon: "hair color", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3, Vocab: "haircolor",
					Names: names{en: N("hair color")}},
				{Canon: "website", Kind: KindURL, MinAtoms: 1, MaxAtoms: 1, Freq: 0.25,
					Names: names{en: N("website"), pt: N("website")}},
			},
		},
		{
			Canon: "book",
			Template: map[wiki.Language]string{
				en: "Infobox book", pt: "Infobox livro",
			},
			Overlap: map[string]float64{"pt-en": 0.38},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome")}},
				{Canon: "author", Kind: KindWork, MinAtoms: 1, MaxAtoms: 1, Freq: 0.85, Vocab: "writer",
					Names: names{en: N("author"), pt: N("autor")}},
				{Canon: "country", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("country"), pt: N("país")}},
				{Canon: "language", Kind: KindLangName, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("language"), pt: N("idioma")}},
				{Canon: "genre", Kind: KindGenre, MinAtoms: 1, MaxAtoms: 2, Freq: 0.6,
					Names: names{en: N("genre"), pt: N("gênero")}},
				{Canon: "publisher", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("publisher"), pt: N("editora")}},
				{Canon: "publication date", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("publication date"), pt: N("data de publicação")}},
				{Canon: "pages", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("pages"), pt: N("páginas")}},
				{Canon: "isbn", Kind: KindSpan, MinAtoms: 1, MaxAtoms: 1, Freq: 0.45,
					Names: names{en: N("isbn"), pt: N("isbn")}},
			},
		},
		{
			Canon: "episode",
			Template: map[wiki.Language]string{
				en: "Infobox television episode", pt: "Infobox episódio",
			},
			Overlap: map[string]float64{"pt-en": 0.31},
			Attrs: []AttrSpec{
				{Canon: "title", Literal: "title", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("title"), pt: N("título")}},
				{Canon: "series", Kind: KindWork, MinAtoms: 1, MaxAtoms: 1, Freq: 0.8, Vocab: "show",
					Names: names{en: N("series"), pt: N("série")}},
				{Canon: "season", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("season"), pt: N("temporada")}},
				{Canon: "episode no", Literal: "number", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("episode"), pt: N("número")}},
				{Canon: "airdate", Literal: "display date", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6,
					Names: names{en: N("airdate"), pt: N("data de exibição")}},
				{Canon: "written by", Literal: "script", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5,
					Names: names{en: N("written by"), pt: N("escrito por")}},
				{Canon: "directed by", Literal: "direction", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("directed by"), pt: N("dirigido por")}},
				{Canon: "preceded by", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3, Vocab: "issue",
					Names: names{en: N("preceded by")}},
				{Canon: "followed by", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3, Vocab: "issue",
					Names: names{en: N("followed by")}},
				{Canon: "guests", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.2,
					Names: names{pt: N("convidados")}},
			},
		},
		{
			Canon:        "writer",
			PersonTitled: true,
			Template: map[wiki.Language]string{
				en: "Infobox writer", pt: "Infobox escritor",
			},
			Overlap: map[string]float64{"pt-en": 0.63},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome")}},
				{Canon: "birth date", Literal: "birth", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.8,
					Names: names{en: N("born"), pt: N2("nascimento", 0.6, "data de nascimento", 0.4)}},
				{Canon: "death date", Literal: "death", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("died"), pt: N2("falecimento", 0.55, "morte", 0.45)}},
				{Canon: "occupation", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.6, Vocab: "occupation",
					Names: names{en: N("occupation"), pt: N("ocupação")}},
				{Canon: "nationality", Kind: KindPlace, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("nationality"), pt: N("nacionalidade")}},
				{Canon: "period", Kind: KindSpan, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4,
					Names: names{en: N("period"), pt: N("período")}},
				{Canon: "genre", Kind: KindGenre, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5,
					Names: names{en: N("genre"), pt: N("gênero")}},
				{Canon: "notable works", Kind: KindWork, MinAtoms: 1, MaxAtoms: 2, Freq: 0.4, Vocab: "book",
					Names: names{en: N("notable works"), pt: N("obras notáveis")}},
				{Canon: "spouse", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3,
					Names: names{en: N("spouse"), pt: N("cônjuge")}},
				{Canon: "website", Kind: KindURL, MinAtoms: 1, MaxAtoms: 1, Freq: 0.2,
					Names: names{en: N("website")}},
			},
		},
		{
			Canon: "comics",
			Template: map[wiki.Language]string{
				en: "Infobox comic book series", pt: "Infobox banda desenhada",
			},
			Overlap: map[string]float64{"pt-en": 0.47},
			Attrs: []AttrSpec{
				{Canon: "title", Literal: "title", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("title"), pt: N("título")}},
				{Canon: "publisher", Kind: KindOrg, MinAtoms: 1, MaxAtoms: 1, Freq: 0.8,
					Names: names{en: N("publisher"), pt: N("editora")}},
				{Canon: "schedule", Literal: "periodicity", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5, Vocab: "schedule",
					Names: names{en: N("schedule"), pt: N("periodicidade")}},
				{Canon: "format", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5, Vocab: "format",
					Names: names{en: N("format"), pt: N("formato")}},
				{Canon: "genre", Kind: KindGenre, MinAtoms: 1, MaxAtoms: 2, Freq: 0.5,
					Names: names{en: N("genre"), pt: N("gênero")}},
				{Canon: "date", Kind: KindDate, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("date"), pt: N("data de publicação")}},
				{Canon: "issues", Literal: "editions", Kind: KindNumber, MinAtoms: 1, MaxAtoms: 1, Freq: 0.5,
					Names: names{en: N("issues"), pt: N("edições")}},
				{Canon: "writers", Literal: "screenwriters", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.6,
					Names: names{en: N("writers"), pt: N("roteiristas")}},
				{Canon: "artists", Literal: "cartoonists", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.4,
					Names: names{en: N("artists"), pt: N("desenhistas")}},
			},
		},
		{
			Canon: "fictional character",
			Template: map[wiki.Language]string{
				en: "Infobox character", pt: "Infobox personagem fictícia",
			},
			Overlap: map[string]float64{"pt-en": 0.32},
			Attrs: []AttrSpec{
				{Canon: "name", Kind: KindSelf, MinAtoms: 1, MaxAtoms: 1, Freq: 0.9,
					Names: names{en: N("name"), pt: N("nome")}},
				{Canon: "series", Kind: KindWork, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7, Vocab: "show",
					Names: names{en: N("series"), pt: N("série")}},
				{Canon: "first appearance", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6, Vocab: "issue",
					Names: names{en: N("first appearance"), pt: N("primeira aparição")}},
				{Canon: "created by", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 1, Freq: 0.7,
					Names: names{en: N("created by"), pt: N("criado por")}},
				{Canon: "portrayed by", Literal: "interpreted by", Kind: KindWork, MinAtoms: 1, MaxAtoms: 1, Freq: 0.6, Vocab: "actor",
					Names: names{en: N("portrayed by"), pt: N("interpretado por")}},
				{Canon: "species", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.3, Vocab: "species",
					Names: names{en: N("species"), pt: N("espécie")}},
				{Canon: "gender", Literal: "sex", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 1, Freq: 0.4, Vocab: "gender",
					Names: names{en: N("gender"), pt: N("sexo")}},
				{Canon: "occupation", Kind: KindTerm, MinAtoms: 1, MaxAtoms: 2, Freq: 0.4, Vocab: "occupation",
					Names: names{en: N("occupation"), pt: N("ocupação")}},
				{Canon: "family", Kind: KindPerson, MinAtoms: 1, MaxAtoms: 2, Freq: 0.3,
					Names: names{en: N("family")}},
			},
		},
	}
}

func init() {
	// The "award" vocabulary backs the NoCooccur awards attribute.
	vocabs["award"] = []Tri{
		{"Academy Award for Best Picture", "Oscar de melhor filme", ""},
		{"Golden Globe", "Globo de Ouro", ""},
		{"BAFTA Award", "Prêmio BAFTA", ""},
	}
}

// entityVocabs lists the term vocabularies whose entries are themselves
// Wikipedia articles ("Politician" ↔ "Político"): their values become
// linked reference entities with stub articles and cross-language links,
// so they feed the translation dictionary and lsim like places and
// genres do.
var entityVocabs = map[string]bool{
	"occupation": true,
	"instrument": true,
	"industry":   true,
	"powers":     true,
	"species":    true,
	"award":      true,
}
