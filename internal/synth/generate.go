package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/wiki"
)

// Config controls a generation run. All randomness is derived from Seed,
// so equal configs produce identical corpora.
type Config struct {
	Seed int64
	// PtEnPairs / VnEnPairs give the number of cross-linked infobox pairs
	// per canonical type for each language pair.
	PtEnPairs map[string]int
	VnEnPairs map[string]int
	// EnExtraFrac adds this fraction of extra English-only entities per
	// type (the English edition's higher coverage, which drives the case
	// study's cumulative-gain results).
	EnExtraFrac float64
	// LinkProb is the probability an entity-valued atom is hyperlinked.
	LinkProb float64
	// AnchorAliasProb is the probability a link uses an alias anchor
	// ("USA" instead of "United States").
	AnchorAliasProb float64
	// DropAtomProb drops one atom from a multi-atom value per language.
	DropAtomProb float64
	// PerturbProb perturbs a literal per language (running time 160 vs
	// 165, the paper's §1 inconsistency).
	PerturbProb float64
	// MisfileProb appends a value atom from another attribute (Ryuichi
	// Sakamoto under Elenco original, §1).
	MisfileProb float64
	// LinkDateProb links the day-month part of a date value.
	LinkDateProb float64
	// StubCrossLinkProb is the probability a referenced stub entity
	// carries interlanguage links between a given pair of editions. Real
	// Wikipedia cross-language links are incomplete (the paper cites Oh
	// et al.'s link-discovery work precisely because of this), which
	// bounds both dictionary coverage and lsim resolution.
	StubCrossLinkProb float64

	// Inconsistency-injection knobs (all zero outside audit-eval
	// corpora; see AuditEvalConfig). Each is a per-(entity, attribute)
	// probability that one randomly chosen edition renders a known-wrong
	// value, recorded in the GroundTruth.Injected ledger so a detector
	// can be scored against it. At most one injection applies per
	// attribute, tried in the order below.

	// InjectNumberProb perturbs a numeric literal (number, year,
	// duration) in the victim edition.
	InjectNumberProb float64
	// InjectDateProb shifts the day of a date value in the victim
	// edition.
	InjectDateProb float64
	// InjectUnitProb rewrites a unit-bearing value (duration, money)
	// keeping the written magnitude but swapping the unit or scale word
	// (minutes → hours, milhões → bilhões).
	InjectUnitProb float64
	// InjectDropProb drops the whole attribute from the victim edition
	// while the other edition keeps it.
	InjectDropProb float64
}

// DefaultConfig is the full-scale experiment corpus: the per-type pair
// counts keep the relative proportions of the paper's dataset (8,898
// Pt-En and 659 Vn-En infoboxes) at roughly one-quarter scale so the whole
// benchmark suite runs in seconds.
func DefaultConfig() Config {
	return Config{
		Seed: 20111030, // the paper's arXiv date
		PtEnPairs: map[string]int{
			"film": 260, "show": 100, "actor": 140, "artist": 110,
			"channel": 60, "company": 90, "comics character": 70, "album": 130,
			"adult actor": 45, "book": 70, "episode": 55, "writer": 65,
			"comics": 35, "fictional character": 45,
		},
		VnEnPairs: map[string]int{
			"film": 80, "show": 35, "actor": 40, "artist": 25,
		},
		EnExtraFrac:       1.2,
		LinkProb:          0.9,
		AnchorAliasProb:   0.25,
		DropAtomProb:      0.05,
		PerturbProb:       0.06,
		MisfileProb:       0.02,
		LinkDateProb:      0.45,
		StubCrossLinkProb: 0.8,
	}
}

// SmallConfig is a fast corpus for unit tests: same structure, roughly a
// quarter of the default sizes.
func SmallConfig() Config {
	cfg := DefaultConfig()
	small := func(m map[string]int) map[string]int {
		out := make(map[string]int, len(m))
		for k, v := range m {
			n := v / 4
			if n < 8 {
				n = 8
			}
			out[k] = n
		}
		return out
	}
	cfg.PtEnPairs = small(cfg.PtEnPairs)
	cfg.VnEnPairs = small(cfg.VnEnPairs)
	return cfg
}

// AuditEvalConfig is the consistency-audit evaluation corpus: the
// small-scale corpus with the organic value noise silenced (so injected
// inconsistencies are the only cross-edition value disagreements of
// their kinds) and every injection knob turned on. The GroundTruth
// returned alongside carries the Injected ledger the audit eval scores
// against.
func AuditEvalConfig() Config {
	cfg := SmallConfig()
	cfg.DropAtomProb = 0
	cfg.PerturbProb = 0
	cfg.MisfileProb = 0
	cfg.InjectNumberProb = 0.25
	cfg.InjectDateProb = 0.25
	cfg.InjectUnitProb = 0.25
	cfg.InjectDropProb = 0.15
	return cfg
}

// Generate builds the synthetic multilingual corpus and its ground truth.
func Generate(cfg Config) (*wiki.Corpus, *GroundTruth, error) {
	g := &generator{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		specs:      TypeSpecs(),
		usedTitles: map[wiki.Language]map[string]bool{en: {}, pt: {}, vn: {}},
		usedRefs:   make(map[string]*RefEntity),
	}
	g.pools = newPools(g.rng)
	g.registerRefTitles()

	truth := &GroundTruth{
		Types:           make(map[string]*TypeTruth),
		TypeNameToCanon: map[wiki.Language]map[string]string{en: {}, pt: {}, vn: {}},
		Entities:        make(map[string][]*Entity),
	}
	for i := range g.specs {
		spec := &g.specs[i]
		truth.Types[spec.Canon] = newTypeTruth(spec)
		for lang := range spec.Template {
			truth.TypeNameToCanon[lang][spec.TypeName(lang)] = spec.Canon
		}
	}

	// Phase 1: entity shells (ids, languages, titles) for every type.
	for i := range g.specs {
		spec := &g.specs[i]
		ents, err := g.makeShells(spec)
		if err != nil {
			return nil, nil, err
		}
		g.entities = append(g.entities, ents...)
		truth.Entities[spec.Canon] = ents
	}

	// Phase 2: canonical values (works can now reference any shell).
	for _, e := range g.entities {
		g.sampleValues(e, truth)
	}
	g.seedQueryTargets(truth)

	// Phase 3: render articles.
	corpus := wiki.NewCorpus()
	for _, e := range g.entities {
		if err := g.emitEntity(corpus, e, truth); err != nil {
			return nil, nil, err
		}
	}

	// Phase 4: stub articles for every referenced entity.
	if err := g.emitStubs(corpus); err != nil {
		return nil, nil, err
	}
	return corpus, truth, nil
}

// generator carries the state of one run.
type generator struct {
	cfg        Config
	rng        *rand.Rand
	specs      []TypeSpec
	pools      *pools
	entities   []*Entity
	usedTitles map[wiki.Language]map[string]bool
	usedRefs   map[string]*RefEntity
}

// registerRefTitles reserves the static reference-bank titles so entity
// titles never collide with them.
func (g *generator) registerRefTitles() {
	banks := [][]*RefEntity{g.pools.persons, g.pools.placesP, g.pools.orgs, g.pools.genresP, g.pools.langsP}
	for _, bank := range g.pools.terms {
		banks = append(banks, bank)
	}
	for _, bank := range banks {
		for _, r := range bank {
			for lang, t := range r.Titles {
				g.usedTitles[lang][t] = true
			}
		}
	}
}

// makeShells creates the entities of one type: Pt-En pairs, Vn-En pairs
// (when the type exists in Vietnamese), and English-only extras.
func (g *generator) makeShells(spec *TypeSpec) ([]*Entity, error) {
	var ents []*Entity
	mk := func(langs []wiki.Language, n int, tag string) error {
		for i := 0; i < n; i++ {
			e := &Entity{
				ID:     fmt.Sprintf("%s-%s-%04d", strings.ReplaceAll(spec.Canon, " ", "_"), tag, i),
				Type:   spec.Canon,
				Titles: make(map[wiki.Language]string),
				Langs:  make(map[wiki.Language]bool),
				Values: make(map[string][]Atom),
			}
			for _, l := range langs {
				e.Langs[l] = true
			}
			if err := g.assignTitles(spec, e); err != nil {
				return err
			}
			ents = append(ents, e)
		}
		return nil
	}
	if spec.HasLanguage(pt) {
		if err := mk([]wiki.Language{pt, en}, g.cfg.PtEnPairs[spec.Canon], "pt"); err != nil {
			return nil, err
		}
	}
	if spec.HasLanguage(vn) {
		if err := mk([]wiki.Language{vn, en}, g.cfg.VnEnPairs[spec.Canon], "vn"); err != nil {
			return nil, err
		}
	}
	extras := int(float64(g.cfg.PtEnPairs[spec.Canon]+g.cfg.VnEnPairs[spec.Canon]) * g.cfg.EnExtraFrac)
	if err := mk([]wiki.Language{en}, extras, "en"); err != nil {
		return nil, err
	}
	return ents, nil
}

// assignTitles gives an entity a unique title in every language it (or a
// reference to it) may need; the uniqueness ordinal is shared across
// languages so cross-language links stay consistent.
func (g *generator) assignTitles(spec *TypeSpec, e *Entity) error {
	var base map[wiki.Language]string
	if spec.PersonTitled {
		name := pick(g.rng, firstNames) + " " + pick(g.rng, lastNames)
		base = map[wiki.Language]string{en: name, pt: name, vn: name}
	} else {
		adj := pick(g.rng, titleAdjectives)
		noun := pick(g.rng, titleNouns)
		base = map[wiki.Language]string{
			en: "The " + adj.EN + " " + noun.EN,
			pt: "O " + noun.PT + " " + adj.PT,
			vn: noun.VN + " " + adj.VN,
		}
	}
	for ord := 1; ; ord++ {
		ok := true
		for lang, t := range base {
			if g.usedTitles[lang][withOrdinal(t, ord)] {
				ok = false
				break
			}
		}
		if ok {
			for lang, t := range base {
				title := withOrdinal(t, ord)
				e.Titles[lang] = title
				g.usedTitles[lang][title] = true
			}
			return nil
		}
		if ord > 10000 {
			return fmt.Errorf("synth: cannot find unique title for %s", e.ID)
		}
	}
}

func withOrdinal(title string, ord int) string {
	if ord == 1 {
		return title
	}
	return fmt.Sprintf("%s (%d)", title, ord)
}

// sampleValues draws the canonical value atoms for every attribute of an
// entity.
func (g *generator) sampleValues(e *Entity, truth *GroundTruth) {
	spec := g.specFor(e.Type)
	for i := range spec.Attrs {
		attr := &spec.Attrs[i]
		n := attr.MinAtoms
		if attr.MaxAtoms > attr.MinAtoms {
			n += g.rng.Intn(attr.MaxAtoms - attr.MinAtoms + 1)
		}
		e.Values[attr.Canon] = g.sampleAtoms(e, attr, n, truth)
	}
}

func (g *generator) specFor(canon string) *TypeSpec {
	for i := range g.specs {
		if g.specs[i].Canon == canon {
			return &g.specs[i]
		}
	}
	panic("synth: unknown type " + canon)
}

// sampleAtoms draws n atoms for an attribute.
func (g *generator) sampleAtoms(e *Entity, attr *AttrSpec, n int, truth *GroundTruth) []Atom {
	atoms := make([]Atom, 0, n)
	seen := make(map[string]bool)
	for len(atoms) < n {
		a, key := g.sampleAtom(e, attr, truth)
		if key != "" && seen[key] {
			if len(seen) >= n*3 {
				break // pool exhausted
			}
			continue
		}
		seen[key] = true
		atoms = append(atoms, a)
	}
	return atoms
}

// sampleAtom draws one atom; key identifies it for de-duplication.
func (g *generator) sampleAtom(e *Entity, attr *AttrSpec, truth *GroundTruth) (Atom, string) {
	switch attr.Kind {
	case KindSelf:
		return Atom{Kind: KindSelf}, "self"
	case KindPerson:
		r := pick(g.rng, g.pools.persons)
		return Atom{Kind: attr.Kind, Ref: r}, r.ID
	case KindPlace:
		r := pick(g.rng, g.pools.placesP)
		return Atom{Kind: attr.Kind, Ref: r}, r.ID
	case KindOrg:
		r := pick(g.rng, g.pools.orgs)
		return Atom{Kind: attr.Kind, Ref: r}, r.ID
	case KindGenre:
		r := pick(g.rng, g.pools.genresP)
		return Atom{Kind: attr.Kind, Ref: r}, r.ID
	case KindLangName:
		r := pick(g.rng, g.pools.langsP)
		return Atom{Kind: attr.Kind, Ref: r}, r.ID
	case KindWork:
		pool := truth.Entities[attr.Vocab]
		if len(pool) == 0 {
			return Atom{Kind: KindSpan, Lit: "unknown"}, "unknown"
		}
		// Prefer works that share a language with the referencing entity,
		// so links resolve to real articles.
		var shared []*Entity
		for _, w := range pool {
			for l := range e.Langs {
				if w.Langs[l] {
					shared = append(shared, w)
					break
				}
			}
		}
		if len(shared) == 0 {
			shared = pool
		}
		w := pick(g.rng, shared)
		return Atom{Kind: KindWork, Work: w}, w.ID
	case KindDate:
		y, m, d := 1930+g.rng.Intn(81), 1+g.rng.Intn(12), 1+g.rng.Intn(28)
		lit := fmt.Sprintf("%04d-%02d-%02d", y, m, d)
		return Atom{Kind: KindDate, Lit: lit}, lit
	case KindYear:
		lit := fmt.Sprintf("%d", 1930+g.rng.Intn(81))
		return Atom{Kind: KindYear, Lit: lit}, lit
	case KindDuration:
		lit := fmt.Sprintf("%d", 60+g.rng.Intn(140))
		return Atom{Kind: KindDuration, Lit: lit}, lit
	case KindMoney:
		var dollars int64
		if attr.Canon == "revenue" && g.rng.Float64() < 0.2 {
			dollars = int64(1+g.rng.Intn(40)) * 1_000_000_000
		} else {
			dollars = int64(1+g.rng.Intn(300)) * 1_000_000
		}
		lit := fmt.Sprintf("%d", dollars)
		return Atom{Kind: KindMoney, Lit: lit}, lit
	case KindNumber:
		lit := fmt.Sprintf("%d", g.numberFor(attr.Canon))
		return Atom{Kind: KindNumber, Lit: lit}, lit
	case KindURL:
		lit := "http://www." + slug(e.Titles[en]) + ".com"
		return Atom{Kind: KindURL, Lit: lit}, lit
	case KindTerm:
		if refs := g.pools.terms[attr.Vocab]; len(refs) > 0 {
			r := pick(g.rng, refs)
			return Atom{Kind: KindTerm, Ref: r}, r.ID
		}
		vocab := vocabs[attr.Vocab]
		if len(vocab) == 0 {
			return Atom{Kind: KindSpan, Lit: attr.Vocab}, attr.Vocab
		}
		t := pick(g.rng, vocab)
		return Atom{Kind: KindTerm, Term: t}, t.EN + t.PT + t.VN
	case KindSpan:
		if attr.Canon == "isbn" {
			lit := fmt.Sprintf("978-%d-%03d-%05d-%d", g.rng.Intn(10), g.rng.Intn(1000), g.rng.Intn(100000), g.rng.Intn(10))
			return Atom{Kind: KindSpan, Lit: lit}, lit
		}
		start := 1940 + g.rng.Intn(60)
		span := fmt.Sprintf("%d–%d", start, start+3+g.rng.Intn(30))
		return Atom{Kind: KindSpan, Lit: span}, span
	}
	return Atom{Kind: KindSpan, Lit: "?"}, "?"
}

// numberFor gives a plausible range per numeric attribute.
func (g *generator) numberFor(canon string) int {
	switch canon {
	case "children":
		return 1 + g.rng.Intn(5)
	case "seasons", "season":
		return 1 + g.rng.Intn(12)
	case "episodes":
		return 6 + g.rng.Intn(200)
	case "episode no":
		return 1 + g.rng.Intn(24)
	case "pages":
		return 80 + g.rng.Intn(850)
	case "height":
		return 150 + g.rng.Intn(50)
	case "employees":
		return 50 + g.rng.Intn(200000)
	case "issues":
		return 1 + g.rng.Intn(300)
	case "films":
		return 10 + g.rng.Intn(400)
	}
	return 1 + g.rng.Intn(100)
}

func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "entity"
	}
	return b.String()
}

// refByTitle finds a reference entity in a bank by English title.
func refByTitle(bank []*RefEntity, enTitle string) *RefEntity {
	for _, r := range bank {
		if r.Titles[en] == enTitle {
			return r
		}
	}
	panic("synth: unknown reference " + enTitle)
}

// seedQueryTargets deterministically plants the entities the case-study
// queries (Table 4) look for, spread across every language pool, and
// records the forced attributes so presence sampling keeps them.
func (g *generator) seedQueryTargets(truth *GroundTruth) {
	coppola := g.pools.special["Francis Ford Coppola"]
	kripke := g.pools.special["Eric Kripke"]
	france := refByTitle(g.pools.placesP, "France")
	england := refByTitle(g.pools.placesP, "England")
	brazil := refByTitle(g.pools.placesP, "Brazil")
	jazz := refByTitle(g.pools.genresP, "Jazz")
	progRock := refByTitle(g.pools.genresP, "Progressive Rock")
	rock := refByTitle(g.pools.genresP, "Rock")
	politician := refByTitle(g.pools.terms["occupation"], "politician")
	director := refByTitle(g.pools.terms["occupation"], "director")
	bestPicture := refByTitle(g.pools.terms["award"], "Academy Award for Best Picture")

	force := func(e *Entity, canon string, atoms ...Atom) {
		e.Values[canon] = atoms
		if e.force == nil {
			e.force = make(map[string]bool)
		}
		e.force[canon] = true
	}

	actors := truth.Entities["actor"]
	for i, e := range actors {
		switch i % 12 {
		case 0:
			force(e, "occupation", Atom{Kind: KindTerm, Ref: politician})
		case 1:
			force(e, "occupation", Atom{Kind: KindTerm, Ref: director})
			force(e, "nationality", Atom{Kind: KindPlace, Ref: england})
		case 2:
			force(e, "birth place", Atom{Kind: KindPlace, Ref: brazil})
			force(e, "website", Atom{Kind: KindURL, Lit: "http://www." + slug(e.Titles[en]) + ".com"})
		}
	}
	politicians := filterIdx(actors, func(i int) bool { return i%12 == 0 })

	for i, e := range truth.Entities["film"] {
		switch i % 16 {
		case 0:
			force(e, "directed by", Atom{Kind: KindPerson, Ref: coppola})
		case 1:
			force(e, "awards", Atom{Kind: KindTerm, Ref: bestPicture})
			force(e, "country", Atom{Kind: KindPlace, Ref: england})
		case 2:
			force(e, "gross revenue", Atom{Kind: KindMoney, Lit: "40000000"})
		case 3:
			if len(politicians) > 0 {
				p := politicians[(i/16)%len(politicians)]
				atoms := append([]Atom{{Kind: KindWork, Work: p}}, e.Values["starring"]...)
				force(e, "starring", atoms...)
			}
		}
	}
	for i, e := range truth.Entities["artist"] {
		switch i % 12 {
		case 0:
			force(e, "origin", Atom{Kind: KindPlace, Ref: france})
			force(e, "genre", Atom{Kind: KindGenre, Ref: jazz})
		case 1:
			force(e, "genre", Atom{Kind: KindGenre, Ref: progRock})
			force(e, "birth date", Atom{Kind: KindDate, Lit: fmt.Sprintf("19%d-05-14", 55+i%30)})
		}
	}
	for i, e := range truth.Entities["company"] {
		if i%10 == 0 {
			force(e, "revenue", Atom{Kind: KindMoney, Lit: "12000000000"})
		}
	}
	for i, e := range truth.Entities["writer"] {
		if i%8 == 0 {
			force(e, "birth date", Atom{Kind: KindDate, Lit: fmt.Sprintf("19%02d-03-21", 30+i%40)})
		}
	}
	for i, e := range truth.Entities["album"] {
		if i%10 == 0 {
			force(e, "genre", Atom{Kind: KindGenre, Ref: rock})
			force(e, "recorded", Atom{Kind: KindDate, Lit: fmt.Sprintf("19%02d-09-01", 60+i%18)})
		}
	}
	for i, e := range truth.Entities["fictional character"] {
		if i%10 == 0 {
			force(e, "created by", Atom{Kind: KindPerson, Ref: kripke})
		}
	}
}

func filterIdx(ents []*Entity, keep func(int) bool) []*Entity {
	var out []*Entity
	for i, e := range ents {
		if keep(i) {
			out = append(out, e)
		}
	}
	return out
}

// emitEntity renders an entity's articles into the corpus.
func (g *generator) emitEntity(corpus *wiki.Corpus, e *Entity, truth *GroundTruth) error {
	spec := g.specFor(e.Type)
	presence := g.samplePresence(spec, e)
	injections := g.planInjections(spec, e, presence, truth)
	langs := make([]wiki.Language, 0, len(e.Langs))
	for l := range e.Langs {
		langs = append(langs, l)
	}
	sort.Slice(langs, func(i, j int) bool { return langs[i] < langs[j] })
	for _, lang := range langs {
		if !spec.HasLanguage(lang) {
			continue
		}
		a := g.renderArticle(spec, e, lang, presence, injections)
		for _, other := range langs {
			if other != lang && spec.HasLanguage(other) {
				a.SetCrossLink(other, e.Titles[other])
			}
		}
		if err := corpus.Add(a); err != nil {
			return err
		}
	}
	return nil
}

// planInjections decides, per canonical attribute of one entity, whether
// one edition renders a known-wrong value, and records every decision in
// the truth ledger. Injections only target attributes present in at
// least two editions, so every ledger entry is detectable in principle.
// When all injection knobs are zero (the default corpora) no randomness
// is consumed, keeping those corpora byte-identical to earlier builds.
func (g *generator) planInjections(spec *TypeSpec, e *Entity, presence map[string]map[wiki.Language]bool, truth *GroundTruth) map[string]Injection {
	cfg := g.cfg
	if cfg.InjectNumberProb == 0 && cfg.InjectDateProb == 0 &&
		cfg.InjectUnitProb == 0 && cfg.InjectDropProb == 0 {
		return nil
	}
	out := make(map[string]Injection)
	for i := range spec.Attrs {
		attr := &spec.Attrs[i]
		var langs []wiki.Language
		for l, on := range presence[attr.Canon] {
			if on {
				langs = append(langs, l)
			}
		}
		if len(langs) < 2 || len(e.Values[attr.Canon]) == 0 {
			continue
		}
		sort.Slice(langs, func(a, b int) bool { return langs[a] < langs[b] })
		kind := ""
		switch {
		case numberInjectable(attr.Kind) && g.rng.Float64() < cfg.InjectNumberProb:
			kind = InjectNumber
		case attr.Kind == KindDate && g.rng.Float64() < cfg.InjectDateProb:
			kind = InjectDate
		case unitInjectable(attr.Kind) && g.rng.Float64() < cfg.InjectUnitProb:
			kind = InjectUnit
		case g.rng.Float64() < cfg.InjectDropProb:
			kind = InjectDrop
		}
		if kind == "" {
			continue
		}
		victim := langs[g.rng.Intn(len(langs))]
		inj := Injection{
			Kind:   kind,
			Entity: e.ID,
			Type:   e.Type,
			Canon:  attr.Canon,
			Lang:   victim,
			Titles: make(map[wiki.Language]string, len(langs)),
		}
		for _, l := range langs {
			inj.Titles[l] = e.Titles[l]
		}
		out[attr.Canon] = inj
		truth.Injected = append(truth.Injected, inj)
	}
	return out
}

// numberInjectable reports whether a kind's literal can be perturbed.
func numberInjectable(k Kind) bool {
	return k == KindNumber || k == KindYear || k == KindDuration
}

// unitInjectable reports whether a kind renders a unit or scale word a
// rewrite can swap.
func unitInjectable(k Kind) bool {
	return k == KindDuration || k == KindMoney
}

// samplePresence decides, per canonical attribute, in which of the
// entity's language editions it appears, following the overlap model
// described in the package comment.
func (g *generator) samplePresence(spec *TypeSpec, e *Entity) map[string]map[wiki.Language]bool {
	presence := make(map[string]map[wiki.Language]bool, len(spec.Attrs))
	other := g.otherLanguage(e)
	o, singles := 0.6, 1.0
	if other != "" {
		o, singles = solveOverlap(spec, wiki.LanguagePair{A: other, B: en})
	}
	for i := range spec.Attrs {
		attr := &spec.Attrs[i]
		p := make(map[wiki.Language]bool, 2)
		presence[attr.Canon] = p
		forced := e.force[attr.Canon]
		hasEn := attr.Names[en] != nil && e.Langs[en]
		hasOther := other != "" && attr.Names[other] != nil
		if !forced && g.rng.Float64() >= attr.freq() {
			continue
		}
		switch {
		case forced && attr.NoCooccur && hasEn && hasOther:
			// Even planted attributes respect the never-co-occur property;
			// the non-English side wins because the case-study queries
			// originate there (English coverage comes from the extras).
			p[other] = true
		case forced:
			if hasEn {
				p[en] = true
			}
			if hasOther {
				p[other] = true
			}
		case attr.NoCooccur && hasEn && hasOther:
			if g.rng.Float64() < 0.5 {
				p[en] = true
			} else {
				p[other] = true
			}
		case hasEn && hasOther:
			r := g.rng.Float64()
			switch {
			case r < o:
				p[en], p[other] = true, true
			case r < o+(1-o)/2:
				p[other] = true
			default:
				p[en] = true
			}
		case hasEn && other != "":
			if g.rng.Float64() < singles {
				p[en] = true
			}
		case hasEn:
			p[en] = true
		case hasOther:
			if g.rng.Float64() < singles {
				p[other] = true
			}
		}
	}
	return presence
}

// otherLanguage returns the entity's non-English edition, if any.
func (g *generator) otherLanguage(e *Entity) wiki.Language {
	for l := range e.Langs {
		if l != en {
			return l
		}
	}
	return ""
}

// solveOverlap converts a Table 5 overlap target into the per-attribute
// both-sides probability o and a presence multiplier m for attributes
// that exist in only one language's template: measured overlap ≈
// o·s/(s + m·u) where s and u are the expected counts of shared and
// single-language attributes. When even o = 0.97 cannot reach the target
// (homogeneous pairs like Vn-En film), m < 1 thins out the single-side
// attributes, mirroring how real high-overlap pairs simply omit them.
func solveOverlap(spec *TypeSpec, pair wiki.LanguagePair) (o, m float64) {
	target := spec.Overlap[pair.String()]
	if target == 0 {
		target = 0.5
	}
	var s, u float64
	for i := range spec.Attrs {
		attr := &spec.Attrs[i]
		hasA := attr.Names[pair.A] != nil
		hasB := attr.Names[pair.B] != nil
		switch {
		case hasA && hasB && !attr.NoCooccur:
			s += attr.freq()
		case hasA || hasB:
			u += attr.freq()
		}
	}
	if s == 0 {
		return 0.5, 1
	}
	o = target * (s + u) / s
	m = 1
	if o > 0.97 {
		o = 0.97
		if u > 0 {
			m = (o*s/target - s) / u
			if m < 0.05 {
				m = 0.05
			}
		}
	}
	if o < 0.05 {
		o = 0.05
	}
	return o, m
}

// renderArticle builds one language edition's article for an entity.
func (g *generator) renderArticle(spec *TypeSpec, e *Entity, lang wiki.Language, presence map[string]map[wiki.Language]bool, injections map[string]Injection) *wiki.Article {
	ib := &wiki.Infobox{Template: spec.Template[lang]}
	// Group selected canonical attributes by chosen surface name so that
	// polysemous names (English "born") merge into one attribute.
	type slot struct {
		text  []string
		links []wiki.Link
	}
	order := []string{}
	slots := map[string]*slot{}
	for i := range spec.Attrs {
		attr := &spec.Attrs[i]
		if !presence[attr.Canon][lang] {
			continue
		}
		inject := ""
		if inj, ok := injections[attr.Canon]; ok && inj.Lang == lang {
			if inj.Kind == InjectDrop {
				continue
			}
			inject = inj.Kind
		}
		name := pickName(g.rng, attr.Names[lang])
		text, links := g.renderValue(e, attr, lang, inject)
		if text == "" {
			continue
		}
		s := slots[name]
		if s == nil {
			s = &slot{}
			slots[name] = s
			order = append(order, name)
		}
		s.text = append(s.text, text)
		s.links = append(s.links, links...)
	}
	for _, name := range order {
		s := slots[name]
		ib.Attrs = append(ib.Attrs, wiki.AttributeValue{
			Name:  name,
			Text:  strings.Join(s.text, ", "),
			Links: s.links,
		})
	}
	return &wiki.Article{
		Language: lang,
		Title:    e.Titles[lang],
		Type:     spec.TypeName(lang),
		Infobox:  ib,
		// The localized type doubles as a category, so category-based
		// type assignment (wiki.AssignTypesFromCategories) has material
		// to work with — the paper's Section 2 alternative mechanism.
		Categories: []string{spec.TypeName(lang)},
	}
}

// renderValue renders an attribute's atoms in one language, applying the
// per-language noise model and, when inject names an injection kind, the
// planned inconsistency.
func (g *generator) renderValue(e *Entity, attr *AttrSpec, lang wiki.Language, inject string) (string, []wiki.Link) {
	atoms := e.Values[attr.Canon]
	if len(atoms) == 0 {
		return "", nil
	}
	work := append([]Atom(nil), atoms...)
	if len(work) > 1 && g.rng.Float64() < g.cfg.DropAtomProb {
		drop := g.rng.Intn(len(work))
		work = append(work[:drop], work[drop+1:]...)
	}
	if g.rng.Float64() < g.cfg.MisfileProb {
		if stray, ok := g.strayAtom(e, attr.Canon); ok {
			work = append(work, stray)
		}
	}
	var parts []string
	var links []wiki.Link
	for _, a := range work {
		text, link := g.renderAtom(e, a, lang, inject)
		if text == "" {
			continue
		}
		parts = append(parts, text)
		if link != nil {
			links = append(links, *link)
		}
	}
	return strings.Join(parts, ", "), links
}

// strayAtom picks an atom from another attribute of the entity.
func (g *generator) strayAtom(e *Entity, excludeCanon string) (Atom, bool) {
	var canons []string
	for c, atoms := range e.Values {
		if c != excludeCanon && len(atoms) > 0 {
			canons = append(canons, c)
		}
	}
	if len(canons) == 0 {
		return Atom{}, false
	}
	sort.Strings(canons)
	c := pick(g.rng, canons)
	return pick(g.rng, e.Values[c]), true
}

// renderAtom renders one atom in one language. A non-empty inject names
// the planned inconsistency kind to apply to this edition's rendering.
func (g *generator) renderAtom(e *Entity, a Atom, lang wiki.Language, inject string) (string, *wiki.Link) {
	switch a.Kind {
	case KindSelf:
		return e.Title(lang), nil
	case KindPerson, KindPlace, KindOrg, KindGenre, KindLangName:
		g.useRef(a.Ref)
		title := a.Ref.Title(lang)
		anchor := title
		if g.rng.Float64() < g.cfg.AnchorAliasProb {
			if alias := anchorAlias(a.Ref, lang); alias != "" {
				anchor = alias
			}
		}
		if g.rng.Float64() < g.cfg.LinkProb {
			return anchor, &wiki.Link{Target: title, Anchor: anchor}
		}
		return anchor, nil
	case KindWork:
		title := a.Work.Title(lang)
		if g.rng.Float64() < g.cfg.LinkProb {
			return title, &wiki.Link{Target: title, Anchor: title}
		}
		return title, nil
	case KindDate:
		y, m, d := parseDateLit(a.Lit)
		if g.rng.Float64() < g.cfg.PerturbProb {
			d = d%28 + 1
		}
		if inject == InjectDate {
			// Deterministic shift that never lands on the original day.
			d = (d+6)%28 + 1
		}
		return g.renderDate(y, m, d, lang)
	case KindYear:
		lit := a.Lit
		if g.rng.Float64() < g.cfg.PerturbProb {
			lit = perturbInt(lit, 1)
		}
		if inject == InjectNumber {
			lit = perturbInt(lit, 1+g.rng.Intn(4))
		}
		return lit, nil
	case KindDuration:
		lit := a.Lit
		if g.rng.Float64() < g.cfg.PerturbProb {
			lit = perturbInt(lit, 5)
		}
		if inject == InjectNumber {
			lit = perturbInt(lit, 3+g.rng.Intn(12))
		}
		unit := map[wiki.Language]string{pt: " min", vn: " phút", en: " minutes"}[lang]
		if inject == InjectUnit {
			// Converted-unit rewrite: keep the written magnitude, swap
			// the unit word (the "160 hours for 160 minutes" error).
			unit = map[wiki.Language]string{pt: " horas", vn: " giờ", en: " hours"}[lang]
		}
		return lit + unit, nil
	case KindMoney:
		return renderMoney(a.Lit, lang, inject == InjectUnit), nil
	case KindNumber:
		lit := a.Lit
		if g.rng.Float64() < g.cfg.PerturbProb {
			lit = perturbInt(lit, 1)
		}
		if inject == InjectNumber {
			lit = perturbInt(lit, 1+g.rng.Intn(9))
		}
		return lit, nil
	case KindURL, KindSpan:
		return a.Lit, nil
	case KindTerm:
		if a.Ref != nil {
			g.useRef(a.Ref)
			title := a.Ref.Title(lang)
			if g.rng.Float64() < g.cfg.LinkProb {
				return title, &wiki.Link{Target: title, Anchor: title}
			}
			return title, nil
		}
		return a.Term.In(lang), nil
	}
	return "", nil
}

// renderDate renders a date per language convention, optionally linking
// its day-month stub.
func (g *generator) renderDate(y, m, d int, lang wiki.Language) (string, *wiki.Link) {
	month := monthNames[m-1]
	var text, dayMonth string
	switch lang {
	case pt:
		dayMonth = fmt.Sprintf("%d de %s", d, month.PT)
		text = fmt.Sprintf("%s de %d", dayMonth, y)
	case vn:
		dayMonth = fmt.Sprintf("%d %s", d, month.VN)
		text = fmt.Sprintf("%s năm %d", dayMonth, y)
	default:
		dayMonth = fmt.Sprintf("%s %d", month.EN, d)
		text = fmt.Sprintf("%s, %d", dayMonth, y)
	}
	if g.rng.Float64() < g.cfg.LinkDateProb {
		ref := g.pools.dayMonth(d, m)
		g.useRef(ref)
		return text, &wiki.Link{Target: ref.Title(lang), Anchor: dayMonth}
	}
	return text, nil
}

func parseDateLit(lit string) (y, m, d int) {
	fmt.Sscanf(lit, "%d-%d-%d", &y, &m, &d)
	return
}

func perturbInt(lit string, delta int) string {
	var v int
	if _, err := fmt.Sscanf(lit, "%d", &v); err != nil {
		return lit
	}
	return fmt.Sprintf("%d", v+delta)
}

// renderMoney formats a canonical dollar amount per language. With
// swapScale the written magnitude is kept but the scale word is swapped
// (milhões → bilhões and vice versa) — the converted-unit injection.
func renderMoney(lit string, lang wiki.Language, swapScale bool) string {
	var v int64
	fmt.Sscanf(lit, "%d", &v)
	billions := v >= 1_000_000_000
	n := v / 1_000_000
	if billions {
		n = v / 1_000_000_000
	}
	if swapScale {
		billions = !billions
	}
	if billions {
		switch lang {
		case pt:
			return fmt.Sprintf("US$ %d bilhões", n)
		case vn:
			return fmt.Sprintf("%d tỷ USD", n)
		default:
			return fmt.Sprintf("$%d billion", n)
		}
	}
	switch lang {
	case pt:
		return fmt.Sprintf("US$ %d milhões", n)
	case vn:
		return fmt.Sprintf("%d triệu USD", n)
	default:
		return fmt.Sprintf("$%d million", n)
	}
}

// anchorAlias derives an alternative anchor text for a reference entity:
// the curated alias when one exists ("USA"), an initialed surname for
// persons ("J. Silva"), the leading word for organizations ("Meridian").
// This is the anchor heterogeneity the paper calls out in Section 3.2
// ("anchor texts referring to the same entity may be different").
func anchorAlias(r *RefEntity, lang wiki.Language) string {
	if alias, ok := r.Aliases[lang]; ok && alias != "" {
		return alias
	}
	title := r.Title(lang)
	switch r.Kind {
	case KindPerson:
		fields := strings.Fields(title)
		if len(fields) >= 2 {
			return string([]rune(fields[0])[:1]) + ". " + fields[len(fields)-1]
		}
	case KindOrg:
		fields := strings.Fields(title)
		if len(fields) >= 2 {
			return fields[0]
		}
	}
	return ""
}

// useRef marks a reference entity as needing a stub article.
func (g *generator) useRef(r *RefEntity) {
	g.usedRefs[r.ID] = r
}

// emitStubs writes stub articles (no infobox) for every referenced
// entity in all three language editions. Head entities (places, genres,
// language names, article-backed terms) are always fully interlinked —
// they are high-traffic pages in every edition — while the long tail
// (persons, organizations, day-month pages) carries interlanguage links
// only with probability StubCrossLinkProb, modeling the incompleteness
// of Wikipedia's cross-language structure.
func (g *generator) emitStubs(corpus *wiki.Corpus) error {
	ids := make([]string, 0, len(g.usedRefs))
	for id := range g.usedRefs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	langs := []wiki.Language{en, pt, vn}
	for _, id := range ids {
		r := g.usedRefs[id]
		head := false
		switch r.Kind {
		case KindPlace, KindGenre, KindLangName, KindTerm:
			head = true
		}
		linked := make(map[[2]wiki.Language]bool)
		for i, la := range langs {
			for _, lb := range langs[i+1:] {
				linked[[2]wiki.Language{la, lb}] = head || g.rng.Float64() < g.cfg.StubCrossLinkProb
			}
		}
		has := func(la, lb wiki.Language) bool {
			if la > lb {
				la, lb = lb, la
			}
			return linked[[2]wiki.Language{la, lb}]
		}
		for _, lang := range langs {
			a := &wiki.Article{Language: lang, Title: r.Title(lang)}
			for _, other := range langs {
				if other != lang && has(lang, other) {
					a.SetCrossLink(other, r.Title(other))
				}
			}
			if err := corpus.Add(a); err != nil {
				return fmt.Errorf("stub %s in %s: %w", r.ID, lang, err)
			}
		}
	}
	return nil
}
