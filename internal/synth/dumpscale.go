// The dump-scale fixture: a deterministic single-type pt–en corpus
// whose one entity type carries hundreds of attributes over hundreds of
// cross-linked infobox pairs. Generate builds linguistically varied
// multi-type corpora for accuracy experiments; DumpScale instead
// stresses the scoring stage the way a full Wikipedia dump does — one
// big type with dense value/link vectors — so the pruned matcher's
// equivalence and speedup claims can be pinned at realistic scale
// without shipping a dump.

package synth

import (
	"fmt"

	"repro/internal/wiki"
)

// DumpScaleConfig sizes the DumpScale corpus.
type DumpScaleConfig struct {
	// Attrs is the number of gold-aligned attribute pairs; the schema is
	// campo_k on the Portuguese side and field_k on the English side,
	// with k ↔ k the gold alignment.
	Attrs int
	// Boxes is the number of cross-linked article pairs.
	Boxes int
	// PerBox is how many of the Attrs attributes each article pair
	// instantiates (the same subset on both sides, so gold pairs
	// co-occur in every dual they appear in).
	PerBox int
	// Values is the size of each attribute's value pool; larger pools
	// mean more distinct terms per value vector.
	Values int
	// Seed drives the deterministic generator stream.
	Seed uint64
}

// DefaultDumpScale is the configuration the benchmark suite and the
// dump-scale equivalence test share: ~280 attributes in one type, the
// scale at which exhaustive pair scoring dominates MatchType.
func DefaultDumpScale() DumpScaleConfig {
	return DumpScaleConfig{Attrs: 140, Boxes: 900, PerBox: 24, Values: 400, Seed: 9}
}

// dsRand is a self-contained 64-bit LCG so the fixture never depends on
// math/rand stream stability across Go releases.
type dsRand struct{ s uint64 }

func (r *dsRand) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

func (r *dsRand) intn(n int) int { return int((r.next() >> 33) % uint64(n)) }

// alpha renders v in lowercase base-26. Value atoms must stay free of
// digits: ValueTerms extracts numbers as standalone terms, so a digit
// that encodes the attribute id would leak into every instance's vector
// and swamp the actual value draw.
func alpha(v int) string {
	out := []byte{'a' + byte(v%26)}
	for v /= 26; v > 0; v /= 26 {
		out = append(out, 'a'+byte(v%26))
	}
	return string(out)
}

// dumpScaleAnchors is how many attributes carry identical values on
// both sides. Only those gold pairs clear the certain-match threshold;
// the rest stay middling, like a real dump where most alignments rest
// on partial value overlap. Keeping the certain set small keeps the
// revise stage (whose cost scales with the certain match set and is
// identical on the pruned and exhaustive paths) from drowning out the
// pair-scoring stage the fixture exists to exercise.
const dumpScaleAnchors = 10

// DumpScale builds the corpus. Both sides of a box share the same
// attribute subset; value atoms are proper-noun-like tokens shared
// across editions (no dictionary needed for them to overlap), but for
// non-anchor attributes only about half the draws agree, so gold value
// similarity lands mid-range. Link targets canonicalize to the same key
// through CanonicalLinkKey's shared-title fallback, and a common "tag"
// pool bleeds a little term overlap into non-gold pairs so pruning has
// realistic near-misses to reject.
func DumpScale(cfg DumpScaleConfig) *wiki.Corpus {
	if cfg.Attrs <= 0 || cfg.Boxes <= 0 || cfg.PerBox <= 0 {
		panic("synth: DumpScale needs positive Attrs, Boxes and PerBox")
	}
	if cfg.PerBox > cfg.Attrs {
		cfg.PerBox = cfg.Attrs
	}
	if cfg.Values <= 0 {
		cfg.Values = 400
	}
	rng := &dsRand{s: cfg.Seed*0x9e3779b97f4a7c15 + 1}
	c := wiki.NewCorpus()
	perm := make([]int, cfg.Attrs)
	for b := 0; b < cfg.Boxes; b++ {
		for i := range perm {
			perm[i] = i
		}
		// Partial Fisher–Yates: the first PerBox entries are the box's
		// attribute subset.
		for i := 0; i < cfg.PerBox; i++ {
			j := i + rng.intn(cfg.Attrs-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		ptTitle := fmt.Sprintf("Registro %d", b)
		enTitle := fmt.Sprintf("Record %d", b)
		ptBox := &wiki.Infobox{Template: "Info/Registro"}
		enBox := &wiki.Infobox{Template: "Infobox record"}
		for _, k := range perm[:cfg.PerBox] {
			vi := rng.intn(cfg.Values)
			viPt := vi
			if k >= dumpScaleAnchors && rng.intn(3) > 0 {
				viPt = rng.intn(cfg.Values)
			}
			var ptLinks, enLinks []wiki.Link
			if rng.intn(2) == 0 {
				li := rng.intn(cfg.Values/2 + 1)
				liPt := li
				if k >= dumpScaleAnchors && rng.intn(3) > 0 {
					liPt = rng.intn(cfg.Values/2 + 1)
				}
				target := fmt.Sprintf("Entity %d %d", k, li)
				targetPt := fmt.Sprintf("Entity %d %d", k, liPt)
				enLinks = []wiki.Link{{Target: target, Anchor: target}}
				ptLinks = []wiki.Link{{Target: targetPt, Anchor: targetPt}}
			}
			// Occasional draws from a shared cross-attribute "tag" pool
			// add a trickle of term overlap between unrelated attributes;
			// the pool is large and the draws rare so the noise never
			// outweighs the attribute's own value terms.
			ptVal := "val" + alpha(k) + "x" + alpha(viPt)
			enVal := "val" + alpha(k) + "x" + alpha(vi)
			if rng.intn(8) == 0 {
				ptVal += ", tag" + alpha(rng.intn(97))
			}
			if rng.intn(8) == 0 {
				enVal += ", tag" + alpha(rng.intn(97))
			}
			ptBox.Set(fmt.Sprintf("campo_%d", k), ptVal, ptLinks...)
			enBox.Set(fmt.Sprintf("field_%d", k), enVal, enLinks...)
		}
		pt := &wiki.Article{
			Language: wiki.Portuguese, Title: ptTitle,
			Type: "registro", Infobox: ptBox,
		}
		en := &wiki.Article{
			Language: wiki.English, Title: enTitle,
			Type: "record", Infobox: enBox,
		}
		pt.SetCrossLink(wiki.English, enTitle)
		en.SetCrossLink(wiki.Portuguese, ptTitle)
		c.MustAdd(pt)
		c.MustAdd(en)
	}
	return c
}
