// Package synth generates a synthetic multilingual Wikipedia: articles
// with infoboxes in English, Portuguese and Vietnamese, connected by
// cross-language links, together with the ground-truth attribute
// alignments a bilingual expert would produce.
//
// The generator substitutes for the Wikipedia dumps used in the paper's
// evaluation (see DESIGN.md §1). It reproduces the statistical properties
// the matching algorithms feed on:
//
//   - per-type attribute-set overlap across languages, matched to the
//     paper's Table 5;
//   - schema drift: each infobox carries a random subset of its type's
//     attributes;
//   - synonym splitting: one canonical attribute surfaces under several
//     names in one language (died → falecimento/morte), producing the
//     1-to-many alignments of Table 1;
//   - shared values rendered per language, with entity-valued atoms
//     hyperlinked to stub articles that carry cross-language links
//     (feeding lsim and the title-translation dictionary);
//   - value noise: dropped atoms, perturbed literals, misfiled values;
//   - rare attributes and ground-truth pairs that never co-occur in any
//     dual-language infobox (the prêmios/awards limitation of §4.1).
//
// For the consistency-audit workload the generator can additionally
// inject *ledgered* inconsistencies: with the Config knobs
// InjectNumberProb / InjectDateProb / InjectUnitProb / InjectDropProb
// set, one edition's rendering of a shared value is deliberately
// faulted — a numeric literal nudged, a date shifted, a unit or
// currency scale swapped at constant magnitude, or a value dropped
// entirely — and every fault is recorded as an Injection in the
// GroundTruth's Injected ledger (entity titles, canonical attribute,
// victim language, kind). AuditEvalConfig bundles the scoring setup:
// SmallConfig with rendering noise zeroed (so injected faults are the
// only disagreements) and all four knobs on; internal/audit's Evaluate
// scores a detector's precision/recall against the ledger.
package synth

import (
	"repro/internal/wiki"
)

// Kind is the value domain of a canonical attribute; it controls how
// value atoms are sampled and rendered per language.
type Kind int

// Value domains.
const (
	KindPerson   Kind = iota // person entity reference (same surface across languages)
	KindPlace                // place entity reference (translated titles)
	KindOrg                  // organization entity reference (same surface)
	KindGenre                // genre entity reference (translated titles)
	KindLangName             // language-name entity reference (translated)
	KindWork                 // reference to another generated entity of some type
	KindDate                 // full date literal, rendered per language conventions
	KindYear                 // bare year literal
	KindDuration             // "160 minutes" style literal
	KindMoney                // "$23 million" style literal
	KindNumber               // plain number literal
	KindURL                  // identical-across-languages URL literal
	KindTerm                 // small translated vocabulary (occupations, formats, …)
	KindSelf                 // the article's own title (the "name" attribute)
	KindSpan                 // language-neutral span literal ("1970–1995", ISBNs)
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	names := [...]string{"person", "place", "org", "genre", "langname", "work",
		"date", "year", "duration", "money", "number", "url", "term", "self", "span"}
	if int(k) < len(names) {
		return names[k]
	}
	return "unknown"
}

// Entity-reference kinds produce hyperlinks in rendered values.
func (k Kind) isRef() bool {
	switch k {
	case KindPerson, KindPlace, KindOrg, KindGenre, KindLangName, KindWork:
		return true
	}
	return false
}

// WeightedName is one surface name for an attribute in a language, with a
// selection weight. A language whose lexicon lists several names for the
// same canonical attribute exhibits intra-language synonymy.
type WeightedName struct {
	Name string
	W    float64
}

// N is shorthand for a single surface name with weight 1.
func N(name string) []WeightedName { return []WeightedName{{Name: name, W: 1}} }

// N2 builds a two-synonym surface-name list.
func N2(a string, wa float64, b string, wb float64) []WeightedName {
	return []WeightedName{{Name: a, W: wa}, {Name: b, W: wb}}
}

// AttrSpec describes one canonical (latent) attribute of an entity type.
type AttrSpec struct {
	// Canon is the language-neutral identity of the attribute; ground
	// truth aligns surface names that share it.
	Canon string
	// Kind is the attribute's value domain.
	Kind Kind
	// MinAtoms/MaxAtoms bound how many value atoms an entity gets.
	MinAtoms, MaxAtoms int
	// Names holds the surface names per language. A language absent from
	// the map does not carry the attribute at all (template-level
	// heterogeneity, e.g. "budget" missing from Portuguese film
	// templates).
	Names map[wiki.Language][]WeightedName
	// Freq is the probability that an entity's infobox includes this
	// attribute (subject to the per-type overlap model); default 1.
	Freq float64
	// Vocab restricts KindTerm attributes to a named vocabulary.
	Vocab string
	// Literal is the literal-but-wrong English rendering a machine
	// translation system produces for this attribute's non-English names
	// (e.g. "diễn viên" → "actor" instead of the template attribute
	// "starring"). Used by the COMA "+G" baseline configurations.
	Literal string
	// NoCooccur marks attributes that, like prêmios/awards in the paper,
	// never appear on both sides of the same dual-language infobox. Their
	// ground-truth matches are invisible to all co-occurrence methods.
	NoCooccur bool
}

// freq returns the effective presence probability.
func (s *AttrSpec) freq() float64 {
	if s.Freq == 0 {
		return 1
	}
	return s.Freq
}

// TypeSpec describes one entity type: template names per language,
// canonical attributes, title style, and the target cross-language
// attribute overlap per language pair (Table 5).
type TypeSpec struct {
	// Canon is the language-neutral type id ("film", "comics character", …).
	Canon string
	// Template maps a language to the infobox template name used there.
	// Absence means the language edition has no infoboxes of this type.
	Template map[wiki.Language]string
	// Attrs lists the canonical attributes.
	Attrs []AttrSpec
	// PersonTitled types use person names as article titles (identical
	// across languages); otherwise titles are composed from the translated
	// word banks.
	PersonTitled bool
	// Overlap is the target expected attribute overlap for each language
	// pair, keyed by LanguagePair.String() ("pt-en", "vi-en").
	Overlap map[string]float64
}

// HasLanguage reports whether the type exists in a language edition.
func (t *TypeSpec) HasLanguage(l wiki.Language) bool {
	_, ok := t.Template[l]
	return ok
}

// TypeName returns the entity type string an article of this type carries
// in a language (derived from the template name, as wiki.ParsePage does).
func (t *TypeSpec) TypeName(l wiki.Language) string {
	return wiki.TemplateType(t.Template[l])
}

// attr returns the spec for a canonical attribute, or nil.
func (t *TypeSpec) attr(canon string) *AttrSpec {
	for i := range t.Attrs {
		if t.Attrs[i].Canon == canon {
			return &t.Attrs[i]
		}
	}
	return nil
}

// CategoryTypes returns the category → entity-type mapping matching the
// categories the generator emits, for use with
// wiki.Corpus.AssignTypesFromCategories.
func CategoryTypes() wiki.CategoryTypeMap {
	m := wiki.CategoryTypeMap{}
	for _, spec := range TypeSpecs() {
		for lang := range spec.Template {
			if m[lang] == nil {
				m[lang] = map[string]string{}
			}
			typeName := wiki.TemplateType(spec.Template[lang])
			m[lang][typeName] = typeName
		}
	}
	return m
}
