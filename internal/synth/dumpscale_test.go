package synth

import (
	"reflect"
	"testing"

	"repro/internal/wiki"
)

func TestDumpScaleDeterministic(t *testing.T) {
	cfg := DumpScaleConfig{Attrs: 30, Boxes: 60, PerBox: 8, Values: 50, Seed: 7}
	a := DumpScale(cfg)
	b := DumpScale(cfg)
	if got := a.TypePairCount(wiki.PtEn)[[2]string{"registro", "record"}]; got != cfg.Boxes {
		t.Fatalf("type pair count = %d, want %d", got, cfg.Boxes)
	}
	for _, title := range []string{"Registro 0", "Registro 59"} {
		aa, ok1 := a.Get(wiki.Portuguese, title)
		bb, ok2 := b.Get(wiki.Portuguese, title)
		if !ok1 || !ok2 {
			t.Fatalf("article %q missing (%v, %v)", title, ok1, ok2)
		}
		if !reflect.DeepEqual(aa.Infobox, bb.Infobox) {
			t.Fatalf("article %q differs between identically seeded runs", title)
		}
		if len(aa.Infobox.Attrs) != 8 {
			t.Fatalf("article %q has %d attrs, want 8", title, len(aa.Infobox.Attrs))
		}
	}
	// A different seed must actually change the corpus.
	cfg.Seed = 8
	cc := DumpScale(cfg)
	ca, _ := cc.Get(wiki.Portuguese, "Registro 0")
	aa, _ := a.Get(wiki.Portuguese, "Registro 0")
	if reflect.DeepEqual(aa.Infobox, ca.Infobox) {
		t.Fatal("seed change left Registro 0 identical")
	}
}

func TestDumpScaleCrossLinked(t *testing.T) {
	c := DumpScale(DumpScaleConfig{Attrs: 10, Boxes: 12, PerBox: 4, Values: 20, Seed: 3})
	pairs := c.Pairs(wiki.PtEn)
	if len(pairs) != 12 {
		t.Fatalf("cross-linked pairs = %d, want 12", len(pairs))
	}
	for _, p := range pairs {
		if p.A.Type != "registro" || p.B.Type != "record" {
			t.Fatalf("unexpected pair types %q/%q", p.A.Type, p.B.Type)
		}
		if len(p.A.Infobox.Attrs) != len(p.B.Infobox.Attrs) {
			t.Fatal("sides of a box disagree on attribute count")
		}
	}
}
