package synth

import (
	"bytes"
	"testing"

	"repro/internal/dump"
	"repro/internal/text"
	"repro/internal/wiki"
)

// smallCorpus is generated once and shared by read-only tests.
var (
	smallCorpus *wiki.Corpus
	smallTruth  *GroundTruth
)

func genSmall(t *testing.T) (*wiki.Corpus, *GroundTruth) {
	t.Helper()
	if smallCorpus == nil {
		c, g, err := Generate(SmallConfig())
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		smallCorpus, smallTruth = c, g
	}
	return smallCorpus, smallTruth
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	c1, _, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate 1: %v", err)
	}
	c2, _, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate 2: %v", err)
	}
	if c1.Len() != c2.Len() {
		t.Fatalf("sizes differ: %d vs %d", c1.Len(), c2.Len())
	}
	for _, lang := range c1.Languages() {
		a1, a2 := c1.Articles(lang), c2.Articles(lang)
		if len(a1) != len(a2) {
			t.Fatalf("%s: %d vs %d articles", lang, len(a1), len(a2))
		}
		for i := range a1 {
			if a1[i].Title != a2[i].Title {
				t.Fatalf("%s article %d: %q vs %q", lang, i, a1[i].Title, a2[i].Title)
			}
			r1, r2 := wiki.RenderPage(a1[i]), wiki.RenderPage(a2[i])
			if r1 != r2 {
				t.Fatalf("%s article %q differs between runs", lang, a1[i].Title)
			}
		}
	}
}

func TestGeneratePairCounts(t *testing.T) {
	cfg := SmallConfig()
	c, truth := genSmall(t)
	for canon, want := range cfg.PtEnPairs {
		typeName := "" // localized pt type name
		for local, cn := range truth.TypeNameToCanon[wiki.Portuguese] {
			if cn == canon {
				typeName = local
			}
		}
		if typeName == "" {
			t.Errorf("no pt type name for %s", canon)
			continue
		}
		got := 0
		for _, p := range c.Pairs(wiki.PtEn) {
			if p.A.Type == typeName {
				got++
			}
		}
		if got != want {
			t.Errorf("%s pt-en pairs = %d, want %d", canon, got, want)
		}
	}
	// Vietnamese has exactly the four paper types.
	if got := len(c.Types(wiki.Vietnamese)); got != 4 {
		t.Errorf("vn types = %d (%v), want 4", got, c.Types(wiki.Vietnamese))
	}
	if got := len(c.Types(wiki.Portuguese)); got != 14 {
		t.Errorf("pt types = %d, want 14", got)
	}
}

func TestGenerateCorpusValidity(t *testing.T) {
	c, _ := genSmall(t)
	for _, lang := range c.Languages() {
		for _, a := range c.Articles(lang) {
			if err := a.Validate(); err != nil {
				t.Fatalf("invalid article: %v", err)
			}
		}
	}
	// Cross-links of paired articles resolve to real articles.
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		pairs := c.Pairs(pair)
		if len(pairs) == 0 {
			t.Fatalf("no pairs for %s", pair)
		}
		for _, p := range pairs {
			if !c.CrossLinked(p.A, p.B) {
				t.Fatalf("pair %s / %s not cross-linked", p.A.Key(), p.B.Key())
			}
		}
	}
}

// measureOverlap computes the ground-truth-based attribute overlap of
// Appendix A / Table 5 directly on the corpus.
func measureOverlap(c *wiki.Corpus, truth *GroundTruth, pair wiki.LanguagePair, canonType string) float64 {
	var sum float64
	n := 0
	tt := truth.Types[canonType]
	for _, p := range c.Pairs(pair) {
		if cn, _ := truth.CanonType(pair.A, p.A.Type); cn != canonType {
			continue
		}
		inter := 0
		for _, a := range p.A.Infobox.Schema() {
			for _, b := range p.B.Infobox.Schema() {
				if tt.Correct(pair.A, a, pair.B, b) {
					inter++
					break
				}
			}
		}
		union := p.A.Infobox.Len() + p.B.Infobox.Len() - inter
		if union > 0 {
			sum += float64(inter) / float64(union)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestOverlapMatchesTable5Targets(t *testing.T) {
	c, truth := genSmall(t)
	checks := []struct {
		pair   wiki.LanguagePair
		canon  string
		target float64
		tol    float64
	}{
		{wiki.PtEn, "film", 0.36, 0.15},
		{wiki.PtEn, "channel", 0.15, 0.15},
		{wiki.PtEn, "writer", 0.63, 0.15},
		{wiki.VnEn, "film", 0.87, 0.15},
		// Only ~10 vn-en actor pairs exist at SmallConfig scale, so the
		// estimate is wide.
		{wiki.VnEn, "actor", 0.46, 0.25},
	}
	for _, ck := range checks {
		got := measureOverlap(c, truth, ck.pair, ck.canon)
		if got < ck.target-ck.tol || got > ck.target+ck.tol {
			t.Errorf("%s %s overlap = %.2f, target %.2f (±%.2f)", ck.pair, ck.canon, got, ck.target, ck.tol)
		}
	}
	// The headline heterogeneity contrast must hold: Vn-En film is far
	// more homogeneous than Pt-En film.
	vn := measureOverlap(c, truth, wiki.VnEn, "film")
	pt := measureOverlap(c, truth, wiki.PtEn, "film")
	if vn <= pt+0.2 {
		t.Errorf("vn-en film overlap (%.2f) should exceed pt-en (%.2f) by a wide margin", vn, pt)
	}
}

func TestGroundTruthPolysemy(t *testing.T) {
	_, truth := genSmall(t)
	actor := truth.Types["actor"]
	// English "born" realizes both birth date and birth place.
	canons := actor.Canons(wiki.English, "born")
	if len(canons) != 2 {
		t.Fatalf("born canons = %v", canons)
	}
	if !actor.Correct(wiki.English, "born", wiki.Portuguese, "nascimento") {
		t.Error("born ~ nascimento should be correct")
	}
	if !actor.Correct(wiki.English, "born", wiki.Vietnamese, "nơi sinh") {
		t.Error("born ~ nơi sinh should be correct (birth place)")
	}
	if actor.Correct(wiki.English, "died", wiki.Portuguese, "nascimento") {
		t.Error("died ~ nascimento should be incorrect")
	}
	// One-to-many: died matches both falecimento and morte.
	if !actor.Correct(wiki.English, "died", wiki.Portuguese, "falecimento") ||
		!actor.Correct(wiki.English, "died", wiki.Portuguese, "morte") {
		t.Error("died should match falecimento and morte")
	}
	// Intra-language synonyms are correct pairs too.
	if !actor.Correct(wiki.Portuguese, "falecimento", wiki.Portuguese, "morte") {
		t.Error("falecimento ~ morte (intra-language) should be correct")
	}
	// Vietnamese kịch bản realizes written by and story by on film.
	film := truth.Types["film"]
	if got := film.Canons(wiki.Vietnamese, "kịch bản"); len(got) != 2 {
		t.Errorf("kịch bản canons = %v", got)
	}
}

func TestGroundTruthCrossPairs(t *testing.T) {
	_, truth := genSmall(t)
	film := truth.Types["film"]
	pairs := film.CrossPairs(wiki.PtEn)
	if len(pairs) < 15 {
		t.Fatalf("film pt-en cross pairs = %d, want a rich set", len(pairs))
	}
	found := false
	for _, p := range pairs {
		if p[0] == text.Normalize("direção") && p[1] == "directed by" {
			found = true
		}
	}
	if !found {
		t.Error("direção ~ directed by missing from cross pairs")
	}
}

func TestSeededQueryTargetsExist(t *testing.T) {
	c, truth := genSmall(t)
	// Francis Ford Coppola directs at least one Portuguese film.
	foundCoppola := false
	for _, a := range c.Articles(wiki.Portuguese) {
		if a.Infobox == nil {
			continue
		}
		if av, ok := a.Infobox.Get("direção"); ok && av.Text == "Francis Ford Coppola" {
			foundCoppola = true
			break
		}
	}
	if !foundCoppola {
		t.Error("no Portuguese film directed by Francis Ford Coppola")
	}
	// Politician actors exist in ground truth entities.
	politicians := 0
	for _, e := range truth.Entities["actor"] {
		for _, atom := range e.Values["occupation"] {
			if atom.Kind == KindTerm && atom.Ref != nil && atom.Ref.Titles[wiki.English] == "politician" {
				politicians++
			}
		}
	}
	if politicians == 0 {
		t.Error("no politician actors seeded")
	}
	// Jazz artists from France exist.
	jazzFrance := 0
	for _, e := range truth.Entities["artist"] {
		hasJazz, hasFrance := false, false
		for _, atom := range e.Values["genre"] {
			if atom.Ref != nil && atom.Ref.Titles[wiki.English] == "Jazz" {
				hasJazz = true
			}
		}
		for _, atom := range e.Values["origin"] {
			if atom.Ref != nil && atom.Ref.Titles[wiki.English] == "France" {
				hasFrance = true
			}
		}
		if hasJazz && hasFrance {
			jazzFrance++
		}
	}
	if jazzFrance == 0 {
		t.Error("no French Jazz artists seeded")
	}
}

func TestStubArticlesAndDictionaryMaterial(t *testing.T) {
	c, _ := genSmall(t)
	// Place stubs exist in all three languages; cross-links cover roughly
	// StubCrossLinkProb of them.
	if _, ok := c.Get(wiki.English, "United States"); !ok {
		t.Fatal("United States stub missing")
	}
	if _, ok := c.Get(wiki.Portuguese, "Estados Unidos"); !ok {
		t.Error("Estados Unidos stub missing")
	}
	stubs, linked := 0, 0
	for _, a := range c.Articles(wiki.English) {
		if a.Infobox != nil {
			continue
		}
		stubs++
		if _, ok := a.CrossLink(wiki.Portuguese); ok {
			linked++
		}
	}
	if stubs == 0 {
		t.Fatal("no stub articles")
	}
	frac := float64(linked) / float64(stubs)
	if frac < 0.6 || frac > 0.95 {
		t.Errorf("stub cross-link coverage = %.2f, want ≈0.8", frac)
	}
	// Day-month stubs appear when dates are linked.
	dayMonthSeen := false
	for _, a := range c.Articles(wiki.Portuguese) {
		if a.Infobox == nil && a.Title != "" {
			if _, ok := a.CrossLink(wiki.English); ok && len(a.Title) > 3 && a.Title[1] == ' ' || len(a.Title) > 4 && a.Title[2] == ' ' {
				// crude check: "18 de dezembro" style
				if len(a.Title) > 6 && a.Title[2:5] == " de" {
					dayMonthSeen = true
					break
				}
			}
		}
	}
	if !dayMonthSeen {
		t.Error("no day-month stub articles found")
	}
}

func TestNoCooccurAttributeNeverPairs(t *testing.T) {
	c, truth := genSmall(t)
	for _, p := range c.Pairs(wiki.PtEn) {
		if cn, _ := truth.CanonType(wiki.Portuguese, p.A.Type); cn != "film" {
			continue
		}
		if p.A.Infobox.Has("prêmios") && p.B.Infobox.Has("awards") {
			t.Fatalf("awards/prêmios co-occur in dual infobox %s / %s", p.A.Title, p.B.Title)
		}
	}
}

func TestEnglishCoverageExceedsOtherLanguages(t *testing.T) {
	c, _ := genSmall(t)
	enBoxes, ptBoxes, vnBoxes := 0, 0, 0
	count := func(lang wiki.Language) int {
		n := 0
		for _, a := range c.Articles(lang) {
			if a.Infobox != nil {
				n++
			}
		}
		return n
	}
	enBoxes, ptBoxes, vnBoxes = count(wiki.English), count(wiki.Portuguese), count(wiki.Vietnamese)
	if enBoxes <= ptBoxes+vnBoxes {
		t.Errorf("en coverage (%d) should exceed pt (%d) + vn (%d)", enBoxes, ptBoxes, vnBoxes)
	}
}

func TestGeneratedCorpusSurvivesDumpRoundTrip(t *testing.T) {
	c, _ := genSmall(t)
	reloaded := wiki.NewCorpus()
	for _, lang := range c.Languages() {
		var buf bytes.Buffer
		if err := dump.WriteCorpus(&buf, c, lang); err != nil {
			t.Fatalf("WriteCorpus(%s): %v", lang, err)
		}
		res, err := dump.LoadCorpus(reloaded, &buf, lang)
		if err != nil {
			t.Fatalf("LoadCorpus(%s): %v", lang, err)
		}
		if len(res.Errors) > 0 {
			t.Fatalf("LoadCorpus(%s): %d page errors, first: %v", lang, len(res.Errors), res.Errors[0])
		}
	}
	if reloaded.Len() != c.Len() {
		t.Fatalf("reloaded %d articles, want %d", reloaded.Len(), c.Len())
	}
	if got, want := len(reloaded.Pairs(wiki.PtEn)), len(c.Pairs(wiki.PtEn)); got != want {
		t.Errorf("reloaded pt-en pairs = %d, want %d", got, want)
	}
	// Attribute schemas survive byte-level round-trip.
	for _, orig := range c.Articles(wiki.Portuguese) {
		if orig.Infobox == nil {
			continue
		}
		got, ok := reloaded.Get(wiki.Portuguese, orig.Title)
		if !ok || got.Infobox == nil {
			t.Fatalf("article %q lost in round-trip", orig.Title)
		}
		if got.Infobox.Len() != orig.Infobox.Len() {
			t.Fatalf("article %q: %d attrs after round-trip, want %d",
				orig.Title, got.Infobox.Len(), orig.Infobox.Len())
		}
	}
}

func TestSynonymSplittingProducesBothSurfaces(t *testing.T) {
	c, _ := genSmall(t)
	seen := map[string]bool{}
	for _, a := range c.Articles(wiki.Portuguese) {
		if a.Type != "ator" || a.Infobox == nil {
			continue
		}
		for _, name := range a.Infobox.Schema() {
			seen[name] = true
		}
	}
	for _, want := range []string{"falecimento", "morte", "nascimento", "data de nascimento"} {
		if !seen[want] {
			t.Errorf("surface name %q never generated for ator", want)
		}
	}
}
