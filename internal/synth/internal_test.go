package synth

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/wiki"
)

func TestSolveOverlapBasic(t *testing.T) {
	spec := &TypeSpec{
		Canon:   "t",
		Overlap: map[string]float64{"pt-en": 0.5},
		Attrs: []AttrSpec{
			{Canon: "a", Freq: 1, Names: names{en: N("a"), pt: N("a-pt")}},
			{Canon: "b", Freq: 1, Names: names{en: N("b"), pt: N("b-pt")}},
		},
	}
	o, m := solveOverlap(spec, wiki.PtEn)
	// No single-language attributes: o equals the target exactly.
	if o != 0.5 || m != 1 {
		t.Errorf("o = %v, m = %v; want 0.5, 1", o, m)
	}
}

func TestSolveOverlapAccountsForSingles(t *testing.T) {
	spec := &TypeSpec{
		Canon:   "t",
		Overlap: map[string]float64{"pt-en": 0.4},
		Attrs: []AttrSpec{
			{Canon: "a", Freq: 1, Names: names{en: N("a"), pt: N("a-pt")}},
			{Canon: "en-only", Freq: 1, Names: names{en: N("x")}},
		},
	}
	o, m := solveOverlap(spec, wiki.PtEn)
	// s = 1, u = 1 → o = 0.4·2 = 0.8.
	if o != 0.8 || m != 1 {
		t.Errorf("o = %v, m = %v; want 0.8, 1", o, m)
	}
}

func TestSolveOverlapSuppressesSinglesWhenCapped(t *testing.T) {
	spec := &TypeSpec{
		Canon:   "t",
		Overlap: map[string]float64{"pt-en": 0.9},
		Attrs: []AttrSpec{
			{Canon: "a", Freq: 1, Names: names{en: N("a"), pt: N("a-pt")}},
			{Canon: "en-only", Freq: 1, Names: names{en: N("x")}},
		},
	}
	o, m := solveOverlap(spec, wiki.PtEn)
	if o != 0.97 {
		t.Errorf("o = %v, want cap 0.97", o)
	}
	if m >= 1 || m <= 0 {
		t.Errorf("m = %v, want suppression in (0, 1)", m)
	}
	// Sanity: o·s/(s+m·u) ≈ target.
	got := 0.97 / (1 + m)
	if got < 0.88 || got > 0.92 {
		t.Errorf("implied overlap = %v, want ≈0.9", got)
	}
}

func TestRenderMoney(t *testing.T) {
	cases := []struct {
		lit  string
		lang wiki.Language
		want string
	}{
		{"23000000", wiki.English, "$23 million"},
		{"23000000", wiki.Portuguese, "US$ 23 milhões"},
		{"23000000", wiki.Vietnamese, "23 triệu USD"},
		{"12000000000", wiki.English, "$12 billion"},
		{"12000000000", wiki.Portuguese, "US$ 12 bilhões"},
		{"12000000000", wiki.Vietnamese, "12 tỷ USD"},
	}
	for _, c := range cases {
		if got := renderMoney(c.lit, c.lang, false); got != c.want {
			t.Errorf("renderMoney(%s, %s) = %q, want %q", c.lit, c.lang, got, c.want)
		}
	}
	// The converted-unit injection keeps the magnitude, swaps the scale.
	if got := renderMoney("23000000", wiki.Portuguese, true); got != "US$ 23 bilhões" {
		t.Errorf("renderMoney swapped = %q, want %q", got, "US$ 23 bilhões")
	}
	if got := renderMoney("12000000000", wiki.English, true); got != "$12 million" {
		t.Errorf("renderMoney swapped = %q, want %q", got, "$12 million")
	}
}

func TestParseDateLit(t *testing.T) {
	y, m, d := parseDateLit("1950-12-18")
	if y != 1950 || m != 12 || d != 18 {
		t.Errorf("parseDateLit = %d-%d-%d", y, m, d)
	}
}

func TestWithOrdinal(t *testing.T) {
	if got := withOrdinal("X", 1); got != "X" {
		t.Errorf("ord 1 = %q", got)
	}
	if got := withOrdinal("X", 3); got != "X (3)" {
		t.Errorf("ord 3 = %q", got)
	}
}

func TestAnchorAlias(t *testing.T) {
	person := samePerson("p", "James Silva")
	if got := anchorAlias(person, wiki.English); got != "J. Silva" {
		t.Errorf("person alias = %q", got)
	}
	org := sameOrg("o", "Meridian Pictures")
	if got := anchorAlias(org, wiki.Portuguese); got != "Meridian" {
		t.Errorf("org alias = %q", got)
	}
	us := refFromSpec("us", KindPlace, places[0])
	if got := anchorAlias(us, wiki.English); got != "USA" {
		t.Errorf("curated alias = %q", got)
	}
	plainPlace := refFromSpec("br", KindPlace, places[2])
	if got := anchorAlias(plainPlace, wiki.English); got != "" {
		t.Errorf("place without alias = %q", got)
	}
}

func TestDayMonthRefTitles(t *testing.T) {
	r := dayMonthRef(18, 12)
	if r.Titles[wiki.English] != "December 18" {
		t.Errorf("en = %q", r.Titles[wiki.English])
	}
	if r.Titles[wiki.Portuguese] != "18 de dezembro" {
		t.Errorf("pt = %q", r.Titles[wiki.Portuguese])
	}
	if r.Titles[wiki.Vietnamese] != "18 tháng 12" {
		t.Errorf("vn = %q", r.Titles[wiki.Vietnamese])
	}
}

func TestPickNameWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ns := N2("heavy", 0.9, "light", 0.1)
	heavy := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if pickName(rng, ns) == "heavy" {
			heavy++
		}
	}
	frac := float64(heavy) / n
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("heavy fraction = %v, want ≈0.9", frac)
	}
	if got := pickName(rng, N("only")); got != "only" {
		t.Errorf("single name = %q", got)
	}
}

func TestSlug(t *testing.T) {
	if got := slug("The Crimson River (2)"); got != "thecrimsonriver2" {
		t.Errorf("slug = %q", got)
	}
	if got := slug("!!!"); got != "entity" {
		t.Errorf("empty slug fallback = %q", got)
	}
}

func TestTypeSpecsConsistency(t *testing.T) {
	specs := TypeSpecs()
	if len(specs) != 14 {
		t.Fatalf("specs = %d", len(specs))
	}
	seen := map[string]bool{}
	for i := range specs {
		spec := &specs[i]
		if seen[spec.Canon] {
			t.Errorf("duplicate type %s", spec.Canon)
		}
		seen[spec.Canon] = true
		if !spec.HasLanguage(en) {
			t.Errorf("type %s missing English template", spec.Canon)
		}
		if !spec.HasLanguage(pt) {
			t.Errorf("type %s missing Portuguese template", spec.Canon)
		}
		if spec.Overlap["pt-en"] == 0 {
			t.Errorf("type %s missing pt-en overlap target", spec.Canon)
		}
		for j := range spec.Attrs {
			attr := &spec.Attrs[j]
			if attr.MinAtoms < 1 || attr.MaxAtoms < attr.MinAtoms {
				t.Errorf("%s.%s: bad atom bounds %d..%d", spec.Canon, attr.Canon, attr.MinAtoms, attr.MaxAtoms)
			}
			if attr.Kind == KindTerm && attr.Vocab == "" {
				t.Errorf("%s.%s: term attribute without vocabulary", spec.Canon, attr.Canon)
			}
			if attr.Kind == KindTerm && len(vocabs[attr.Vocab]) == 0 {
				t.Errorf("%s.%s: unknown vocabulary %q", spec.Canon, attr.Canon, attr.Vocab)
			}
			if len(attr.Names[en]) == 0 && len(attr.Names[pt]) == 0 && len(attr.Names[vn]) == 0 {
				t.Errorf("%s.%s: no surface names", spec.Canon, attr.Canon)
			}
			for lang, names := range attr.Names {
				for _, n := range names {
					if strings.TrimSpace(n.Name) == "" {
						t.Errorf("%s.%s: empty %s name", spec.Canon, attr.Canon, lang)
					}
					if n.W <= 0 {
						t.Errorf("%s.%s: non-positive weight for %q", spec.Canon, attr.Canon, n.Name)
					}
				}
			}
		}
	}
	// The four Vn-En types are exactly the paper's.
	vnTypes := map[string]bool{}
	for i := range specs {
		if specs[i].HasLanguage(vn) {
			vnTypes[specs[i].Canon] = true
		}
	}
	for _, want := range []string{"film", "show", "actor", "artist"} {
		if !vnTypes[want] {
			t.Errorf("type %s missing Vietnamese edition", want)
		}
	}
	if len(vnTypes) != 4 {
		t.Errorf("vn types = %v, want exactly 4", vnTypes)
	}
}

func TestVocabTranslationsNonEmpty(t *testing.T) {
	for name, entries := range vocabs {
		if len(entries) == 0 {
			t.Errorf("vocabulary %s is empty", name)
		}
		for _, e := range entries {
			if e.EN == "" && e.PT == "" && e.VN == "" {
				t.Errorf("vocabulary %s has an all-empty entry", name)
			}
		}
	}
}

func TestEntityVocabsResolvable(t *testing.T) {
	for v := range entityVocabs {
		if len(vocabs[v]) == 0 {
			t.Errorf("entity vocabulary %q has no entries", v)
		}
		for _, e := range vocabs[v] {
			if e.EN == "" {
				t.Errorf("entity vocabulary %q entry lacks an English title (needed for stub articles)", v)
			}
		}
	}
}
