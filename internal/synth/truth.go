package synth

import (
	"sort"

	"repro/internal/text"
	"repro/internal/wiki"
)

// GroundTruth is everything the generator knows that an evaluator needs:
// which surface attribute names realize which canonical attributes (the
// bilingual expert's alignment labels), how localized entity-type names
// map to canonical types, and the full entity records behind the corpus
// (used by the case study's relevance oracle).
type GroundTruth struct {
	// Types maps a canonical type id to its attribute-name truth.
	Types map[string]*TypeTruth
	// TypeNameToCanon maps, per language, the localized type string an
	// article carries (derived from its template) to the canonical type.
	TypeNameToCanon map[wiki.Language]map[string]string
	// Entities holds the generated entities per canonical type.
	Entities map[string][]*Entity
	// Injected is the ledger of deliberately injected cross-edition
	// inconsistencies (empty unless the Config's injection knobs are
	// set): the gold a consistency detector's precision/recall is scored
	// against.
	Injected []Injection
}

// Injection kinds, in the order planInjections tries them.
const (
	// InjectNumber perturbed a numeric literal in the victim edition.
	InjectNumber = "number"
	// InjectDate shifted the day of a date in the victim edition.
	InjectDate = "date"
	// InjectUnit swapped the unit/scale word keeping the magnitude.
	InjectUnit = "unit"
	// InjectDrop removed the attribute from the victim edition.
	InjectDrop = "drop"
)

// Injection is one ledger entry: which canonical attribute of which
// entity was corrupted, how, and in which edition.
type Injection struct {
	// Kind is one of the Inject* constants.
	Kind string
	// Entity is the generated entity's id.
	Entity string
	// Type is the canonical entity type.
	Type string
	// Canon is the canonical attribute the injection corrupted.
	Canon string
	// Lang is the victim edition that renders the wrong value.
	Lang wiki.Language
	// Titles are the entity's article titles in the editions that carry
	// the attribute, for matching detector findings back to the ledger.
	Titles map[wiki.Language]string
}

// TypeTruth records, for one entity type, which canonical attribute(s)
// each surface name realizes in each language. A surface name may realize
// several canonicals (polysemy: English "born" is both birth date and
// birth place; Vietnamese "kịch bản" is both written by and story by).
type TypeTruth struct {
	Canon    string
	CanonsOf map[wiki.Language]map[string][]string
}

// newTypeTruth builds the truth for a type from its spec.
func newTypeTruth(spec *TypeSpec) *TypeTruth {
	t := &TypeTruth{Canon: spec.Canon, CanonsOf: make(map[wiki.Language]map[string][]string)}
	for _, attr := range spec.Attrs {
		for lang, ns := range attr.Names {
			m := t.CanonsOf[lang]
			if m == nil {
				m = make(map[string][]string)
				t.CanonsOf[lang] = m
			}
			for _, n := range ns {
				key := text.Normalize(n.Name)
				if !containsStr(m[key], attr.Canon) {
					m[key] = append(m[key], attr.Canon)
				}
			}
		}
	}
	return t
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Canons returns the canonical attributes realized by a surface name in a
// language (nil if the name is unknown).
func (t *TypeTruth) Canons(lang wiki.Language, name string) []string {
	return t.CanonsOf[lang][text.Normalize(name)]
}

// Correct reports whether surface names a (in langA) and b (in langB)
// have the same meaning — i.e. their canonical attribute sets intersect.
// This is the correct(·,·) predicate of the paper's evaluation metrics,
// and it applies to intra-language pairs as well.
func (t *TypeTruth) Correct(langA wiki.Language, a string, langB wiki.Language, b string) bool {
	ca, cb := t.Canons(langA, a), t.Canons(langB, b)
	for _, x := range ca {
		for _, y := range cb {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Names returns the known surface names for a language, sorted.
func (t *TypeTruth) Names(lang wiki.Language) []string {
	m := t.CanonsOf[lang]
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CrossPairs enumerates every correct cross-language surface-name pair
// (a in pair.A, b in pair.B), sorted for determinism.
func (t *TypeTruth) CrossPairs(pair wiki.LanguagePair) [][2]string {
	var out [][2]string
	for _, a := range t.Names(pair.A) {
		for _, b := range t.Names(pair.B) {
			if t.Correct(pair.A, a, pair.B, b) {
				out = append(out, [2]string{a, b})
			}
		}
	}
	return out
}

// CanonType resolves a localized type string to its canonical type id.
func (g *GroundTruth) CanonType(lang wiki.Language, localized string) (string, bool) {
	c, ok := g.TypeNameToCanon[lang][localized]
	return c, ok
}

// TruthFor returns the attribute truth for a canonical type.
func (g *GroundTruth) TruthFor(canonType string) (*TypeTruth, bool) {
	t, ok := g.Types[canonType]
	return t, ok
}

// CanonTypes lists the canonical types, sorted.
func (g *GroundTruth) CanonTypes() []string {
	out := make([]string, 0, len(g.Types))
	for t := range g.Types {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// EntityByTitle finds the generated entity behind an article title, for
// the case study's relevance oracle.
func (g *GroundTruth) EntityByTitle(lang wiki.Language, title string) (*Entity, bool) {
	for _, ents := range g.Entities {
		for _, e := range ents {
			if e.Langs[lang] && e.Titles[lang] == title {
				return e, true
			}
		}
	}
	return nil, false
}
