package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/wiki"
)

// RefEntity is a referenceable stub entity (person, place, organization,
// genre, language name, day-month): it has translated titles, optional
// anchor aliases, and becomes a stub article with cross-language links in
// every language edition.
type RefEntity struct {
	ID      string
	Kind    Kind
	Titles  map[wiki.Language]string
	Aliases map[wiki.Language]string
}

// Title returns the entity's title in a language (English fallback).
func (r *RefEntity) Title(l wiki.Language) string {
	if t, ok := r.Titles[l]; ok && t != "" {
		return t
	}
	return r.Titles[wiki.English]
}

// Atom is one canonical value component of an attribute. Exactly one of
// Ref, Work, Term or Lit is meaningful, according to Kind.
type Atom struct {
	Kind Kind
	Ref  *RefEntity // ref kinds (person, place, org, genre, langname, date link)
	Work *Entity    // KindWork: reference to another generated entity
	Term Tri        // KindTerm: translated vocabulary entry
	Lit  string     // literal kinds: canonical form ("1950-12-18", "160", …)
}

// Entity is one generated subject: an article per language edition it
// exists in, with canonical attribute values shared across languages.
type Entity struct {
	ID     string
	Type   string // canonical type id
	Titles map[wiki.Language]string
	Langs  map[wiki.Language]bool
	Values map[string][]Atom // canonical attribute → atoms

	// force marks attributes planted by the query-target seeder; presence
	// sampling always keeps them so the case-study queries have answers.
	force map[string]bool
}

// Title returns the entity's article title in a language.
func (e *Entity) Title(l wiki.Language) string {
	if t, ok := e.Titles[l]; ok {
		return t
	}
	return e.Titles[wiki.English]
}

// refFromSpec instantiates a RefEntity from lexicon data.
func refFromSpec(id string, kind Kind, spec RefSpec) *RefEntity {
	r := &RefEntity{
		ID:   id,
		Kind: kind,
		Titles: map[wiki.Language]string{
			en: spec.Titles.EN, pt: spec.Titles.PT, vn: spec.Titles.VN,
		},
		Aliases: map[wiki.Language]string{},
	}
	for l, t := range r.Titles {
		if t == "" {
			r.Titles[l] = spec.Titles.EN
		}
		_ = l
	}
	if spec.Aliases.EN != "" {
		r.Aliases[en] = spec.Aliases.EN
	}
	if spec.Aliases.PT != "" {
		r.Aliases[pt] = spec.Aliases.PT
	}
	if spec.Aliases.VN != "" {
		r.Aliases[vn] = spec.Aliases.VN
	}
	return r
}

// samePerson makes a person RefEntity whose name is identical in every
// language (proper names are not translated).
func samePerson(id, name string) *RefEntity {
	return &RefEntity{
		ID:   id,
		Kind: KindPerson,
		Titles: map[wiki.Language]string{
			en: name, pt: name, vn: name,
		},
	}
}

// sameOrg makes an organization RefEntity, identical across languages.
func sameOrg(id, name string) *RefEntity {
	return &RefEntity{
		ID:   id,
		Kind: KindOrg,
		Titles: map[wiki.Language]string{
			en: name, pt: name, vn: name,
		},
	}
}

// dayMonthRef builds the day-month stub entity for a date ("December 18" /
// "18 de dezembro" / "18 tháng 12").
func dayMonthRef(day, month int) *RefEntity {
	m := monthNames[month-1]
	return &RefEntity{
		ID:   fmt.Sprintf("daymonth-%02d-%02d", month, day),
		Kind: KindDate,
		Titles: map[wiki.Language]string{
			en: fmt.Sprintf("%s %d", m.EN, day),
			pt: fmt.Sprintf("%d de %s", day, m.PT),
			vn: fmt.Sprintf("%d %s", day, m.VN),
		},
	}
}

// pools holds every referenceable entity bank for one generation run.
type pools struct {
	persons   []*RefEntity
	placesP   []*RefEntity
	orgs      []*RefEntity
	genresP   []*RefEntity
	langsP    []*RefEntity
	terms     map[string][]*RefEntity // entity-backed vocabularies
	special   map[string]*RefEntity   // name → entity, for query-targeted persons
	dayMonths map[string]*RefEntity   // id → entity, created lazily
}

// newPools instantiates all static reference banks.
func newPools(rng *rand.Rand) *pools {
	p := &pools{
		terms:     make(map[string][]*RefEntity),
		special:   make(map[string]*RefEntity),
		dayMonths: make(map[string]*RefEntity),
	}
	for vocab := range entityVocabs {
		for i, t := range vocabs[vocab] {
			if t.EN == "" {
				continue
			}
			p.terms[vocab] = append(p.terms[vocab],
				refFromSpec(fmt.Sprintf("term-%s-%02d", vocab, i), KindTerm, RefSpec{Titles: t}))
		}
	}
	for i, s := range places {
		p.placesP = append(p.placesP, refFromSpec(fmt.Sprintf("place-%02d", i), KindPlace, s))
	}
	for i, s := range genres {
		p.genresP = append(p.genresP, refFromSpec(fmt.Sprintf("genre-%02d", i), KindGenre, s))
	}
	for i, s := range langNames {
		p.langsP = append(p.langsP, refFromSpec(fmt.Sprintf("lang-%02d", i), KindLangName, s))
	}
	for i, name := range orgNames {
		p.orgs = append(p.orgs, sameOrg(fmt.Sprintf("org-%02d", i), name))
	}
	// Generated person bank: shuffled first×last combinations, plus the
	// named individuals the case-study queries reference.
	var combos []string
	for _, f := range firstNames {
		for _, l := range lastNames {
			combos = append(combos, f+" "+l)
		}
	}
	rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	const personPool = 220
	for i := 0; i < personPool && i < len(combos); i++ {
		p.persons = append(p.persons, samePerson(fmt.Sprintf("person-%03d", i), combos[i]))
	}
	for i, name := range specialPersons {
		r := samePerson(fmt.Sprintf("special-%02d", i), name)
		p.persons = append(p.persons, r)
		p.special[name] = r
	}
	return p
}

// dayMonth returns (creating if needed) the day-month stub for a date.
func (p *pools) dayMonth(day, month int) *RefEntity {
	id := fmt.Sprintf("daymonth-%02d-%02d", month, day)
	if r, ok := p.dayMonths[id]; ok {
		return r
	}
	r := dayMonthRef(day, month)
	p.dayMonths[id] = r
	return r
}

// pick selects a uniform random element.
func pick[T any](rng *rand.Rand, s []T) T { return s[rng.Intn(len(s))] }

// pickName draws a surface name from a weighted list.
func pickName(rng *rand.Rand, ns []WeightedName) string {
	if len(ns) == 1 {
		return ns[0].Name
	}
	var total float64
	for _, n := range ns {
		total += n.W
	}
	x := rng.Float64() * total
	for _, n := range ns {
		x -= n.W
		if x <= 0 {
			return n.Name
		}
	}
	return ns[len(ns)-1].Name
}
