package multi

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wiki"
)

// PairMatcher runs one language pair end to end. service.Session
// implements it; handing the batch a shared session is what makes pivot
// mode cheap — the hub-side dictionaries, type alignments and LSI models
// are built once and reused across every pair that touches the hub, and
// ad-hoc pairwise calls before or after the batch hit the same cache.
type PairMatcher interface {
	Match(ctx context.Context, pair wiki.LanguagePair) (*core.Result, error)
}

// Options configures a batch run.
type Options struct {
	// Mode selects pivot (default) or direct pair coverage.
	Mode Mode
	// Hub is the pivot edition; empty resolves to DefaultHub of the
	// batch's language set (English when present). Direct mode uses it
	// only to orient pairs canonically.
	Hub wiki.Language
	// Workers bounds how many pairs run concurrently; 0 means
	// GOMAXPROCS. Each pair's own type matching is internally parallel
	// too, so modest values saturate the machine.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// PairOutcome is one pair's result or failure within a batch. A failed
// pair does not abort the batch: the remaining pairs still run and the
// cluster builder works from whatever succeeded.
type PairOutcome struct {
	Pair    wiki.LanguagePair
	Result  *core.Result // nil when Err != nil
	Err     error
	Elapsed time.Duration
}

// Correspondences counts the cross-language attribute correspondences the
// pair derived (0 for failed pairs).
func (o *PairOutcome) Correspondences() int {
	if o.Result == nil {
		return 0
	}
	n := 0
	for _, tr := range o.Result.PerType {
		for _, bs := range tr.Cross {
			n += len(bs)
		}
	}
	return n
}

// Update is one progress event from a streaming batch: every finished
// pair produces an Update with Outcome set, and the last Update carries
// the final BatchResult (clusters included) with Outcome nil.
type Update struct {
	// Done counts finished pairs (including failures) so far; Total is
	// the plan size.
	Done, Total int
	Outcome     *PairOutcome
	Final       *BatchResult
}

// BatchResult is a completed all-pairs run.
type BatchResult struct {
	Plan     Plan
	Outcomes []PairOutcome // in plan order
	Clusters []Cluster
	Failed   int // outcomes with Err != nil
	Elapsed  time.Duration
}

// Outcome returns the outcome for a pair, or nil if it was not planned.
func (b *BatchResult) Outcome(pair wiki.LanguagePair) *PairOutcome {
	for i := range b.Outcomes {
		if b.Outcomes[i].Pair == pair {
			return &b.Outcomes[i]
		}
	}
	return nil
}

// Run executes the all-pairs batch over the languages: it resolves the
// pair plan, matches every planned pair on a bounded worker pool, and
// merges the pairwise correspondences into cross-language clusters.
// Per-pair failures are recorded in their outcomes without stopping the
// batch; only a cancelled context aborts the run as a whole.
func Run(ctx context.Context, m PairMatcher, langs []wiki.Language, opts Options) (*BatchResult, error) {
	updates, err := Stream(ctx, m, langs, opts)
	if err != nil {
		return nil, err
	}
	var final *BatchResult
	for u := range updates {
		if u.Final != nil {
			final = u.Final
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return final, nil
}

// Stream is Run with per-pair progress reporting: the returned channel
// delivers one Update per finished pair (completion order) and a final
// Update carrying the BatchResult, then closes. The channel is buffered
// for the whole batch, so an abandoned consumer never strands the
// workers. After a cancellation the remaining pairs are recorded with
// the context's error and the final update is still delivered.
func Stream(ctx context.Context, m PairMatcher, langs []wiki.Language, opts Options) (<-chan Update, error) {
	opts = opts.withDefaults()
	plan, err := NewPlan(langs, opts.Mode, opts.Hub)
	if err != nil {
		return nil, err
	}
	return StreamPlan(ctx, m, plan, opts.Workers), nil
}

// StreamPlan is Stream over an already-resolved plan: the scheduler
// without the planning step. The fleet router uses it directly — it
// resolves the plan itself to partition pairs by shard ownership, then
// runs the same bounded worker pool and cluster merge a single binary
// does, so routed batches cannot drift from local ones. workers ≤ 0
// means GOMAXPROCS.
func StreamPlan(ctx context.Context, m PairMatcher, plan Plan, workers int) <-chan Update {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(plan.Pairs)
	out := make(chan Update, total+1)
	go func() {
		defer close(out)
		start := time.Now()
		res := &BatchResult{Plan: plan, Outcomes: make([]PairOutcome, total)}

		if workers > total {
			workers = total
		}
		next := make(chan int)
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex // guards done counting and update emission order
			done int
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					o := &res.Outcomes[i]
					o.Pair = plan.Pairs[i]
					pairStart := time.Now()
					if err := ctx.Err(); err != nil {
						o.Err = err
					} else {
						o.Result, o.Err = m.Match(ctx, o.Pair)
					}
					o.Elapsed = time.Since(pairStart)
					mu.Lock()
					done++
					out <- Update{Done: done, Total: total, Outcome: o}
					mu.Unlock()
				}
			}()
		}
		for i := 0; i < total; i++ {
			next <- i
		}
		close(next)
		wg.Wait()

		for i := range res.Outcomes {
			if res.Outcomes[i].Err != nil {
				res.Failed++
			}
		}
		res.Clusters = BuildClusters(plan, res.Outcomes)
		res.Elapsed = time.Since(start)
		out <- Update{Done: total, Total: total, Final: res}
	}()
	return out
}
