// Package multi turns the pairwise matcher into an all-pairs
// multilingual one: given a corpus with N language editions it plans the
// language-pair DAG (direct all-pairs, or pivot mode through a hub
// edition such as English), runs the pairs on a bounded worker pool over
// one shared artifact cache, and merges the pairwise correspondences into
// cross-language attribute clusters with agreement scores and
// direct-vs-transitive conflict detection.
//
// This is the shape the paper's stated goal — multilingual integration
// across all editions at once — requires beyond the pairwise Pt–En and
// Vn–En evaluation: resource-poor pairs (Portuguese–Vietnamese has almost
// no cross-language links) are recovered transitively through the hub,
// while resource-rich pairs can be matched directly and checked against
// the transitive evidence.
package multi

import (
	"fmt"
	"strings"

	"repro/internal/wiki"
)

// Mode selects how the batch covers the language set.
type Mode int

const (
	// ModePivot matches every language against the hub and derives the
	// remaining pairs transitively through it — N−1 matching runs instead
	// of N(N−1)/2, and the only option when non-hub pairs lack
	// cross-language links.
	ModePivot Mode = iota
	// ModeDirect matches every unordered language pair head on, which
	// additionally lets the cluster builder cross-check direct matches
	// against their transitive counterparts.
	ModeDirect
)

// String names the mode as accepted by ParseMode.
func (m Mode) String() string {
	switch m {
	case ModePivot:
		return "pivot"
	case ModeDirect:
		return "direct"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// ParseMode parses "pivot" or "direct".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "pivot":
		return ModePivot, nil
	case "direct":
		return ModeDirect, nil
	}
	return 0, fmt.Errorf("multi: unknown mode %q (want %q or %q)", s, "pivot", "direct")
}

// Plan is the resolved pair DAG of one batch: which language pairs will
// be matched, in canonical orientation (wiki.OrientPair), sorted.
type Plan struct {
	Mode  Mode
	Hub   wiki.Language
	Pairs []wiki.LanguagePair
}

// UnknownHubError reports a pivot hub that is not among the corpus
// languages — the caller named an edition this corpus does not serve,
// which the service layer maps to not_found rather than internal.
type UnknownHubError struct {
	Hub   wiki.Language
	Langs []wiki.Language
}

func (e *UnknownHubError) Error() string {
	return fmt.Sprintf("multi: pivot hub %q not among corpus languages %v", e.Hub, e.Langs)
}

// DefaultHub picks the pivot edition a batch uses when the caller names
// none: English when the language set includes it (the paper's hub),
// otherwise the lexicographically first language — a deterministic
// choice that keeps corpora without an English edition fully usable
// with default requests. It returns the empty Language for an empty
// set.
func DefaultHub(langs []wiki.Language) wiki.Language {
	var first wiki.Language
	for _, l := range langs {
		if l == wiki.English {
			return l
		}
		if first == "" || l < first {
			first = l
		}
	}
	return first
}

// NewPlan resolves the pair plan for a language set. Pivot mode requires
// the hub to be one of the languages; both modes require at least two.
// An empty hub resolves to DefaultHub(langs), making the hub choice
// data-driven rather than hardwired to English.
func NewPlan(langs []wiki.Language, mode Mode, hub wiki.Language) (Plan, error) {
	if hub == "" {
		hub = DefaultHub(langs)
	}
	if !hub.Valid() {
		return Plan{}, fmt.Errorf("multi: invalid hub language %q", hub)
	}
	uniq := make(map[wiki.Language]bool, len(langs))
	for _, l := range langs {
		uniq[l] = true
	}
	if len(uniq) < 2 {
		return Plan{}, fmt.Errorf("multi: need at least 2 languages, have %d", len(uniq))
	}
	p := Plan{Mode: mode, Hub: hub}
	switch mode {
	case ModePivot:
		if !uniq[hub] {
			return Plan{}, &UnknownHubError{Hub: hub, Langs: sortedLangs(uniq)}
		}
		p.Pairs = wiki.HubPairs(langs, hub)
	case ModeDirect:
		p.Pairs = wiki.AllPairs(langs, hub)
	default:
		return Plan{}, fmt.Errorf("multi: unknown mode %d", int(mode))
	}
	return p, nil
}

// Contains reports whether the plan matches the canonical orientation of
// the two languages directly.
func (p Plan) Contains(a, b wiki.Language) bool {
	want := wiki.OrientPair(a, b, p.Hub)
	for _, pair := range p.Pairs {
		if pair == want {
			return true
		}
	}
	return false
}

// String renders the plan for logs: "pivot(en): pt-en vi-en".
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s):", p.Mode, p.Hub)
	for _, pair := range p.Pairs {
		b.WriteByte(' ')
		b.WriteString(pair.String())
	}
	return b.String()
}

func sortedLangs(set map[wiki.Language]bool) []wiki.Language {
	out := make([]wiki.Language, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
