package multi

import (
	"testing"

	"repro/internal/wiki"
)

func TestDefaultHub(t *testing.T) {
	cases := []struct {
		langs []wiki.Language
		want  wiki.Language
	}{
		{[]wiki.Language{"pt", "en", "vi"}, "en"},
		{[]wiki.Language{"vi", "pt"}, "pt"},
		{[]wiki.Language{"zh-min-nan", "be-tarask", "ceb"}, "be-tarask"},
		{nil, ""},
	}
	for _, tc := range cases {
		if got := DefaultHub(tc.langs); got != tc.want {
			t.Errorf("DefaultHub(%v) = %q, want %q", tc.langs, got, tc.want)
		}
	}
}

func TestNewPlanResolvesEmptyHub(t *testing.T) {
	langs := []wiki.Language{"de", "fr", "pt"}
	p, err := NewPlan(langs, ModePivot, "")
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p.Hub != "de" {
		t.Fatalf("hub = %q, want de (no English present)", p.Hub)
	}
	p2, err := NewPlan([]wiki.Language{"pt", "en", "vi"}, ModePivot, "")
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p2.Hub != "en" {
		t.Fatalf("hub = %q, want en", p2.Hub)
	}
}
