package multi

import (
	"fmt"
	"sort"

	"repro/internal/eval"
	"repro/internal/wiki"
)

// Attr identifies one attribute node across the whole corpus: a
// normalized attribute name within one entity type of one language
// edition. Attribute names only mean something inside their type
// ("direção" of filme and of televisão are different nodes), so the type
// is part of the identity.
type Attr struct {
	Lang wiki.Language `json:"lang"`
	Type string        `json:"type"`
	Name string        `json:"name"`
}

// String renders the node as "pt:filme/direção".
func (a Attr) String() string { return fmt.Sprintf("%s:%s/%s", a.Lang, a.Type, a.Name) }

func attrLess(a, b Attr) bool {
	if a.Lang != b.Lang {
		return a.Lang < b.Lang
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.Name < b.Name
}

// Correspondence is one cross-language attribute equivalence inside a
// cluster. Direct correspondences were derived by a pairwise matching
// run; the rest are transitive — implied by chains of direct matches
// through intermediate languages (the pivot), with Confidence set to the
// best bottleneck confidence over connecting chains. Supported marks
// direct correspondences that a transitive chain through a third
// language agrees with (transitive ones are supported by construction).
type Correspondence struct {
	A          Attr    `json:"a"`
	B          Attr    `json:"b"`
	Confidence float64 `json:"confidence"`
	Direct     bool    `json:"direct"`
	Supported  bool    `json:"supported"`
}

// Conflict is a direct-vs-transitive disagreement: the chain A–Via–B
// implies the correspondence A~B, the languages of A and B were matched
// directly (their pair is in the plan, succeeded, and aligned the two
// types), yet the direct run derived no A~B. Pivot-mode batches cannot
// produce conflicts — non-hub pairs are never matched directly.
type Conflict struct {
	A   Attr `json:"a"`
	B   Attr `json:"b"`
	Via Attr `json:"via"`
}

// Cluster is one connected component of the cross-language
// correspondence graph: a set of attribute nodes that all name the same
// latent attribute, with the correspondences (direct and transitive)
// connecting them.
type Cluster struct {
	ID int `json:"id"`
	// Languages lists the editions represented, sorted.
	Languages []wiki.Language `json:"languages"`
	// Types groups the member entity types per language, sorted.
	Types map[wiki.Language][]string `json:"types"`
	// Members lists the attribute nodes, sorted.
	Members []Attr `json:"members"`
	// Correspondences lists every cross-language member pair, sorted.
	Correspondences []Correspondence `json:"correspondences"`
	// Conflicts lists the direct-vs-transitive disagreements.
	Conflicts []Conflict `json:"conflicts,omitempty"`
	// Agreement is the fraction of direct correspondences with a
	// transitive chain to agree with that the chain confirms; 1 when no
	// direct correspondence is checkable (two-language clusters).
	Agreement float64 `json:"agreement"`
}

// edgeKey orders a node pair canonically.
type edgeKey [2]Attr

func keyOf(a, b Attr) edgeKey {
	if attrLess(b, a) {
		return edgeKey{b, a}
	}
	return edgeKey{a, b}
}

// langType names one entity type of one language edition.
type langType struct {
	Lang wiki.Language
	Type string
}

// clusterGraph is the shared state the per-cluster assembly reads: the
// direct correspondence adjacency, and per successfully matched pair the
// type-pair alignment (for conflict detection) and the per-side aligned
// types (for deciding whether a transitive chain was even attempted).
type clusterGraph struct {
	plan Plan
	// langs is every language covered by the plan, sorted.
	langs []wiki.Language
	adj   map[Attr]map[Attr]float64
	// typePairAligned[pair][tp] reports the pair's matcher aligned the
	// entity-type pair tp.
	typePairAligned map[wiki.LanguagePair]map[[2]string]bool
	// typeAligned[pair][lt] reports the pair's matcher aligned the type
	// lt.Type of edition lt.Lang with some counterpart — i.e. matching
	// this type across the pair was attempted at all.
	typeAligned map[wiki.LanguagePair]map[langType]bool
}

// BuildClusters merges the pairwise correspondences of the successful
// outcomes into connected components and scores their internal
// agreement. Failed outcomes contribute nothing; the plan tells the
// conflict detector which language pairs were matched directly.
func BuildClusters(plan Plan, outcomes []PairOutcome) []Cluster {
	g := &clusterGraph{
		plan:            plan,
		adj:             make(map[Attr]map[Attr]float64),
		typePairAligned: make(map[wiki.LanguagePair]map[[2]string]bool),
		typeAligned:     make(map[wiki.LanguagePair]map[langType]bool),
	}
	langSet := make(map[wiki.Language]bool)
	for _, pair := range plan.Pairs {
		langSet[pair.A] = true
		langSet[pair.B] = true
	}
	for l := range langSet {
		g.langs = append(g.langs, l)
	}
	sort.Slice(g.langs, func(i, j int) bool { return g.langs[i] < g.langs[j] })

	edges := make(map[edgeKey]float64)
	addEdge := func(a, b Attr, conf float64) {
		k := keyOf(a, b)
		if old, ok := edges[k]; !ok || conf > old {
			edges[k] = conf
		}
		for _, e := range [2][2]Attr{{a, b}, {b, a}} {
			m := g.adj[e[0]]
			if m == nil {
				m = make(map[Attr]float64)
				g.adj[e[0]] = m
			}
			if old, ok := m[e[1]]; !ok || conf > old {
				m[e[1]] = conf
			}
		}
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.Err != nil || o.Result == nil {
			continue
		}
		tpAligned := make(map[[2]string]bool, len(o.Result.Types))
		tAligned := make(map[langType]bool, 2*len(o.Result.Types))
		for _, tp := range o.Result.Types {
			tpAligned[tp] = true
			tAligned[langType{o.Pair.A, tp[0]}] = true
			tAligned[langType{o.Pair.B, tp[1]}] = true
			tr := o.Result.PerType[tp]
			for aName, bs := range tr.Cross {
				a := Attr{Lang: o.Pair.A, Type: tp[0], Name: aName}
				for bName := range bs {
					b := Attr{Lang: o.Pair.B, Type: tp[1], Name: bName}
					addEdge(a, b, tr.Confidence(aName, bName))
				}
			}
		}
		g.typePairAligned[o.Pair] = tpAligned
		g.typeAligned[o.Pair] = tAligned
	}

	// Connected components via union-find over the nodes.
	uf := newUnionFind()
	for k := range edges {
		uf.union(k[0], k[1])
	}
	byRoot := make(map[Attr][]Attr)
	for a := range g.adj {
		root := uf.find(a)
		byRoot[root] = append(byRoot[root], a)
	}

	clusters := make([]Cluster, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Slice(members, func(i, j int) bool { return attrLess(members[i], members[j]) })
		clusters = append(clusters, g.buildCluster(members))
	}
	sort.Slice(clusters, func(i, j int) bool {
		return attrLess(clusters[i].Members[0], clusters[j].Members[0])
	})
	for i := range clusters {
		clusters[i].ID = i
	}
	return clusters
}

// buildCluster assembles one component: its correspondences (direct and
// transitive), conflict records, and the agreement score.
func (g *clusterGraph) buildCluster(members []Attr) Cluster {
	c := Cluster{Members: members, Types: make(map[wiki.Language][]string)}
	langSet := make(map[wiki.Language]bool)
	typeSeen := make(map[langType]bool)
	for _, m := range members {
		langSet[m.Lang] = true
		if k := (langType{m.Lang, m.Type}); !typeSeen[k] {
			typeSeen[k] = true
			c.Types[m.Lang] = append(c.Types[m.Lang], m.Type)
		}
	}
	for l := range langSet {
		c.Languages = append(c.Languages, l)
		sort.Strings(c.Types[l])
	}
	sort.Slice(c.Languages, func(i, j int) bool { return c.Languages[i] < c.Languages[j] })

	// Bottleneck relaxations are memoized per source node: every
	// transitive pair from the same member reuses one traversal, keeping
	// large clusters quadratic rather than cubic.
	bottlenecks := make(map[Attr]map[Attr]float64)
	bottleneckTo := func(a, b Attr) float64 {
		best, ok := bottlenecks[a]
		if !ok {
			best = relaxBottlenecks(a, g.adj)
			bottlenecks[a] = best
		}
		return clampConfidence(best[b])
	}

	checkable, supported := 0, 0
	for i, a := range members {
		for _, b := range members[i+1:] {
			if a.Lang == b.Lang {
				continue
			}
			conf, direct := g.adj[a][b]
			via, hasChain := g.commonNeighbor(a, b)
			if direct {
				if g.chainAttempted(a, b) {
					checkable++
					if hasChain {
						supported++
					}
				}
				c.Correspondences = append(c.Correspondences, Correspondence{
					A: a, B: b, Confidence: conf, Direct: true, Supported: hasChain,
				})
				continue
			}
			// Transitive correspondence: score it by the best bottleneck
			// confidence over connecting chains of direct matches.
			c.Correspondences = append(c.Correspondences, Correspondence{
				A: a, B: b, Confidence: bottleneckTo(a, b),
				Direct: false, Supported: true,
			})
			// Direct-vs-transitive conflict: the languages were matched
			// head on, the matcher aligned these two entity types, and
			// still produced no correspondence the chain implies.
			if g.directlyRejected(a, b) {
				if !hasChain {
					// The chain runs through longer paths; pick the first
					// hop from a toward b as the witness.
					via = firstHop(a, b, g.adj)
				}
				c.Conflicts = append(c.Conflicts, Conflict{A: a, B: b, Via: via})
			}
		}
	}
	sort.Slice(c.Correspondences, func(i, j int) bool {
		x, y := c.Correspondences[i], c.Correspondences[j]
		if x.A != y.A {
			return attrLess(x.A, y.A)
		}
		return attrLess(x.B, y.B)
	})
	sort.Slice(c.Conflicts, func(i, j int) bool {
		x, y := c.Conflicts[i], c.Conflicts[j]
		if x.A != y.A {
			return attrLess(x.A, y.A)
		}
		return attrLess(x.B, y.B)
	})
	c.Agreement = 1
	if checkable > 0 {
		c.Agreement = float64(supported) / float64(checkable)
	}
	return c
}

// commonNeighbor finds a third-language witness adjacent to both ends —
// the two-hop chain that corroborates (or substitutes for) a direct
// correspondence.
func (g *clusterGraph) commonNeighbor(a, b Attr) (Attr, bool) {
	best, found := Attr{}, false
	for n := range g.adj[a] {
		if n.Lang == a.Lang || n.Lang == b.Lang {
			continue
		}
		if _, ok := g.adj[b][n]; !ok {
			continue
		}
		if !found || attrLess(n, best) {
			best, found = n, true
		}
	}
	return best, found
}

// chainAttempted reports whether a corroborating two-hop chain for the
// direct correspondence (a, b) was actually attempted: some third
// language L was matched against both endpoints' editions, and both of
// those runs aligned the endpoint's entity type. Only then does the
// absence of a chain count against the agreement score — a pivot-mode
// batch never attempts non-hub chains, so its direct correspondences
// are never checkable and agreement stays vacuously 1.
func (g *clusterGraph) chainAttempted(a, b Attr) bool {
	for _, l := range g.langs {
		if l == a.Lang || l == b.Lang {
			continue
		}
		pa := wiki.OrientPair(a.Lang, l, g.plan.Hub)
		pb := wiki.OrientPair(b.Lang, l, g.plan.Hub)
		if g.typeAligned[pa][langType{a.Lang, a.Type}] && g.typeAligned[pb][langType{b.Lang, b.Type}] {
			return true
		}
	}
	return false
}

// directlyRejected reports whether the transitive correspondence (a, b)
// contradicts a direct matching run: the pair of their editions was
// planned, succeeded, aligned these two entity types — and still derived
// no correspondence between the attributes.
func (g *clusterGraph) directlyRejected(a, b Attr) bool {
	pair := wiki.OrientPair(a.Lang, b.Lang, g.plan.Hub)
	aligned := g.typePairAligned[pair]
	if aligned == nil {
		return false
	}
	tp := [2]string{a.Type, b.Type}
	if pair.A != a.Lang {
		tp = [2]string{b.Type, a.Type}
	}
	return aligned[tp]
}

// relaxBottlenecks computes the widest-path score from one node to every
// node it reaches: over all chains of direct correspondences, the
// maximum of the minimum edge confidence — how strong the weakest link
// of the best supporting chain is. A simple fixpoint relaxation
// suffices; callers memoize per source so each cluster traverses once
// per member at most.
func relaxBottlenecks(from Attr, adj map[Attr]map[Attr]float64) map[Attr]float64 {
	const inf = 2 // above any confidence in [0, 1]
	best := map[Attr]float64{from: inf}
	for changed := true; changed; {
		changed = false
		for u, bu := range best {
			for v, conf := range adj[u] {
				w := bu
				if conf < w {
					w = conf
				}
				if w > best[v] {
					best[v] = w
					changed = true
				}
			}
		}
	}
	return best
}

// clampConfidence maps a relaxation score onto [0, 1]: unreachable nodes
// score 0 and the source's own sentinel caps at full confidence.
func clampConfidence(b float64) float64 {
	if b > 1 {
		return 1
	}
	return b
}

// bottleneckConfidence is the single-pair form of relaxBottlenecks.
func bottleneckConfidence(from, to Attr, adj map[Attr]map[Attr]float64) float64 {
	return clampConfidence(relaxBottlenecks(from, adj)[to])
}

// firstHop returns the lowest neighbor of a that leads toward b — a
// deterministic witness when the connecting chain is longer than two
// hops.
func firstHop(a, b Attr, adj map[Attr]map[Attr]float64) Attr {
	best, found := Attr{}, false
	for n := range adj[a] {
		if n == b {
			continue
		}
		if !found || attrLess(n, best) {
			best, found = n, true
		}
	}
	return best
}

// Induced projects the batch's clusters back onto one language pair: for
// every cluster correspondence between pair.A and pair.B (direct or
// transitive), the (a, b) name pair is recorded under its entity-type
// pair. This is the bridge to the pairwise evaluation machinery — the
// returned sets score directly against internal/eval gold data, which is
// how cluster precision/recall is measured.
func (b *BatchResult) Induced(pair wiki.LanguagePair) map[[2]string]eval.Correspondences {
	out := make(map[[2]string]eval.Correspondences)
	add := func(tp [2]string, a, bName string) {
		set := out[tp]
		if set == nil {
			set = make(eval.Correspondences)
			out[tp] = set
		}
		set.Add(a, bName)
	}
	for _, cl := range b.Clusters {
		for _, corr := range cl.Correspondences {
			switch {
			case corr.A.Lang == pair.A && corr.B.Lang == pair.B:
				add([2]string{corr.A.Type, corr.B.Type}, corr.A.Name, corr.B.Name)
			case corr.B.Lang == pair.A && corr.A.Lang == pair.B:
				add([2]string{corr.B.Type, corr.A.Type}, corr.B.Name, corr.A.Name)
			}
		}
	}
	return out
}

// unionFind is a map-based disjoint-set forest over attribute nodes.
type unionFind struct {
	parent map[Attr]Attr
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[Attr]Attr)} }

func (u *unionFind) find(a Attr) Attr {
	p, ok := u.parent[a]
	if !ok {
		u.parent[a] = a
		return a
	}
	if p == a {
		return a
	}
	root := u.find(p)
	u.parent[a] = root
	return root
}

func (u *unionFind) union(a, b Attr) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		// Deterministic root choice keeps iteration-order effects out.
		if attrLess(rb, ra) {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}
