package multi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/wiki"
)

const (
	en = wiki.English
	pt = wiki.Portuguese
	vi = wiki.Vietnamese
)

// fakeMatcher serves canned per-pair results and records scheduling
// behaviour (call set, concurrency high-water mark).
type fakeMatcher struct {
	mu          sync.Mutex
	results     map[wiki.LanguagePair]*core.Result
	errs        map[wiki.LanguagePair]error
	calls       []wiki.LanguagePair
	inflight    int
	maxInflight int
}

func (f *fakeMatcher) Match(ctx context.Context, pair wiki.LanguagePair) (*core.Result, error) {
	f.mu.Lock()
	f.calls = append(f.calls, pair)
	f.inflight++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.inflight--
		f.mu.Unlock()
	}()
	if err := f.errs[pair]; err != nil {
		return nil, err
	}
	res, ok := f.results[pair]
	if !ok {
		return nil, fmt.Errorf("fake: unexpected pair %s", pair)
	}
	return res, nil
}

// result builds a one-type fake Result: typeA~typeB with the given
// cross-language correspondences and confidences.
func result(pair wiki.LanguagePair, typeA, typeB string, corr map[[2]string]float64) *core.Result {
	cross := make(map[string]map[string]bool)
	conf := make(map[[2]string]float64)
	for p, c := range corr {
		if cross[p[0]] == nil {
			cross[p[0]] = make(map[string]bool)
		}
		cross[p[0]][p[1]] = true
		conf[p] = c
	}
	tp := [2]string{typeA, typeB}
	return &core.Result{
		Pair:    pair,
		Types:   [][2]string{tp},
		PerType: map[[2]string]*core.TypeResult{tp: core.NewTypeResult(typeA, typeB, cross, conf)},
	}
}

// emptyResult is a pair that matched successfully but aligned nothing —
// the shape a resource-poor direct pair (Pt–Vi without cross-language
// links) produces.
func emptyResult(pair wiki.LanguagePair) *core.Result {
	return &core.Result{Pair: pair, PerType: map[[2]string]*core.TypeResult{}}
}

func TestParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"pivot", ModePivot, true},
		{"direct", ModeDirect, true},
		{"", 0, false},
		{"both", 0, false},
	} {
		got, err := ParseMode(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseMode(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if ModePivot.String() != "pivot" || ModeDirect.String() != "direct" {
		t.Errorf("mode strings: %q %q", ModePivot, ModeDirect)
	}
}

func TestNewPlan(t *testing.T) {
	langs := []wiki.Language{en, pt, vi}

	pivot, err := NewPlan(langs, ModePivot, en)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(pivot.Pairs); got != "[pt-en vi-en]" {
		t.Errorf("pivot pairs = %v", got)
	}

	direct, err := NewPlan(langs, ModeDirect, en)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(direct.Pairs); got != "[pt-en pt-vi vi-en]" {
		t.Errorf("direct pairs = %v", got)
	}
	if !direct.Contains(vi, pt) || !direct.Contains(pt, vi) {
		t.Error("direct plan should contain pt-vi in either orientation")
	}
	if pivot.Contains(pt, vi) {
		t.Error("pivot plan should not contain pt-vi")
	}

	if _, err := NewPlan([]wiki.Language{en}, ModePivot, en); err == nil {
		t.Error("single-language plan accepted")
	}
	if _, err := NewPlan(langs, ModePivot, "de"); err == nil {
		t.Error("pivot with absent hub accepted")
	}
	if _, err := NewPlan(langs, ModePivot, "DE"); err == nil {
		t.Error("invalid hub language accepted")
	}
	if _, err := NewPlan(langs, Mode(99), en); err == nil {
		t.Error("unknown mode accepted")
	}
	// Direct mode does not require the hub to be present; it only orients.
	if _, err := NewPlan([]wiki.Language{pt, vi}, ModeDirect, en); err != nil {
		t.Errorf("direct without hub language: %v", err)
	}
}

// TestRunPivot checks the canonical pivot flow: Pt–En and Vi–En matched
// directly, Pt–Vi derived transitively through the English hub, with
// bottleneck confidences and vacuous agreement (no chain was attempted).
func TestRunPivot(t *testing.T) {
	f := &fakeMatcher{results: map[wiki.LanguagePair]*core.Result{
		wiki.PtEn: result(wiki.PtEn, "filme", "film", map[[2]string]float64{
			{"direção", "directed by"}: 0.9,
			{"elenco", "starring"}:     0.7,
		}),
		wiki.VnEn: result(wiki.VnEn, "phim", "film", map[[2]string]float64{
			{"đạo diễn", "directed by"}: 0.8,
		}),
	}}
	res, err := Run(context.Background(), f, []wiki.Language{en, pt, vi}, Options{Mode: ModePivot})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || len(res.Outcomes) != 2 {
		t.Fatalf("outcomes: failed=%d n=%d", res.Failed, len(res.Outcomes))
	}
	if n := res.Outcome(wiki.PtEn).Correspondences(); n != 2 {
		t.Errorf("pt-en correspondences = %d, want 2", n)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (directed-by, starring)", len(res.Clusters))
	}

	// The directed-by cluster spans all three languages.
	cl := res.Clusters[0]
	if len(cl.Members) != 3 || len(cl.Languages) != 3 {
		t.Fatalf("cluster 0: members=%v languages=%v", cl.Members, cl.Languages)
	}
	if cl.Agreement != 1 {
		t.Errorf("pivot agreement = %v, want vacuous 1", cl.Agreement)
	}
	if len(cl.Conflicts) != 0 {
		t.Errorf("pivot conflicts = %v, want none", cl.Conflicts)
	}
	var derived *Correspondence
	for i := range cl.Correspondences {
		c := &cl.Correspondences[i]
		if !c.Direct {
			derived = c
		} else if !c.Supported {
			// Direct hub edges have no corroborating chain, but they were
			// never checkable either.
			if c.Confidence != 0.9 && c.Confidence != 0.8 {
				t.Errorf("direct edge confidence = %v", c.Confidence)
			}
		}
	}
	if derived == nil {
		t.Fatal("no transitive pt-vi correspondence derived")
	}
	if derived.A.Lang != pt || derived.B.Lang != vi {
		t.Errorf("derived correspondence between %s and %s, want pt and vi", derived.A.Lang, derived.B.Lang)
	}
	if derived.Confidence != 0.8 {
		t.Errorf("bottleneck confidence = %v, want 0.8 (min of 0.9 and 0.8)", derived.Confidence)
	}
	if !derived.Supported {
		t.Error("transitive correspondence not marked supported")
	}

	// The starring cluster has only two members and no vi counterpart.
	if got := len(res.Clusters[1].Members); got != 2 {
		t.Errorf("cluster 1 members = %d, want 2", got)
	}

	// Induced projection: the pt-vi pair gets exactly the transitive pair.
	ind := res.Induced(wiki.LanguagePair{A: pt, B: vi})
	tp := [2]string{"filme", "phim"}
	if !ind[tp].Has("direção", "đạo diễn") || ind[tp].Pairs() != 1 {
		t.Errorf("induced pt-vi = %v", ind)
	}
	// And the reverse orientation flips sides.
	rev := res.Induced(wiki.LanguagePair{A: vi, B: pt})
	if !rev[[2]string{"phim", "filme"}].Has("đạo diễn", "direção") {
		t.Errorf("induced vi-pt = %v", rev)
	}
}

// TestRunDirectAgreement checks direct mode's triangle bookkeeping: a
// closed triangle supports its direct edges; a direct pair that aligned
// the types but missed a chain-implied correspondence is a conflict.
func TestRunDirectAgreement(t *testing.T) {
	ptVi := wiki.LanguagePair{A: pt, B: vi}
	f := &fakeMatcher{results: map[wiki.LanguagePair]*core.Result{
		wiki.PtEn: result(wiki.PtEn, "filme", "film", map[[2]string]float64{
			{"direção", "directed by"}: 0.9,
			{"elenco", "starring"}:     0.7,
		}),
		wiki.VnEn: result(wiki.VnEn, "phim", "film", map[[2]string]float64{
			{"đạo diễn", "directed by"}: 0.8,
			{"diễn viên", "starring"}:   0.6,
		}),
		// The direct Pt–Vi run closes the directed-by triangle but
		// misses the starring one.
		ptVi: result(ptVi, "filme", "phim", map[[2]string]float64{
			{"direção", "đạo diễn"}: 0.5,
		}),
	}}
	res, err := Run(context.Background(), f, []wiki.Language{en, pt, vi}, Options{Mode: ModeDirect})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}

	directedBy, starring := res.Clusters[0], res.Clusters[1]
	if directedBy.Agreement != 1 {
		t.Errorf("closed triangle agreement = %v, want 1", directedBy.Agreement)
	}
	if len(directedBy.Conflicts) != 0 {
		t.Errorf("closed triangle conflicts = %v", directedBy.Conflicts)
	}
	for _, c := range directedBy.Correspondences {
		if !c.Direct || !c.Supported {
			t.Errorf("triangle edge %v→%v: direct=%v supported=%v", c.A, c.B, c.Direct, c.Supported)
		}
	}

	// starring: pt-en and vi-en edges exist, pt-vi directly rejected.
	if len(starring.Conflicts) != 1 {
		t.Fatalf("starring conflicts = %v, want 1", starring.Conflicts)
	}
	conflict := starring.Conflicts[0]
	if conflict.A.Lang != pt || conflict.B.Lang != vi {
		t.Errorf("conflict between %s and %s, want pt and vi", conflict.A.Lang, conflict.B.Lang)
	}
	if conflict.Via.Lang != en {
		t.Errorf("conflict witness in %s, want en", conflict.Via.Lang)
	}
	// The two hub edges were checkable (chains through the third language
	// were attempted) and unsupported — agreement drops.
	if starring.Agreement != 0 {
		t.Errorf("starring agreement = %v, want 0", starring.Agreement)
	}
}

// TestRunDirectEmptyPair mirrors the real corpus: the direct Pt–Vi run
// succeeds with zero aligned types, so nothing is checkable and no
// conflicts are reported — the transitive derivation simply fills in.
func TestRunDirectEmptyPair(t *testing.T) {
	ptVi := wiki.LanguagePair{A: pt, B: vi}
	f := &fakeMatcher{results: map[wiki.LanguagePair]*core.Result{
		wiki.PtEn: result(wiki.PtEn, "filme", "film", map[[2]string]float64{{"direção", "directed by"}: 0.9}),
		wiki.VnEn: result(wiki.VnEn, "phim", "film", map[[2]string]float64{{"đạo diễn", "directed by"}: 0.8}),
		ptVi:      emptyResult(ptVi),
	}}
	res, err := Run(context.Background(), f, []wiki.Language{en, pt, vi}, Options{Mode: ModeDirect})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
	cl := res.Clusters[0]
	if len(cl.Conflicts) != 0 {
		t.Errorf("conflicts = %v, want none (pt-vi aligned no types)", cl.Conflicts)
	}
	if cl.Agreement != 1 {
		t.Errorf("agreement = %v, want vacuous 1", cl.Agreement)
	}
}

// TestRunPairFailureIsolation: one failing pair is recorded and the rest
// of the batch still completes and clusters.
func TestRunPairFailureIsolation(t *testing.T) {
	boom := errors.New("boom")
	f := &fakeMatcher{
		results: map[wiki.LanguagePair]*core.Result{
			wiki.PtEn: result(wiki.PtEn, "filme", "film", map[[2]string]float64{{"direção", "directed by"}: 0.9}),
		},
		errs: map[wiki.LanguagePair]error{wiki.VnEn: boom},
	}
	res, err := Run(context.Background(), f, []wiki.Language{en, pt, vi}, Options{Mode: ModePivot})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Errorf("failed = %d, want 1", res.Failed)
	}
	if o := res.Outcome(wiki.VnEn); o == nil || !errors.Is(o.Err, boom) {
		t.Errorf("vi-en outcome = %+v", o)
	}
	if o := res.Outcome(wiki.PtEn); o == nil || o.Err != nil || o.Result == nil {
		t.Errorf("pt-en outcome = %+v", o)
	}
	if len(res.Clusters) != 1 || len(res.Clusters[0].Members) != 2 {
		t.Errorf("clusters from surviving pair: %+v", res.Clusters)
	}
}

// TestStreamProgress checks the streaming surface: one update per pair
// with monotone Done, then the final update, then close.
func TestStreamProgress(t *testing.T) {
	f := &fakeMatcher{results: map[wiki.LanguagePair]*core.Result{
		wiki.PtEn: result(wiki.PtEn, "filme", "film", map[[2]string]float64{{"direção", "directed by"}: 0.9}),
		wiki.VnEn: result(wiki.VnEn, "phim", "film", map[[2]string]float64{{"đạo diễn", "directed by"}: 0.8}),
	}}
	updates, err := Stream(context.Background(), f, []wiki.Language{en, pt, vi}, Options{Mode: ModePivot, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var outcomes, finals int
	lastDone := 0
	for u := range updates {
		if u.Total != 2 {
			t.Errorf("update total = %d, want 2", u.Total)
		}
		if u.Outcome != nil {
			outcomes++
			if u.Done <= lastDone {
				t.Errorf("done not monotone: %d after %d", u.Done, lastDone)
			}
			lastDone = u.Done
		}
		if u.Final != nil {
			finals++
			if len(u.Final.Outcomes) != 2 {
				t.Errorf("final outcomes = %d", len(u.Final.Outcomes))
			}
		}
	}
	if outcomes != 2 || finals != 1 {
		t.Errorf("stream delivered %d outcomes, %d finals; want 2, 1", outcomes, finals)
	}
	// Workers=1 serializes the fake matcher.
	if f.maxInflight != 1 {
		t.Errorf("max inflight = %d with Workers=1", f.maxInflight)
	}
}

// TestRunCancelled: a cancelled context aborts the batch with its error.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &fakeMatcher{results: map[wiki.LanguagePair]*core.Result{}}
	_, err := Run(ctx, f, []wiki.Language{en, pt, vi}, Options{Mode: ModePivot})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestRunPlanError: an unplannable language set fails up front.
func TestRunPlanError(t *testing.T) {
	f := &fakeMatcher{}
	if _, err := Run(context.Background(), f, []wiki.Language{en}, Options{}); err == nil {
		t.Error("single-language batch accepted")
	}
}

func TestBottleneckConfidence(t *testing.T) {
	a := Attr{Lang: pt, Type: "t", Name: "a"}
	h := Attr{Lang: en, Type: "t", Name: "h"}
	b := Attr{Lang: vi, Type: "t", Name: "b"}
	adj := map[Attr]map[Attr]float64{
		a: {h: 0.9},
		h: {a: 0.9, b: 0.4},
		b: {h: 0.4},
	}
	if got := bottleneckConfidence(a, b, adj); got != 0.4 {
		t.Errorf("bottleneck = %v, want 0.4", got)
	}
	if got := bottleneckConfidence(a, Attr{Lang: vi, Type: "t", Name: "absent"}, adj); got != 0 {
		t.Errorf("unreachable bottleneck = %v, want 0", got)
	}
}
