package service

import (
	"context"
	"net/http"
	"strconv"

	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/wiki"
)

// The legacy (pre-v1) GET API, kept as thin shims over the v1
// execution path: each shim translates its query-string parameters into
// a protocol.MatchRequest, runs the same ServeMatch/ServeMatchAll/
// ServeStream code the /v1/ endpoints use, and renders the historical
// response shapes — free-text {"error": ...} bodies included — so
// recorded clients (and the golden tests) keep working byte for byte.
// New integrations should use /v1/; see the README's migration table.

// Legacy wire aliases. These shapes did not change in v1, so the legacy
// names simply point at the protocol types.
type (
	// CorrespondenceJSON is one derived cross-language correspondence.
	CorrespondenceJSON = protocol.Correspondence
	// TypeResultJSON is the wire form of one type's alignment outcome.
	TypeResultJSON = protocol.TypeResult
	// MatchResponseJSON is the wire form of a full /match run.
	MatchResponseJSON = protocol.MatchResponse
	// StatsResponseJSON is the wire form of /corpus/stats.
	StatsResponseJSON = protocol.StatsResponse
	// MatchAllPairJSON summarizes one pair's outcome within a batch.
	MatchAllPairJSON = protocol.MatchAllPair
)

// MatchAllResponseJSON is the legacy wire form of a full /matchall run.
// v1's MatchAllResponse additionally reports the resolved pair plan;
// the legacy shape stays frozen without it.
type MatchAllResponseJSON struct {
	Mode      string             `json:"mode"`
	Hub       string             `json:"hub"`
	Pairs     []MatchAllPairJSON `json:"pairs"`
	Clusters  []multi.Cluster    `json:"clusters"`
	Conflicts int                `json:"conflicts"`
	ElapsedMS float64            `json:"elapsedMs"`
	Cache     CacheStats         `json:"cache"`
}

// MatchAllStreamLineJSON is one NDJSON line of /matchall/stream: pair
// progress lines first (completion order), then a final line carrying
// the merged clusters.
type MatchAllStreamLineJSON struct {
	Done  int                   `json:"done"`
	Total int                   `json:"total"`
	Pair  *MatchAllPairJSON     `json:"pair,omitempty"`
	Final *MatchAllResponseJSON `json:"final,omitempty"`
}

// errorJSON is the legacy uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// invalidateJSON freezes the legacy /session/invalidate body: v1's
// InvalidateResponse grew a per-kind breakdown, but the legacy shape
// stays byte-identical without it.
type invalidateJSON struct {
	Dropped int `json:"dropped"`
}

// ParsePair parses a "pt-en"-style language pair. "vn-en" is accepted as
// an alias of the paper's Vietnamese–English pair.
func ParsePair(s string) (wiki.LanguagePair, error) { return protocol.ParsePair(s) }

func registerShims(mux *http.ServeMux, st *serverState) {
	mux.HandleFunc("GET /corpus/stats", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, st.s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, st.health())
	})
	mux.HandleFunc("GET /match", func(w http.ResponseWriter, r *http.Request) {
		req := protocol.MatchRequest{Pair: r.URL.Query().Get("pair")}
		if e := st.gatePair(req); e != nil {
			WriteEnvelope(w, e)
			return
		}
		resp, err := st.s.ServeMatch(r.Context(), req)
		if err != nil {
			writeLegacyError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /match/{type}", func(w http.ResponseWriter, r *http.Request) {
		req := protocol.MatchRequest{Pair: r.URL.Query().Get("pair"), Type: r.PathValue("type")}
		if e := st.gatePair(req); e != nil {
			WriteEnvelope(w, e)
			return
		}
		resp, err := st.s.ServeMatch(r.Context(), req)
		if err != nil {
			writeLegacyError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, resp.Results[0])
	})
	mux.HandleFunc("GET /match/stream", func(w http.ResponseWriter, r *http.Request) {
		req := protocol.MatchRequest{Pair: r.URL.Query().Get("pair")}
		if e := st.gatePair(req); e != nil {
			WriteEnvelope(w, e)
			return
		}
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		lines, err := st.s.ServeStream(ctx, req)
		if err != nil {
			writeLegacyError(w, err)
			return
		}
		st.streamNDJSON(w, cancel, lines, func(line protocol.StreamLine) (any, bool) {
			switch {
			case line.Type != nil:
				return line.Type, true
			case line.Error != nil:
				return errorJSON{Error: line.Error.Message}, true
			}
			return nil, false // v1 carries a final summary; the legacy stream never did
		})
	})
	mux.HandleFunc("GET /matchall", func(w http.ResponseWriter, r *http.Request) {
		req, ok := matchAllShimRequest(w, r)
		if !ok {
			return
		}
		if e := st.gatePair(req); e != nil {
			WriteEnvelope(w, e)
			return
		}
		resp, err := st.s.ServeMatchAll(r.Context(), req)
		if err != nil {
			writeLegacyError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, legacyMatchAll(resp))
	})
	mux.HandleFunc("GET /matchall/stream", func(w http.ResponseWriter, r *http.Request) {
		req, ok := matchAllShimRequest(w, r)
		if !ok {
			return
		}
		if e := st.gatePair(req); e != nil {
			WriteEnvelope(w, e)
			return
		}
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		lines, err := st.s.ServeStream(ctx, req)
		if err != nil {
			writeLegacyError(w, err)
			return
		}
		st.streamNDJSON(w, cancel, lines, func(line protocol.StreamLine) (any, bool) {
			out := MatchAllStreamLineJSON{Done: line.Done, Total: line.Total, Pair: line.Pair}
			if line.FinalAll != nil {
				out.Final = legacyMatchAll(line.FinalAll)
			}
			return out, true
		})
	})
	mux.HandleFunc("POST /session/invalidate", func(w http.ResponseWriter, r *http.Request) {
		lang, err := protocol.InvalidateRequest{Lang: r.URL.Query().Get("lang")}.Validate()
		if err != nil {
			writeLegacyError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, invalidateJSON{Dropped: st.s.Invalidate(lang)})
	})
	// Mutating over GET was never supported; reject it explicitly with
	// the structured 405 envelope instead of net/http's plain-text one.
	mux.HandleFunc("GET /session/invalidate", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", http.MethodPost)
		WriteEnvelope(w, protocol.Errorf(protocol.CodeMethodNotAllowed,
			"method GET not allowed on /session/invalidate (use POST)"))
	})
}

// matchAllShimRequest translates /matchall query parameters. Workers is
// parsed here because its historical error body quotes the raw string;
// mode and hub flow through the shared validator, whose messages are
// identical to the legacy ones.
func matchAllShimRequest(w http.ResponseWriter, r *http.Request) (protocol.MatchRequest, bool) {
	req := protocol.MatchRequest{All: true, Mode: r.URL.Query().Get("mode"), Hub: r.URL.Query().Get("hub")}
	if raw := r.URL.Query().Get("workers"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			WriteJSON(w, http.StatusBadRequest, errorJSON{Error: "invalid workers " + strconv.Quote(raw)})
			return protocol.MatchRequest{}, false
		}
		req.Workers = n
	}
	return req, true
}

// legacyMatchAll freezes a v1 MatchAllResponse into the legacy shape.
func legacyMatchAll(resp *protocol.MatchAllResponse) *MatchAllResponseJSON {
	return &MatchAllResponseJSON{
		Mode:      resp.Mode,
		Hub:       resp.Hub,
		Pairs:     resp.Pairs,
		Clusters:  resp.Clusters,
		Conflicts: resp.Conflicts,
		ElapsedMS: resp.ElapsedMS,
		Cache:     resp.Cache,
	}
}

// writeLegacyError renders a protocol error in the legacy free-text
// shape with the legacy status mapping (cancellation as 503, validation
// as 400, unknown types as 404, everything else 500).
func writeLegacyError(w http.ResponseWriter, err error) {
	e := protocol.FromErr(err)
	status := http.StatusInternalServerError
	switch e.Code {
	case protocol.CodeInvalidArgument:
		status = http.StatusBadRequest
	case protocol.CodeNotFound:
		status = http.StatusNotFound
	case protocol.CodeCanceled, protocol.CodeDeadlineExceeded:
		status = http.StatusServiceUnavailable
	}
	WriteJSON(w, status, errorJSON{Error: e.Message})
}
