package service

import (
	"context"
	"encoding/json"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
	"repro/internal/wiki"
)

// The composable middleware stack wrapping the wikimatchd mux. Order
// (outermost first): request ID → access log → metrics → panic
// recovery → concurrency limiter → per-request timeout → body limit.
// The stack is exposed standalone as WrapMiddleware so its behaviour is
// testable around arbitrary handlers, and NewHandler applies it around
// the protocol routes.

// HandlerConfig tunes the HTTP stack. The zero value is usable;
// DefaultHandlerConfig documents the defaults NewHandler starts from.
type HandlerConfig struct {
	// MaxConcurrent bounds concurrently served requests; excess load is
	// shed with 429 + Retry-After. 0 means unlimited. Health and metrics
	// probes are exempt.
	MaxConcurrent int
	// MaxStreams separately bounds concurrently served NDJSON streams —
	// each stream can pin buffered results for its whole run, so streams
	// get a tighter cap than unary requests. 0 means unlimited.
	MaxStreams int
	// RequestTimeout bounds each non-streaming request's context.
	// 0 means no timeout. Streaming endpoints are exempt (a long batch
	// stream is healthy, not stuck).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request body size; larger bodies get a 413
	// envelope. 0 means the 1 MiB default.
	MaxBodyBytes int64
	// StreamWriteTimeout bounds each NDJSON line write, so a stalled
	// reader frees the stream's resources instead of pinning them. 0
	// means the 1 minute default; negative disables the deadline.
	StreamWriteTimeout time.Duration
	// Logger receives one access-log line per request when non-nil.
	Logger *log.Logger
	// PairOwned, when non-nil, marks this replica as one shard of a
	// fleet: matching requests for pairs it reports false for are
	// rejected with a retryable unavailable envelope instead of being
	// computed cold, and all-pairs requests are refused (the router
	// scatter-gathers them). Nil — the default — serves every pair.
	PairOwned func(wiki.LanguagePair) bool
	// ShardLabel names this replica in shard-gate error messages,
	// e.g. "shard 1/3". Only used when PairOwned is set.
	ShardLabel string
}

// DefaultHandlerConfig is the production default stack configuration.
func DefaultHandlerConfig() HandlerConfig {
	return HandlerConfig{
		MaxConcurrent:      64,
		MaxStreams:         16,
		RequestTimeout:     5 * time.Minute,
		MaxBodyBytes:       1 << 20,
		StreamWriteTimeout: time.Minute,
	}
}

func (c HandlerConfig) withDefaults() HandlerConfig {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.StreamWriteTimeout == 0 {
		c.StreamWriteTimeout = time.Minute
	}
	return c
}

// HandlerOption adjusts the HTTP stack NewHandler builds.
type HandlerOption func(*HandlerConfig)

// WithMaxConcurrent bounds concurrently served requests (0 = unlimited).
func WithMaxConcurrent(n int) HandlerOption {
	return func(c *HandlerConfig) { c.MaxConcurrent = n }
}

// WithMaxStreams bounds concurrently served NDJSON streams (0 = unlimited).
func WithMaxStreams(n int) HandlerOption {
	return func(c *HandlerConfig) { c.MaxStreams = n }
}

// WithRequestTimeout bounds each non-streaming request (0 = none).
func WithRequestTimeout(d time.Duration) HandlerOption {
	return func(c *HandlerConfig) { c.RequestTimeout = d }
}

// WithMaxBodyBytes caps request body size.
func WithMaxBodyBytes(n int64) HandlerOption {
	return func(c *HandlerConfig) { c.MaxBodyBytes = n }
}

// WithStreamWriteTimeout bounds each NDJSON line write (negative =
// no deadline).
func WithStreamWriteTimeout(d time.Duration) HandlerOption {
	return func(c *HandlerConfig) { c.StreamWriteTimeout = d }
}

// WithAccessLog enables per-request access logging.
func WithAccessLog(l *log.Logger) HandlerOption {
	return func(c *HandlerConfig) { c.Logger = l }
}

// WithShardGate marks this replica as one shard of a fleet: matching
// requests for pairs owned reports false for are rejected with a
// retryable unavailable envelope, and all-pairs requests are refused —
// the router owns the scatter-gather. label names the replica in the
// rejection messages (e.g. "shard 1/3").
func WithShardGate(label string, owned func(wiki.LanguagePair) bool) HandlerOption {
	return func(c *HandlerConfig) {
		c.ShardLabel = label
		c.PairOwned = owned
	}
}

// RequestID returns the request's ID ("" outside the middleware stack).
// The ID travels in the context under a protocol-package key so the
// client SDK can forward it as the outbound X-Request-Id header — one
// user request stays traceable through a router to the shard that
// served it.
func RequestID(ctx context.Context) string {
	return protocol.RequestIDFromContext(ctx)
}

// serverMetrics aggregates the stack's counters. Totals and gauges are
// atomics; the keyed breakdowns take a mutex on the (cheap) completion
// path.
type serverMetrics struct {
	requestsTotal atomic.Uint64
	inFlight      atomic.Int64
	shed          atomic.Uint64
	panics        atomic.Uint64

	mu       sync.Mutex
	byStatus map[int]uint64
	byRoute  map[string]uint64
}

// maxRoutes caps the per-route breakdown's cardinality; past it, new
// paths land in the "other" bucket so an URL-spraying client cannot
// grow the map unboundedly.
const maxRoutes = 64

func newServerMetrics() *serverMetrics {
	return &serverMetrics{byStatus: make(map[int]uint64), byRoute: make(map[string]uint64)}
}

func (m *serverMetrics) record(route string, status int) {
	if status == 0 {
		status = http.StatusOK // handler wrote nothing: net/http sends 200
	}
	m.requestsTotal.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byStatus[status]++
	if _, ok := m.byRoute[route]; !ok && len(m.byRoute) >= maxRoutes {
		route = "other"
	}
	m.byRoute[route]++
}

func (m *serverMetrics) snapshot() protocol.Metrics {
	out := protocol.Metrics{
		RequestsTotal: m.requestsTotal.Load(),
		InFlight:      m.inFlight.Load(),
		Shed:          m.shed.Load(),
		Panics:        m.panics.Load(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.byStatus) > 0 {
		out.ByStatus = make(map[string]uint64, len(m.byStatus))
		for status, n := range m.byStatus {
			out.ByStatus[strconv.Itoa(status)] = n
		}
	}
	if len(m.byRoute) > 0 {
		out.ByRoute = make(map[string]uint64, len(m.byRoute))
		for route, n := range m.byRoute {
			out.ByRoute[route] = n
		}
	}
	return out
}

// routeLabel normalizes a request to a bounded metrics key: the
// per-type legacy route collapses to one label and paths outside the
// registered route set share an "other" bucket, so an URL-spraying
// client cannot poison the per-route table. The maxRoutes cap remains
// as a backstop. The set mirrors registerV1/registerShims.
func routeLabel(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/match/") && path != "/match/stream" {
		path = "/match/{type}"
	}
	switch path {
	case "/v1/match", "/v1/matchall", "/v1/stream", "/v1/audit", "/v1/audit/stream",
		"/v1/corpus", "/v1/invalidate", "/v1/healthz", "/v1/metrics",
		"/match", "/match/{type}", "/match/stream", "/matchall", "/matchall/stream",
		"/corpus/stats", "/healthz", "/session/invalidate":
		return r.Method + " " + path
	}
	return "other"
}

// statusWriter records the response status for logging and metrics
// while forwarding Flush and per-response controls (Unwrap) to the
// underlying writer — NDJSON streaming must keep working through it.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status, w.wrote = status, true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the real connection for
// SetWriteDeadline.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// controlPlanePath reports probe endpoints the limiter must never shed:
// an overloaded server still answers health checks.
func controlPlanePath(path string) bool {
	switch path {
	case "/v1/healthz", "/v1/metrics", "/healthz":
		return true
	}
	return false
}

// streamPath reports NDJSON endpoints, which are exempt from the
// per-request timeout and subject to the stream cap instead.
func streamPath(path string) bool {
	switch path {
	case "/v1/stream", "/v1/audit/stream", "/match/stream", "/matchall/stream":
		return true
	}
	return false
}

// WrapMiddleware wraps any handler in the v1 middleware stack and
// returns it together with a snapshot function over the stack's live
// counters (the same data /v1/metrics serves when NewHandler builds
// the stack).
func WrapMiddleware(next http.Handler, opts ...HandlerOption) (http.Handler, func() protocol.Metrics) {
	cfg := DefaultHandlerConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	h, metrics := wrapMiddleware(next, cfg.withDefaults())
	return h, metrics.snapshot
}

func wrapMiddleware(next http.Handler, cfg HandlerConfig) (http.Handler, *serverMetrics) {
	metrics := newServerMetrics()
	var reqCounter atomic.Uint64

	var sem, streamSem chan struct{}
	if cfg.MaxConcurrent > 0 {
		sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if cfg.MaxStreams > 0 {
		streamSem = make(chan struct{}, cfg.MaxStreams)
	}

	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Request ID: echo a sane client-supplied one, mint otherwise.
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = "req-" + strconv.FormatUint(reqCounter.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		ctx := protocol.ContextWithRequestID(r.Context(), id)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		metrics.inFlight.Add(1)
		defer func() {
			rec := recover()
			midResponse := rec != nil && sw.wrote
			metrics.inFlight.Add(-1)
			// Panic recovery: answer with a structured 500 when the
			// response has not started, and always keep counting.
			if rec != nil {
				metrics.panics.Add(1)
				if cfg.Logger != nil {
					cfg.Logger.Printf("panic serving %s %s (request %s): %v\n%s",
						r.Method, r.URL.Path, id, rec, debug.Stack())
				}
				if !midResponse {
					WriteEnvelope(sw, protocol.Errorf(protocol.CodeInternal, "internal server error").WithDetail("requestId", id))
				}
			}
			metrics.record(routeLabel(r), sw.status)
			if cfg.Logger != nil {
				cfg.Logger.Printf("%s %s %d %s id=%s", r.Method, r.URL.RequestURI(), sw.status,
					time.Since(start).Round(time.Microsecond), id)
			}
			if midResponse {
				// The panic hit mid-response: the body is truncated, and
				// returning normally would let net/http finalize it so the
				// client mistakes it for complete. Abort the connection
				// instead, the way the stdlib's own panic path does.
				panic(http.ErrAbortHandler)
			}
		}()

		if !controlPlanePath(r.URL.Path) {
			// Load shedding: non-blocking admission, 429 + Retry-After on a
			// full server. Streams additionally take a stream slot.
			if sem != nil {
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				default:
					shed(sw, metrics)
					return
				}
			}
			if streamSem != nil && streamPath(r.URL.Path) {
				select {
				case streamSem <- struct{}{}:
					defer func() { <-streamSem }()
				default:
					shed(sw, metrics)
					return
				}
			}
			if cfg.RequestTimeout > 0 && !streamPath(r.URL.Path) {
				tctx, cancel := context.WithTimeout(r.Context(), cfg.RequestTimeout)
				defer cancel()
				r = r.WithContext(tctx)
			}
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, cfg.MaxBodyBytes)
		}
		next.ServeHTTP(sw, r)
	})
	return h, metrics
}

// shed answers a request the limiter could not admit.
func shed(w http.ResponseWriter, m *serverMetrics) {
	m.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	WriteEnvelope(w, protocol.Errorf(protocol.CodeOverloaded, "server is at its concurrency limit; retry shortly"))
}

// validRequestID accepts short printable ASCII tokens, rejecting
// anything that could corrupt logs or headers. The check itself lives
// in the protocol package, shared with the client SDK's header
// forwarding.
func validRequestID(id string) bool { return protocol.ValidRequestID(id) }

// WriteEnvelope writes a structured protocol error with its transport
// status.
func WriteEnvelope(w http.ResponseWriter, e *protocol.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.HTTPStatus())
	_ = json.NewEncoder(w).Encode(protocol.ErrorEnvelope{Error: e})
}
