package service

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/protocol"
	"repro/internal/wiki"
)

func intp(v int) *int { return &v }

func boolp(v bool) *bool { return &v }

// TestServeMatchScoringOverrides sends the same request through the
// default (pruned) path, the exactScore override, and the
// pruning-disabled candidates override, against one warm session. The
// responses must be byte-identical — the overrides change only how the
// scores are computed — and every override run must hit the session's
// artifact cache rather than rebuild.
func TestServeMatchScoringOverrides(t *testing.T) {
	s := New(smallCorpus(t))
	ctx := context.Background()
	base := protocol.MatchRequest{Pair: "pt-en"}
	warm, err := s.ServeMatch(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	misses := s.CacheStats().Misses
	strip := func(r *protocol.MatchResponse) []byte {
		cp := *r
		cp.ElapsedMS = 0
		cp.Cache = protocol.CacheStats{}
		for i := range cp.Results {
			cp.Results[i].ElapsedMS = 0
		}
		b, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := strip(warm)
	for _, req := range []protocol.MatchRequest{
		{Pair: "pt-en"},
		{Pair: "pt-en", ExactScore: boolp(true)},
		{Pair: "pt-en", Candidates: intp(-1)},
		{Pair: "pt-en", Candidates: intp(1)},
		{Pair: "pt-en", Candidates: intp(64), ExactScore: boolp(false)},
	} {
		resp, err := s.ServeMatch(ctx, req)
		if err != nil {
			t.Fatalf("ServeMatch(%+v): %v", req, err)
		}
		if got := strip(resp); string(got) != string(want) {
			t.Fatalf("response for %+v differs from the pruned default", req)
		}
	}
	if got := s.CacheStats().Misses; got != misses {
		t.Fatalf("scoring overrides rebuilt artifacts: misses %d → %d", misses, got)
	}
}

// TestSessionScoringOptions checks the new functional options reach the
// matcher configuration.
func TestSessionScoringOptions(t *testing.T) {
	cfg := New(smallCorpus(t), WithCandidates(-1), WithExactScore(true)).Config()
	if cfg.Candidates != -1 || !cfg.ExactScore {
		t.Errorf("options not applied: %+v", cfg)
	}
}

// TestServeMatchSingleTypeOverride exercises the single-type path with a
// scoring override, which shares matcherFor with the pair path.
func TestServeMatchSingleTypeOverride(t *testing.T) {
	s := New(smallCorpus(t))
	ctx := context.Background()
	pruned, err := s.ServeMatch(ctx, protocol.MatchRequest{Pair: wiki.PtEn.String(), Type: "filme"})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := s.ServeMatch(ctx, protocol.MatchRequest{
		Pair: wiki.PtEn.String(), Type: "filme", ExactScore: boolp(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned.Results[0].ElapsedMS = 0
	ex.Results[0].ElapsedMS = 0
	a, _ := json.Marshal(pruned.Results)
	b, _ := json.Marshal(ex.Results)
	if string(a) != string(b) {
		t.Fatal("single-type exactScore override changed the result")
	}
}
