package service

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/artifact"
	"repro/internal/protocol"
	"repro/internal/wiki"
)

// editableArticle finds an article of the given language and type that
// carries an infobox value the tests can edit.
func editableArticle(t *testing.T, c *wiki.Corpus, lang wiki.Language, typ string) *wiki.Article {
	t.Helper()
	for _, a := range c.OfType(lang, typ) {
		if a.Infobox != nil && a.Infobox.Len() > 0 {
			return a
		}
	}
	t.Fatalf("no editable %s article of type %q", lang, typ)
	return nil
}

// TestApplyDeltaValueEditRebuildsOnlyDirtyType is the acceptance gate
// for corpus deltas: after a value-only edit of one article, a warm
// re-match rebuilds only that article's type artifacts. Every untouched
// type node — and the pair node, since values feed neither the
// dictionary nor the alignment — must serve from cache, asserted
// through the engine's per-node build/hit counters.
func TestApplyDeltaValueEditRebuildsOnlyDirtyType(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	types, err := s.Types(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if len(types) < 2 {
		t.Fatalf("need at least 2 aligned types to tell dirty from clean, have %d", len(types))
	}
	dirty := types[0]

	ed := editableArticle(t, c, wiki.Portuguese, dirty[0]).Clone()
	ed.Infobox.Attrs[0].Text += " (editado)"
	res, err := s.ApplyDelta(ctx, wiki.Delta{Upserts: []*wiki.Article{ed}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}

	if res.Added != 0 || res.Updated != 1 || res.Removed != 0 {
		t.Errorf("counts = %d/%d/%d, want 0/1/0", res.Added, res.Updated, res.Removed)
	}
	if len(res.Languages) != 1 || res.Languages[0] != wiki.Portuguese {
		t.Errorf("Languages = %v, want [pt]", res.Languages)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Pair != wiki.PtEn {
		t.Fatalf("affected pairs = %+v, want exactly pt-en", res.Pairs)
	}
	pe := res.Pairs[0]
	if pe.Rebuilt {
		t.Error("value-only edit reported the pair as rebuilt")
	}
	if len(pe.DroppedTypes) != 1 || pe.DroppedTypes[0] != dirty {
		t.Errorf("DroppedTypes = %v, want exactly %v", pe.DroppedTypes, dirty)
	}
	if res.DroppedPairs != 0 || res.DroppedTypes != 1 {
		t.Errorf("dropped = %d pairs / %d types, want 0 / 1", res.DroppedPairs, res.DroppedTypes)
	}
	if want := s.Corpus().Fingerprint(); res.Fingerprint != want {
		t.Errorf("Fingerprint = %x, want %x", res.Fingerprint, want)
	}
	if got, _ := s.Corpus().Get(wiki.Portuguese, ed.Title); got.Infobox.Attrs[0].Text != ed.Infobox.Attrs[0].Text {
		t.Error("session corpus does not carry the edit")
	}

	// Warm re-match: byte-identical to a cold session over the edited
	// corpus — the cache kept nothing stale.
	post, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := New(s.Corpus()).Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if flattenResult(post) != flattenResult(coldRes) {
		t.Error("post-delta warm match differs from a cold session on the edited corpus")
	}

	// Engine stats: exactly the dirty type rebuilt, everything else hit.
	for _, tp := range types {
		ns := s.eng.NodeStats(artifact.TypeKey(wiki.PtEn, tp[0], tp[1]))
		if tp == dirty {
			if ns.Builds != 2 {
				t.Errorf("dirty type %v: builds = %d, want 2 (cold + post-delta)", tp, ns.Builds)
			}
		} else {
			if ns.Builds != 1 {
				t.Errorf("untouched type %v: builds = %d, want 1 — delta rebuilt a clean node", tp, ns.Builds)
			}
			if ns.Hits == 0 {
				t.Errorf("untouched type %v: no cache hit on the warm re-match", tp)
			}
		}
	}
	pns := s.eng.NodeStats(artifact.PairKey(wiki.PtEn))
	if pns.Builds != 1 {
		t.Errorf("pair node builds = %d, want 1 — value edit must keep the pair artifacts", pns.Builds)
	}
	if pns.Hits == 0 {
		t.Error("pair node: no cache hit on the warm re-match")
	}
}

// TestApplyDeltaCrossLinkChangeReseedsPair: an added article with a
// cross-language link changes the translation dictionary, so the pair
// node must be reseeded (with the diff's fresh build) and the whole type
// subtree dropped — while the other language pair stays untouched.
func TestApplyDeltaCrossLinkChangeReseedsPair(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		if _, err := s.Match(ctx, pair); err != nil {
			t.Fatal(err)
		}
	}
	types, err := s.Types(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	viMissesBefore := s.eng.NodeStats(artifact.PairKey(wiki.VnEn))

	enTitle := c.Articles(wiki.English)[0].Title
	add := &wiki.Article{
		Language:   wiki.Portuguese,
		Title:      "Artigo Novo do Delta",
		Type:       types[0][0],
		Infobox:    &wiki.Infobox{Template: "Infobox " + types[0][0], Attrs: []wiki.AttributeValue{{Name: "nome", Text: "Artigo Novo"}}},
		CrossLinks: map[wiki.Language]string{wiki.English: enTitle},
	}
	res, err := s.ApplyDelta(ctx, wiki.Delta{Upserts: []*wiki.Article{add}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if res.Added != 1 || res.Updated != 0 || res.Removed != 0 {
		t.Errorf("counts = %d/%d/%d, want 1/0/0", res.Added, res.Updated, res.Removed)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Pair != wiki.PtEn || !res.Pairs[0].Rebuilt {
		t.Fatalf("pairs = %+v, want pt-en rebuilt", res.Pairs)
	}
	if res.DroppedPairs != 1 {
		t.Errorf("DroppedPairs = %d, want 1", res.DroppedPairs)
	}
	if res.DroppedTypes != len(types) || len(res.Pairs[0].DroppedTypes) != len(types) {
		t.Errorf("DroppedTypes = %d (pair lists %d), want all %d under pt-en",
			res.DroppedTypes, len(res.Pairs[0].DroppedTypes), len(types))
	}

	// The reseeded pair node serves without a rebuild; vi-en untouched.
	post, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := New(s.Corpus()).Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if flattenResult(post) != flattenResult(coldRes) {
		t.Error("post-delta match differs from a cold session on the edited corpus")
	}
	pns := s.eng.NodeStats(artifact.PairKey(wiki.PtEn))
	if pns.Builds != 2 {
		t.Errorf("pt-en pair builds = %d, want 2 (cold + delta reseed)", pns.Builds)
	}
	if got := s.eng.NodeStats(artifact.PairKey(wiki.VnEn)); got.Builds != viMissesBefore.Builds {
		t.Errorf("vi-en pair rebuilt by a pt-only delta: builds %d → %d", viMissesBefore.Builds, got.Builds)
	}
	if st := s.CacheStats(); st.PairEntries != 2 {
		t.Errorf("pair entries = %d, want 2 (reseed must not shrink the cache)", st.PairEntries)
	}
}

// TestApplyDeltaRemoveCrossLinkedArticle: removing a cross-linked
// article must at minimum drop its type's artifacts (the pair node is
// additionally reseeded when the removal changed the dictionary or the
// alignment), and the session keeps answering with results equal to a
// cold session on the smaller corpus.
func TestApplyDeltaRemoveCrossLinkedArticle(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	victim := c.Pairs(wiki.PtEn)[0].A
	res, err := s.ApplyDelta(ctx, wiki.Delta{Removes: []wiki.Key{victim.Key()}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if res.Removed != 1 {
		t.Errorf("Removed = %d, want 1", res.Removed)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Pair != wiki.PtEn {
		t.Fatalf("pairs = %+v, want exactly pt-en", res.Pairs)
	}
	dirtied := false
	for _, tp := range res.Pairs[0].DroppedTypes {
		if tp[0] == victim.Type {
			dirtied = true
		}
	}
	if !dirtied {
		t.Errorf("victim's type %q not among dropped types %v", victim.Type, res.Pairs[0].DroppedTypes)
	}
	if _, ok := s.Corpus().Get(victim.Language, victim.Title); ok {
		t.Error("removed article still present in the session corpus")
	}
	post, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := New(s.Corpus()).Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if flattenResult(post) != flattenResult(coldRes) {
		t.Error("post-removal match differs from a cold session on the edited corpus")
	}
}

// TestApplyDeltaDropsNodesCachedDuringDiff: a pair cached for the first
// time while ApplyDelta's diff phase runs was built from the pre-delta
// corpus and has no diff plan. The commit must still drop it — a node
// slipping through that window would survive the epoch bump and serve
// stale artifacts against the post-delta corpus indefinitely.
func TestApplyDeltaDropsNodesCachedDuringDiff(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	types, err := New(c).Types(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}

	// The delta's diff phase sees an empty cache (no plans); the hook then
	// caches pt-en from the pre-delta corpus inside the commit window.
	var cachedTypes int
	s.deltaTestHook = func() {
		if _, err := s.Match(ctx, wiki.PtEn); err != nil {
			t.Errorf("racing match: %v", err)
		}
		cachedTypes = s.CacheStats().TypeEntries
	}
	ed := editableArticle(t, c, wiki.Portuguese, types[0][0]).Clone()
	ed.Infobox.Attrs[0].Text += " (editado)"
	res, err := s.ApplyDelta(ctx, wiki.Delta{Upserts: []*wiki.Article{ed}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if cachedTypes == 0 {
		t.Fatal("racing match cached no type nodes; the window was not exercised")
	}

	// The racing pair had no plan, so it carries no per-pair effect — but
	// every node it cached must be gone from the post-delta graph.
	if len(res.Pairs) != 0 {
		t.Errorf("res.Pairs = %+v, want empty (pair was not cached at diff time)", res.Pairs)
	}
	if res.DroppedPairs != 1 || res.DroppedTypes != cachedTypes {
		t.Errorf("dropped = %d pairs / %d types, want 1 / %d (the racing fill)",
			res.DroppedPairs, res.DroppedTypes, cachedTypes)
	}
	if st := s.CacheStats(); st.PairEntries != 0 || st.TypeEntries != 0 {
		t.Errorf("post-delta cache holds %d pairs / %d types, want empty", st.PairEntries, st.TypeEntries)
	}

	// A warm re-match rebuilds from the edited corpus, byte-identical to
	// a cold session over it.
	post, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := New(s.Corpus()).Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if flattenResult(post) != flattenResult(coldRes) {
		t.Error("post-delta match differs from a cold session on the edited corpus")
	}
	if ns := s.eng.NodeStats(artifact.PairKey(wiki.PtEn)); ns.Builds != 2 {
		t.Errorf("pair builds = %d, want 2 (racing fill + post-delta rebuild)", ns.Builds)
	}
}

// TestServeDeltaBuildFailureIsNotClientError: a diff-phase build failure
// inside ApplyDelta is a server-side problem and must not surface as
// invalid_argument.
func TestServeDeltaBuildFailureIsNotClientError(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	// A pre-cancelled context passes request and corpus validation, so
	// the failure comes from the diff-phase build, not the client's input.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	_, err := s.ServeDelta(cancelled, protocol.DeltaRequest{Upserts: []protocol.DeltaUpsert{{
		Lang:     "pt",
		Title:    "Página Nova",
		Wikitext: "{{Infobox filme | nome = Página Nova}}",
	}}})
	if err == nil {
		t.Fatal("cancelled delta succeeded")
	}
	if pe := protocol.FromErr(err); pe.Code != protocol.CodeCanceled {
		t.Errorf("code = %q, want %q (server-side failure blamed on the client)", pe.Code, protocol.CodeCanceled)
	}
}

// TestApplyDeltaColdCache: a delta against a session with an empty
// cache touches no graph nodes and simply swaps the corpus.
func TestApplyDeltaColdCache(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ed := c.Articles(wiki.Portuguese)[0].Clone()
	res, err := s.ApplyDelta(context.Background(), wiki.Delta{Upserts: []*wiki.Article{ed}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 || res.DroppedPairs != 0 || res.DroppedTypes != 0 {
		t.Errorf("cold-cache delta reported invalidations: %+v", res)
	}
	if s.Corpus() == c {
		t.Error("corpus not swapped")
	}
}

// TestApplyDeltaErrorsLeaveSessionUntouched: a rejected delta must not
// swap the corpus or touch the cache.
func TestApplyDeltaErrorsLeaveSessionUntouched(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	before := s.CacheStats()

	_, err := s.ApplyDelta(ctx, wiki.Delta{Removes: []wiki.Key{{Language: wiki.Portuguese, Title: "Não Existe"}}})
	if !errors.Is(err, wiki.ErrNoSuchArticle) {
		t.Errorf("remove missing: err = %v, want ErrNoSuchArticle", err)
	}
	if _, err := s.ApplyDelta(ctx, wiki.Delta{}); err == nil {
		t.Error("empty delta accepted")
	}
	if s.Corpus() != c {
		t.Error("failed delta swapped the corpus")
	}
	if after := s.CacheStats(); after != before {
		t.Errorf("failed delta changed cache stats: %+v → %+v", before, after)
	}

	// A delta cancelled during the diff phase leaves everything as it was.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	ed := c.Articles(wiki.Portuguese)[0].Clone()
	if _, err := s.ApplyDelta(cancelled, wiki.Delta{Upserts: []*wiki.Article{ed}}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled delta: err = %v, want context.Canceled", err)
	}
	if s.Corpus() != c {
		t.Error("cancelled delta swapped the corpus")
	}
	if after := s.CacheStats(); after != before {
		t.Errorf("cancelled delta changed cache stats: %+v → %+v", before, after)
	}
}

// TestServeDelta covers the typed wire path: success shape, error code
// classification, and the fingerprint/language rendering.
func TestServeDelta(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()

	resp, err := s.ServeDelta(ctx, protocol.DeltaRequest{Upserts: []protocol.DeltaUpsert{{
		Lang:     "pt",
		Title:    "Página Nova",
		Wikitext: "{{Infobox filme | nome = Página Nova}} [[en:New Page]]",
	}}})
	if err != nil {
		t.Fatalf("ServeDelta: %v", err)
	}
	if resp.Added != 1 {
		t.Errorf("Added = %d, want 1", resp.Added)
	}
	if want := fmt.Sprintf("%016x", s.Corpus().Fingerprint()); resp.Fingerprint != want {
		t.Errorf("Fingerprint = %q, want %q", resp.Fingerprint, want)
	}
	if len(resp.Languages) != 1 || resp.Languages[0] != "pt" {
		t.Errorf("Languages = %v, want [pt]", resp.Languages)
	}
	if resp.Pairs == nil {
		t.Error("Pairs must render as [], not null")
	}
	if a, ok := s.Corpus().Get(wiki.Portuguese, "Página Nova"); !ok || a.Type != "filme" {
		t.Errorf("upserted wikitext not parsed into the corpus: %+v", a)
	}

	cases := []struct {
		name string
		req  protocol.DeltaRequest
		code string
	}{
		{"empty", protocol.DeltaRequest{}, protocol.CodeInvalidArgument},
		{"bad lang", protocol.DeltaRequest{Upserts: []protocol.DeltaUpsert{{Lang: "XX", Title: "T"}}}, protocol.CodeInvalidArgument},
		{"empty title", protocol.DeltaRequest{Upserts: []protocol.DeltaUpsert{{Lang: "pt", Title: "  "}}}, protocol.CodeInvalidArgument},
		{"bad wikitext", protocol.DeltaRequest{Upserts: []protocol.DeltaUpsert{{Lang: "pt", Title: "T", Wikitext: "{{Infobox filme | nome = x"}}}, protocol.CodeInvalidArgument},
		{"remove missing", protocol.DeltaRequest{Removes: []protocol.DeltaRef{{Lang: "pt", Title: "Não Existe"}}}, protocol.CodeNotFound},
	}
	for _, tc := range cases {
		_, err := s.ServeDelta(ctx, tc.req)
		pe := protocol.FromErr(err)
		if err == nil || pe.Code != tc.code {
			t.Errorf("%s: err = %v (code %q), want code %q", tc.name, err, pe.Code, tc.code)
		}
	}
}
