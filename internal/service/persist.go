package service

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wiki"
)

// Save serializes the session's completed artifact cache — per-pair
// dictionaries and entity-type alignments, per-type similarity
// workspaces and LSI models — as a versioned snapshot keyed by the
// corpus fingerprint. In-flight and failed builds are skipped, so Save
// is safe to call at any time on a live session; what lands in the
// snapshot is exactly what a restored session will serve. Section
// content and order are canonical (the same cache contents always
// produce the same section bytes); only the header's creation timestamp
// varies between saves.
//
// Save streams to w; callers persisting to disk should wrap it in
// store.WriteFile for an atomic temp-file-and-rename write.
func (s *Session) Save(w io.Writer) error {
	snap := &store.Snapshot{
		Fingerprint: s.corpus.Fingerprint(),
		CreatedAt:   time.Now(),
		Config:      s.cfg,
	}

	// Collect completed entries under the lock; encoding happens after.
	s.mu.Lock()
	for pair, e := range s.pairArts {
		if !entryDone(e.done) || e.err != nil {
			continue
		}
		snap.Pairs = append(snap.Pairs, store.PairArtifacts{
			Pair:  pair,
			Types: e.types,
			Dict:  e.dict,
		})
	}
	for key, e := range s.typeArts {
		if !entryDone(e.done) || e.err != nil {
			continue
		}
		snap.Types = append(snap.Types, store.TypeArtifacts{
			Pair:  key.pair,
			TypeA: key.typeA,
			TypeB: key.typeB,
			TD:    e.art.TD,
			LSI:   e.art.LSI,
		})
	}
	s.mu.Unlock()

	// store.Write sorts the sections into their canonical order itself.
	return store.Write(w, snap)
}

// entryDone reports whether a build's done channel is closed.
func entryDone(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Restore builds a warm session from a snapshot written by Save. The
// snapshot must match the corpus (by fingerprint) or Restore fails with
// a store.FingerprintError — stale artifacts are rejected at load, never
// served. The session's configuration starts from the snapshot's and
// applies opts on top; options that would change how the persisted
// artifacts were built (dictionary use, LSI rank, SVD path) are rejected
// with a store.ConfigMismatchError, while pure matching thresholds
// (Tsim, TLSI, TEg, the ablation switches of Algorithm 1) may differ
// freely since the alignment itself runs per request.
//
// Every artifact in the snapshot is seeded into the cache as a completed
// entry: the first Match against a restored pair counts as cache hits in
// CacheStats and returns a result byte-identical to a cold build's.
func Restore(c *wiki.Corpus, r io.Reader, opts ...Option) (*Session, error) {
	snap, err := store.Read(r)
	if err != nil {
		return nil, err
	}
	if fp := c.Fingerprint(); fp != snap.Fingerprint {
		return nil, &store.FingerprintError{Snapshot: snap.Fingerprint, Corpus: fp}
	}
	cfg := snap.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := checkArtifactConfig(snap.Config, cfg); err != nil {
		return nil, err
	}

	s := &Session{
		corpus:        c,
		cfg:           cfg,
		m:             core.NewMatcher(cfg),
		pairArts:      make(map[wiki.LanguagePair]*pairEntry, len(snap.Pairs)),
		typeArts:      make(map[typeKey]*typeEntry, len(snap.Types)),
		restoredPairs: len(snap.Pairs),
		restoredTypes: len(snap.Types),
		snapshotTime:  snap.CreatedAt,
	}
	for _, p := range snap.Pairs {
		e := &pairEntry{done: closedChan(), types: p.Types, dict: p.Dict}
		if e.types == nil {
			// Preserve the cache invariant: a nil alignment is the
			// compute-it sentinel, an empty one is a cached fact.
			e.types = [][2]string{}
		}
		s.pairArts[p.Pair] = e
	}
	for _, t := range snap.Types {
		key := typeKey{pair: t.Pair, typeA: t.TypeA, typeB: t.TypeB}
		s.typeArts[key] = &typeEntry{
			done: closedChan(),
			art:  &core.TypeArtifacts{TD: t.TD, LSI: t.LSI},
		}
	}
	return s, nil
}

// closedChan returns an already-closed channel: restored entries are
// born complete.
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// checkArtifactConfig rejects restores whose effective configuration
// diverges from the snapshot's on any field that shaped the persisted
// artifacts.
func checkArtifactConfig(built, want core.Config) error {
	switch {
	case built.NoDictionary != want.NoDictionary:
		return &store.ConfigMismatchError{Field: "NoDictionary"}
	case built.LSIRank != want.LSIRank:
		return &store.ConfigMismatchError{Field: "LSIRank"}
	case built.ExactSVD != want.ExactSVD:
		return &store.ConfigMismatchError{Field: "ExactSVD"}
	}
	return nil
}
