package service

import (
	"io"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wiki"
)

// Save serializes the session's completed artifact cache — per-pair
// dictionaries and entity-type alignments, per-type similarity
// workspaces and LSI models — as a versioned snapshot keyed by the
// corpus fingerprint. The engine exports only completed, successful
// nodes (in-flight and failed builds are skipped), so Save is safe to
// call at any time on a live session; what lands in the snapshot is
// exactly what a restored session will serve. Section content and
// order are canonical (the same cache contents always produce the same
// section bytes); only the header's creation timestamp varies between
// saves.
//
// Save streams to w; callers persisting to disk should wrap it in
// store.WriteFile for an atomic temp-file-and-rename write.
func (s *Session) Save(w io.Writer) error {
	// Hold deltaMu so the fingerprint and the exported graph belong to
	// the same corpus generation: ApplyDelta swaps both under this lock.
	s.deltaMu.Lock()
	st := s.state.Load()
	nodes := s.eng.Export()
	s.deltaMu.Unlock()

	snap := &store.Snapshot{
		Fingerprint: st.corpus.Fingerprint(),
		CreatedAt:   time.Now(),
		Config:      s.cfg,
	}
	for _, n := range nodes {
		switch n.Key.Kind {
		case artifact.KindPair:
			pd := n.Value.(*pairData)
			snap.Pairs = append(snap.Pairs, store.PairArtifacts{
				Pair:  n.Key.Pair,
				Types: pd.types,
				Dict:  pd.dict,
			})
		case artifact.KindType:
			art := n.Value.(*core.TypeArtifacts)
			snap.Types = append(snap.Types, store.TypeArtifacts{
				Pair:  n.Key.Pair,
				TypeA: n.Key.TypeA,
				TypeB: n.Key.TypeB,
				TD:    art.TD,
				LSI:   art.LSI,
			})
		}
	}

	// store.Write sorts the sections into their canonical order itself.
	return store.Write(w, snap)
}

// Restore builds a warm session from a snapshot written by Save. The
// snapshot must match the corpus (by fingerprint) or Restore fails with
// a store.FingerprintError — stale artifacts are rejected at load, never
// served. The session's configuration starts from the snapshot's and
// applies opts on top; options that would change how the persisted
// artifacts were built (dictionary use, LSI rank, SVD path) are rejected
// with a store.ConfigMismatchError, while pure matching thresholds
// (Tsim, TLSI, TEg, the ablation switches of Algorithm 1) may differ
// freely since the alignment itself runs per request.
//
// Every artifact in the snapshot is seeded into the engine as a
// completed node: the first Match against a restored pair counts as
// cache hits in CacheStats and returns a result byte-identical to a
// cold build's.
func Restore(c *wiki.Corpus, r io.Reader, opts ...Option) (*Session, error) {
	return RestoreFiltered(c, r, nil, opts...)
}

// RestoreFiltered is Restore for one shard of a fleet: artifacts whose
// language pair keep rejects are dropped before seeding, so the replica
// warm-loads only the slice of the snapshot it owns. The corpus — and
// therefore the fingerprint check — stays the full one: every shard
// serves the whole corpus's statistics and deltas, only the artifact
// cache is sharded. A nil keep restores everything.
func RestoreFiltered(c *wiki.Corpus, r io.Reader, keep func(wiki.LanguagePair) bool, opts ...Option) (*Session, error) {
	snap, err := store.Read(r)
	if err != nil {
		return nil, err
	}
	snap.FilterPairs(keep)
	if fp := c.Fingerprint(); fp != snap.Fingerprint {
		return nil, &store.FingerprintError{Snapshot: snap.Fingerprint, Corpus: fp}
	}
	cfg := snap.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := checkArtifactConfig(snap.Config, cfg); err != nil {
		return nil, err
	}

	s := &Session{
		cfg:          cfg,
		m:            core.NewMatcher(cfg),
		eng:          artifact.NewEngine(),
		snapshotTime: snap.CreatedAt,
	}
	s.state.Store(&sessionState{corpus: c})
	for _, p := range snap.Pairs {
		pd := &pairData{types: p.Types, dict: p.Dict}
		if pd.types == nil {
			// Preserve the cache invariant: a nil alignment is the
			// compute-it sentinel, an empty one is a cached fact.
			pd.types = [][2]string{}
		}
		s.eng.Seed(artifact.PairKey(p.Pair), pd)
	}
	for _, t := range snap.Types {
		s.eng.Seed(artifact.TypeKey(t.Pair, t.TypeA, t.TypeB),
			&core.TypeArtifacts{TD: t.TD, LSI: t.LSI})
	}
	return s, nil
}

// checkArtifactConfig rejects restores whose effective configuration
// diverges from the snapshot's on any field that shaped the persisted
// artifacts.
func checkArtifactConfig(built, want core.Config) error {
	switch {
	case built.NoDictionary != want.NoDictionary:
		return &store.ConfigMismatchError{Field: "NoDictionary"}
	case built.LSIRank != want.LSIRank:
		return &store.ConfigMismatchError{Field: "LSIRank"}
	case built.ExactSVD != want.ExactSVD:
		return &store.ConfigMismatchError{Field: "ExactSVD"}
	}
	return nil
}
