package service

import (
	"context"

	"repro/internal/multi"
)

// MatchAll runs the all-pairs multilingual batch over every language
// edition of the session's corpus: it plans the pair DAG (pivot through
// opts.Hub by default, or direct all-pairs), matches the pairs on a
// bounded worker pool, and merges the pairwise correspondences into
// cross-language attribute clusters. The batch runs over this session's
// artifact cache, so in pivot mode the hub-side artifacts are built once
// and shared across pairs, and a batch warms the cache for later
// pairwise calls (and vice versa). Per-pair failures are recorded in the
// result's outcomes without aborting the batch.
func (s *Session) MatchAll(ctx context.Context, opts multi.Options) (*multi.BatchResult, error) {
	return multi.Run(ctx, s, s.Corpus().Languages(), opts)
}

// MatchAllStream is MatchAll with per-pair progress: the channel
// delivers one update per finished pair (completion order) and a final
// update carrying the full BatchResult, then closes. The channel is
// buffered for the whole batch, so an abandoned consumer never strands
// the workers.
func (s *Session) MatchAllStream(ctx context.Context, opts multi.Options) (<-chan multi.Update, error) {
	return multi.Stream(ctx, s, s.Corpus().Languages(), opts)
}
