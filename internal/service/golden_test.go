package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Golden-file tests for every wikimatchd HTTP endpoint: each request's
// response body is normalized (timings zeroed, NDJSON lines sorted into
// a canonical order) and compared byte for byte against a recorded file
// under testdata/golden/. Regenerate with:
//
//	go test ./internal/service -run TestHTTPGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files from live responses")

// goldenCase drives one recorded request. Every case runs against a
// fresh session so cache counters in the response are deterministic.
type goldenCase struct {
	name       string
	method     string
	path       string
	wantStatus int
	ndjson     bool
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{name: "corpus_stats", method: http.MethodGet, path: "/corpus/stats", wantStatus: http.StatusOK},
		{name: "match_pt_en", method: http.MethodGet, path: "/match?pair=pt-en", wantStatus: http.StatusOK},
		{name: "match_vn_alias", method: http.MethodGet, path: "/match?pair=vn-en", wantStatus: http.StatusOK},
		{name: "match_type_filme", method: http.MethodGet, path: "/match/filme?pair=pt-en", wantStatus: http.StatusOK},
		{name: "match_stream_vi_en", method: http.MethodGet, path: "/match/stream?pair=vi-en", wantStatus: http.StatusOK, ndjson: true},
		{name: "matchall_pivot", method: http.MethodGet, path: "/matchall?mode=pivot", wantStatus: http.StatusOK},
		{name: "matchall_direct", method: http.MethodGet, path: "/matchall?mode=direct&workers=2", wantStatus: http.StatusOK},
		{name: "matchall_stream", method: http.MethodGet, path: "/matchall/stream?mode=pivot&workers=1", wantStatus: http.StatusOK, ndjson: true},
		{name: "invalidate_vi", method: http.MethodPost, path: "/session/invalidate?lang=vi", wantStatus: http.StatusOK},
		{name: "error_bad_pair", method: http.MethodGet, path: "/match?pair=bogus", wantStatus: http.StatusBadRequest},
		{name: "error_unknown_type", method: http.MethodGet, path: "/match/no-such-type?pair=pt-en", wantStatus: http.StatusNotFound},
		{name: "error_bad_mode", method: http.MethodGet, path: "/matchall?mode=sideways", wantStatus: http.StatusBadRequest},
		{name: "error_bad_hub", method: http.MethodGet, path: "/matchall?hub=EN", wantStatus: http.StatusBadRequest},
		{name: "error_bad_workers", method: http.MethodGet, path: "/matchall?workers=-1", wantStatus: http.StatusBadRequest},
		{name: "error_bad_lang", method: http.MethodPost, path: "/session/invalidate?lang=UPPER", wantStatus: http.StatusBadRequest},
	}
}

func TestHTTPGolden(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			// Fresh session per case: response cache counters depend only
			// on this one request.
			srv := httptest.NewServer(NewHandler(New(smallCorpus(t))))
			defer srv.Close()

			req, err := http.NewRequest(gc.method, srv.URL+gc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != gc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d", gc.method, gc.path, resp.StatusCode, gc.wantStatus)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}

			var normalized []byte
			if gc.ndjson {
				normalized = normalizeNDJSON(t, body)
			} else {
				normalized = normalizeJSON(t, body)
			}

			path := filepath.Join("testdata", "golden", gc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, normalized, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(normalized, want) {
				t.Errorf("response differs from %s\n--- got ---\n%s\n--- want ---\n%s",
					path, clip(normalized), clip(want))
			}
		})
	}
}

// normalizeJSON decodes, scrubs volatile fields, and re-encodes with
// stable indentation.
func normalizeJSON(t *testing.T, body []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("invalid JSON body: %v\n%s", err, clip(body))
	}
	scrubVolatile(v)
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// normalizeNDJSON scrubs each line and sorts the lines canonically —
// streams emit in completion order, which is scheduling-dependent.
func normalizeNDJSON(t *testing.T, body []byte) []byte {
	t.Helper()
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var v any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("invalid NDJSON line: %v\n%s", err, sc.Text())
		}
		scrubVolatile(v)
		out, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(out))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(lines, func(i, j int) bool { return ndjsonKey(lines[i]) < ndjsonKey(lines[j]) })
	return []byte(strings.Join(lines, "\n") + "\n")
}

// ndjsonKey orders stream lines deterministically: final/cluster lines
// last, pair/type progress lines by their identifying name. Handles
// both the legacy line shapes and v1's StreamLine.
func ndjsonKey(line string) string {
	var v map[string]any
	if err := json.Unmarshal([]byte(line), &v); err != nil {
		return "z" + line
	}
	for _, finalKey := range []string{"final", "finalMatch", "finalAll", "finalAudit"} {
		if _, ok := v[finalKey]; ok {
			return "y:final"
		}
	}
	if p, ok := v["pair"].(map[string]any); ok {
		return fmt.Sprintf("p:%v", p["pair"])
	}
	if f, ok := v["finding"].(map[string]any); ok {
		return fmt.Sprintf("x:%v:%v:%v", f["entity"], f["cluster"], f["kind"])
	}
	if tr, ok := v["type"].(map[string]any); ok {
		return fmt.Sprintf("t:%v", tr["typeA"])
	}
	if ta, ok := v["typeA"].(string); ok {
		return "t:" + ta
	}
	return "z" + line
}

// scrubVolatile zeroes timing fields in place, recursively. Everything
// else — correspondences, confidences, cluster shapes, cache counters —
// is deterministic for a fixed request against a fresh session and is
// deliberately kept under golden control.
func scrubVolatile(v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			switch k {
			case "elapsedMs", "uptimeSeconds", "ageSeconds":
				x[k] = 0.0
				continue
			case "createdAt":
				x[k] = "scrubbed"
				continue
			}
			scrubVolatile(val)
		}
	case []any:
		for _, val := range x {
			scrubVolatile(val)
		}
	}
}

func clip(b []byte) []byte {
	const max = 2000
	if len(b) > max {
		return append(append([]byte(nil), b[:max]...), []byte("…")...)
	}
	return b
}
