package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

// decodeEnvelope reads a structured v1 error body.
func decodeEnvelope(t *testing.T, body io.Reader) *protocol.Error {
	t.Helper()
	var env protocol.ErrorEnvelope
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error == nil {
		t.Fatal("envelope without error")
	}
	return env.Error
}

// TestConcurrencyLimiterUnderContention floods a limited stack with
// more requests than it admits: the admitted ones finish normally, the
// rest observe 429 envelopes with Retry-After, nothing deadlocks, and
// the metrics account for every request. Run under -race in CI.
func TestConcurrencyLimiterUnderContention(t *testing.T) {
	const limit = 2
	entered := make(chan struct{}, limit)
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h, metrics := WrapMiddleware(inner, WithMaxConcurrent(limit))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Fill the limiter with exactly `limit` in-flight requests.
	type result struct {
		status     int
		retryAfter string
		code       string
	}
	results := make(chan result, limit+3)
	get := func() {
		resp, err := http.Get(srv.URL + "/v1/match")
		if err != nil {
			t.Error(err)
			results <- result{}
			return
		}
		defer resp.Body.Close()
		res := result{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		if resp.StatusCode != http.StatusOK {
			var env protocol.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error != nil {
				res.code = env.Error.Code
			}
		}
		results <- res
	}
	var wg sync.WaitGroup
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); get() }()
	}
	for i := 0; i < limit; i++ {
		<-entered // both slots are now held
	}

	// Anything else must be shed immediately — not queued.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); get() }()
	}
	shedSeen := 0
	for i := 0; i < 3; i++ {
		res := <-results
		if res.status != http.StatusTooManyRequests {
			t.Fatalf("overflow request got status %d, want 429", res.status)
		}
		if res.code != protocol.CodeOverloaded {
			t.Errorf("shed code = %q", res.code)
		}
		if res.retryAfter == "" {
			t.Error("shed response without Retry-After")
		}
		shedSeen++
	}
	close(release)
	wg.Wait()
	for i := 0; i < limit; i++ {
		if res := <-results; res.status != http.StatusOK {
			t.Errorf("admitted request got status %d", res.status)
		}
	}

	m := metrics()
	if m.Shed != uint64(shedSeen) {
		t.Errorf("metrics shed = %d, want %d", m.Shed, shedSeen)
	}
	if m.RequestsTotal != uint64(limit+3) {
		t.Errorf("metrics requestsTotal = %d, want %d", m.RequestsTotal, limit+3)
	}
	if m.InFlight != 0 {
		t.Errorf("metrics inFlight = %d after drain", m.InFlight)
	}
	if m.ByStatus["200"] != uint64(limit) || m.ByStatus["429"] != uint64(shedSeen) {
		t.Errorf("byStatus = %v", m.ByStatus)
	}
}

// TestStreamCapSeparateFromUnary holds the only stream slot and checks
// that a second stream is shed while unary endpoints stay admitted.
func TestStreamCapSeparateFromUnary(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if streamPath(r.URL.Path) {
			entered <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})
	h, _ := WrapMiddleware(inner, WithMaxConcurrent(0), WithMaxStreams(1))
	srv := httptest.NewServer(h)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/v1/stream")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the stream slot is held

	resp, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second stream got %d, want 429", resp.StatusCode)
	}
	if got := decodeEnvelope(t, resp.Body).Code; got != protocol.CodeOverloaded {
		t.Errorf("code = %s", got)
	}
	resp.Body.Close()

	// Unary traffic is not subject to the stream cap.
	unary, err := http.Get(srv.URL + "/v1/match")
	if err != nil {
		t.Fatal(err)
	}
	unary.Body.Close()
	if unary.StatusCode != http.StatusOK {
		t.Errorf("unary request got %d while stream slot held", unary.StatusCode)
	}
	close(release)
	<-done
}

// TestPanicRecovery asserts a panicking handler yields the structured
// 500 envelope (request ID attached) and the panic counter moves.
func TestPanicRecovery(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	var buf strings.Builder
	h, metrics := WrapMiddleware(inner, WithAccessLog(log.New(&buf, "", 0)))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/match")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	e := decodeEnvelope(t, resp.Body)
	if e.Code != protocol.CodeInternal || e.Retryable {
		t.Errorf("envelope = %+v", e)
	}
	if e.Details["requestId"] == "" {
		t.Error("panic envelope without requestId detail")
	}
	if m := metrics(); m.Panics != 1 {
		t.Errorf("panics counter = %d", m.Panics)
	}
	if !strings.Contains(buf.String(), "kaboom") {
		t.Error("panic not logged")
	}
}

// TestRequestIDPropagation checks minted and echoed request IDs reach
// the response headers and the handler's context.
func TestRequestIDPropagation(t *testing.T) {
	var seen string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(http.StatusNoContent)
	})
	h, _ := WrapMiddleware(inner)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Minted: deterministic counter per stack.
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-1" {
		t.Errorf("minted id = %q, want req-1", got)
	}
	if seen != "req-1" {
		t.Errorf("context id = %q", seen)
	}

	// Echoed: a sane client-supplied ID is preserved end to end.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/x", nil)
	req.Header.Set("X-Request-Id", "client-abc-123")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "client-abc-123" {
		t.Errorf("echoed id = %q", got)
	}
	if seen != "client-abc-123" {
		t.Errorf("context id = %q", seen)
	}

	// Garbage (control characters, oversized) is replaced, not echoed.
	req3, _ := http.NewRequest(http.MethodGet, srv.URL+"/x", nil)
	req3.Header.Set("X-Request-Id", strings.Repeat("x", 65))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); got != "req-2" {
		t.Errorf("oversized id echoed as %q", got)
	}
}

// TestRequestTimeoutEnvelope drives a real session handler with a
// nanosecond budget: the context expires before matching starts and the
// deadline_exceeded envelope (504, retryable) comes back.
func TestRequestTimeoutEnvelope(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(smallCorpus(t)), WithRequestTimeout(time.Nanosecond)))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/match", "application/json", strings.NewReader(`{"pair":"pt-en"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	e := decodeEnvelope(t, resp.Body)
	if e.Code != protocol.CodeDeadlineExceeded || !e.Retryable {
		t.Errorf("envelope = %+v", e)
	}
	// Control-plane probes are exempt from the timeout.
	health, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz under timeout config: %d", health.StatusCode)
	}
}

// TestBodySizeLimit sends an oversized request body and expects the
// payload_too_large envelope.
func TestBodySizeLimit(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(smallCorpus(t)), WithMaxBodyBytes(64)))
	defer srv.Close()

	big := fmt.Sprintf(`{"pair":"pt-en","type":%q}`, strings.Repeat("x", 256))
	resp, err := http.Post(srv.URL+"/v1/match", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if got := decodeEnvelope(t, resp.Body).Code; got != protocol.CodePayloadTooLarge {
		t.Errorf("code = %s", got)
	}
	// A small body on the same server still works.
	ok, err := http.Post(srv.URL+"/v1/match", "application/json", strings.NewReader(`{"pair":"pt-en"}`))
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Errorf("small body rejected: %d", ok.StatusCode)
	}
}

// failAfterWriter fails every Write after the first n, standing in for
// a connection whose write deadline fired mid-stream.
type failAfterWriter struct {
	header http.Header
	writes int
	limit  int
}

func (w *failAfterWriter) Header() http.Header { return w.header }
func (w *failAfterWriter) WriteHeader(int)     {}
func (w *failAfterWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes > w.limit {
		return 0, fmt.Errorf("write deadline exceeded")
	}
	return len(b), nil
}

// TestStreamAbortsOnWriteFailure drives the NDJSON handler against a
// writer that dies mid-stream: the handler must cancel the producer,
// drain it and return instead of spinning on a dead connection — the
// slow-reader guard's abort path.
func TestStreamAbortsOnWriteFailure(t *testing.T) {
	h := NewHandler(New(smallCorpus(t)))
	req := httptest.NewRequest(http.MethodPost, "/v1/stream", strings.NewReader(`{"pair":"pt-en"}`))
	w := &failAfterWriter{header: make(http.Header), limit: 1}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, req)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stream handler did not return after write failure")
	}
	if w.writes < 2 {
		t.Fatalf("handler wrote %d times; the failure path never ran", w.writes)
	}
}

// TestBodyRejectsTrailingData: the strict decoder must refuse a body
// with anything after the first JSON value.
func TestBodyRejectsTrailingData(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(smallCorpus(t))))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/match", "application/json",
		strings.NewReader(`{"pair":"pt-en"}{"pair":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	e := decodeEnvelope(t, resp.Body)
	if e.Code != protocol.CodeInvalidArgument || !strings.Contains(e.Message, "exactly one JSON object") {
		t.Errorf("envelope = %+v", e)
	}
}

// TestPanicAfterWriteAbortsConnection: a panic once the response has
// started must kill the connection rather than let net/http finalize a
// truncated body the client would mistake for a complete result.
func TestPanicAfterWriteAborts(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"partial":`))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic("mid-stream")
	})
	h, metrics := WrapMiddleware(inner)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stream")
	if err == nil {
		_, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr == nil {
			t.Fatal("truncated response read cleanly; connection was not aborted")
		}
	}
	if m := metrics(); m.Panics != 1 {
		t.Errorf("panics counter = %d", m.Panics)
	}
}

// TestRouteLabelBounded: junk paths share the "other" bucket instead of
// poisoning the per-route table.
func TestRouteLabelBounded(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusNotFound) })
	h, metrics := WrapMiddleware(inner)
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 100; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/spray/%d", srv.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/match/filme")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	m := metrics()
	if m.ByRoute["other"] != 100 {
		t.Errorf("other bucket = %d, want 100: %v", m.ByRoute["other"], m.ByRoute)
	}
	if m.ByRoute["GET /match/{type}"] != 1 {
		t.Errorf("per-type route not collapsed: %v", m.ByRoute)
	}
}
