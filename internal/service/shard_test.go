package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/wiki"
)

// ownOnly builds the keep function of a replica owning exactly the
// given pairs.
func ownOnly(pairs ...wiki.LanguagePair) func(wiki.LanguagePair) bool {
	return func(p wiki.LanguagePair) bool {
		for _, own := range pairs {
			if p == own {
				return true
			}
		}
		return false
	}
}

// TestRestoreFiltered: a shard replica warm-loads only its owned slice
// of a full snapshot, and what it does load serves byte-identically to
// the full restore.
func TestRestoreFiltered(t *testing.T) {
	c := smallCorpus(t)
	ctx := context.Background()
	warm := New(c)
	want := make(map[wiki.LanguagePair]string)
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		res, err := warm.Match(ctx, pair)
		if err != nil {
			t.Fatalf("warm %s: %v", pair, err)
		}
		want[pair] = flattenResult(res)
	}
	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	shard, err := RestoreFiltered(c, bytes.NewReader(buf.Bytes()), ownOnly(wiki.PtEn))
	if err != nil {
		t.Fatalf("RestoreFiltered: %v", err)
	}
	stats := shard.CacheStats()
	if stats.RestoredPairs != 1 {
		t.Errorf("RestoredPairs = %d, want 1 (vn-en slice must be dropped)", stats.RestoredPairs)
	}
	res, err := shard.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatalf("shard match: %v", err)
	}
	if got := flattenResult(res); got != want[wiki.PtEn] {
		t.Error("shard-restored pt-en result differs from the warm build")
	}
	if ms := shard.CacheStats().Misses; ms != 0 {
		t.Errorf("owned pair rebuilt %d artifacts after filtered restore", ms)
	}

	// The unowned pair is merely cold, not broken: an in-process caller
	// (no HTTP gate) can still build it from the full corpus.
	res, err = shard.Match(ctx, wiki.VnEn)
	if err != nil {
		t.Fatalf("cold unowned match: %v", err)
	}
	if got := flattenResult(res); got != want[wiki.VnEn] {
		t.Error("cold vn-en rebuild differs from the warm build")
	}

	// A nil keep is a plain Restore.
	full, err := RestoreFiltered(c, bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("nil-keep restore: %v", err)
	}
	if got := full.CacheStats().RestoredPairs; got != 2 {
		t.Errorf("nil-keep RestoredPairs = %d, want 2", got)
	}
}

// shardServer starts the HTTP API gated to own only pt-en.
func shardServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := New(smallCorpus(t))
	srv := httptest.NewServer(NewHandler(s, WithShardGate("shard 0/2", ownOnly(wiki.PtEn))))
	t.Cleanup(srv.Close)
	return srv
}

// postEnvelope POSTs a JSON body and decodes the response into out,
// returning the HTTP status.
func postEnvelope(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestShardGate drives the ownership gate over HTTP: owned pairs serve,
// unowned pairs get a retryable unavailable envelope, all-pairs requests
// are refused, and validation errors keep their canonical shape.
func TestShardGate(t *testing.T) {
	srv := shardServer(t)

	var match protocol.MatchResponse
	if got := postEnvelope(t, srv.URL+"/v1/match", `{"pair":"pt-en"}`, &match); got != http.StatusOK {
		t.Fatalf("owned pair: status %d", got)
	}
	if match.Pair != "pt-en" || len(match.Results) == 0 {
		t.Fatalf("owned pair served a hollow response: %+v", match)
	}

	var env protocol.ErrorEnvelope
	if got := postEnvelope(t, srv.URL+"/v1/match", `{"pair":"vn-en"}`, &env); got != http.StatusServiceUnavailable {
		t.Fatalf("unowned pair: status %d, want 503", got)
	}
	if env.Error == nil || env.Error.Code != protocol.CodeUnavailable || !env.Error.Retryable {
		t.Fatalf("unowned pair envelope: %+v", env.Error)
	}
	if !strings.Contains(env.Error.Message, "shard 0/2") {
		t.Errorf("gate error does not name the shard: %q", env.Error.Message)
	}

	// All-pairs work belongs to the router.
	env = protocol.ErrorEnvelope{}
	if got := postEnvelope(t, srv.URL+"/v1/matchall", `{}`, &env); got != http.StatusBadRequest {
		t.Fatalf("gated matchall: status %d, want 400", got)
	}
	if env.Error == nil || env.Error.Code != protocol.CodeInvalidArgument || !strings.Contains(env.Error.Message, "router") {
		t.Fatalf("gated matchall envelope: %+v", env.Error)
	}
	env = protocol.ErrorEnvelope{}
	if got := postEnvelope(t, srv.URL+"/v1/stream", `{"all":true}`, &env); got != http.StatusBadRequest {
		t.Fatalf("gated all-pairs stream: status %d, want 400", got)
	}

	// A pair-scoped stream for an unowned pair is gated too.
	env = protocol.ErrorEnvelope{}
	if got := postEnvelope(t, srv.URL+"/v1/stream", `{"pair":"vn-en"}`, &env); got != http.StatusServiceUnavailable {
		t.Fatalf("gated stream: status %d, want 503", got)
	}

	// Validation failures keep their canonical error, not the gate's.
	env = protocol.ErrorEnvelope{}
	if got := postEnvelope(t, srv.URL+"/v1/match", `{"pair":"not a pair"}`, &env); got != http.StatusBadRequest {
		t.Fatalf("invalid pair on gated replica: status %d, want 400", got)
	}
	if env.Error == nil || env.Error.Code != protocol.CodeInvalidArgument {
		t.Fatalf("invalid pair envelope: %+v", env.Error)
	}

	// The legacy shims are gated with the same envelope.
	resp, err := http.Get(srv.URL + "/match?pair=vn-en")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("legacy shim on unowned pair: status %d, want 503", resp.StatusCode)
	}
	env = protocol.ErrorEnvelope{}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != protocol.CodeUnavailable {
		t.Fatalf("legacy shim envelope: %+v", env.Error)
	}

	// Control-plane and corpus endpoints stay open on a shard.
	var health protocol.Health
	getJSON(t, srv.URL+"/v1/healthz", http.StatusOK, &health)
	if health.Status != "ok" {
		t.Errorf("gated replica health = %q", health.Status)
	}
}
