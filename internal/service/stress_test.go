package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/wiki"
)

// TestSessionSingleFlightUnderContention hammers a cold session with
// overlapping Match, MatchType and Types calls for both pairs from many
// goroutines at once and then asserts the single-flight guarantee
// exactly: the miss counter equals the number of cache entries — every
// artifact was built once, no matter how many callers raced for it.
func TestSessionSingleFlightUnderContention(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()

	// A type pair per language pair for the MatchType callers.
	typeOf := map[wiki.LanguagePair][2]string{}
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		types := core.MatchEntityTypes(c, pair)
		if len(types) == 0 {
			t.Fatalf("no types for %s", pair)
		}
		typeOf[pair] = types[0]
	}
	// The alignment above ran outside the session; the session's own
	// cache is still empty.
	if st := s.CacheStats(); st.Misses != 0 {
		t.Fatalf("session not cold: %+v", st)
	}

	const per = 6
	var wg sync.WaitGroup
	errs := make(chan error, 6*per)
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func(pair wiki.LanguagePair, g int) {
				defer wg.Done()
				switch g % 3 {
				case 0:
					if _, err := s.Match(ctx, pair); err != nil {
						errs <- fmt.Errorf("Match %s: %v", pair, err)
					}
				case 1:
					tp := typeOf[pair]
					if _, err := s.MatchType(ctx, pair, tp[0], tp[1]); err != nil {
						errs <- fmt.Errorf("MatchType %s: %v", pair, err)
					}
				case 2:
					if _, err := s.Types(ctx, pair); err != nil {
						errs <- fmt.Errorf("Types %s: %v", pair, err)
					}
				}
			}(pair, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.CacheStats()
	if st.PairEntries != 2 {
		t.Errorf("pair entries = %d, want 2", st.PairEntries)
	}
	if st.Misses != uint64(st.PairEntries+st.TypeEntries) {
		t.Errorf("misses = %d, want %d (one build per entry): %+v",
			st.Misses, st.PairEntries+st.TypeEntries, st)
	}
}

// TestSessionStressWithInvalidate runs the full mixed workload — Match,
// MatchType, Types, Dictionary and concurrent Invalidate churn — against
// one shared session. Correctness bar: every successful result equals
// the cold single-threaded reference, and every CacheStats snapshot
// (taken continuously by an observer goroutine) is internally sane:
// entry counts within corpus bounds and hit/miss counters monotone.
// Run under -race this is the cache's data-race gate.
func TestSessionStressWithInvalidate(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()

	pairs := []wiki.LanguagePair{wiki.PtEn, wiki.VnEn}
	want := map[wiki.LanguagePair]string{}
	maxTypes := 0
	typeOf := map[wiki.LanguagePair][2]string{}
	for _, pair := range pairs {
		res := core.NewMatcher(core.DefaultConfig()).Match(c, pair)
		want[pair] = flattenResult(res)
		maxTypes += len(res.Types)
		typeOf[pair] = res.Types[0]
	}

	stop := make(chan struct{})
	var torn atomic.Int32
	var observerDone sync.WaitGroup
	observerDone.Add(1)
	go func() {
		defer observerDone.Done()
		var lastHits, lastMisses uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.CacheStats()
			if st.PairEntries < 0 || st.PairEntries > len(pairs) || st.TypeEntries > maxTypes {
				t.Errorf("torn stats: %+v", st)
				torn.Add(1)
				return
			}
			if st.Hits < lastHits || st.Misses < lastMisses {
				t.Errorf("counters went backwards: hits %d→%d misses %d→%d",
					lastHits, st.Hits, lastMisses, st.Misses)
				torn.Add(1)
				return
			}
			lastHits, lastMisses = st.Hits, st.Misses
		}
	}()

	const (
		workers    = 8
		iterations = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iterations)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pair := pairs[g%len(pairs)]
			for i := 0; i < iterations; i++ {
				switch (g + i) % 5 {
				case 0:
					res, err := s.Match(ctx, pair)
					if err != nil {
						errs <- fmt.Errorf("Match %s: %v", pair, err)
						continue
					}
					if flattenResult(res) != want[pair] {
						errs <- fmt.Errorf("Match %s: result differs under churn", pair)
					}
				case 1:
					tp := typeOf[pair]
					tr, err := s.MatchType(ctx, pair, tp[0], tp[1])
					if err != nil {
						errs <- fmt.Errorf("MatchType %s: %v", pair, err)
						continue
					}
					if len(tr.CrossPairsSorted()) == 0 {
						errs <- fmt.Errorf("MatchType %s: empty result under churn", pair)
					}
				case 2:
					if _, err := s.Types(ctx, pair); err != nil {
						errs <- fmt.Errorf("Types %s: %v", pair, err)
					}
				case 3:
					if _, err := s.Dictionary(ctx, pair); err != nil {
						errs <- fmt.Errorf("Dictionary %s: %v", pair, err)
					}
				case 4:
					s.Invalidate(pair.A)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	observerDone.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if torn.Load() != 0 {
		t.Fatal("observer saw torn cache stats")
	}

	// Quiesced: one more match per pair must still equal the reference,
	// and leave the cache fully populated.
	for _, pair := range pairs {
		res, err := s.Match(ctx, pair)
		if err != nil {
			t.Fatalf("post-stress Match %s: %v", pair, err)
		}
		if flattenResult(res) != want[pair] {
			t.Errorf("post-stress Match %s differs from reference", pair)
		}
	}
	st := s.CacheStats()
	if st.PairEntries != len(pairs) || st.TypeEntries == 0 {
		t.Errorf("post-stress cache: %+v", st)
	}
	// Every cache entry traces back to at least one recorded miss.
	if st.Misses < uint64(st.PairEntries+st.TypeEntries) {
		t.Errorf("misses = %d < %d entries — builds escaped the counter",
			st.Misses, st.PairEntries+st.TypeEntries)
	}
}

// TestSessionStressWithDelta races ApplyDelta against in-flight Match,
// MatchType and Invalidate traffic. The corpus toggles between two
// generations (a value edit applied and reverted), so every successful
// pt-en result must be byte-identical to one of the two cold
// references — a request that raced a delta must be consistently
// pre-delta or post-delta, never a blend of corpus and stale
// artifacts. vi-en is never touched by the deltas, so its results must
// stay constant throughout. Run under -race this is the delta path's
// data-race gate.
func TestSessionStressWithDelta(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()

	types := core.MatchEntityTypes(c, wiki.PtEn)
	if len(types) == 0 {
		t.Fatal("no aligned types for pt-en")
	}
	orig := editableArticle(t, c, wiki.Portuguese, types[0][0])
	edited := orig.Clone()
	edited.Infobox.Attrs[0].Text += " (stress)"

	editedCorpus, _, err := c.WithDelta(wiki.Delta{Upserts: []*wiki.Article{edited.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	ptWant := map[string]bool{}
	for _, cc := range []*wiki.Corpus{c, editedCorpus} {
		res, err := New(cc).Match(ctx, wiki.PtEn)
		if err != nil {
			t.Fatal(err)
		}
		ptWant[flattenResult(res)] = true
	}
	viRef, err := New(c).Match(ctx, wiki.VnEn)
	if err != nil {
		t.Fatal(err)
	}
	viWant := flattenResult(viRef)

	const (
		workers    = 6
		iterations = 4
		toggles    = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iterations+toggles)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < toggles; i++ {
			up := edited
			if i%2 == 1 {
				up = orig
			}
			if _, err := s.ApplyDelta(ctx, wiki.Delta{Upserts: []*wiki.Article{up.Clone()}}); err != nil {
				errs <- fmt.Errorf("ApplyDelta toggle %d: %v", i, err)
			}
		}
	}()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				switch (g + i) % 4 {
				case 0:
					res, err := s.Match(ctx, wiki.PtEn)
					if err != nil {
						errs <- fmt.Errorf("Match pt-en: %v", err)
						continue
					}
					if !ptWant[flattenResult(res)] {
						errs <- fmt.Errorf("pt-en result matches neither corpus generation")
					}
				case 1:
					res, err := s.Match(ctx, wiki.VnEn)
					if err != nil {
						errs <- fmt.Errorf("Match vi-en: %v", err)
						continue
					}
					if flattenResult(res) != viWant {
						errs <- fmt.Errorf("vi-en result changed under pt-only deltas")
					}
				case 2:
					tp := types[0]
					if _, err := s.MatchType(ctx, wiki.PtEn, tp[0], tp[1]); err != nil {
						errs <- fmt.Errorf("MatchType pt-en: %v", err)
					}
				case 3:
					s.Invalidate(wiki.Portuguese)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced: the session must agree byte for byte with a cold session
	// over whatever corpus generation it settled on.
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		res, err := s.Match(ctx, pair)
		if err != nil {
			t.Fatalf("post-stress Match %s: %v", pair, err)
		}
		cold, err := New(s.Corpus()).Match(ctx, pair)
		if err != nil {
			t.Fatalf("post-stress cold Match %s: %v", pair, err)
		}
		if flattenResult(res) != flattenResult(cold) {
			t.Errorf("post-stress %s: warm session disagrees with cold session on its own corpus", pair)
		}
	}
	if st := s.CacheStats(); st.PairEntries != 2 || st.TypeEntries == 0 {
		t.Errorf("post-stress cache: %+v", st)
	}
}
