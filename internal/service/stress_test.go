package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/wiki"
)

// TestSessionSingleFlightUnderContention hammers a cold session with
// overlapping Match, MatchType and Types calls for both pairs from many
// goroutines at once and then asserts the single-flight guarantee
// exactly: the miss counter equals the number of cache entries — every
// artifact was built once, no matter how many callers raced for it.
func TestSessionSingleFlightUnderContention(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()

	// A type pair per language pair for the MatchType callers.
	typeOf := map[wiki.LanguagePair][2]string{}
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		types := core.MatchEntityTypes(c, pair)
		if len(types) == 0 {
			t.Fatalf("no types for %s", pair)
		}
		typeOf[pair] = types[0]
	}
	// The alignment above ran outside the session; the session's own
	// cache is still empty.
	if st := s.CacheStats(); st.Misses != 0 {
		t.Fatalf("session not cold: %+v", st)
	}

	const per = 6
	var wg sync.WaitGroup
	errs := make(chan error, 6*per)
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func(pair wiki.LanguagePair, g int) {
				defer wg.Done()
				switch g % 3 {
				case 0:
					if _, err := s.Match(ctx, pair); err != nil {
						errs <- fmt.Errorf("Match %s: %v", pair, err)
					}
				case 1:
					tp := typeOf[pair]
					if _, err := s.MatchType(ctx, pair, tp[0], tp[1]); err != nil {
						errs <- fmt.Errorf("MatchType %s: %v", pair, err)
					}
				case 2:
					if _, err := s.Types(ctx, pair); err != nil {
						errs <- fmt.Errorf("Types %s: %v", pair, err)
					}
				}
			}(pair, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.CacheStats()
	if st.PairEntries != 2 {
		t.Errorf("pair entries = %d, want 2", st.PairEntries)
	}
	if st.Misses != uint64(st.PairEntries+st.TypeEntries) {
		t.Errorf("misses = %d, want %d (one build per entry): %+v",
			st.Misses, st.PairEntries+st.TypeEntries, st)
	}
}

// TestSessionStressWithInvalidate runs the full mixed workload — Match,
// MatchType, Types, Dictionary and concurrent Invalidate churn — against
// one shared session. Correctness bar: every successful result equals
// the cold single-threaded reference, and every CacheStats snapshot
// (taken continuously by an observer goroutine) is internally sane:
// entry counts within corpus bounds and hit/miss counters monotone.
// Run under -race this is the cache's data-race gate.
func TestSessionStressWithInvalidate(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()

	pairs := []wiki.LanguagePair{wiki.PtEn, wiki.VnEn}
	want := map[wiki.LanguagePair]string{}
	maxTypes := 0
	typeOf := map[wiki.LanguagePair][2]string{}
	for _, pair := range pairs {
		res := core.NewMatcher(core.DefaultConfig()).Match(c, pair)
		want[pair] = flattenResult(res)
		maxTypes += len(res.Types)
		typeOf[pair] = res.Types[0]
	}

	stop := make(chan struct{})
	var torn atomic.Int32
	var observerDone sync.WaitGroup
	observerDone.Add(1)
	go func() {
		defer observerDone.Done()
		var lastHits, lastMisses uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.CacheStats()
			if st.PairEntries < 0 || st.PairEntries > len(pairs) || st.TypeEntries > maxTypes {
				t.Errorf("torn stats: %+v", st)
				torn.Add(1)
				return
			}
			if st.Hits < lastHits || st.Misses < lastMisses {
				t.Errorf("counters went backwards: hits %d→%d misses %d→%d",
					lastHits, st.Hits, lastMisses, st.Misses)
				torn.Add(1)
				return
			}
			lastHits, lastMisses = st.Hits, st.Misses
		}
	}()

	const (
		workers    = 8
		iterations = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iterations)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pair := pairs[g%len(pairs)]
			for i := 0; i < iterations; i++ {
				switch (g + i) % 5 {
				case 0:
					res, err := s.Match(ctx, pair)
					if err != nil {
						errs <- fmt.Errorf("Match %s: %v", pair, err)
						continue
					}
					if flattenResult(res) != want[pair] {
						errs <- fmt.Errorf("Match %s: result differs under churn", pair)
					}
				case 1:
					tp := typeOf[pair]
					tr, err := s.MatchType(ctx, pair, tp[0], tp[1])
					if err != nil {
						errs <- fmt.Errorf("MatchType %s: %v", pair, err)
						continue
					}
					if len(tr.CrossPairsSorted()) == 0 {
						errs <- fmt.Errorf("MatchType %s: empty result under churn", pair)
					}
				case 2:
					if _, err := s.Types(ctx, pair); err != nil {
						errs <- fmt.Errorf("Types %s: %v", pair, err)
					}
				case 3:
					if _, err := s.Dictionary(ctx, pair); err != nil {
						errs <- fmt.Errorf("Dictionary %s: %v", pair, err)
					}
				case 4:
					s.Invalidate(pair.A)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	observerDone.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if torn.Load() != 0 {
		t.Fatal("observer saw torn cache stats")
	}

	// Quiesced: one more match per pair must still equal the reference,
	// and leave the cache fully populated.
	for _, pair := range pairs {
		res, err := s.Match(ctx, pair)
		if err != nil {
			t.Fatalf("post-stress Match %s: %v", pair, err)
		}
		if flattenResult(res) != want[pair] {
			t.Errorf("post-stress Match %s differs from reference", pair)
		}
	}
	st := s.CacheStats()
	if st.PairEntries != len(pairs) || st.TypeEntries == 0 {
		t.Errorf("post-stress cache: %+v", st)
	}
	// Every cache entry traces back to at least one recorded miss.
	if st.Misses < uint64(st.PairEntries+st.TypeEntries) {
		t.Errorf("misses = %d < %d entries — builds escaped the counter",
			st.Misses, st.PairEntries+st.TypeEntries)
	}
}
