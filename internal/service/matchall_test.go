package service

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/multi"
	"repro/internal/wiki"
)

// ptVi is the transitive pair of the synthetic corpus: no cross-language
// links connect Portuguese and Vietnamese articles directly, so only the
// cluster builder can produce correspondences for it.
var ptVi = wiki.LanguagePair{A: wiki.Portuguese, B: wiki.Vietnamese}

// TestMatchAllPivot is the acceptance gate for the all-pairs subsystem:
// a pivot batch over the three-language synthetic corpus must produce
// cross-language correspondence clusters, including transitive Pt–Vi
// correspondences that score well against the generator's gold data.
func TestMatchAllPivot(t *testing.T) {
	c := smallCorpus(t)
	truth := smallTruth(t)
	s := New(c)
	res, err := s.MatchAll(context.Background(), multi.Options{Mode: multi.ModePivot})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		for _, o := range res.Outcomes {
			if o.Err != nil {
				t.Errorf("pair %s failed: %v", o.Pair, o.Err)
			}
		}
		t.Fatalf("%d pairs failed", res.Failed)
	}
	if got := len(res.Outcomes); got != 2 {
		t.Fatalf("pivot outcomes = %d, want 2 (pt-en, vi-en)", got)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}

	// Some clusters must span all three languages (the film types exist
	// in every edition).
	trilingual := 0
	for _, cl := range res.Clusters {
		if len(cl.Languages) == 3 {
			trilingual++
		}
		if len(cl.Conflicts) != 0 {
			t.Errorf("pivot cluster %d has conflicts: %v", cl.ID, cl.Conflicts)
		}
		if cl.Agreement != 1 {
			t.Errorf("pivot cluster %d agreement = %v, want vacuous 1", cl.ID, cl.Agreement)
		}
	}
	if trilingual == 0 {
		t.Fatal("no cluster spans all three languages")
	}

	// The induced Pt–Vi correspondences exist only transitively; score
	// them against the generator's gold alignment (cluster-level eval
	// against the pairwise gold data).
	induced := res.Induced(ptVi)
	if len(induced) == 0 {
		t.Fatal("no induced pt-vi correspondences")
	}
	var rows []eval.PRF
	for tp, derived := range induced {
		canon, ok := truth.CanonType(ptVi.A, tp[0])
		if !ok {
			t.Errorf("induced type %q has no canonical type", tp[0])
			continue
		}
		tt := truth.Types[canon]
		freqA := eval.LanguageAttributeFrequencies(c, ptVi.A, tp[0])
		freqB := eval.LanguageAttributeFrequencies(c, ptVi.B, tp[1])
		gold := eval.TruthPairs(freqA, freqB, ptVi, tt.Correct)
		if gold.Pairs() == 0 {
			continue
		}
		rows = append(rows, eval.Macro(derived, gold))
	}
	if len(rows) == 0 {
		t.Fatal("no pt-vi type could be scored against gold")
	}
	avg := eval.Average(rows)
	// Transitive matching composes two pairwise runs, so expect solid
	// precision and usable recall; these are generous floors that catch
	// a broken cluster builder, not tuned targets.
	if avg.Precision < 0.5 || avg.Recall < 0.2 {
		t.Errorf("pt-vi transitive quality too low: P=%.3f R=%.3f F=%.3f over %d types",
			avg.Precision, avg.Recall, avg.F, len(rows))
	}
	t.Logf("pt-vi transitive: P=%.3f R=%.3f F=%.3f over %d types", avg.Precision, avg.Recall, avg.F, len(rows))

	// Cluster-level eval: clusters against gold clusters via B-cubed.
	pred := make([][]string, 0, len(res.Clusters))
	for _, cl := range res.Clusters {
		group := make([]string, 0, len(cl.Members))
		for _, m := range cl.Members {
			group = append(group, m.String())
		}
		pred = append(pred, group)
	}
	gold := goldClusters(t, res)
	b3 := eval.BCubed(pred, gold)
	if b3.Precision < 0.5 || b3.Recall < 0.3 {
		t.Errorf("cluster B-cubed too low: %+v", b3)
	}
	t.Logf("cluster B-cubed: P=%.3f R=%.3f F=%.3f over %d pred / %d gold clusters",
		b3.Precision, b3.Recall, b3.F, len(pred), len(gold))
}

// goldClusters groups every attribute node that appears in the batch's
// clusters by its ground-truth canonical attribute — the reference
// clustering for B-cubed.
func goldClusters(t *testing.T, res *multi.BatchResult) [][]string {
	t.Helper()
	truth := smallTruth(t)
	byCanon := make(map[string][]string)
	for _, cl := range res.Clusters {
		for _, m := range cl.Members {
			canonType, ok := truth.CanonType(m.Lang, m.Type)
			if !ok {
				continue
			}
			canons := truth.Types[canonType].Canons(m.Lang, m.Name)
			if len(canons) == 0 {
				// Unknown to the gold data; treat as its own singleton
				// identity so spurious nodes cost precision.
				canons = []string{"?" + m.String()}
			}
			key := canonType + "/" + canons[0]
			byCanon[key] = append(byCanon[key], m.String())
		}
	}
	out := make([][]string, 0, len(byCanon))
	for _, group := range byCanon {
		out = append(out, group)
	}
	return out
}

// TestMatchAllPivotReusesHubArtifacts asserts the cache economics the
// pivot plan exists for: a pivot batch builds strictly fewer artifacts
// than a direct batch (which additionally matches pt-vi), and a batch
// over a session that already served the hub pairs builds nothing new.
func TestMatchAllPivotReusesHubArtifacts(t *testing.T) {
	c := smallCorpus(t)
	ctx := context.Background()

	pivot := New(c)
	if _, err := pivot.MatchAll(ctx, multi.Options{Mode: multi.ModePivot}); err != nil {
		t.Fatal(err)
	}
	pivotStats := pivot.CacheStats()

	direct := New(c)
	directRes, err := direct.MatchAll(ctx, multi.Options{Mode: multi.ModeDirect})
	if err != nil {
		t.Fatal(err)
	}
	directStats := direct.CacheStats()

	if pivotStats.Misses >= directStats.Misses {
		t.Errorf("pivot built %d artifacts, direct %d; pivot must build fewer",
			pivotStats.Misses, directStats.Misses)
	}
	if pivotStats.PairEntries != 2 || directStats.PairEntries != 3 {
		t.Errorf("pair entries: pivot=%d direct=%d, want 2 and 3",
			pivotStats.PairEntries, directStats.PairEntries)
	}
	// The direct pt-vi run has no cross-language links to work from.
	if o := directRes.Outcome(wiki.OrientPair(wiki.Portuguese, wiki.Vietnamese, wiki.English)); o == nil || o.Err != nil {
		t.Fatalf("direct pt-vi outcome: %+v", o)
	} else if len(o.Result.Types) != 0 {
		t.Errorf("direct pt-vi aligned %d types on a corpus without pt-vi links", len(o.Result.Types))
	}

	// Warm path: a second pivot batch on the same session builds nothing.
	before := pivot.CacheStats()
	if _, err := pivot.MatchAll(ctx, multi.Options{Mode: multi.ModePivot}); err != nil {
		t.Fatal(err)
	}
	after := pivot.CacheStats()
	if after.Misses != before.Misses {
		t.Errorf("warm pivot batch rebuilt artifacts: misses %d → %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("warm pivot batch did not hit the cache: hits %d → %d", before.Hits, after.Hits)
	}

	// And a batch result is consistent with the pairwise path: pt-en from
	// the batch equals a direct session match.
	res, err := pivot.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	batchOutcome := directRes.Outcome(wiki.PtEn)
	if flattenResult(res) != flattenResult(batchOutcome.Result) {
		t.Error("batch pt-en result differs from pairwise session match")
	}
}

// TestMatchAllStreamSession checks the streaming batch over a real
// session: per-pair updates then the final clusters, channel closed.
func TestMatchAllStreamSession(t *testing.T) {
	s := New(smallCorpus(t))
	updates, err := s.MatchAllStream(context.Background(), multi.Options{Mode: multi.ModePivot, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairSeen := map[string]bool{}
	var final *multi.BatchResult
	for u := range updates {
		if u.Outcome != nil {
			pairSeen[u.Outcome.Pair.String()] = true
		}
		if u.Final != nil {
			final = u.Final
		}
	}
	if !pairSeen["pt-en"] || !pairSeen["vi-en"] {
		t.Errorf("stream outcomes: %v", pairSeen)
	}
	if final == nil || len(final.Clusters) == 0 {
		t.Fatal("stream delivered no final clusters")
	}
}
