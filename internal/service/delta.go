package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/artifact"
	"repro/internal/protocol"
	"repro/internal/wiki"
)

// DeltaPairEffect reports what one corpus delta did to one affected
// cached pair.
type DeltaPairEffect struct {
	Pair wiki.LanguagePair
	// Rebuilt reports that the pair-level artifacts (dictionary or
	// entity-type alignment) changed: the old node and every type node
	// under it were dropped, and the fresh pair build was seeded in
	// place so the next match does not pay for it again.
	Rebuilt bool
	// DroppedTypes lists the type nodes invalidated under this pair,
	// sorted.
	DroppedTypes [][2]string
}

// DeltaResult summarizes an ApplyDelta call: what changed in the
// corpus and which artifact-graph nodes were invalidated.
type DeltaResult struct {
	Added, Updated, Removed int
	// Fingerprint is the edited corpus's fingerprint — the key a
	// post-delta snapshot will carry.
	Fingerprint uint64
	// Languages lists the language editions the delta touched, sorted.
	Languages []wiki.Language
	// Pairs describes every affected pair that was cached when the
	// delta's diff phase began, sorted by pair. A pair cached
	// concurrently with the delta is dropped and counted in
	// DroppedPairs/DroppedTypes but carries no per-pair effect.
	Pairs []DeltaPairEffect
	// DroppedPairs/DroppedTypes total the invalidated graph nodes
	// (rebuilt pairs count: their old node was dropped).
	DroppedPairs, DroppedTypes int
}

// ApplyDelta applies a batch of corpus edits and invalidates exactly
// the artifact-graph nodes the edits dirtied. The corpus is swapped
// copy-on-write: in-flight requests keep matching against the corpus
// generation they started on (their late builds stay private to that
// generation), while every request that starts after ApplyDelta
// returns sees the edited corpus.
//
// Invalidation is as fine-grained as the dependency graph allows. For
// every cached pair containing an edited language, the pair-level
// artifacts are rebuilt from the edited corpus and diffed: if the
// dictionary and entity-type alignment are unchanged (the common case
// for infobox value edits, which feed neither), the pair node is kept
// and only the type nodes whose entity types lost or gained articles
// are dropped; otherwise the pair node is reseeded with the fresh
// build and every type node under it is dropped. A warm re-match after
// a single-article value edit therefore rebuilds only that article's
// type artifacts — every other node reports a cache hit.
//
// The graph update is atomic: no concurrent request can observe the
// new corpus paired with stale artifacts, and a delta cancelled by ctx
// during the diff phase leaves corpus and cache untouched.
func (s *Session) ApplyDelta(ctx context.Context, d wiki.Delta) (*DeltaResult, error) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()

	old := s.state.Load()
	newCorpus, eff, err := old.corpus.WithDelta(d)
	if err != nil {
		return nil, &deltaRejectedError{err}
	}

	// Diff phase (outside the engine lock, cancellable): rebuild the
	// pair-level artifacts of every affected cached pair from the
	// edited corpus and compare with the cached value. Pair builds are
	// deterministic per corpus, so a concurrent rebuild of the same
	// node cannot change the verdict.
	type pairPlan struct {
		pair  wiki.LanguagePair
		fresh *pairData
		equal bool
	}
	touched := func(p wiki.LanguagePair) bool {
		_, a := eff.Types[p.A]
		_, b := eff.Types[p.B]
		return a || b
	}
	seen := make(map[wiki.LanguagePair]bool)
	var plans []*pairPlan
	for _, kind := range []artifact.Kind{artifact.KindPair, artifact.KindType} {
		for _, k := range s.eng.Keys(kind) {
			if seen[k.Pair] || !touched(k.Pair) {
				continue
			}
			seen[k.Pair] = true
			fresh, err := s.buildPairData(ctx, newCorpus, k.Pair)
			if err != nil {
				return nil, err
			}
			pl := &pairPlan{pair: k.Pair, fresh: fresh}
			if v, ok := s.eng.Value(artifact.PairKey(k.Pair)); ok {
				cached := v.(*pairData)
				pl.equal = alignmentsEqual(cached.types, fresh.types) && cached.dict.Equal(fresh.dict)
			}
			plans = append(plans, pl)
		}
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].pair.String() < plans[j].pair.String() })
	if s.deltaTestHook != nil {
		s.deltaTestHook()
	}

	res := &DeltaResult{
		Added:       eff.Added,
		Updated:     eff.Updated,
		Removed:     eff.Removed,
		Fingerprint: newCorpus.Fingerprint(),
		Languages:   eff.Languages(),
	}

	// Commit phase: one atomic graph update. Type keys are
	// re-enumerated under the lock so nodes built during the diff phase
	// are classified too (by type name, so the verdicts still apply).
	dropped := s.eng.Apply(func(tx *artifact.Tx) {
		byPair := make(map[wiki.LanguagePair][]artifact.Key)
		for _, k := range tx.Keys(artifact.KindType) {
			byPair[k.Pair] = append(byPair[k.Pair], k)
		}
		planned := make(map[wiki.LanguagePair]bool, len(plans))
		for _, pl := range plans {
			planned[pl.pair] = true
		}
		for _, pl := range plans {
			pe := DeltaPairEffect{Pair: pl.pair}
			if pl.equal {
				for _, tk := range byPair[pl.pair] {
					if eff.Types[pl.pair.A][tk.TypeA] || eff.Types[pl.pair.B][tk.TypeB] {
						tx.Invalidate(tk)
						pe.DroppedTypes = append(pe.DroppedTypes, [2]string{tk.TypeA, tk.TypeB})
					}
				}
			} else {
				// The pair-level artifacts changed (or the pair node was
				// in flight): drop the whole subtree and seed the fresh
				// pair build so the work done for the diff is not wasted.
				pe.Rebuilt = true
				for _, tk := range byPair[pl.pair] {
					pe.DroppedTypes = append(pe.DroppedTypes, [2]string{tk.TypeA, tk.TypeB})
				}
				tx.Invalidate(artifact.PairKey(pl.pair))
				tx.Seed(artifact.PairKey(pl.pair), pl.fresh)
			}
			sort.Slice(pe.DroppedTypes, func(i, j int) bool {
				if pe.DroppedTypes[i][0] != pe.DroppedTypes[j][0] {
					return pe.DroppedTypes[i][0] < pe.DroppedTypes[j][0]
				}
				return pe.DroppedTypes[i][1] < pe.DroppedTypes[j][1]
			})
			res.Pairs = append(res.Pairs, pe)
		}
		// Touched nodes with no plan were cached between the diff
		// enumeration and this commit: they were built from the pre-delta
		// corpus and there is no fresh build to diff them against, so drop
		// them outright — they must not survive the epoch bump. Pair
		// invalidation drops its type dependents transitively; the type
		// sweep catches type nodes whose pair node is absent or in flight.
		for _, kind := range []artifact.Kind{artifact.KindPair, artifact.KindType} {
			for _, k := range tx.Keys(kind) {
				if !planned[k.Pair] && touched(k.Pair) {
					tx.Invalidate(k)
				}
			}
		}
		s.state.Store(&sessionState{corpus: newCorpus, epoch: tx.Epoch()})
	})
	res.DroppedPairs = dropped[artifact.KindPair]
	res.DroppedTypes = dropped[artifact.KindType]
	return res, nil
}

// deltaRejectedError marks a corpus-validation failure from
// Corpus.WithDelta — the one ApplyDelta failure class that is the
// client's fault. It renders as the underlying error, so wire messages
// are unchanged; ServeDelta dispatches on it to pick the error code.
type deltaRejectedError struct{ err error }

func (e *deltaRejectedError) Error() string { return e.err.Error() }
func (e *deltaRejectedError) Unwrap() error { return e.err }

// alignmentsEqual compares two entity-type alignments element-wise.
func alignmentsEqual(a, b [][2]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ServeDelta answers a DeltaRequest — the typed execution path behind
// POST /v1/corpus/delta.
func (s *Session) ServeDelta(ctx context.Context, req protocol.DeltaRequest) (*protocol.DeltaResponse, error) {
	d, err := req.Validate()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.ApplyDelta(ctx, d)
	if err != nil {
		// Only corpus-validation failures are the client's fault; diff-phase
		// build failures and cancellations keep their own codes via FromErr.
		var rejected *deltaRejectedError
		switch {
		case errors.Is(err, wiki.ErrNoSuchArticle):
			return nil, protocol.Errorf(protocol.CodeNotFound, "%v", err)
		case errors.As(err, &rejected):
			return nil, protocol.Errorf(protocol.CodeInvalidArgument, "%v", err)
		default:
			return nil, protocol.FromErr(err)
		}
	}
	resp := &protocol.DeltaResponse{
		Added:        res.Added,
		Updated:      res.Updated,
		Removed:      res.Removed,
		Fingerprint:  fmt.Sprintf("%016x", res.Fingerprint),
		Languages:    []string{},
		Pairs:        []protocol.DeltaPair{},
		DroppedPairs: res.DroppedPairs,
		DroppedTypes: res.DroppedTypes,
		ElapsedMS:    msSince(start),
		Cache:        s.CacheStats(),
	}
	for _, l := range res.Languages {
		resp.Languages = append(resp.Languages, l.String())
	}
	for _, pe := range res.Pairs {
		dp := protocol.DeltaPair{Pair: pe.Pair.String(), Rebuilt: pe.Rebuilt, DroppedTypes: pe.DroppedTypes}
		if dp.DroppedTypes == nil {
			dp.DroppedTypes = [][2]string{}
		}
		resp.Pairs = append(resp.Pairs, dp)
	}
	return resp, nil
}
