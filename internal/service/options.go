package service

import "repro/internal/core"

// Option adjusts the matcher configuration a session is created with.
// Options replace direct core.Config struct literals at call sites: the
// session starts from core.DefaultConfig (the paper's thresholds) and
// applies options in order, so later options win.
type Option func(*core.Config)

// WithConfig replaces the whole configuration — the escape hatch for
// ablation studies and other callers that already hold a core.Config.
func WithConfig(cfg core.Config) Option {
	return func(c *core.Config) { *c = cfg }
}

// WithTSim sets the certain-match threshold Tsim (paper: 0.6).
func WithTSim(v float64) Option {
	return func(c *core.Config) { c.TSim = v }
}

// WithTLSI sets the LSI correlation threshold TLSI (paper: 0.1).
func WithTLSI(v float64) Option {
	return func(c *core.Config) { c.TLSI = v }
}

// WithTEg sets the inductive-grouping threshold of ReviseUncertain.
func WithTEg(v float64) Option {
	return func(c *core.Config) { c.TEg = v }
}

// WithLSIRank sets the number of latent dimensions (the paper's f).
func WithLSIRank(rank int) Option {
	return func(c *core.Config) { c.LSIRank = rank }
}

// WithSeed sets the seed driving the RandomOrder ablation shuffle.
func WithSeed(seed int64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithExactSVD forces the exact dense Jacobi SVD inside LSI — the
// validation switch for asserting the fast sparse path changes nothing.
func WithExactSVD(on bool) Option {
	return func(c *core.Config) { c.ExactSVD = on }
}

// WithCandidates sets the per-attribute shortlist width of the pruned
// scoring path: 0 keeps core.DefaultCandidates, -1 disables pruning.
// A match-time knob — results are identical at any width.
func WithCandidates(k int) Option {
	return func(c *core.Config) { c.Candidates = k }
}

// WithExactScore forces the exhaustive reference scoring path, the
// validation switch for asserting pruning changes nothing.
func WithExactScore(on bool) Option {
	return func(c *core.Config) { c.ExactScore = on }
}

// WithoutDictionary disables dictionary translation inside vsim (the
// paper's extra ablation); the session then skips building per-pair
// dictionaries entirely.
func WithoutDictionary() Option {
	return func(c *core.Config) { c.NoDictionary = true }
}
