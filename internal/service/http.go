package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/wiki"
)

// The wire DTOs of the wikimatchd HTTP API. Every handler takes the
// language pair from the "pair" query parameter ("pt-en" by default) and
// is driven by the request context, so a disconnecting client cancels
// the matching work it started.

// CorrespondenceJSON is one derived cross-language correspondence.
type CorrespondenceJSON struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Confidence float64 `json:"confidence"`
}

// TypeResultJSON is the wire form of one type's alignment outcome.
type TypeResultJSON struct {
	TypeA           string               `json:"typeA"`
	TypeB           string               `json:"typeB"`
	Attributes      int                  `json:"attributes"`
	Candidates      int                  `json:"candidates"`
	Correspondences []CorrespondenceJSON `json:"correspondences"`
	ElapsedMS       float64              `json:"elapsedMs"`
}

// MatchResponseJSON is the wire form of a full /match run.
type MatchResponseJSON struct {
	Pair      string           `json:"pair"`
	Types     [][2]string      `json:"types"`
	Results   []TypeResultJSON `json:"results"`
	ElapsedMS float64          `json:"elapsedMs"`
	Cache     CacheStats       `json:"cache"`
}

// StatsResponseJSON is the wire form of /corpus/stats.
type StatsResponseJSON struct {
	Corpus wiki.Stats  `json:"corpus"`
	Cache  CacheStats  `json:"cache"`
	Config core.Config `json:"config"`
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// NewHandler builds the wikimatchd HTTP API over one shared session:
//
//	GET  /corpus/stats        corpus, cache and configuration snapshot
//	GET  /match?pair=pt-en    full matching run, JSON
//	GET  /match/stream?pair=  per-type results as NDJSON, flushed as each
//	                          type completes
//	GET  /match/{type}?pair=  one entity type's alignment, JSON
//	GET  /matchall?mode=pivot|direct&hub=en   all-pairs batch with
//	                          cross-language correspondence clusters, JSON
//	GET  /matchall/stream?mode=&hub=   per-pair progress + final clusters
//	                          as NDJSON
//	POST /session/invalidate?lang=pt   drop cached artifacts for a language
//	                          (no lang: drop everything)
func NewHandler(s *Session) http.Handler {
	mux := http.NewServeMux()
	registerMatchAll(mux, s)
	mux.HandleFunc("GET /corpus/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponseJSON{
			Corpus: s.Corpus().Stats(),
			Cache:  s.CacheStats(),
			Config: s.Config(),
		})
	})
	mux.HandleFunc("GET /match", func(w http.ResponseWriter, r *http.Request) {
		pair, ok := requestPair(w, r)
		if !ok {
			return
		}
		start := time.Now()
		res, err := s.Match(r.Context(), pair)
		if err != nil {
			writeError(w, err)
			return
		}
		resp := MatchResponseJSON{
			Pair:      pair.String(),
			Types:     res.Types,
			ElapsedMS: msSince(start),
			Cache:     s.CacheStats(),
		}
		for _, tp := range res.Types {
			resp.Results = append(resp.Results, typeResultJSON(res.PerType[tp], 0))
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /match/stream", func(w http.ResponseWriter, r *http.Request) {
		pair, ok := requestPair(w, r)
		if !ok {
			return
		}
		updates, err := s.MatchStream(r.Context(), pair)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for u := range updates {
			if u.Err != nil {
				_ = enc.Encode(errorJSON{Error: u.Err.Error()})
			} else {
				_ = enc.Encode(typeResultJSON(u.Result, 0))
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	mux.HandleFunc("GET /match/{type}", func(w http.ResponseWriter, r *http.Request) {
		pair, ok := requestPair(w, r)
		if !ok {
			return
		}
		typeA := r.PathValue("type")
		types, err := s.Types(r.Context(), pair)
		if err != nil {
			writeError(w, err)
			return
		}
		typeB := ""
		for _, tp := range types {
			if tp[0] == typeA {
				typeB = tp[1]
				break
			}
		}
		if typeB == "" {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: fmt.Sprintf("no matched entity type %q for pair %s", typeA, pair)})
			return
		}
		start := time.Now()
		tr, err := s.MatchType(r.Context(), pair, typeA, typeB)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, typeResultJSON(tr, msSince(start)))
	})
	mux.HandleFunc("POST /session/invalidate", func(w http.ResponseWriter, r *http.Request) {
		lang := wiki.Language(r.URL.Query().Get("lang"))
		if lang != "" && !lang.Valid() {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("invalid language %q", lang)})
			return
		}
		dropped := s.Invalidate(lang)
		writeJSON(w, http.StatusOK, map[string]int{"dropped": dropped})
	})
	return mux
}

// typeResultJSON flattens one TypeResult for the wire, with per-pair
// confidences attached.
func typeResultJSON(tr *core.TypeResult, elapsedMS float64) TypeResultJSON {
	out := TypeResultJSON{
		TypeA:      tr.TypeA,
		TypeB:      tr.TypeB,
		Attributes: len(tr.TD.Attrs),
		Candidates: len(tr.Candidates),
		ElapsedMS:  elapsedMS,
	}
	for _, p := range tr.CrossPairsSorted() {
		out.Correspondences = append(out.Correspondences, CorrespondenceJSON{
			A: p[0], B: p[1], Confidence: tr.Confidence(p[0], p[1]),
		})
	}
	return out
}

// requestPair parses the "pair" query parameter, defaulting to pt-en.
func requestPair(w http.ResponseWriter, r *http.Request) (wiki.LanguagePair, bool) {
	raw := r.URL.Query().Get("pair")
	if raw == "" {
		return wiki.PtEn, true
	}
	pair, err := ParsePair(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return wiki.LanguagePair{}, false
	}
	return pair, true
}

// ParsePair parses a "pt-en"-style language pair. "vn-en" is accepted as
// an alias of the paper's Vietnamese–English pair.
func ParsePair(s string) (wiki.LanguagePair, error) {
	if s == "vn-en" {
		return wiki.VnEn, nil
	}
	a, b, ok := strings.Cut(s, "-")
	pair := wiki.LanguagePair{A: wiki.Language(a), B: wiki.Language(b)}
	if !ok || !pair.A.Valid() || !pair.B.Valid() {
		return wiki.LanguagePair{}, fmt.Errorf("invalid language pair %q (want e.g. %q)", s, "pt-en")
	}
	return pair, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps matching errors to HTTP statuses: context cancellation
// (typically a disconnected client) gets 499-style treatment via 503,
// anything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
