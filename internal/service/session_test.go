package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/wiki"
)

var (
	corpusOnce sync.Once
	testCorpus *wiki.Corpus
	testTruth  *synth.GroundTruth
)

func smallCorpus(t testing.TB) *wiki.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		c, truth, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		testCorpus, testTruth = c, truth
	})
	return testCorpus
}

// smallTruth returns the generator's ground truth for smallCorpus.
func smallTruth(t testing.TB) *synth.GroundTruth {
	t.Helper()
	smallCorpus(t)
	return testTruth
}

// flattenResult renders every observable part of a Result — type
// alignment, per-type correspondences, the full candidate queues with
// their scores, the match components, and the dictionary size — so two
// runs can be compared byte for byte.
func flattenResult(r *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pair=%s types=%d\n", r.Pair, len(r.Types))
	for _, tp := range r.Types {
		tr := r.PerType[tp]
		fmt.Fprintf(&b, "type %s~%s\n", tp[0], tp[1])
		for _, p := range tr.CrossPairsSorted() {
			fmt.Fprintf(&b, "  cross %s ~ %s\n", p[0], p[1])
		}
		for _, c := range tr.Candidates {
			fmt.Fprintf(&b, "  cand %d %d %.12f %.12f %.12f %.12f %v %v\n",
				c.I, c.J, c.VSim, c.LSim, c.LSI, c.InductiveScore,
				c.AcceptedCertain, c.AcceptedRevision)
		}
		for _, comp := range tr.Matches.Components() {
			fmt.Fprintf(&b, "  comp %v\n", comp)
		}
	}
	if r.Dict != nil {
		fmt.Fprintf(&b, "dict=%d\n", r.Dict.Len())
	}
	return b.String()
}

// TestSessionMatchEquivalence is the fixed-seed equivalence gate: a cold
// session match, a warm (fully cached) session match, and the legacy
// core.Matcher path must all produce byte-identical results.
func TestSessionMatchEquivalence(t *testing.T) {
	c := smallCorpus(t)
	legacy := flattenResult(core.NewMatcher(core.DefaultConfig()).Match(c, wiki.PtEn))

	s := New(c)
	cold, err := s.Match(context.Background(), wiki.PtEn)
	if err != nil {
		t.Fatalf("cold Match: %v", err)
	}
	warm, err := s.Match(context.Background(), wiki.PtEn)
	if err != nil {
		t.Fatalf("warm Match: %v", err)
	}
	if got := flattenResult(cold); got != legacy {
		t.Errorf("cold session result differs from legacy matcher\nlegacy %d bytes, cold %d bytes", len(legacy), len(got))
	}
	if got := flattenResult(warm); got != legacy {
		t.Errorf("warm session result differs from legacy matcher\nlegacy %d bytes, warm %d bytes", len(legacy), len(got))
	}
}

// TestSessionMatchTypeEquivalence checks the single-type entrypoint
// against the legacy per-type call.
func TestSessionMatchTypeEquivalence(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	types, err := s.Types(ctx, wiki.PtEn)
	if err != nil || len(types) == 0 {
		t.Fatalf("Types: %v (%d)", err, len(types))
	}
	tp := types[0]
	got, err := s.MatchType(ctx, wiki.PtEn, tp[0], tp[1])
	if err != nil {
		t.Fatalf("MatchType: %v", err)
	}
	m := core.NewMatcher(core.DefaultConfig())
	d, err := s.Dictionary(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	want := m.MatchType(c, wiki.PtEn, tp[0], tp[1], d)
	if fmt.Sprint(got.CrossPairsSorted()) != fmt.Sprint(want.CrossPairsSorted()) {
		t.Errorf("MatchType cross pairs differ:\n got %v\nwant %v",
			got.CrossPairsSorted(), want.CrossPairsSorted())
	}
}

// TestSessionCacheCounters verifies that the first match populates the
// cache (misses only) and the second is served from it (hits only).
func TestSessionCacheCounters(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	first := s.CacheStats()
	if first.Misses == 0 || first.Hits != 0 {
		t.Fatalf("after cold match: %+v, want misses>0 hits=0", first)
	}
	if first.PairEntries != 1 || first.TypeEntries == 0 {
		t.Fatalf("after cold match: %+v, want 1 pair entry and >0 type entries", first)
	}
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	second := s.CacheStats()
	if second.Misses != first.Misses {
		t.Errorf("warm match rebuilt artifacts: misses %d → %d", first.Misses, second.Misses)
	}
	// One pair-entry hit plus one hit per type.
	wantHits := uint64(1 + first.TypeEntries)
	if second.Hits != wantHits {
		t.Errorf("warm match hits = %d, want %d", second.Hits, wantHits)
	}
}

// TestInvalidate checks that Invalidate actually drops entries — for one
// language, only the pairs containing it — and that matching afterwards
// rebuilds and still returns the same result.
func TestInvalidate(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	ptRes, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Match(ctx, wiki.VnEn); err != nil {
		t.Fatal(err)
	}
	before := s.CacheStats()
	if before.PairEntries != 2 {
		t.Fatalf("pair entries = %d, want 2", before.PairEntries)
	}

	dropped := s.Invalidate(wiki.Portuguese)
	if dropped == 0 {
		t.Fatal("Invalidate(pt) dropped nothing")
	}
	after := s.CacheStats()
	if after.PairEntries != 1 {
		t.Errorf("pair entries after Invalidate(pt) = %d, want 1 (vi-en kept)", after.PairEntries)
	}
	if after.TypeEntries >= before.TypeEntries {
		t.Errorf("type entries after Invalidate(pt) = %d, want < %d", after.TypeEntries, before.TypeEntries)
	}
	if dropped != (before.PairEntries-after.PairEntries)+(before.TypeEntries-after.TypeEntries) {
		t.Errorf("dropped = %d, inconsistent with stats %+v → %+v", dropped, before, after)
	}

	// Rebuild gives the same answer.
	again, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if flattenResult(again) != flattenResult(ptRes) {
		t.Error("post-invalidate match differs from original")
	}
	if s.CacheStats().Misses == before.Misses {
		t.Error("post-invalidate match did not rebuild anything")
	}

	if n := s.Invalidate(""); n == 0 {
		t.Error("Invalidate(\"\") dropped nothing")
	}
	if st := s.CacheStats(); st.PairEntries != 0 || st.TypeEntries != 0 {
		t.Errorf("cache not empty after full invalidation: %+v", st)
	}
}

// TestConcurrentMatch hammers one session from many goroutines across
// both pairs; every result must equal the single-threaded one and the
// single-flight cache must build each artifact exactly once. Run with
// -race this doubles as the data-race gate.
func TestConcurrentMatch(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()

	want := map[wiki.LanguagePair]string{}
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		want[pair] = flattenResult(core.NewMatcher(core.DefaultConfig()).Match(c, pair))
	}

	const per = 4
	var wg sync.WaitGroup
	errs := make(chan error, 2*per)
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func(pair wiki.LanguagePair) {
				defer wg.Done()
				res, err := s.Match(ctx, pair)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", pair, err)
					return
				}
				if flattenResult(res) != want[pair] {
					errs <- fmt.Errorf("%s: concurrent result differs", pair)
				}
			}(pair)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.CacheStats()
	if st.PairEntries != 2 {
		t.Errorf("pair entries = %d, want 2", st.PairEntries)
	}
	// Single-flight: each artifact built exactly once — misses equal the
	// number of cache entries.
	if st.Misses != uint64(st.PairEntries+st.TypeEntries) {
		t.Errorf("misses = %d, want %d (one build per entry): %+v",
			st.Misses, st.PairEntries+st.TypeEntries, st)
	}
}

// TestMatchStream checks the stream delivers exactly the pair's types,
// with results identical to a blocking Match.
func TestMatchStream(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	blocking, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := s.MatchStream(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for u := range updates {
		if u.Err != nil {
			t.Fatalf("stream error for %s: %v", u.TypeA, u.Err)
		}
		if u.Total != len(blocking.Types) {
			t.Fatalf("update total = %d, want %d", u.Total, len(blocking.Types))
		}
		got[u.TypeA] = fmt.Sprint(u.Result.CrossPairsSorted())
	}
	if len(got) != len(blocking.Types) {
		t.Fatalf("streamed %d types, want %d", len(got), len(blocking.Types))
	}
	for _, tp := range blocking.Types {
		if got[tp[0]] != fmt.Sprint(blocking.PerType[tp].CrossPairsSorted()) {
			t.Errorf("type %s: streamed result differs from blocking match", tp[0])
		}
	}
}

// TestMatchStreamAbandoned abandons a stream mid-read without cancelling
// the context. The buffered channel must let every worker finish and
// close the stream anyway — draining later yields the full set.
func TestMatchStreamAbandoned(t *testing.T) {
	c := smallCorpus(t)
	s := New(c)
	ctx := context.Background()
	updates, err := s.MatchStream(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	first := <-updates
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	// Walk away; the session must stay fully usable.
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	// The abandoned stream completed and closed behind our back.
	deadline := time.After(30 * time.Second)
	got := 1
	for {
		select {
		case _, ok := <-updates:
			if !ok {
				if got != first.Total {
					t.Fatalf("abandoned stream delivered %d of %d types", got, first.Total)
				}
				return
			}
			got++
		case <-deadline:
			t.Fatal("abandoned stream never closed — worker leak")
		}
	}
}

// TestSessionOptions checks functional options reach the matcher config.
func TestSessionOptions(t *testing.T) {
	s := New(smallCorpus(t),
		WithTSim(0.7), WithTLSI(0.2), WithTEg(0.3), WithLSIRank(5),
		WithSeed(42), WithExactSVD(true))
	cfg := s.Config()
	if cfg.TSim != 0.7 || cfg.TLSI != 0.2 || cfg.TEg != 0.3 ||
		cfg.LSIRank != 5 || cfg.Seed != 42 || !cfg.ExactSVD {
		t.Errorf("options not applied: %+v", cfg)
	}
	base := core.DefaultConfig()
	base.DisableRevise = true
	if got := New(smallCorpus(t), WithConfig(base)).Config(); got != base {
		t.Errorf("WithConfig: %+v, want %+v", got, base)
	}
	if !New(smallCorpus(t), WithoutDictionary()).Config().NoDictionary {
		t.Error("WithoutDictionary not applied")
	}
}

// TestSessionNoDictionary checks the ablation path through the session:
// no dictionary is built or cached, and the result matches the legacy
// NoDictionary run.
func TestSessionNoDictionary(t *testing.T) {
	c := smallCorpus(t)
	s := New(c, WithoutDictionary())
	ctx := context.Background()
	res, err := s.Match(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dict != nil {
		t.Error("session NoDictionary match still produced a dictionary")
	}
	d, err := s.Dictionary(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Error("Dictionary() non-nil under NoDictionary")
	}
	cfg := core.DefaultConfig()
	cfg.NoDictionary = true
	want := flattenResult(core.NewMatcher(cfg).Match(c, wiki.PtEn))
	if flattenResult(res) != want {
		t.Error("NoDictionary session result differs from legacy run")
	}
}
