package service

import (
	"context"
	"time"

	"repro/internal/audit"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/wiki"
)

// The audit execution path of protocol v1. ServeAudit and
// ServeAuditStream sit behind POST /v1/audit and /v1/audit/stream, the
// Go client's backends and the CLI's audit subcommand; like the match
// endpoints, everything funnels through protocol.AuditRequest.Validate
// and one DTO assembly (AuditDTO), so a routed audit serializes
// byte-identically to a single binary's.

// ServeAudit answers an AuditRequest: run (or reuse, when the request
// carries pre-merged clusters) the all-pairs batch through the
// session's artifact cache, then compare every cross-linked entity's
// values across the matched clusters.
func (s *Session) ServeAudit(ctx context.Context, req protocol.AuditRequest) (*protocol.AuditResponse, error) {
	r, err := req.Validate()
	if err != nil {
		return nil, err
	}
	if r.Multi.Hub == "" {
		r.Multi.Hub = multi.DefaultHub(s.Corpus().Languages())
	}
	start := time.Now()
	clusters := r.Clusters
	var pairs []protocol.MatchAllPair
	if clusters == nil {
		res, err := multi.Run(ctx, s.pairMatcherFor(protocol.Overrides{}), s.Corpus().Languages(), r.Multi)
		if err != nil {
			return nil, protocol.FromErr(err)
		}
		clusters = res.Clusters
		for i := range res.Outcomes {
			pairs = append(pairs, PairOutcomeDTO(&res.Outcomes[i]))
		}
	}
	report := audit.Run(s.Corpus(), clusters, audit.Options{MinSeverity: r.MinSev})
	findings := filterFindings(report.Findings, r)
	resp := AuditDTO(r, pairs, len(clusters), report, findings, msSince(start), s.CacheStats())
	return &resp, nil
}

// ServeAuditStream runs an AuditRequest with streamed progress: one
// Pair line per finished language pair of the matching phase, then one
// Finding line per ranked finding, closing with a FinalAudit line.
// Cluster-bearing requests skip the matching phase and stream findings
// only. The channel is buffered for the matching phase; after a
// cancellation the final line is withheld.
func (s *Session) ServeAuditStream(ctx context.Context, req protocol.AuditRequest) (<-chan protocol.StreamLine, error) {
	r, err := req.Validate()
	if err != nil {
		return nil, err
	}
	if r.Multi.Hub == "" {
		r.Multi.Hub = multi.DefaultHub(s.Corpus().Languages())
	}
	start := time.Now()
	if r.Clusters != nil {
		out := make(chan protocol.StreamLine, 2)
		go func() {
			defer close(out)
			s.emitAudit(out, r, nil, r.Clusters, start)
		}()
		return out, nil
	}
	updates, err := multi.Stream(ctx, s.pairMatcherFor(protocol.Overrides{}), s.Corpus().Languages(), r.Multi)
	if err != nil {
		return nil, protocol.FromErr(err)
	}
	out := make(chan protocol.StreamLine, cap(updates)+2)
	go func() {
		defer close(out)
		var final *multi.BatchResult
		for u := range updates {
			if u.Outcome != nil {
				p := PairOutcomeDTO(u.Outcome)
				out <- protocol.StreamLine{Done: u.Done, Total: u.Total, Pair: &p}
			}
			if u.Final != nil {
				final = u.Final
			}
		}
		if final == nil {
			return
		}
		var pairs []protocol.MatchAllPair
		for i := range final.Outcomes {
			pairs = append(pairs, PairOutcomeDTO(&final.Outcomes[i]))
		}
		s.emitAudit(out, r, pairs, final.Clusters, start)
	}()
	return out, nil
}

// emitAudit runs the value-comparison phase and emits one Finding line
// per ranked finding followed by the FinalAudit summary.
func (s *Session) emitAudit(out chan<- protocol.StreamLine, r protocol.ResolvedAudit, pairs []protocol.MatchAllPair, clusters []multi.Cluster, start time.Time) {
	report := audit.Run(s.Corpus(), clusters, audit.Options{MinSeverity: r.MinSev})
	findings := filterFindings(report.Findings, r)
	dtos := findingDTOs(findings)
	for i := range dtos {
		out <- protocol.StreamLine{Done: i + 1, Total: len(dtos), Finding: &dtos[i]}
	}
	final := AuditDTO(r, pairs, len(clusters), report, findings, msSince(start), s.CacheStats())
	out <- protocol.StreamLine{Done: len(dtos), Total: len(dtos), FinalAudit: &final}
}

// filterFindings applies the request's pair restriction and limit to
// the ranked findings. The severity gate already ran inside audit.Run;
// the limit must run after the pair filter, so a restricted report
// still fills up to Limit findings.
func filterFindings(findings []audit.Finding, r protocol.ResolvedAudit) []audit.Finding {
	out := findings
	if r.HasPair {
		out = nil
		for _, f := range findings {
			if len(f.Values) == 2 && pairOf(f.Values[0].Lang, f.Values[1].Lang) == pairOf(r.Pair.A, r.Pair.B) {
				out = append(out, f)
			}
		}
	}
	if r.Limit > 0 && len(out) > r.Limit {
		out = out[:r.Limit]
	}
	return out
}

// pairOf orders two languages into a canonical comparable pair.
func pairOf(a, b wiki.Language) [2]wiki.Language {
	if b < a {
		a, b = b, a
	}
	return [2]wiki.Language{a, b}
}

// AuditDTO flattens an audit outcome for the wire. It is the one
// assembly path for AuditResponse bodies — ServeAudit, the audit stream
// and the fleet router all go through it.
func AuditDTO(r protocol.ResolvedAudit, pairs []protocol.MatchAllPair, clusters int, report *audit.Report, findings []audit.Finding, elapsedMS float64, cache protocol.CacheStats) protocol.AuditResponse {
	return protocol.AuditResponse{
		Mode:      r.Multi.Mode.String(),
		Hub:       r.Multi.Hub.String(),
		Pairs:     pairs,
		Clusters:  clusters,
		Entities:  report.Entities,
		Compared:  report.Compared,
		Findings:  findingDTOs(findings),
		ElapsedMS: elapsedMS,
		Cache:     cache,
	}
}

// findingDTOs flattens findings for the wire, never nil so an empty
// report serializes as [].
func findingDTOs(findings []audit.Finding) []protocol.AuditFinding {
	out := make([]protocol.AuditFinding, 0, len(findings))
	for _, f := range findings {
		dto := protocol.AuditFinding{
			Entity:     f.Entity,
			Titles:     make(map[string]string, len(f.Titles)),
			Cluster:    f.Cluster,
			Kind:       string(f.Kind),
			Magnitude:  f.Magnitude,
			Confidence: f.Confidence,
			Severity:   f.Severity,
			Detail:     f.Detail,
		}
		for lang, title := range f.Titles {
			dto.Titles[lang.String()] = title
		}
		for _, v := range f.Values {
			dto.Values = append(dto.Values, protocol.AuditValue{
				Lang: v.Lang.String(), Attr: v.Attr, Raw: v.Raw, Norm: v.Norm,
			})
		}
		out = append(out, dto)
	}
	return out
}
