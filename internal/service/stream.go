package service

import (
	"context"

	"repro/internal/core"
	"repro/internal/wiki"
)

// TypeUpdate is one streamed per-type outcome: either a completed
// TypeResult or the error that stopped that type (in practice only the
// context's error).
type TypeUpdate struct {
	// Index is the type's position in the pair's sorted entity-type
	// alignment; Total is the alignment's size.
	Index, Total int
	TypeA, TypeB string
	Result       *core.TypeResult
	Err          error
}

// MatchStream runs WikiMatch for a language pair and emits each type's
// result on the returned channel as soon as that type completes —
// completion order, not alignment order. The channel is buffered for the
// whole alignment, so a consumer may stop reading (or never read) at any
// point without leaking the workers; cancelling ctx additionally stops
// types that have not started yet. The channel is closed once every type
// has been emitted or skipped; after a cancellation the consumer
// observes ctx.Err() (and possibly a final TypeUpdate carrying it).
// Artifacts are cached exactly as in Match, so a stream warms the cache
// for later calls and vice versa.
func (s *Session) MatchStream(ctx context.Context, pair wiki.LanguagePair) (<-chan TypeUpdate, error) {
	return s.streamWith(ctx, pair, s.m)
}

// streamWith is MatchStream with an explicit matcher (see matchWith).
func (s *Session) streamWith(ctx context.Context, pair wiki.LanguagePair, m *core.Matcher) (<-chan TypeUpdate, error) {
	st := s.state.Load()
	pd, err := s.pairArtifacts(ctx, st, pair)
	if err != nil {
		return nil, err
	}
	types := pd.types
	// Each type emits at most one update, so this buffer guarantees no
	// send ever blocks — abandoned streams cannot strand the pool.
	out := make(chan TypeUpdate, len(types))
	go func() {
		defer close(out)
		core.ParallelTypes(ctx, len(types), func(i int) {
			tp := types[i]
			u := TypeUpdate{Index: i, Total: len(types), TypeA: tp[0], TypeB: tp[1]}
			art, err := s.typeArtifacts(ctx, st, pair, tp[0], tp[1], pd.dict)
			if err == nil {
				u.Result, err = m.MatchTypeCtx(ctx, st.corpus, pair, tp[0], tp[1], pd.dict, art)
			}
			u.Err = err
			out <- u
		})
	}()
	return out, nil
}
