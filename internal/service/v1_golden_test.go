package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Golden-file tests for every /v1/ endpoint: each success shape and
// each protocol error code is recorded under testdata/golden/ and
// compared byte for byte after normalization (timings zeroed, NDJSON
// lines canonically sorted, completion-order counters scrubbed).
// Regenerate with:
//
//	go test ./internal/service -run TestV1Golden -update
//
// The 429 (overloaded) and 500 (internal) envelopes cannot be provoked
// deterministically through a session handler, so their cases run
// against a purpose-built stack (a held limiter, a panicking handler)
// via the handler override — same golden machinery, same envelope
// contract.
type v1GoldenCase struct {
	name       string
	method     string
	path       string
	body       string
	wantStatus int
	ndjson     bool
	opts       []HandlerOption
	// handler overrides the default session server for cases that need
	// a special stack.
	handler func(t *testing.T) http.Handler
}

func v1GoldenCases() []v1GoldenCase {
	post := http.MethodPost
	get := http.MethodGet
	return []v1GoldenCase{
		// Success shapes.
		{name: "v1_match_pt_en", method: post, path: "/v1/match", body: `{"pair":"pt-en"}`, wantStatus: 200},
		{name: "v1_match_default_body", method: post, path: "/v1/match", body: "", wantStatus: 200},
		{name: "v1_match_vn_alias", method: post, path: "/v1/match", body: `{"pair":"vn-en"}`, wantStatus: 200},
		{name: "v1_match_type_filme", method: post, path: "/v1/match", body: `{"pair":"pt-en","type":"filme"}`, wantStatus: 200},
		{name: "v1_match_type_override", method: post, path: "/v1/match", body: `{"pair":"pt-en","type":"filme","tsim":0.8}`, wantStatus: 200},
		{name: "v1_matchall_pivot", method: post, path: "/v1/matchall", body: `{"all":true}`, wantStatus: 200},
		{name: "v1_matchall_direct", method: post, path: "/v1/matchall", body: `{"all":true,"mode":"direct","workers":2}`, wantStatus: 200},
		{name: "v1_stream_pair", method: post, path: "/v1/stream", body: `{"pair":"vi-en"}`, wantStatus: 200, ndjson: true},
		{name: "v1_stream_all", method: post, path: "/v1/stream", body: `{"all":true,"workers":1}`, wantStatus: 200, ndjson: true},
		{name: "v1_audit", method: post, path: "/v1/audit", body: `{"minSeverity":0.5,"limit":10}`, wantStatus: 200},
		{name: "v1_audit_pair", method: post, path: "/v1/audit", body: `{"pair":"pt-en","limit":5}`, wantStatus: 200},
		{name: "v1_audit_stream", method: post, path: "/v1/audit/stream", body: `{"minSeverity":0.5,"limit":10,"workers":1}`, wantStatus: 200, ndjson: true},
		{name: "v1_corpus", method: get, path: "/v1/corpus", wantStatus: 200},
		{name: "v1_delta_upsert", method: post, path: "/v1/corpus/delta",
			body: `{"upserts":[{"lang":"pt","title":"Página Dourada","wikitext":"{{Infobox filme | nome = Página Dourada}} [[en:Golden Page]]"}]}`, wantStatus: 200},
		{name: "v1_invalidate_vi", method: post, path: "/v1/invalidate", body: `{"lang":"vi"}`, wantStatus: 200},
		{name: "v1_healthz", method: get, path: "/v1/healthz", wantStatus: 200},
		{name: "v1_metrics", method: get, path: "/v1/metrics", wantStatus: 200},

		// invalid_argument (400).
		{name: "v1_error_bad_pair", method: post, path: "/v1/match", body: `{"pair":"bogus"}`, wantStatus: 400},
		{name: "v1_error_bad_mode", method: post, path: "/v1/matchall", body: `{"all":true,"mode":"sideways"}`, wantStatus: 400},
		{name: "v1_error_bad_hub", method: post, path: "/v1/matchall", body: `{"all":true,"hub":"EN"}`, wantStatus: 400},
		{name: "v1_error_bad_workers", method: post, path: "/v1/matchall", body: `{"all":true,"workers":-1}`, wantStatus: 400},
		{name: "v1_error_bad_threshold", method: post, path: "/v1/match", body: `{"pair":"pt-en","tsim":1.5}`, wantStatus: 400},
		{name: "v1_error_unknown_field", method: post, path: "/v1/match", body: `{"bogusField":1}`, wantStatus: 400},
		{name: "v1_error_scope_mismatch", method: post, path: "/v1/matchall", body: `{"pair":"pt-en"}`, wantStatus: 400},
		{name: "v1_error_stream_type", method: post, path: "/v1/stream", body: `{"pair":"pt-en","type":"filme"}`, wantStatus: 400},
		{name: "v1_error_bad_lang", method: post, path: "/v1/invalidate", body: `{"lang":"UPPER"}`, wantStatus: 400},
		{name: "v1_error_delta_empty", method: post, path: "/v1/corpus/delta", body: `{}`, wantStatus: 400},
		{name: "v1_error_delta_bad_lang", method: post, path: "/v1/corpus/delta",
			body: `{"upserts":[{"lang":"XX","title":"T","wikitext":""}]}`, wantStatus: 400},
		{name: "v1_error_delta_bad_wikitext", method: post, path: "/v1/corpus/delta",
			body: `{"upserts":[{"lang":"pt","title":"Quebrada","wikitext":"{{Infobox filme | nome = x"}]}`, wantStatus: 400},
		{name: "v1_error_audit_bad_pair", method: post, path: "/v1/audit", body: `{"pair":"bogus"}`, wantStatus: 400},
		{name: "v1_error_audit_bad_mode", method: post, path: "/v1/audit", body: `{"mode":"sideways"}`, wantStatus: 400},
		{name: "v1_error_audit_bad_severity", method: post, path: "/v1/audit", body: `{"minSeverity":1.5}`, wantStatus: 400},

		// not_found (404).
		{name: "v1_error_unknown_type", method: post, path: "/v1/match", body: `{"pair":"pt-en","type":"no-such-type"}`, wantStatus: 404},
		{name: "v1_error_unknown_route", method: get, path: "/v1/nope", wantStatus: 404},
		{name: "v1_error_delta_remove_missing", method: post, path: "/v1/corpus/delta",
			body: `{"removes":[{"lang":"pt","title":"Não Existe"}]}`, wantStatus: 404},
		{name: "v1_error_audit_unknown_hub", method: post, path: "/v1/audit", body: `{"hub":"de"}`, wantStatus: 404},

		// method_not_allowed (405) — including the mutating-over-GET fix
		// on the legacy invalidate shim.
		{name: "v1_error_method_match", method: get, path: "/v1/match", wantStatus: 405},
		{name: "v1_error_method_corpus", method: post, path: "/v1/corpus", body: `{}`, wantStatus: 405},
		{name: "legacy_invalidate_get", method: get, path: "/session/invalidate", wantStatus: 405},

		// payload_too_large (413).
		{
			name: "v1_error_payload_too_large", method: post, path: "/v1/match",
			body: `{"pair":"` + strings.Repeat("x", 256) + `"}`, wantStatus: 413,
			opts: []HandlerOption{WithMaxBodyBytes(64)},
		},

		// deadline_exceeded (504): a nanosecond budget expires before
		// matching starts.
		{
			name: "v1_error_deadline", method: post, path: "/v1/match", body: `{"pair":"pt-en"}`,
			wantStatus: 504, opts: []HandlerOption{WithRequestTimeout(1)},
		},

		// overloaded (429): a zero-slot limiter sheds deterministically.
		{
			name: "v1_error_overloaded", method: post, path: "/v1/match", body: `{"pair":"pt-en"}`,
			wantStatus: 429,
			handler: func(t *testing.T) http.Handler {
				entered := make(chan struct{}, 1)
				release := make(chan struct{})
				t.Cleanup(func() { close(release) })
				inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					select {
					case entered <- struct{}{}:
					default:
					}
					<-release
				})
				h, _ := WrapMiddleware(inner, WithMaxConcurrent(1))
				// Hold the only slot for the duration of the case; the
				// entered signal fires from inside the limiter, so once it
				// arrives the next request must shed.
				go func() {
					h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/hold", nil))
				}()
				<-entered
				return h
			},
		},

		// internal (500): recovered panic.
		{
			name: "v1_error_internal", method: post, path: "/v1/match", body: `{"pair":"pt-en"}`,
			wantStatus: 500,
			handler: func(t *testing.T) http.Handler {
				inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { panic("golden") })
				h, _ := WrapMiddleware(inner)
				return h
			},
		},
	}
}

func TestV1Golden(t *testing.T) {
	for _, gc := range v1GoldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			var h http.Handler
			if gc.handler != nil {
				h = gc.handler(t)
			} else {
				// Fresh session per case: response cache counters depend
				// only on this one request.
				h = NewHandler(New(smallCorpus(t)), gc.opts...)
			}
			srv := httptest.NewServer(h)
			defer srv.Close()

			var body io.Reader
			if gc.body != "" {
				body = strings.NewReader(gc.body)
			}
			req, err := http.NewRequest(gc.method, srv.URL+gc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if gc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != gc.wantStatus {
				raw, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s %s: status %d, want %d\n%s", gc.method, gc.path, resp.StatusCode, gc.wantStatus, clip(raw))
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}

			var normalized []byte
			if gc.ndjson {
				normalized = normalizeV1NDJSON(t, raw)
			} else {
				normalized = normalizeJSON(t, raw)
			}

			path := filepath.Join("testdata", "golden", gc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, normalized, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(normalized, want) {
				t.Errorf("response differs from %s\n--- got ---\n%s\n--- want ---\n%s",
					path, clip(normalized), clip(want))
			}
		})
	}
}

// normalizeV1NDJSON is normalizeNDJSON plus scrubbing of the per-line
// "done" counter: v1 stream lines carry completion-order positions that
// are scheduling-dependent once workers run in parallel.
func normalizeV1NDJSON(t *testing.T, body []byte) []byte {
	t.Helper()
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("invalid NDJSON line: %v\n%s", err, sc.Text())
		}
		scrubVolatile(v)
		if _, ok := v["done"]; ok {
			v["done"] = 0.0
		}
		out, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(out))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(lines, func(i, j int) bool { return ndjsonKey(lines[i]) < ndjsonKey(lines[j]) })
	return []byte(strings.Join(lines, "\n") + "\n")
}
