package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/synth"
	"repro/internal/wiki"
)

var (
	largeOnce   sync.Once
	largeCorpus *wiki.Corpus
)

// fullCorpus generates the full-scale synthetic corpus (the paper's
// dataset proportions) — big enough that a cold pt-en match takes on the
// order of a hundred milliseconds, so mid-flight cancellation has
// something to interrupt.
func fullCorpus(t testing.TB) *wiki.Corpus {
	t.Helper()
	largeOnce.Do(func() {
		c, _, err := synth.Generate(synth.DefaultConfig())
		if err != nil {
			t.Fatalf("generate full corpus: %v", err)
		}
		largeCorpus = c
	})
	return largeCorpus
}

// TestMatchPreCancelled: a context cancelled before the call fails fast
// with ctx.Err() and caches nothing usable.
func TestMatchPreCancelled(t *testing.T) {
	s := New(fullCorpus(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := s.Match(ctx, wiki.PtEn)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Match = %v, %v; want nil, context.Canceled", res, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled Match took %v", elapsed)
	}
	// The aborted build must not have poisoned the cache: a live context
	// succeeds.
	if _, err := s.Match(context.Background(), wiki.PtEn); err != nil {
		t.Fatalf("Match after cancellation: %v", err)
	}
}

// TestMatchCancelMidFlight cancels while the cold pt-en match is deep in
// artifact building / pair scoring and requires a prompt ctx.Err()
// return — well under the cold duration measured in the same test run.
func TestMatchCancelMidFlight(t *testing.T) {
	c := fullCorpus(t)

	coldStart := time.Now()
	if _, err := New(c).Match(context.Background(), wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)

	ctx, cancel := context.WithTimeout(context.Background(), cold/10)
	defer cancel()
	start := time.Now()
	res, err := New(c).Match(ctx, wiki.PtEn)
	elapsed := time.Since(start)
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Match = %v, %v; want nil, context.DeadlineExceeded", res, err)
	}
	// Chunk-boundary checks bound the cancellation latency to a few
	// milliseconds of scoring plus at most one partial artifact build; a
	// whole cold-match duration of slack keeps the bound robust under CI
	// noise while still proving we did not run to completion first.
	if elapsed > cold {
		t.Errorf("cancelled Match returned after %v; cold match takes %v", elapsed, cold)
	}
}

// TestMatchTypeCancelMidScoring cancels a single-type alignment whose
// artifacts are already cached, so the only interruptible stage left is
// the chunked pair-scoring loop.
func TestMatchTypeCancelMidScoring(t *testing.T) {
	c := fullCorpus(t)
	s := New(c)
	ctx := context.Background()
	types, err := s.Types(ctx, wiki.PtEn)
	if err != nil || len(types) == 0 {
		t.Fatalf("Types: %v (%d)", err, len(types))
	}
	tp := types[0]
	if _, err := s.MatchType(ctx, wiki.PtEn, tp[0], tp[1]); err != nil {
		t.Fatal(err) // warms the artifact cache
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if res, err := s.MatchType(cancelled, wiki.PtEn, tp[0], tp[1]); res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchType = %v, %v; want nil, context.Canceled", res, err)
	}
}

// TestMatchStreamCancel cancels a stream before consuming it — the
// hung-up-client scenario. The buffered channel means workers never
// block on the unconsumed stream; the cancelled context must stop the
// types that have not started, so the channel closes promptly with only
// the handful of in-flight types (if any) slipping through.
func TestMatchStreamCancel(t *testing.T) {
	c := fullCorpus(t)
	s := New(c)
	ctx, cancel := context.WithCancel(context.Background())
	updates, err := s.MatchStream(ctx, wiki.PtEn)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// Give the pool a moment to observe the dead context and drain.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	total := -1
	delivered := 0
	for u := range updates {
		if u.Err == nil {
			total = u.Total
			delivered++
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled stream took %v to close", elapsed)
	}
	if total >= 0 && delivered >= total {
		t.Errorf("cancelled, unconsumed stream still delivered all %d types", total)
	}
}
