package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/wiki"
)

// TestFailureCounterOnWire: a build aborted by cancellation lands in
// Failures — not Misses — and the counter travels the whole serving
// path: Session.CacheStats, the protocol DTO, and the /v1/corpus JSON
// body, where failures is omitted while zero (keeping historical
// responses byte-identical) and appears once a build has failed.
func TestFailureCounterOnWire(t *testing.T) {
	s := New(smallCorpus(t))
	h := NewHandler(s)

	corpusBody := func() map[string]any {
		srv := httptest.NewServer(h)
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/corpus")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("invalid /v1/corpus body: %v\n%s", err, raw)
		}
		return v["cache"].(map[string]any)
	}

	if cache := corpusBody(); func() bool { _, ok := cache["failures"]; return ok }() {
		t.Fatalf("fresh session: failures key present in %v, want omitted while zero", cache)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Match(ctx, wiki.PtEn); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Match err = %v, want context.Canceled", err)
	}
	cs := s.CacheStats()
	if cs.Failures == 0 {
		t.Fatal("cancelled build not counted in Failures")
	}
	if cs.Misses != 0 {
		t.Fatalf("cancelled build counted as %d misses, want 0", cs.Misses)
	}

	cache := corpusBody()
	got, ok := cache["failures"]
	if !ok {
		t.Fatalf("failures key missing from /v1/corpus cache after a failed build: %v", cache)
	}
	if got.(float64) != float64(cs.Failures) {
		t.Fatalf("/v1/corpus failures = %v, want %d", got, cs.Failures)
	}

	// A healthy match afterwards: the failure tally is sticky, misses
	// now count the completed builds.
	if _, err := s.Match(context.Background(), wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	after := s.CacheStats()
	if after.Failures != cs.Failures {
		t.Fatalf("Failures moved %d -> %d on a successful match", cs.Failures, after.Failures)
	}
	if after.Misses == 0 {
		t.Fatal("completed builds not counted in Misses")
	}
	if body := corpusBody(); !strings.Contains(asJSON(t, body), `"failures"`) {
		t.Fatalf("failures key dropped after successful match: %v", body)
	}
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
