package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/multi"
	"repro/internal/wiki"
)

// The /matchall wire DTOs. Cluster, Correspondence and Conflict are
// serialized in internal/multi's own JSON shape.

// MatchAllPairJSON summarizes one pair's outcome within a batch.
type MatchAllPairJSON struct {
	Pair            string  `json:"pair"`
	Types           int     `json:"types"`
	Correspondences int     `json:"correspondences"`
	Error           string  `json:"error,omitempty"`
	ElapsedMS       float64 `json:"elapsedMs"`
}

// MatchAllResponseJSON is the wire form of a full /matchall run.
type MatchAllResponseJSON struct {
	Mode      string             `json:"mode"`
	Hub       string             `json:"hub"`
	Pairs     []MatchAllPairJSON `json:"pairs"`
	Clusters  []multi.Cluster    `json:"clusters"`
	Conflicts int                `json:"conflicts"`
	ElapsedMS float64            `json:"elapsedMs"`
	Cache     CacheStats         `json:"cache"`
}

// MatchAllStreamLineJSON is one NDJSON line of /matchall/stream: pair
// progress lines first (completion order), then a final line carrying
// the merged clusters.
type MatchAllStreamLineJSON struct {
	Done  int                   `json:"done"`
	Total int                   `json:"total"`
	Pair  *MatchAllPairJSON     `json:"pair,omitempty"`
	Final *MatchAllResponseJSON `json:"final,omitempty"`
}

// registerMatchAll mounts the all-pairs endpoints:
//
//	GET /matchall?mode=pivot|direct&hub=en&workers=N   full batch, JSON
//	GET /matchall/stream?...                            per-pair progress +
//	                                                    final clusters, NDJSON
func registerMatchAll(mux *http.ServeMux, s *Session) {
	mux.HandleFunc("GET /matchall", func(w http.ResponseWriter, r *http.Request) {
		opts, ok := requestMatchAllOptions(w, r)
		if !ok {
			return
		}
		start := time.Now()
		res, err := s.MatchAll(r.Context(), opts)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, matchAllResponse(s, res, msSince(start)))
	})
	mux.HandleFunc("GET /matchall/stream", func(w http.ResponseWriter, r *http.Request) {
		opts, ok := requestMatchAllOptions(w, r)
		if !ok {
			return
		}
		start := time.Now()
		updates, err := s.MatchAllStream(r.Context(), opts)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for u := range updates {
			line := MatchAllStreamLineJSON{Done: u.Done, Total: u.Total}
			if u.Outcome != nil {
				p := pairOutcomeJSON(u.Outcome)
				line.Pair = &p
			}
			if u.Final != nil {
				resp := matchAllResponse(s, u.Final, msSince(start))
				line.Final = &resp
			}
			_ = enc.Encode(line)
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
}

func matchAllResponse(s *Session, res *multi.BatchResult, elapsedMS float64) MatchAllResponseJSON {
	resp := MatchAllResponseJSON{
		Mode:      res.Plan.Mode.String(),
		Hub:       res.Plan.Hub.String(),
		Clusters:  res.Clusters,
		ElapsedMS: elapsedMS,
		Cache:     s.CacheStats(),
	}
	if resp.Clusters == nil {
		resp.Clusters = []multi.Cluster{}
	}
	for i := range res.Outcomes {
		resp.Pairs = append(resp.Pairs, pairOutcomeJSON(&res.Outcomes[i]))
	}
	for _, cl := range res.Clusters {
		resp.Conflicts += len(cl.Conflicts)
	}
	return resp
}

func pairOutcomeJSON(o *multi.PairOutcome) MatchAllPairJSON {
	out := MatchAllPairJSON{
		Pair:            o.Pair.String(),
		Correspondences: o.Correspondences(),
		ElapsedMS:       float64(o.Elapsed) / float64(time.Millisecond),
	}
	if o.Result != nil {
		out.Types = len(o.Result.Types)
	}
	if o.Err != nil {
		out.Error = o.Err.Error()
	}
	return out
}

// requestMatchAllOptions parses mode, hub and workers query parameters.
func requestMatchAllOptions(w http.ResponseWriter, r *http.Request) (multi.Options, bool) {
	opts := multi.Options{Mode: multi.ModePivot, Hub: wiki.English}
	if raw := r.URL.Query().Get("mode"); raw != "" {
		mode, err := multi.ParseMode(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return multi.Options{}, false
		}
		opts.Mode = mode
	}
	if raw := r.URL.Query().Get("hub"); raw != "" {
		hub := wiki.Language(raw)
		if !hub.Valid() {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("invalid hub language %q", raw)})
			return multi.Options{}, false
		}
		opts.Hub = hub
	}
	if raw := r.URL.Query().Get("workers"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("invalid workers %q", raw)})
			return multi.Options{}, false
		}
		opts.Workers = n
	}
	return opts, true
}
