package service

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/wiki"
)

// The typed execution path of protocol v1. ServeMatch, ServeMatchAll
// and ServeStream are the one implementation behind the HTTP handlers,
// the legacy GET shims, the Go client's in-process backend and the CLI:
// every entrypoint builds a protocol.MatchRequest and funnels it
// through here, so validation, threshold overrides and response
// assembly cannot drift between surfaces.

// ServeMatch answers a pair or single-type MatchRequest. All-pairs
// requests are rejected — they belong to ServeMatchAll.
func (s *Session) ServeMatch(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchResponse, error) {
	r, err := req.Validate()
	if err != nil {
		return nil, err
	}
	if r.All {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "all-pairs request must be sent to /v1/matchall")
	}
	m := s.matcherFor(r.Overrides)
	start := time.Now()
	if r.Type != "" {
		typeB, err := s.counterpartType(ctx, r)
		if err != nil {
			return nil, err
		}
		tr, err := s.matchTypeWith(ctx, r.Pair, r.Type, typeB, m)
		if err != nil {
			return nil, protocol.FromErr(err)
		}
		return &protocol.MatchResponse{
			Pair:      r.Pair.String(),
			Types:     [][2]string{{r.Type, typeB}},
			Results:   []protocol.TypeResult{typeResultDTO(tr, msSince(start))},
			ElapsedMS: msSince(start),
			Cache:     s.CacheStats(),
		}, nil
	}
	res, err := s.matchWith(ctx, r.Pair, m)
	if err != nil {
		return nil, protocol.FromErr(err)
	}
	resp := &protocol.MatchResponse{
		Pair:      r.Pair.String(),
		Types:     res.Types,
		ElapsedMS: msSince(start),
		Cache:     s.CacheStats(),
	}
	for _, tp := range res.Types {
		resp.Results = append(resp.Results, typeResultDTO(res.PerType[tp], 0))
	}
	return resp, nil
}

// ServeMatchAll answers an all-pairs MatchRequest. Pair-scoped requests
// are rejected — they belong to ServeMatch.
func (s *Session) ServeMatchAll(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchAllResponse, error) {
	req.All = true
	r, err := req.Validate()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := multi.Run(ctx, s.pairMatcherFor(r.Overrides), s.Corpus().Languages(), r.Multi)
	if err != nil {
		return nil, protocol.FromErr(err)
	}
	resp := MatchAllDTO(res, msSince(start), s.CacheStats())
	return &resp, nil
}

// ServeStream runs a MatchRequest with streamed progress: pair-scoped
// requests emit one Type line per finished entity type and close with a
// FinalMatch line; all-pairs requests emit one Pair line per finished
// language pair and close with a FinalAll line. The channel is buffered
// for the whole run, so an abandoned consumer never strands the
// workers; after a cancellation, Error lines record the skipped work
// and the final line is withheld. Single-type requests cannot stream.
func (s *Session) ServeStream(ctx context.Context, req protocol.MatchRequest) (<-chan protocol.StreamLine, error) {
	r, err := req.Validate()
	if err != nil {
		return nil, err
	}
	if r.Type != "" {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "single-type requests cannot stream; use /v1/match")
	}
	if r.All {
		updates, err := multi.Stream(ctx, s.pairMatcherFor(r.Overrides), s.Corpus().Languages(), r.Multi)
		if err != nil {
			return nil, protocol.FromErr(err)
		}
		return RelayAllStream(updates, s.CacheStats), nil
	}
	start := time.Now()
	updates, err := s.streamWith(ctx, r.Pair, s.matcherFor(r.Overrides))
	if err != nil {
		return nil, protocol.FromErr(err)
	}
	return s.relayPairStream(r, start, updates), nil
}

// relayPairStream translates the session's TypeUpdate stream into
// protocol lines, assembling the FinalMatch summary when every type
// completed. The output channel is buffered for the whole stream.
func (s *Session) relayPairStream(r protocol.Resolved, start time.Time, updates <-chan TypeUpdate) <-chan protocol.StreamLine {
	out := make(chan protocol.StreamLine, cap(updates)+2)
	go func() {
		defer close(out)
		done, failed := 0, false
		byType := make(map[string]protocol.TypeResult)
		var types [][2]string
		total := 0
		for u := range updates {
			done++
			total = u.Total
			line := protocol.StreamLine{Done: done, Total: u.Total}
			if u.Err != nil {
				failed = true
				line.Error = protocol.FromErr(u.Err)
			} else {
				dto := typeResultDTO(u.Result, 0)
				byType[u.TypeA] = dto
				types = append(types, [2]string{u.TypeA, u.TypeB})
				line.Type = &dto
			}
			out <- line
		}
		if failed {
			return
		}
		final := &protocol.MatchResponse{
			Pair:      r.Pair.String(),
			Types:     sortTypePairs(types),
			ElapsedMS: msSince(start),
			Cache:     s.CacheStats(),
		}
		for _, tp := range final.Types {
			final.Results = append(final.Results, byType[tp[0]])
		}
		out <- protocol.StreamLine{Done: done, Total: total, FinalMatch: final}
	}()
	return out
}

// RelayAllStream translates multi's Update stream into protocol lines:
// one Pair line per finished language pair, then a FinalAll line built
// by MatchAllDTO. cache supplies the cache-stats snapshot stamped into
// the final response at assembly time. The output channel is buffered
// for the whole stream, like the input. Exported for the fleet router,
// whose scatter-gathered all-pairs stream rides the same relay as a
// single binary's.
func RelayAllStream(updates <-chan multi.Update, cache func() protocol.CacheStats) <-chan protocol.StreamLine {
	out := make(chan protocol.StreamLine, cap(updates)+1)
	go func() {
		defer close(out)
		start := time.Now()
		for u := range updates {
			line := protocol.StreamLine{Done: u.Done, Total: u.Total}
			if u.Outcome != nil {
				p := PairOutcomeDTO(u.Outcome)
				line.Pair = &p
			}
			if u.Final != nil {
				final := MatchAllDTO(u.Final, msSince(start), cache())
				line.FinalAll = &final
			}
			out <- line
		}
	}()
	return out
}

// Stats snapshots the corpus, cache and configuration — the body of
// GET /v1/corpus and the legacy /corpus/stats shim.
func (s *Session) Stats() protocol.StatsResponse {
	return protocol.StatsResponse{
		Corpus: s.Corpus().Stats(),
		Cache:  s.CacheStats(),
		Config: s.cfg,
	}
}

// matcherFor resolves the matcher a request runs with: the session's
// own for override-free requests, a throwaway matcher with the
// overridden thresholds otherwise. Overrides never reach artifact
// construction, so both share the session's cache.
func (s *Session) matcherFor(o protocol.Overrides) *core.Matcher {
	if o.Empty() {
		return s.m
	}
	return core.NewMatcher(o.Apply(s.cfg))
}

// pairMatcherFor is matcherFor lifted to the batch scheduler's
// PairMatcher interface.
func (s *Session) pairMatcherFor(o protocol.Overrides) multi.PairMatcher {
	if o.Empty() {
		return s
	}
	return overridePairMatcher{s: s, m: core.NewMatcher(o.Apply(s.cfg))}
}

// overridePairMatcher routes batch pairs through the session's artifact
// cache while scoring with an override matcher.
type overridePairMatcher struct {
	s *Session
	m *core.Matcher
}

func (p overridePairMatcher) Match(ctx context.Context, pair wiki.LanguagePair) (*core.Result, error) {
	return p.s.matchWith(ctx, pair, p.m)
}

// MatchAllDTO flattens a batch result for the wire. It is the one
// assembly path for MatchAllResponse bodies — the session's ServeMatchAll
// and the fleet router's scatter-gather both call it, so a routed batch
// serializes byte-identically to a single binary's.
func MatchAllDTO(res *multi.BatchResult, elapsedMS float64, cache protocol.CacheStats) protocol.MatchAllResponse {
	resp := protocol.MatchAllResponse{
		Mode:      res.Plan.Mode.String(),
		Hub:       res.Plan.Hub.String(),
		Planned:   []string{},
		Clusters:  res.Clusters,
		ElapsedMS: elapsedMS,
		Cache:     cache,
	}
	if resp.Clusters == nil {
		resp.Clusters = []multi.Cluster{}
	}
	for _, pair := range res.Plan.Pairs {
		resp.Planned = append(resp.Planned, pair.String())
	}
	for i := range res.Outcomes {
		resp.Pairs = append(resp.Pairs, PairOutcomeDTO(&res.Outcomes[i]))
	}
	for _, cl := range res.Clusters {
		resp.Conflicts += len(cl.Conflicts)
	}
	return resp
}

// PairOutcomeDTO flattens one batch pair outcome for the wire. Exported
// alongside MatchAllDTO for the fleet router's stream relay.
func PairOutcomeDTO(o *multi.PairOutcome) protocol.MatchAllPair {
	out := protocol.MatchAllPair{
		Pair:            o.Pair.String(),
		Correspondences: o.Correspondences(),
		ElapsedMS:       float64(o.Elapsed) / float64(time.Millisecond),
	}
	if o.Result != nil {
		out.Types = len(o.Result.Types)
	}
	if o.Err != nil {
		out.Error = o.Err.Error()
	}
	return out
}

// typeResultDTO flattens one TypeResult for the wire, with per-pair
// confidences attached.
func typeResultDTO(tr *core.TypeResult, elapsedMS float64) protocol.TypeResult {
	out := protocol.TypeResult{
		TypeA:      tr.TypeA,
		TypeB:      tr.TypeB,
		Attributes: len(tr.TD.Attrs),
		Candidates: len(tr.Candidates),
		ElapsedMS:  elapsedMS,
	}
	for _, p := range tr.CrossPairsSorted() {
		out.Correspondences = append(out.Correspondences, protocol.Correspondence{
			A: p[0], B: p[1], Confidence: tr.Confidence(p[0], p[1]),
		})
	}
	return out
}

// counterpartType resolves the aligned counterpart of a single-type
// request's source type, or a CodeNotFound error.
func (s *Session) counterpartType(ctx context.Context, r protocol.Resolved) (string, error) {
	types, err := s.Types(ctx, r.Pair)
	if err != nil {
		return "", protocol.FromErr(err)
	}
	for _, tp := range types {
		if tp[0] == r.Type {
			return tp[1], nil
		}
	}
	return "", protocol.Errorf(protocol.CodeNotFound, "no matched entity type %q for pair %s", r.Type, r.Pair)
}

// sortTypePairs orders an alignment by source type — the deterministic
// order Match responses use.
func sortTypePairs(types [][2]string) [][2]string {
	for i := 1; i < len(types); i++ {
		for j := i; j > 0 && types[j][0] < types[j-1][0]; j-- {
			types[j], types[j-1] = types[j-1], types[j]
		}
	}
	return types
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
