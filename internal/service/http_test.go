package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/text"
)

// startServer spins up the full HTTP API over a session on the small
// generated corpus.
func startServer(t *testing.T) (*httptest.Server, *Session) {
	t.Helper()
	s := New(smallCorpus(t))
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return srv, s
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

// TestHTTPMatchEndToEnd drives /corpus/stats, /match, /match/{type} and
// the NDJSON stream against a generated corpus through a real HTTP
// round-trip.
func TestHTTPMatchEndToEnd(t *testing.T) {
	srv, _ := startServer(t)

	// Corpus stats.
	var stats StatsResponseJSON
	getJSON(t, srv.URL+"/corpus/stats", http.StatusOK, &stats)
	if stats.Corpus.Articles["pt"] == 0 || stats.Corpus.Articles["en"] == 0 {
		t.Fatalf("stats missing articles: %+v", stats.Corpus.Articles)
	}
	if stats.Config.TSim != 0.6 {
		t.Errorf("config TSim = %v over the wire", stats.Config.TSim)
	}

	// Full match.
	var match MatchResponseJSON
	getJSON(t, srv.URL+"/match?pair=pt-en", http.StatusOK, &match)
	if match.Pair != "pt-en" || len(match.Types) == 0 || len(match.Results) != len(match.Types) {
		t.Fatalf("bad match response: pair=%s types=%d results=%d",
			match.Pair, len(match.Types), len(match.Results))
	}
	found := false
	for _, r := range match.Results {
		if r.TypeA != "filme" {
			continue
		}
		for _, corr := range r.Correspondences {
			if corr.A == text.Normalize("direção") && corr.B == "directed by" {
				found = true
				if corr.Confidence <= 0 || corr.Confidence > 1 {
					t.Errorf("confidence out of range: %v", corr.Confidence)
				}
			}
		}
	}
	if !found {
		t.Error("direção ~ directed by correspondence missing from /match output")
	}
	if match.Cache.TypeEntries == 0 {
		t.Errorf("cache stats not populated: %+v", match.Cache)
	}

	// Warm repeat must hit the cache.
	var warm MatchResponseJSON
	getJSON(t, srv.URL+"/match?pair=pt-en", http.StatusOK, &warm)
	if warm.Cache.Hits <= match.Cache.Hits {
		t.Errorf("second /match did not hit the cache: %d → %d hits",
			match.Cache.Hits, warm.Cache.Hits)
	}

	// Single type.
	var one TypeResultJSON
	getJSON(t, srv.URL+"/match/filme?pair=pt-en", http.StatusOK, &one)
	if one.TypeA != "filme" || one.TypeB != "film" || len(one.Correspondences) == 0 {
		t.Errorf("bad /match/filme response: %+v", one)
	}

	// NDJSON stream: one line per type, same types as the full match.
	resp, err := http.Get(srv.URL + "/match/stream?pair=pt-en")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	streamed := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line TypeResultJSON
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.TypeA == "" {
			t.Fatalf("NDJSON line without typeA: %q", sc.Text())
		}
		streamed[line.TypeA] = len(line.Correspondences)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(match.Types) {
		t.Fatalf("streamed %d types, want %d", len(streamed), len(match.Types))
	}
	for _, r := range match.Results {
		if streamed[r.TypeA] != len(r.Correspondences) {
			t.Errorf("type %s: stream has %d correspondences, /match has %d",
				r.TypeA, streamed[r.TypeA], len(r.Correspondences))
		}
	}
}

// TestHTTPVnEnAndErrors covers the second pair, bad inputs, and cache
// invalidation over the wire.
func TestHTTPVnEnAndErrors(t *testing.T) {
	srv, sess := startServer(t)

	var match MatchResponseJSON
	getJSON(t, srv.URL+"/match?pair=vi-en", http.StatusOK, &match)
	if match.Pair != "vi-en" || len(match.Types) == 0 {
		t.Fatalf("bad vi-en response: %+v", match.Pair)
	}
	// The legacy alias resolves to the same pair.
	var alias MatchResponseJSON
	getJSON(t, srv.URL+"/match?pair=vn-en", http.StatusOK, &alias)
	if alias.Pair != "vi-en" {
		t.Errorf("vn-en alias resolved to %q", alias.Pair)
	}

	getJSON(t, srv.URL+"/match?pair=bogus", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/match/definitely-not-a-type?pair=pt-en", http.StatusNotFound, nil)

	// Invalidate Vietnamese artifacts over the wire.
	resp, err := http.Post(srv.URL+"/session/invalidate?lang=vi", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["dropped"] == 0 {
		t.Error("invalidate dropped nothing")
	}
	// The vi-en entries are gone; the pt-en pair entry (created by the
	// /match/{type} lookup above) survives.
	if st := sess.CacheStats(); st.PairEntries != 1 {
		t.Errorf("pair entries after Invalidate(vi) = %d, want 1: %+v", st.PairEntries, st)
	}

	resp2, err := http.Post(srv.URL+"/session/invalidate?lang=UPPER", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid lang: status %d, want 400", resp2.StatusCode)
	}
}

// TestParsePair table-tests the pair parser.
func TestParsePair(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"pt-en", "pt-en", true},
		{"vi-en", "vi-en", true},
		{"vn-en", "vi-en", true},
		{"de-fr", "de-fr", true},
		{"", "", false},
		{"pten", "", false},
		{"PT-EN", "", false},
		{"pt-", "", false},
	}
	for _, c := range cases {
		pair, err := ParsePair(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePair(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && pair.String() != c.want {
			t.Errorf("ParsePair(%q) = %s, want %s", c.in, pair, c.want)
		}
	}
	if got := fmt.Sprint(must(ParsePair("vn-en"))); got != "vi-en" {
		t.Errorf("alias: %s", got)
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
