// Package service exposes WikiMatch as a long-lived matching service.
// A Session wraps one corpus and one matcher configuration and owns a
// keyed artifact cache — per-pair translation dictionaries and
// entity-type alignments, per-type similarity workspaces (sim.TypeData)
// and LSI models — so repeated and overlapping match calls reuse the
// expensive construction work instead of recomputing it. All methods are
// safe for concurrent use; identical artifacts requested concurrently are
// built exactly once (single-flight), and every match entrypoint honours
// context cancellation down to the chunk boundaries of the pair-scoring
// hot path.
//
// The cached artifacts are inputs to Algorithm 1, not its outputs: every
// Match call still runs the alignment itself, so a warm call returns a
// result identical to a cold one — only faster.
package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/protocol"
	"repro/internal/wiki"
)

// Session is a long-lived matching service over one corpus. Create it
// with New; the zero value is not usable.
type Session struct {
	corpus *wiki.Corpus
	cfg    core.Config
	m      *core.Matcher

	mu       sync.Mutex
	pairArts map[wiki.LanguagePair]*pairEntry
	typeArts map[typeKey]*typeEntry
	hits     atomic.Uint64
	misses   atomic.Uint64

	// Warm-start provenance: how many cache entries Restore seeded from a
	// snapshot, and that snapshot's creation time (zero for cold
	// sessions). Set once before the session is shared; read-only after.
	restoredPairs int
	restoredTypes int
	snapshotTime  time.Time
}

// typeKey identifies one per-type artifact set. The matcher configuration
// is fixed per session, so it is not part of the key.
type typeKey struct {
	pair         wiki.LanguagePair
	typeA, typeB string
}

// pairEntry caches the pair-level artifacts: the entity-type alignment
// and the translation dictionary. done is closed when the build finishes
// (successfully or not).
type pairEntry struct {
	done  chan struct{}
	types [][2]string
	dict  *dict.Dictionary
	err   error
}

// typeEntry caches one type pair's similarity workspace and LSI model.
type typeEntry struct {
	done chan struct{}
	art  *core.TypeArtifacts
	err  error
}

// New creates a session over the corpus. Options adjust the matcher
// configuration starting from core.DefaultConfig (the paper's thresholds).
func New(c *wiki.Corpus, opts ...Option) *Session {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Session{
		corpus:   c,
		cfg:      cfg,
		m:        core.NewMatcher(cfg),
		pairArts: make(map[wiki.LanguagePair]*pairEntry),
		typeArts: make(map[typeKey]*typeEntry),
	}
}

// Config returns the session's matcher configuration.
func (s *Session) Config() core.Config { return s.cfg }

// Corpus returns the corpus the session serves.
func (s *Session) Corpus() *wiki.Corpus { return s.corpus }

// Match runs WikiMatch end to end for a language pair, reusing any cached
// artifacts and caching whatever it has to build. The result is identical
// to a cold core.Matcher.Match run with the same configuration.
func (s *Session) Match(ctx context.Context, pair wiki.LanguagePair) (*core.Result, error) {
	return s.matchWith(ctx, pair, s.m)
}

// matchWith is Match with an explicit matcher, the seam that lets a
// protocol request override matching thresholds per request: m scores
// and aligns, while artifact construction (and the cache key space)
// stays bound to the session's own configuration. Thresholds do not
// shape artifacts, so any threshold-overridden matcher reuses the
// shared cache safely.
func (s *Session) matchWith(ctx context.Context, pair wiki.LanguagePair, m *core.Matcher) (*core.Result, error) {
	pe, err := s.pairArtifacts(ctx, pair)
	if err != nil {
		return nil, err
	}
	// Copy the cached alignment: MatchCtx hands Types to the caller via
	// Result.Types, and a caller reordering its result must not corrupt
	// the shared cache entry.
	types := make([][2]string, len(pe.types))
	copy(types, pe.types)
	art := &core.MatchArtifacts{
		Types:    types,
		Dict:     pe.dict,
		HaveDict: true,
		PerType: func(ctx context.Context, typeA, typeB string) (*core.TypeArtifacts, error) {
			return s.typeArtifacts(ctx, pair, typeA, typeB, pe.dict)
		},
	}
	return m.MatchCtx(ctx, s.corpus, pair, art)
}

// MatchType aligns one entity-type pair, reusing cached artifacts.
func (s *Session) MatchType(ctx context.Context, pair wiki.LanguagePair, typeA, typeB string) (*core.TypeResult, error) {
	return s.matchTypeWith(ctx, pair, typeA, typeB, s.m)
}

// matchTypeWith is MatchType with an explicit matcher (see matchWith).
func (s *Session) matchTypeWith(ctx context.Context, pair wiki.LanguagePair, typeA, typeB string, m *core.Matcher) (*core.TypeResult, error) {
	pe, err := s.pairArtifacts(ctx, pair)
	if err != nil {
		return nil, err
	}
	art, err := s.typeArtifacts(ctx, pair, typeA, typeB, pe.dict)
	if err != nil {
		return nil, err
	}
	return m.MatchTypeCtx(ctx, s.corpus, pair, typeA, typeB, pe.dict, art)
}

// Types returns the entity-type alignment for a pair (cached after the
// first call).
func (s *Session) Types(ctx context.Context, pair wiki.LanguagePair) ([][2]string, error) {
	pe, err := s.pairArtifacts(ctx, pair)
	if err != nil {
		return nil, err
	}
	out := make([][2]string, len(pe.types))
	copy(out, pe.types)
	return out, nil
}

// Dictionary returns the pair's cached translation dictionary (nil when
// the session runs the NoDictionary ablation).
func (s *Session) Dictionary(ctx context.Context, pair wiki.LanguagePair) (*dict.Dictionary, error) {
	pe, err := s.pairArtifacts(ctx, pair)
	if err != nil {
		return nil, err
	}
	return pe.dict, nil
}

// Invalidate drops every cached artifact that involves the language —
// pair entries whose pair contains it and type entries derived from such
// pairs — and returns how many entries were dropped. The zero Language
// drops the whole cache. In-flight builds are unaffected: they complete
// into their (now orphaned) entries and the next request rebuilds.
func (s *Session) Invalidate(lang wiki.Language) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for pair := range s.pairArts {
		if lang == "" || pair.Contains(lang) {
			delete(s.pairArts, pair)
			dropped++
		}
	}
	for key := range s.typeArts {
		if lang == "" || key.pair.Contains(lang) {
			delete(s.typeArts, key)
			dropped++
		}
	}
	return dropped
}

// CacheStats is a snapshot of the artifact cache. RestoredPairs and
// RestoredTypes count the entries a warm start seeded from a persisted
// snapshot (service.Restore); they stay 0 for cold sessions, making
// warm-started processes observable through /v1/corpus and /v1/healthz.
// The wire form lives in internal/protocol; this alias keeps the
// session API self-contained.
type CacheStats = protocol.CacheStats

// CacheStats reports cache occupancy, the hit/miss counters accumulated
// over the session's lifetime, and how many entries were restored from a
// snapshot at warm start.
func (s *Session) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{
		PairEntries:   len(s.pairArts),
		TypeEntries:   len(s.typeArts),
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		RestoredPairs: s.restoredPairs,
		RestoredTypes: s.restoredTypes,
	}
}

// SnapshotTime returns the creation time of the snapshot this session
// was restored from, and whether there was one (false for cold-built
// sessions). wikimatchd's /healthz derives the snapshot age from it.
func (s *Session) SnapshotTime() (time.Time, bool) {
	return s.snapshotTime, !s.snapshotTime.IsZero()
}

// pairArtifacts returns the pair-level artifacts, building them once per
// pair. Concurrent callers for the same pair share one build; if the
// builder's context is cancelled, the entry is discarded and surviving
// waiters retry with their own contexts.
func (s *Session) pairArtifacts(ctx context.Context, pair wiki.LanguagePair) (*pairEntry, error) {
	for {
		s.mu.Lock()
		e, ok := s.pairArts[pair]
		if !ok {
			e = &pairEntry{done: make(chan struct{})}
			s.pairArts[pair] = e
			s.mu.Unlock()
			s.misses.Add(1)
			s.buildPairEntry(ctx, pair, e)
			if e.err != nil {
				return nil, e.err
			}
			return e, nil
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				continue // builder was cancelled, not us: rebuild
			}
			s.hits.Add(1)
			return e, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (s *Session) buildPairEntry(ctx context.Context, pair wiki.LanguagePair, e *pairEntry) {
	defer close(e.done)
	// The corpus-wide entity-type scan is the one build stage that is not
	// itself cancellable, so don't even start it for a dead context (a
	// disconnected client on a cold pair).
	if e.err = ctx.Err(); e.err == nil {
		e.types = core.MatchEntityTypes(s.corpus, pair)
		if e.types == nil {
			// Keep the cached alignment non-nil: nil is MatchArtifacts'
			// compute-it sentinel, and an empty alignment must still count
			// as cached on warm calls.
			e.types = [][2]string{}
		}
	}
	if e.err == nil && !s.cfg.NoDictionary {
		e.dict, e.err = dict.BuildCtx(ctx, s.corpus, pair.A, pair.B)
	}
	if e.err == nil {
		e.err = ctx.Err()
	}
	if e.err != nil {
		s.mu.Lock()
		if s.pairArts[pair] == e {
			delete(s.pairArts, pair)
		}
		s.mu.Unlock()
	}
}

// typeArtifacts returns one type pair's artifacts, building them once.
func (s *Session) typeArtifacts(ctx context.Context, pair wiki.LanguagePair, typeA, typeB string, d *dict.Dictionary) (*core.TypeArtifacts, error) {
	key := typeKey{pair: pair, typeA: typeA, typeB: typeB}
	for {
		s.mu.Lock()
		e, ok := s.typeArts[key]
		if !ok {
			e = &typeEntry{done: make(chan struct{})}
			s.typeArts[key] = e
			s.mu.Unlock()
			s.misses.Add(1)
			e.art, e.err = s.m.BuildTypeArtifacts(ctx, s.corpus, pair, typeA, typeB, d)
			if e.err != nil {
				s.mu.Lock()
				if s.typeArts[key] == e {
					delete(s.typeArts, key)
				}
				s.mu.Unlock()
			}
			close(e.done)
			if e.err != nil {
				return nil, e.err
			}
			return e.art, nil
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				continue
			}
			s.hits.Add(1)
			return e.art, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
