// Package service exposes WikiMatch as a long-lived matching service.
// A Session wraps one corpus and one matcher configuration and serves
// as a thin facade over the internal/artifact engine — the keyed
// dependency graph that caches per-pair translation dictionaries and
// entity-type alignments and per-type similarity workspaces
// (sim.TypeData) and LSI models — so repeated and overlapping match
// calls reuse the expensive construction work instead of recomputing
// it. All methods are safe for concurrent use; identical artifacts
// requested concurrently are built exactly once (single-flight), and
// every match entrypoint honours context cancellation down to the chunk
// boundaries of the pair-scoring hot path.
//
// The cached artifacts are inputs to Algorithm 1, not its outputs:
// every Match call still runs the alignment itself, so a warm call
// returns a result identical to a cold one — only faster.
//
// The corpus itself is mutable through ApplyDelta (see delta.go): the
// session swaps in an edited corpus copy-on-write and invalidates
// exactly the graph nodes the edit dirtied, so a re-match after a
// single-article edit rebuilds only that article's type artifacts.
package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/protocol"
	"repro/internal/wiki"
)

// Session is a long-lived matching service over one corpus. Create it
// with New; the zero value is not usable.
type Session struct {
	cfg core.Config
	m   *core.Matcher
	eng *artifact.Engine

	// state is the session's current (corpus, engine epoch) pair,
	// swapped atomically by ApplyDelta. Every request captures it once
	// and runs entirely against that snapshot: a request racing a delta
	// is consistently pre-delta or post-delta, never a mix.
	state atomic.Pointer[sessionState]

	// deltaMu serializes corpus mutations (and Save's consistent read
	// of corpus + graph); the artifact engine has its own lock.
	deltaMu sync.Mutex

	// snapshotTime is the creation time of the snapshot this session
	// was restored from (zero for cold sessions). Set once before the
	// session is shared; read-only after.
	snapshotTime time.Time

	// deltaTestHook, when non-nil, runs between ApplyDelta's diff phase
	// and its commit — a test seam for injecting cache fills into that
	// window. Set only by tests, before the session is shared.
	deltaTestHook func()
}

// sessionState pins one corpus generation to the engine epoch it was
// current at.
type sessionState struct {
	corpus *wiki.Corpus
	epoch  uint64
}

// pairData is the pair-level artifact node's value: the entity-type
// alignment and the translation dictionary.
type pairData struct {
	types [][2]string
	dict  *dict.Dictionary
}

// New creates a session over the corpus. Options adjust the matcher
// configuration starting from core.DefaultConfig (the paper's thresholds).
func New(c *wiki.Corpus, opts ...Option) *Session {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Session{
		cfg: cfg,
		m:   core.NewMatcher(cfg),
		eng: artifact.NewEngine(),
	}
	s.state.Store(&sessionState{corpus: c})
	return s
}

// Config returns the session's matcher configuration.
func (s *Session) Config() core.Config { return s.cfg }

// Corpus returns the corpus the session currently serves.
func (s *Session) Corpus() *wiki.Corpus { return s.state.Load().corpus }

// Match runs WikiMatch end to end for a language pair, reusing any cached
// artifacts and caching whatever it has to build. The result is identical
// to a cold core.Matcher.Match run with the same configuration.
func (s *Session) Match(ctx context.Context, pair wiki.LanguagePair) (*core.Result, error) {
	return s.matchWith(ctx, pair, s.m)
}

// matchWith is Match with an explicit matcher, the seam that lets a
// protocol request override matching thresholds per request: m scores
// and aligns, while artifact construction (and the cache key space)
// stays bound to the session's own configuration. Thresholds do not
// shape artifacts, so any threshold-overridden matcher reuses the
// shared cache safely.
func (s *Session) matchWith(ctx context.Context, pair wiki.LanguagePair, m *core.Matcher) (*core.Result, error) {
	st := s.state.Load()
	pd, err := s.pairArtifacts(ctx, st, pair)
	if err != nil {
		return nil, err
	}
	// Copy the cached alignment: MatchCtx hands Types to the caller via
	// Result.Types, and a caller reordering its result must not corrupt
	// the shared cache entry.
	types := make([][2]string, len(pd.types))
	copy(types, pd.types)
	art := &core.MatchArtifacts{
		Types:    types,
		Dict:     pd.dict,
		HaveDict: true,
		PerType: func(ctx context.Context, typeA, typeB string) (*core.TypeArtifacts, error) {
			return s.typeArtifacts(ctx, st, pair, typeA, typeB, pd.dict)
		},
	}
	return m.MatchCtx(ctx, st.corpus, pair, art)
}

// MatchType aligns one entity-type pair, reusing cached artifacts.
func (s *Session) MatchType(ctx context.Context, pair wiki.LanguagePair, typeA, typeB string) (*core.TypeResult, error) {
	return s.matchTypeWith(ctx, pair, typeA, typeB, s.m)
}

// matchTypeWith is MatchType with an explicit matcher (see matchWith).
func (s *Session) matchTypeWith(ctx context.Context, pair wiki.LanguagePair, typeA, typeB string, m *core.Matcher) (*core.TypeResult, error) {
	st := s.state.Load()
	pd, err := s.pairArtifacts(ctx, st, pair)
	if err != nil {
		return nil, err
	}
	art, err := s.typeArtifacts(ctx, st, pair, typeA, typeB, pd.dict)
	if err != nil {
		return nil, err
	}
	return m.MatchTypeCtx(ctx, st.corpus, pair, typeA, typeB, pd.dict, art)
}

// Types returns the entity-type alignment for a pair (cached after the
// first call).
func (s *Session) Types(ctx context.Context, pair wiki.LanguagePair) ([][2]string, error) {
	pd, err := s.pairArtifacts(ctx, s.state.Load(), pair)
	if err != nil {
		return nil, err
	}
	out := make([][2]string, len(pd.types))
	copy(out, pd.types)
	return out, nil
}

// Dictionary returns the pair's cached translation dictionary (nil when
// the session runs the NoDictionary ablation).
func (s *Session) Dictionary(ctx context.Context, pair wiki.LanguagePair) (*dict.Dictionary, error) {
	pd, err := s.pairArtifacts(ctx, s.state.Load(), pair)
	if err != nil {
		return nil, err
	}
	return pd.dict, nil
}

// Invalidate drops every cached artifact that involves the language —
// pair nodes whose pair contains it and, transitively, the type nodes
// built under those pairs — and returns how many entries were dropped.
// The zero Language drops the whole cache. In-flight builds are
// orphaned: they complete into their discarded entries, waiters retry,
// and the next request rebuilds.
func (s *Session) Invalidate(lang wiki.Language) int {
	pairs, types := s.InvalidateDetail(lang)
	return pairs + types
}

// InvalidateDetail is Invalidate with the per-kind breakdown the v1
// wire response reports: how many pair and how many type entries were
// dropped.
func (s *Session) InvalidateDetail(lang wiki.Language) (pairs, types int) {
	var dropped map[artifact.Kind]int
	if lang == "" {
		dropped = s.eng.InvalidateAll()
	} else {
		dropped = s.eng.Invalidate(artifact.CorpusKey(lang))
	}
	return dropped[artifact.KindPair], dropped[artifact.KindType]
}

// CacheStats is a snapshot of the artifact cache. RestoredPairs and
// RestoredTypes count the entries a warm start seeded from a persisted
// snapshot (service.Restore); they stay 0 for cold sessions, making
// warm-started processes observable through /v1/corpus and /v1/healthz.
// The wire form lives in internal/protocol; this alias keeps the
// session API self-contained.
type CacheStats = protocol.CacheStats

// CacheStats reports cache occupancy, the hit/miss/failure counters
// accumulated over the session's lifetime, and how many entries were
// restored from a snapshot at warm start. Misses count completed
// builds only; cancelled or failed builds land in Failures.
func (s *Session) CacheStats() CacheStats {
	es := s.eng.Stats()
	return CacheStats{
		PairEntries:   es.Entries[artifact.KindPair],
		TypeEntries:   es.Entries[artifact.KindType],
		Hits:          es.Hits,
		Misses:        es.Misses,
		Failures:      es.Failures,
		RestoredPairs: es.Restored[artifact.KindPair],
		RestoredTypes: es.Restored[artifact.KindType],
	}
}

// SnapshotTime returns the creation time of the snapshot this session
// was restored from, and whether there was one (false for cold-built
// sessions). wikimatchd's /healthz derives the snapshot age from it.
func (s *Session) SnapshotTime() (time.Time, bool) {
	return s.snapshotTime, !s.snapshotTime.IsZero()
}

// pairArtifacts returns the pair-level artifacts, building them once per
// pair through the engine. Concurrent callers for the same pair share
// one build; if the builder's context is cancelled, the entry is
// discarded and surviving waiters retry with their own contexts.
func (s *Session) pairArtifacts(ctx context.Context, st *sessionState, pair wiki.LanguagePair) (*pairData, error) {
	v, err := s.eng.Get(ctx, artifact.PairKey(pair), st.epoch, func(ctx context.Context) (any, error) {
		return s.buildPairData(ctx, st.corpus, pair)
	})
	if err != nil {
		return nil, err
	}
	return v.(*pairData), nil
}

// buildPairData builds one pair node's value from the given corpus
// generation.
func (s *Session) buildPairData(ctx context.Context, c *wiki.Corpus, pair wiki.LanguagePair) (*pairData, error) {
	// The corpus-wide entity-type scan is the one build stage that is not
	// itself cancellable, so don't even start it for a dead context (a
	// disconnected client on a cold pair).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pd := &pairData{types: core.MatchEntityTypes(c, pair)}
	if pd.types == nil {
		// Keep the cached alignment non-nil: nil is MatchArtifacts'
		// compute-it sentinel, and an empty alignment must still count
		// as cached on warm calls.
		pd.types = [][2]string{}
	}
	if !s.cfg.NoDictionary {
		var err error
		if pd.dict, err = dict.BuildCtx(ctx, c, pair.A, pair.B); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return pd, nil
}

// typeArtifacts returns one type pair's artifacts, building them once
// through the engine.
func (s *Session) typeArtifacts(ctx context.Context, st *sessionState, pair wiki.LanguagePair, typeA, typeB string, d *dict.Dictionary) (*core.TypeArtifacts, error) {
	v, err := s.eng.Get(ctx, artifact.TypeKey(pair, typeA, typeB), st.epoch, func(ctx context.Context) (any, error) {
		art, err := s.m.BuildTypeArtifacts(ctx, st.corpus, pair, typeA, typeB, d)
		if err != nil {
			return nil, err
		}
		return art, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.TypeArtifacts), nil
}
