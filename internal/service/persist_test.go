package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/artifact"
	"repro/internal/store"
	"repro/internal/wiki"
)

// TestRestoreMatchEquivalence is the round-trip gate: a session saved
// warm and restored into a fresh process must produce byte-identical
// Match results for both of the paper's pairs, and serving from the
// restored cache must count as hits, not misses.
func TestRestoreMatchEquivalence(t *testing.T) {
	c := smallCorpus(t)
	ctx := context.Background()
	pairs := []wiki.LanguagePair{wiki.PtEn, wiki.VnEn}

	warm := New(c)
	cold := make(map[wiki.LanguagePair]string)
	for _, pair := range pairs {
		res, err := warm.Match(ctx, pair)
		if err != nil {
			t.Fatalf("cold %s: %v", pair, err)
		}
		cold[pair] = flattenResult(res)
	}

	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	restored, err := Restore(c, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	stats := restored.CacheStats()
	if stats.RestoredPairs != len(pairs) {
		t.Errorf("RestoredPairs = %d, want %d", stats.RestoredPairs, len(pairs))
	}
	if stats.RestoredTypes == 0 || stats.RestoredTypes != stats.TypeEntries {
		t.Errorf("RestoredTypes = %d, TypeEntries = %d", stats.RestoredTypes, stats.TypeEntries)
	}
	if _, ok := restored.SnapshotTime(); !ok {
		t.Error("restored session reports no snapshot time")
	}
	if _, ok := warm.SnapshotTime(); ok {
		t.Error("cold session reports a snapshot time")
	}

	for _, pair := range pairs {
		res, err := restored.Match(ctx, pair)
		if err != nil {
			t.Fatalf("restored %s: %v", pair, err)
		}
		if got := flattenResult(res); got != cold[pair] {
			t.Errorf("%s: restored result differs from cold build (%d vs %d bytes)",
				pair, len(got), len(cold[pair]))
		}
	}
	stats = restored.CacheStats()
	if stats.Misses != 0 {
		t.Errorf("restored session recorded %d misses; every artifact should have been seeded", stats.Misses)
	}
	if stats.Hits == 0 {
		t.Error("restored session recorded no cache hits")
	}
}

// TestSaveSkipsFailedAndInFlight asserts Save only persists completed
// artifacts: a snapshot taken mid-build must load into a session that
// simply rebuilds whatever was missing.
func TestSaveSkipsIncomplete(t *testing.T) {
	c := smallCorpus(t)
	ctx := context.Background()
	s := New(c)
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}

	// Start a build that blocks until the test ends: Save must skip the
	// in-flight vi-en pair entry it creates in the engine.
	inBuild := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _ = s.eng.Get(ctx, artifact.PairKey(wiki.VnEn), 0, func(context.Context) (any, error) {
			close(inBuild)
			<-release
			return nil, context.Canceled
		})
	}()
	<-inBuild

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Restore(c, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := restored.CacheStats().RestoredPairs; got != 1 {
		t.Errorf("RestoredPairs = %d, want 1 (in-flight entry must be skipped)", got)
	}
	if _, err := restored.Match(ctx, wiki.VnEn); err != nil {
		t.Fatalf("match on missing pair after restore: %v", err)
	}
}

// TestRestoreFingerprintMismatch: a snapshot from one corpus must be
// rejected against another, with the typed error.
func TestRestoreFingerprintMismatch(t *testing.T) {
	c := smallCorpus(t)
	ctx := context.Background()
	s := New(c)
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	other := wiki.NewCorpus()
	art := &wiki.Article{Language: wiki.English, Title: "Lone", Type: "film"}
	other.MustAdd(art)
	_, err := Restore(other, bytes.NewReader(buf.Bytes()))
	var fe *store.FingerprintError
	if !errors.As(err, &fe) {
		t.Fatalf("Restore against wrong corpus: got %v, want FingerprintError", err)
	}
}

// TestRestoreConfigMismatch: options that change how the persisted
// artifacts were built must be rejected; pure matching thresholds must
// be accepted.
func TestRestoreConfigMismatch(t *testing.T) {
	c := smallCorpus(t)
	ctx := context.Background()
	s := New(c)
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	for name, opt := range map[string]Option{
		"LSIRank":      WithLSIRank(20),
		"NoDictionary": WithoutDictionary(),
		"ExactSVD":     WithExactSVD(true),
	} {
		_, err := Restore(c, bytes.NewReader(buf.Bytes()), opt)
		var cm *store.ConfigMismatchError
		if !errors.As(err, &cm) {
			t.Errorf("%s: got %v, want ConfigMismatchError", name, err)
		}
	}

	// Threshold changes only reshape the per-request alignment; they must
	// restore fine and still serve from the cache.
	restored, err := Restore(c, bytes.NewReader(buf.Bytes()), WithTSim(0.8), WithTLSI(0.2))
	if err != nil {
		t.Fatalf("threshold-only restore: %v", err)
	}
	if got := restored.Config().TSim; got != 0.8 {
		t.Errorf("TSim = %v, want 0.8", got)
	}
	if _, err := restored.Match(ctx, wiki.PtEn); err != nil {
		t.Fatalf("match after threshold-only restore: %v", err)
	}
	if ms := restored.CacheStats().Misses; ms != 0 {
		t.Errorf("threshold-only restore rebuilt %d artifacts", ms)
	}
}

// TestRestoredStatsOverHTTP asserts the warm-start counters are
// observable through /corpus/stats on a server built over a restored
// session.
func TestRestoredStatsOverHTTP(t *testing.T) {
	c := smallCorpus(t)
	ctx := context.Background()
	s := New(c)
	if _, err := s.Match(ctx, wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(c, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(restored))
	defer srv.Close()

	var stats StatsResponseJSON
	getJSON(t, srv.URL+"/corpus/stats", http.StatusOK, &stats)
	if stats.Cache.RestoredPairs != 1 || stats.Cache.RestoredTypes == 0 {
		t.Errorf("restored counters not exposed: %+v", stats.Cache)
	}
	raw, err := json.Marshal(stats.Cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"restoredPairs", "restoredTypes"} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Errorf("cache stats JSON missing %q: %s", field, raw)
		}
	}
}

// TestRestoreGarbage: random bytes and truncations surface the store's
// typed errors through Restore unchanged.
func TestRestoreGarbage(t *testing.T) {
	c := smallCorpus(t)
	if _, err := Restore(c, bytes.NewReader([]byte("junk junk junk junk"))); !errors.Is(err, store.ErrBadMagic) {
		t.Errorf("garbage restore: %v", err)
	}
	s := New(c)
	if _, err := s.Match(context.Background(), wiki.PtEn); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Restore(c, bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
	if err == nil {
		t.Fatal("truncated restore succeeded")
	}
}
