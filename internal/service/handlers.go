package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/protocol"
)

// The typed /v1/ endpoints of wire protocol v1. Every matching
// endpoint is POST JSON over protocol.MatchRequest; every error is a
// structured envelope (code / message / retryable / details).

// serverState bundles what the handlers need beyond the session: the
// stack configuration, process start time (for /v1/healthz) and the
// middleware's live counters (for /v1/metrics).
type serverState struct {
	s       *Session
	cfg     HandlerConfig
	started time.Time
	metrics *serverMetrics
}

// NewHandler builds the wikimatchd HTTP API over one shared session:
// the typed /v1/ protocol, the legacy GET shims riding on the same
// execution path, and the middleware stack (request IDs, access log,
// per-request timeouts, load shedding, panic recovery, metrics) around
// both.
//
//	POST /v1/match         pair or single-type match, JSON in/out
//	POST /v1/matchall      all-pairs batch with correspondence clusters
//	POST /v1/stream        NDJSON progress stream (pair or all-pairs)
//	POST /v1/audit         cross-edition value-consistency report
//	POST /v1/audit/stream  NDJSON audit stream (pairs, findings, final)
//	GET  /v1/corpus        corpus, cache and configuration snapshot
//	POST /v1/corpus/delta  apply article edits, invalidate dirty artifacts
//	POST /v1/invalidate    drop cached artifacts for a language
//	GET  /v1/healthz       liveness: uptime, snapshot age, cache stats
//	GET  /v1/metrics       middleware counters
//
// Legacy (pre-v1) endpoints — GET /match, /match/{type}, /match/stream,
// /matchall, /matchall/stream, /corpus/stats, POST /session/invalidate
// — remain as thin shims over the same handlers.
func NewHandler(s *Session, opts ...HandlerOption) http.Handler {
	cfg := DefaultHandlerConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	st := &serverState{s: s, cfg: cfg, started: time.Now()}
	mux := http.NewServeMux()
	registerV1(mux, st)
	registerShims(mux, st)
	h, metrics := wrapMiddleware(mux, cfg)
	st.metrics = metrics
	return h
}

func registerV1(mux *http.ServeMux, st *serverState) {
	mux.HandleFunc("/v1/match", st.method(http.MethodPost, st.handleMatch))
	mux.HandleFunc("/v1/matchall", st.method(http.MethodPost, st.handleMatchAll))
	mux.HandleFunc("/v1/stream", st.method(http.MethodPost, st.handleStream))
	mux.HandleFunc("/v1/audit", st.method(http.MethodPost, st.handleAudit))
	mux.HandleFunc("/v1/audit/stream", st.method(http.MethodPost, st.handleAuditStream))
	mux.HandleFunc("/v1/corpus", st.method(http.MethodGet, st.handleCorpus))
	mux.HandleFunc("/v1/corpus/delta", st.method(http.MethodPost, st.handleDelta))
	mux.HandleFunc("/v1/invalidate", st.method(http.MethodPost, st.handleInvalidate))
	mux.HandleFunc("/v1/healthz", st.method(http.MethodGet, st.handleHealthz))
	mux.HandleFunc("/v1/metrics", st.method(http.MethodGet, st.handleMetrics))
	// Unknown /v1/ routes get the structured envelope, not net/http's
	// plain-text 404.
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		WriteEnvelope(w, protocol.Errorf(protocol.CodeNotFound, "no such endpoint %s", r.URL.Path))
	})
}

// method guards a route's HTTP method with a structured 405.
func (st *serverState) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			WriteEnvelope(w, protocol.Errorf(protocol.CodeMethodNotAllowed,
				"method %s not allowed on %s (use %s)", r.Method, r.URL.Path, want))
			return
		}
		h(w, r)
	}
}

// DecodeBody decodes a JSON request body strictly: unknown fields and
// trailing data after the first value are protocol errors. An empty
// body decodes to the zero request, so `curl -X POST /v1/match` runs
// the default pt-en pair. Exported for the fleet router, which decodes
// the same request shapes before routing them.
func DecodeBody(r *http.Request, v any) *protocol.Error {
	if r.Body == nil {
		return nil
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil {
		var extra json.RawMessage
		if trailErr := dec.Decode(&extra); !errors.Is(trailErr, io.EOF) {
			return bodyError(trailErr, "request body must contain exactly one JSON object")
		}
		return nil
	}
	if errors.Is(err, io.EOF) {
		return nil
	}
	return bodyError(err, "")
}

// bodyError classifies a body read/decode failure; override replaces
// the decoder's message when set.
func bodyError(err error, override string) *protocol.Error {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return protocol.Errorf(protocol.CodePayloadTooLarge, "request body exceeds %d bytes", maxErr.Limit)
	}
	if override != "" {
		return protocol.Errorf(protocol.CodeInvalidArgument, "invalid request body: %s", override)
	}
	return protocol.Errorf(protocol.CodeInvalidArgument, "invalid request body: %v", err)
}

func (st *serverState) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req protocol.MatchRequest
	if e := DecodeBody(r, &req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	if e := st.gatePair(req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	resp, err := st.s.ServeMatch(r.Context(), req)
	if err != nil {
		WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (st *serverState) handleMatchAll(w http.ResponseWriter, r *http.Request) {
	var req protocol.MatchRequest
	if e := DecodeBody(r, &req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	if !req.All && (req.Pair != "" || req.Type != "") {
		WriteEnvelope(w, protocol.Errorf(protocol.CodeInvalidArgument,
			"pair-scoped request must be sent to /v1/match"))
		return
	}
	req.All = true
	if e := st.gatePair(req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	resp, err := st.s.ServeMatchAll(r.Context(), req)
	if err != nil {
		WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (st *serverState) handleStream(w http.ResponseWriter, r *http.Request) {
	var req protocol.MatchRequest
	if e := DecodeBody(r, &req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	// The relay's cancel is the slow-reader guard's lever: a write
	// deadline miss cancels the in-flight matching work, and the
	// session-side buffers (sized for the whole run) are dropped with the
	// channel instead of pinning until the client drains them.
	if e := st.gatePair(req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	lines, err := st.s.ServeStream(ctx, req)
	if err != nil {
		WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	st.streamNDJSON(w, cancel, lines, func(line protocol.StreamLine) (any, bool) {
		return line, true
	})
}

// streamNDJSON applies the stack's configured write timeout to
// WriteNDJSONStream.
func (st *serverState) streamNDJSON(w http.ResponseWriter, cancel context.CancelFunc, lines <-chan protocol.StreamLine, translate func(protocol.StreamLine) (any, bool)) {
	WriteNDJSONStream(w, st.cfg.StreamWriteTimeout, cancel, lines, translate)
}

// WriteNDJSONStream writes a line stream as NDJSON through a per-line
// translation (identity for v1, the legacy shapes for the shims), with
// the slow-reader guard applied: each line's write runs under a fresh
// deadline of writeTimeout (≤ 0 disables the guard) — armed immediately
// before the write, so slow matching between lines never counts against
// it — and a failed write cancels the producer and drains it so no
// goroutine or buffer outlives the dead connection. Writers without
// deadline support (httptest recorders) just skip the guard. Exported
// for the fleet router, whose streamed endpoints relay shard lines
// through the same guard.
func WriteNDJSONStream(w http.ResponseWriter, writeTimeout time.Duration, cancel context.CancelFunc, lines <-chan protocol.StreamLine, translate func(protocol.StreamLine) (any, bool)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for line := range lines {
		out, ok := translate(line)
		if !ok {
			continue
		}
		if writeTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		if err := enc.Encode(out); err != nil {
			cancel()
			for range lines {
			}
			return
		}
		_ = rc.Flush()
	}
	// Disarm so a keep-alive connection is not poisoned by a stale
	// deadline.
	if writeTimeout > 0 {
		_ = rc.SetWriteDeadline(time.Time{})
	}
}

// gatePair enforces the shard-ownership gate on a decoded matching
// request: a fleet replica serves only the language pairs its shard
// owns, so a pair it does not own is answered with a retryable
// unavailable envelope (the router owns the shard map; a direct hit on
// the wrong replica means a stale or bypassed one), and all-pairs
// requests are rejected outright — scatter-gather is the router's job.
// Returns nil on ungated replicas and on requests that fail validation,
// so the execution path's canonical errors are untouched.
func (st *serverState) gatePair(req protocol.MatchRequest) *protocol.Error {
	if st.cfg.PairOwned == nil {
		return nil
	}
	r, err := req.Validate()
	if err != nil {
		return nil
	}
	if r.All {
		return protocol.Errorf(protocol.CodeInvalidArgument,
			"all-pairs requests are not served by shard replicas (%s); send them to the router",
			st.cfg.ShardLabel)
	}
	if !st.cfg.PairOwned(r.Pair) {
		return protocol.Errorf(protocol.CodeUnavailable,
			"pair %s is not owned by %s; consult the router's shard map", r.Pair, st.cfg.ShardLabel)
	}
	return nil
}

func (st *serverState) handleAudit(w http.ResponseWriter, r *http.Request) {
	var req protocol.AuditRequest
	if e := DecodeBody(r, &req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	if e := st.gateAudit(req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	resp, err := st.s.ServeAudit(r.Context(), req)
	if err != nil {
		WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (st *serverState) handleAuditStream(w http.ResponseWriter, r *http.Request) {
	var req protocol.AuditRequest
	if e := DecodeBody(r, &req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	if e := st.gateAudit(req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	lines, err := st.s.ServeAuditStream(ctx, req)
	if err != nil {
		WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	st.streamNDJSON(w, cancel, lines, func(line protocol.StreamLine) (any, bool) {
		return line, true
	})
}

// gateAudit enforces the shard-ownership gate on audit requests: a
// fleet replica never runs the matching phase itself (its artifact
// slice covers only its owned pairs), so an audit without pre-merged
// clusters is rejected — the router scatter-gathers the match and
// forwards the clusters.
func (st *serverState) gateAudit(req protocol.AuditRequest) *protocol.Error {
	if st.cfg.PairOwned == nil || req.Clusters != nil {
		return nil
	}
	return protocol.Errorf(protocol.CodeInvalidArgument,
		"audit requests without clusters are not served by shard replicas (%s); send them to the router",
		st.cfg.ShardLabel)
}

func (st *serverState) handleCorpus(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, st.s.Stats())
}

func (st *serverState) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	var req protocol.InvalidateRequest
	if e := DecodeBody(r, &req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	lang, err := req.Validate()
	if err != nil {
		WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	pairs, types := st.s.InvalidateDetail(lang)
	WriteJSON(w, http.StatusOK, protocol.InvalidateResponse{
		Dropped: pairs + types,
		Pairs:   pairs,
		Types:   types,
	})
}

func (st *serverState) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req protocol.DeltaRequest
	if e := DecodeBody(r, &req); e != nil {
		WriteEnvelope(w, e)
		return
	}
	resp, err := st.s.ServeDelta(r.Context(), req)
	if err != nil {
		WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (st *serverState) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, st.health())
}

// health assembles the /v1/healthz body (shared with the legacy
// /healthz shim).
func (st *serverState) health() protocol.Health {
	h := protocol.Health{
		Status:        "ok",
		UptimeSeconds: time.Since(st.started).Seconds(),
		Cache:         st.s.CacheStats(),
	}
	if at, ok := st.s.SnapshotTime(); ok {
		h.Snapshot.Loaded = true
		h.Snapshot.CreatedAt = at.UTC().Format(time.RFC3339Nano)
		h.Snapshot.AgeSeconds = time.Since(at).Seconds()
	}
	return h
}

func (st *serverState) handleMetrics(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, st.metrics.snapshot())
}

// WriteJSON writes v as a JSON response body. Exported for the fleet
// router, which serves the same wire shapes.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
