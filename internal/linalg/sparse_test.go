package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomSparse(rng *rand.Rand, rows, cols int, density float64) *Sparse {
	var entries []Entry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				entries = append(entries, Entry{Row: r, Col: c, Val: rng.NormFloat64()})
			}
		}
	}
	return NewSparse(rows, cols, entries)
}

func TestSparseConstructionCanonical(t *testing.T) {
	s := NewSparse(3, 4, []Entry{
		{Row: 2, Col: 1, Val: 5},
		{Row: 0, Col: 3, Val: 1},
		{Row: 0, Col: 0, Val: 2},
		{Row: 2, Col: 1, Val: -2}, // duplicate: summed with the 5
		{Row: 1, Col: 2, Val: 4},
		{Row: 1, Col: 2, Val: -4}, // cancels to zero: dropped
	})
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	if got := s.At(2, 1); got != 3 {
		t.Errorf("At(2,1) = %v, want 3 (summed duplicate)", got)
	}
	if got := s.At(1, 2); got != 0 {
		t.Errorf("At(1,2) = %v, want 0 (cancelled)", got)
	}
	if got := s.At(0, 0); got != 2 {
		t.Errorf("At(0,0) = %v", got)
	}
	// Column indices sorted within each row.
	for r := 0; r < s.Rows; r++ {
		for i := s.RowPtr[r] + 1; i < s.RowPtr[r+1]; i++ {
			if s.ColIdx[i-1] >= s.ColIdx[i] {
				t.Fatalf("row %d columns not strictly increasing: %v", r, s.ColIdx[s.RowPtr[r]:s.RowPtr[r+1]])
			}
		}
	}
}

func TestSparseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSparse(2, 2, []Entry{{Row: 2, Col: 0, Val: 1}})
}

func TestSparseDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 7, 5)
	// Punch some zeros in so sparsification actually drops entries.
	for i := 0; i < len(a.Data); i += 3 {
		a.Data[i] = 0
	}
	s := SparseFromDense(a)
	if diff := s.Dense().MaxAbsDiff(a); diff != 0 {
		t.Errorf("round trip diff = %v", diff)
	}
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			if s.At(r, c) != a.At(r, c) {
				t.Fatalf("At(%d,%d) = %v, want %v", r, c, s.At(r, c), a.At(r, c))
			}
		}
	}
}

func TestSparseMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSparse(rng, 9, 6, 0.4)
	d := s.Dense()
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := s.MulVec(x)
	for r := 0; r < 9; r++ {
		want := Dot(d.Row(r), x)
		if math.Abs(y[r]-want) > 1e-12 {
			t.Errorf("MulVec[%d] = %v, want %v", r, y[r], want)
		}
	}
	xt := make([]float64, 9)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	yt := s.MulVecT(xt)
	for c := 0; c < 6; c++ {
		want := Dot(d.Col(c), xt)
		if math.Abs(yt[c]-want) > 1e-12 {
			t.Errorf("MulVecT[%d] = %v, want %v", c, yt[c], want)
		}
	}
}

func TestSparseMulDenseAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSparse(rng, 8, 10, 0.3)
	b := randomMatrix(rng, 10, 4)
	if diff := s.MulDense(b).MaxAbsDiff(s.Dense().Mul(b)); diff > 1e-12 {
		t.Errorf("MulDense diff = %v", diff)
	}
	bt := randomMatrix(rng, 8, 3)
	if diff := s.TMulDense(bt).MaxAbsDiff(s.Dense().Transpose().Mul(bt)); diff > 1e-12 {
		t.Errorf("TMulDense diff = %v", diff)
	}
}

func TestSparseMulSparseAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSparse(rng, 6, 9, 0.35)
	b := randomSparse(rng, 9, 7, 0.35)
	got := a.MulSparse(b).Dense()
	want := a.Dense().Mul(b.Dense())
	if diff := got.MaxAbsDiff(want); diff > 1e-12 {
		t.Errorf("MulSparse diff = %v", diff)
	}
}

func TestSparseTransposeAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSparse(rng, 5, 11, 0.3)
	if diff := s.Transpose().Dense().MaxAbsDiff(s.Dense().Transpose()); diff != 0 {
		t.Errorf("Transpose diff = %v", diff)
	}
}

func TestSparseDimensionMismatchPanics(t *testing.T) {
	s := NewSparse(2, 3, nil)
	for name, fn := range map[string]func(){
		"MulVec":    func() { s.MulVec(make([]float64, 2)) },
		"MulVecT":   func() { s.MulVecT(make([]float64, 3)) },
		"MulDense":  func() { s.MulDense(NewMatrix(2, 2)) },
		"TMulDense": func() { s.TMulDense(NewMatrix(3, 2)) },
		"MulSparse": func() { s.MulSparse(NewSparse(2, 2, nil)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
