package linalg

import (
	"fmt"
	"sort"
)

// Entry is one explicit coordinate of a sparse matrix under construction.
type Entry struct {
	Row, Col int
	Val      float64
}

// Sparse is a compressed-sparse-row (CSR) matrix. Column indices are
// strictly increasing within each row and duplicate coordinates have been
// summed, so the representation is canonical. LSI occurrence matrices —
// overwhelmingly zero at dump scale — are stored and multiplied in this
// form; the dense code path only ever sees the small factors.
type Sparse struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1; row r occupies [RowPtr[r], RowPtr[r+1])
	ColIdx     []int // len NNZ(), sorted within each row
	Val        []float64
}

// NewSparse builds a CSR matrix from coordinate entries. Entries may
// arrive in any order; duplicates are summed, explicit zeros dropped. It
// panics on negative dimensions or out-of-range coordinates.
func NewSparse(rows, cols int, entries []Entry) *Sparse {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	es := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("linalg: entry (%d,%d) outside %d×%d", e.Row, e.Col, rows, cols))
		}
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	s := &Sparse{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(es); {
		j := i
		var sum float64
		for ; j < len(es) && es[j].Row == es[i].Row && es[j].Col == es[i].Col; j++ {
			sum += es[j].Val
		}
		if sum != 0 {
			s.ColIdx = append(s.ColIdx, es[i].Col)
			s.Val = append(s.Val, sum)
			s.RowPtr[es[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		s.RowPtr[r+1] += s.RowPtr[r]
	}
	return s
}

// SparseFromDense converts a dense matrix, dropping zeros.
func SparseFromDense(m *Matrix) *Sparse {
	var entries []Entry
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if v := m.Data[r*m.Cols+c]; v != 0 {
				entries = append(entries, Entry{Row: r, Col: c, Val: v})
			}
		}
	}
	return NewSparse(m.Rows, m.Cols, entries)
}

// NNZ returns the number of stored (nonzero) entries.
func (s *Sparse) NNZ() int { return len(s.Val) }

// At returns element (r, c) by binary search within the row.
func (s *Sparse) At(r, c int) float64 {
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	i := lo + sort.SearchInts(s.ColIdx[lo:hi], c)
	if i < hi && s.ColIdx[i] == c {
		return s.Val[i]
	}
	return 0
}

// Dense materializes the matrix.
func (s *Sparse) Dense() *Matrix {
	m := NewMatrix(s.Rows, s.Cols)
	for r := 0; r < s.Rows; r++ {
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			m.Data[r*s.Cols+s.ColIdx[i]] = s.Val[i]
		}
	}
	return m
}

// MulVec returns y = A·x. len(x) must equal Cols.
func (s *Sparse) MulVec(x []float64) []float64 {
	if len(x) != s.Cols {
		panic(fmt.Sprintf("linalg: MulVec length %d != %d cols", len(x), s.Cols))
	}
	y := make([]float64, s.Rows)
	for r := 0; r < s.Rows; r++ {
		var sum float64
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			sum += s.Val[i] * x[s.ColIdx[i]]
		}
		y[r] = sum
	}
	return y
}

// MulVecT returns y = Aᵀ·x. len(x) must equal Rows.
func (s *Sparse) MulVecT(x []float64) []float64 {
	if len(x) != s.Rows {
		panic(fmt.Sprintf("linalg: MulVecT length %d != %d rows", len(x), s.Rows))
	}
	y := make([]float64, s.Cols)
	for r := 0; r < s.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			y[s.ColIdx[i]] += s.Val[i] * xr
		}
	}
	return y
}

// MulDense returns A·B for dense B (Cols×k), in O(nnz·k).
func (s *Sparse) MulDense(b *Matrix) *Matrix {
	if s.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %d×%d · %d×%d", s.Rows, s.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(s.Rows, b.Cols)
	k := b.Cols
	for r := 0; r < s.Rows; r++ {
		dst := out.Data[r*k : (r+1)*k]
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			v := s.Val[i]
			src := b.Data[s.ColIdx[i]*k : (s.ColIdx[i]+1)*k]
			for c := 0; c < k; c++ {
				dst[c] += v * src[c]
			}
		}
	}
	return out
}

// TMulDense returns Aᵀ·B for dense B (Rows×k), in O(nnz·k) without
// materializing the transpose.
func (s *Sparse) TMulDense(b *Matrix) *Matrix {
	if s.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %d×%d ᵀ· %d×%d", s.Rows, s.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(s.Cols, b.Cols)
	k := b.Cols
	for r := 0; r < s.Rows; r++ {
		src := b.Data[r*k : (r+1)*k]
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			v := s.Val[i]
			dst := out.Data[s.ColIdx[i]*k : (s.ColIdx[i]+1)*k]
			for c := 0; c < k; c++ {
				dst[c] += v * src[c]
			}
		}
	}
	return out
}

// MulSparse returns A·B for sparse B, using the classic row-by-row
// SpGEMM with a dense accumulator per output row.
func (s *Sparse) MulSparse(b *Sparse) *Sparse {
	if s.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %d×%d · %d×%d", s.Rows, s.Cols, b.Rows, b.Cols))
	}
	out := &Sparse{Rows: s.Rows, Cols: b.Cols, RowPtr: make([]int, s.Rows+1)}
	acc := make([]float64, b.Cols)
	touched := make([]int, 0, b.Cols)
	seen := make([]bool, b.Cols)
	for r := 0; r < s.Rows; r++ {
		touched = touched[:0]
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			v, mid := s.Val[i], s.ColIdx[i]
			for j := b.RowPtr[mid]; j < b.RowPtr[mid+1]; j++ {
				c := b.ColIdx[j]
				if !seen[c] {
					seen[c] = true
					touched = append(touched, c)
				}
				acc[c] += v * b.Val[j]
			}
		}
		sort.Ints(touched)
		for _, c := range touched {
			if acc[c] != 0 {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, acc[c])
			}
			acc[c] = 0
			seen[c] = false
		}
		out.RowPtr[r+1] = len(out.Val)
	}
	return out
}

// Transpose returns Aᵀ in CSR form.
func (s *Sparse) Transpose() *Sparse {
	t := &Sparse{
		Rows: s.Cols, Cols: s.Rows,
		RowPtr: make([]int, s.Cols+1),
		ColIdx: make([]int, s.NNZ()),
		Val:    make([]float64, s.NNZ()),
	}
	for _, c := range s.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.Rows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := append([]int(nil), t.RowPtr[:t.Rows]...)
	for r := 0; r < s.Rows; r++ {
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			c := s.ColIdx[i]
			t.ColIdx[next[c]] = r
			t.Val[next[c]] = s.Val[i]
			next[c]++
		}
	}
	return t
}
