package linalg

import (
	"math"
	"math/rand"
)

// RSVDOptions tunes the randomized truncated SVD. The zero value selects
// the defaults, so callers can pass RSVDOptions{} and get sensible
// behavior.
type RSVDOptions struct {
	// Oversample is the number of extra sketch columns beyond the target
	// rank (Halko/Martinsson/Tropp's p). Default 8.
	Oversample int
	// MaxIter caps the subspace (power) iterations. Default 250; the
	// iteration normally stops earlier via Tol, and each iteration costs
	// only O(nnz(G)·(k+p)) on the small-side Gram operator.
	MaxIter int
	// Tol stops the iteration once the top-k Ritz eigenvalues of the
	// projected operator — invariant under rotations of the sketch basis
	// and monotonically increasing — change by less than this relative
	// amount. Ritz values are quadratically accurate in the subspace
	// error, so the default 1e-13 leaves the subspace converged to well
	// under 1e-6.
	Tol float64
	// Seed drives the Gaussian sketch; the decomposition is fully
	// deterministic for a fixed seed. Default 1.
	Seed int64
}

func (o RSVDOptions) withDefaults() RSVDOptions {
	if o.Oversample <= 0 {
		o.Oversample = 8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 250
	}
	if o.Tol <= 0 {
		o.Tol = 1e-13
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// exactSVDCutoff is the size (Rows·Cols) below which SparseTruncatedSVD
// runs the exact dense Jacobi on the matrix itself: at that scale Jacobi
// is fast, and the sketch would hold most of the matrix anyway.
const exactSVDCutoff = 4096

// gramExactCutoff is the small-side dimension up to which the exact
// Gram-eigendecomposition path is used instead of the randomized
// iteration: one Jacobi sweep on an s×s dense Gram matrix costs O(s⁴)
// overall, so it wins below roughly a hundred rows and loses after.
const gramExactCutoff = 80

// SparseTruncatedSVD computes the rank-k truncated SVD of a sparse
// matrix, routing by shape: exact dense Jacobi for tiny matrices, the
// exact small-side Gram eigendecomposition while the small dimension
// stays modest, and the randomized sketch-and-iterate path beyond that.
// All three touch only stored nonzeros of large inputs.
func SparseTruncatedSVD(a *Sparse, k int) *SVD {
	return SparseTruncatedSVDOpts(a, k, RSVDOptions{})
}

// SparseTruncatedSVDOpts is SparseTruncatedSVD with explicit options.
func SparseTruncatedSVDOpts(a *Sparse, k int, opt RSVDOptions) *SVD {
	opt = opt.withDefaults()
	switch routeFor(a, k, opt) {
	case routeDense:
		return TruncatedSVD(a.Dense(), k)
	case routeGram:
		return GramSVD(a, k)
	default:
		return RandomizedSVD(a, k, opt)
	}
}

type svdRoute int

const (
	routeDense svdRoute = iota
	routeGram
	routeRandomized
)

// routeFor picks the decomposition path by shape.
func routeFor(a *Sparse, k int, opt RSVDOptions) svdRoute {
	minDim := a.Rows
	if a.Cols < minDim {
		minDim = a.Cols
	}
	if a.Rows*a.Cols <= exactSVDCutoff {
		return routeDense
	}
	// A short small side routes to the Gram path even when it is under
	// the sketch width: a 15×50000 matrix must not be densified just
	// because 15 ≤ k+p — the 15×15 Gram eigensolve handles it in
	// O(nnz·deg).
	if minDim <= gramExactCutoff || minDim <= k+opt.Oversample {
		return routeGram
	}
	return routeRandomized
}

// RoutesToRandomized reports whether SparseTruncatedSVD would take the
// randomized path for this matrix and rank — exposed so tests that
// claim to validate the randomized path can assert it actually runs.
func RoutesToRandomized(a *Sparse, k int) bool {
	return routeFor(a, k, RSVDOptions{}.withDefaults()) == routeRandomized
}

// GramSVD computes the rank-k truncated SVD exactly through the
// small-side Gram matrix: G = A·Aᵀ (or Aᵀ·A, whichever is smaller) is
// assembled by sparse mat-mat product, its dense eigendecomposition is
// the one-sided Jacobi of a symmetric PSD matrix, σ = √λ, and the
// long-side factor is recovered with a single sparse multiplication.
// Cost is O(nnz·deg + s³ + nnz·k) for small side s — independent of the
// long dimension, like the randomized path, but with no iteration and
// accuracy limited only by the squared condition number.
func GramSVD(a *Sparse, k int) *SVD {
	k = clampRank(a, k)
	if a.Rows == 0 || a.Cols == 0 || k == 0 {
		return &SVD{U: NewMatrix(a.Rows, 0), S: nil, V: NewMatrix(a.Cols, 0)}
	}
	work, workT, tall := orientSmallSide(a)
	g := work.MulSparse(workT)
	eig := ComputeSVD(g.Dense()) // symmetric PSD: SVD = W·Λ·Wᵀ
	return assembleFromSmallSide(work, tall, eig.V.Truncate(k), eig.S[:k])
}

// orientSmallSide returns (work, workᵀ, tall) with work.Rows ≤ work.Cols,
// reusing a itself as the transpose of its transpose so only one CSR
// copy is ever built.
func orientSmallSide(a *Sparse) (work, workT *Sparse, tall bool) {
	if a.Rows > a.Cols {
		return a.Transpose(), a, true
	}
	return a, a.Transpose(), false
}

// RandomizedSVD computes a rank-k truncated SVD of a by randomized
// subspace iteration (Halko, Martinsson & Tropp, SIAM Rev. 2011): a
// Gaussian sketch of the small-side Gram operator G (= A·Aᵀ or Aᵀ·A,
// whichever is smaller, built once by sparse mat-mat product) is refined
// by power iterations with re-orthonormalization until the invariant
// Ritz estimates stabilize; the projected l×l problem is then solved
// exactly with the existing one-sided Jacobi, and the long-side factor
// is recovered with a single sparse multiplication. Per-iteration cost
// is O(nnz(G)·(k+p)) plus a thin QR on the small side — independent of
// the long dimension, and the full matrix is never densified.
func RandomizedSVD(a *Sparse, k int, opt RSVDOptions) *SVD {
	opt = opt.withDefaults()
	k = clampRank(a, k)
	if a.Rows == 0 || a.Cols == 0 || k == 0 {
		return &SVD{U: NewMatrix(a.Rows, 0), S: nil, V: NewMatrix(a.Cols, 0)}
	}

	// Orient so the iteration lives on the smaller side.
	work, workT, tall := orientSmallSide(a)
	small := work.Rows
	g := work.MulSparse(workT) // small×small, symmetric PSD

	l := k + opt.Oversample
	if l > small {
		l = small
	}

	// Gaussian sketch of G's range.
	rng := rand.New(rand.NewSource(opt.Seed))
	q := NewMatrix(small, l)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	q = g.MulDense(q)
	orthonormalize(q)

	// Power iteration on G with QR between applications; each step
	// squares the singular value contrast. Convergence is judged on the
	// top-k Ritz eigenvalues of H = Qᵀ·G·Q: they are invariant under
	// rotations of Q's columns (per-column norms never settle when G has
	// the degenerate eigenvalue clusters binary occurrence matrices
	// produce) and blind to the oversampled tail directions, which sit in
	// the slowly-mixing bulk spectrum and wander forever. The l×l
	// eigensolve is amortized by checking every few iterations.
	const checkEvery = 5
	var prev []float64
	for it := 0; it < opt.MaxIter; it++ {
		gq := g.MulDense(q)
		var h *Matrix
		if (it+1)%checkEvery == 0 {
			h = q.Transpose().Mul(gq)
		}
		orthonormalize(gq)
		q = gq
		if h != nil {
			est := ComputeSVD(h).S
			if ritzConverged(est, prev, k, opt.Tol) {
				break
			}
			prev = append(prev[:0], est...)
		}
	}

	// Rayleigh–Ritz on the converged basis: H = Qᵀ·G·Q is l×l symmetric
	// PSD, so its one-sided Jacobi SVD is its eigendecomposition
	// H = W·Λ·Wᵀ; the Ritz vectors Q·W approximate the small-side
	// singular vectors and σ = √λ.
	h := q.Transpose().Mul(g.MulDense(q))
	eig := ComputeSVD(h)
	return assembleFromSmallSide(work, tall, q.Mul(eig.V).Truncate(k), eig.S[:k])
}

// clampRank bounds k to [0, min(Rows, Cols)].
func clampRank(a *Sparse, k int) int {
	if k < 0 {
		k = 0
	}
	if k > a.Rows {
		k = a.Rows
	}
	if k > a.Cols {
		k = a.Cols
	}
	return k
}

// Truncate keeps the first k columns of m (all of them if k ≥ Cols;
// negative k clamps to 0).
func (m *Matrix) Truncate(k int) *Matrix {
	if k >= m.Cols {
		return m
	}
	if k < 0 {
		k = 0
	}
	out := NewMatrix(m.Rows, k)
	for r := 0; r < m.Rows; r++ {
		copy(out.Data[r*k:(r+1)*k], m.Data[r*m.Cols:r*m.Cols+k])
	}
	return out
}

// assembleFromSmallSide finishes a Gram-side decomposition: uSmall holds
// the top-k eigenvectors of work·workᵀ (work = a or aᵀ, small side
// first), lambda the matching eigenvalues λ = σ². The long-side factor
// is workᵀ·u/σ — a single pass over the stored nonzeros.
func assembleFromSmallSide(work *Sparse, tall bool, uSmall *Matrix, lambda []float64) *SVD {
	s := make([]float64, len(lambda))
	for i, lam := range lambda {
		if lam > 0 {
			s[i] = math.Sqrt(lam)
		}
	}
	long := work.TMulDense(uSmall)
	for c, sv := range s {
		inv := 0.0
		if sv > 0 {
			inv = 1 / sv
		}
		for r := 0; r < long.Rows; r++ {
			long.Data[r*long.Cols+c] *= inv
		}
	}
	if tall {
		return &SVD{U: long, S: s, V: uSmall}
	}
	return &SVD{U: uSmall, S: s, V: long}
}

// orthonormalize replaces m's columns with an orthonormal basis of their
// span via twice-iterated modified Gram–Schmidt (numerically equivalent
// to Householder thin QR at these sizes). Columns that become numerically
// zero — a rank-deficient sketch — are left as zero vectors. The work
// happens on a column-major scratch copy so the inner dot/axpy loops run
// over contiguous memory; this QR sits inside the subspace iteration and
// dominates its constant factor.
func orthonormalize(m *Matrix) {
	rows, cols := m.Rows, m.Cols
	// scratch[j*rows:(j+1)*rows] is column j, contiguous.
	scratch := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		base := r * cols
		for j := 0; j < cols; j++ {
			scratch[j*rows+r] = m.Data[base+j]
		}
	}
	for j := 0; j < cols; j++ {
		col := scratch[j*rows : (j+1)*rows]
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < j; p++ {
				prev := scratch[p*rows : (p+1)*rows]
				var dot float64
				for r := 0; r < rows; r++ {
					dot += col[r] * prev[r]
				}
				if dot == 0 {
					continue
				}
				for r := 0; r < rows; r++ {
					col[r] -= dot * prev[r]
				}
			}
		}
		var norm float64
		for r := 0; r < rows; r++ {
			norm += col[r] * col[r]
		}
		norm = math.Sqrt(norm)
		if norm <= 1e-300 {
			for r := 0; r < rows; r++ {
				col[r] = 0
			}
			continue
		}
		for r := 0; r < rows; r++ {
			col[r] /= norm
		}
	}
	for r := 0; r < rows; r++ {
		base := r * cols
		for j := 0; j < cols; j++ {
			m.Data[base+j] = scratch[j*rows+r]
		}
	}
}

// ritzConverged reports whether the top-k Ritz eigenvalue estimates
// moved by less than tol relative to the largest one.
func ritzConverged(est, prev []float64, k int, tol float64) bool {
	if len(prev) == 0 {
		return false
	}
	if k > len(est) {
		k = len(est)
	}
	if k > len(prev) {
		k = len(prev)
	}
	scale := est[0]
	if prev[0] > scale {
		scale = prev[0]
	}
	if scale == 0 {
		return true
	}
	for i := 0; i < k; i++ {
		if math.Abs(est[i]-prev[i]) > tol*scale {
			return false
		}
	}
	return true
}
