package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// checkQuantBound asserts the contract of QuantizeRows on every row pair
// of m: the quantized cosine is finite, clamped, and within Margin of
// the exact float64 cosine whenever the margin is finite.
func checkQuantBound(t *testing.T, m *Matrix) {
	t.Helper()
	q := QuantizeRows(m)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Rows; j++ {
			est := CosineRowsQ8(q, i, j)
			if math.IsNaN(est) || est < -1 || est > 1 {
				t.Fatalf("CosineRowsQ8(%d,%d) = %v, want a value in [-1,1]", i, j, est)
			}
			margin := q.Margin(i, j)
			if math.IsNaN(margin) || margin < 0 {
				t.Fatalf("Margin(%d,%d) = %v, want a non-negative bound", i, j, margin)
			}
			if math.IsInf(margin, 1) {
				continue // no claim for unquantizable rows
			}
			exact := CosineRows(m, i, j)
			if diff := math.Abs(est - exact); diff > margin {
				t.Fatalf("pair (%d,%d): |q8 %v - exact %v| = %v exceeds margin %v",
					i, j, est, exact, diff, margin)
			}
		}
	}
}

func TestQuantizedRowsBoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 2+rng.Intn(30), 1+rng.Intn(16)
		m := NewMatrix(rows, cols)
		for r := 0; r < rows; r++ {
			// Wildly varying per-row magnitudes, including rows that mix
			// a dominant coordinate with near-zero ones — the worst case
			// for symmetric int8 grids.
			mag := math.Pow(10, float64(rng.Intn(121)-60))
			for c := 0; c < cols; c++ {
				m.Data[r*cols+c] = (rng.Float64()*2 - 1) * mag
				if rng.Intn(4) == 0 {
					m.Data[r*cols+c] *= 1e-9
				}
			}
		}
		checkQuantBound(t, m)
	}
}

func TestQuantizedRowsBoundHostile(t *testing.T) {
	tiny := math.SmallestNonzeroFloat64
	m := FromRows([][]float64{
		{0, 0, 0, 0},                     // zero row
		{1, 2, 3, 4},                     // plain integers
		{-1, -2, -3, -4},                 // negated copy: cosine −1 with row 1
		{tiny, tiny, 0, tiny},            // denormals: scale underflows
		{1e308, -1e308, 1e308, -1e308},   // norms overflow
		{math.Inf(1), 1, 2, 3},           // infinite coordinate
		{math.NaN(), 1, 2, 3},            // NaN coordinate
		{1e-300, 1e-300, 1e-300, 1e-300}, // uniform denormal-adjacent
		{127, 1, 0, 0},                   // exactly representable grid
		{1, 1e-30, 0, 0},                 // dominant coordinate
	})
	checkQuantBound(t, m)

	q := QuantizeRows(m)
	if got := CosineRowsQ8(q, 0, 1); got != 0 {
		t.Fatalf("zero row cosine = %v, want 0", got)
	}
	if got := q.Margin(0, 1); got != 0 {
		t.Fatalf("zero row margin = %v, want 0 (both cosines are exactly 0)", got)
	}
	for _, r := range []int{4, 5, 6} {
		if !math.IsInf(q.Margin(r, 1), 1) {
			t.Fatalf("row %d is unquantizable, want +Inf margin, got %v", r, q.Margin(r, 1))
		}
		if got := CosineRowsQ8(q, r, 1); math.IsNaN(got) || got < -1 || got > 1 {
			t.Fatalf("unquantizable row %d cosine = %v, want a clamped value", r, got)
		}
	}
	// Exactly representable rows round-trip with zero residual, so the
	// estimate matches the exact cosine up to the flat slop.
	if est, exact := CosineRowsQ8(q, 1, 2), CosineRows(m, 1, 2); math.Abs(est-exact) > quantSlop {
		t.Fatalf("integer rows: q8 %v vs exact %v", est, exact)
	}
	if exact := CosineRows(m, 1, 2); exact != -1 {
		t.Fatalf("negated rows exact cosine = %v, want -1", exact)
	}
}

func TestQuantizedRowsMarginMeaningful(t *testing.T) {
	// On well-scaled rows (the LSI embedding case) the proven bound must
	// be small enough to prune with: a few percent, not order one.
	rng := rand.New(rand.NewSource(11))
	m := NewMatrix(40, 10)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	q := QuantizeRows(m)
	worst := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Rows; j++ {
			if mg := q.Margin(i, j); mg > worst {
				worst = mg
			}
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst margin %v on Gaussian rows; too loose to prune with", worst)
	}
}
