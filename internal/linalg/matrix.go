// Package linalg implements the dense linear algebra needed by Latent
// Semantic Indexing: matrices, and a one-sided Jacobi singular value
// decomposition with truncation. The implementation favors clarity and
// numerical robustness over speed; LSI occurrence matrices in this system
// are at most a few hundred rows/columns.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, Data[r*Cols+c]
}

// NewMatrix allocates a zero Rows×Cols matrix. It panics on negative
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", r, len(row), m.Cols))
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[r*m.Cols:(r+1)*m.Cols])
	return out
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []float64 {
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Data[r*m.Cols+c]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	cp := NewMatrix(m.Rows, m.Cols)
	copy(cp.Data, m.Data)
	return cp
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			t.Data[c*t.Cols+r] = m.Data[r*m.Cols+c]
		}
	}
	return t
}

// Mul returns m·n. It panics if the inner dimensions disagree.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			for c := 0; c < n.Cols; c++ {
				out.Data[r*out.Cols+c] += a * n.Data[k*n.Cols+c]
			}
		}
	}
	return out
}

// ScaleCols multiplies column j by s[j] in place. len(s) must equal Cols.
func (m *Matrix) ScaleCols(s []float64) {
	if len(s) != m.Cols {
		panic("linalg: ScaleCols length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.Data[r*m.Cols+c] *= s[c]
		}
	}
}

// MaxAbsDiff returns max |m−n| over all elements; matrices must be the
// same shape.
func (m *Matrix) MaxAbsDiff(n *Matrix) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i := range m.Data {
		if x := math.Abs(m.Data[i] - n.Data[i]); x > d {
			d = x
		}
	}
	return d
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the dot product of two equal-length slices.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// CosineRows returns the cosine similarity of rows i and j of m, or 0 if
// either row is zero.
func CosineRows(m *Matrix, i, j int) float64 {
	var dot, ni, nj float64
	ri, rj := m.Data[i*m.Cols:(i+1)*m.Cols], m.Data[j*m.Cols:(j+1)*m.Cols]
	for k := 0; k < m.Cols; k++ {
		dot += ri[k] * rj[k]
		ni += ri[k] * ri[k]
		nj += rj[k] * rj[k]
	}
	if ni == 0 || nj == 0 {
		return 0
	}
	c := dot / math.Sqrt(ni*nj)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}
