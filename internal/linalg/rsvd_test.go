package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// gappedMatrix builds A = U·diag(spec)·Vᵀ with random orthonormal
// factors, so the spectrum — and in particular the gap that makes top-k
// subspaces well-defined — is exactly controlled.
func gappedMatrix(rng *rand.Rand, m, n int, spec []float64) *Matrix {
	u := randomMatrix(rng, m, len(spec))
	orthonormalize(u)
	v := randomMatrix(rng, n, len(spec))
	orthonormalize(v)
	u.ScaleCols(spec)
	return u.Mul(v.Transpose())
}

// subspaceSin returns the sine of the largest principal angle between
// the column spans of a and b (same shape, orthonormal columns):
// σ_max((I − a·aᵀ)·b).
func subspaceSin(a, b *Matrix) float64 {
	proj := a.Transpose().Mul(b) // k×k
	m := b.Clone()
	correction := a.Mul(proj)
	for i := range m.Data {
		m.Data[i] -= correction.Data[i]
	}
	d := ComputeSVD(m)
	if len(d.S) == 0 {
		return 0
	}
	return d.S[0]
}

func TestRandomizedSVDSingularValuesMatchJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		rows, cols int
		density    float64
		k          int
	}{
		{60, 40, 1.0, 8},
		{40, 90, 1.0, 6},
		{120, 80, 0.08, 10},
		{70, 150, 0.05, 5},
	} {
		var sp *Sparse
		if tc.density >= 1 {
			sp = SparseFromDense(randomMatrix(rng, tc.rows, tc.cols))
		} else {
			sp = randomSparse(rng, tc.rows, tc.cols, tc.density)
		}
		exact := ComputeSVD(sp.Dense())
		fast := RandomizedSVD(sp, tc.k, RSVDOptions{})
		if fast.Rank() != tc.k {
			t.Fatalf("%dx%d: rank = %d, want %d", tc.rows, tc.cols, fast.Rank(), tc.k)
		}
		for i := 0; i < tc.k; i++ {
			if diff := math.Abs(fast.S[i] - exact.S[i]); diff > 1e-6 {
				t.Errorf("%dx%d density=%.2f: σ%d = %.12f, exact %.12f (diff %g)",
					tc.rows, tc.cols, tc.density, i, fast.S[i], exact.S[i], diff)
			}
		}
	}
}

func TestRandomizedSVDSubspaceAnglesMatchJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	// Spectra with a definite gap at the truncation rank keep the top-k
	// subspace well-conditioned, so the angle comparison is meaningful.
	spec := []float64{12, 10, 9, 7.5, 6, 2, 1.5, 1, 0.7, 0.4, 0.2, 0.1}
	const k = 5
	for _, dims := range [][2]int{{80, 50}, {50, 130}} {
		a := gappedMatrix(rng, dims[0], dims[1], spec)
		sp := SparseFromDense(a)
		exact := ComputeSVD(a).Truncate(k)
		fast := RandomizedSVD(sp, k, RSVDOptions{})
		if sinU := subspaceSin(exact.U, fast.U); sinU > 1e-6 {
			t.Errorf("%v: left subspace angle sin = %g", dims, sinU)
		}
		if sinV := subspaceSin(exact.V, fast.V); sinV > 1e-6 {
			t.Errorf("%v: right subspace angle sin = %g", dims, sinV)
		}
	}
}

func TestRandomizedSVDSparseSubspaceAngles(t *testing.T) {
	// On a generic random sparse matrix the gap location is not chosen by
	// us, so find a k with a healthy relative gap and compare there.
	rng := rand.New(rand.NewSource(44))
	sp := randomSparse(rng, 90, 120, 0.07)
	exact := ComputeSVD(sp.Dense())
	k := -1
	for i := 2; i < 12; i++ {
		if exact.S[i] > 0 && exact.S[i]/exact.S[i-1] < 0.9 {
			k = i
			break
		}
	}
	if k < 0 {
		k = 6 // no strong gap in the scan window; angles still converge via iteration
	}
	fast := RandomizedSVD(sp, k, RSVDOptions{})
	tr := exact.Truncate(k)
	if sinU := subspaceSin(tr.U, fast.U); sinU > 1e-6 {
		t.Errorf("k=%d: left subspace angle sin = %g", k, sinU)
	}
	if sinV := subspaceSin(tr.V, fast.V); sinV > 1e-6 {
		t.Errorf("k=%d: right subspace angle sin = %g", k, sinV)
	}
	for i := 0; i < k; i++ {
		if diff := math.Abs(fast.S[i] - exact.S[i]); diff > 1e-6 {
			t.Errorf("σ%d diff = %g", i, diff)
		}
	}
}

func TestRandomizedSVDNearOptimalReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	sp := randomSparse(rng, 100, 70, 0.1)
	const k = 8
	exact := ComputeSVD(sp.Dense())
	var bestSq float64
	for _, s := range exact.S[k:] {
		bestSq += s * s
	}
	rec := RandomizedSVD(sp, k, RSVDOptions{}).Reconstruct()
	a := sp.Dense()
	var gotSq float64
	for i := range rec.Data {
		d := rec.Data[i] - a.Data[i]
		gotSq += d * d
	}
	if gotSq > bestSq+1e-6 {
		t.Errorf("rank-%d error² = %v, optimum %v", k, gotSq, bestSq)
	}
}

func TestRandomizedSVDDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	sp := randomSparse(rng, 80, 60, 0.1)
	a := RandomizedSVD(sp, 7, RSVDOptions{})
	b := RandomizedSVD(sp, 7, RSVDOptions{})
	for i := range a.S {
		if a.S[i] != b.S[i] {
			t.Fatalf("σ%d differs across runs: %v vs %v", i, a.S[i], b.S[i])
		}
	}
	if a.U.MaxAbsDiff(b.U) != 0 || a.V.MaxAbsDiff(b.V) != 0 {
		t.Fatal("factors differ across runs with the same seed")
	}
	c := RandomizedSVD(sp, 7, RSVDOptions{Seed: 99})
	for i := range a.S {
		if diff := math.Abs(a.S[i] - c.S[i]); diff > 1e-6 {
			t.Errorf("σ%d unstable across seeds: diff %g", i, diff)
		}
	}
}

func TestRandomizedSVDFactorOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sp := randomSparse(rng, 60, 100, 0.1)
	d := RandomizedSVD(sp, 6, RSVDOptions{})
	for name, f := range map[string]*Matrix{"U": d.U, "V": d.V} {
		g := f.Transpose().Mul(f)
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				want := 0.0
				if r == c {
					want = 1.0
				}
				if math.Abs(g.At(r, c)-want) > 1e-9 {
					t.Fatalf("%sᵀ%s (%d,%d) = %v", name, name, r, c, g.At(r, c))
				}
			}
		}
	}
}

func TestSparseTruncatedSVDTinyFallsBackToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	dense := randomMatrix(rng, 12, 9) // 108 cells — well under the cutoff
	sp := SparseFromDense(dense)
	got := SparseTruncatedSVD(sp, 4)
	want := TruncatedSVD(dense, 4)
	if got.U.MaxAbsDiff(want.U) != 0 || got.V.MaxAbsDiff(want.V) != 0 {
		t.Error("tiny input did not take the exact Jacobi path")
	}
	for i := range want.S {
		if got.S[i] != want.S[i] {
			t.Fatalf("σ%d = %v, want %v", i, got.S[i], want.S[i])
		}
	}
}

func TestRandomizedSVDDegenerateInputs(t *testing.T) {
	if d := RandomizedSVD(NewSparse(0, 5, nil), 3, RSVDOptions{}); d.Rank() != 0 {
		t.Errorf("empty rows rank = %d", d.Rank())
	}
	if d := RandomizedSVD(NewSparse(40, 200, nil), 3, RSVDOptions{}); d.Rank() != 3 {
		t.Errorf("zero matrix rank = %d", d.Rank())
	} else {
		for _, s := range d.S {
			if s != 0 {
				t.Errorf("zero matrix σ = %v", d.S)
			}
		}
	}
	// k above min dimension clamps.
	rng := rand.New(rand.NewSource(99))
	sp := randomSparse(rng, 100, 50, 0.1)
	if d := RandomizedSVD(sp, 500, RSVDOptions{}); d.Rank() != 50 {
		t.Errorf("over-truncate rank = %d", d.Rank())
	}
}
