package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Errorf("At/Set broken: %v", m.Data)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Errorf("Row = %v", row)
	}
	col := m.Col(2)
	if len(col) != 2 || col[1] != 5 {
		t.Errorf("Col = %v", col)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Errorf("Transpose = %v", tr)
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("Mul =\n%v", c)
	}
}

func TestMatrixMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	d := ComputeSVD(a)
	if len(d.S) != 2 || math.Abs(d.S[0]-4) > 1e-9 || math.Abs(d.S[1]-3) > 1e-9 {
		t.Errorf("singular values = %v, want [4 3]", d.S)
	}
}

func TestSVDKnownRankOne(t *testing.T) {
	// A = u·vᵀ with |u| = sqrt(5), |v| = sqrt(2): σ1 = sqrt(10), σ2 = 0.
	a := FromRows([][]float64{{1, 1}, {2, 2}})
	d := ComputeSVD(a)
	if math.Abs(d.S[0]-math.Sqrt(10)) > 1e-9 {
		t.Errorf("σ1 = %v, want sqrt(10)", d.S[0])
	}
	if math.Abs(d.S[1]) > 1e-9 {
		t.Errorf("σ2 = %v, want 0", d.S[1])
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{4, 4}, {6, 3}, {3, 6}, {10, 2}, {1, 5}, {5, 1}} {
		a := randomMatrix(rng, dims[0], dims[1])
		d := ComputeSVD(a)
		if diff := d.Reconstruct().MaxAbsDiff(a); diff > 1e-8 {
			t.Errorf("%dx%d: reconstruction error %g", dims[0], dims[1], diff)
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 8, 5)
	d := ComputeSVD(a)
	utu := d.U.Transpose().Mul(d.U)
	vtv := d.V.Transpose().Mul(d.V)
	for _, m := range []*Matrix{utu, vtv} {
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				want := 0.0
				if r == c {
					want = 1.0
				}
				if math.Abs(m.At(r, c)-want) > 1e-8 {
					t.Fatalf("factor not orthonormal at (%d,%d): %v", r, c, m.At(r, c))
				}
			}
		}
	}
}

func TestSVDSingularValuesSortedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(8)
		cols := 2 + rng.Intn(8)
		d := ComputeSVD(randomMatrix(rng, rows, cols))
		for i := 1; i < len(d.S); i++ {
			if d.S[i] > d.S[i-1]+1e-12 {
				return false
			}
			if d.S[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSVDTruncateIsBestRankK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 6, 6)
	full := ComputeSVD(a)
	k := 3
	trunc := full.Truncate(k)
	if trunc.Rank() != k {
		t.Fatalf("rank = %d", trunc.Rank())
	}
	// Frobenius error of best rank-k approximation = sqrt(Σ σ_i² for i>k).
	var wantSq float64
	for _, s := range full.S[k:] {
		wantSq += s * s
	}
	diff := trunc.Reconstruct()
	var gotSq float64
	for i := range diff.Data {
		d := diff.Data[i] - a.Data[i]
		gotSq += d * d
	}
	if math.Abs(gotSq-wantSq) > 1e-8 {
		t.Errorf("rank-%d error² = %v, want %v", k, gotSq, wantSq)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	d := ComputeSVD(NewMatrix(3, 2))
	for _, s := range d.S {
		if s != 0 {
			t.Errorf("zero matrix σ = %v", d.S)
		}
	}
	if diff := d.Reconstruct().MaxAbsDiff(NewMatrix(3, 2)); diff != 0 {
		t.Errorf("zero reconstruction diff = %v", diff)
	}
}

func TestSVDEmptyMatrix(t *testing.T) {
	d := ComputeSVD(NewMatrix(0, 0))
	if d.Rank() != 0 {
		t.Errorf("rank = %d", d.Rank())
	}
}

func TestScaledU(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 1}})
	d := ComputeSVD(a)
	us := d.ScaledU()
	rec := us.Mul(d.V.Transpose())
	if rec.MaxAbsDiff(a) > 1e-9 {
		t.Errorf("ScaledU·Vᵀ ≠ A:\n%v", rec)
	}
}

func TestCosineRows(t *testing.T) {
	m := FromRows([][]float64{{1, 0}, {0, 1}, {2, 0}, {0, 0}})
	if c := CosineRows(m, 0, 2); math.Abs(c-1) > 1e-12 {
		t.Errorf("parallel rows cosine = %v", c)
	}
	if c := CosineRows(m, 0, 1); math.Abs(c) > 1e-12 {
		t.Errorf("orthogonal rows cosine = %v", c)
	}
	if c := CosineRows(m, 0, 3); c != 0 {
		t.Errorf("zero row cosine = %v", c)
	}
}

func TestTruncatedSVDHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 5, 4)
	d := TruncatedSVD(a, 2)
	if d.Rank() != 2 {
		t.Errorf("rank = %d", d.Rank())
	}
	if d2 := TruncatedSVD(a, 100); d2.Rank() != 4 {
		t.Errorf("over-truncate rank = %d", d2.Rank())
	}
}
