package linalg

import (
	"math"
	"sort"
)

// SVD holds a (possibly truncated) singular value decomposition
// A ≈ U · diag(S) · Vᵀ with U (m×r), S (r), V (n×r), and singular values
// in non-increasing order.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// Rank returns the number of retained singular triplets.
func (d *SVD) Rank() int { return len(d.S) }

// Truncate returns the rank-k truncation of the decomposition (the f most
// important dimensions, in the paper's terms). k larger than the current
// rank returns the decomposition unchanged.
func (d *SVD) Truncate(k int) *SVD {
	if k >= len(d.S) {
		return d
	}
	if k < 0 {
		k = 0
	}
	return &SVD{U: d.U.Truncate(k), S: append([]float64(nil), d.S[:k]...), V: d.V.Truncate(k)}
}

// Reconstruct returns U · diag(S) · Vᵀ.
func (d *SVD) Reconstruct() *Matrix {
	us := d.U.Clone()
	us.ScaleCols(d.S)
	return us.Mul(d.V.Transpose())
}

// ScaledU returns U · diag(S): each row is the corresponding row entity's
// embedding in the latent space, scaled by the top singular values — the
// representation LSI compares with cosine.
func (d *SVD) ScaledU() *Matrix {
	us := d.U.Clone()
	us.ScaleCols(d.S)
	return us
}

// ComputeSVD computes the full singular value decomposition of a using
// the one-sided Jacobi (Hestenes) method. It is accurate for the small,
// well-scaled matrices produced by LSI occurrence counting.
func ComputeSVD(a *Matrix) *SVD {
	if a.Rows == 0 || a.Cols == 0 {
		return &SVD{U: NewMatrix(a.Rows, 0), S: nil, V: NewMatrix(a.Cols, 0)}
	}
	// One-sided Jacobi orthogonalizes columns; work with the tall
	// orientation (rows ≥ cols) and swap factors back if we transposed.
	transposed := a.Cols > a.Rows
	work := a
	if transposed {
		work = a.Transpose()
	}
	u, s, v := jacobiSVD(work)
	if transposed {
		u, v = v, u
	}
	return &SVD{U: u, S: s, V: v}
}

// jacobiSVD decomposes a tall matrix (rows ≥ cols) via one-sided Jacobi
// rotations: it repeatedly rotates pairs of columns of B (a working copy
// of A) until all pairs are numerically orthogonal. The right factor V
// accumulates the rotations; singular values are the column norms of the
// converged B and U its normalized columns.
func jacobiSVD(a *Matrix) (u *Matrix, s []float64, v *Matrix) {
	m, n := a.Rows, a.Cols
	b := a.Clone()
	v = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const (
		eps       = 1e-12
		maxSweeps = 60
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for r := 0; r < m; r++ {
					bp, bq := b.Data[r*n+p], b.Data[r*n+q]
					alpha += bp * bp
					beta += bq * bq
					gamma += bp * bq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for r := 0; r < m; r++ {
					bp, bq := b.Data[r*n+p], b.Data[r*n+q]
					b.Data[r*n+p] = c*bp - sn*bq
					b.Data[r*n+q] = sn*bp + c*bq
				}
				for r := 0; r < n; r++ {
					vp, vq := v.Data[r*n+p], v.Data[r*n+q]
					v.Data[r*n+p] = c*vp - sn*vq
					v.Data[r*n+q] = sn*vp + c*vq
				}
			}
		}
		if !rotated {
			break
		}
	}
	// Extract singular values and left vectors.
	s = make([]float64, n)
	u = NewMatrix(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for r := 0; r < m; r++ {
			norm += b.Data[r*n+j] * b.Data[r*n+j]
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			for r := 0; r < m; r++ {
				u.Data[r*n+j] = b.Data[r*n+j] / norm
			}
		}
	}
	// Sort triplets by descending singular value.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return s[order[i]] > s[order[j]] })
	sortedS := make([]float64, n)
	sortedU := NewMatrix(m, n)
	sortedV := NewMatrix(n, n)
	for newJ, oldJ := range order {
		sortedS[newJ] = s[oldJ]
		for r := 0; r < m; r++ {
			sortedU.Data[r*n+newJ] = u.Data[r*n+oldJ]
		}
		for r := 0; r < n; r++ {
			sortedV.Data[r*n+newJ] = v.Data[r*n+oldJ]
		}
	}
	return sortedU, sortedS, sortedV
}

// TruncatedSVD computes the rank-k truncated SVD of a.
func TruncatedSVD(a *Matrix, k int) *SVD {
	return ComputeSVD(a).Truncate(k)
}
