package linalg

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// The two codec fuzz targets assert the snapshot store's substrate: the
// matrix decoders never panic and never allocate unboundedly on
// adversarial bytes, and anything they accept is structurally sound
// enough to re-encode into a stable canonical form.

func FuzzMatrixUnmarshal(f *testing.F) {
	seed := NewMatrix(2, 3)
	for i := range seed.Data {
		seed.Data[i] = float64(i) * 0.5
	}
	raw, _ := seed.MarshalBinary()
	f.Add(raw)
	f.Add(raw[:len(raw)-3]) // truncated data
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge dimension
	empty, _ := NewMatrix(0, 0).MarshalBinary()
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Matrix
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		if len(m.Data) != m.Rows*m.Cols {
			t.Fatalf("decoded matrix %dx%d carries %d values", m.Rows, m.Cols, len(m.Data))
		}
		// Canonical re-encode must round-trip exactly.
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var m2 Matrix
		if err := m2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		out2, _ := m2.MarshalBinary()
		if !bytes.Equal(out, out2) {
			t.Fatal("canonical encoding not stable")
		}
	})
}

func FuzzSparseUnmarshal(f *testing.F) {
	seed := SparseFromDense(&Matrix{Rows: 2, Cols: 3, Data: []float64{1, 0, 2, 0, 0, 3}})
	raw, _ := seed.MarshalBinary()
	f.Add(raw)
	f.Add(raw[:len(raw)-5]) // truncated values
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x03, 0xff, 0xff, 0x7f}) // nnz far beyond payload
	empty, _ := (&Sparse{RowPtr: []int{0}}).MarshalBinary()
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sparse
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		// CSR invariants hold on anything accepted.
		if len(s.RowPtr) != s.Rows+1 || s.RowPtr[s.Rows] != s.NNZ() {
			t.Fatalf("row pointers inconsistent: %v vs nnz %d", s.RowPtr, s.NNZ())
		}
		for r := 0; r < s.Rows; r++ {
			if s.RowPtr[r] > s.RowPtr[r+1] {
				t.Fatalf("row %d pointer not monotone", r)
			}
			prev := -1
			for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
				c := s.ColIdx[i]
				if c <= prev || c >= s.Cols {
					t.Fatalf("row %d column %d out of order or range", r, c)
				}
				prev = c
			}
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var s2 Sparse
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		out2, _ := s2.MarshalBinary()
		if !bytes.Equal(out, out2) {
			t.Fatal("canonical encoding not stable")
		}
	})
}

// FuzzQuantizedRows hammers the int8 quantization round trip with
// arbitrary bit patterns (including NaN, infinities, denormals, and
// mixed magnitudes): quantization must never panic, the estimate must
// stay clamped, and whenever Margin claims a finite bound the estimate
// must actually be within it of the exact float64 cosine.
func FuzzQuantizedRows(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0xf0, 0, 0, 0, 0, 0, 0, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]float64, len(data)/8)
		if len(vals) == 0 {
			return
		}
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		cols := 1 + len(vals)%8
		rows := len(vals) / cols
		if rows < 2 {
			rows, cols = len(vals), 1
		}
		m := &Matrix{Rows: rows, Cols: cols, Data: vals[:rows*cols]}
		q := QuantizeRows(m)
		for i := 0; i < rows; i++ {
			for j := 0; j < rows; j++ {
				est := CosineRowsQ8(q, i, j)
				if math.IsNaN(est) || est < -1 || est > 1 {
					t.Fatalf("CosineRowsQ8(%d,%d) = %v out of range", i, j, est)
				}
				margin := q.Margin(i, j)
				if math.IsNaN(margin) || margin < 0 {
					t.Fatalf("Margin(%d,%d) = %v", i, j, margin)
				}
				if math.IsInf(margin, 1) {
					continue
				}
				exact := CosineRows(m, i, j)
				if diff := math.Abs(est - exact); diff > margin {
					t.Fatalf("pair (%d,%d): |%v - %v| = %v > margin %v",
						i, j, est, exact, diff, margin)
				}
			}
		}
	})
}
