package linalg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codecs for the two matrix representations, used by the artifact
// snapshot store (internal/store) to persist LSI factor matrices. Both
// types implement encoding.BinaryMarshaler / encoding.BinaryUnmarshaler.
//
// Layouts (little-endian):
//
//	Matrix: uvarint rows · uvarint cols · rows*cols float64 bits
//	Sparse: uvarint rows · uvarint cols · uvarint nnz ·
//	        rows uvarint row-length deltas (RowPtr differences) ·
//	        nnz uvarint column-index gaps (per row, first absolute) ·
//	        nnz float64 bits
//
// Float64 values are stored as their exact IEEE-754 bit patterns, so a
// decoded matrix is bit-identical to the encoded one — the property the
// store's byte-identical-results guarantee rests on.

// AppendBinary appends the matrix's binary encoding to b.
func (m *Matrix) AppendBinary(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(m.Rows))
	b = binary.AppendUvarint(b, uint64(m.Cols))
	for _, v := range m.Data {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Matrix) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, 16+8*len(m.Data))), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It validates the
// header against the available bytes before allocating, so corrupt input
// fails with an error rather than an enormous allocation.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	d := byteDecoder{buf: data}
	rows := d.uvarint()
	cols := d.uvarint()
	if d.err != nil {
		return fmt.Errorf("linalg: matrix header: %w", d.err)
	}
	if rows < 0 || cols < 0 || (cols != 0 && rows > len(d.buf)/(8*cols)) {
		return fmt.Errorf("linalg: matrix %d×%d does not fit %d payload bytes", rows, cols, len(d.buf))
	}
	out := NewMatrix(rows, cols)
	for i := range out.Data {
		out.Data[i] = d.float64()
	}
	if d.err != nil {
		return fmt.Errorf("linalg: matrix data: %w", d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("linalg: %d trailing bytes after matrix", len(d.buf))
	}
	*m = *out
	return nil
}

// AppendBinary appends the CSR matrix's binary encoding to b.
func (s *Sparse) AppendBinary(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(s.Rows))
	b = binary.AppendUvarint(b, uint64(s.Cols))
	b = binary.AppendUvarint(b, uint64(s.NNZ()))
	for r := 0; r < s.Rows; r++ {
		b = binary.AppendUvarint(b, uint64(s.RowPtr[r+1]-s.RowPtr[r]))
	}
	for r := 0; r < s.Rows; r++ {
		prev := 0
		for i := s.RowPtr[r]; i < s.RowPtr[r+1]; i++ {
			b = binary.AppendUvarint(b, uint64(s.ColIdx[i]-prev))
			prev = s.ColIdx[i] + 1
		}
	}
	for _, v := range s.Val {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sparse) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, 24+10*s.NNZ())), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, validating the
// CSR invariants (monotone row pointers, strictly increasing in-range
// column indices) so a decoded matrix is structurally sound.
func (s *Sparse) UnmarshalBinary(data []byte) error {
	d := byteDecoder{buf: data}
	rows := d.uvarint()
	cols := d.uvarint()
	nnz := d.uvarint()
	if d.err != nil {
		return fmt.Errorf("linalg: sparse header: %w", d.err)
	}
	if rows < 0 || cols < 0 || nnz < 0 || rows > len(data) || nnz > len(data) {
		return fmt.Errorf("linalg: sparse %d×%d nnz=%d does not fit %d bytes", rows, cols, nnz, len(data))
	}
	out := &Sparse{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for r := 0; r < rows; r++ {
		out.RowPtr[r+1] = out.RowPtr[r] + d.uvarint()
	}
	if d.err != nil {
		return fmt.Errorf("linalg: sparse row table: %w", d.err)
	}
	if out.RowPtr[rows] != nnz {
		return fmt.Errorf("linalg: sparse row lengths sum to %d, want nnz=%d", out.RowPtr[rows], nnz)
	}
	out.ColIdx = make([]int, nnz)
	out.Val = make([]float64, nnz)
	for r := 0; r < rows; r++ {
		prev := 0
		for i := out.RowPtr[r]; i < out.RowPtr[r+1]; i++ {
			c := prev + d.uvarint()
			if d.err == nil && (c < 0 || c >= cols) {
				return fmt.Errorf("linalg: sparse column %d outside %d cols", c, cols)
			}
			out.ColIdx[i] = c
			prev = c + 1
		}
	}
	for i := range out.Val {
		out.Val[i] = d.float64()
	}
	if d.err != nil {
		return fmt.Errorf("linalg: sparse data: %w", d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("linalg: %d trailing bytes after sparse matrix", len(d.buf))
	}
	*s = *out
	return nil
}

// byteDecoder is a minimal error-accumulating reader over a byte slice.
type byteDecoder struct {
	buf []byte
	err error
}

var errShortBuffer = fmt.Errorf("unexpected end of input")

func (d *byteDecoder) uvarint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 || v > math.MaxInt64 {
		d.err = errShortBuffer
		return 0
	}
	d.buf = d.buf[n:]
	return int(v)
}

func (d *byteDecoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = errShortBuffer
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}
