package linalg

import "math"

// QuantizedRows is a symmetric int8 quantization of a matrix's rows,
// built for cheap approximate row-cosine evaluation with a *proven*
// per-pair error bound. Each row r is stored as q[r] = round(x/scale[r])
// with scale[r] = max|x|/127, so the dequantized row scale[r]·q[r]
// differs from x by at most scale[r]/2 per coordinate. Alongside the
// codes it keeps, per row, the exact squared norm of the original row
// and the measured norm of the quantization residual — everything
// Margin needs to bound |CosineRowsQ8 − CosineRows| without ever
// touching the float64 data again.
//
// Rows containing non-finite values, or whose norms overflow, are
// stored as all-zero codes with an infinite residual: CosineRowsQ8
// returns 0 for them and Margin returns +Inf, so a pruner that trusts
// the bound can never mistake an unquantizable row for a provably
// low-scoring one.
type QuantizedRows struct {
	Rows, Cols int
	Q          []int8 // len = Rows*Cols, Q[r*Cols+c]

	ratio  []float64 // scale/‖x‖ per row — always well-conditioned (0 for zero/bad rows)
	normSq []float64 // Σx², the same accumulation CosineRows performs
	relErr []float64 // ‖x − scale·q‖ / ‖x‖ (+Inf for unquantizable rows)
}

// Rows whose squared norm falls outside [2^-509, 2^509] are treated as
// unquantizable: beyond that range the float64 products inside the
// *reference* CosineRows (ni·nj) underflow or overflow, so no finite
// error bound against it can be honest.
const (
	minQuantNormSq = 0x1p-509
	maxQuantNormSq = 0x1p+509
)

// quantSlop absorbs float64 rounding in both the quantized estimate and
// the exact CosineRows reference (a handful of ulps each); the
// quantization residual term dominates it by many orders of magnitude.
const quantSlop = 1e-9

// QuantizeRows builds the int8 form of m's rows.
func QuantizeRows(m *Matrix) *QuantizedRows {
	q := &QuantizedRows{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Q:      make([]int8, m.Rows*m.Cols),
		ratio:  make([]float64, m.Rows),
		normSq: make([]float64, m.Rows),
		relErr: make([]float64, m.Rows),
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var maxAbs, normSq float64
		for _, x := range row {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
			normSq += x * x
		}
		q.normSq[r] = normSq
		if maxAbs == 0 {
			// Exact zero row: codes are zero with no residual, and both
			// CosineRows and CosineRowsQ8 return 0 for it.
			continue
		}
		if !isFinite(maxAbs) || !isFinite(normSq) ||
			normSq < minQuantNormSq || normSq > maxQuantNormSq {
			q.relErr[r] = math.Inf(1)
			continue
		}
		scale := maxAbs / 127
		codes := q.Q[r*m.Cols : (r+1)*m.Cols]
		var errSq float64
		for c, x := range row {
			v := math.Round(x / scale)
			codes[c] = int8(v)
			e := x - scale*v
			errSq += e * e
		}
		rel := math.Sqrt(errSq) / math.Sqrt(normSq)
		if !isFinite(rel) {
			for c := range codes {
				codes[c] = 0
			}
			q.relErr[r] = math.Inf(1)
			continue
		}
		// scale/‖x‖ lies in [1/(127·√cols), 1/127]: multiplying two of
		// these ratios with the int32 dot can never underflow or
		// overflow, unlike scale_i·scale_j on denormal-adjacent rows.
		q.ratio[r] = scale / math.Sqrt(normSq)
		// Inflate the measured residual ratio to cover its own rounding.
		q.relErr[r] = rel * (1 + 1e-12)
	}
	return q
}

func isFinite(x float64) bool { return !math.IsInf(x, 0) && !math.IsNaN(x) }

// CosineRowsQ8 approximates CosineRows(m, i, j) from the quantized
// codes alone: an int8 dot product accumulated exactly in 32 bits,
// rescaled and clamped to [-1, 1]. The result is within Margin(i, j) of
// the exact float64 cosine, and is 0 whenever either row is zero or
// unquantizable.
func CosineRowsQ8(q *QuantizedRows, i, j int) float64 {
	ni, nj := q.normSq[i], q.normSq[j]
	if !(ni > 0) || !(nj > 0) {
		return 0
	}
	var acc int32
	qi, qj := q.Q[i*q.Cols:(i+1)*q.Cols], q.Q[j*q.Cols:(j+1)*q.Cols]
	for k := 0; k < q.Cols; k++ {
		acc += int32(qi[k]) * int32(qj[k])
	}
	c := q.ratio[i] * q.ratio[j] * float64(acc)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Margin bounds the quantization error of pair (i, j):
//
//	|CosineRowsQ8(q, i, j) − CosineRows(m, i, j)| ≤ Margin(i, j)
//
// The bound follows from writing each row x as its dequantized form x̂
// plus a residual e: the dot products then differ by at most
// ‖x‖‖e_j‖ + ‖e_i‖‖x_j‖ + 3‖e_i‖‖e_j‖, which after normalization is
// relErr_i + relErr_j + 3·relErr_i·relErr_j; clamping both cosines to
// [-1, 1] is 1-Lipschitz so it never widens the gap, and quantSlop
// absorbs float64 rounding on both sides. Pairs involving an
// unquantizable row get +Inf — "no claim".
func (q *QuantizedRows) Margin(i, j int) float64 {
	ri, rj := q.relErr[i], q.relErr[j]
	if math.IsInf(ri, 1) || math.IsInf(rj, 1) {
		return math.Inf(1)
	}
	if q.normSq[i] == 0 || q.normSq[j] == 0 {
		// Both cosines are exactly 0 by definition.
		return 0
	}
	return ri + rj + 3*ri*rj + quantSlop
}
