package linalg

import (
	"math"
	"testing"
)

func TestMatrixBinaryRoundTrip(t *testing.T) {
	m := NewMatrix(3, 4)
	for i := range m.Data {
		m.Data[i] = math.Sqrt(float64(i)) * math.Pi
	}
	m.Data[5] = -0.0
	m.Data[7] = math.Inf(1)
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.Cols != m.Cols {
		t.Fatalf("shape %d×%d != %d×%d", got.Rows, got.Cols, m.Rows, m.Cols)
	}
	for i := range m.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
			t.Fatalf("Data[%d]: %x != %x", i, got.Data[i], m.Data[i])
		}
	}
}

func TestMatrixBinaryEmpty(t *testing.T) {
	for _, m := range []*Matrix{NewMatrix(0, 0), NewMatrix(5, 0), NewMatrix(0, 7)} {
		raw, _ := m.MarshalBinary()
		var got Matrix
		if err := got.UnmarshalBinary(raw); err != nil {
			t.Fatalf("%d×%d: %v", m.Rows, m.Cols, err)
		}
		if got.Rows != m.Rows || got.Cols != m.Cols {
			t.Fatalf("shape %d×%d != %d×%d", got.Rows, got.Cols, m.Rows, m.Cols)
		}
	}
}

func TestSparseBinaryRoundTrip(t *testing.T) {
	s := NewSparse(4, 6, []Entry{
		{0, 1, 1.5}, {0, 5, -2}, {1, 0, 3}, {3, 2, 0.25}, {3, 3, 1e-300},
	})
	raw, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sparse
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if got.Dense().MaxAbsDiff(s.Dense()) != 0 {
		t.Fatal("round trip changed values")
	}
	if got.NNZ() != s.NNZ() {
		t.Fatalf("nnz %d != %d", got.NNZ(), s.NNZ())
	}
}

func TestMatrixBinaryCorrupt(t *testing.T) {
	m := NewMatrix(2, 2)
	raw, _ := m.MarshalBinary()
	cases := map[string][]byte{
		"truncated":  raw[:len(raw)-3],
		"trailing":   append(append([]byte(nil), raw...), 0xFF),
		"huge-shape": {0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x02},
		"empty":      {},
	}
	for name, data := range cases {
		var got Matrix
		if err := got.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSparseBinaryCorrupt(t *testing.T) {
	s := NewSparse(3, 3, []Entry{{0, 0, 1}, {2, 2, 2}})
	raw, _ := s.MarshalBinary()
	var got Sparse
	if err := got.UnmarshalBinary(raw[:len(raw)-1]); err == nil {
		t.Error("truncated: expected error")
	}
	// Column gap pushing an index past Cols must be rejected.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-17] = 0x7F // first column-gap byte region; exact effect varies,
	var got2 Sparse         // but decode must never yield out-of-range indices.
	if err := got2.UnmarshalBinary(bad); err == nil {
		for _, c := range got2.ColIdx {
			if c < 0 || c >= got2.Cols {
				t.Fatal("corrupt decode produced out-of-range column")
			}
		}
	}
}
