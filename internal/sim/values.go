// Package sim computes the similarity evidence WikiMatch combines
// (Section 3.2): cross-language value similarity (vsim) over
// dictionary-translated value vectors, link-structure similarity (lsim)
// over cross-language-resolved link targets, the grouping score g and
// inductive grouping score eg of the ReviseUncertain step (Section 3.4),
// and the alternative correlation measures X1, X2, X3 of Appendix B.
package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/text"
	"repro/internal/wiki"
)

// monthIndex maps normalized month names (English and Portuguese) to
// their number, for date canonicalization.
var monthIndex = map[string]int{
	"january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
	"june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
	"november": 11, "december": 12,
	"janeiro": 1, "fevereiro": 2, "marco": 3, "abril": 4, "maio": 5,
	"junho": 6, "julho": 7, "agosto": 8, "setembro": 9, "outubro": 10,
	"novembro": 11, "dezembro": 12,
}

// CanonicalDate recognizes a date expression in any of the three
// languages' conventions and returns it in ISO form ("1950-12-18"):
//
//	English:    "December 18, 1950" / "December 18 1950"
//	Portuguese: "18 de dezembro de 1950" / "18 de Dezembro 1950"
//	Vietnamese: "18 tháng 12 năm 1950" / "18 tháng 12 1950"
//
// This plays the role the paper's title dictionary plays for date values
// (day-month pages are cross-linked articles in Wikipedia): it puts the
// two languages' renderings of the same date into a common form before
// cosine comparison.
func CanonicalDate(term string) (string, bool) {
	toks := text.Tokenize(term)
	if len(toks) < 3 || len(toks) > 5 {
		return "", false
	}
	// Strip Portuguese "de" and Vietnamese "nam" connectives.
	var parts []string
	for _, t := range toks {
		if t == "de" || t == "nam" {
			continue
		}
		parts = append(parts, t)
	}
	// Valid shapes: [month day year] (en), [day month year] (pt), or
	// [day "thang" month year] (vn).
	if len(parts) != 3 && !(len(parts) == 4 && parts[1] == "thang") {
		return "", false
	}
	var day, month, year int
	switch {
	case len(parts) == 4 && parts[1] == "thang":
		day = atoiOr(parts[0], -1)
		month = atoiOr(parts[2], -1)
		year = atoiOr(parts[3], -1)
	case len(parts) == 3 && monthIndex[parts[0]] > 0:
		// English: month day year.
		month = monthIndex[parts[0]]
		day = atoiOr(parts[1], -1)
		year = atoiOr(parts[2], -1)
	case len(parts) == 3 && monthIndex[parts[1]] > 0:
		// Portuguese: day month year.
		day = atoiOr(parts[0], -1)
		month = monthIndex[parts[1]]
		year = atoiOr(parts[2], -1)
	default:
		return "", false
	}
	if day < 1 || day > 31 || month < 1 || month > 12 || year < 100 || year > 3000 {
		return "", false
	}
	return fmt.Sprintf("%04d-%02d-%02d", year, month, day), true
}

func atoiOr(s string, def int) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}

// ValueTerms splits an attribute's raw value text into normalized value
// terms — the components of the paper's value vectors. Values are split
// on commas outside parentheses; date expressions are canonicalized.
// English dates carry an internal comma ("October 4, 1987"), so adjacent
// segments that jointly parse as a date are re-merged.
func ValueTerms(lang wiki.Language, value string) []string {
	segs := splitValue(value)
	var terms []string
	for i := 0; i < len(segs); i++ {
		seg := strings.TrimSpace(segs[i])
		if seg == "" {
			continue
		}
		if i+1 < len(segs) {
			joined := seg + ", " + strings.TrimSpace(segs[i+1])
			if iso, ok := CanonicalDate(joined); ok {
				terms = append(terms, iso, iso[:4])
				i++
				continue
			}
		}
		if iso, ok := CanonicalDate(seg); ok {
			// A date contributes both its full ISO form and its year: the
			// year survives day-level inconsistencies between language
			// editions (the paper's running-time/date noise, §1).
			terms = append(terms, iso, iso[:4])
			continue
		}
		n := text.Normalize(seg)
		if n == "" {
			continue
		}
		// A "<number> <unit>" segment ("160 minutes" / "160 min" /
		// "160 phút") reduces to its language-independent number.
		if toks := strings.Fields(n); len(toks) == 2 && isDigits(toks[0]) && !isDigits(toks[1]) {
			terms = append(terms, toks[0])
			continue
		}
		terms = append(terms, n)
		// Other segments containing numbers ("US$ 23 milhões") also
		// contribute their digit runs, which survive translation.
		for _, run := range digitRuns(n) {
			if run != n {
				terms = append(terms, run)
			}
		}
	}
	return terms
}

// RawValueTerms splits a value into plain normalized comma segments,
// with none of the date/number canonicalization ValueTerms performs.
// This is the representation generic instance matchers (the COMA++
// baseline) work with; the canonicalization above is part of WikiMatch's
// own value pipeline.
func RawValueTerms(value string) []string {
	var terms []string
	for _, seg := range splitValue(value) {
		if n := text.Normalize(seg); n != "" {
			terms = append(terms, n)
		}
	}
	return terms
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// digitRuns returns the maximal digit substrings of s, in order.
func digitRuns(s string) []string {
	var runs []string
	start := -1
	for i := 0; i <= len(s); i++ {
		isD := i < len(s) && s[i] >= '0' && s[i] <= '9'
		if isD && start < 0 {
			start = i
		}
		if !isD && start >= 0 {
			runs = append(runs, s[start:i])
			start = -1
		}
	}
	return runs
}

// splitValue splits on commas that are not inside parentheses.
func splitValue(s string) []string {
	var parts []string
	depth, last := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	parts = append(parts, s[last:])
	return parts
}
