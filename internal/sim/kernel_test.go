package sim

import (
	"math/rand"
	"testing"

	"repro/internal/text"
)

// TestKernelMatchesMapPath asserts bit-for-bit equality between the
// merge-join kernel and the TF map path over every attribute pair of
// the corpus fixture — including cross-language pairs where cmpVec
// substitutes the translated vector.
func TestKernelMatchesMapPath(t *testing.T) {
	_, td := buildFixture(t)
	k := td.Kernel()
	if k != td.Kernel() {
		t.Fatal("Kernel not cached")
	}
	for _, p := range td.AllPairs() {
		i, j := p[0], p[1]
		if got, want := k.VSim(i, j), td.VSim(i, j); got != want {
			t.Fatalf("VSim(%d,%d): kernel %v != map %v", i, j, got, want)
		}
		if got, want := k.LSim(i, j), td.LSim(i, j); got != want {
			t.Fatalf("LSim(%d,%d): kernel %v != map %v", i, j, got, want)
		}
		// Symmetry must hold on both paths.
		if k.VSim(i, j) != k.VSim(j, i) || k.LSim(i, j) != k.LSim(j, i) {
			t.Fatalf("kernel asymmetric at (%d,%d)", i, j)
		}
	}
}

// TestKernelCosineRandomCounts asserts posting-list cosines equal
// TF.Cosine on randomized integer-count vectors — the integer-exactness
// argument the kernel's byte-identity rests on, exercised directly.
func TestKernelCosineRandomCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	terms := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	randTF := func() text.TF {
		v := text.TF{}
		for _, term := range terms {
			if rng.Intn(2) == 0 {
				v[term] = float64(1 + rng.Intn(5000))
			}
		}
		return v
	}
	for trial := 0; trial < 200; trial++ {
		vecs := []text.TF{randTF(), randTF(), {}, randTF()}
		ids := make(map[string]int32)
		lists := buildFamily(vecs, ids)
		for i := range vecs {
			for j := range vecs {
				got := cosineP(&lists[i], &lists[j])
				want := vecs[i].Cosine(vecs[j])
				if got != want {
					t.Fatalf("trial %d pair (%d,%d): kernel %v != TF %v", trial, i, j, got, want)
				}
			}
		}
	}
}
