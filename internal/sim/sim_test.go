package sim

import (
	"math"
	"testing"

	"repro/internal/dict"
	"repro/internal/text"
	"repro/internal/wiki"
)

func TestCanonicalDate(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"December 18, 1950", "1950-12-18", true},
		{"December 18 1950", "1950-12-18", true},
		{"18 de dezembro de 1950", "1950-12-18", true},
		{"18 de Dezembro 1950", "1950-12-18", true},
		{"18 tháng 12 năm 1950", "1950-12-18", true},
		{"18 tháng 12 1950", "1950-12-18", true},
		{"June 4 1975", "1975-06-04", true},
		{"4 de junho de 1975", "1975-06-04", true},
		{"just words", "", false},
		{"1963", "", false},
		{"December 40, 1950", "", false},
		{"0 de dezembro de 1950", "", false},
		{"160 minutes", "", false},
	}
	for _, c := range cases {
		got, ok := CanonicalDate(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("CanonicalDate(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestValueTerms(t *testing.T) {
	terms := ValueTerms(wiki.Portuguese, "Irlanda, 18 de Dezembro de 1950, Estados Unidos")
	want := []string{"irlanda", "1950-12-18", "1950", "estados unidos"}
	if len(terms) != len(want) {
		t.Fatalf("terms = %v", terms)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Errorf("term[%d] = %q, want %q", i, terms[i], want[i])
		}
	}
	// Parenthesized commas do not split.
	terms = ValueTerms(wiki.English, "Acme (TV, radio), Other")
	if len(terms) != 2 {
		t.Errorf("paren split terms = %v", terms)
	}
	// Number-with-unit segments reduce to the number, in any language.
	for _, v := range []string{"160 minutes", "160 min", "160 phút"} {
		if got := ValueTerms(wiki.English, v); len(got) != 1 || got[0] != "160" {
			t.Errorf("ValueTerms(%q) = %v, want [160]", v, got)
		}
	}
	// Money keeps the phrase and the digit run.
	got := ValueTerms(wiki.Portuguese, "US$ 23 milhões")
	if len(got) != 2 || got[1] != "23" {
		t.Errorf("money terms = %v", got)
	}
}

// buildFixture assembles a small Pt-En film corpus exercising every
// similarity channel: shared values, dictionary translation, links, and
// cross-language link resolution.
func buildFixture(t *testing.T) (*wiki.Corpus, *TypeData) {
	t.Helper()
	c := wiki.NewCorpus()
	addStub := func(enT, ptT string) {
		a := &wiki.Article{Language: wiki.English, Title: enT,
			CrossLinks: map[wiki.Language]string{wiki.Portuguese: ptT}}
		b := &wiki.Article{Language: wiki.Portuguese, Title: ptT,
			CrossLinks: map[wiki.Language]string{wiki.English: enT}}
		c.MustAdd(a)
		c.MustAdd(b)
	}
	addStub("United States", "Estados Unidos")
	addStub("Ireland", "Irlanda")
	addStub("Bernardo Bertolucci", "Bernardo Bertolucci (cineasta)")

	films := []struct {
		enTitle, ptTitle string
		enAttrs, ptAttrs []wiki.AttributeValue
	}{
		{
			"The Last Emperor", "O Último Imperador",
			[]wiki.AttributeValue{
				{Name: "directed by", Text: "Bernardo Bertolucci", Links: []wiki.Link{{Target: "Bernardo Bertolucci", Anchor: "Bernardo Bertolucci"}}},
				{Name: "country", Text: "United States", Links: []wiki.Link{{Target: "United States", Anchor: "United States"}}},
				{Name: "release date", Text: "October 4, 1987"},
			},
			[]wiki.AttributeValue{
				{Name: "direção", Text: "Bernardo Bertolucci", Links: []wiki.Link{{Target: "Bernardo Bertolucci (cineasta)", Anchor: "Bernardo Bertolucci"}}},
				{Name: "país", Text: "Estados Unidos", Links: []wiki.Link{{Target: "Estados Unidos", Anchor: "Estados Unidos"}}},
				{Name: "lançamento", Text: "4 de outubro de 1987"},
			},
		},
		{
			"The Quiet River", "O Rio Quieto",
			[]wiki.AttributeValue{
				{Name: "directed by", Text: "Bernardo Bertolucci", Links: []wiki.Link{{Target: "Bernardo Bertolucci", Anchor: "Bernardo Bertolucci"}}},
				{Name: "country", Text: "Ireland", Links: []wiki.Link{{Target: "Ireland", Anchor: "Ireland"}}},
				{Name: "release date", Text: "May 2, 1990"},
			},
			[]wiki.AttributeValue{
				{Name: "direção", Text: "Bernardo Bertolucci", Links: []wiki.Link{{Target: "Bernardo Bertolucci (cineasta)", Anchor: "Bernardo Bertolucci"}}},
				{Name: "país", Text: "Irlanda", Links: []wiki.Link{{Target: "Irlanda", Anchor: "Irlanda"}}},
				{Name: "lançamento", Text: "2 de maio de 1990"},
			},
		},
	}
	for _, f := range films {
		enArt := &wiki.Article{Language: wiki.English, Title: f.enTitle, Type: "film",
			Infobox:    &wiki.Infobox{Template: "Infobox film", Attrs: f.enAttrs},
			CrossLinks: map[wiki.Language]string{wiki.Portuguese: f.ptTitle}}
		ptArt := &wiki.Article{Language: wiki.Portuguese, Title: f.ptTitle, Type: "filme",
			Infobox:    &wiki.Infobox{Template: "Infobox filme", Attrs: f.ptAttrs},
			CrossLinks: map[wiki.Language]string{wiki.English: f.enTitle}}
		c.MustAdd(enArt)
		c.MustAdd(ptArt)
	}
	d := dict.Build(c, wiki.Portuguese, wiki.English)
	td := BuildTypeData(c, wiki.PtEn, "filme", "film", d)
	return c, td
}

func (td *TypeData) idx(t *testing.T, lang wiki.Language, name string) int {
	t.Helper()
	i := td.AttrIndex(Attr{Lang: lang, Name: text.Normalize(name)})
	if i < 0 {
		t.Fatalf("attribute %s:%s not in TypeData (attrs: %v)", lang, name, td.Attrs)
	}
	return i
}

func TestVSimWithDictionaryTranslation(t *testing.T) {
	_, td := buildFixture(t)
	pais := td.idx(t, wiki.Portuguese, "país")
	country := td.idx(t, wiki.English, "country")
	if got := td.VSim(pais, country); math.Abs(got-1) > 1e-9 {
		t.Errorf("vsim(país,country) = %v, want 1 (dictionary translates both values)", got)
	}
	// Without the dictionary the Portuguese titles do not match.
	c, _ := buildFixture(t)
	tdNoDict := BuildTypeData(c, wiki.PtEn, "filme", "film", nil)
	pais = tdNoDict.idx(t, wiki.Portuguese, "país")
	country = tdNoDict.idx(t, wiki.English, "country")
	if got := tdNoDict.VSim(pais, country); got != 0 {
		t.Errorf("vsim without dictionary = %v, want 0", got)
	}
}

func TestVSimDateCanonicalization(t *testing.T) {
	_, td := buildFixture(t)
	lanc := td.idx(t, wiki.Portuguese, "lançamento")
	rel := td.idx(t, wiki.English, "release date")
	if got := td.VSim(lanc, rel); math.Abs(got-1) > 1e-9 {
		t.Errorf("vsim(lançamento,release date) = %v, want 1 via ISO dates", got)
	}
}

func TestLSimCrossLanguageResolution(t *testing.T) {
	_, td := buildFixture(t)
	dir := td.idx(t, wiki.Portuguese, "direção")
	directed := td.idx(t, wiki.English, "directed by")
	if got := td.LSim(dir, directed); math.Abs(got-1) > 1e-9 {
		t.Errorf("lsim(direção,directed by) = %v, want 1 (cross-linked targets)", got)
	}
	pais := td.idx(t, wiki.Portuguese, "país")
	if got := td.LSim(dir, pais); got != 0 {
		t.Errorf("lsim(direção,país) = %v, want 0", got)
	}
}

func TestOccurrencesAndCoOccurrence(t *testing.T) {
	_, td := buildFixture(t)
	dir := td.idx(t, wiki.Portuguese, "direção")
	pais := td.idx(t, wiki.Portuguese, "país")
	directed := td.idx(t, wiki.English, "directed by")
	if td.Occurrences(dir) != 2 {
		t.Errorf("occ(direção) = %d", td.Occurrences(dir))
	}
	if td.CoOccurLang(dir, pais) != 2 {
		t.Errorf("coLang(direção,país) = %d", td.CoOccurLang(dir, pais))
	}
	if td.CoOccurLang(dir, directed) != 0 {
		t.Errorf("cross-language coLang should be 0")
	}
	if td.CoOccurDual(dir, directed) != 2 {
		t.Errorf("coDual(direção,directed by) = %d", td.CoOccurDual(dir, directed))
	}
	if td.NumInfoboxes(wiki.Portuguese) != 2 || td.NumInfoboxes(wiki.English) != 2 {
		t.Errorf("box counts = %d / %d", td.NumInfoboxes(wiki.Portuguese), td.NumInfoboxes(wiki.English))
	}
	if len(td.Duals) != 2 {
		t.Errorf("duals = %d", len(td.Duals))
	}
}

func TestGroupingScore(t *testing.T) {
	_, td := buildFixture(t)
	dir := td.idx(t, wiki.Portuguese, "direção")
	pais := td.idx(t, wiki.Portuguese, "país")
	if got := td.Grouping(dir, pais); math.Abs(got-1) > 1e-9 {
		t.Errorf("g(direção,país) = %v, want 1 (always co-occur)", got)
	}
	directed := td.idx(t, wiki.English, "directed by")
	if got := td.Grouping(dir, directed); got != 0 {
		t.Errorf("cross-language grouping = %v, want 0", got)
	}
}

type fakeMatched struct {
	contains map[int]bool
	aligned  map[[2]int]bool
}

func (f fakeMatched) Contains(i int) bool { return f.contains[i] }
func (f fakeMatched) Aligned(i, j int) bool {
	return f.aligned[[2]int{i, j}] || f.aligned[[2]int{j, i}]
}

func TestInductiveGrouping(t *testing.T) {
	_, td := buildFixture(t)
	dir := td.idx(t, wiki.Portuguese, "direção")
	directed := td.idx(t, wiki.English, "directed by")
	pais := td.idx(t, wiki.Portuguese, "país")
	country := td.idx(t, wiki.English, "country")
	lanc := td.idx(t, wiki.Portuguese, "lançamento")
	rel := td.idx(t, wiki.English, "release date")

	// Suppose direção~directed by is already matched; the uncertain pair
	// lançamento~release date co-occurs with it on both sides, so its
	// inductive grouping score is high.
	m := fakeMatched{
		contains: map[int]bool{dir: true, directed: true},
		aligned:  map[[2]int]bool{{dir, directed}: true},
	}
	if got := td.InductiveGrouping(lanc, rel, m); math.Abs(got-1) > 1e-9 {
		t.Errorf("eg(lançamento,release date) = %v, want 1", got)
	}
	// With no matches there is no evidence.
	empty := fakeMatched{contains: map[int]bool{}, aligned: map[[2]int]bool{}}
	if got := td.InductiveGrouping(pais, country, empty); got != 0 {
		t.Errorf("eg with empty matches = %v, want 0", got)
	}
}

func TestXMeasures(t *testing.T) {
	_, td := buildFixture(t)
	dir := td.idx(t, wiki.Portuguese, "direção")
	directed := td.idx(t, wiki.English, "directed by")
	if got := td.X1(dir, directed); got != 2 {
		t.Errorf("X1 = %v", got)
	}
	if got := td.X2(dir, directed); math.Abs(got-4) > 1e-9 {
		t.Errorf("X2 = %v, want (1+1)(1+1)=4", got)
	}
	if got := td.X3(dir, directed); math.Abs(got-1) > 1e-9 {
		t.Errorf("X3 = %v, want 4/4=1", got)
	}
}

func TestCrossAndAllPairs(t *testing.T) {
	_, td := buildFixture(t)
	n := len(td.Attrs)
	if n != 6 {
		t.Fatalf("attrs = %d (%v)", n, td.Attrs)
	}
	if got := len(td.CrossPairs()); got != 9 {
		t.Errorf("cross pairs = %d, want 3×3", got)
	}
	if got := len(td.AllPairs()); got != n*(n-1)/2 {
		t.Errorf("all pairs = %d", got)
	}
}

func TestDisplayPreservesSurfaceForm(t *testing.T) {
	_, td := buildFixture(t)
	a := Attr{Lang: wiki.Portuguese, Name: text.Normalize("direção")}
	if td.Display[a] != "direção" {
		t.Errorf("display = %q", td.Display[a])
	}
}
