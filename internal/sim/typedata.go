package sim

import (
	"context"
	"sort"
	"sync"

	"repro/internal/dict"
	"repro/internal/lsi"
	"repro/internal/text"
	"repro/internal/wiki"
)

// Attr identifies an attribute by language and normalized name. It is the
// same identity the LSI model uses.
type Attr = lsi.Attr

// TypeData is the similarity workspace for one (entity type, language
// pair): the unified dual-language schema, value and link vectors per
// attribute, translated value vectors for the non-pivot side, occurrence
// and co-occurrence statistics, and the dual-language infobox list that
// feeds LSI. A TypeData is never mutated after BuildTypeData returns, so
// cached instances may be scored by many goroutines at once.
type TypeData struct {
	Pair  wiki.LanguagePair
	TypeA string // localized type name on the pair.A side
	TypeB string // localized type name on the pair.B side

	Attrs []Attr
	Index map[Attr]int

	// Display maps the normalized attribute name back to the surface form
	// first seen in the corpus.
	Display map[Attr]string

	Duals []lsi.Dual

	valueVec []text.TF // canonicalized value-term vectors (WikiMatch's vsim)
	transVec []text.TF // pair.A-side vectors translated A→B (nil for B side)
	linkVec  []text.TF // canonical link-target vectors

	// rawVec and rawTransVec hold plain comma-segment vectors without
	// WikiMatch's date/number canonicalization, for generic instance
	// matchers (the COMA++ baseline).
	rawVec      []text.TF
	rawTransVec []text.TF

	// occ counts how many infoboxes of the attribute's own language
	// contain it; coLang counts same-language co-occurrence; coDual
	// counts co-occurrence inside dual-language infoboxes.
	occ    []int
	coLang map[[2]int]int
	coDual map[[2]int]int

	// nBoxes is the number of infoboxes per language side.
	nBoxes map[wiki.Language]int

	// kernel is the lazily built merge-join scoring kernel (kernel.go) —
	// derived state, excluded from snapshots and rebuilt on first use.
	kernelOnce sync.Once
	kernel     *Kernel
}

// BuildTypeData assembles the workspace from the corpus. typeA and typeB
// are the localized entity-type names on each side (e.g. "filme", "film");
// d translates pair.A titles into pair.B (may be nil to disable
// dictionary translation — the vsim-without-dictionary ablation).
func BuildTypeData(c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string, d *dict.Dictionary) *TypeData {
	td, _ := BuildTypeDataCtx(context.Background(), c, pair, typeA, typeB, d)
	return td
}

// buildCheckEvery is how many cross-linked infobox pairs BuildTypeDataCtx
// ingests between context checks. Ingestion is the dominant cold-build
// cost on dump-scale types, so the stride keeps cancellation latency to a
// few milliseconds without measurable overhead.
const buildCheckEvery = 64

// BuildTypeDataCtx is BuildTypeData with cancellation: the ingestion
// loops check ctx every few infobox pairs and abandon the build (nil
// TypeData, ctx.Err()) once the context is done.
func BuildTypeDataCtx(ctx context.Context, c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string, d *dict.Dictionary) (*TypeData, error) {
	td := &TypeData{
		Pair: pair, TypeA: typeA, TypeB: typeB,
		Index:   make(map[Attr]int),
		Display: make(map[Attr]string),
		coLang:  make(map[[2]int]int),
		coDual:  make(map[[2]int]int),
		nBoxes:  map[wiki.Language]int{},
	}
	intern := func(a Attr, display string) int {
		if i, ok := td.Index[a]; ok {
			return i
		}
		i := len(td.Attrs)
		td.Attrs = append(td.Attrs, a)
		td.Index[a] = i
		td.Display[a] = display
		td.valueVec = append(td.valueVec, text.TF{})
		td.transVec = append(td.transVec, nil)
		td.linkVec = append(td.linkVec, text.TF{})
		td.rawVec = append(td.rawVec, text.TF{})
		td.rawTransVec = append(td.rawTransVec, nil)
		td.occ = append(td.occ, 0)
		return i
	}

	// Gather the type's infoboxes on each side. Following the paper's
	// dataset construction (Section 4: only infoboxes whose articles have
	// cross-language links to the equivalent article were selected), the
	// statistics are computed over the cross-linked pairs.
	pairs := make([]wiki.ArticlePair, 0)
	for _, p := range c.Pairs(pair) {
		if p.A.Type == typeA && p.B.Type == typeB {
			pairs = append(pairs, p)
		}
	}
	ingest := func(lang wiki.Language, box *wiki.Infobox) {
		td.nBoxes[lang]++
		var boxIdx []int
		for _, av := range box.Attrs {
			key := Attr{Lang: lang, Name: text.Normalize(av.Name)}
			if key.Name == "" {
				continue
			}
			i := intern(key, av.Name)
			boxIdx = append(boxIdx, i)
			td.occ[i]++
			for _, term := range ValueTerms(lang, av.Text) {
				td.valueVec[i].Add(term, 1)
			}
			for _, term := range RawValueTerms(av.Text) {
				td.rawVec[i].Add(term, 1)
			}
			for _, l := range av.Links {
				td.linkVec[i].Add(CanonicalLinkKey(c, lang, l.Target), 1)
			}
		}
		sort.Ints(boxIdx)
		for x := 0; x < len(boxIdx); x++ {
			for y := x + 1; y < len(boxIdx); y++ {
				if boxIdx[x] != boxIdx[y] {
					td.coLang[[2]int{boxIdx[x], boxIdx[y]}]++
				}
			}
		}
	}
	for k, p := range pairs {
		if k%buildCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		ingest(pair.A, p.A.Infobox)
		ingest(pair.B, p.B.Infobox)
	}

	// Dual-language infoboxes: the same cross-linked pairs.
	for k, p := range pairs {
		if k%buildCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var dual lsi.Dual
		seenA, seenB := map[string]bool{}, map[string]bool{}
		for _, av := range p.A.Infobox.Attrs {
			n := text.Normalize(av.Name)
			if n != "" && !seenA[n] {
				seenA[n] = true
				dual.A = append(dual.A, Attr{Lang: pair.A, Name: n})
			}
		}
		for _, av := range p.B.Infobox.Attrs {
			n := text.Normalize(av.Name)
			if n != "" && !seenB[n] {
				seenB[n] = true
				dual.B = append(dual.B, Attr{Lang: pair.B, Name: n})
			}
		}
		td.Duals = append(td.Duals, dual)
		var all []int
		for _, a := range dual.A {
			all = append(all, td.Index[a])
		}
		for _, b := range dual.B {
			all = append(all, td.Index[b])
		}
		sort.Ints(all)
		for x := 0; x < len(all); x++ {
			for y := x + 1; y < len(all); y++ {
				td.coDual[[2]int{all[x], all[y]}]++
			}
		}
	}

	// Translated value vectors for the pair.A side.
	translate := func(src text.TF) text.TF {
		tv := make(text.TF, len(src))
		for term, f := range src {
			if d != nil {
				if tr, ok := d.Translate(term); ok {
					tv[text.Normalize(tr)] += f
					continue
				}
			}
			tv[term] += f
		}
		return tv
	}
	for i, a := range td.Attrs {
		if i%buildCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if a.Lang != pair.A {
			continue
		}
		td.transVec[i] = translate(td.valueVec[i])
		td.rawTransVec[i] = translate(td.rawVec[i])
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return td, nil
}

// CanonicalLinkKey maps a link target to a language-independent key: the
// English title when the landing article's cross-language links resolve
// it, otherwise the normalized target itself. Two values are then "equal"
// exactly when their landing articles are cross-language linked (or
// share a title, which covers untranslated proper names).
func CanonicalLinkKey(c *wiki.Corpus, lang wiki.Language, target string) string {
	if lang == wiki.English {
		return "en:" + text.Normalize(target)
	}
	if art, ok := c.Get(lang, target); ok {
		if enTitle, ok := art.CrossLink(wiki.English); ok {
			return "en:" + text.Normalize(enTitle)
		}
	}
	// The link may be recorded only on the English side.
	if enTitle, ok := c.ReverseCrossLink(lang, target, wiki.English); ok {
		return "en:" + text.Normalize(enTitle)
	}
	return "en:" + text.Normalize(target)
}

// AttrIndex returns the index of an attribute, or -1.
func (td *TypeData) AttrIndex(a Attr) int {
	if i, ok := td.Index[a]; ok {
		return i
	}
	return -1
}

// Occurrences returns how many infoboxes of the attribute's language
// contain it.
func (td *TypeData) Occurrences(i int) int { return td.occ[i] }

// NumInfoboxes returns the number of infoboxes on a language side.
func (td *TypeData) NumInfoboxes(lang wiki.Language) int { return td.nBoxes[lang] }

// CoOccurLang returns how many single-language infoboxes contain both
// attributes (0 for attributes of different languages).
func (td *TypeData) CoOccurLang(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return td.coLang[[2]int{i, j}]
}

// CoOccurDual returns how many dual-language infoboxes contain both
// attributes.
func (td *TypeData) CoOccurDual(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return td.coDual[[2]int{i, j}]
}

// VSim is the paper's value similarity: the cosine between the (A-side
// translated) value vectors.
func (td *TypeData) VSim(i, j int) float64 {
	vi, vj := td.cmpVec(i, j)
	return vi.Cosine(vj)
}

// cmpVec picks comparable representations: when the two attributes are in
// different languages, the A side uses its translated vector.
func (td *TypeData) cmpVec(i, j int) (text.TF, text.TF) {
	ai, aj := td.Attrs[i], td.Attrs[j]
	vi, vj := td.valueVec[i], td.valueVec[j]
	if ai.Lang != aj.Lang {
		if ai.Lang == td.Pair.A && td.transVec[i] != nil {
			vi = td.transVec[i]
		}
		if aj.Lang == td.Pair.A && td.transVec[j] != nil {
			vj = td.transVec[j]
		}
	}
	return vi, vj
}

// LSim is the link-structure similarity: cosine over canonical link keys.
func (td *TypeData) LSim(i, j int) float64 {
	return td.linkVec[i].Cosine(td.linkVec[j])
}

// ValueVector exposes an attribute's canonicalized value vector.
func (td *TypeData) ValueVector(i int) text.TF { return td.valueVec[i] }

// RawVSim is the generic instance-matcher similarity: cosine over the
// plain comma-segment vectors, optionally with the A side translated
// through the dictionary (the COMA "+D" configurations).
func (td *TypeData) RawVSim(i, j int, translated bool) float64 {
	ai, aj := td.Attrs[i], td.Attrs[j]
	vi, vj := td.rawVec[i], td.rawVec[j]
	if translated && ai.Lang != aj.Lang {
		if ai.Lang == td.Pair.A && td.rawTransVec[i] != nil {
			vi = td.rawTransVec[i]
		}
		if aj.Lang == td.Pair.A && td.rawTransVec[j] != nil {
			vj = td.rawTransVec[j]
		}
	}
	return vi.Cosine(vj)
}

// TranslatedVector exposes the A→B translated vector (nil on the B side).
func (td *TypeData) TranslatedVector(i int) text.TF { return td.transVec[i] }

// LinkVector exposes an attribute's canonical link-target vector.
func (td *TypeData) LinkVector(i int) text.TF { return td.linkVec[i] }

// Grouping returns g(ap, aq) = Opq / min(Op, Oq), the within-language
// grouping score of Section 3.4. It is 0 for attributes of different
// languages or unobserved attributes.
func (td *TypeData) Grouping(i, j int) float64 {
	if td.Attrs[i].Lang != td.Attrs[j].Lang {
		return 0
	}
	minOcc := td.occ[i]
	if td.occ[j] < minOcc {
		minOcc = td.occ[j]
	}
	if minOcc == 0 {
		return 0
	}
	return float64(td.CoOccurLang(i, j)) / float64(minOcc)
}

// CrossPairs enumerates every cross-language attribute index pair (a in
// pair.A, b in pair.B), ordered deterministically.
func (td *TypeData) CrossPairs() [][2]int {
	var aIdx, bIdx []int
	for i, a := range td.Attrs {
		if a.Lang == td.Pair.A {
			aIdx = append(aIdx, i)
		} else {
			bIdx = append(bIdx, i)
		}
	}
	out := make([][2]int, 0, len(aIdx)*len(bIdx))
	for _, i := range aIdx {
		for _, j := range bIdx {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// AllPairs enumerates every unordered attribute index pair, both within
// and across languages.
func (td *TypeData) AllPairs() [][2]int {
	n := len(td.Attrs)
	out := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}
