package sim

import (
	"sort"

	"repro/internal/lsi"
	"repro/internal/text"
	"repro/internal/wiki"
)

// Snapshot is the fully exported, serializable form of a TypeData. Every
// field mirrors one piece of the workspace; attribute-indexed slices are
// aligned with Attrs, and the dual-language infoboxes reference attributes
// by index rather than by value. The snapshot store (internal/store)
// encodes this struct; TypeData itself keeps its fields unexported so the
// matcher-facing surface stays immutable.
type Snapshot struct {
	Pair         wiki.LanguagePair
	TypeA, TypeB string

	Attrs   []Attr
	Display []string // surface form per attribute index

	// Duals lists each dual-language infobox as attribute indices into
	// Attrs: DualsA[k] are the pair.A-side attributes of dual k.
	DualsA, DualsB [][]int

	ValueVec    []text.TF
	TransVec    []text.TF // nil entries for the pair.B side
	LinkVec     []text.TF
	RawVec      []text.TF
	RawTransVec []text.TF // nil entries for the pair.B side

	Occ []int
	// CoLang and CoDual are the co-occurrence counters as sorted
	// (i, j, count) triples with i < j.
	CoLang, CoDual []CoCount

	NBoxes map[wiki.Language]int
}

// CoCount is one co-occurrence counter: attributes I < J appeared
// together N times.
type CoCount struct {
	I, J, N int
}

// sortedCoCounts flattens a co-occurrence map deterministically.
func sortedCoCounts(m map[[2]int]int) []CoCount {
	out := make([]CoCount, 0, len(m))
	for p, n := range m {
		out = append(out, CoCount{I: p[0], J: p[1], N: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Snapshot extracts the workspace's full state for serialization. The
// snapshot shares the TypeData's vectors and slices (both sides are
// immutable by convention), so taking one is cheap.
func (td *TypeData) Snapshot() *Snapshot {
	s := &Snapshot{
		Pair:        td.Pair,
		TypeA:       td.TypeA,
		TypeB:       td.TypeB,
		Attrs:       td.Attrs,
		Display:     make([]string, len(td.Attrs)),
		ValueVec:    td.valueVec,
		TransVec:    td.transVec,
		LinkVec:     td.linkVec,
		RawVec:      td.rawVec,
		RawTransVec: td.rawTransVec,
		Occ:         td.occ,
		CoLang:      sortedCoCounts(td.coLang),
		CoDual:      sortedCoCounts(td.coDual),
		NBoxes:      td.nBoxes,
	}
	for i, a := range td.Attrs {
		s.Display[i] = td.Display[a]
	}
	s.DualsA = make([][]int, len(td.Duals))
	s.DualsB = make([][]int, len(td.Duals))
	for k, d := range td.Duals {
		s.DualsA[k] = attrIndices(td.Index, d.A)
		s.DualsB[k] = attrIndices(td.Index, d.B)
	}
	return s
}

func attrIndices(index map[Attr]int, attrs []Attr) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		out[i] = index[a]
	}
	return out
}

// FromSnapshot reconstructs a TypeData. Vectors, counters and dual lists
// are restored exactly, so a restored workspace scores every attribute
// pair bit-identically to the one it was snapshotted from.
func FromSnapshot(s *Snapshot) *TypeData {
	td := &TypeData{
		Pair:        s.Pair,
		TypeA:       s.TypeA,
		TypeB:       s.TypeB,
		Attrs:       s.Attrs,
		Index:       make(map[Attr]int, len(s.Attrs)),
		Display:     make(map[Attr]string, len(s.Attrs)),
		valueVec:    s.ValueVec,
		transVec:    s.TransVec,
		linkVec:     s.LinkVec,
		rawVec:      s.RawVec,
		rawTransVec: s.RawTransVec,
		occ:         s.Occ,
		coLang:      make(map[[2]int]int, len(s.CoLang)),
		coDual:      make(map[[2]int]int, len(s.CoDual)),
		nBoxes:      s.NBoxes,
	}
	for i, a := range s.Attrs {
		td.Index[a] = i
		td.Display[a] = s.Display[i]
	}
	for _, c := range s.CoLang {
		td.coLang[[2]int{c.I, c.J}] = c.N
	}
	for _, c := range s.CoDual {
		td.coDual[[2]int{c.I, c.J}] = c.N
	}
	td.Duals = make([]lsi.Dual, len(s.DualsA))
	for k := range s.DualsA {
		td.Duals[k] = lsi.Dual{
			A: indexAttrs(s.Attrs, s.DualsA[k]),
			B: indexAttrs(s.Attrs, s.DualsB[k]),
		}
	}
	return td
}

func indexAttrs(attrs []Attr, idx []int) []Attr {
	if idx == nil {
		return nil
	}
	out := make([]Attr, len(idx))
	for i, j := range idx {
		out[i] = attrs[j]
	}
	return out
}
