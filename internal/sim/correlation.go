package sim

// The alternative attribute-correlation measures of Appendix B. Op and Oq
// are occurrence counts of the two attributes and Opq their co-occurrence
// count in the dual-language infoboxes of the type. They are compared to
// LSI by mean average precision in Table 7.

// X1 is the raw co-occurrence count.
func (td *TypeData) X1(i, j int) float64 {
	return float64(td.CoOccurDual(i, j))
}

// X2 is (1 + Opq/Op)(1 + Opq/Oq).
func (td *TypeData) X2(i, j int) float64 {
	op, oq := float64(td.occ[i]), float64(td.occ[j])
	if op == 0 || oq == 0 {
		return 0
	}
	opq := float64(td.CoOccurDual(i, j))
	return (1 + opq/op) * (1 + opq/oq)
}

// X3 is Opq·Opq / (Op + Oq).
func (td *TypeData) X3(i, j int) float64 {
	op, oq := float64(td.occ[i]), float64(td.occ[j])
	if op+oq == 0 {
		return 0
	}
	opq := float64(td.CoOccurDual(i, j))
	return opq * opq / (op + oq)
}

// Matched tells InductiveGrouping which attributes are already part of a
// derived match and which pairs are aligned; it is implemented by the
// core matcher's match set.
type Matched interface {
	// Contains reports whether attribute index i participates in any match.
	Contains(i int) bool
	// Aligned reports whether attributes i and j are in the same match.
	Aligned(i, j int) bool
}

// InductiveGrouping computes eg(a, a′) of Section 3.4: the average
// product of grouping scores of a and a′ with the pairs of already
// matched attributes (ca, c′a) that co-occur with them in their own
// languages and are aligned with each other:
//
//	eg(a, a′) = (1/|C|) Σ g(a, ca) · g(a′, c′a)   over ca ~ c′a
//
// A high score means the uncertain pair keeps company with attributes
// whose alignment is already trusted.
func (td *TypeData) InductiveGrouping(i, j int, m Matched) float64 {
	var caIdx, cbIdx []int
	for k := range td.Attrs {
		if k == i || k == j || !m.Contains(k) {
			continue
		}
		if td.Attrs[k].Lang == td.Attrs[i].Lang && td.CoOccurLang(i, k) > 0 {
			caIdx = append(caIdx, k)
		}
		if td.Attrs[k].Lang == td.Attrs[j].Lang && td.CoOccurLang(j, k) > 0 {
			cbIdx = append(cbIdx, k)
		}
	}
	var sum float64
	n := 0
	for _, ca := range caIdx {
		for _, cb := range cbIdx {
			if !m.Aligned(ca, cb) {
				continue
			}
			sum += td.Grouping(i, ca) * td.Grouping(j, cb)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
