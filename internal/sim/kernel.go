// The merge-join scoring kernel: a lazily built posting-list form of a
// TypeData's value, translated-value and link vectors. The map-based
// TF.Cosine hashes every term string on every pair evaluation; at dump
// scale those hash probes dominate MatchType. The kernel interns each
// term family once into dense int32 ids, stores each vector as an
// id-sorted posting list with its precomputed norm, and evaluates
// cosines by merge join — byte-identical to the TF path, because every
// frequency is an integer count: sums of integer-valued float64
// products are exact (far below 2^53), so summation order cannot
// change a single bit, and the final dot/(normI*normJ) expression is
// evaluated exactly as TF.Cosine writes it.

package sim

import (
	"math"
	"sort"

	"repro/internal/text"
)

// plist is one vector as an id-sorted posting list. ok distinguishes a
// nil TF (e.g. the missing translated vector on the B side) from an
// empty one, mirroring the nil checks in cmpVec.
type plist struct {
	ids  []int32
	fs   []float64
	norm float64
	ok   bool
}

func (p *plist) Len() int           { return len(p.ids) }
func (p *plist) Less(i, j int) bool { return p.ids[i] < p.ids[j] }
func (p *plist) Swap(i, j int) {
	p.ids[i], p.ids[j] = p.ids[j], p.ids[i]
	p.fs[i], p.fs[j] = p.fs[j], p.fs[i]
}

// Kernel evaluates VSim and LSim over posting lists, byte-identical to
// the TypeData map path. It is immutable once built and safe for
// concurrent use.
type Kernel struct {
	td    *TypeData
	value []plist
	trans []plist
	link  []plist
}

// Kernel returns the TypeData's merge-join scoring kernel, building it
// on the first call and caching it for the TypeData's lifetime. The
// kernel is derived purely from the similarity vectors, so TypeData
// instances restored from snapshots rebuild it lazily to the same
// scores. Safe for concurrent use.
func (td *TypeData) Kernel() *Kernel {
	td.kernelOnce.Do(func() { td.kernel = buildKernel(td) })
	return td.kernel
}

func buildKernel(td *TypeData) *Kernel {
	k := &Kernel{td: td}
	// Value and translated vectors share one term-id space: cmpVec dots
	// a translated A-side vector against a plain B-side one.
	valueIDs := make(map[string]int32)
	linkIDs := make(map[string]int32)
	k.value = buildFamily(td.valueVec, valueIDs)
	k.trans = buildFamily(td.transVec, valueIDs)
	k.link = buildFamily(td.linkVec, linkIDs)
	return k
}

func buildFamily(vecs []text.TF, ids map[string]int32) []plist {
	out := make([]plist, len(vecs))
	for i, v := range vecs {
		if v == nil {
			continue
		}
		p := &out[i]
		p.ok = true
		p.ids = make([]int32, 0, len(v))
		p.fs = make([]float64, 0, len(v))
		var sq float64
		for term, f := range v {
			id, seen := ids[term]
			if !seen {
				id = int32(len(ids))
				ids[term] = id
			}
			p.ids = append(p.ids, id)
			p.fs = append(p.fs, f)
			sq += f * f
		}
		sort.Sort(p)
		p.norm = math.Sqrt(sq)
	}
	return out
}

// cosineP mirrors text.TF.Cosine exactly: 0 when either norm is zero,
// otherwise dot/(normI*normJ) clamped to [0, 1].
func cosineP(a, b *plist) float64 {
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			dot += a.fs[i] * b.fs[j]
			i++
			j++
		case a.ids[i] < b.ids[j]:
			i++
		default:
			j++
		}
	}
	c := dot / (a.norm * b.norm)
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// VSim is TypeData.VSim evaluated on the posting lists, including
// cmpVec's translated-vector substitution for cross-language pairs.
func (k *Kernel) VSim(i, j int) float64 {
	pi, pj := &k.value[i], &k.value[j]
	ai, aj := k.td.Attrs[i], k.td.Attrs[j]
	if ai.Lang != aj.Lang {
		if ai.Lang == k.td.Pair.A && k.trans[i].ok {
			pi = &k.trans[i]
		}
		if aj.Lang == k.td.Pair.A && k.trans[j].ok {
			pj = &k.trans[j]
		}
	}
	return cosineP(pi, pj)
}

// LSim is TypeData.LSim evaluated on the posting lists.
func (k *Kernel) LSim(i, j int) float64 {
	return cosineP(&k.link[i], &k.link[j])
}
