package core

import (
	"testing"

	"repro/internal/text"
	"repro/internal/wiki"
)

func TestConfidenceBounds(t *testing.T) {
	c, _ := corpus(t)
	res := NewMatcher(DefaultConfig()).Match(c, wiki.PtEn)
	for _, tr := range res.PerType {
		for pair, conf := range tr.Confidences() {
			if conf <= 0 || conf > 1 {
				t.Fatalf("confidence(%v) = %v out of (0, 1]", pair, conf)
			}
		}
	}
}

func TestConfidenceCoversAllDerivedPairs(t *testing.T) {
	c, _ := corpus(t)
	res := NewMatcher(DefaultConfig()).Match(c, wiki.PtEn)
	tr, ok := res.ByTypeA("filme")
	if !ok {
		t.Fatal("no film result")
	}
	for a, bs := range tr.Cross {
		for b := range bs {
			if tr.Confidence(a, b) == 0 {
				t.Errorf("derived pair (%s, %s) has zero confidence", a, b)
			}
		}
	}
}

func TestConfidenceZeroForUnderived(t *testing.T) {
	c, _ := corpus(t)
	res := NewMatcher(DefaultConfig()).Match(c, wiki.PtEn)
	tr, _ := res.ByTypeA("filme")
	if got := tr.Confidence("no such", "pair"); got != 0 {
		t.Errorf("confidence of underived pair = %v", got)
	}
}

func TestCertainPairsScoreHigherThanTransitive(t *testing.T) {
	c, _ := corpus(t)
	res := NewMatcher(DefaultConfig()).Match(c, wiki.PtEn)
	tr, _ := res.ByTypeA("filme")
	// direção ~ directed by is a high-evidence certain pair; it should be
	// among the most confident correspondences of the type.
	target := tr.Confidence(text.Normalize("direção"), "directed by")
	if target == 0 {
		t.Fatal("direção ~ directed by not derived")
	}
	higher := 0
	total := 0
	for _, conf := range tr.Confidences() {
		total++
		if conf > target {
			higher++
		}
	}
	if higher > total/2 {
		t.Errorf("direção ~ directed by confidence (%.2f) ranks low: %d/%d pairs above it",
			target, higher, total)
	}
}
