package core

import (
	"testing"

	"repro/internal/wiki"
)

// buildTypedCorpus creates cross-linked infobox pairs with controllable
// type labels.
func buildTypedCorpus(t *testing.T, links [][2]string) *wiki.Corpus {
	t.Helper()
	c := wiki.NewCorpus()
	for i, l := range links {
		ptTitle := string(rune('A'+i)) + "-pt"
		enTitle := string(rune('A' + i))
		pt := &wiki.Article{Language: wiki.Portuguese, Title: ptTitle, Type: l[0],
			Infobox:    &wiki.Infobox{Template: "Infobox " + l[0], Attrs: []wiki.AttributeValue{{Name: "x"}}},
			CrossLinks: map[wiki.Language]string{wiki.English: enTitle}}
		en := &wiki.Article{Language: wiki.English, Title: enTitle, Type: l[1],
			Infobox: &wiki.Infobox{Template: "Infobox " + l[1], Attrs: []wiki.AttributeValue{{Name: "y"}}}}
		c.MustAdd(pt)
		c.MustAdd(en)
	}
	return c
}

func TestMatchEntityTypesMajorityVote(t *testing.T) {
	// filme mostly links to film, once to show: majority wins.
	c := buildTypedCorpus(t, [][2]string{
		{"filme", "film"}, {"filme", "film"}, {"filme", "show"},
		{"programa", "show"}, {"programa", "show"},
	})
	pairs := MatchEntityTypes(c, wiki.PtEn)
	want := map[string]string{"filme": "film", "programa": "show"}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if want[p[0]] != p[1] {
			t.Errorf("pair %v, want %s → %s", p, p[0], want[p[0]])
		}
	}
}

func TestMatchEntityTypesRequiresMutualBest(t *testing.T) {
	// Both filme and programa point mostly at film; only one can be
	// film's mutual best, the other must not be matched to film.
	c := buildTypedCorpus(t, [][2]string{
		{"filme", "film"}, {"filme", "film"}, {"filme", "film"},
		{"programa", "film"},
	})
	pairs := MatchEntityTypes(c, wiki.PtEn)
	if len(pairs) != 1 || pairs[0] != [2]string{"filme", "film"} {
		t.Fatalf("pairs = %v, want only filme→film", pairs)
	}
}

func TestMatchEntityTypesEmptyCorpus(t *testing.T) {
	if got := MatchEntityTypes(wiki.NewCorpus(), wiki.PtEn); len(got) != 0 {
		t.Errorf("pairs = %v", got)
	}
}

func TestMatchEntityTypesDeterministicTies(t *testing.T) {
	c := buildTypedCorpus(t, [][2]string{
		{"filme", "film"}, {"filme", "movie"},
	})
	first := MatchEntityTypes(c, wiki.PtEn)
	for i := 0; i < 5; i++ {
		again := MatchEntityTypes(c, wiki.PtEn)
		if len(again) != len(first) {
			t.Fatalf("tie-break unstable: %v vs %v", again, first)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("tie-break unstable: %v vs %v", again, first)
			}
		}
	}
}
