package core

import (
	"repro/internal/lsi"
	"repro/internal/sim"
)

// Correspondence confidence — the uncertainty handle the paper's
// conclusion asks for ("we plan to explore approaches that take
// uncertainty into account"): every derived cross-language pair gets a
// score in [0, 1] combining its direct similarity evidence, its LSI
// correlation, and how it was admitted (certain match, revision, or
// transitive closure of a synonym component). Downstream consumers —
// query translation in particular — use it to prefer well-supported
// attribute translations.

// Admission strength by provenance.
const (
	admittedCertain    = 1.0
	admittedRevision   = 0.6
	admittedTransitive = 0.3
)

// NewTypeResult builds a TypeResult directly from derived
// correspondences and their confidences, without the matcher's internal
// workspaces — the constructor for adapters (and tests) that obtain
// correspondences from somewhere other than a local matching run, e.g. a
// remote matcher's wire response. Confidences missing from conf default
// to 0.
func NewTypeResult(typeA, typeB string, cross map[string]map[string]bool, conf map[[2]string]float64) *TypeResult {
	r := &TypeResult{
		TypeA: typeA,
		TypeB: typeB,
		Cross: make(map[string]map[string]bool, len(cross)),
		conf:  make(map[[2]string]float64, len(conf)),
	}
	for a, bs := range cross {
		r.Cross[a] = make(map[string]bool, len(bs))
		for b := range bs {
			r.Cross[a][b] = true
		}
	}
	for k, v := range conf {
		r.conf[k] = v
	}
	return r
}

// Confidence returns the confidence of a derived cross-language pair
// (by normalized attribute names), or 0 when the pair was not derived.
func (r *TypeResult) Confidence(a, b string) float64 {
	if r.conf == nil {
		r.buildConfidence()
	}
	return r.conf[[2]string{a, b}]
}

// Confidences returns every derived pair with its confidence.
func (r *TypeResult) Confidences() map[[2]string]float64 {
	if r.conf == nil {
		r.buildConfidence()
	}
	out := make(map[[2]string]float64, len(r.conf))
	for k, v := range r.conf {
		out[k] = v
	}
	return out
}

// buildConfidence scores the derived pairs from the run's evidence.
func (r *TypeResult) buildConfidence() {
	r.conf = make(map[[2]string]float64)
	// Index candidates by attribute-index pair for provenance lookup.
	type prov struct {
		vsim, lsim, lsiScore float64
		admitted             float64
	}
	provenance := make(map[[2]int]prov, len(r.Candidates))
	for _, c := range r.Candidates {
		p := prov{vsim: c.VSim, lsim: c.LSim, lsiScore: c.LSI, admitted: admittedTransitive}
		if c.AcceptedCertain {
			p.admitted = admittedCertain
		} else if c.AcceptedRevision {
			p.admitted = admittedRevision
		}
		key := [2]int{c.I, c.J}
		if c.J < c.I {
			key = [2]int{c.J, c.I}
		}
		provenance[key] = p
	}
	for aName, bs := range r.Cross {
		i := r.TD.AttrIndex(sim.Attr{Lang: r.TD.Pair.A, Name: aName})
		for bName := range bs {
			j := r.TD.AttrIndex(lsi.Attr{Lang: r.TD.Pair.B, Name: bName})
			if i < 0 || j < 0 {
				continue
			}
			key := [2]int{i, j}
			if j < i {
				key = [2]int{j, i}
			}
			p, direct := provenance[key]
			if !direct {
				// The pair entered the match only through component
				// transitivity; score it from fresh evidence.
				p = prov{
					vsim:     r.TD.VSim(i, j),
					lsim:     r.TD.LSim(i, j),
					lsiScore: r.LSI.ScoreAttrs(r.TD.Attrs[i], r.TD.Attrs[j]),
					admitted: admittedTransitive,
				}
			}
			evidence := p.vsim
			if p.lsim > evidence {
				evidence = p.lsim
			}
			conf := 0.45*evidence + 0.35*p.lsiScore + 0.2*p.admitted
			if conf > 1 {
				conf = 1
			}
			r.conf[[2]string{aName, bName}] = conf
		}
	}
}
