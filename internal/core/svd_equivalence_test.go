package core

import (
	"testing"

	"repro/internal/synth"
	"repro/internal/wiki"
)

// TestMatchIdenticalUnderRandomizedSVD is the fixed-seed equivalence
// guarantee for the sparse randomized SVD swap: on the full-size corpus
// (whose largest types exceed the exact-Jacobi fallback cutoff and so
// take the randomized path), Match must produce exactly the same
// alignments as a run forced onto the exact dense decomposition.
func TestMatchIdenticalUnderRandomizedSVD(t *testing.T) {
	c, _, err := synth.Generate(synth.DefaultConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		fast := NewMatcher(DefaultConfig()).Match(c, pair)

		exactCfg := DefaultConfig()
		exactCfg.ExactSVD = true
		exact := NewMatcher(exactCfg).Match(c, pair)

		if len(fast.Types) != len(exact.Types) {
			t.Fatalf("%v: type counts differ: %d vs %d", pair, len(fast.Types), len(exact.Types))
		}
		for _, tp := range fast.Types {
			a := fast.PerType[tp].CrossPairsSorted()
			b := exact.PerType[tp].CrossPairsSorted()
			if len(a) != len(b) {
				t.Errorf("%v type %v: %d vs %d correspondences", pair, tp, len(a), len(b))
				continue
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%v type %v pair %d: %v (randomized) vs %v (exact)", pair, tp, i, a[i], b[i])
				}
			}
		}
	}
}
