package core

import (
	"runtime"
	"testing"

	"repro/internal/wiki"
)

// TestParallelMatchEqualsSequential pins down that the concurrent
// per-type fan-out in Match changes nothing observable: the result must
// be identical to what a single-worker run produces.
func TestParallelMatchEqualsSequential(t *testing.T) {
	c, _ := corpus(t)
	m := NewMatcher(DefaultConfig())

	parallel := m.Match(c, wiki.PtEn)

	old := runtime.GOMAXPROCS(1)
	sequential := m.Match(c, wiki.PtEn)
	runtime.GOMAXPROCS(old)

	if len(parallel.Types) != len(sequential.Types) {
		t.Fatalf("type counts differ: %d vs %d", len(parallel.Types), len(sequential.Types))
	}
	for _, tp := range parallel.Types {
		a := parallel.PerType[tp].CrossPairsSorted()
		b := sequential.PerType[tp].CrossPairsSorted()
		if len(a) != len(b) {
			t.Fatalf("type %v: %d vs %d pairs", tp, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("type %v pair %d: %v vs %v", tp, i, a[i], b[i])
			}
		}
	}
}
