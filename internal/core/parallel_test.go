package core

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/wiki"
)

// TestParallelMatchEqualsSequential pins down that the concurrent
// per-type fan-out in Match changes nothing observable: the result must
// be identical to what a single-worker run produces.
func TestParallelMatchEqualsSequential(t *testing.T) {
	c, _ := corpus(t)
	m := NewMatcher(DefaultConfig())

	parallel := m.Match(c, wiki.PtEn)

	old := runtime.GOMAXPROCS(1)
	sequential := m.Match(c, wiki.PtEn)
	runtime.GOMAXPROCS(old)

	if len(parallel.Types) != len(sequential.Types) {
		t.Fatalf("type counts differ: %d vs %d", len(parallel.Types), len(sequential.Types))
	}
	for _, tp := range parallel.Types {
		a := parallel.PerType[tp].CrossPairsSorted()
		b := sequential.PerType[tp].CrossPairsSorted()
		if len(a) != len(b) {
			t.Fatalf("type %v: %d vs %d pairs", tp, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("type %v pair %d: %v vs %v", tp, i, a[i], b[i])
			}
		}
	}
}

// TestScorePairsCoversEveryIndexOnce drives the chunked worker pool of
// the pair-scoring stage directly: every index in [0, n) must be visited
// exactly once, for sizes on both sides of the parallelism threshold.
func TestScorePairsCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 511, 512, 513, 5000} {
		var mu sync.Mutex
		visits := make([]int, n)
		err := scorePairsCtx(context.Background(), n, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				visits[i]++
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestScorePairsCtxCancelled checks that a dead context stops the chunked
// scoring loop without visiting every index.
func TestScorePairsCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visited := 0
	var mu sync.Mutex
	err := scorePairsCtx(ctx, 5000, func(lo, hi int) {
		mu.Lock()
		visited += hi - lo
		mu.Unlock()
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited == 5000 {
		t.Error("cancelled scorePairsCtx still visited every index")
	}
}
