// Package core implements WikiMatch, the paper's contribution: entity-type
// matching across languages (Section 3.1), the AttributeAlignment
// algorithm (Algorithm 1), IntegrateMatches (Algorithm 2), and the
// ReviseUncertain step (Section 3.4), together with the ablation switches
// the component-contribution study (Section 4.2, Table 3) needs.
package core

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/lsi"
	"repro/internal/sim"
	"repro/internal/wiki"
)

// Config holds WikiMatch's thresholds and the ablation switches.
type Config struct {
	// TSim is the high-confidence threshold on max(vsim, lsim) that
	// separates certain from uncertain candidates (paper: 0.6).
	TSim float64
	// TLSI is the low correlation threshold candidates must exceed to
	// enter the priority queue and that gates IntegrateMatches (paper: 0.1).
	TLSI float64
	// TEg is the inductive-grouping threshold of ReviseUncertain.
	TEg float64
	// LSIRank is the number of latent dimensions (the paper's f).
	LSIRank int

	// Ablation switches (Table 3 / Figure 3 configurations).
	DisableVSim      bool // WikiMatch−vsim
	DisableLSim      bool // WikiMatch−lsim
	DisableLSI       bool // WikiMatch−LSI: order by max(vsim,lsim)
	DisableIntegrate bool // WikiMatch−IntegrateMatches: merge unconditionally
	DisableRevise    bool // WikiMatch−ReviseUncertain (WM*)
	DisableInductive bool // WikiMatch−inductive grouping: revise all of U
	RandomOrder      bool // WikiMatch random: shuffle the queue
	SingleStep       bool // WikiMatch single step: accept all positive candidates
	NoDictionary     bool // vsim without dictionary translation (extra ablation)

	// Seed drives the RandomOrder shuffle.
	Seed int64

	// ExactSVD forces the exact dense Jacobi SVD inside LSI instead of
	// the default sparse randomized path — a validation switch for
	// asserting the fast path changes no alignments.
	ExactSVD bool

	// Candidates is the per-attribute shortlist width of the pruned
	// scoring path (prune.go): every pair whose quantized-LSI upper
	// bound clears TLSI is rescored exactly, plus each attribute's
	// Candidates best partners by quantized estimate. 0 selects
	// DefaultCandidates; negative values disable pruning and score
	// exhaustively. Survivors are always rescored with the exact
	// float64 pipeline, so the setting never changes match results —
	// only how much provably irrelevant work is skipped. A match-time
	// parameter, not an artifact-shaping one.
	Candidates int

	// ExactScore forces the exhaustive reference scorer, bypassing the
	// pruned path entirely — the validation escape hatch mirroring
	// ExactSVD, and the baseline the equivalence tests and the score
	// benchmark compare the pruned path against.
	ExactScore bool
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: Tsim = 0.6, TLSI = 0.1, without any special tuning per
// language or type.
func DefaultConfig() Config {
	return Config{TSim: 0.6, TLSI: 0.1, TEg: 0.1, LSIRank: lsi.DefaultRank}
}

// Matcher runs WikiMatch over a corpus.
type Matcher struct {
	cfg Config
}

// NewMatcher creates a matcher with the given configuration.
func NewMatcher(cfg Config) *Matcher { return &Matcher{cfg: cfg} }

// Config returns the matcher's configuration.
func (m *Matcher) Config() Config { return m.cfg }

// Candidate is a scored attribute pair: the tuple
// (⟨ap, aq⟩, vsim, lsim, LSI) of Algorithm 1.
type Candidate struct {
	I, J             int
	VSim, LSim, LSI  float64
	InductiveScore   float64 // filled by ReviseUncertain for uncertain pairs
	AcceptedCertain  bool
	AcceptedRevision bool
}

// MatchSet is the evolving set M of matches: a partition of attribute
// indices into synonym components. It implements sim.Matched.
type MatchSet struct {
	comp    []int
	members map[int][]int
	next    int
}

// NewMatchSet creates an empty match set over n attributes.
func NewMatchSet(n int) *MatchSet {
	ms := &MatchSet{comp: make([]int, n), members: make(map[int][]int)}
	for i := range ms.comp {
		ms.comp[i] = -1
	}
	return ms
}

// Contains reports whether attribute i belongs to any match.
func (ms *MatchSet) Contains(i int) bool { return ms.comp[i] >= 0 }

// Aligned reports whether attributes i and j are in the same match.
func (ms *MatchSet) Aligned(i, j int) bool {
	return ms.comp[i] >= 0 && ms.comp[i] == ms.comp[j]
}

// Members returns the attribute indices of attribute i's match (nil if
// unmatched).
func (ms *MatchSet) Members(i int) []int {
	if ms.comp[i] < 0 {
		return nil
	}
	return ms.members[ms.comp[i]]
}

// Components returns every match component, each sorted, in creation
// order.
func (ms *MatchSet) Components() [][]int {
	ids := make([]int, 0, len(ms.members))
	for id := range ms.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]int, 0, len(ids))
	for _, id := range ids {
		c := append([]int(nil), ms.members[id]...)
		sort.Ints(c)
		out = append(out, c)
	}
	return out
}

func (ms *MatchSet) newComponent(i, j int) {
	id := ms.next
	ms.next++
	ms.comp[i], ms.comp[j] = id, id
	ms.members[id] = []int{i, j}
}

func (ms *MatchSet) addTo(compID, i int) {
	ms.comp[i] = compID
	ms.members[compID] = append(ms.members[compID], i)
}

// TypeResult is the outcome of matching one entity type across the pair.
type TypeResult struct {
	TypeA, TypeB string
	TD           *sim.TypeData
	LSI          *lsi.Model
	Matches      *MatchSet
	Candidates   []Candidate // queue contents in processed order
	// Cross maps each pair.A-side attribute name (normalized) to the set
	// of pair.B-side names it corresponds to — the derived set C.
	Cross map[string]map[string]bool

	// conf caches per-pair confidences (see confidence.go).
	conf map[[2]string]float64
}

// CrossPairsSorted returns the derived cross-language correspondences as
// sorted (a, b) name pairs.
func (r *TypeResult) CrossPairsSorted() [][2]string {
	var out [][2]string
	for a, bs := range r.Cross {
		for b := range bs {
			out = append(out, [2]string{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MatchEntityTypes identifies equivalent entity types across the language
// pair by cross-language-link voting (Section 3.1): type T maps to the
// type T′ its infoboxes most often link to, provided the choice is
// mutual.
func MatchEntityTypes(c *wiki.Corpus, pair wiki.LanguagePair) [][2]string {
	votes := c.TypePairCount(pair)
	bestB := map[string]string{}
	bestBCount := map[string]int{}
	bestA := map[string]string{}
	bestACount := map[string]int{}
	keys := make([][2]string, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		a, b, n := k[0], k[1], votes[k]
		if n > bestBCount[a] {
			bestBCount[a], bestB[a] = n, b
		}
		if n > bestACount[b] {
			bestACount[b], bestA[b] = n, a
		}
	}
	var out [][2]string
	for a, b := range bestB {
		if bestA[b] == a {
			out = append(out, [2]string{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Result is a full matching run over one language pair.
type Result struct {
	Pair     wiki.LanguagePair
	Types    [][2]string
	PerType  map[[2]string]*TypeResult
	Dict     *dict.Dictionary
	TypeList []string // pair.A-side type names, sorted
}

// TypeArtifacts carries the prebuilt inputs of one type alignment. Any
// nil field is built from the corpus; a long-lived session injects cached
// instances so repeated matches skip the expensive construction.
type TypeArtifacts struct {
	TD  *sim.TypeData
	LSI *lsi.Model
}

// MatchArtifacts carries the pair-level prebuilt inputs of a full Match:
// the entity-type alignment, the translation dictionary, and a per-type
// artifact source. Every field is optional.
type MatchArtifacts struct {
	// Types is the entity-type alignment (MatchEntityTypes output); nil
	// means compute it.
	Types [][2]string
	// Dict is the A→B translation dictionary. It is consulted only when
	// HaveDict is set, so a caller can inject "no dictionary" explicitly.
	Dict     *dict.Dictionary
	HaveDict bool
	// PerType, when non-nil, supplies the per-type artifacts; it must be
	// safe for concurrent calls (types are matched in parallel).
	PerType func(ctx context.Context, typeA, typeB string) (*TypeArtifacts, error)
}

// Match runs WikiMatch end to end for a language pair: it matches entity
// types, builds the translation dictionary from cross-language links, and
// aligns attributes per type. Types are independent, so they are matched
// concurrently; the result is identical to a sequential run.
func (m *Matcher) Match(c *wiki.Corpus, pair wiki.LanguagePair) *Result {
	res, _ := m.MatchCtx(context.Background(), c, pair, nil)
	return res
}

// MatchCtx is Match with cancellation and artifact injection. It checks
// ctx between pipeline stages and inside the per-type scoring loops, and
// returns (nil, ctx.Err()) as soon as the context is done. art may be nil
// or partially populated; anything missing is built from the corpus.
func (m *Matcher) MatchCtx(ctx context.Context, c *wiki.Corpus, pair wiki.LanguagePair, art *MatchArtifacts) (*Result, error) {
	if art == nil {
		art = &MatchArtifacts{}
	}
	res := &Result{Pair: pair, PerType: make(map[[2]string]*TypeResult)}
	if art.Types != nil {
		res.Types = art.Types
	} else {
		res.Types = MatchEntityTypes(c, pair)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch {
	case m.cfg.NoDictionary:
		// vsim-without-dictionary ablation: never translate.
	case art.HaveDict:
		res.Dict = art.Dict
	default:
		d, err := dict.BuildCtx(ctx, c, pair.A, pair.B)
		if err != nil {
			return nil, err
		}
		res.Dict = d
	}
	results := make([]*TypeResult, len(res.Types))
	errs := make([]error, len(res.Types))
	ParallelTypes(ctx, len(res.Types), func(i int) {
		tp := res.Types[i]
		var ta *TypeArtifacts
		if art.PerType != nil {
			var err error
			if ta, err = art.PerType(ctx, tp[0], tp[1]); err != nil {
				errs[i] = err
				return
			}
		}
		results[i], errs[i] = m.MatchTypeCtx(ctx, c, pair, tp[0], tp[1], res.Dict, ta)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, tp := range res.Types {
		res.PerType[tp] = results[i]
		res.TypeList = append(res.TypeList, tp[0])
	}
	sort.Strings(res.TypeList)
	return res, nil
}

// ParallelTypes runs worker(i) for every i in [0, n) across a
// GOMAXPROCS-capped goroutine pool — the scheduling both the blocking
// and the streaming match paths share. Once ctx is done, remaining
// indices are skipped (drained without work); the caller decides what a
// skip means by checking ctx.Err() afterwards. worker must be safe for
// concurrent calls on distinct indices.
func ParallelTypes(ctx context.Context, n int, worker func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue
				}
				worker(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ByTypeA returns the per-type result for a pair.A-side type name. The
// lookup walks the sorted Types slice rather than the PerType map, so
// when a type name appears in several pairs the same result is returned
// on every call.
func (r *Result) ByTypeA(typeA string) (*TypeResult, bool) {
	for _, tp := range r.Types {
		if tp[0] == typeA {
			return r.PerType[tp], true
		}
	}
	return nil, false
}

// MatchType aligns the attributes of one matched type pair — Algorithm 1.
func (m *Matcher) MatchType(c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string, d *dict.Dictionary) *TypeResult {
	r, _ := m.MatchTypeCtx(context.Background(), c, pair, typeA, typeB, d, nil)
	return r
}

// BuildTypeArtifacts constructs the artifacts MatchTypeCtx would build
// internally for one type pair, honouring the matcher's dictionary and
// SVD configuration — the factory a caching session shares with the
// inline path so cached and cold runs are identical.
func (m *Matcher) BuildTypeArtifacts(ctx context.Context, c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string, d *dict.Dictionary) (*TypeArtifacts, error) {
	art := &TypeArtifacts{}
	var err error
	if m.cfg.NoDictionary {
		d = nil
	}
	if art.TD, err = sim.BuildTypeDataCtx(ctx, c, pair, typeA, typeB, d); err != nil {
		return nil, err
	}
	art.LSI, err = lsi.BuildWithCtx(ctx, art.TD.Duals, m.cfg.LSIRank,
		lsi.Options{ExactSVD: m.cfg.ExactSVD}, art.TD.Attrs...)
	if err != nil {
		return nil, err
	}
	return art, nil
}

// MatchTypeCtx is MatchType with cancellation and artifact injection: ctx
// is checked during artifact construction and at every chunk boundary of
// the pair-scoring stage, and art (when non-nil) supplies a prebuilt
// TypeData and LSI model so the alignment skips straight to scoring.
func (m *Matcher) MatchTypeCtx(ctx context.Context, c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string, d *dict.Dictionary, art *TypeArtifacts) (*TypeResult, error) {
	cfg := m.cfg
	var td *sim.TypeData
	var model *lsi.Model
	if art != nil {
		td, model = art.TD, art.LSI
	}
	if td == nil {
		if cfg.NoDictionary {
			d = nil
		}
		var err error
		if td, err = sim.BuildTypeDataCtx(ctx, c, pair, typeA, typeB, d); err != nil {
			return nil, err
		}
	}
	if model == nil {
		var err error
		model, err = lsi.BuildWithCtx(ctx, td.Duals, cfg.LSIRank,
			lsi.Options{ExactSVD: cfg.ExactSVD}, td.Attrs...)
		if err != nil {
			return nil, err
		}
	}
	r := &TypeResult{TypeA: typeA, TypeB: typeB, TD: td, LSI: model}

	vsim := func(i, j int) float64 {
		if cfg.DisableVSim {
			return 0
		}
		return td.VSim(i, j)
	}
	lsim := func(i, j int) float64 {
		if cfg.DisableLSim {
			return 0
		}
		return td.LSim(i, j)
	}

	// Score attribute pairs, within and across languages — the per-type
	// hot path. The default route is the pruned path (prune.go): a
	// quantized shortlist pass discards pairs whose LSI score provably
	// cannot clear TLSI, and only survivors get exact scores. Its queue
	// is identical to the exhaustive one — membership depends only on
	// the exact LSI score, survivors are rescored exactly, and they are
	// enumerated in the same lexicographic pair order, so even
	// stable-sort tie order is preserved. Configurations the shortlist
	// bound cannot serve (ablations, ExactScore, negative thresholds)
	// take the exhaustive reference route below.
	n := len(td.Attrs)
	var queue []Candidate
	var gate func(i, j int) bool
	if cfg.usePruned(n) {
		var err error
		if queue, err = prunedQueue(ctx, td, model, cfg); err != nil {
			return nil, err
		}
		// The integrate gate recomputes the exact LSI score on demand:
		// Score is a pure function of the immutable model, so this equals
		// the exhaustive path's precomputed matrix entry bit for bit.
		gate = func(i, j int) bool {
			return model.ScoreAttrs(td.Attrs[i], td.Attrs[j]) > cfg.TLSI
		}
	} else {
		pairs := td.AllPairs()
		scores := make([]pairScores, len(pairs))
		scoreRange := func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				p := pairs[idx]
				scores[idx] = pairScores{
					vsim: vsim(p[0], p[1]),
					lsim: lsim(p[0], p[1]),
					lsi:  model.ScoreAttrs(td.Attrs[p[0]], td.Attrs[p[1]]),
				}
			}
		}
		if err := scorePairsCtx(ctx, len(pairs), scoreRange); err != nil {
			return nil, err
		}

		lsiScore := make([][]float64, n)
		for i := range lsiScore {
			lsiScore[i] = make([]float64, n)
		}
		for idx, p := range pairs {
			s := scores[idx].lsi
			lsiScore[p[0]][p[1]], lsiScore[p[1]][p[0]] = s, s
		}

		// gate is the pairwise-correlation test of IntegrateMatches. When LSI
		// is ablated it degrades to the same-language-co-occurrence veto that
		// drives Example 2.
		gate = func(i, j int) bool {
			if cfg.DisableLSI {
				return !(td.Attrs[i].Lang == td.Attrs[j].Lang && td.CoOccurLang(i, j) > 0)
			}
			return lsiScore[i][j] > cfg.TLSI
		}

		// Build the priority queue P.
		for idx, p := range pairs {
			cand := Candidate{I: p[0], J: p[1],
				VSim: scores[idx].vsim, LSim: scores[idx].lsim, LSI: scores[idx].lsi}
			if cfg.DisableLSI {
				if maxF(cand.VSim, cand.LSim) > 0 {
					queue = append(queue, cand)
				}
				continue
			}
			if cand.LSI > cfg.TLSI {
				queue = append(queue, cand)
			}
		}
	}
	switch {
	case cfg.RandomOrder:
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	case cfg.DisableLSI:
		sort.SliceStable(queue, func(i, j int) bool {
			return maxF(queue[i].VSim, queue[i].LSim) > maxF(queue[j].VSim, queue[j].LSim)
		})
	default:
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].LSI > queue[j].LSI })
	}

	ms := NewMatchSet(n)
	integrate := func(i, j int) {
		switch {
		case !ms.Contains(i) && !ms.Contains(j):
			ms.newComponent(i, j)
		case ms.Contains(i) && ms.Contains(j):
			// Both already matched; Algorithm 2 leaves them untouched.
		case cfg.DisableIntegrate:
			// Ablation: merge without the pairwise-correlation check.
			if ms.Contains(i) {
				ms.addTo(ms.comp[i], j)
			} else {
				ms.addTo(ms.comp[j], i)
			}
		default:
			in, out := i, j
			if ms.Contains(j) {
				in, out = j, i
			}
			ok := true
			for _, a := range ms.Members(in) {
				if !gate(out, a) {
					ok = false
					break
				}
			}
			if ok {
				ms.addTo(ms.comp[in], out)
			}
		}
	}

	if cfg.SingleStep {
		// Single-step ablation: every candidate with positive vsim or
		// lsim is accepted as a correspondence outright, with no staging
		// and no correlation gates — the paper's high-recall,
		// low-precision degenerate configuration.
		var direct [][2]int
		for idx := range queue {
			cand := &queue[idx]
			if maxF(cand.VSim, cand.LSim) > 0 {
				cand.AcceptedCertain = true
				direct = append(direct, [2]int{cand.I, cand.J})
				if !ms.Contains(cand.I) && !ms.Contains(cand.J) {
					ms.newComponent(cand.I, cand.J)
				} else if ms.Contains(cand.I) && !ms.Contains(cand.J) {
					ms.addTo(ms.comp[cand.I], cand.J)
				} else if !ms.Contains(cand.I) && ms.Contains(cand.J) {
					ms.addTo(ms.comp[cand.J], cand.I)
				}
			}
		}
		r.Matches = ms
		r.Candidates = queue
		r.Cross = crossFromPairs(td, direct)
		return r, nil
	}

	var uncertain []Candidate
	for idx := range queue {
		cand := &queue[idx]
		if maxF(cand.VSim, cand.LSim) > cfg.TSim {
			cand.AcceptedCertain = true
			integrate(cand.I, cand.J)
		} else {
			uncertain = append(uncertain, *cand)
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if !cfg.DisableRevise {
		// ReviseUncertain: score the buffered pairs by inductive grouping
		// against the certain matches, keep the well-supported ones that
		// carry at least some direct similarity evidence, and integrate
		// them (this time without the Tsim constraint).
		const minEvidence = 0.05
		for idx := range uncertain {
			u := &uncertain[idx]
			u.InductiveScore = td.InductiveGrouping(u.I, u.J, ms)
		}
		revised := make([]Candidate, 0, len(uncertain))
		for _, u := range uncertain {
			if maxF(u.VSim, u.LSim) <= minEvidence {
				continue
			}
			if cfg.DisableInductive || u.InductiveScore > cfg.TEg {
				revised = append(revised, u)
			}
		}
		// Process revised candidates by their direct similarity evidence
		// (LSI breaking ties): among pairs that all fell short of Tsim,
		// the remaining vsim/lsim signal is the most reliable
		// discriminator, and it lets true-but-weak pairs claim their
		// attributes before coincidentally correlated ones. The
		// random-ordering ablation shuffles here too.
		if cfg.RandomOrder {
			rng := rand.New(rand.NewSource(cfg.Seed + 2))
			rng.Shuffle(len(revised), func(i, j int) { revised[i], revised[j] = revised[j], revised[i] })
		} else {
			sort.SliceStable(revised, func(i, j int) bool {
				si, sj := maxF(revised[i].VSim, revised[i].LSim), maxF(revised[j].VSim, revised[j].LSim)
				if si != sj {
					return si > sj
				}
				return revised[i].LSI > revised[j].LSI
			})
		}
		for _, u := range revised {
			integrate(u.I, u.J)
			for qi := range queue {
				if queue[qi].I == u.I && queue[qi].J == u.J {
					queue[qi].AcceptedRevision = true
					queue[qi].InductiveScore = u.InductiveScore
				}
			}
		}
	}

	r.Matches = ms
	r.Candidates = queue
	r.Cross = extractCross(td, ms)
	return r, nil
}

// crossFromPairs builds the correspondence map from an explicit pair
// list (single-step mode).
func crossFromPairs(td *sim.TypeData, pairs [][2]int) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, p := range pairs {
		i, j := p[0], p[1]
		if td.Attrs[i].Lang == td.Attrs[j].Lang {
			continue
		}
		if td.Attrs[i].Lang != td.Pair.A {
			i, j = j, i
		}
		a, b := td.Attrs[i].Name, td.Attrs[j].Name
		if out[a] == nil {
			out[a] = make(map[string]bool)
		}
		out[a][b] = true
	}
	return out
}

// extractCross turns match components into cross-language correspondences.
func extractCross(td *sim.TypeData, ms *MatchSet) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, comp := range ms.Components() {
		for _, i := range comp {
			if td.Attrs[i].Lang != td.Pair.A {
				continue
			}
			for _, j := range comp {
				if td.Attrs[j].Lang != td.Pair.B {
					continue
				}
				a, b := td.Attrs[i].Name, td.Attrs[j].Name
				if out[a] == nil {
					out[a] = make(map[string]bool)
				}
				out[a][b] = true
			}
		}
	}
	return out
}

// pairScores carries the three similarity signals computed for one
// attribute pair during the scoring stage.
type pairScores struct {
	vsim, lsim, lsi float64
}

// scoreTokens bounds the helper goroutines all concurrent pair-scoring
// stages may spawn between them. Match's type-level pool and the
// intra-type stage compose through it without oversubscribing: while
// many types are in flight the tokens run dry and each type scores on
// its own worker, and a late-running large type absorbs whatever
// capacity finished types have released.
var scoreTokens = func() chan struct{} {
	c := make(chan struct{}, runtime.NumCPU())
	for i := 0; i < cap(c); i++ {
		c <- struct{}{}
	}
	return c
}()

// scorePairsCtx runs fn over [0, n) — serially for small types, otherwise
// chunked across the calling goroutine plus however many helpers the
// shared token pool will fund right now. fn must be safe to call
// concurrently on disjoint ranges. The context is checked at every chunk
// boundary (on the serial path too); once it is done, remaining chunks
// are abandoned and ctx.Err() is returned.
func scorePairsCtx(ctx context.Context, n int, fn func(lo, hi int)) error {
	const (
		minParallel = 512 // below this the fan-out costs more than it saves
		chunk       = 256
	)
	if n < minParallel {
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return ctx.Err()
	}
	var next int64
	work := func() {
		for ctx.Err() == nil {
			lo := int(atomic.AddInt64(&next, chunk)) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	helpers := (n+chunk-1)/chunk - 1 // the caller works too
	if helpers > cap(scoreTokens) {
		helpers = cap(scoreTokens)
	}
	var wg sync.WaitGroup
spawn:
	for i := 0; i < helpers; i++ {
		select {
		case <-scoreTokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
				scoreTokens <- struct{}{}
			}()
		default:
			break spawn // pool exhausted; run with what we have
		}
	}
	work()
	wg.Wait()
	return ctx.Err()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
