package core

import (
	"testing"

	"repro/internal/synth"
	"repro/internal/text"
	"repro/internal/wiki"
)

var (
	testCorpus *wiki.Corpus
	testTruth  *synth.GroundTruth
)

func corpus(t *testing.T) (*wiki.Corpus, *synth.GroundTruth) {
	t.Helper()
	if testCorpus == nil {
		c, g, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		testCorpus, testTruth = c, g
	}
	return testCorpus, testTruth
}

func TestMatchEntityTypes(t *testing.T) {
	c, truth := corpus(t)
	pairs := MatchEntityTypes(c, wiki.PtEn)
	if len(pairs) != 14 {
		t.Fatalf("pt-en type pairs = %d (%v), want 14", len(pairs), pairs)
	}
	for _, p := range pairs {
		ca, okA := truth.CanonType(wiki.Portuguese, p[0])
		cb, okB := truth.CanonType(wiki.English, p[1])
		if !okA || !okB || ca != cb {
			t.Errorf("type pair %v resolves to %q vs %q", p, ca, cb)
		}
	}
	vnPairs := MatchEntityTypes(c, wiki.VnEn)
	if len(vnPairs) != 4 {
		t.Fatalf("vn-en type pairs = %d (%v), want 4", len(vnPairs), vnPairs)
	}
}

func TestMatchFilmFindsCoreAlignments(t *testing.T) {
	c, _ := corpus(t)
	m := NewMatcher(DefaultConfig())
	res := m.Match(c, wiki.PtEn)
	tr, ok := res.ByTypeA("filme")
	if !ok {
		t.Fatal("no film result")
	}
	wantPairs := [][2]string{
		{"direção", "directed by"},
		{"país", "country"},
		{"lançamento", "release date"},
		{"duração", "running time"},
	}
	for _, w := range wantPairs {
		a, b := text.Normalize(w[0]), text.Normalize(w[1])
		if !tr.Cross[a][b] {
			t.Errorf("missing correspondence %s ~ %s (derived: %v)", w[0], w[1], tr.CrossPairsSorted())
		}
	}
	// Must not align direção with starring.
	if tr.Cross[text.Normalize("direção")]["starring"] {
		t.Error("direção ~ starring derived incorrectly")
	}
}

func TestMatchActorOneToMany(t *testing.T) {
	c, _ := corpus(t)
	m := NewMatcher(DefaultConfig())
	res := m.Match(c, wiki.PtEn)
	tr, ok := res.ByTypeA("ator")
	if !ok {
		t.Fatal("no actor result")
	}
	died := "died"
	falec, morte := text.Normalize("falecimento"), "morte"
	gotFalec := tr.Cross[falec][died]
	gotMorte := tr.Cross[morte][died]
	if !gotFalec && !gotMorte {
		t.Errorf("died matched neither falecimento nor morte; derived: %v", tr.CrossPairsSorted())
	}
	// The one-to-many grouping of Table 1: ideally both.
	if !(gotFalec && gotMorte) {
		t.Logf("note: only one of falecimento/morte matched died (falec=%v morte=%v)", gotFalec, gotMorte)
	}
}

func TestMatchDeterministic(t *testing.T) {
	c, _ := corpus(t)
	m := NewMatcher(DefaultConfig())
	r1 := m.Match(c, wiki.VnEn)
	r2 := m.Match(c, wiki.VnEn)
	for _, tp := range r1.Types {
		p1, p2 := r1.PerType[tp].CrossPairsSorted(), r2.PerType[tp].CrossPairsSorted()
		if len(p1) != len(p2) {
			t.Fatalf("type %v: %d vs %d pairs", tp, len(p1), len(p2))
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("type %v pair %d: %v vs %v", tp, i, p1[i], p2[i])
			}
		}
	}
}

func TestSingleStepProducesMoreMatches(t *testing.T) {
	c, _ := corpus(t)
	normal := NewMatcher(DefaultConfig()).Match(c, wiki.VnEn)
	ssCfg := DefaultConfig()
	ssCfg.SingleStep = true
	single := NewMatcher(ssCfg).Match(c, wiki.VnEn)
	countCross := func(r *Result) int {
		n := 0
		for _, tr := range r.PerType {
			for _, bs := range tr.Cross {
				n += len(bs)
			}
		}
		return n
	}
	if countCross(single) <= countCross(normal) {
		t.Errorf("single step should derive more (noisier) correspondences: %d vs %d",
			countCross(single), countCross(normal))
	}
}

func TestReviseUncertainAddsMatches(t *testing.T) {
	c, _ := corpus(t)
	full := NewMatcher(DefaultConfig()).Match(c, wiki.PtEn)
	noRev := DefaultConfig()
	noRev.DisableRevise = true
	wm := NewMatcher(noRev).Match(c, wiki.PtEn)
	countCross := func(r *Result) int {
		n := 0
		for _, tr := range r.PerType {
			for _, bs := range tr.Cross {
				n += len(bs)
			}
		}
		return n
	}
	if countCross(full) <= countCross(wm) {
		t.Errorf("ReviseUncertain should add correspondences: full=%d, without=%d",
			countCross(full), countCross(wm))
	}
}

func TestMatchSetOperations(t *testing.T) {
	ms := NewMatchSet(5)
	if ms.Contains(0) {
		t.Error("empty set contains 0")
	}
	ms.newComponent(0, 1)
	ms.addTo(ms.comp[0], 2)
	ms.newComponent(3, 4)
	if !ms.Aligned(0, 2) || ms.Aligned(0, 3) {
		t.Error("alignment wrong")
	}
	comps := ms.Components()
	if len(comps) != 2 || len(comps[0]) != 3 {
		t.Errorf("components = %v", comps)
	}
	if got := ms.Members(3); len(got) != 2 {
		t.Errorf("members(3) = %v", got)
	}
	if got := ms.Members(2); len(got) != 3 {
		t.Errorf("members(2) = %v", got)
	}
}

func TestIntegrateMatchesGateBlocksCoOccurring(t *testing.T) {
	// Build a minimal corpus where Example 2's situation arises: morte
	// and nascimento are Portuguese attributes that co-occur, so after
	// died~falecimento is matched, nascimento must not join a component
	// containing a co-occurring attribute.
	c, _ := corpus(t)
	m := NewMatcher(DefaultConfig())
	res := m.Match(c, wiki.PtEn)
	tr, ok := res.ByTypeA("ator")
	if !ok {
		t.Fatal("no actor result")
	}
	// No component may contain both nascimento and morte (they co-occur
	// in Portuguese infoboxes, so their LSI score is 0).
	nasc := tr.TD.AttrIndex(Attr(wiki.Portuguese, "nascimento"))
	morte := tr.TD.AttrIndex(Attr(wiki.Portuguese, "morte"))
	if nasc >= 0 && morte >= 0 && tr.Matches.Aligned(nasc, morte) {
		t.Error("nascimento and morte ended in the same match despite co-occurring")
	}
}

// Attr builds a normalized attribute key for tests.
func Attr(lang wiki.Language, name string) (a struct {
	Lang wiki.Language
	Name string
}) {
	a.Lang = lang
	a.Name = text.Normalize(name)
	return
}

func TestCandidatesOrderedByLSI(t *testing.T) {
	c, _ := corpus(t)
	m := NewMatcher(DefaultConfig())
	res := m.Match(c, wiki.VnEn)
	for _, tr := range res.PerType {
		for i := 1; i < len(tr.Candidates); i++ {
			if tr.Candidates[i].LSI > tr.Candidates[i-1].LSI+1e-9 {
				t.Fatalf("queue not sorted by LSI at %d: %v > %v",
					i, tr.Candidates[i].LSI, tr.Candidates[i-1].LSI)
			}
		}
	}
}
