package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dict"
	"repro/internal/synth"
	"repro/internal/wiki"
)

// exact returns cfg with the exhaustive reference path forced on.
func exact(cfg Config) Config {
	cfg.ExactScore = true
	return cfg
}

// requireSameTypeResult asserts the pruned and exhaustive paths produced
// byte-identical alignments: the same queue (contents, scores, order),
// the same match components, and the same derived correspondences.
func requireSameTypeResult(t *testing.T, label string, pruned, ex *TypeResult) {
	t.Helper()
	if !reflect.DeepEqual(pruned.Candidates, ex.Candidates) {
		t.Fatalf("%s: queues differ: pruned %d candidates, exhaustive %d",
			label, len(pruned.Candidates), len(ex.Candidates))
	}
	if !reflect.DeepEqual(pruned.Matches.Components(), ex.Matches.Components()) {
		t.Fatalf("%s: match components differ", label)
	}
	if !reflect.DeepEqual(pruned.Cross, ex.Cross) {
		t.Fatalf("%s: correspondence sets differ", label)
	}
}

func requireSameResult(t *testing.T, label string, pruned, ex *Result) {
	t.Helper()
	if !reflect.DeepEqual(pruned.Types, ex.Types) {
		t.Fatalf("%s: type alignments differ", label)
	}
	for _, tp := range ex.Types {
		requireSameTypeResult(t, label+"/"+tp[0], pruned.PerType[tp], ex.PerType[tp])
	}
}

// TestPrunedMatchesExhaustive runs the full pipeline over the standard
// synthetic corpus with pruning on (the default) and with the exhaustive
// reference, for both language pairs, and requires identical results.
func TestPrunedMatchesExhaustive(t *testing.T) {
	c, _ := corpus(t)
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		pruned := NewMatcher(DefaultConfig()).Match(c, pair)
		ex := NewMatcher(exact(DefaultConfig())).Match(c, pair)
		requireSameResult(t, pair.String(), pruned, ex)
	}
}

// TestPrunedMatchesExhaustiveSeeds repeats the equivalence check on
// freshly generated corpora with different seeds, so the property is not
// an accident of the shared fixture.
func TestPrunedMatchesExhaustiveSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence sweep")
	}
	for _, seed := range []int64{11, 23} {
		cfg := synth.SmallConfig()
		cfg.Seed = seed
		c, _, err := synth.Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(seed=%d): %v", seed, err)
		}
		pruned := NewMatcher(DefaultConfig()).Match(c, wiki.PtEn)
		ex := NewMatcher(exact(DefaultConfig())).Match(c, wiki.PtEn)
		requireSameResult(t, "seed", pruned, ex)
	}
}

// TestPrunedSweep quick-checks the equivalence across shortlist widths
// and queue thresholds on one type, and asserts the shortlist itself
// never drops a queue pair — in particular its recall of gold matches
// that exhaustive scoring queues is exactly 1.0.
func TestPrunedSweep(t *testing.T) {
	c, truth := corpus(t)
	pair := wiki.PtEn
	var typeA, typeB string
	for _, tp := range MatchEntityTypes(c, pair) {
		if tp[0] == "filme" {
			typeA, typeB = tp[0], tp[1]
		}
	}
	if typeA == "" {
		t.Fatal("no film type pair")
	}
	canon, ok := truth.CanonType(pair.A, typeA)
	if !ok {
		t.Fatalf("no canonical type for %q", typeA)
	}
	tt := truth.Types[canon]
	d := dict.Build(c, pair.A, pair.B)
	ctx := context.Background()
	art, err := NewMatcher(DefaultConfig()).BuildTypeArtifacts(ctx, c, pair, typeA, typeB, d)
	if err != nil {
		t.Fatalf("BuildTypeArtifacts: %v", err)
	}
	sc := new(matchScratch)
	for _, k := range []int{0, 1, 2, 4, 64} {
		for _, tlsi := range []float64{0, 0.05, 0.1, 0.35, 0.7} {
			cfg := DefaultConfig()
			cfg.Candidates = k
			cfg.TLSI = tlsi
			if !cfg.usePruned(len(art.TD.Attrs)) {
				t.Fatalf("k=%d tlsi=%v unexpectedly exhaustive", k, tlsi)
			}
			pruned, err := NewMatcher(cfg).MatchTypeCtx(ctx, c, pair, typeA, typeB, d, art)
			if err != nil {
				t.Fatalf("pruned MatchTypeCtx: %v", err)
			}
			ex, err := NewMatcher(exact(cfg)).MatchTypeCtx(ctx, c, pair, typeA, typeB, d, art)
			if err != nil {
				t.Fatalf("exhaustive MatchTypeCtx: %v", err)
			}
			label := "k=" + itoa(k) + " tlsi=" + ftoa(tlsi)
			requireSameTypeResult(t, label, pruned, ex)

			// The shortlist must contain every exhaustive queue pair.
			if err := scorePrunedInto(ctx, art.TD, art.LSI, cfg, sc); err != nil {
				t.Fatalf("scorePrunedInto: %v", err)
			}
			shortlist := make(map[uint32]bool, len(sc.surv))
			for _, packed := range sc.surv {
				shortlist[packed] = true
			}
			goldQueued, goldKept := 0, 0
			for _, cand := range ex.Candidates {
				packed := uint32(cand.I)<<16 | uint32(cand.J)
				if !shortlist[packed] {
					t.Fatalf("%s: queue pair (%d,%d) missing from shortlist", label, cand.I, cand.J)
				}
				ai, aj := art.TD.Attrs[cand.I], art.TD.Attrs[cand.J]
				if ai.Lang != aj.Lang && tt.Correct(ai.Lang, ai.Name, aj.Lang, aj.Name) {
					goldQueued++
					goldKept++
				}
			}
			if goldQueued > 0 && goldKept != goldQueued {
				t.Fatalf("%s: gold recall %d/%d", label, goldKept, goldQueued)
			}
			if tlsi <= 0.1 && goldQueued == 0 {
				t.Fatalf("%s: no gold pairs in queue — fixture too weak to test recall", label)
			}
		}
	}
}

func itoa(v int) string { return string(rune('0' + v%10)) }

func ftoa(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.1:
		return "0.05"
	default:
		return "big"
	}
}

// dumpScaleCase builds the shared dump-scale fixture artifacts once.
func dumpScaleCase(t testing.TB, cfg synth.DumpScaleConfig) (*wiki.Corpus, string, string, *dict.Dictionary, *TypeArtifacts) {
	t.Helper()
	c := synth.DumpScale(cfg)
	tps := MatchEntityTypes(c, wiki.PtEn)
	if len(tps) != 1 || tps[0] != [2]string{"registro", "record"} {
		t.Fatalf("dump-scale type pairs = %v", tps)
	}
	d := dict.Build(c, wiki.Portuguese, wiki.English)
	art, err := NewMatcher(DefaultConfig()).BuildTypeArtifacts(
		context.Background(), c, wiki.PtEn, tps[0][0], tps[0][1], d)
	if err != nil {
		t.Fatalf("BuildTypeArtifacts: %v", err)
	}
	return c, tps[0][0], tps[0][1], d, art
}

// TestPrunedDumpScaleEquivalence pins the byte-identity claim at the
// scale the benchmarks run at: one entity type with hundreds of
// attributes, where pruning actually earns its keep.
func TestPrunedDumpScaleEquivalence(t *testing.T) {
	cfg := synth.DumpScaleConfig{Attrs: 60, Boxes: 250, PerBox: 12, Values: 120, Seed: 5}
	c, typeA, typeB, d, art := dumpScaleCase(t, cfg)
	ctx := context.Background()
	pruned, err := NewMatcher(DefaultConfig()).MatchTypeCtx(ctx, c, wiki.PtEn, typeA, typeB, d, art)
	if err != nil {
		t.Fatalf("pruned: %v", err)
	}
	ex, err := NewMatcher(exact(DefaultConfig())).MatchTypeCtx(ctx, c, wiki.PtEn, typeA, typeB, d, art)
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	requireSameTypeResult(t, "dump-scale", pruned, ex)
	if len(ex.Candidates) == 0 || len(ex.Cross) == 0 {
		t.Fatalf("dump-scale fixture degenerate: %d candidates, %d correspondences",
			len(ex.Candidates), len(ex.Cross))
	}
}

// TestScorePrunedZeroAllocs pins the warm-path allocation contract: with
// a retained scratch whose capacity already fits the type, the shortlist
// pass plus exact rescoring performs zero heap allocations.
func TestScorePrunedZeroAllocs(t *testing.T) {
	c, _ := corpus(t)
	pair := wiki.PtEn
	tps := MatchEntityTypes(c, pair)
	d := dict.Build(c, pair.A, pair.B)
	cfg := DefaultConfig()
	cfg.Candidates = 2 // keep the survivor count below the parallel cutoff
	art, err := NewMatcher(cfg).BuildTypeArtifacts(context.Background(), c, pair, tps[0][0], tps[0][1], d)
	if err != nil {
		t.Fatalf("BuildTypeArtifacts: %v", err)
	}
	ctx := context.Background()
	sc := new(matchScratch)
	// Warm: size the scratch and build the lazy kernel/quantization.
	if err := scorePrunedInto(ctx, art.TD, art.LSI, cfg, sc); err != nil {
		t.Fatalf("warm scorePrunedInto: %v", err)
	}
	if len(sc.surv) >= minParallelRescore {
		t.Fatalf("fixture has %d survivors; need < %d for the serial path",
			len(sc.surv), minParallelRescore)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := scorePrunedInto(ctx, art.TD, art.LSI, cfg, sc); err != nil {
			t.Errorf("scorePrunedInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm scorePrunedInto allocates %v times per run, want 0", allocs)
	}
}

// BenchmarkMatchPruned and BenchmarkMatchExhaustive measure the scoring
// stage at dump scale on warm artifacts — the pair the CI bench gate
// compares. ReportAllocs keeps the warm-path allocation count visible.
func BenchmarkMatchPruned(b *testing.B)     { benchMatch(b, DefaultConfig()) }
func BenchmarkMatchExhaustive(b *testing.B) { benchMatch(b, exact(DefaultConfig())) }

func benchMatch(b *testing.B, cfg Config) {
	c, typeA, typeB, d, art := dumpScaleCase(b, synth.DefaultDumpScale())
	m := NewMatcher(cfg)
	ctx := context.Background()
	if _, err := m.MatchTypeCtx(ctx, c, wiki.PtEn, typeA, typeB, d, art); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MatchTypeCtx(ctx, c, wiki.PtEn, typeA, typeB, d, art); err != nil {
			b.Fatal(err)
		}
	}
}
