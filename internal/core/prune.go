// The pruned scoring path: instead of evaluating vsim/lsim/LSI cosines
// for all O(n²) attribute pairs, a cheap shortlist pass over the int8
// quantization of the LSI embedding (lsi.ScoreBounds) keeps only the
// pairs whose LSI score could clear the TLSI queue threshold — plus
// each attribute's top-k partners by quantized estimate as a safety
// margin — and only those survivors get exact float64 scores. Queue
// membership is decided purely by the exact rescored LSI value and
// survivors are enumerated in AllPairs order, so the resulting queue
// (contents, scores, and stable-sort tie order) is byte-identical to
// the exhaustive path at any shortlist width. All scratch memory is
// pooled: a warm match performs no per-pair heap allocations here.

package core

import (
	"context"
	"sync"

	"repro/internal/lsi"
	"repro/internal/sim"
)

// DefaultCandidates is the per-attribute shortlist width used when
// Config.Candidates is 0.
const DefaultCandidates = 16

// prunedAttrLimit bounds the packed (i, j) pair encoding of the
// shortlist; types beyond it (far past anything Wikipedia produces)
// fall back to exhaustive scoring.
const prunedAttrLimit = 1 << 15

// usePruned reports whether the pruned path can serve cfg for a type
// with n attributes. It cannot when the caller asked for the exhaustive
// reference (ExactScore, negative Candidates), when LSI is ablated (the
// queue is then not LSI-gated at all), or when TLSI is negative (every
// pair enters the queue, so there is nothing to prune).
func (cfg Config) usePruned(n int) bool {
	return !cfg.ExactScore && cfg.Candidates >= 0 && !cfg.DisableLSI &&
		cfg.TLSI >= 0 && n > 0 && n < prunedAttrLimit
}

// matchScratch is the reusable workspace of one pruned scoring run.
// Instances live in matchScratchPool; every slice is length-adjusted
// (never reallocated when capacity suffices) so a warm session's
// steady-state match allocates nothing here.
type matchScratch struct {
	rowOf  []int32      // TypeData attr index → model row, -1 when absent
	bits   []uint64     // survivor bitset over lexicographic pair codes
	topEst []float64    // per-attr top-k quantized estimates (k slots each)
	topAt  []int32      // pair code per top-k slot, -1 when empty
	surv   []uint32     // survivor pair codes, packed (i<<16 | j), in order
	ps     []pairScores // exact scores per survivor
	resc   rescorer
}

var matchScratchPool = sync.Pool{New: func() any { return new(matchScratch) }}

// rescorer computes exact scores for a range of shortlist survivors. It
// is a named struct rather than a closure so the serial path (the
// common case, and the one the zero-allocation test pins) can run it
// without materializing a func value.
type rescorer struct {
	sc    *matchScratch
	kern  *sim.Kernel
	model *lsi.Model
	cfg   Config
}

// run scores survivors [lo, hi): the exact LSI value always, and the
// vsim/lsim cosines only for pairs that actually enter the queue —
// exactly the values the exhaustive path would have produced, via the
// byte-identical merge-join kernel. Safe for concurrent calls on
// disjoint ranges.
func (r *rescorer) run(lo, hi int) {
	for s := lo; s < hi; s++ {
		packed := r.sc.surv[s]
		i, j := int(packed>>16), int(packed&0xffff)
		l := r.model.Score(int(r.sc.rowOf[i]), int(r.sc.rowOf[j]))
		var v, ls float64
		if l > r.cfg.TLSI {
			if !r.cfg.DisableVSim {
				v = r.kern.VSim(i, j)
			}
			if !r.cfg.DisableLSim {
				ls = r.kern.LSim(i, j)
			}
		}
		r.sc.ps[s] = pairScores{vsim: v, lsim: ls, lsi: l}
	}
}

// prunedQueue builds the priority queue of Algorithm 1 through the
// shortlist: byte-identical to the exhaustive queue, in the same order.
func prunedQueue(ctx context.Context, td *sim.TypeData, model *lsi.Model, cfg Config) ([]Candidate, error) {
	sc := matchScratchPool.Get().(*matchScratch)
	defer func() {
		sc.resc = rescorer{} // drop artifact references before pooling
		matchScratchPool.Put(sc)
	}()
	if err := scorePrunedInto(ctx, td, model, cfg, sc); err != nil {
		return nil, err
	}
	nq := 0
	for s := range sc.surv {
		if sc.ps[s].lsi > cfg.TLSI {
			nq++
		}
	}
	queue := make([]Candidate, 0, nq)
	for s, packed := range sc.surv {
		if sc.ps[s].lsi > cfg.TLSI {
			queue = append(queue, Candidate{
				I: int(packed >> 16), J: int(packed & 0xffff),
				VSim: sc.ps[s].vsim, LSim: sc.ps[s].lsim, LSI: sc.ps[s].lsi,
			})
		}
	}
	return queue, nil
}

// scorePrunedInto runs the shortlist pass and the exact rescoring of
// survivors into sc. Split from prunedQueue so the allocation
// regression test can drive it with a retained scratch and assert the
// warm path allocates nothing.
func scorePrunedInto(ctx context.Context, td *sim.TypeData, model *lsi.Model, cfg Config, sc *matchScratch) error {
	n := len(td.Attrs)
	k := cfg.Candidates
	if k == 0 {
		k = DefaultCandidates
	}
	if k > n-1 {
		k = n - 1
	}
	kern := td.Kernel()
	model.Quantized() // build outside the tight loop

	sc.rowOf = growI32(sc.rowOf, n)
	for i, a := range td.Attrs {
		if r, ok := model.Index[a]; ok {
			sc.rowOf[i] = int32(r)
		} else {
			sc.rowOf[i] = -1 // unknown to the model: exact score is 0
		}
	}

	nPairs := n * (n - 1) / 2
	sc.bits = growU64(sc.bits, (nPairs+63)/64)
	for w := range sc.bits {
		sc.bits[w] = 0
	}
	topSz := n * k
	sc.topEst = growF64(sc.topEst, topSz)
	sc.topAt = growI32(sc.topAt, topSz)
	for t := 0; t < topSz; t++ {
		sc.topEst[t] = -1 // below any real estimate (scores are ≥ 0)
		sc.topAt[t] = -1
	}

	// Pass 1: bound every pair. Pairs whose upper bound clears TLSI are
	// survivors outright; the rest compete for the per-attribute top-k
	// slots (ties keep the earlier pair, so the outcome is
	// deterministic). Pairs that are provably zero — unknown rows,
	// same-language co-occurrence — are skipped entirely.
	seq := int32(-1)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ri := sc.rowOf[i]
		for j := i + 1; j < n; j++ {
			seq++
			rj := sc.rowOf[j]
			if ri < 0 || rj < 0 {
				continue
			}
			est, hi := model.ScoreBounds(int(ri), int(rj))
			if hi > cfg.TLSI {
				sc.bits[seq>>6] |= 1 << (uint(seq) & 63)
				continue
			}
			if hi == 0 {
				continue
			}
			topKInsert(sc, i, k, est, seq)
			topKInsert(sc, j, k, est, seq)
		}
	}
	for t := 0; t < topSz; t++ {
		if at := sc.topAt[t]; at >= 0 {
			sc.bits[at>>6] |= 1 << (uint(at) & 63)
		}
	}

	// Pass 2: collect survivors in lexicographic (i, j) order — the
	// AllPairs order the exhaustive queue is built in, which preserves
	// stable-sort tie order downstream.
	sc.surv = sc.surv[:0]
	seq = -1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			seq++
			if sc.bits[seq>>6]&(1<<(uint(seq)&63)) != 0 {
				sc.surv = append(sc.surv, uint32(i)<<16|uint32(j))
			}
		}
	}

	// Exact rescoring of the survivors.
	sc.ps = growPS(sc.ps, len(sc.surv))
	sc.resc = rescorer{sc: sc, kern: kern, model: model, cfg: cfg}
	if len(sc.surv) < minParallelRescore {
		sc.resc.run(0, len(sc.surv))
		return ctx.Err()
	}
	return scorePairsCtx(ctx, len(sc.surv), sc.resc.run)
}

// minParallelRescore mirrors scorePairsCtx's serial cutoff: below it the
// rescorer runs inline, with no func value and no goroutines.
const minParallelRescore = 512

// topKInsert offers (est, at) to attribute row's k estimate slots,
// replacing the smallest kept estimate when strictly beaten — so on
// ties the earliest pair in scan order wins.
func topKInsert(sc *matchScratch, row, k int, est float64, at int32) {
	if k <= 0 {
		return
	}
	base := row * k
	minSlot, minVal := base, sc.topEst[base]
	for s := base + 1; s < base+k; s++ {
		if sc.topEst[s] < minVal {
			minSlot, minVal = s, sc.topEst[s]
		}
	}
	if est > minVal {
		sc.topEst[minSlot] = est
		sc.topAt[minSlot] = at
	}
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growPS(s []pairScores, n int) []pairScores {
	if cap(s) < n {
		return make([]pairScores, n)
	}
	return s[:n]
}
