package text

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Direção", "direcao"},
		{"NASCIMENTO", "nascimento"},
		{"đạo diễn", "dao dien"},
		{"ngôn ngữ", "ngon ngu"},
		{"  multiple   spaces  ", "multiple spaces"},
		{"Cônjuge", "conjuge"},
		{"elenco original", "elenco original"},
		{"Thể loại", "the loai"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFoldDiacriticsUppercase(t *testing.T) {
	if got := FoldDiacritics("ÉÃÇ"); got != "EAC" {
		t.Errorf("FoldDiacritics uppercase = %q", got)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("John Lone, Joan Chen (1987)")
	want := []string{"john", "lone", "joan", "chen", "1987"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("Tokenize(\"\") = %v", toks)
	}
}

func TestNGrams(t *testing.T) {
	grams := NGrams("ab", 3)
	want := []string{"#ab", "ab#"}
	if len(grams) != len(want) {
		t.Fatalf("NGrams = %v", grams)
	}
	for i := range want {
		if grams[i] != want[i] {
			t.Errorf("gram[%d] = %q, want %q", i, grams[i], want[i])
		}
	}
	if g := NGrams("", 0); g != nil {
		t.Errorf("NGrams n=0 = %v, want nil", g)
	}
	if g := NGrams("x", 5); len(g) != 1 || g[0] != "#x#" {
		t.Errorf("short string grams = %v", g)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"editora", "editor", 1},
		{"ação", "acao", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("", ""); got != 1 {
		t.Errorf("empty-empty = %v", got)
	}
	if got := EditSimilarity("editora", "editor"); got < 0.85 {
		t.Errorf("editora/editor = %v, want high (false cognate risk)", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if got := TrigramSimilarity("starring", "starring"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := TrigramSimilarity("starring", "estrelando"); got > 0.5 {
		t.Errorf("starring/estrelando = %v, should be low", got)
	}
	if got := TrigramSimilarity("", "x"); got != 0 {
		// "" pads to "##": single gram, no overlap with "#x#".
		t.Errorf("empty/x = %v", got)
	}
}

func TestSimilarityBoundsProperty(t *testing.T) {
	inRange := func(a, b string) bool {
		for _, s := range []float64{EditSimilarity(a, b), TrigramSimilarity(a, b), JaccardTokens(a, b)} {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(inRange, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("similarity out of [0,1]: %v", err)
	}
}

func TestJaccardTokens(t *testing.T) {
	if got := JaccardTokens("united states", "United States"); got != 1 {
		t.Errorf("case-insensitive jaccard = %v", got)
	}
	if got := JaccardTokens("a b", "b c"); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("jaccard = %v, want 1/3", got)
	}
}

func TestTFCosine(t *testing.T) {
	// Paper Example 1: translated nascimento vector vs born vector.
	va := NewTF([]string{"1963", "Ireland", "December 18 1950", "United States"})
	vb := NewTF([]string{"1963", "Ireland", "June 4 1975", "United States", "United States"})
	got := va.Cosine(vb)
	// dot = 1 + 1 + 2 = 4; |va| = 2; |vb| = sqrt(1+1+1+4) = sqrt(7)
	want := 4 / (2 * math.Sqrt(7))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cosine = %v, want %v", got, want)
	}
	if math.Abs(want-0.71) > 0.05 {
		t.Errorf("paper example value drifted: %v", want)
	}
}

func TestTFCosineProperties(t *testing.T) {
	type pair struct{ A, B []string }
	prop := func(p pair) bool {
		va, vb := NewTF(p.A), NewTF(p.B)
		c1, c2 := va.Cosine(vb), vb.Cosine(va)
		if math.Abs(c1-c2) > 1e-12 {
			return false
		}
		return c1 >= 0 && c1 <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("cosine properties: %v", err)
	}
	selfOne := func(terms []string) bool {
		v := NewTF(terms)
		if len(v) == 0 {
			return v.Cosine(v) == 0
		}
		return math.Abs(v.Cosine(v)-1) < 1e-12
	}
	if err := quick.Check(selfOne, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("self-cosine: %v", err)
	}
}

func TestTFOps(t *testing.T) {
	v := NewTF([]string{"a", "b", "a", ""})
	if v["a"] != 2 || v["b"] != 1 {
		t.Errorf("NewTF = %v", v)
	}
	if _, ok := v[""]; ok {
		t.Error("empty term stored")
	}
	v.Add("c", 3)
	v.Add("", 9)
	if v["c"] != 3 || len(v) != 3 {
		t.Errorf("Add = %v", v)
	}
	cp := v.Clone()
	cp.Add("a", 10)
	if v["a"] != 2 {
		t.Error("Clone not independent")
	}
	w := NewTF([]string{"a", "d"})
	v.Merge(w)
	if v["a"] != 3 || v["d"] != 1 {
		t.Errorf("Merge = %v", v)
	}
	top := v.Top(2)
	if len(top) != 2 || top[0] != "a" || top[1] != "c" {
		t.Errorf("Top = %v", top)
	}
}
