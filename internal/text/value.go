package text

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind is the domain NormalizeValue recognized for an infobox value.
type ValueKind int

// Value domains, from most to least structured.
const (
	// ValueText is the fallback: free text compared by token/trigram
	// similarity.
	ValueText ValueKind = iota
	// ValueNumber is a bare magnitude (possibly written with a scale word:
	// "1.2 million").
	ValueNumber
	// ValueDate is a calendar date parsed from one of the edition formats.
	ValueDate
	// ValueQuantity is a magnitude with a unit (duration, length, mass,
	// currency-tagged amount), converted to a canonical base unit.
	ValueQuantity
)

// String names the kind for diagnostics and wire DTOs.
func (k ValueKind) String() string {
	switch k {
	case ValueNumber:
		return "number"
	case ValueDate:
		return "date"
	case ValueQuantity:
		return "quantity"
	default:
		return "text"
	}
}

// NormalizedValue is the typed normal form of one infobox value atom.
// Two values from different language editions describe the same fact
// exactly when their Canonical renderings agree; Mantissa and Scale keep
// the as-written decomposition so a detector can tell a wrong unit
// ("23 billion" for "23 million": same mantissa, different scale) from
// plain numeric drift.
type NormalizedValue struct {
	// Kind is the recognized domain.
	Kind ValueKind
	// Number is the canonical magnitude in the base unit (minutes, meters,
	// kilograms, dollars) for ValueNumber and ValueQuantity.
	Number float64
	// Mantissa is the number as written, before unit/scale conversion.
	Mantissa float64
	// Scale is the factor from the written form to the base unit
	// (1e9 for "billion", 60 for "hours"); 1 when written in base units.
	Scale float64
	// Unit is the canonical base unit ("min", "m", "kg", "usd") for
	// ValueQuantity; empty otherwise.
	Unit string
	// Year, Month, Day hold the calendar date for ValueDate.
	Year, Month, Day int
	// Text is the normalized surface form for ValueText.
	Text string
}

// Canonical renders the value in its language-neutral normal form. The
// rendering is a fixed point: NormalizeValue(v.Canonical()).Canonical()
// equals v.Canonical() for every input (the property FuzzNormalizeValue
// checks).
func (v NormalizedValue) Canonical() string {
	switch v.Kind {
	case ValueNumber:
		return formatNumber(v.Number)
	case ValueQuantity:
		return formatNumber(v.Number) + " " + v.Unit
	case ValueDate:
		return fmt.Sprintf("%04d-%02d-%02d", v.Year, v.Month, v.Day)
	default:
		return v.Text
	}
}

// NormalizeValue parses one infobox value atom into its typed normal
// form: dates in the edition conventions (ISO "1950-12-18", English
// "December 18, 1950", Portuguese "18 de dezembro de 1950", Vietnamese
// "18 tháng 12 năm 1950"), numbers with locale-aware thousand/decimal
// separators ("1,234.5" and "1.234,5" both mean 1234.5), and magnitudes
// carrying units or scale words ("160 min", "2 giờ", "US$ 23 milhões",
// "23 triệu USD", "5 km"). Anything else falls back to normalized free
// text. It never panics on any input.
func NormalizeValue(raw string) NormalizedValue {
	norm := Normalize(raw)
	if norm == "" {
		return NormalizedValue{Kind: ValueText, Text: ""}
	}
	if v, ok := parseDate(norm); ok {
		return v
	}
	if v, ok := parseNumeric(norm); ok {
		return v
	}
	return NormalizedValue{Kind: ValueText, Text: norm}
}

// formatNumber renders a finite float in the canonical form parseNumeric
// reads back to the same value. A lone '.' followed by exactly three
// digits would re-parse as a thousands separator, so that one ambiguous
// shape gets a trailing zero appended ("2.345" → "2.3450").
func formatNumber(x float64) string {
	s := strconv.FormatFloat(x, 'f', -1, 64)
	if dot := strings.IndexByte(s, '.'); dot >= 0 {
		intDigits := dot
		if s[0] == '-' {
			intDigits--
		}
		if intDigits <= 3 && len(s)-dot-1 == 3 {
			s += "0"
		}
	}
	return s
}

// monthTable maps folded lowercase month names (English and Portuguese;
// Vietnamese months are numeric "tháng M") to their ordinal.
var monthTable = map[string]int{
	"january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
	"june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
	"november": 11, "december": 12,
	"janeiro": 1, "fevereiro": 2, "marco": 3, "abril": 4, "maio": 5,
	"junho": 6, "julho": 7, "agosto": 8, "setembro": 9, "outubro": 10,
	"novembro": 11, "dezembro": 12,
}

// parseDate recognizes the edition date formats over the normalized
// string.
func parseDate(norm string) (NormalizedValue, bool) {
	fields := strings.Fields(norm)
	date := func(y, m, d int) (NormalizedValue, bool) {
		if y < 1 || y > 9999 || m < 1 || m > 12 || d < 1 || d > 31 {
			return NormalizedValue{}, false
		}
		return NormalizedValue{Kind: ValueDate, Year: y, Month: m, Day: d}, true
	}
	switch len(fields) {
	case 1:
		// ISO "1950-12-18".
		parts := strings.Split(fields[0], "-")
		if len(parts) != 3 || len(parts[0]) != 4 {
			return NormalizedValue{}, false
		}
		y, okY := atoi(parts[0])
		m, okM := atoi(parts[1])
		d, okD := atoi(parts[2])
		if !okY || !okM || !okD {
			return NormalizedValue{}, false
		}
		return date(y, m, d)
	case 3:
		// English "december 18, 1950".
		m, okM := monthTable[fields[0]]
		d, okD := atoi(strings.TrimSuffix(fields[1], ","))
		y, okY := atoi(fields[2])
		if !okM || !okD || !okY {
			return NormalizedValue{}, false
		}
		return date(y, m, d)
	case 5:
		switch {
		case fields[1] == "de" && fields[3] == "de":
			// Portuguese "18 de dezembro de 1950".
			d, okD := atoi(fields[0])
			m, okM := monthTable[fields[2]]
			y, okY := atoi(fields[4])
			if !okD || !okM || !okY {
				return NormalizedValue{}, false
			}
			return date(y, m, d)
		case fields[1] == "thang" && fields[3] == "nam":
			// Vietnamese "18 tháng 12 năm 1950" (diacritics folded).
			d, okD := atoi(fields[0])
			m, okM := atoi(fields[2])
			y, okY := atoi(fields[4])
			if !okD || !okM || !okY {
				return NormalizedValue{}, false
			}
			return date(y, m, d)
		}
	}
	return NormalizedValue{}, false
}

// atoi parses a short all-digit field.
func atoi(s string) (int, bool) {
	if s == "" || len(s) > 4 {
		return 0, false
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	return n, true
}

// unitDef converts a written unit word to its canonical base unit.
type unitDef struct {
	Unit  string
	Scale float64
}

// unitWords maps folded lowercase unit tokens to base units: durations to
// minutes, lengths to meters, masses to kilograms.
var unitWords = map[string]unitDef{
	// Durations (base: minutes).
	"min": {"min", 1}, "mins": {"min", 1}, "minute": {"min", 1},
	"minutes": {"min", 1}, "minutos": {"min", 1}, "phut": {"min", 1},
	"h": {"min", 60}, "hour": {"min", 60}, "hours": {"min", 60},
	"hora": {"min", 60}, "horas": {"min", 60}, "gio": {"min", 60},
	// Lengths (base: meters).
	"mm": {"m", 0.001}, "cm": {"m", 0.01}, "m": {"m", 1}, "km": {"m", 1000},
	"mi": {"m", 1609.344}, "mile": {"m", 1609.344}, "miles": {"m", 1609.344},
	"ft": {"m", 0.3048}, "feet": {"m", 0.3048},
	// Masses (base: kilograms).
	"mg": {"kg", 1e-6}, "g": {"kg", 0.001}, "kg": {"kg", 1},
	"t": {"kg", 1000}, "ton": {"kg", 1000}, "tons": {"kg", 1000},
	"tonne": {"kg", 1000}, "tonnes": {"kg", 1000},
	"lb": {"kg", 0.45359237}, "lbs": {"kg", 0.45359237},
}

// scaleWords are the magnitude multipliers editions spell out:
// million/milhões/triệu, billion/bilhões/tỷ, thousand/mil/nghìn.
var scaleWords = map[string]float64{
	"thousand": 1e3, "mil": 1e3, "nghin": 1e3,
	"million": 1e6, "millions": 1e6, "milhao": 1e6, "milhoes": 1e6,
	"trieu":   1e6,
	"billion": 1e9, "billions": 1e9, "bilhao": 1e9, "bilhoes": 1e9,
	"ty": 1e9,
}

// currencyWords tag a magnitude as a dollar amount.
var currencyWords = map[string]bool{
	"usd": true, "dollar": true, "dollars": true,
	"dolar": true, "dolares": true,
}

// parseNumeric recognizes numbers, scaled numbers, and unit-bearing
// quantities over the normalized string.
func parseNumeric(norm string) (NormalizedValue, bool) {
	var pieces []string
	for _, f := range strings.Fields(norm) {
		pieces = append(pieces, splitPieces(f)...)
	}
	var (
		num      float64
		haveNum  bool
		scale    = 1.0
		unit     unitDef
		haveUnit bool
		currency bool
	)
	for i := 0; i < len(pieces); i++ {
		p := pieces[i]
		if p == "$" {
			currency = true
			continue
		}
		if p == "us" && i+1 < len(pieces) && pieces[i+1] == "$" {
			currency = true
			i++
			continue
		}
		if n, ok := parseLocaleNumber(p); ok {
			if haveNum {
				return NormalizedValue{}, false
			}
			num, haveNum = n, true
			continue
		}
		if !haveNum {
			// Unit, scale and currency words only follow the magnitude
			// (currency symbols may precede it).
			return NormalizedValue{}, false
		}
		if s, ok := scaleWords[p]; ok {
			scale *= s
			continue
		}
		if currencyWords[p] {
			currency = true
			continue
		}
		if u, ok := unitWords[p]; ok && !haveUnit && !currency {
			unit, haveUnit = u, true
			continue
		}
		return NormalizedValue{}, false
	}
	if !haveNum || (haveUnit && currency) {
		return NormalizedValue{}, false
	}
	if currency {
		unit, haveUnit = unitDef{Unit: "usd", Scale: 1}, true
	}
	totalScale := scale
	if haveUnit {
		totalScale *= unit.Scale
	}
	total := num * totalScale
	if math.IsInf(total, 0) || math.IsNaN(total) {
		return NormalizedValue{}, false
	}
	v := NormalizedValue{
		Kind:     ValueNumber,
		Number:   total,
		Mantissa: num,
		Scale:    totalScale,
	}
	if haveUnit {
		v.Kind = ValueQuantity
		v.Unit = unit.Unit
	}
	return v, true
}

// splitPieces cuts one whitespace-free field into number runs, letter
// runs, and single symbol runes, so glued forms ("$23", "160min") parse.
// A sign joins the following number run only when it starts one.
func splitPieces(f string) []string {
	var pieces []string
	runes := []rune(f)
	for i := 0; i < len(runes); {
		r := runes[i]
		switch {
		case isNumRune(r) || ((r == '-' || r == '+') && i+1 < len(runes) && isDigit(runes[i+1])):
			j := i + 1
			for j < len(runes) && isNumRune(runes[j]) {
				j++
			}
			pieces = append(pieces, string(runes[i:j]))
			i = j
		case isLetter(r):
			j := i + 1
			for j < len(runes) && isLetter(runes[j]) {
				j++
			}
			pieces = append(pieces, string(runes[i:j]))
			i = j
		default:
			pieces = append(pieces, string(r))
			i++
		}
	}
	return pieces
}

func isDigit(r rune) bool   { return r >= '0' && r <= '9' }
func isNumRune(r rune) bool { return isDigit(r) || r == '.' || r == ',' }
func isLetter(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

// parseLocaleNumber reads a number written with either separator
// convention: '.' or ',' as the decimal mark, the other (or repeated
// groups of the same) as thousands grouping. A single separator followed
// by exactly three digits after a 1–3 digit head is grouping ("1,234",
// "1.234" → 1234); anything else is a decimal mark.
func parseLocaleNumber(s string) (float64, bool) {
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg, s = true, s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	if s == "" || !isDigit(rune(s[0])) || !isDigit(rune(s[len(s)-1])) {
		return 0, false
	}
	for _, r := range s {
		if !isNumRune(r) {
			return 0, false
		}
	}
	dots := strings.Count(s, ".")
	commas := strings.Count(s, ",")
	var intPart, fracPart string
	switch {
	case dots > 0 && commas > 0:
		dec := byte('.')
		if strings.LastIndexByte(s, ',') > strings.LastIndexByte(s, '.') {
			dec = ','
		}
		if strings.Count(s, string(dec)) != 1 {
			return 0, false
		}
		i := strings.IndexByte(s, dec)
		intPart, fracPart = s[:i], s[i+1:]
		group := byte(',')
		if dec == ',' {
			group = '.'
		}
		var ok bool
		intPart, ok = ungroup(intPart, group)
		if !ok || strings.ContainsAny(fracPart, ".,") {
			return 0, false
		}
	case dots+commas == 1:
		sep := byte('.')
		if commas == 1 {
			sep = ','
		}
		i := strings.IndexByte(s, sep)
		if len(s)-i-1 == 3 && i <= 3 {
			intPart = s[:i] + s[i+1:] // thousands grouping
		} else {
			intPart, fracPart = s[:i], s[i+1:]
		}
	case dots > 1 || commas > 1:
		sep := byte('.')
		if commas > 1 {
			sep = ','
		}
		var ok bool
		intPart, ok = ungroup(s, sep)
		if !ok {
			return 0, false
		}
	default:
		intPart = s
	}
	num := intPart
	if fracPart != "" {
		num += "." + fracPart
	}
	x, err := strconv.ParseFloat(num, 64)
	if err != nil || math.IsInf(x, 0) || math.IsNaN(x) {
		return 0, false
	}
	if neg {
		x = -x
	}
	return x, true
}

// ungroup strips thousands separators, requiring a 1–3 digit head and
// exactly-3-digit groups.
func ungroup(s string, sep byte) (string, bool) {
	parts := strings.Split(s, string(sep))
	if len(parts[0]) < 1 || len(parts[0]) > 3 {
		return "", false
	}
	for _, p := range parts[1:] {
		if len(p) != 3 {
			return "", false
		}
	}
	return strings.Join(parts, ""), true
}
