// Package text provides the language-processing primitives the matching
// pipeline relies on: Unicode normalization with diacritic folding for
// Portuguese and Vietnamese, tokenization, character n-grams, string
// similarity functions (Levenshtein, trigram/Dice), and sparse
// term-frequency vectors with cosine similarity.
//
// Everything here is deliberately simple and deterministic: the paper's
// method does not depend on sophisticated NLP, only on consistent
// normalization so that the same surface string always produces the same
// key.
package text

import (
	"strings"
	"unicode"
)

// foldTable maps accented Latin letters (as used by Portuguese and
// Vietnamese orthography) to their base ASCII letters. Vietnamese uses
// stacked diacritics (e.g. ệ, ở, ữ) which are all covered by their
// precomposed code points below.
var foldTable = map[rune]rune{
	// Latin-1 supplement + Latin Extended-A (covers Portuguese).
	'à': 'a', 'á': 'a', 'â': 'a', 'ã': 'a', 'ä': 'a', 'å': 'a',
	'è': 'e', 'é': 'e', 'ê': 'e', 'ë': 'e',
	'ì': 'i', 'í': 'i', 'î': 'i', 'ï': 'i',
	'ò': 'o', 'ó': 'o', 'ô': 'o', 'õ': 'o', 'ö': 'o',
	'ù': 'u', 'ú': 'u', 'û': 'u', 'ü': 'u',
	'ç': 'c', 'ñ': 'n', 'ý': 'y', 'ÿ': 'y',
	// Vietnamese base letters with horn/breve/stroke.
	'ă': 'a', 'đ': 'd', 'ĩ': 'i', 'ơ': 'o', 'ũ': 'u', 'ư': 'u',
	// Vietnamese tone-marked vowels (precomposed, Latin Extended Additional).
	'ạ': 'a', 'ả': 'a', 'ấ': 'a', 'ầ': 'a', 'ẩ': 'a', 'ẫ': 'a', 'ậ': 'a',
	'ắ': 'a', 'ằ': 'a', 'ẳ': 'a', 'ẵ': 'a', 'ặ': 'a',
	'ẹ': 'e', 'ẻ': 'e', 'ẽ': 'e', 'ế': 'e', 'ề': 'e', 'ể': 'e', 'ễ': 'e', 'ệ': 'e',
	'ỉ': 'i', 'ị': 'i',
	'ọ': 'o', 'ỏ': 'o', 'ố': 'o', 'ồ': 'o', 'ổ': 'o', 'ỗ': 'o', 'ộ': 'o',
	'ớ': 'o', 'ờ': 'o', 'ở': 'o', 'ỡ': 'o', 'ợ': 'o',
	'ụ': 'u', 'ủ': 'u', 'ứ': 'u', 'ừ': 'u', 'ử': 'u', 'ữ': 'u', 'ự': 'u',
	'ỳ': 'y', 'ỵ': 'y', 'ỷ': 'y', 'ỹ': 'y',
}

// FoldDiacritics replaces accented Latin letters with their base ASCII
// letters. Unknown runes pass through unchanged.
func FoldDiacritics(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if f, ok := foldTable[r]; ok {
			b.WriteRune(f)
		} else if f, ok := foldTable[unicode.ToLower(r)]; ok {
			b.WriteRune(unicode.ToUpper(f))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Normalize lowercases s, folds diacritics, and collapses interior
// whitespace — the canonical form for attribute names, titles and value
// tokens throughout the pipeline.
func Normalize(s string) string {
	s = strings.ToLower(s)
	s = FoldDiacritics(s)
	return strings.Join(strings.Fields(s), " ")
}

// NormalizeKeepAccents lowercases and collapses whitespace but keeps
// diacritics, for display-oriented canonicalization.
func NormalizeKeepAccents(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Tokenize splits s into lowercase, diacritic-folded word tokens. A token
// is a maximal run of letters or digits; everything else separates tokens.
func Tokenize(s string) []string {
	s = Normalize(s)
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// NGrams returns the character n-grams of the normalized string, padded
// with '#' at both ends (the padding makes prefix/suffix characters count,
// the convention used by COMA-style trigram matchers). It returns nil when
// n < 1; a string shorter than n after padding yields the padded string as
// its single gram.
func NGrams(s string, n int) []string {
	if n < 1 {
		return nil
	}
	runes := []rune("#" + Normalize(s) + "#")
	if len(runes) <= n {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}
