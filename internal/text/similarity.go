package text

// Levenshtein returns the edit distance between a and b, counting
// insertions, deletions and substitutions each as cost 1. The comparison
// is over runes, not bytes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity converts edit distance to a similarity in [0, 1]:
// 1 − distance/max(len). Two empty strings are maximally similar.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// TrigramSimilarity is the Dice coefficient over padded character
// trigrams — the classic COMA/SecondString n-gram matcher. It returns a
// value in [0, 1].
func TrigramSimilarity(a, b string) float64 {
	return NGramSimilarity(a, b, 3)
}

// NGramSimilarity is the Dice coefficient over padded character n-grams:
// 2·|A∩B| / (|A|+|B|), with multiset intersection.
func NGramSimilarity(a, b string, n int) float64 {
	ga, gb := NGrams(a, n), NGrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ga))
	for _, g := range ga {
		counts[g]++
	}
	common := 0
	for _, g := range gb {
		if counts[g] > 0 {
			counts[g]--
			common++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb))
}

// JaccardTokens is the Jaccard coefficient over the two strings' token
// sets: |A∩B| / |A∪B|.
func JaccardTokens(a, b string) float64 {
	sa := make(map[string]bool)
	for _, t := range Tokenize(a) {
		sa[t] = true
	}
	sb := make(map[string]bool)
	for _, t := range Tokenize(b) {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
