package text

import (
	"math"
	"sort"
)

// TF is a sparse term-frequency vector: term → raw frequency. The paper's
// value-similarity measure (vsim) is the cosine between two TF vectors
// whose terms are whole attribute values (after dictionary translation);
// the link-structure measure (lsim) uses TF vectors over link targets.
type TF map[string]float64

// NewTF builds a TF vector from a list of terms, counting occurrences.
func NewTF(terms []string) TF {
	v := make(TF, len(terms))
	for _, t := range terms {
		if t != "" {
			v[t]++
		}
	}
	return v
}

// Add increments the frequency of term by w.
func (v TF) Add(term string, w float64) {
	if term != "" {
		v[term] += w
	}
}

// Norm returns the Euclidean norm of the vector.
func (v TF) Norm() float64 {
	var s float64
	for _, f := range v {
		s += f * f
	}
	return math.Sqrt(s)
}

// Dot returns the dot product of two TF vectors.
func (v TF) Dot(w TF) float64 {
	// Iterate over the smaller map.
	if len(w) < len(v) {
		v, w = w, v
	}
	var s float64
	for t, f := range v {
		if g, ok := w[t]; ok {
			s += f * g
		}
	}
	return s
}

// Cosine returns the cosine similarity between two TF vectors, in [0, 1]
// for non-negative frequencies. Either vector being empty yields 0.
func (v TF) Cosine(w TF) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	// Clamp floating-point spill.
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Clone returns a copy of the vector.
func (v TF) Clone() TF {
	cp := make(TF, len(v))
	for t, f := range v {
		cp[t] = f
	}
	return cp
}

// Merge adds all of w's frequencies into v.
func (v TF) Merge(w TF) {
	for t, f := range w {
		v[t] += f
	}
}

// Top returns the k highest-frequency terms (ties broken alphabetically),
// useful for inspection and examples.
func (v TF) Top(k int) []string {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if v[terms[i]] != v[terms[j]] {
			return v[terms[i]] > v[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if k < len(terms) {
		terms = terms[:k]
	}
	return terms
}
