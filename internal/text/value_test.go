package text

import (
	"math"
	"testing"
)

func TestNormalizeValueDates(t *testing.T) {
	cases := []struct {
		in      string
		y, m, d int
	}{
		{"1950-12-18", 1950, 12, 18},
		{"December 18, 1950", 1950, 12, 18},
		{"18 de dezembro de 1950", 1950, 12, 18},
		{"18 tháng 12 năm 1950", 1950, 12, 18},
		{"1 de março de 2004", 2004, 3, 1},
		{"May 7, 1971", 1971, 5, 7},
		{"3 tháng 2 năm 1988", 1988, 2, 3},
	}
	for _, c := range cases {
		v := NormalizeValue(c.in)
		if v.Kind != ValueDate || v.Year != c.y || v.Month != c.m || v.Day != c.d {
			t.Errorf("NormalizeValue(%q) = %+v, want date %04d-%02d-%02d", c.in, v, c.y, c.m, c.d)
		}
	}
	// The three edition renderings of one date agree canonically.
	want := NormalizeValue("1950-12-18").Canonical()
	for _, in := range []string{"December 18, 1950", "18 de dezembro de 1950", "18 tháng 12 năm 1950"} {
		if got := NormalizeValue(in).Canonical(); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeValueNotDates(t *testing.T) {
	for _, in := range []string{"1950-13-18", "1950-12-32", "32 de dezembro de 1950", "978-0-123-45678-9", "0000-01-01"} {
		if v := NormalizeValue(in); v.Kind == ValueDate {
			t.Errorf("NormalizeValue(%q) parsed as date %+v", in, v)
		}
	}
}

func TestNormalizeValueNumbers(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"160", 160},
		{"-5", -5},
		{"1,234", 1234},
		{"1.234", 1234},
		{"1,234.5", 1234.5},
		{"1.234,5", 1234.5},
		{"1,234,567", 1234567},
		{"1.234.567", 1234567},
		{"12,5", 12.5},
		{"12.5", 12.5},
		{"1.2 million", 1.2e6},
		{"40 million", 4e7},
	}
	for _, c := range cases {
		v := NormalizeValue(c.in)
		if v.Kind != ValueNumber || math.Abs(v.Number-c.want) > 1e-9 {
			t.Errorf("NormalizeValue(%q) = %+v, want number %v", c.in, v, c.want)
		}
	}
}

func TestNormalizeValueQuantities(t *testing.T) {
	cases := []struct {
		in       string
		unit     string
		number   float64
		mantissa float64
	}{
		{"160 minutes", "min", 160, 160},
		{"160 min", "min", 160, 160},
		{"160 phút", "min", 160, 160},
		{"2 giờ", "min", 120, 2},
		{"2 hours", "min", 120, 2},
		{"$23 million", "usd", 23e6, 23},
		{"US$ 23 milhões", "usd", 23e6, 23},
		{"23 triệu USD", "usd", 23e6, 23},
		{"$12 billion", "usd", 12e9, 12},
		{"US$ 12 bilhões", "usd", 12e9, 12},
		{"12 tỷ USD", "usd", 12e9, 12},
		{"5 km", "m", 5000, 5},
		{"180 cm", "m", 1.8, 180},
		{"70 kg", "kg", 70, 70},
		{"3 tonnes", "kg", 3000, 3},
	}
	for _, c := range cases {
		v := NormalizeValue(c.in)
		if v.Kind != ValueQuantity || v.Unit != c.unit ||
			math.Abs(v.Number-c.number) > 1e-9 || math.Abs(v.Mantissa-c.mantissa) > 1e-9 {
			t.Errorf("NormalizeValue(%q) = %+v, want %v %s (mantissa %v)", c.in, v, c.number, c.unit, c.mantissa)
		}
	}
	// The three money renderings of one amount agree canonically.
	want := NormalizeValue("$23 million").Canonical()
	for _, in := range []string{"US$ 23 milhões", "23 triệu USD"} {
		if got := NormalizeValue(in).Canonical(); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeValueText(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Francis Ford Coppola", "francis ford coppola"},
		{"França", "franca"},
		{"1940–1971", "1940–1971"},
		{"http://www.example.com", "http://www.example.com"},
		{"978-0-123-45678-9", "978-0-123-45678-9"},
		{"", ""},
	}
	for _, c := range cases {
		v := NormalizeValue(c.in)
		if v.Kind != ValueText || v.Text != c.want {
			t.Errorf("NormalizeValue(%q) = %+v, want text %q", c.in, v, c.want)
		}
	}
}

func TestNormalizeValueUnitMismatchShape(t *testing.T) {
	// A converted-unit rewrite keeps the mantissa and changes the scale —
	// the shape the audit detector keys on.
	a := NormalizeValue("160 minutes")
	b := NormalizeValue("160 giờ")
	if a.Unit != b.Unit {
		t.Fatalf("units differ: %q vs %q", a.Unit, b.Unit)
	}
	if a.Mantissa != b.Mantissa {
		t.Fatalf("mantissas differ: %v vs %v", a.Mantissa, b.Mantissa)
	}
	if a.Scale == b.Scale || a.Number == b.Number {
		t.Fatalf("scales should differ: %+v vs %+v", a, b)
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	inputs := []string{
		"160 minutes", "US$ 23 milhões", "18 tháng 12 năm 1950",
		"1.234,5", "2.345", "-2.345", "1,5", "France", "", "0.000",
		"9999999999999999999999", "1.2 million",
	}
	for _, in := range inputs {
		c1 := NormalizeValue(in).Canonical()
		c2 := NormalizeValue(c1).Canonical()
		if c1 != c2 {
			t.Errorf("Canonical not idempotent for %q: %q → %q", in, c1, c2)
		}
	}
}

func FuzzNormalizeValue(f *testing.F) {
	seeds := []string{
		"1950-12-18", "December 18, 1950", "18 de dezembro de 1950",
		"18 tháng 12 năm 1950", "160 minutes", "160 min", "160 phút",
		"US$ 23 milhões", "23 triệu USD", "$12 billion", "12 tỷ USD",
		"1,234.5", "1.234,5", "1.234.567", "5 km", "70 kg", "2 giờ",
		"France", "1940–1971", "978-0-123-45678-9", "", "-5", "+3,25",
		"0.000", "2.345", "us$", "$", "million", "min", "1950-13-40",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v := NormalizeValue(s) // must never panic
		c1 := v.Canonical()
		w := NormalizeValue(c1)
		c2 := w.Canonical()
		if c1 != c2 {
			t.Fatalf("Canonical not a fixed point: %q → %q → %q", s, c1, c2)
		}
		if w.Kind != NormalizeValue(c2).Kind {
			t.Fatalf("kind unstable on canonical form %q", c2)
		}
	})
}
