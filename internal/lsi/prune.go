// Candidate-pruning support: a lazily built int8 quantization of the
// latent embedding, and provable bounds on the paper's three-case LSI
// score computed from it. The pruned scoring path in internal/core uses
// ScoreBounds to discard pairs whose score provably cannot clear the
// TLSI queue threshold, then rescores the survivors with the exact
// float64 Score — so quantization can never change a match result, only
// skip work that provably does not matter.

package lsi

import "repro/internal/linalg"

// Quantized returns the int8 quantization of the model's embedding,
// building it on first use. The quantization depends only on the
// embedding — not on any threshold — so per-request threshold overrides
// reuse the same cached instance; models restored from snapshots
// rebuild it lazily exactly as freshly built ones do. Safe for
// concurrent use.
func (m *Model) Quantized() *linalg.QuantizedRows {
	m.quantOnce.Do(func() { m.quant = linalg.QuantizeRows(m.embedding) })
	return m.quant
}

// ScoreBounds returns a deterministic point estimate and a proven upper
// bound of Score(i, j), computed from the quantized embedding alone:
//
//	Score(i, j) ≤ hi, and est is within the quantization margin of the
//	exact score.
//
// Pairs whose exact score is 0 by definition (identical indices,
// same-language co-occurring attributes) return (0, 0). For rows the
// quantizer made no claim about, hi degrades to the trivial bound 1, so
// a caller pruning on hi stays sound on any input.
func (m *Model) ScoreBounds(i, j int) (est, hi float64) {
	if i == j {
		return 0, 0
	}
	q := m.Quantized()
	ai, aj := m.Attrs[i], m.Attrs[j]
	if ai.Lang != aj.Lang {
		c := linalg.CosineRowsQ8(q, i, j)
		margin := q.Margin(i, j)
		est = maxf(c, 0)
		hi = maxf(minf(c+margin, 1), 0)
		return est, hi
	}
	if m.CoOccur(i, j) {
		return 0, 0
	}
	c := linalg.CosineRowsQ8(q, i, j)
	margin := q.Margin(i, j)
	// Score = 1 − max(cos, 0): the upper bound comes from the *lower*
	// cosine bound, clamped to the exact cosine's [-1, 1] range.
	cLo := maxf(c-margin, -1)
	est = 1 - maxf(c, 0)
	hi = 1 - maxf(cLo, 0)
	return est, hi
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
