package lsi

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/wiki"
)

func attr(lang wiki.Language, name string) Attr { return Attr{Lang: lang, Name: name} }

// paperDuals reproduces the flavor of Figure 2(a): English and Portuguese
// actor attributes over dual-language infoboxes, where born/nascimento and
// died/falecimento/morte track each other.
func paperDuals() []Dual {
	born := attr(wiki.English, "born")
	died := attr(wiki.English, "died")
	other := attr(wiki.English, "other names")
	nasc := attr(wiki.Portuguese, "nascimento")
	falec := attr(wiki.Portuguese, "falecimento")
	morte := attr(wiki.Portuguese, "morte")
	outros := attr(wiki.Portuguese, "outros nomes")
	return []Dual{
		{A: []Attr{born, other}, B: []Attr{nasc, outros}},
		{A: []Attr{died}, B: []Attr{falec}},
		{A: []Attr{born, died}, B: []Attr{nasc, morte}},
		{A: []Attr{died}, B: []Attr{falec}},
		{A: []Attr{born, other}, B: []Attr{nasc, outros}},
		{A: []Attr{born, died}, B: []Attr{nasc, falec}},
		{A: []Attr{born}, B: []Attr{nasc}},
		{A: []Attr{died, other}, B: []Attr{morte, outros}},
	}
}

func TestCrossLanguageSynonymsScoreHigh(t *testing.T) {
	m := Build(paperDuals(), 4)
	bornNasc := m.ScoreAttrs(attr(wiki.English, "born"), attr(wiki.Portuguese, "nascimento"))
	bornMorte := m.ScoreAttrs(attr(wiki.English, "born"), attr(wiki.Portuguese, "morte"))
	if bornNasc <= bornMorte {
		t.Errorf("LSI(born,nascimento)=%.3f should exceed LSI(born,morte)=%.3f", bornNasc, bornMorte)
	}
	if bornNasc < 0.5 {
		t.Errorf("LSI(born,nascimento)=%.3f, want high", bornNasc)
	}
	diedFalec := m.ScoreAttrs(attr(wiki.English, "died"), attr(wiki.Portuguese, "falecimento"))
	if diedFalec < 0.5 {
		t.Errorf("LSI(died,falecimento)=%.3f, want high", diedFalec)
	}
}

func TestSameLanguageCoOccurringScoreZero(t *testing.T) {
	m := Build(paperDuals(), 4)
	// born and died co-occur in English infoboxes → 0.
	if got := m.ScoreAttrs(attr(wiki.English, "born"), attr(wiki.English, "died")); got != 0 {
		t.Errorf("LSI(born,died) = %v, want 0", got)
	}
	// nascimento and morte co-occur in Portuguese → 0 (Example 2's gate).
	if got := m.ScoreAttrs(attr(wiki.Portuguese, "nascimento"), attr(wiki.Portuguese, "morte")); got != 0 {
		t.Errorf("LSI(nascimento,morte) = %v, want 0", got)
	}
}

func TestSameLanguageSynonymsComplementScore(t *testing.T) {
	// falecimento and morte never co-occur: their score is 1 − cosine,
	// and since they occupy complementary infobox sets the cosine is
	// small, so the score should be clearly positive.
	m := Build(paperDuals(), 4)
	got := m.ScoreAttrs(attr(wiki.Portuguese, "falecimento"), attr(wiki.Portuguese, "morte"))
	if got <= 0.1 {
		t.Errorf("LSI(falecimento,morte) = %v, want clearly positive", got)
	}
}

func TestSelfScoreZero(t *testing.T) {
	m := Build(paperDuals(), 4)
	if got := m.Score(0, 0); got != 0 {
		t.Errorf("self score = %v", got)
	}
}

func TestUnknownAttrScoresZero(t *testing.T) {
	m := Build(paperDuals(), 4)
	if got := m.ScoreAttrs(attr(wiki.English, "nope"), attr(wiki.Portuguese, "nascimento")); got != 0 {
		t.Errorf("unknown attr score = %v", got)
	}
}

func TestExtraAttrsGetZeroVectors(t *testing.T) {
	extra := attr(wiki.English, "website")
	m := Build(paperDuals(), 4, extra)
	if _, ok := m.Index[extra]; !ok {
		t.Fatal("extra attr not registered")
	}
	if got := m.ScoreAttrs(extra, attr(wiki.Portuguese, "nascimento")); got != 0 {
		t.Errorf("zero-row cross score = %v, want 0", got)
	}
}

func TestEmptyModel(t *testing.T) {
	m := Build(nil, 0)
	if m.Len() != 0 {
		t.Errorf("len = %d", m.Len())
	}
	m2 := Build(nil, 3, attr(wiki.English, "a"), attr(wiki.Portuguese, "b"))
	if got := m2.ScoreAttrs(attr(wiki.English, "a"), attr(wiki.Portuguese, "b")); got != 0 {
		t.Errorf("no-docs score = %v", got)
	}
}

func TestScoreBounds(t *testing.T) {
	m := Build(paperDuals(), 4)
	for i := 0; i < m.Len(); i++ {
		for j := 0; j < m.Len(); j++ {
			s := m.Score(i, j)
			if s < 0 || s > 1.0000001 {
				t.Fatalf("score(%v,%v) = %v out of range", m.Attrs[i], m.Attrs[j], s)
			}
		}
	}
}

func TestRankClamping(t *testing.T) {
	m := Build(paperDuals(), 1000)
	// Must not panic, and scores remain sane.
	if s := m.ScoreAttrs(attr(wiki.English, "born"), attr(wiki.Portuguese, "nascimento")); s <= 0 {
		t.Errorf("high-rank score = %v", s)
	}
}

// syntheticDuals generates a corpus of dual-language infoboxes large
// enough that Build takes the randomized sparse SVD path (the exact
// fallback only covers tiny occurrence matrices).
func syntheticDuals(nAttrs, nDuals, perSide int, seed int64) []Dual {
	rng := rand.New(rand.NewSource(seed))
	enPool := make([]Attr, nAttrs)
	ptPool := make([]Attr, nAttrs)
	for i := range enPool {
		enPool[i] = attr(wiki.English, fmt.Sprintf("en%03d", i))
		ptPool[i] = attr(wiki.Portuguese, fmt.Sprintf("pt%03d", i))
	}
	duals := make([]Dual, nDuals)
	for d := range duals {
		for s := 0; s < perSide; s++ {
			// Correlated draws: the same latent index drives both sides,
			// so the occurrence matrix has real low-rank structure.
			i := rng.Intn(nAttrs)
			duals[d].A = append(duals[d].A, enPool[i])
			j := i
			if rng.Float64() < 0.2 {
				j = rng.Intn(nAttrs)
			}
			duals[d].B = append(duals[d].B, ptPool[j])
		}
	}
	return duals
}

// TestBuildRandomizedMatchesExactSVD pins the tentpole swap: on an
// occurrence matrix big enough for the randomized path, every pairwise
// LSI score must agree with the exact dense-Jacobi model to well below
// the matcher's decision thresholds.
func TestBuildRandomizedMatchesExactSVD(t *testing.T) {
	duals := syntheticDuals(60, 300, 7, 12345)
	fast := Build(duals, DefaultRank)
	exact := BuildWith(duals, DefaultRank, Options{ExactSVD: true})
	if fast.Len() != exact.Len() {
		t.Fatalf("attr counts differ: %d vs %d", fast.Len(), exact.Len())
	}
	// Guard the routing: without this, shrinking the synthetic corpus (or
	// raising linalg's cutoffs) would silently turn the comparison into
	// exact-vs-exact and the randomized path would go unvalidated.
	_, index := IndexAttrs(duals)
	if occ := OccurrenceMatrix(duals, index); !linalg.RoutesToRandomized(occ, DefaultRank) {
		t.Fatalf("test corpus (%d×%d occurrence matrix) does not route to the randomized path",
			occ.Rows, occ.Cols)
	}
	var maxDiff float64
	for i := 0; i < fast.Len(); i++ {
		for j := i + 1; j < fast.Len(); j++ {
			a, b := fast.Attrs[i], fast.Attrs[j]
			d := math.Abs(fast.ScoreAttrs(a, b) - exact.ScoreAttrs(a, b))
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("max |fast − exact| score diff = %g, want ≤ 1e-6", maxDiff)
	}
}
