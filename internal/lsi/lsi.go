// Package lsi implements the Latent Semantic Indexing correlation measure
// of Section 3.2: attributes are rows of a binary occurrence matrix over
// dual-language infoboxes, the matrix is reduced with a truncated SVD, and
// attribute correlation is the cosine between the scaled latent vectors,
// with the paper's three-case adjustment:
//
//	LSI(ap, aq) = cos(ap, aq)       if ap, aq are in different languages
//	            = 0                 if ap, aq co-occur in an infobox (same language)
//	            = 1 − cos(ap, aq)   otherwise (same language)
package lsi

import (
	"repro/internal/linalg"
	"repro/internal/wiki"
)

// DefaultRank is the number of latent dimensions retained (the paper's f).
const DefaultRank = 10

// Attr identifies an attribute in the dual-language schema: its language
// and its normalized surface name.
type Attr struct {
	Lang wiki.Language
	Name string
}

// Dual is the attribute content of one dual-language infobox: the
// attributes of the two cross-linked infoboxes, already normalized.
type Dual struct {
	A []Attr // attributes from the pair.A-side infobox
	B []Attr // attributes from the pair.B-side infobox
}

// Model holds the reduced representation and the co-occurrence facts
// needed to score attribute pairs.
type Model struct {
	Attrs     []Attr
	Index     map[Attr]int
	embedding *linalg.Matrix // scaled U (attrs × rank)
	sameLang  []bool         // sameLang[i*(n)+j] not stored; computed from Attrs
	coOccur   map[[2]int]bool
	rank      int
}

// Build constructs the LSI model from the dual-language infoboxes. rank
// ≤ 0 selects DefaultRank. Attributes not present in any dual still get a
// row (their latent vector is zero and all their cross scores are 0);
// extraAttrs lets callers register them.
func Build(duals []Dual, rank int, extraAttrs ...Attr) *Model {
	if rank <= 0 {
		rank = DefaultRank
	}
	m := &Model{Index: make(map[Attr]int), coOccur: make(map[[2]int]bool), rank: rank}
	intern := func(a Attr) int {
		if i, ok := m.Index[a]; ok {
			return i
		}
		i := len(m.Attrs)
		m.Attrs = append(m.Attrs, a)
		m.Index[a] = i
		return i
	}
	for _, d := range duals {
		for _, a := range d.A {
			intern(a)
		}
		for _, b := range d.B {
			intern(b)
		}
	}
	for _, a := range extraAttrs {
		intern(a)
	}
	n, docs := len(m.Attrs), len(duals)
	occ := linalg.NewMatrix(n, docs)
	for j, d := range duals {
		var idx []int
		for _, a := range d.A {
			idx = append(idx, m.Index[a])
		}
		for _, b := range d.B {
			idx = append(idx, m.Index[b])
		}
		for _, i := range idx {
			occ.Set(i, j, 1)
		}
		// Same-language co-occurrence within the two constituent
		// infoboxes: attributes that appear together in one infobox
		// cannot be synonyms (score 0).
		mark := func(side []Attr) {
			for x := 0; x < len(side); x++ {
				for y := x + 1; y < len(side); y++ {
					i, j := m.Index[side[x]], m.Index[side[y]]
					if i > j {
						i, j = j, i
					}
					m.coOccur[[2]int{i, j}] = true
				}
			}
		}
		mark(d.A)
		mark(d.B)
	}
	if n == 0 || docs == 0 {
		m.embedding = linalg.NewMatrix(n, 0)
		return m
	}
	k := rank
	if k > docs {
		k = docs
	}
	if k > n {
		k = n
	}
	m.embedding = linalg.TruncatedSVD(occ, k).ScaledU()
	return m
}

// Rank returns the retained latent dimensionality.
func (m *Model) Rank() int { return m.rank }

// Len returns the number of attributes in the model.
func (m *Model) Len() int { return len(m.Attrs) }

// CoOccur reports whether two attributes (by index) appear together in
// some infobox of their (shared) language.
func (m *Model) CoOccur(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	return m.coOccur[[2]int{i, j}]
}

// Cosine returns the raw latent cosine between two attributes.
func (m *Model) Cosine(i, j int) float64 {
	if m.embedding.Cols == 0 {
		return 0
	}
	return linalg.CosineRows(m.embedding, i, j)
}

// Score returns the paper's LSI score for the attribute pair (by index).
func (m *Model) Score(i, j int) float64 {
	if i == j {
		return 0
	}
	ai, aj := m.Attrs[i], m.Attrs[j]
	if ai.Lang != aj.Lang {
		c := m.Cosine(i, j)
		if c < 0 {
			c = 0
		}
		return c
	}
	if m.CoOccur(i, j) {
		return 0
	}
	c := m.Cosine(i, j)
	if c < 0 {
		c = 0
	}
	return 1 - c
}

// ScoreAttrs is Score addressed by attribute value; unknown attributes
// score 0.
func (m *Model) ScoreAttrs(a, b Attr) float64 {
	i, ok1 := m.Index[a]
	j, ok2 := m.Index[b]
	if !ok1 || !ok2 {
		return 0
	}
	return m.Score(i, j)
}
