// Package lsi implements the Latent Semantic Indexing correlation measure
// of Section 3.2: attributes are rows of a binary occurrence matrix over
// dual-language infoboxes, the matrix is reduced with a truncated SVD, and
// attribute correlation is the cosine between the scaled latent vectors,
// with the paper's three-case adjustment:
//
//	LSI(ap, aq) = cos(ap, aq)       if ap, aq are in different languages
//	            = 0                 if ap, aq co-occur in an infobox (same language)
//	            = 1 − cos(ap, aq)   otherwise (same language)
package lsi

import (
	"context"
	"sort"
	"sync"

	"repro/internal/linalg"
	"repro/internal/wiki"
)

// DefaultRank is the number of latent dimensions retained (the paper's f).
const DefaultRank = 10

// Attr identifies an attribute in the dual-language schema: its language
// and its normalized surface name.
type Attr struct {
	Lang wiki.Language
	Name string
}

// Dual is the attribute content of one dual-language infobox: the
// attributes of the two cross-linked infoboxes, already normalized.
type Dual struct {
	A []Attr // attributes from the pair.A-side infobox
	B []Attr // attributes from the pair.B-side infobox
}

// Model holds the reduced representation and the co-occurrence facts
// needed to score attribute pairs.
type Model struct {
	Attrs     []Attr
	Index     map[Attr]int
	embedding *linalg.Matrix // scaled U (attrs × rank)
	coOccur   map[[2]int]bool
	rank      int

	// quant is the lazily built int8 quantization of embedding (see
	// prune.go). It is derived state, never snapshotted: restored models
	// rebuild it on first use from the bit-identical embedding.
	quantOnce sync.Once
	quant     *linalg.QuantizedRows
}

// Options tunes how the model is built.
type Options struct {
	// ExactSVD forces the exact dense Jacobi SVD instead of the default
	// sparse randomized path. The default path already falls back to
	// exact Jacobi for tiny inputs; this switch exists to validate that
	// the randomized decomposition leaves match results unchanged.
	ExactSVD bool
}

// Build constructs the LSI model from the dual-language infoboxes. rank
// ≤ 0 selects DefaultRank. Attributes not present in any dual still get a
// row (their latent vector is zero and all their cross scores are 0);
// extraAttrs lets callers register them.
func Build(duals []Dual, rank int, extraAttrs ...Attr) *Model {
	return BuildWith(duals, rank, Options{}, extraAttrs...)
}

// BuildWith is Build with explicit options.
func BuildWith(duals []Dual, rank int, opts Options, extraAttrs ...Attr) *Model {
	m, _ := BuildWithCtx(context.Background(), duals, rank, opts, extraAttrs...)
	return m
}

// buildCheckEvery is how many dual infoboxes BuildWithCtx processes
// between context checks.
const buildCheckEvery = 128

// BuildWithCtx is BuildWith with cancellation: the co-occurrence scan
// checks ctx between dual batches and the decomposition is skipped once
// the context is done, returning a nil model and ctx.Err(). The model,
// once returned, is immutable and safe for concurrent scoring.
func BuildWithCtx(ctx context.Context, duals []Dual, rank int, opts Options, extraAttrs ...Attr) (*Model, error) {
	if rank <= 0 {
		rank = DefaultRank
	}
	m := &Model{coOccur: make(map[[2]int]bool), rank: rank}
	m.Attrs, m.Index = IndexAttrs(duals, extraAttrs...)
	for k, d := range duals {
		if k%buildCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Same-language co-occurrence within the two constituent
		// infoboxes: attributes that appear together in one infobox
		// cannot be synonyms (score 0).
		mark := func(side []Attr) {
			for x := 0; x < len(side); x++ {
				for y := x + 1; y < len(side); y++ {
					i, j := m.Index[side[x]], m.Index[side[y]]
					if i > j {
						i, j = j, i
					}
					m.coOccur[[2]int{i, j}] = true
				}
			}
		}
		mark(d.A)
		mark(d.B)
	}
	n, docs := len(m.Attrs), len(duals)
	if n == 0 || docs == 0 {
		m.embedding = linalg.NewMatrix(n, 0)
		return m, nil
	}
	k := rank
	if k > docs {
		k = docs
	}
	if k > n {
		k = n
	}
	occ := OccurrenceMatrix(duals, m.Index)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.ExactSVD {
		m.embedding = linalg.TruncatedSVD(occ.Dense(), k).ScaledU()
	} else {
		m.embedding = linalg.SparseTruncatedSVD(occ, k).ScaledU()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// IndexAttrs interns every attribute appearing in the duals (A side
// before B, in encounter order), then the extras, and returns the
// attribute list together with its inverse index — the row numbering the
// occurrence matrix and the model share.
func IndexAttrs(duals []Dual, extraAttrs ...Attr) ([]Attr, map[Attr]int) {
	var attrs []Attr
	index := make(map[Attr]int)
	intern := func(a Attr) {
		if _, ok := index[a]; ok {
			return
		}
		index[a] = len(attrs)
		attrs = append(attrs, a)
	}
	for _, d := range duals {
		for _, a := range d.A {
			intern(a)
		}
		for _, b := range d.B {
			intern(b)
		}
	}
	for _, a := range extraAttrs {
		intern(a)
	}
	return attrs, index
}

// OccurrenceMatrix assembles the binary attrs×duals occurrence matrix of
// Section 3.2 in sparse coordinate form: entry (i, j) is 1 when the
// attribute with index[attr] = i appears in dual j. The matrix is
// overwhelmingly zero at corpus scale, so it is never densified here.
// Attributes missing from index are silently skipped — they get no row
// at all, so callers normally pass a complete index (e.g. from
// IndexAttrs).
func OccurrenceMatrix(duals []Dual, index map[Attr]int) *linalg.Sparse {
	n := 0
	for _, i := range index {
		if i+1 > n {
			n = i + 1
		}
	}
	var entries []linalg.Entry
	seen := make(map[int]bool)
	for j, d := range duals {
		clear(seen)
		add := func(side []Attr) {
			for _, a := range side {
				i, ok := index[a]
				if !ok {
					continue
				}
				if !seen[i] { // keep the matrix binary even if a dual repeats an attribute
					seen[i] = true
					entries = append(entries, linalg.Entry{Row: i, Col: j, Val: 1})
				}
			}
		}
		add(d.A)
		add(d.B)
	}
	return linalg.NewSparse(n, len(duals), entries)
}

// Embedding returns the model's latent representation U·diag(S) (attrs ×
// retained rank), the matrix Cosine compares rows of. The returned matrix
// is the model's own — callers must not mutate it. It exists so the
// snapshot store can persist the factor matrix exactly.
func (m *Model) Embedding() *linalg.Matrix { return m.embedding }

// CoOccurrences returns the same-language co-occurrence index pairs
// (i < j), sorted — the co-occurrence facts Score consults, in a
// serializable form.
func (m *Model) CoOccurrences() [][2]int {
	out := make([][2]int, 0, len(m.coOccur))
	for p := range m.coOccur {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Restore reconstructs a model from its serialized parts: the attribute
// list, the retained rank, the exact latent embedding, and the
// co-occurrence pairs — the inverse of (Attrs, Rank, Embedding,
// CoOccurrences). Because the embedding is restored bit-for-bit, a
// restored model scores every attribute pair identically to the model it
// was snapshotted from.
func Restore(attrs []Attr, rank int, embedding *linalg.Matrix, coOccur [][2]int) *Model {
	m := &Model{
		Attrs:     attrs,
		Index:     make(map[Attr]int, len(attrs)),
		embedding: embedding,
		coOccur:   make(map[[2]int]bool, len(coOccur)),
		rank:      rank,
	}
	for i, a := range attrs {
		m.Index[a] = i
	}
	for _, p := range coOccur {
		m.coOccur[p] = true
	}
	return m
}

// Rank returns the retained latent dimensionality.
func (m *Model) Rank() int { return m.rank }

// Len returns the number of attributes in the model.
func (m *Model) Len() int { return len(m.Attrs) }

// CoOccur reports whether two attributes (by index) appear together in
// some infobox of their (shared) language.
func (m *Model) CoOccur(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	return m.coOccur[[2]int{i, j}]
}

// Cosine returns the raw latent cosine between two attributes.
func (m *Model) Cosine(i, j int) float64 {
	if m.embedding.Cols == 0 {
		return 0
	}
	return linalg.CosineRows(m.embedding, i, j)
}

// Score returns the paper's LSI score for the attribute pair (by index).
func (m *Model) Score(i, j int) float64 {
	if i == j {
		return 0
	}
	ai, aj := m.Attrs[i], m.Attrs[j]
	if ai.Lang != aj.Lang {
		c := m.Cosine(i, j)
		if c < 0 {
			c = 0
		}
		return c
	}
	if m.CoOccur(i, j) {
		return 0
	}
	c := m.Cosine(i, j)
	if c < 0 {
		c = 0
	}
	return 1 - c
}

// ScoreAttrs is Score addressed by attribute value; unknown attributes
// score 0.
func (m *Model) ScoreAttrs(a, b Attr) float64 {
	i, ok1 := m.Index[a]
	j, ok2 := m.Index[b]
	if !ok1 || !ok2 {
		return 0
	}
	return m.Score(i, j)
}
