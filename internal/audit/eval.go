package audit

import (
	"repro/internal/synth"
)

// EvalResult scores a detector run against a synthetic injection ledger.
type EvalResult struct {
	// TP / FP / Missed count findings matched to ledger entries, findings
	// with no ledger entry, and ledger entries no finding matched.
	TP, FP, Missed int
	// Precision is TP/(TP+FP) over value-disagreement findings at or
	// above the severity threshold. Missing findings are excluded from
	// precision: the synthetic overlap model legitimately omits
	// attributes from single editions, so an un-injected missing finding
	// is usually a true (if unexciting) report, not a false alarm.
	Precision float64
	// Recall is the fraction of ledger entries some finding matched
	// (regardless of severity — an injected fault found at low severity
	// is still found), injected drops included.
	Recall float64
}

// injectionKind maps a ledger kind to the finding kind the detector
// should report for it.
func injectionKind(k string) Kind {
	switch k {
	case synth.InjectNumber:
		return NumericDrift
	case synth.InjectDate:
		return Contradiction
	case synth.InjectUnit:
		return UnitMismatch
	case synth.InjectDrop:
		return Missing
	}
	return ""
}

// matches reports whether a finding points at a ledger entry: same
// entity (by the victim edition's title), an attribute surface that
// realizes the injected canonical attribute, and the expected kind.
func matches(f *Finding, inj *synth.Injection, truth *synth.GroundTruth) bool {
	if f.Kind != injectionKind(inj.Kind) {
		return false
	}
	matched := false
	for l, t := range inj.Titles {
		if f.Titles[l] == t {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	tt, ok := truth.TruthFor(inj.Type)
	if !ok {
		return false
	}
	for _, v := range f.Values {
		for _, c := range tt.Canons(v.Lang, v.Attr) {
			if c == inj.Canon {
				return true
			}
		}
	}
	return false
}

// Evaluate scores findings against the ground truth's injection ledger.
// minSeverity gates which findings count toward precision; recall
// considers every finding (an injected fault found at low severity is
// still found).
func Evaluate(findings []Finding, truth *synth.GroundTruth, minSeverity float64) EvalResult {
	found := make([]bool, len(truth.Injected))
	var res EvalResult
	for i := range findings {
		f := &findings[i]
		hit := false
		for j := range truth.Injected {
			if matches(f, &truth.Injected[j], truth) {
				found[j] = true
				hit = true
			}
		}
		if f.Kind == Missing || f.Severity < minSeverity {
			continue
		}
		if hit {
			res.TP++
		} else {
			res.FP++
		}
	}
	for _, ok := range found {
		if !ok {
			res.Missed++
		}
	}
	if res.TP+res.FP > 0 {
		res.Precision = float64(res.TP) / float64(res.TP+res.FP)
	}
	hits := len(truth.Injected) - res.Missed
	if len(truth.Injected) > 0 {
		res.Recall = float64(hits) / float64(len(truth.Injected))
	}
	return res
}
