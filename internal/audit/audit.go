// Package audit implements cross-language consistency auditing: for
// every entity linked across editions, it compares the values of every
// matched attribute pair (the correspondence clusters built by
// internal/multi) using the typed value normalizers in internal/text,
// and produces a ranked inconsistency report.
//
// This is the production workload the schema matcher unlocks — the
// matcher says pt's "população" IS en's "population"; the auditor says
// the two editions disagree about its value (the paper's §1 motivating
// example: a running time of 160 minutes in one edition and 165 in
// another). Findings carry a confidence-weighted severity so that value
// disagreements reached through low-confidence correspondences rank
// below the same disagreement over a high-confidence match.
package audit

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/multi"
	"repro/internal/text"
	"repro/internal/wiki"
)

// Kind classifies one cross-edition disagreement.
type Kind string

// Disagreement kinds, from structural to fuzzy.
const (
	// Missing: one edition carries the attribute, a linked edition whose
	// infobox should carry a matched attribute does not.
	Missing Kind = "missing"
	// NumericDrift: both editions carry comparable magnitudes that
	// disagree (160 vs 165 minutes).
	NumericDrift Kind = "numeric-drift"
	// UnitMismatch: the written magnitudes agree but the units or scale
	// words do not ("23 million" vs "23 billion", minutes vs hours).
	UnitMismatch Kind = "unit-mismatch"
	// Contradiction: structured values (dates) or free text that no
	// resolution step could reconcile.
	Contradiction Kind = "contradiction"
)

// Value is one edition's observation of an audited attribute.
type Value struct {
	// Lang is the edition.
	Lang wiki.Language `json:"lang"`
	// Attr is the normalized surface attribute name ("" never occurs;
	// missing observations keep the expected cluster member's name).
	Attr string `json:"attr"`
	// Raw is the infobox text as written ("" for a missing observation).
	Raw string `json:"raw,omitempty"`
	// Norm is the canonical normalized rendering of Raw, comma-joined
	// per atom ("" for a missing observation).
	Norm string `json:"norm,omitempty"`
}

// Finding is one reported inconsistency: an entity, a correspondence
// cluster, the per-edition observations, and the classified
// disagreement.
type Finding struct {
	// Entity is the canonical entity key (the lexicographically smallest
	// "lang:Title" across the linked editions).
	Entity string `json:"entity"`
	// Titles lists the entity's article titles per audited edition.
	Titles map[wiki.Language]string `json:"titles"`
	// Cluster is the correspondence cluster id the compared attributes
	// belong to.
	Cluster int `json:"cluster"`
	// Kind classifies the disagreement.
	Kind Kind `json:"kind"`
	// Magnitude in [0, 1] grades how far apart the values are,
	// independent of match confidence.
	Magnitude float64 `json:"magnitude"`
	// Confidence is the bottleneck confidence of the correspondence
	// connecting the compared attributes.
	Confidence float64 `json:"confidence"`
	// Severity ranks the finding: Magnitude discounted by Confidence, so
	// low-confidence matches don't raise high-severity alarms.
	Severity float64 `json:"severity"`
	// Detail is a one-line human-readable explanation.
	Detail string `json:"detail"`
	// Values lists the per-edition observations behind the finding.
	Values []Value `json:"values"`
}

// Options tune a report.
type Options struct {
	// MinSeverity drops findings scoring below it.
	MinSeverity float64
	// Limit caps the report length after ranking (0 = unlimited).
	Limit int
}

// Report is the outcome of one audit run.
type Report struct {
	// Entities counts the cross-linked entity groups audited.
	Entities int `json:"entities"`
	// Compared counts cross-edition value comparisons performed.
	Compared int `json:"compared"`
	// Findings is ranked by severity descending (ties: entity, cluster).
	Findings []Finding `json:"findings"`
}

// severity folds correspondence confidence into a magnitude. The floor
// keeps even zero-confidence disagreements visible at half weight.
func severity(magnitude, confidence float64) float64 {
	return magnitude * (0.5 + 0.5*confidence)
}

// Run audits every cross-linked entity group in the corpus against the
// correspondence clusters and returns the ranked inconsistency report.
// The result is deterministic for a fixed corpus and cluster set.
func Run(c *wiki.Corpus, clusters []multi.Cluster, opts Options) *Report {
	a := &auditor{
		corpus:    c,
		clusters:  clusters,
		memberOf:  make(map[multi.Attr]int),
		confOf:    make(map[int]map[[2]multi.Attr]float64),
		anchors:   buildAnchorDict(c),
		typeNames: make(map[int]map[wiki.Language]map[string][]string),
	}
	for i := range clusters {
		cl := &clusters[i]
		names := make(map[wiki.Language]map[string][]string)
		for _, m := range cl.Members {
			a.memberOf[m] = i
			byType := names[m.Lang]
			if byType == nil {
				byType = make(map[string][]string)
				names[m.Lang] = byType
			}
			byType[m.Type] = append(byType[m.Type], m.Name)
		}
		a.typeNames[i] = names
		conf := make(map[[2]multi.Attr]float64)
		for _, corr := range cl.Correspondences {
			conf[[2]multi.Attr{corr.A, corr.B}] = corr.Confidence
			conf[[2]multi.Attr{corr.B, corr.A}] = corr.Confidence
		}
		a.confOf[i] = conf
	}

	report := &Report{}
	for _, group := range entityGroups(c) {
		report.Entities++
		a.auditGroup(group, report)
	}
	sort.Slice(report.Findings, func(i, j int) bool {
		x, y := &report.Findings[i], &report.Findings[j]
		if x.Severity != y.Severity {
			return x.Severity > y.Severity
		}
		if x.Entity != y.Entity {
			return x.Entity < y.Entity
		}
		return x.Cluster < y.Cluster
	})
	if opts.MinSeverity > 0 {
		keep := report.Findings[:0]
		for _, f := range report.Findings {
			if f.Severity >= opts.MinSeverity {
				keep = append(keep, f)
			}
		}
		report.Findings = keep
	}
	if opts.Limit > 0 && len(report.Findings) > opts.Limit {
		report.Findings = report.Findings[:opts.Limit]
	}
	return report
}

// auditor carries the indexes one Run builds once.
type auditor struct {
	corpus   *wiki.Corpus
	clusters []multi.Cluster
	// memberOf maps an attribute node to its cluster.
	memberOf map[multi.Attr]int
	// confOf holds per-cluster correspondence confidences, both
	// orientations.
	confOf map[int]map[[2]multi.Attr]float64
	// anchors is the corpus-wide anchor-text dictionary: per language,
	// the link target an anchor most often points to. It resolves
	// unlinked alias mentions ("USA") the way the paper's dictionary
	// builder resolves anchor heterogeneity.
	anchors map[wiki.Language]map[string]string
	// typeNames lists, per cluster, the member attribute names by
	// language and entity type (for missing-value detection).
	typeNames map[int]map[wiki.Language]map[string][]string
}

// entityGroups enumerates the cross-linked entity groups: connected
// components of the cross-language link graph restricted to articles
// with infoboxes, keyed deterministically.
func entityGroups(c *wiki.Corpus) []map[wiki.Language]*wiki.Article {
	seen := make(map[wiki.Key]bool)
	var groups []map[wiki.Language]*wiki.Article
	for _, lang := range c.Languages() {
		for _, a := range c.Articles(lang) {
			if a.Infobox == nil || seen[a.Key()] {
				continue
			}
			group := map[wiki.Language]*wiki.Article{a.Language: a}
			queue := []*wiki.Article{a}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, link := range cur.SortedCrossLinks() {
					if _, ok := group[link.Language]; ok {
						continue
					}
					other, ok := c.Get(link.Language, link.Title)
					if !ok || other.Infobox == nil {
						continue
					}
					group[link.Language] = other
					queue = append(queue, other)
				}
			}
			for _, art := range group {
				seen[art.Key()] = true
			}
			if len(group) >= 2 {
				groups = append(groups, group)
			}
		}
	}
	return groups
}

// buildAnchorDict scans every value link in the corpus and records, per
// language, the target each anchor text most often names (ties break
// lexicographically).
func buildAnchorDict(c *wiki.Corpus) map[wiki.Language]map[string]string {
	type vote struct {
		target string
		n      int
	}
	counts := make(map[wiki.Language]map[string]map[string]int)
	for _, lang := range c.Languages() {
		byAnchor := make(map[string]map[string]int)
		counts[lang] = byAnchor
		for _, a := range c.Articles(lang) {
			if a.Infobox == nil {
				continue
			}
			for _, av := range a.Infobox.Attrs {
				for _, l := range av.Links {
					if l.Anchor == "" || l.Anchor == l.Target {
						continue
					}
					m := byAnchor[l.Anchor]
					if m == nil {
						m = make(map[string]int)
						byAnchor[l.Anchor] = m
					}
					m[l.Target]++
				}
			}
		}
	}
	out := make(map[wiki.Language]map[string]string, len(counts))
	for lang, byAnchor := range counts {
		dict := make(map[string]string, len(byAnchor))
		for anchor, targets := range byAnchor {
			best := vote{}
			for target, n := range targets {
				if n > best.n || (n == best.n && target < best.target) {
					best = vote{target, n}
				}
			}
			dict[anchor] = best.target
		}
		out[lang] = dict
	}
	return out
}

// part is one comma-separated component of a value, with its typed
// normal form and the link target its anchor carries, if any.
type part struct {
	raw    string
	norm   text.NormalizedValue
	target string
}

// observation is one edition's value for one cluster attribute.
type observation struct {
	lang  wiki.Language
	attr  string // normalized surface name
	raw   string
	parts []part
}

func (o *observation) normString() string {
	outs := make([]string, len(o.parts))
	for i, p := range o.parts {
		outs[i] = p.norm.Canonical()
	}
	return strings.Join(outs, ", ")
}

// splitValue cuts a raw infobox value into parts and attaches link
// targets by anchor text.
func splitValue(av wiki.AttributeValue) []part {
	targets := make(map[string]string, len(av.Links))
	for _, l := range av.Links {
		if _, ok := targets[l.Anchor]; !ok {
			targets[l.Anchor] = l.Target
		}
	}
	raws := strings.Split(av.Text, ", ")
	parts := make([]part, 0, len(raws))
	for _, r := range raws {
		if r == "" {
			continue
		}
		parts = append(parts, part{raw: r, norm: text.NormalizeValue(r), target: targets[r]})
	}
	return parts
}

// auditGroup audits one cross-linked entity group against every cluster
// it has observations for.
func (a *auditor) auditGroup(group map[wiki.Language]*wiki.Article, report *Report) {
	langs := make([]wiki.Language, 0, len(group))
	for l := range group {
		langs = append(langs, l)
	}
	sort.Slice(langs, func(i, j int) bool { return langs[i] < langs[j] })

	entity := string(langs[0]) + ":" + group[langs[0]].Title
	for _, l := range langs {
		if k := group[l].Key().String(); k < entity {
			entity = k
		}
	}
	titles := make(map[wiki.Language]string, len(langs))
	for _, l := range langs {
		titles[l] = group[l].Title
	}

	// Collect observations per cluster.
	obs := make(map[int]map[wiki.Language][]observation)
	var clusterIDs []int
	for _, lang := range langs {
		art := group[lang]
		for _, av := range art.Infobox.Attrs {
			name := text.Normalize(av.Name)
			ci, ok := a.memberOf[multi.Attr{Lang: lang, Type: art.Type, Name: name}]
			if !ok {
				continue
			}
			byLang := obs[ci]
			if byLang == nil {
				byLang = make(map[wiki.Language][]observation)
				obs[ci] = byLang
				clusterIDs = append(clusterIDs, ci)
			}
			byLang[lang] = append(byLang[lang], observation{
				lang: lang, attr: name, raw: av.Text, parts: splitValue(av),
			})
		}
	}
	sort.Ints(clusterIDs)

	for _, ci := range clusterIDs {
		if f, compared := a.auditCluster(group, langs, ci, obs[ci]); true {
			report.Compared += compared
			if f != nil {
				f.Entity = entity
				f.Titles = titles
				report.Findings = append(report.Findings, *f)
			}
		}
	}
}

// auditCluster compares one entity's observations for one cluster across
// editions and returns the most severe disagreement, if any.
func (a *auditor) auditCluster(group map[wiki.Language]*wiki.Article, langs []wiki.Language, ci int, byLang map[wiki.Language][]observation) (*Finding, int) {
	obsLangs := make([]wiki.Language, 0, len(byLang))
	for l := range byLang {
		obsLangs = append(obsLangs, l)
	}
	sort.Slice(obsLangs, func(i, j int) bool { return obsLangs[i] < obsLangs[j] })

	compared := 0
	var worst *Finding
	consider := func(f *Finding) {
		if f == nil {
			return
		}
		if worst == nil || f.Severity > worst.Severity {
			worst = f
		}
	}

	// Cross-edition value comparison over every observed language pair.
	for i, la := range obsLangs {
		for _, lb := range obsLangs[i+1:] {
			compared++
			consider(a.comparePair(group, ci, la, byLang[la], lb, byLang[lb]))
		}
	}

	// Missing values: an edition whose infobox type has matched
	// attribute names in this cluster but observed none of them, while a
	// linked edition did.
	if len(obsLangs) > 0 {
		for _, l := range langs {
			if len(byLang[l]) > 0 {
				continue
			}
			names := a.typeNames[ci][l][group[l].Type]
			if len(names) == 0 {
				continue
			}
			sort.Strings(names)
			other := obsLangs[0]
			ref := byLang[other][0]
			conf := a.pairConfidence(ci, multi.Attr{Lang: l, Type: group[l].Type, Name: names[0]},
				multi.Attr{Lang: other, Type: group[other].Type, Name: ref.attr})
			mag := 0.3
			f := &Finding{
				Cluster:    ci,
				Kind:       Missing,
				Magnitude:  mag,
				Confidence: conf,
				Severity:   severity(mag, conf),
				Detail: fmt.Sprintf("%s has no %q while %s has %q = %q",
					l, names[0], other, ref.attr, ref.raw),
				Values: []Value{
					{Lang: l, Attr: names[0]},
					{Lang: other, Attr: ref.attr, Raw: ref.raw, Norm: ref.normString()},
				},
			}
			consider(f)
		}
	}
	return worst, compared
}

// pairConfidence looks up the correspondence confidence between two
// member nodes (max over orientations; 0 when the cluster connects them
// only through nodes outside these exact attrs).
func (a *auditor) pairConfidence(ci int, x, y multi.Attr) float64 {
	return a.confOf[ci][[2]multi.Attr{x, y}]
}

// comparePair compares two editions' observations for one cluster. With
// several observations per side (intra-language synonym attributes) the
// least severe pairing wins: the editions agree if any pairing agrees.
func (a *auditor) comparePair(group map[wiki.Language]*wiki.Article, ci int, la wiki.Language, oa []observation, lb wiki.Language, ob []observation) *Finding {
	var best *Finding
	agreed := false
	for _, x := range oa {
		for _, y := range ob {
			kind, mag, detail := a.compareValues(group, la, x, lb, y)
			if kind == "" {
				agreed = true
				continue
			}
			conf := a.pairConfidence(ci,
				multi.Attr{Lang: la, Type: group[la].Type, Name: x.attr},
				multi.Attr{Lang: lb, Type: group[lb].Type, Name: y.attr})
			f := &Finding{
				Cluster:    ci,
				Kind:       kind,
				Magnitude:  mag,
				Confidence: conf,
				Severity:   severity(mag, conf),
				Detail:     detail,
				Values: []Value{
					{Lang: la, Attr: x.attr, Raw: x.raw, Norm: x.normString()},
					{Lang: lb, Attr: y.attr, Raw: y.raw, Norm: y.normString()},
				},
			}
			if best == nil || f.Severity < best.Severity {
				best = f
			}
		}
	}
	if agreed {
		return nil
	}
	return best
}

// compareValues compares two observations part-wise. It returns kind ""
// when the values are consistent; otherwise the dominant disagreement
// with its magnitude and a human-readable detail line.
func (a *auditor) compareValues(group map[wiki.Language]*wiki.Article, la wiki.Language, x observation, lb wiki.Language, y observation) (Kind, float64, string) {
	pa, pb := x.parts, y.parts
	if len(pa) == 0 || len(pb) == 0 {
		return "", 0, ""
	}
	usedB := make([]bool, len(pb))
	var unmatchedA []part
	for _, p := range pa {
		matched := false
		for j := range pb {
			if usedB[j] {
				continue
			}
			if ok, _, _ := a.matchParts(group, la, p, lb, pb[j]); ok {
				usedB[j] = true
				matched = true
				break
			}
		}
		if !matched {
			unmatchedA = append(unmatchedA, p)
		}
	}
	var unmatchedB []part
	for j := range pb {
		if !usedB[j] {
			unmatchedB = append(unmatchedB, pb[j])
		}
	}
	if len(unmatchedA) == 0 || len(unmatchedB) == 0 {
		// Fully matched, or only surplus atoms on one side (dropped or
		// misfiled atoms — noise, not a value contradiction).
		return "", 0, ""
	}
	// Pair leftovers, preferring same-kind counterparts, and report the
	// most severe disagreement.
	var kind Kind
	var mag float64
	detail := ""
	for _, p := range unmatchedA {
		q, ok := closestKind(p, unmatchedB)
		if !ok {
			continue
		}
		_, k, m := a.matchParts(group, la, p, lb, q)
		if k != "" && m > mag {
			kind, mag = k, m
			detail = fmt.Sprintf("%s %s=%q vs %s %s=%q (%s)", la, x.attr, p.raw, lb, y.attr, q.raw, k)
		}
	}
	if kind == "" {
		return "", 0, ""
	}
	return kind, mag, detail
}

// closestKind picks the candidate whose value kind matches p's, falling
// back to the first candidate.
func closestKind(p part, candidates []part) (part, bool) {
	if len(candidates) == 0 {
		return part{}, false
	}
	for _, q := range candidates {
		if q.norm.Kind == p.norm.Kind {
			return q, true
		}
	}
	return candidates[0], true
}

// matchParts compares two value parts. consistent reports agreement;
// otherwise kind and magnitude classify the disagreement.
func (a *auditor) matchParts(group map[wiki.Language]*wiki.Article, la wiki.Language, p part, lb wiki.Language, q part) (consistent bool, kind Kind, mag float64) {
	np, nq := p.norm, q.norm
	numeric := func(v text.NormalizedValue) bool {
		return v.Kind == text.ValueNumber || v.Kind == text.ValueQuantity
	}
	switch {
	case np.Kind == text.ValueDate && nq.Kind == text.ValueDate:
		if np.Year == nq.Year && np.Month == nq.Month && np.Day == nq.Day {
			return true, "", 0
		}
		return false, Contradiction, 1
	case numeric(np) && numeric(nq):
		if np.Kind == text.ValueQuantity && nq.Kind == text.ValueQuantity && np.Unit != nq.Unit {
			return false, UnitMismatch, 1
		}
		if approxEqual(np.Number, nq.Number) {
			return true, "", 0
		}
		if approxEqual(np.Mantissa, nq.Mantissa) && np.Scale != nq.Scale {
			return false, UnitMismatch, 1
		}
		rel := math.Abs(np.Number-nq.Number) / math.Max(math.Abs(np.Number), math.Abs(nq.Number))
		return false, NumericDrift, 0.7 + 0.3*math.Min(1, rel)
	case np.Kind == text.ValueDate && numeric(nq):
		if nq.Scale == 1 && approxEqual(nq.Number, float64(np.Year)) {
			return true, "", 0
		}
		return false, Contradiction, 0.8
	case numeric(np) && nq.Kind == text.ValueDate:
		if np.Scale == 1 && approxEqual(np.Number, float64(nq.Year)) {
			return true, "", 0
		}
		return false, Contradiction, 0.8
	default:
		return a.matchText(group, la, p, lb, q)
	}
}

// matchText reconciles two free-text parts: exact canonical equality,
// the entity's own title, cross-language link resolution (direct links,
// article-title lookup, the anchor dictionary), then string similarity.
// Unreconciled text caps at magnitude 0.45 — translation and aliasing
// make free text inherently fuzzier evidence than numbers or dates.
func (a *auditor) matchText(group map[wiki.Language]*wiki.Article, la wiki.Language, p part, lb wiki.Language, q part) (bool, Kind, float64) {
	ca, cb := p.norm.Canonical(), q.norm.Canonical()
	if ca == cb {
		return true, "", 0
	}
	// The "name"-style attribute holds each edition's own (translated)
	// title; different surfaces are not a contradiction.
	if p.raw == group[la].Title && q.raw == group[lb].Title {
		return true, "", 0
	}
	ta, okA := a.resolveTitle(la, p)
	tb, okB := a.resolveTitle(lb, q)
	if okA {
		if x, ok := a.crossTitle(la, ta, lb); ok && (x == tb || x == q.raw) {
			return true, "", 0
		}
	}
	if okB {
		if x, ok := a.crossTitle(lb, tb, la); ok && (x == ta || x == p.raw) {
			return true, "", 0
		}
	}
	sim := math.Max(text.TrigramSimilarity(ca, cb), text.JaccardTokens(ca, cb))
	if sim >= 0.5 {
		return true, "", 0
	}
	return false, Contradiction, 0.45 * (1 - sim)
}

// resolveTitle maps a value part to the article title it names in its
// own language: the link target when linked, the part itself when it
// titles an article, else the anchor dictionary.
func (a *auditor) resolveTitle(lang wiki.Language, p part) (string, bool) {
	if p.target != "" {
		return p.target, true
	}
	if _, ok := a.corpus.Get(lang, p.raw); ok {
		return p.raw, true
	}
	if t, ok := a.anchors[lang][p.raw]; ok {
		return t, true
	}
	return "", false
}

// crossTitle follows cross-language links from (lang, title) to the
// other edition, in either direction.
func (a *auditor) crossTitle(lang wiki.Language, title string, other wiki.Language) (string, bool) {
	if art, ok := a.corpus.Get(lang, title); ok {
		if x, ok := art.CrossLink(other); ok {
			return x, true
		}
	}
	if x, ok := a.corpus.ReverseCrossLink(lang, title, other); ok {
		return x, true
	}
	return "", false
}

// approxEqual compares magnitudes with a tiny relative tolerance.
func approxEqual(x, y float64) bool {
	if x == y {
		return true
	}
	d := math.Abs(x - y)
	return d <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
}
