package audit_test

import (
	"context"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/synth"
	"repro/internal/wiki"
)

// corpusMatcher adapts a core.Matcher over a fixed corpus to the
// multi.PairMatcher interface the batch runner wants.
type corpusMatcher struct {
	c *wiki.Corpus
	m *core.Matcher
}

func (cm corpusMatcher) Match(ctx context.Context, pair wiki.LanguagePair) (*core.Result, error) {
	return cm.m.MatchCtx(ctx, cm.c, pair, nil)
}

// buildClusters runs the full pivot-mode batch match over the corpus and
// assembles correspondence clusters.
func buildClusters(t *testing.T, c *wiki.Corpus) []multi.Cluster {
	t.Helper()
	cm := corpusMatcher{c: c, m: core.NewMatcher(core.DefaultConfig())}
	batch, err := multi.Run(context.Background(), cm, c.Languages(), multi.Options{Mode: multi.ModePivot})
	if err != nil {
		t.Fatalf("multi.Run: %v", err)
	}
	return multi.BuildClusters(batch.Plan, batch.Outcomes)
}

// TestAuditDetectsInjectedInconsistencies is the subsystem's acceptance
// bar: on a synthetic corpus with a known injection ledger, the detector
// must reach 0.85 precision and 0.75 recall.
func TestAuditDetectsInjectedInconsistencies(t *testing.T) {
	if testing.Short() {
		t.Skip("full pivot match in -short mode")
	}
	corpus, truth, err := synth.Generate(synth.AuditEvalConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(truth.Injected) == 0 {
		t.Fatal("AuditEvalConfig produced no injections")
	}
	clusters := buildClusters(t, corpus)
	report := audit.Run(corpus, clusters, audit.Options{})
	if report.Entities == 0 || report.Compared == 0 {
		t.Fatalf("degenerate report: %+v", report)
	}

	const minSeverity = 0.5
	res := audit.Evaluate(report.Findings, truth, minSeverity)
	t.Logf("injected=%d findings=%d TP=%d FP=%d missed=%d precision=%.3f recall=%.3f",
		len(truth.Injected), len(report.Findings), res.TP, res.FP, res.Missed, res.Precision, res.Recall)
	if res.Precision < 0.85 {
		t.Errorf("precision = %.3f, want >= 0.85", res.Precision)
	}
	if res.Recall < 0.75 {
		t.Errorf("recall = %.3f, want >= 0.75", res.Recall)
	}
}

// TestAuditCleanCorpusQuiet: with no noise and no injections, no
// high-severity value disagreements should survive.
func TestAuditCleanCorpusQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("full pivot match in -short mode")
	}
	cfg := synth.AuditEvalConfig()
	cfg.InjectNumberProb = 0
	cfg.InjectDateProb = 0
	cfg.InjectUnitProb = 0
	cfg.InjectDropProb = 0
	corpus, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	clusters := buildClusters(t, corpus)
	report := audit.Run(corpus, clusters, audit.Options{MinSeverity: 0.5})
	for _, f := range report.Findings {
		if f.Kind != audit.Missing {
			t.Errorf("clean corpus produced %s finding (severity %.2f): %s", f.Kind, f.Severity, f.Detail)
		}
	}
}

func TestAuditDeterministic(t *testing.T) {
	corpus, _, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	clusters := buildClusters(t, corpus)
	a := audit.Run(corpus, clusters, audit.Options{})
	b := audit.Run(corpus, clusters, audit.Options{})
	if len(a.Findings) != len(b.Findings) || a.Entities != b.Entities || a.Compared != b.Compared {
		t.Fatalf("nondeterministic report: %d/%d vs %d/%d", a.Entities, len(a.Findings), b.Entities, len(b.Findings))
	}
	for i := range a.Findings {
		x, y := a.Findings[i], b.Findings[i]
		if x.Entity != y.Entity || x.Cluster != y.Cluster || x.Kind != y.Kind || x.Severity != y.Severity {
			t.Fatalf("finding %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestAuditOptions(t *testing.T) {
	corpus, _, err := synth.Generate(synth.AuditEvalConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	clusters := buildClusters(t, corpus)
	full := audit.Run(corpus, clusters, audit.Options{})
	limited := audit.Run(corpus, clusters, audit.Options{Limit: 3})
	if len(limited.Findings) > 3 {
		t.Errorf("limit ignored: %d findings", len(limited.Findings))
	}
	gated := audit.Run(corpus, clusters, audit.Options{MinSeverity: 0.9})
	for _, f := range gated.Findings {
		if f.Severity < 0.9 {
			t.Errorf("severity gate ignored: %.3f", f.Severity)
		}
	}
	// Ranking: severity non-increasing.
	for i := 1; i < len(full.Findings); i++ {
		if full.Findings[i].Severity > full.Findings[i-1].Severity {
			t.Errorf("findings not ranked at %d", i)
		}
	}
}
