package query

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/text"
	"repro/internal/wiki"
)

// Answer is one result row: the answer article (from the query's first
// block) with its projected values and a retrieval score used for
// ranking.
type Answer struct {
	Article    *wiki.Article
	Projected  map[string]string
	Score      float64
	JoinTitles []string // titles of join partners, for inspection
}

// Engine executes c-queries over a corpus in one language.
type Engine struct {
	c    *wiki.Corpus
	lang wiki.Language
	// typeIndex maps normalized type names to their article lists.
	typeIndex map[string][]*wiki.Article
	// linkIndex maps an article key to the set of titles it links to.
	linkIndex map[wiki.Key]map[string]bool
}

// NewEngine indexes the corpus for querying in one language.
func NewEngine(c *wiki.Corpus, lang wiki.Language) *Engine {
	e := &Engine{
		c: c, lang: lang,
		typeIndex: make(map[string][]*wiki.Article),
		linkIndex: make(map[wiki.Key]map[string]bool),
	}
	for _, typ := range c.Types(lang) {
		e.typeIndex[text.Normalize(typ)] = c.OfType(lang, typ)
	}
	for _, a := range c.Articles(lang) {
		if a.Infobox == nil {
			continue
		}
		links := make(map[string]bool)
		for _, av := range a.Infobox.Attrs {
			for _, l := range av.Links {
				links[l.Target] = true
			}
		}
		e.linkIndex[a.Key()] = links
	}
	return e
}

// Lang returns the engine's query language.
func (e *Engine) Lang() wiki.Language { return e.lang }

// Run executes the query and returns up to limit ranked answers.
func (e *Engine) Run(q *Query, limit int) []Answer {
	if len(q.Blocks) == 0 {
		return nil
	}
	// Candidates per block.
	cands := make([][]*wiki.Article, len(q.Blocks))
	for i, b := range q.Blocks {
		cands[i] = e.blockCandidates(b)
	}
	var answers []Answer
	for _, main := range cands[0] {
		joined := true
		var joinTitles []string
		for bi := 1; bi < len(q.Blocks); bi++ {
			partner := ""
			for _, other := range cands[bi] {
				if e.linked(main, other) {
					partner = other.Title
					break
				}
			}
			if partner == "" {
				joined = false
				break
			}
			joinTitles = append(joinTitles, partner)
		}
		if !joined {
			continue
		}
		ans := Answer{Article: main, Projected: map[string]string{}, JoinTitles: joinTitles}
		// Score: satisfied projections plus join count; rich infoboxes
		// rank slightly higher, titles break ties deterministically.
		for _, c := range q.Blocks[0].Constraints {
			if !c.IsProjection() {
				continue
			}
			if av, ok := findAttr(main.Infobox, c.Attrs); ok {
				ans.Projected[c.Attrs[0]] = av.Text
				ans.Score++
			}
		}
		ans.Score += float64(len(joinTitles)) + float64(main.Infobox.Len())/100
		answers = append(answers, ans)
	}
	sort.SliceStable(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score > answers[j].Score
		}
		return answers[i].Article.Title < answers[j].Article.Title
	})
	if limit > 0 && len(answers) > limit {
		answers = answers[:limit]
	}
	return answers
}

// blockCandidates returns the articles of the block's type satisfying
// every filtering constraint.
func (e *Engine) blockCandidates(b Block) []*wiki.Article {
	var out []*wiki.Article
	for _, a := range e.typeIndex[b.Type] {
		if a.Infobox == nil {
			continue
		}
		ok := true
		for _, c := range b.Constraints {
			if c.IsProjection() {
				continue
			}
			if !satisfies(a.Infobox, c, e.lang) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, a)
		}
	}
	return out
}

// linked reports whether either article's infobox links to the other.
func (e *Engine) linked(a, b *wiki.Article) bool {
	if e.linkIndex[a.Key()][b.Title] || e.linkIndex[b.Key()][a.Title] {
		return true
	}
	return false
}

// findAttr locates the first present attribute among alternatives.
func findAttr(ib *wiki.Infobox, attrs []string) (wiki.AttributeValue, bool) {
	for _, av := range ib.Attrs {
		n := text.Normalize(av.Name)
		for _, want := range attrs {
			if n == want {
				return av, true
			}
		}
	}
	return wiki.AttributeValue{}, false
}

// satisfies checks a filtering constraint against an infobox.
func satisfies(ib *wiki.Infobox, c Constraint, lang wiki.Language) bool {
	av, ok := findAttr(ib, c.Attrs)
	if !ok {
		return false
	}
	switch c.Op {
	case OpEq:
		want := text.Normalize(c.Value)
		for _, term := range sim.ValueTerms(lang, av.Text) {
			if term == want {
				return true
			}
		}
		// Also match against link anchors/targets ("Oscar" inside a
		// linked award name).
		for _, l := range av.Links {
			if text.Normalize(l.Target) == want || text.Normalize(l.Anchor) == want {
				return true
			}
		}
		return false
	case OpLt, OpGt, OpLe, OpGe:
		bound, err := strconv.ParseFloat(c.Value, 64)
		if err != nil {
			return false
		}
		v, ok := NumericValue(lang, av.Text)
		if !ok {
			return false
		}
		switch c.Op {
		case OpLt:
			return v < bound
		case OpGt:
			return v > bound
		case OpLe:
			return v <= bound
		case OpGe:
			return v >= bound
		}
	}
	return false
}

// NumericValue extracts a comparable number from an attribute value:
// dates yield their year, money strings apply their magnitude word, and
// otherwise the first number wins.
func NumericValue(lang wiki.Language, value string) (float64, bool) {
	terms := sim.ValueTerms(lang, value)
	if len(terms) == 0 {
		return 0, false
	}
	// Dates: ISO terms contribute their year.
	for _, t := range terms {
		if len(t) == 10 && t[4] == '-' && t[7] == '-' {
			if y, err := strconv.Atoi(t[:4]); err == nil {
				return float64(y), true
			}
		}
	}
	norm := text.Normalize(value)
	mult := 1.0
	for _, m := range []struct {
		word string
		f    float64
	}{
		{"billion", 1e9}, {"bilhoes", 1e9}, {"bilhao", 1e9}, {"ty", 1e9},
		{"million", 1e6}, {"milhoes", 1e6}, {"milhao", 1e6}, {"trieu", 1e6},
	} {
		if strings.Contains(norm, m.word) {
			mult = m.f
			break
		}
	}
	for _, t := range terms {
		for _, run := range strings.Fields(t) {
			if v, err := strconv.ParseFloat(run, 64); err == nil {
				return v * mult, true
			}
		}
		if v, err := strconv.ParseFloat(t, 64); err == nil {
			return v * mult, true
		}
	}
	// Fall back to any digit run in the normalized value.
	runStart := -1
	for i := 0; i <= len(norm); i++ {
		isD := i < len(norm) && norm[i] >= '0' && norm[i] <= '9'
		if isD && runStart < 0 {
			runStart = i
		}
		if !isD && runStart >= 0 {
			if v, err := strconv.ParseFloat(norm[runStart:i], 64); err == nil {
				return v * mult, true
			}
			runStart = -1
		}
	}
	return 0, false
}
