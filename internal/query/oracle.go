package query

import (
	"strconv"

	"repro/internal/synth"
	"repro/internal/text"
	"repro/internal/wiki"
)

// Oracle is the deterministic stand-in for the paper's two human
// evaluators: it judges an answer against a query's canonical intent
// using the generator's ground-truth entity records, on the paper's
// five-point relevance scale (0–4). Two grader perspectives — one
// rounding, one strict — play the role of the two evaluators; the
// cumulative-gain computation averages them.
type Oracle struct {
	truth   *synth.GroundTruth
	byTitle map[wiki.Key]*synth.Entity
	// refs maps an entity ID to the entities referencing it through
	// KindWork atoms (films referencing their starring actors, …).
	refs map[string][]*synth.Entity
}

// NewOracle indexes the ground truth for scoring.
func NewOracle(truth *synth.GroundTruth) *Oracle {
	o := &Oracle{
		truth:   truth,
		byTitle: make(map[wiki.Key]*synth.Entity),
		refs:    make(map[string][]*synth.Entity),
	}
	for _, ents := range truth.Entities {
		for _, e := range ents {
			for lang := range e.Langs {
				o.byTitle[wiki.Key{Language: lang, Title: e.Titles[lang]}] = e
			}
			for _, atoms := range e.Values {
				for _, a := range atoms {
					if a.Work != nil {
						o.refs[a.Work.ID] = append(o.refs[a.Work.ID], e)
					}
				}
			}
		}
	}
	return o
}

// Relevance scores an answer article against an intent: the fraction of
// satisfied canonical conditions scaled to the 0–4 relevance scale.
// Answers that do not correspond to an entity of the intended type score
// 0.
func (o *Oracle) Relevance(lang wiki.Language, title string, intent Intent) float64 {
	e, ok := o.byTitle[wiki.Key{Language: lang, Title: title}]
	if !ok || e.Type != intent.MainType {
		return 0
	}
	total, satisfied := 0, 0
	for _, cond := range intent.Main {
		total++
		if entitySatisfies(e, cond) {
			satisfied++
		}
	}
	if intent.JoinType != "" {
		total++
		if o.joinSatisfied(e, intent) {
			satisfied++
		}
	}
	if total == 0 {
		return 4
	}
	return 4 * float64(satisfied) / float64(total)
}

// GraderScores returns the two evaluators' integer scores for a
// relevance value.
func GraderScores(rel float64) (a, b int) {
	a = int(rel + 0.5) // rounding grader
	b = int(rel)       // strict grader
	if a > 4 {
		a = 4
	}
	return a, b
}

// joinSatisfied checks whether some entity of the intent's join type,
// related to e in either reference direction, satisfies every join
// condition.
func (o *Oracle) joinSatisfied(e *synth.Entity, intent Intent) bool {
	check := func(candidate *synth.Entity) bool {
		if candidate.Type != intent.JoinType {
			return false
		}
		for _, cond := range intent.Join {
			if !entitySatisfies(candidate, cond) {
				return false
			}
		}
		return true
	}
	// Forward: e references the join entity.
	for _, atoms := range e.Values {
		for _, a := range atoms {
			if a.Work != nil && check(a.Work) {
				return true
			}
		}
	}
	// Reverse: the join entity references e.
	for _, other := range o.refs[e.ID] {
		if check(other) {
			return true
		}
	}
	return false
}

// entitySatisfies evaluates a canonical condition against an entity's
// ground-truth values.
func entitySatisfies(e *synth.Entity, cond CanonCond) bool {
	atoms := e.Values[cond.Attr]
	switch cond.Op {
	case OpEq:
		want := text.Normalize(cond.Value)
		for _, a := range atoms {
			if text.Normalize(atomEnglish(a)) == want {
				return true
			}
		}
		return false
	case OpLt, OpGt, OpLe, OpGe:
		bound, err := strconv.ParseFloat(cond.Value, 64)
		if err != nil {
			return false
		}
		for _, a := range atoms {
			v, ok := atomNumber(a)
			if !ok {
				continue
			}
			switch cond.Op {
			case OpLt:
				if v < bound {
					return true
				}
			case OpGt:
				if v > bound {
					return true
				}
			case OpLe:
				if v <= bound {
					return true
				}
			case OpGe:
				if v >= bound {
					return true
				}
			}
		}
	}
	return false
}

// atomEnglish renders an atom's canonical English form.
func atomEnglish(a synth.Atom) string {
	switch {
	case a.Ref != nil:
		return a.Ref.Title(wiki.English)
	case a.Work != nil:
		return a.Work.Title(wiki.English)
	case a.Term.EN != "" || a.Term.PT != "" || a.Term.VN != "":
		return a.Term.EN
	}
	return a.Lit
}

// atomNumber extracts the comparable number behind an atom: dates yield
// their year, other literals parse directly.
func atomNumber(a synth.Atom) (float64, bool) {
	lit := a.Lit
	if lit == "" {
		return 0, false
	}
	if len(lit) == 10 && lit[4] == '-' && lit[7] == '-' {
		y, err := strconv.Atoi(lit[:4])
		return float64(y), err == nil
	}
	v, err := strconv.ParseFloat(lit, 64)
	return v, err == nil
}

// CGPoint pairs an answer rank with cumulative gain.
type CGSeries struct {
	Name string
	CG   []float64 // CG[k-1] = cumulative gain of the top k answers
}

// QueryGain runs one query through an engine and scores the top answers,
// returning the per-rank relevance (averaged over the two graders) padded
// with zeros to k entries.
func (o *Oracle) QueryGain(e *Engine, q *Query, intent Intent, k int) []float64 {
	rel := make([]float64, k)
	if q == nil || len(q.Blocks) == 0 {
		return rel
	}
	answers := e.Run(q, k)
	for i, ans := range answers {
		r := o.Relevance(e.Lang(), ans.Article.Title, intent)
		ga, gb := GraderScores(r)
		rel[i] = float64(ga+gb) / 2
	}
	return rel
}
