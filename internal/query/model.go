// Package query implements WikiQuery (Nguyen et al., WebDB 2010), the
// structured-query system used in the paper's case study (Section 5):
// c-queries over infoboxes, their execution against a corpus, their
// translation into another language through WikiMatch's derived attribute
// correspondences (with relaxation of untranslatable constraints), and
// the cumulative-gain evaluation of Figure 4.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/text"
)

// Op is a constraint operator.
type Op int

// Constraint operators. OpProject ("attr = ?") asks for the attribute's
// value in the answer instead of filtering.
const (
	OpProject Op = iota
	OpEq
	OpLt
	OpGt
	OpLe
	OpGe
)

// String renders the operator in c-query syntax.
func (o Op) String() string {
	switch o {
	case OpProject:
		return "=?"
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	}
	return "?"
}

// Constraint restricts one attribute of a block. Attrs lists alternative
// attribute names ("nascimento|data de nascimento"), normalized.
type Constraint struct {
	Attrs []string
	Op    Op
	Value string
}

// IsProjection reports whether the constraint only projects a value.
func (c Constraint) IsProjection() bool { return c.Op == OpProject }

// Block constrains one entity type ("filme(título=?, receita>10)").
// Type is normalized.
type Block struct {
	Type        string
	Constraints []Constraint
}

// Query is a conjunction of blocks. The first block's entities are the
// answers; the remaining blocks filter them through link relationships.
type Query struct {
	Blocks []Block
}

// String renders the query in c-query syntax.
func (q *Query) String() string {
	var blocks []string
	for _, b := range q.Blocks {
		var cs []string
		for _, c := range b.Constraints {
			attr := strings.Join(c.Attrs, "|")
			if c.IsProjection() {
				cs = append(cs, attr+"=?")
			} else {
				cs = append(cs, fmt.Sprintf("%s%s%q", attr, c.Op, c.Value))
			}
		}
		blocks = append(blocks, fmt.Sprintf("%s(%s)", b.Type, strings.Join(cs, ", ")))
	}
	return strings.Join(blocks, " and ")
}

// Parse reads a c-query: blocks of the form `type(constraint, …)` joined
// by ` and `. Constraints are `attr=?`, `attr="value"`, or
// `attr1|attr2 op value` with op ∈ {=, <, >, <=, >=}.
func Parse(s string) (*Query, error) {
	q := &Query{}
	for _, part := range strings.Split(s, " and ") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open < 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("query: malformed block %q", part)
		}
		b := Block{Type: text.Normalize(part[:open])}
		if b.Type == "" {
			return nil, fmt.Errorf("query: empty type in block %q", part)
		}
		body := part[open+1 : len(part)-1]
		for _, cs := range splitConstraints(body) {
			cs = strings.TrimSpace(cs)
			if cs == "" {
				continue
			}
			c, err := parseConstraint(cs)
			if err != nil {
				return nil, fmt.Errorf("query: block %q: %w", b.Type, err)
			}
			b.Constraints = append(b.Constraints, c)
		}
		q.Blocks = append(q.Blocks, b)
	}
	if len(q.Blocks) == 0 {
		return nil, fmt.Errorf("query: no blocks in %q", s)
	}
	return q, nil
}

// splitConstraints splits on commas outside quotes.
func splitConstraints(s string) []string {
	var parts []string
	inQuote := false
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	parts = append(parts, s[last:])
	return parts
}

// parseConstraint reads one constraint.
func parseConstraint(s string) (Constraint, error) {
	ops := []struct {
		tok string
		op  Op
	}{{"<=", OpLe}, {">=", OpGe}, {"=", OpEq}, {"<", OpLt}, {">", OpGt}}
	for _, o := range ops {
		idx := strings.Index(s, o.tok)
		if idx < 0 {
			continue
		}
		attrPart := strings.TrimSpace(s[:idx])
		valPart := strings.TrimSpace(s[idx+len(o.tok):])
		if attrPart == "" {
			return Constraint{}, fmt.Errorf("missing attribute in %q", s)
		}
		c := Constraint{}
		for _, a := range strings.Split(attrPart, "|") {
			if n := text.Normalize(a); n != "" {
				c.Attrs = append(c.Attrs, n)
			}
		}
		if len(c.Attrs) == 0 {
			return Constraint{}, fmt.Errorf("no valid attributes in %q", s)
		}
		if o.op == OpEq && valPart == "?" {
			c.Op = OpProject
			return c, nil
		}
		c.Op = o.op
		c.Value = strings.Trim(valPart, "\"")
		if c.Value == "" {
			return Constraint{}, fmt.Errorf("missing value in %q", s)
		}
		if c.Op != OpEq {
			if _, err := strconv.ParseFloat(strings.ReplaceAll(c.Value, " ", ""), 64); err != nil {
				return Constraint{}, fmt.Errorf("non-numeric comparison value %q", c.Value)
			}
		}
		return c, nil
	}
	return Constraint{}, fmt.Errorf("no operator in %q", s)
}
