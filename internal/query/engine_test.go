package query

import (
	"testing"

	"repro/internal/wiki"
)

// miniCorpus builds a tiny, fully controlled corpus for operator tests.
func miniCorpus(t *testing.T) *wiki.Corpus {
	t.Helper()
	c := wiki.NewCorpus()
	add := func(title string, attrs ...wiki.AttributeValue) {
		c.MustAdd(&wiki.Article{Language: wiki.English, Title: title, Type: "film",
			Infobox: &wiki.Infobox{Template: "Infobox film", Attrs: attrs}})
	}
	add("Old", wiki.AttributeValue{Name: "released", Text: "May 2, 1960"},
		wiki.AttributeValue{Name: "gross", Text: "$5 million"})
	add("New", wiki.AttributeValue{Name: "released", Text: "May 2, 1999"},
		wiki.AttributeValue{Name: "gross", Text: "$2 billion"})
	add("NoGross", wiki.AttributeValue{Name: "released", Text: "May 2, 1980"})
	return c
}

func run(t *testing.T, c *wiki.Corpus, src string) []Answer {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return NewEngine(c, wiki.English).Run(q, 10)
}

func titles(answers []Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = a.Article.Title
	}
	return out
}

func TestEngineComparisonOperators(t *testing.T) {
	c := miniCorpus(t)
	cases := []struct {
		query string
		want  []string
	}{
		{`film(released<1970)`, []string{"Old"}},
		{`film(released>1990)`, []string{"New"}},
		{`film(released<=1980)`, []string{"NoGross", "Old"}},
		{`film(released>=1980)`, []string{"New", "NoGross"}},
		{`film(gross>1000000000)`, []string{"New"}},
		{`film(gross<10000000)`, []string{"Old"}},
		{`film(gross>1)`, []string{"New", "Old"}}, // NoGross lacks the attribute
	}
	for _, cs := range cases {
		got := titles(run(t, c, cs.query))
		if len(got) != len(cs.want) {
			t.Errorf("%s → %v, want %v", cs.query, got, cs.want)
			continue
		}
		seen := map[string]bool{}
		for _, g := range got {
			seen[g] = true
		}
		for _, w := range cs.want {
			if !seen[w] {
				t.Errorf("%s missing %s (got %v)", cs.query, w, got)
			}
		}
	}
}

func TestEngineProjectionPopulatesAnswers(t *testing.T) {
	c := miniCorpus(t)
	answers := run(t, c, `film(gross=?)`)
	for _, a := range answers {
		if a.Article.Title == "NoGross" {
			continue
		}
		if a.Projected["gross"] == "" {
			t.Errorf("answer %s missing projected gross", a.Article.Title)
		}
	}
}

func TestEngineUnknownTypeReturnsNothing(t *testing.T) {
	c := miniCorpus(t)
	if got := run(t, c, `spaceship(name=?)`); len(got) != 0 {
		t.Errorf("answers = %v", titles(got))
	}
}

func TestEngineEqMatchesLinkTargets(t *testing.T) {
	c := wiki.NewCorpus()
	c.MustAdd(&wiki.Article{Language: wiki.English, Title: "F", Type: "film",
		Infobox: &wiki.Infobox{Template: "Infobox film", Attrs: []wiki.AttributeValue{
			{Name: "country", Text: "USA", Links: []wiki.Link{{Target: "United States", Anchor: "USA"}}},
		}}})
	// The alias anchor differs from the canonical title; equality must
	// match either.
	if got := run(t, c, `film(country="United States")`); len(got) != 1 {
		t.Errorf("match by link target failed: %v", titles(got))
	}
	if got := run(t, c, `film(country="USA")`); len(got) != 1 {
		t.Errorf("match by anchor failed: %v", titles(got))
	}
}

func TestEngineRankingDeterministic(t *testing.T) {
	c := miniCorpus(t)
	a := titles(run(t, c, `film(released>1900)`))
	for i := 0; i < 3; i++ {
		b := titles(run(t, c, `film(released>1900)`))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("ranking unstable: %v vs %v", a, b)
			}
		}
	}
}
