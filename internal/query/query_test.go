package query

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/wiki"
)

var (
	testCorpus *wiki.Corpus
	testTruth  *synth.GroundTruth
	testResPt  *core.Result
	testResVn  *core.Result
)

func fixtures(t *testing.T) (*wiki.Corpus, *synth.GroundTruth, *core.Result, *core.Result) {
	t.Helper()
	if testCorpus == nil {
		c, g, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		m := core.NewMatcher(core.DefaultConfig())
		testCorpus, testTruth = c, g
		testResPt = m.Match(c, wiki.PtEn)
		testResVn = m.Match(c, wiki.VnEn)
	}
	return testCorpus, testTruth, testResPt, testResVn
}

func TestParseSimple(t *testing.T) {
	q, err := Parse(`filme(título|nome=?, receita>10000000) and ator(ocupação="político")`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(q.Blocks))
	}
	b := q.Blocks[0]
	if b.Type != "filme" {
		t.Errorf("type = %q", b.Type)
	}
	if len(b.Constraints) != 2 {
		t.Fatalf("constraints = %v", b.Constraints)
	}
	if !b.Constraints[0].IsProjection() || len(b.Constraints[0].Attrs) != 2 {
		t.Errorf("projection = %+v", b.Constraints[0])
	}
	if b.Constraints[1].Op != OpGt || b.Constraints[1].Value != "10000000" {
		t.Errorf("numeric = %+v", b.Constraints[1])
	}
	if q.Blocks[1].Constraints[0].Value != "político" {
		t.Errorf("eq value = %+v", q.Blocks[1].Constraints[0])
	}
}

func TestParseNormalizesDiacritics(t *testing.T) {
	q, err := Parse(`diễn viên(tên=?)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Blocks[0].Type != "dien vien" {
		t.Errorf("type = %q", q.Blocks[0].Type)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"noparens",
		"t(attr!5)",
		"t(=5)",
		"t(a>abc)",
		"t(a=)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseWorkload(t *testing.T) {
	for _, cq := range CaseStudyWorkload() {
		if _, err := Parse(cq.PT); err != nil {
			t.Errorf("query %d PT: %v", cq.ID, err)
		}
		if _, err := Parse(cq.VN); err != nil {
			t.Errorf("query %d VN: %v", cq.ID, err)
		}
	}
	if got := len(CaseStudyWorkload()); got != 10 {
		t.Errorf("workload size = %d, want 10 (Table 4)", got)
	}
}

func TestEngineEqualityQuery(t *testing.T) {
	c, _, _, _ := fixtures(t)
	e := NewEngine(c, wiki.Portuguese)
	q, err := Parse(`artista(nome=?, origem="França", gênero="Jazz")`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	answers := e.Run(q, 20)
	if len(answers) == 0 {
		t.Fatal("no French Jazz artists found (the generator seeds them)")
	}
	for _, a := range answers {
		if a.Article.Type != "artista" {
			t.Errorf("answer type = %q", a.Article.Type)
		}
	}
}

func TestEngineNumericQuery(t *testing.T) {
	c, _, _, _ := fixtures(t)
	e := NewEngine(c, wiki.Portuguese)
	q, err := Parse(`empresa(sede=?, faturamento|receita>10000000000)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	answers := e.Run(q, 20)
	if len(answers) == 0 {
		t.Fatal("no big companies found (the generator seeds them)")
	}
}

func TestEngineJoinQuery(t *testing.T) {
	c, _, _, _ := fixtures(t)
	e := NewEngine(c, wiki.Portuguese)
	q, err := Parse(`ator(nome=?) and filme(direção="Francis Ford Coppola")`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	answers := e.Run(q, 20)
	if len(answers) == 0 {
		t.Fatal("no actors in Coppola films found")
	}
	for _, a := range answers {
		if len(a.JoinTitles) != 1 {
			t.Errorf("answer %q join titles = %v", a.Article.Title, a.JoinTitles)
		}
	}
}

func TestNumericValue(t *testing.T) {
	cases := []struct {
		lang  wiki.Language
		value string
		want  float64
		ok    bool
	}{
		{wiki.English, "$23 million", 23e6, true},
		{wiki.Portuguese, "US$ 12 bilhões", 12e9, true},
		{wiki.Vietnamese, "23 triệu USD", 23e6, true},
		{wiki.Portuguese, "18 de dezembro de 1950", 1950, true},
		{wiki.English, "October 4, 1987", 1987, true},
		{wiki.English, "160 minutes", 160, true},
		{wiki.English, "plain words", 0, false},
	}
	for _, cse := range cases {
		got, ok := NumericValue(cse.lang, cse.value)
		if ok != cse.ok || (ok && got != cse.want) {
			t.Errorf("NumericValue(%q) = %v, %v; want %v, %v", cse.value, got, ok, cse.want, cse.ok)
		}
	}
}

func TestTranslateQuery(t *testing.T) {
	_, _, resPt, _ := fixtures(t)
	q, err := Parse(`filme(título|nome=?, país="Brasil")`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tr := Translate(q, resPt)
	if tr.Untranslatable {
		t.Fatalf("film query untranslatable; dropped=%v relaxed=%v", tr.DroppedBlocks, tr.RelaxedAttrs)
	}
	if got := tr.Query.Blocks[0].Type; got != "film" {
		t.Errorf("translated type = %q", got)
	}
	var eqConstraint *Constraint
	for i := range tr.Query.Blocks[0].Constraints {
		if tr.Query.Blocks[0].Constraints[i].Op == OpEq {
			eqConstraint = &tr.Query.Blocks[0].Constraints[i]
		}
	}
	if eqConstraint == nil {
		t.Fatalf("country constraint relaxed away: %v", tr.RelaxedAttrs)
	}
	if eqConstraint.Value != "Brazil" {
		t.Errorf("value translated to %q, want Brazil", eqConstraint.Value)
	}
	found := false
	for _, a := range eqConstraint.Attrs {
		if a == "country" {
			found = true
		}
	}
	if !found {
		t.Errorf("país translated to %v, want country among them", eqConstraint.Attrs)
	}
}

func TestTranslateRelaxesDanglingAttributes(t *testing.T) {
	_, _, _, resVn := fixtures(t)
	// giải thưởng (awards) does not exist in the Vietnamese film template,
	// so translating it must relax the constraint.
	q, err := Parse(`phim(tên=?, giải thưởng="Oscar")`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tr := Translate(q, resVn)
	if tr.Untranslatable {
		t.Fatal("film block should translate")
	}
	if len(tr.RelaxedAttrs) == 0 {
		t.Error("expected the awards constraint to be relaxed")
	}
}

func TestTranslateDropsUnknownTypes(t *testing.T) {
	_, _, _, resVn := fixtures(t)
	q, err := Parse(`sách(tên=?)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tr := Translate(q, resVn)
	if !tr.Untranslatable {
		t.Error("book query from Vietnamese should be untranslatable")
	}
}

func TestOracleScoring(t *testing.T) {
	_, truth, _, _ := fixtures(t)
	o := NewOracle(truth)
	intent := Intent{
		MainType: "artist",
		Main: []CanonCond{
			{Attr: "origin", Op: OpEq, Value: "France"},
			{Attr: "genre", Op: OpEq, Value: "Jazz"},
		},
	}
	// Find a seeded French Jazz artist and a non-matching one.
	var seeded, other *synth.Entity
	for i, e := range truth.Entities["artist"] {
		if i%6 == 0 && seeded == nil {
			seeded = e
		}
		if i%6 == 2 && other == nil {
			other = e
		}
	}
	if rel := o.Relevance(wiki.English, seeded.Titles[wiki.English], intent); rel != 4 {
		t.Errorf("seeded artist relevance = %v, want 4", rel)
	}
	if rel := o.Relevance(wiki.English, "No Such Article", intent); rel != 0 {
		t.Errorf("unknown answer relevance = %v, want 0", rel)
	}
	wrongType := Intent{MainType: "film"}
	if rel := o.Relevance(wiki.English, seeded.Titles[wiki.English], wrongType); rel != 0 {
		t.Errorf("wrong-type relevance = %v, want 0", rel)
	}
	_ = other
}

func TestGraderScores(t *testing.T) {
	a, b := GraderScores(3.5)
	if a != 4 || b != 3 {
		t.Errorf("graders(3.5) = %d, %d", a, b)
	}
	a, b = GraderScores(0)
	if a != 0 || b != 0 {
		t.Errorf("graders(0) = %d, %d", a, b)
	}
}

func TestRunCaseStudyShape(t *testing.T) {
	c, truth, resPt, resVn := fixtures(t)
	series, err := RunCaseStudy(c, truth, resPt, resVn, 20)
	if err != nil {
		t.Fatalf("RunCaseStudy: %v", err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	byName := map[string][]float64{}
	for _, s := range series {
		if len(s.CG) != 20 {
			t.Fatalf("series %s length %d", s.Name, len(s.CG))
		}
		// CG must be nondecreasing.
		for i := 1; i < len(s.CG); i++ {
			if s.CG[i] < s.CG[i-1] {
				t.Fatalf("series %s CG decreases at %d", s.Name, i)
			}
		}
		byName[s.Name] = s.CG
	}
	last := len(byName["Pt"]) - 1
	// The headline result of Figure 4: translated queries dominate.
	if byName["Pt→En"][last] <= byName["Pt"][last] {
		t.Errorf("Pt→En CG (%v) should exceed Pt (%v)", byName["Pt→En"][last], byName["Pt"][last])
	}
	if byName["Vn→En"][last] <= byName["Vn"][last] {
		t.Errorf("Vn→En CG (%v) should exceed Vn (%v)", byName["Vn→En"][last], byName["Vn"][last])
	}
	// And the Vn→En cumulative gain stays below Pt→En: the Vietnamese
	// dataset's dangling types cannot be translated and their queries
	// are relaxed into emptiness (Section 5).
	if byName["Vn→En"][last] >= byName["Pt→En"][last] {
		t.Errorf("Vn→En CG (%v) should be smaller than Pt→En CG (%v)",
			byName["Vn→En"][last], byName["Pt→En"][last])
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `filme(título=?, receita>10000000) and ator(ocupação="político")`
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("Parse(String): %v (text: %s)", err, q.String())
	}
	if len(q2.Blocks) != len(q.Blocks) {
		t.Errorf("round-trip blocks = %d", len(q2.Blocks))
	}
	if !strings.Contains(q.String(), "receita>") {
		t.Errorf("String() = %q", q.String())
	}
}
