package query

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/synth"
	"repro/internal/wiki"
)

// RunCaseStudy reproduces the experiment behind Figure 4: the ten
// workload queries are run monolingually in Portuguese and Vietnamese
// and, translated through the derived correspondences, against the
// English corpus; every answer list is scored by the relevance oracle
// and summed into cumulative-gain curves ("Pt", "Pt→En", "Vn", "Vn→En").
func RunCaseStudy(c *wiki.Corpus, truth *synth.GroundTruth, resPt, resVn *core.Result, k int) ([]CGSeries, error) {
	engines := map[wiki.Language]*Engine{
		wiki.Portuguese: NewEngine(c, wiki.Portuguese),
		wiki.Vietnamese: NewEngine(c, wiki.Vietnamese),
		wiki.English:    NewEngine(c, wiki.English),
	}
	oracle := NewOracle(truth)
	sums := map[string][]float64{
		"Pt": make([]float64, k), "Pt→En": make([]float64, k),
		"Vn": make([]float64, k), "Vn→En": make([]float64, k),
	}
	add := func(dst, rel []float64) {
		for i := range rel {
			dst[i] += rel[i]
		}
	}
	for _, cq := range CaseStudyWorkload() {
		for _, side := range []struct {
			text  string
			lang  wiki.Language
			mono  string
			trans string
			res   *core.Result
		}{
			{cq.PT, wiki.Portuguese, "Pt", "Pt→En", resPt},
			{cq.VN, wiki.Vietnamese, "Vn", "Vn→En", resVn},
		} {
			q, err := Parse(side.text)
			if err != nil {
				return nil, fmt.Errorf("query %d (%s): %w", cq.ID, side.lang, err)
			}
			add(sums[side.mono], oracle.QueryGain(engines[side.lang], q, cq.Intent, k))
			tr := Translate(q, side.res)
			if !tr.Untranslatable {
				add(sums[side.trans], oracle.QueryGain(engines[wiki.English], tr.Query, cq.Intent, k))
			}
		}
	}
	var out []CGSeries
	for _, name := range []string{"Pt", "Pt→En", "Vn", "Vn→En"} {
		out = append(out, CGSeries{Name: name, CG: eval.CumulativeGain(sums[name])})
	}
	return out, nil
}
