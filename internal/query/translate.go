package query

import (
	"sort"

	"repro/internal/core"
	"repro/internal/text"
)

// Translation is a query rendered into the target language through
// derived attribute correspondences, with a record of what had to be
// relaxed (Section 5: constraints on attributes without a translation
// are dropped; blocks whose type has no correspondence are dropped).
type Translation struct {
	Query          *Query
	RelaxedAttrs   []string // constraints dropped for lack of correspondences
	DroppedBlocks  []string // block types without a type correspondence
	Untranslatable bool     // the main block itself had no correspondence
}

// Translate renders q (written in res.Pair.A's language) into res.Pair.B's
// language: entity types through the type matching, attribute names
// through the derived correspondences, and values through the
// cross-language-link dictionary.
func Translate(q *Query, res *core.Result) Translation {
	tr := Translation{Query: &Query{}}
	for bi, b := range q.Blocks {
		var typeB string
		var typeRes *core.TypeResult
		for tp, tres := range res.PerType {
			if text.Normalize(tp[0]) == b.Type {
				typeB = text.Normalize(tp[1])
				typeRes = tres
				break
			}
		}
		if typeB == "" {
			tr.DroppedBlocks = append(tr.DroppedBlocks, b.Type)
			if bi == 0 {
				tr.Untranslatable = true
				return tr
			}
			continue
		}
		nb := Block{Type: typeB}
		for _, c := range b.Constraints {
			attrSet := map[string]bool{}
			for _, a := range c.Attrs {
				for bAttr := range typeRes.Cross[a] {
					attrSet[bAttr] = true
				}
			}
			if len(attrSet) == 0 {
				tr.RelaxedAttrs = append(tr.RelaxedAttrs, b.Type+"."+c.Attrs[0])
				continue
			}
			nc := Constraint{Op: c.Op}
			for a := range attrSet {
				nc.Attrs = append(nc.Attrs, a)
			}
			// Order alternatives by correspondence confidence (highest
			// first), so the engine prefers well-supported translations;
			// names break ties deterministically.
			sort.Slice(nc.Attrs, func(x, y int) bool {
				cx := bestConfidence(typeRes, c.Attrs, nc.Attrs[x])
				cy := bestConfidence(typeRes, c.Attrs, nc.Attrs[y])
				if cx != cy {
					return cx > cy
				}
				return nc.Attrs[x] < nc.Attrs[y]
			})
			if !c.IsProjection() {
				nc.Value = c.Value
				if c.Op == OpEq && res.Dict != nil {
					nc.Value = res.Dict.TranslateOrKeep(c.Value)
				}
			}
			nb.Constraints = append(nb.Constraints, nc)
		}
		tr.Query.Blocks = append(tr.Query.Blocks, nb)
	}
	if len(tr.Query.Blocks) == 0 {
		tr.Untranslatable = true
	}
	return tr
}

// bestConfidence returns the highest correspondence confidence linking
// any of the source attributes to the target attribute.
func bestConfidence(tr *core.TypeResult, sources []string, target string) float64 {
	var best float64
	for _, src := range sources {
		if c := tr.Confidence(src, target); c > best {
			best = c
		}
	}
	return best
}
