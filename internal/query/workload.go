package query

// CanonCond is a condition expressed over canonical (language-neutral)
// attributes and English-form values; the relevance oracle evaluates it
// against the generator's ground-truth entities.
type CanonCond struct {
	Attr  string
	Op    Op
	Value string
}

// Intent is the canonical meaning of a case-study query: what entity
// type the answers should have, the conditions on the entity itself, and
// optionally a related entity type with its own conditions.
type Intent struct {
	MainType string
	Main     []CanonCond
	JoinType string
	Join     []CanonCond
}

// CaseQuery is one row of Table 4: the information need, its c-query
// renderings in Portuguese and Vietnamese, and the canonical intent the
// relevance oracle judges answers against.
type CaseQuery struct {
	ID          int
	Description string
	PT          string
	VN          string
	Intent      Intent
}

// CaseStudyWorkload returns the ten c-queries of the case study
// (Table 4). Two queries reference a "director" entity type that this
// corpus does not model as a separate type; they are adapted to
// equivalent constraints on the film and actor types (see EXPERIMENTS.md
// for the mapping, which preserves each query's join structure).
func CaseStudyWorkload() []CaseQuery {
	return []CaseQuery{
		{
			ID:          1,
			Description: "Movies with an actor who is also a politician",
			PT:          `filme(título|nome=?) and ator(ocupação="político")`,
			VN:          `phim(tên=?) and diễn viên(vai trò|công việc="chính khách")`,
			Intent: Intent{
				MainType: "film",
				JoinType: "actor",
				Join:     []CanonCond{{Attr: "occupation", Op: OpEq, Value: "politician"}},
			},
		},
		{
			ID:          2,
			Description: "Actors who worked with director Francis Ford Coppola in a movie",
			PT:          `ator(nome=?) and filme(direção="Francis Ford Coppola")`,
			VN:          `diễn viên(tên=?) and phim(đạo diễn="Francis Ford Coppola")`,
			Intent: Intent{
				MainType: "actor",
				JoinType: "film",
				Join:     []CanonCond{{Attr: "directed by", Op: OpEq, Value: "Francis Ford Coppola"}},
			},
		},
		{
			ID:          3,
			Description: "Movies that won the Best Picture award, from England (adapted)",
			PT:          `filme(título|nome=?, prêmios="Oscar de melhor filme", país="Inglaterra")`,
			VN:          `phim(tên=?, giải thưởng="Oscar", quốc gia="Anh")`,
			Intent: Intent{
				MainType: "film",
				Main: []CanonCond{
					{Attr: "awards", Op: OpEq, Value: "Academy Award for Best Picture"},
					{Attr: "country", Op: OpEq, Value: "England"},
				},
			},
		},
		{
			ID:          4,
			Description: "Movies with gross revenue over 10 million starring an actor born in 1970 or later (adapted)",
			PT:          `filme(título|nome=?, receita>10000000) and ator(nascimento|data de nascimento>=1970)`,
			VN:          `phim(tên=?, doanh thu|thu nhập>10000000) and diễn viên(sinh|ngày sinh>=1970)`,
			Intent: Intent{
				MainType: "film",
				Main:     []CanonCond{{Attr: "gross revenue", Op: OpGt, Value: "10000000"}},
				JoinType: "actor",
				Join:     []CanonCond{{Attr: "birth date", Op: OpGe, Value: "1970"}},
			},
		},
		{
			ID:          5,
			Description: "Books that were written by a writer born before 1975",
			PT:          `livro(nome=?) and escritor(nascimento|data de nascimento<1975)`,
			VN:          `sách(tên=?) and nhà văn(ngày sinh<1975)`,
			Intent: Intent{
				MainType: "book",
				JoinType: "writer",
				Join:     []CanonCond{{Attr: "birth date", Op: OpLt, Value: "1975"}},
			},
		},
		{
			ID:          6,
			Description: "Names of French Jazz artists",
			PT:          `artista(nome=?, origem="França", gênero="Jazz")`,
			VN:          `nghệ sĩ(tên=?, quê quán="Pháp", thể loại="Jazz")`,
			Intent: Intent{
				MainType: "artist",
				Main: []CanonCond{
					{Attr: "origin", Op: OpEq, Value: "France"},
					{Attr: "genre", Op: OpEq, Value: "Jazz"},
				},
			},
		},
		{
			ID:          7,
			Description: "Characters created by Eric Kripke",
			PT:          `personagem fictícia(nome=?, criado por="Eric Kripke")`,
			VN:          `nhân vật(tên=?, sáng tác="Eric Kripke")`,
			Intent: Intent{
				MainType: "fictional character",
				Main:     []CanonCond{{Attr: "created by", Op: OpEq, Value: "Eric Kripke"}},
			},
		},
		{
			ID:          8,
			Description: `Names of the albums from the genre "Rock" recorded before 1980`,
			PT:          `álbum(nome=?, gênero="Rock", gravado em<1980)`,
			VN:          `album(tên=?, thể loại="Rock", thu âm<1980)`,
			Intent: Intent{
				MainType: "album",
				Main: []CanonCond{
					{Attr: "genre", Op: OpEq, Value: "Rock"},
					{Attr: "recorded", Op: OpLt, Value: "1980"},
				},
			},
		},
		{
			ID:          9,
			Description: `Names of artists from the genre "Progressive Rock" born after 1950`,
			PT:          `artista(nome=?, gênero="Rock Progressivo", nascimento|data de nascimento>1950)`,
			VN:          `nghệ sĩ(tên=?, thể loại="Progressive Rock", sinh>1950)`,
			Intent: Intent{
				MainType: "artist",
				Main: []CanonCond{
					{Attr: "genre", Op: OpEq, Value: "Progressive Rock"},
					{Attr: "birth date", Op: OpGt, Value: "1950"},
				},
			},
		},
		{
			ID:          10,
			Description: "Headquarters of companies with revenue greater than 10 billion",
			PT:          `empresa(sede=?, faturamento|receita>10000000000)`,
			VN:          `công ty(trụ sở|trụ sở chính=?, doanh thu>10000000000)`,
			Intent: Intent{
				MainType: "company",
				Main:     []CanonCond{{Attr: "revenue", Op: OpGt, Value: "10000000000"}},
			},
		},
	}
}
