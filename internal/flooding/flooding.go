// Package flooding implements similarity flooding (Melnik,
// Garcia-Molina and Rahm, ICDE 2002) adapted to infobox schema matching
// — the fixed-point matching strategy the paper names as future work in
// its conclusion.
//
// The pairwise connectivity graph is built from the one structural
// relation infobox schemas expose: co-occurrence within a language.
// A map pair (a, b) — a source-language attribute aligned with a
// target-language one — is connected to (a′, b′) when a and a′
// frequently co-occur in source infoboxes and b and b′ frequently
// co-occur in target infoboxes. Initial similarities come from the same
// value/link evidence WikiMatch uses; the fixpoint iteration then lets
// well-supported neighbourhoods reinforce each other.
package flooding

import (
	"math"
	"sort"

	"repro/internal/eval"
	"repro/internal/sim"
)

// Config tunes the fixpoint computation.
type Config struct {
	// MaxIters bounds the fixpoint iteration (default 50).
	MaxIters int
	// Epsilon is the convergence threshold on the residual (default 1e-4).
	Epsilon float64
	// MinGrouping is the grouping-score threshold above which two
	// same-language attributes count as structurally related (default 0.3).
	MinGrouping float64
	// SelectThreshold discards map pairs whose converged similarity falls
	// below this fraction of their row maximum (default 0.95 — argmax-like
	// selection with tolerance for ties).
	SelectThreshold float64
}

// DefaultConfig returns the standard parameters.
func DefaultConfig() Config {
	return Config{MaxIters: 50, Epsilon: 1e-4, MinGrouping: 0.3, SelectThreshold: 0.95}
}

// pairNode is one node of the pairwise connectivity graph.
type pairNode struct {
	i, j  int // attribute indices on the A and B sides
	sigma float64
	init  float64
	edges []edge
}

type edge struct {
	to int
	w  float64
}

// graph holds the flooding state.
type graph struct {
	nodes []pairNode
	index map[[2]int]int
}

// build constructs the pairwise connectivity graph for a type.
func build(td *sim.TypeData, cfg Config) *graph {
	g := &graph{index: make(map[[2]int]int)}
	for _, p := range td.CrossPairs() {
		init := td.VSim(p[0], p[1])
		if l := td.LSim(p[0], p[1]); l > init {
			init = l
		}
		g.index[[2]int{p[0], p[1]}] = len(g.nodes)
		g.nodes = append(g.nodes, pairNode{i: p[0], j: p[1], sigma: init, init: init})
	}
	// Structural relations per language side.
	related := func(x, y int) bool {
		return td.Attrs[x].Lang == td.Attrs[y].Lang && td.Grouping(x, y) >= cfg.MinGrouping
	}
	// For each node, connect to nodes whose both sides are related.
	// Propagation weight: each node distributes 1 over its out-edges.
	for n := range g.nodes {
		a, b := g.nodes[n].i, g.nodes[n].j
		for m := range g.nodes {
			if m == n {
				continue
			}
			a2, b2 := g.nodes[m].i, g.nodes[m].j
			if a2 != a && b2 != b && related(a, a2) && related(b, b2) {
				g.nodes[n].edges = append(g.nodes[n].edges, edge{to: m})
			}
		}
	}
	for n := range g.nodes {
		if d := len(g.nodes[n].edges); d > 0 {
			w := 1 / float64(d)
			for e := range g.nodes[n].edges {
				g.nodes[n].edges[e].w = w
			}
		}
	}
	return g
}

// run iterates the fixpoint (Melnik's variant C):
// σ^{k+1} = normalize(σ⁰ + σ^k + φ(σ⁰ + σ^k)).
func (g *graph) run(cfg Config) int {
	if len(g.nodes) == 0 {
		return 0
	}
	next := make([]float64, len(g.nodes))
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		for n := range next {
			next[n] = g.nodes[n].init + g.nodes[n].sigma
		}
		for n := range g.nodes {
			inject := g.nodes[n].init + g.nodes[n].sigma
			for _, e := range g.nodes[n].edges {
				next[e.to] += inject * e.w
			}
		}
		// Normalize by the maximum.
		var maxV float64
		for _, v := range next {
			if v > maxV {
				maxV = v
			}
		}
		if maxV == 0 {
			break
		}
		var residual float64
		for n := range g.nodes {
			v := next[n] / maxV
			if d := math.Abs(v - g.nodes[n].sigma); d > residual {
				residual = d
			}
			g.nodes[n].sigma = v
		}
		if residual < cfg.Epsilon {
			iters++
			break
		}
	}
	return iters
}

// Scores returns every cross-language pair with its converged
// similarity.
func Scores(td *sim.TypeData, cfg Config) []eval.RankedPair {
	g := build(td, cfg)
	g.run(cfg)
	out := make([]eval.RankedPair, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, eval.RankedPair{
			A: td.Attrs[n.i].Name, B: td.Attrs[n.j].Name, Score: n.sigma,
		})
	}
	return out
}

// Match runs similarity flooding and selects correspondences: per
// source attribute, the candidates within SelectThreshold of the row
// maximum, provided they carry non-zero initial evidence.
func Match(td *sim.TypeData, cfg Config) eval.Correspondences {
	g := build(td, cfg)
	g.run(cfg)
	rowMax := map[int]float64{}
	for _, n := range g.nodes {
		if n.sigma > rowMax[n.i] {
			rowMax[n.i] = n.sigma
		}
	}
	out := make(eval.Correspondences)
	// Deterministic iteration order.
	order := make([]int, len(g.nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		nx, ny := g.nodes[order[x]], g.nodes[order[y]]
		if nx.i != ny.i {
			return nx.i < ny.i
		}
		return nx.j < ny.j
	})
	for _, idx := range order {
		n := g.nodes[idx]
		if n.init <= 0 || rowMax[n.i] == 0 {
			continue
		}
		if n.sigma >= rowMax[n.i]*cfg.SelectThreshold {
			out.Add(td.Attrs[n.i].Name, td.Attrs[n.j].Name)
		}
	}
	return out
}
