package flooding

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/wiki"
)

var (
	testTD    *sim.TypeData
	testTruth eval.Correspondences
)

func filmData(t *testing.T) (*sim.TypeData, eval.Correspondences) {
	t.Helper()
	if testTD == nil {
		c, g, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		d := dict.Build(c, wiki.Portuguese, wiki.English)
		testTD = sim.BuildTypeData(c, wiki.PtEn, "filme", "film", d)
		freqA, freqB := eval.AttributeFrequencies(c, wiki.PtEn, "filme", "film")
		testTruth = eval.TruthPairs(freqA, freqB, wiki.PtEn, g.Types["film"].Correct)
	}
	return testTD, testTruth
}

func TestMatchFindsCoreAlignments(t *testing.T) {
	td, truth := filmData(t)
	derived := Match(td, DefaultConfig())
	if derived.Pairs() == 0 {
		t.Fatal("flooding derived nothing")
	}
	m := eval.Macro(derived, truth)
	t.Logf("flooding film pt-en: P=%.2f R=%.2f F=%.2f (%d pairs)",
		m.Precision, m.Recall, m.F, derived.Pairs())
	if m.F < 0.5 {
		t.Errorf("flooding F = %.2f, expected a competitive matcher", m.F)
	}
	if !derived.Has("direcao", "directed by") {
		t.Error("missing direção ~ directed by")
	}
}

func TestFloodingConverges(t *testing.T) {
	td, _ := filmData(t)
	g := build(td, DefaultConfig())
	iters := g.run(DefaultConfig())
	if iters == 0 || iters >= DefaultConfig().MaxIters {
		t.Errorf("iterations = %d, expected convergence before the cap", iters)
	}
	for _, n := range g.nodes {
		if n.sigma < 0 || n.sigma > 1+1e-9 {
			t.Fatalf("sigma out of range: %v", n.sigma)
		}
	}
}

func TestFloodingDeterministic(t *testing.T) {
	td, _ := filmData(t)
	a := Match(td, DefaultConfig())
	b := Match(td, DefaultConfig())
	if a.Pairs() != b.Pairs() {
		t.Fatalf("non-deterministic pair counts: %d vs %d", a.Pairs(), b.Pairs())
	}
	for x, ys := range a {
		for y := range ys {
			if !b.Has(x, y) {
				t.Fatalf("pair (%s, %s) missing in second run", x, y)
			}
		}
	}
}

func TestFloodingPropagationHelps(t *testing.T) {
	// Flooding should lift the rank of true pairs whose neighbours are
	// also true pairs: compare MAP of converged scores vs initial scores.
	td, truth := filmData(t)
	cfg := DefaultConfig()
	converged := Scores(td, cfg)
	var initial []eval.RankedPair
	for _, p := range td.CrossPairs() {
		init := td.VSim(p[0], p[1])
		if l := td.LSim(p[0], p[1]); l > init {
			init = l
		}
		initial = append(initial, eval.RankedPair{
			A: td.Attrs[p[0]].Name, B: td.Attrs[p[1]].Name, Score: init,
		})
	}
	mapInit := eval.MAP(initial, truth)
	mapConv := eval.MAP(converged, truth)
	t.Logf("MAP initial=%.3f converged=%.3f", mapInit, mapConv)
	if mapConv < mapInit-0.05 {
		t.Errorf("flooding degraded the ordering: %.3f → %.3f", mapInit, mapConv)
	}
}

func TestEmptyTypeData(t *testing.T) {
	td := &sim.TypeData{Pair: wiki.PtEn}
	if got := Match(td, DefaultConfig()); got.Pairs() != 0 {
		t.Errorf("empty input derived %d pairs", got.Pairs())
	}
}

func TestSelectThresholdWidens(t *testing.T) {
	td, _ := filmData(t)
	strict := DefaultConfig()
	loose := DefaultConfig()
	loose.SelectThreshold = 0.5
	a := Match(td, strict)
	b := Match(td, loose)
	if b.Pairs() < a.Pairs() {
		t.Errorf("looser selection found fewer pairs: %d < %d", b.Pairs(), a.Pairs())
	}
}
