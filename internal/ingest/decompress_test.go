package ingest

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

// bz2Hello is "hello bz2 world\n" compressed with bzip2 -9; the stdlib
// has no bzip2 writer, so the fixture is baked in.
var bz2Hello = []byte{
	66, 90, 104, 57, 49, 65, 89, 38, 83, 89, 252, 101, 253, 151, 0, 0,
	3, 217, 128, 0, 16, 64, 0, 16, 0, 22, 68, 144, 144, 32, 0, 34,
	152, 208, 105, 161, 3, 64, 208, 24, 20, 147, 123, 163, 200, 218, 225, 119,
	36, 83, 133, 9, 15, 198, 95, 217, 112,
}

func TestOpenDecoded(t *testing.T) {
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	io.WriteString(zw, "hello gzip world\n")
	zw.Close()

	cases := []struct {
		name   string
		input  io.Reader
		format string
		want   string
	}{
		{"plain", strings.NewReader("hello plain world\n"), "plain", "hello plain world\n"},
		{"gzip", bytes.NewReader(gz.Bytes()), "gzip", "hello gzip world\n"},
		{"bzip2", bytes.NewReader(bz2Hello), "bzip2", "hello bz2 world\n"},
		{"empty", strings.NewReader(""), "plain", ""},
		{"short non-magic", strings.NewReader("x"), "plain", "x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec, format, err := openDecoded(tc.input)
			if err != nil {
				t.Fatalf("openDecoded: %v", err)
			}
			if format != tc.format {
				t.Fatalf("format = %q, want %q", format, tc.format)
			}
			data, err := io.ReadAll(dec)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if string(data) != tc.want {
				t.Fatalf("decoded %q, want %q", data, tc.want)
			}
		})
	}
}

func TestCountingReaderCountsRawBytes(t *testing.T) {
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	io.WriteString(zw, strings.Repeat("the same line over and over\n", 1000))
	zw.Close()
	compressed := gz.Len()

	cr := &countingReader{r: bytes.NewReader(gz.Bytes())}
	dec, _, err := openDecoded(cr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, dec); err != nil {
		t.Fatal(err)
	}
	if cr.n != int64(compressed) {
		t.Fatalf("counted %d bytes, want compressed size %d", cr.n, compressed)
	}
}
