// Package ingest turns real Wikipedia dump formats into a wiki.Corpus:
// DBpedia infobox-properties and interlanguage-links N-Triples/TTL
// dumps, and MediaWiki XML dumps (via internal/dump). Parsing is
// line-oriented and streaming — peak memory is bounded by the size of
// the assembled corpus, never by the size of the dump files — with
// transparent gzip/bzip2 decoding and per-reason skip accounting for
// malformed input. The language set is entirely data-driven: whatever
// editions the dump directory holds (or Options.Languages selects)
// become the corpus, with cross-language links resolved across the
// whole set.
package ingest

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dump"
	"repro/internal/wiki"
)

// Format identifies a dump file's format.
type Format int

const (
	// FormatTTL is an N-Triples/TTL dump (DBpedia infobox-properties or
	// interlanguage-links; the triple vocabulary decides per line, so
	// one file may mix both).
	FormatTTL Format = iota
	// FormatXML is a MediaWiki XML page dump.
	FormatXML
)

// String names the format.
func (f Format) String() string {
	if f == FormatXML {
		return "xml"
	}
	return "ttl"
}

// Source is one dump input: a file (or any reader) carrying one
// language edition's data in one format.
type Source struct {
	Lang   wiki.Language
	Format Format
	Path   string
	// Reader optionally supplies the stream directly (tests, pipes);
	// when nil, Path is opened. Raw compressed bytes are counted either
	// way.
	Reader io.Reader
}

// Options configures an ingestion run.
type Options struct {
	// Languages restricts the run to these editions; empty means every
	// language the sources carry. Cross-links into editions outside the
	// set are dropped (tallied as foreign-link).
	Languages []wiki.Language
	// Workers bounds how many languages ingest concurrently; 0 means
	// one worker per language. Sources of one language are always
	// processed sequentially, in sorted path order, so corpora are
	// deterministic regardless of parallelism.
	Workers int
	// DryRun validates and counts without retaining articles: the
	// result carries stats but no corpus.
	DryRun bool
	// NoTypeInference disables the property-profile typing pass for
	// entities with neither template nor ontology evidence.
	NoTypeInference bool
	// Progress, when set, receives one event per completed source.
	Progress func(ev Progress)
}

// Progress reports one completed source.
type Progress struct {
	Lang    wiki.Language
	Path    string
	Format  Format
	Bytes   int64
	Triples int
	Pages   int
}

// LangStats counts one language edition's ingestion outcome.
type LangStats struct {
	Files           int
	Bytes           int64 // raw file bytes (compressed size for .gz/.bz2)
	Triples         int   // parsed triples, before classification
	AttrTriples     int   // accepted attribute values
	TypeTriples     int   // accepted rdf:type evidence
	TemplateTriples int   // accepted template evidence
	CrossLinks      int   // accepted interlanguage links
	Pages           int   // XML pages seen
	Entities        int   // articles assembled
	Infoboxes       int
	TypedByTemplate int
	TypedByOntology int
	TypedByProfile  int
	Skipped         map[string]int // reason → count
}

func newLangStats() *LangStats {
	return &LangStats{Skipped: make(map[string]int)}
}

// SkippedTotal sums the per-reason skip counts.
func (s *LangStats) SkippedTotal() int {
	n := 0
	for _, v := range s.Skipped {
		n += v
	}
	return n
}

// SkipReasons returns the skip reasons present, sorted, for stable
// reports.
func (s *LangStats) SkipReasons() []string {
	out := make([]string, 0, len(s.Skipped))
	for r := range s.Skipped {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Result is an ingestion run's outcome. Corpus is nil on dry runs.
type Result struct {
	Corpus  *wiki.Corpus
	PerLang map[wiki.Language]*LangStats
	Bytes   int64
	Elapsed time.Duration
}

// Languages returns the ingested editions, sorted.
func (r *Result) Languages() []wiki.Language {
	out := make([]wiki.Language, 0, len(r.PerLang))
	for l := range r.PerLang {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Totals sums the per-language stats.
func (r *Result) Totals() LangStats {
	t := *newLangStats()
	for _, s := range r.PerLang {
		t.Files += s.Files
		t.Bytes += s.Bytes
		t.Triples += s.Triples
		t.AttrTriples += s.AttrTriples
		t.TypeTriples += s.TypeTriples
		t.TemplateTriples += s.TemplateTriples
		t.CrossLinks += s.CrossLinks
		t.Pages += s.Pages
		t.Entities += s.Entities
		t.Infoboxes += s.Infoboxes
		t.TypedByTemplate += s.TypedByTemplate
		t.TypedByOntology += s.TypedByOntology
		t.TypedByProfile += s.TypedByProfile
		for reason, n := range s.Skipped {
			t.Skipped[reason] += n
		}
	}
	return t
}

// ScanDir discovers dump sources in a directory. Recognized names
// (each optionally compressed with a further ".gz" or ".bz2" suffix):
//
//	<lang>-infobox-properties….ttl     DBpedia property triples
//	<lang>-interlanguage-links….ttl    DBpedia cross-language links
//	<lang>….ttl                        any other TTL dump
//	<lang>.xml                         MediaWiki page dump
//
// The language prefix may itself contain hyphens ("zh-min-nan.xml",
// "be-tarask-infobox-properties.ttl"): the two known TTL suffixes are
// anchored, and everything before them is the edition code. Files whose
// prefix is not a valid language code are ignored.
func ScanDir(dir string) ([]Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	var out []Source
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		src, ok := classifyFile(e.Name())
		if !ok {
			continue
		}
		src.Path = filepath.Join(dir, e.Name())
		out = append(out, src)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lang != out[j].Lang {
			return out[i].Lang < out[j].Lang
		}
		return out[i].Path < out[j].Path
	})
	return out, nil
}

// classifyFile resolves a dump file name into its language and format.
func classifyFile(name string) (Source, bool) {
	stem := name
	for _, ext := range []string{".gz", ".bz2"} {
		stem = strings.TrimSuffix(stem, ext)
	}
	var format Format
	switch {
	case strings.HasSuffix(stem, ".ttl"):
		format = FormatTTL
		stem = strings.TrimSuffix(stem, ".ttl")
	case strings.HasSuffix(stem, ".xml"):
		format = FormatXML
		stem = strings.TrimSuffix(stem, ".xml")
	default:
		return Source{}, false
	}
	for _, suffix := range []string{"-infobox-properties", "-interlanguage-links"} {
		if idx := strings.Index(stem, suffix); idx > 0 {
			stem = stem[:idx]
			break
		}
	}
	lang := wiki.Language(stem)
	if !lang.Valid() {
		return Source{}, false
	}
	return Source{Lang: lang, Format: format}, true
}

// Dir ingests every recognized dump file under dir: ScanDir + Run.
func Dir(ctx context.Context, dir string, opts Options) (*Result, error) {
	sources, err := ScanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("ingest: no dump files recognized in %s", dir)
	}
	return Run(ctx, sources, opts)
}

// Run ingests the sources into one corpus. Languages process in
// parallel (bounded by Options.Workers); within a language, sources
// stream sequentially in sorted order, so the assembled corpus is
// byte-deterministic for a given input set regardless of worker
// scheduling. Malformed input is skipped and tallied, never fatal;
// unreadable files and context cancellation are.
func Run(ctx context.Context, sources []Source, opts Options) (*Result, error) {
	start := time.Now()
	byLang := make(map[wiki.Language][]Source)
	langSet := make(map[wiki.Language]bool)
	if len(opts.Languages) > 0 {
		for _, l := range opts.Languages {
			if !l.Valid() {
				return nil, fmt.Errorf("ingest: invalid language %q", l)
			}
			langSet[l] = true
		}
	} else {
		for _, s := range sources {
			langSet[s.Lang] = true
		}
	}
	for _, s := range sources {
		if !s.Lang.Valid() {
			return nil, fmt.Errorf("ingest: source %s: invalid language %q", s.Path, s.Lang)
		}
		if !langSet[s.Lang] {
			continue
		}
		byLang[s.Lang] = append(byLang[s.Lang], s)
	}
	if len(byLang) == 0 {
		return nil, fmt.Errorf("ingest: no sources match the requested languages")
	}
	langs := make([]wiki.Language, 0, len(byLang))
	for l := range byLang {
		langs = append(langs, l)
	}
	sort.Slice(langs, func(i, j int) bool { return langs[i] < langs[j] })

	workers := opts.Workers
	if workers <= 0 || workers > len(langs) {
		workers = len(langs)
	}
	builders := make(map[wiki.Language]*langBuilder, len(langs))
	for _, l := range langs {
		builders[l] = newLangBuilder(l, langSet, opts.DryRun)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan wiki.Language)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lang := range next {
				if err := ingestLang(ctx, builders[lang], byLang[lang], opts.Progress); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, l := range langs {
		next <- l
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{PerLang: make(map[wiki.Language]*LangStats, len(langs))}
	var corpus *wiki.Corpus
	if !opts.DryRun {
		corpus = wiki.NewCorpus()
	}
	for _, l := range langs {
		b := builders[l]
		articles := b.finish(!opts.NoTypeInference)
		if corpus != nil {
			for _, a := range articles {
				if err := corpus.Add(a); err != nil {
					b.skip(SkipInvalidArticle)
					b.stats.Entities--
					if a.Infobox != nil {
						b.stats.Infoboxes--
					}
				}
			}
		}
		res.PerLang[l] = b.stats
		res.Bytes += b.stats.Bytes
	}
	res.Corpus = corpus
	res.Elapsed = time.Since(start)
	return res, nil
}

// ingestLang streams one language's sources through its builder.
func ingestLang(ctx context.Context, b *langBuilder, sources []Source, progress func(Progress)) error {
	for _, src := range sources {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := ingestSource(ctx, b, src, progress); err != nil {
			return fmt.Errorf("ingest: %s: %w", sourceName(src), err)
		}
		b.stats.Files++
	}
	return nil
}

func sourceName(src Source) string {
	if src.Path != "" {
		return src.Path
	}
	return fmt.Sprintf("%s (%s stream)", src.Lang, src.Format)
}

func ingestSource(ctx context.Context, b *langBuilder, src Source, progress func(Progress)) error {
	var (
		raw    io.Reader
		count  *countingReader
		closer io.Closer
	)
	if src.Reader != nil {
		count = &countingReader{r: src.Reader}
		dec, _, err := openDecoded(count)
		if err != nil {
			return err
		}
		raw = dec
	} else {
		var err error
		raw, count, closer, err = openFile(src.Path)
		if err != nil {
			return err
		}
	}
	if closer != nil {
		defer closer.Close()
	}
	startTriples, startPages := b.stats.Triples, b.stats.Pages
	var err error
	switch src.Format {
	case FormatXML:
		err = ingestXML(ctx, b, raw)
	default:
		err = ingestTTL(ctx, b, raw)
	}
	if err != nil {
		return err
	}
	b.stats.Bytes += count.n
	if progress != nil {
		progress(Progress{
			Lang:    b.lang,
			Path:    src.Path,
			Format:  src.Format,
			Bytes:   count.n,
			Triples: b.stats.Triples - startTriples,
			Pages:   b.stats.Pages - startPages,
		})
	}
	return nil
}

// checkEvery bounds how many lines/pages stream between context
// checks.
const checkEvery = 4096

func ingestTTL(ctx context.Context, b *langBuilder, r io.Reader) error {
	sc := NewScanner(r)
	for {
		t, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		b.AddTriple(t)
		if sc.Lines()%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	for reason, n := range sc.Malformed {
		b.stats.Skipped[reason] += n
	}
	return nil
}

func ingestXML(ctx context.Context, b *langBuilder, r io.Reader) error {
	dr := dump.NewReader(r)
	for {
		p, err := dr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		b.stats.Pages++
		switch {
		case p.NS != 0:
			b.skip(SkipNamespace)
			continue
		case p.Redirect != "":
			b.skip(SkipRedirect)
			continue
		}
		a, err := wiki.ParsePage(b.lang, p.Title, p.Text)
		if err != nil {
			b.skip(SkipPageError)
			continue
		}
		b.AddArticle(a)
		if b.stats.Pages%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}
