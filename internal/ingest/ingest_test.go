package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dump"
	"repro/internal/synth"
	"repro/internal/wiki"
)

// smallEditions is a reduced multi-edition corpus configuration that
// keeps the round-trip tests fast while still covering hyphenated
// codes, the apex-domain English edition and transitive-only pairs.
func smallEditions() synth.EditionsConfig {
	cfg := synth.DefaultEditions()
	cfg.Languages = []wiki.Language{"en", "de", "pt", "vi", "zh-min-nan", "be-tarask"}
	cfg.EntitiesPerType = 30
	return cfg
}

// ttlSources renders every edition of the corpus as in-memory DBpedia
// property and link dumps.
func ttlSources(t *testing.T, c *wiki.Corpus) []Source {
	t.Helper()
	var out []Source
	for _, l := range c.Languages() {
		var props, links bytes.Buffer
		if err := WriteProperties(&props, c, l); err != nil {
			t.Fatalf("WriteProperties(%s): %v", l, err)
		}
		if err := WriteLinks(&links, c, l); err != nil {
			t.Fatalf("WriteLinks(%s): %v", l, err)
		}
		out = append(out,
			Source{Lang: l, Format: FormatTTL, Reader: bytes.NewReader(props.Bytes())},
			Source{Lang: l, Format: FormatTTL, Reader: bytes.NewReader(links.Bytes())},
		)
	}
	return out
}

func TestTTLRoundTrip(t *testing.T) {
	c, _, err := synth.Editions(smallEditions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), ttlSources(t, c), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Corpus.Fingerprint(), c.Fingerprint(); got != want {
		diffCorpora(t, c, res.Corpus)
		t.Fatalf("re-ingested corpus fingerprint %x != original %x", got, want)
	}
	tot := res.Totals()
	if tot.AttrTriples == 0 || tot.CrossLinks == 0 || tot.TemplateTriples == 0 {
		t.Fatalf("implausible totals: %+v", tot)
	}
	if n := tot.SkippedTotal(); n != 0 {
		t.Fatalf("clean generated dumps produced %d skips: %v", n, tot.Skipped)
	}
	if tot.TypedByTemplate == 0 || tot.TypedByOntology != 0 || tot.TypedByProfile != 0 {
		t.Fatalf("typing counters off for fully-templated corpus: %+v", tot)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	c, _, err := synth.Editions(smallEditions())
	if err != nil {
		t.Fatal(err)
	}
	var sources []Source
	for _, l := range c.Languages() {
		var buf bytes.Buffer
		if err := dump.WriteCorpus(&buf, c, l); err != nil {
			t.Fatalf("WriteCorpus(%s): %v", l, err)
		}
		sources = append(sources, Source{Lang: l, Format: FormatXML, Reader: bytes.NewReader(buf.Bytes())})
	}
	res, err := Run(context.Background(), sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Corpus.Fingerprint(), c.Fingerprint(); got != want {
		diffCorpora(t, c, res.Corpus)
		t.Fatalf("XML round trip fingerprint %x != original %x", got, want)
	}
	if tot := res.Totals(); tot.Pages == 0 || tot.Pages != tot.Entities {
		t.Fatalf("pages %d vs entities %d", tot.Pages, tot.Entities)
	}
}

// diffCorpora reports the first divergence between two corpora, to make
// fingerprint mismatches debuggable.
func diffCorpora(t *testing.T, want, got *wiki.Corpus) {
	t.Helper()
	for _, l := range want.Languages() {
		for _, wa := range want.Articles(l) {
			ga, ok := got.Get(l, wa.Title)
			if !ok {
				t.Errorf("missing article %s:%s", l, wa.Title)
				return
			}
			if wa.Type != ga.Type {
				t.Errorf("%s:%s type %q != %q", l, wa.Title, ga.Type, wa.Type)
				return
			}
			if (wa.Infobox == nil) != (ga.Infobox == nil) {
				t.Errorf("%s:%s infobox presence differs", l, wa.Title)
				return
			}
			if wa.Infobox != nil && fmt.Sprintf("%+v", wa.Infobox) != fmt.Sprintf("%+v", ga.Infobox) {
				t.Errorf("%s:%s infobox\n want %+v\n got  %+v", l, wa.Title, wa.Infobox, ga.Infobox)
				return
			}
			if fmt.Sprintf("%v", wa.SortedCrossLinks()) != fmt.Sprintf("%v", ga.SortedCrossLinks()) {
				t.Errorf("%s:%s cross-links differ", l, wa.Title)
				return
			}
		}
		if want.LenLang(l) != got.LenLang(l) {
			t.Errorf("%s: %d articles != %d", l, got.LenLang(l), want.LenLang(l))
			return
		}
	}
}

func TestProfileInferenceTypesBareInfoboxes(t *testing.T) {
	cfg := smallEditions()
	cfg.TemplatePct = 60
	c, truth, err := synth.Editions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), ttlSources(t, c), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.TypedByProfile == 0 {
		t.Fatal("no articles typed by property profile")
	}
	// Every type assignment — template-derived or inferred — must agree
	// with the generator's ground truth for the article's attributes.
	for _, l := range res.Corpus.Languages() {
		for _, a := range res.Corpus.Articles(l) {
			if a.Infobox == nil || a.Type == "" {
				continue
			}
			canon := truth.AttrCanon[l][a.Type]
			if canon == nil {
				t.Fatalf("%s:%s typed %q, not a type of %s", l, a.Title, a.Type, l)
			}
			for _, av := range a.Infobox.Attrs {
				if _, ok := canon[av.Name]; !ok {
					t.Fatalf("%s:%s attribute %q not in truth schema of %q", l, a.Title, av.Name, a.Type)
				}
			}
		}
	}
	// The pass can be disabled.
	res2, err := Run(context.Background(), ttlSources(t, c), Options{NoTypeInference: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := res2.Totals().TypedByProfile; n != 0 {
		t.Fatalf("NoTypeInference still typed %d articles", n)
	}
}

func TestDryRunCountsWithoutBuilding(t *testing.T) {
	c, _, err := synth.Editions(smallEditions())
	if err != nil {
		t.Fatal(err)
	}
	wet, err := Run(context.Background(), ttlSources(t, c), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dry, err := Run(context.Background(), ttlSources(t, c), Options{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if dry.Corpus != nil {
		t.Fatal("dry run built a corpus")
	}
	wt, dt := wet.Totals(), dry.Totals()
	if dt.Triples != wt.Triples || dt.AttrTriples != wt.AttrTriples || dt.CrossLinks != wt.CrossLinks {
		t.Fatalf("dry-run counts diverge: dry %+v wet %+v", dt, wt)
	}
	if dt.Entities != 0 || dt.Infoboxes != 0 {
		t.Fatalf("dry run reported assembled entities: %+v", dt)
	}
}

func TestSkipAccounting(t *testing.T) {
	var doc strings.Builder
	sub := "<http://dbpedia.org/resource/Alpha>"
	doc.WriteString("not a triple at all\n")
	doc.WriteString("<http://de.dbpedia.org/resource/Beta> <http://de.dbpedia.org/property/name> \"x\" .\n")
	doc.WriteString("<http://dbpedia.org/resource/Category:Things> <http://dbpedia.org/property/name> \"x\" .\n")
	doc.WriteString(sub + " <http://dbpedia.org/ontology/abstract> \"long text\"@en .\n")
	doc.WriteString(sub + " <http://www.w3.org/2002/07/owl#sameAs> <http://fr.dbpedia.org/resource/Alpha> .\n")
	doc.WriteString(sub + " <http://www.w3.org/2002/07/owl#sameAs> <http://dbpedia.org/resource/Alpha_2> .\n")
	doc.WriteString(sub + " <http://dbpedia.org/property/wikiPageUsesTemplate> \"not a resource\" .\n")
	doc.WriteString(sub + " <http://www.w3.org/2002/07/owl#sameAs> <http://pt.dbpedia.org/resource/Alfa> .\n")
	for i := 0; i < maxAtomsPerAttr+3; i++ {
		fmt.Fprintf(&doc, "%s <http://dbpedia.org/property/crowded> \"v%c\" .\n", sub, 'a'+i%26)
	}
	doc.WriteString(sub + " <http://dbpedia.org/property/name> \"Alpha\" .\n")

	res, err := Run(context.Background(),
		[]Source{{Lang: "en", Format: FormatTTL, Reader: strings.NewReader(doc.String())}},
		Options{Languages: []wiki.Language{"en", "pt"}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerLang["en"]
	want := map[string]int{
		SkipMalformedTriple:  1,
		SkipForeignSubject:   1,
		SkipNonArticle:       1,
		SkipIgnoredPredicate: 1,
		SkipForeignLink:      1,
		SkipSelfLink:         1,
		SkipBadObject:        1,
		SkipValueOverflow:    3,
	}
	for reason, n := range want {
		if s.Skipped[reason] != n {
			t.Errorf("skip[%s] = %d, want %d (all: %v)", reason, s.Skipped[reason], n, s.Skipped)
		}
	}
	if got := s.SkippedTotal(); got != 10 {
		t.Errorf("SkippedTotal = %d, want 10", got)
	}
	a, ok := res.Corpus.Get("en", "Alpha")
	if !ok {
		t.Fatal("Alpha not ingested")
	}
	if target, _ := a.CrossLink("pt"); target != "Alfa" {
		t.Fatalf("pt cross-link = %q, want Alfa", target)
	}
	if av, _ := a.Infobox.Get("crowded"); len(strings.Split(av.Text, ", ")) != maxAtomsPerAttr {
		t.Fatalf("crowded kept %d atoms, want %d", len(strings.Split(av.Text, ", ")), maxAtomsPerAttr)
	}
}

func TestClassifyFile(t *testing.T) {
	cases := []struct {
		name   string
		lang   wiki.Language
		format Format
		ok     bool
	}{
		{"en-infobox-properties.ttl", "en", FormatTTL, true},
		{"en-interlanguage-links.ttl.gz", "en", FormatTTL, true},
		{"pt-infobox-properties.ttl.bz2", "pt", FormatTTL, true},
		{"zh-min-nan-infobox-properties.ttl", "zh-min-nan", FormatTTL, true},
		{"be-tarask-interlanguage-links.ttl.bz2", "be-tarask", FormatTTL, true},
		{"vi.ttl", "vi", FormatTTL, true},
		{"vi.xml", "vi", FormatXML, true},
		{"nds-nl.xml.gz", "nds-nl", FormatXML, true},
		{"en-infobox-properties-2026.ttl", "en", FormatTTL, true},
		{"README.md", "", 0, false},
		{"EN.ttl", "", 0, false},
		{"-infobox-properties.ttl", "", 0, false},
		{"archive.tar.gz", "", 0, false},
		{"en.ttl.zst", "", 0, false},
	}
	for _, tc := range cases {
		src, ok := classifyFile(tc.name)
		if ok != tc.ok || (ok && (src.Lang != tc.lang || src.Format != tc.format)) {
			t.Errorf("classifyFile(%q) = %+v, %v; want lang=%q format=%v ok=%v",
				tc.name, src, ok, tc.lang, tc.format, tc.ok)
		}
	}
}

func TestDirMixedFormats(t *testing.T) {
	cfg := smallEditions()
	cfg.Languages = []wiki.Language{"en", "pt", "vi"}
	cfg.EntitiesPerType = 15
	c, _, err := synth.Editions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// English arrives as gzipped TTL, the others as XML page dumps.
	var props, links bytes.Buffer
	if err := WriteProperties(&props, c, "en"); err != nil {
		t.Fatal(err)
	}
	if err := WriteLinks(&links, c, "en"); err != nil {
		t.Fatal(err)
	}
	writeGz := func(name string, data []byte) {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(data)
		zw.Close()
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeGz("en-infobox-properties.ttl.gz", props.Bytes())
	writeGz("en-interlanguage-links.ttl.gz", links.Bytes())
	for _, l := range []wiki.Language{"pt", "vi"} {
		var buf bytes.Buffer
		if err := dump.WriteCorpus(&buf, c, l); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, string(l)+".xml"), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("notes\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Dir(context.Background(), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Corpus.Fingerprint(), c.Fingerprint(); got != want {
		diffCorpora(t, c, res.Corpus)
		t.Fatalf("mixed-format dir fingerprint %x != original %x", got, want)
	}
	if res.Bytes == 0 {
		t.Fatal("no bytes accounted")
	}
	if f := res.PerLang["en"].Files; f != 2 {
		t.Fatalf("en files = %d, want 2", f)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	c, _, err := synth.Editions(smallEditions())
	if err != nil {
		t.Fatal(err)
	}
	var prints []uint64
	for _, workers := range []int{1, 2, 8} {
		res, err := Run(context.Background(), ttlSources(t, c), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		prints = append(prints, res.Corpus.Fingerprint())
	}
	if prints[0] != prints[1] || prints[1] != prints[2] {
		t.Fatalf("fingerprints vary with worker count: %x", prints)
	}
}

func TestRunProgressAndLanguageFilter(t *testing.T) {
	c, _, err := synth.Editions(smallEditions())
	if err != nil {
		t.Fatal(err)
	}
	var events atomic.Int64
	res, err := Run(context.Background(), ttlSources(t, c), Options{
		Languages: []wiki.Language{"en", "de"},
		Progress:  func(ev Progress) { events.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Languages(); len(got) != 2 || got[0] != "de" || got[1] != "en" {
		t.Fatalf("languages = %v, want [de en]", got)
	}
	if events.Load() != 4 { // 2 languages × (properties + links)
		t.Fatalf("progress events = %d, want 4", events.Load())
	}
	// Links into excluded editions are dropped and tallied.
	if res.PerLang["en"].Skipped[SkipForeignLink] == 0 {
		t.Fatal("expected foreign-link skips for excluded editions")
	}
	for _, a := range res.Corpus.Articles("en") {
		for lang := range a.CrossLinks {
			if lang != "de" {
				t.Fatalf("article %s kept cross-link into excluded %s", a.Title, lang)
			}
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, []Source{{Lang: "en", Format: FormatTTL, Reader: strings.NewReader("")}}, Options{})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

// repeatReader yields chunk n times without materializing the whole
// stream — the padding source for the bounded-memory test.
type repeatReader struct {
	chunk []byte
	n     int
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	k := copy(p, r.chunk[r.off:])
	r.off += k
	if r.off == len(r.chunk) {
		r.off = 0
		r.n--
	}
	return k, nil
}

// TestStreamingBoundedMemory asserts the core streaming property: peak
// heap while ingesting is bounded by the assembled corpus, not the dump
// size. The same corpus is ingested from a dump padded to ~10× the
// bytes (comments plus ignorable triples); the padded run's heap peak
// must not grow in proportion to the extra input.
func TestStreamingBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile test")
	}
	cfg := smallEditions()
	cfg.Languages = []wiki.Language{"en", "pt"}
	c, _, err := synth.Editions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var props, links bytes.Buffer
	if err := WriteProperties(&props, c, "en"); err != nil {
		t.Fatal(err)
	}
	if err := WriteLinks(&links, c, "en"); err != nil {
		t.Fatal(err)
	}
	base := int64(props.Len() + links.Len())

	pad := []byte("# padding comment line to stretch the dump without changing the corpus\n" +
		"<http://dbpedia.org/resource/Padding> <http://dbpedia.org/ontology/abstract> \"ignored filler value\"@en .\n")
	padRepeat := int(base*9/int64(len(pad))) + 1

	run := func(padded bool) (uint64, int64, uint64) {
		sources := []Source{
			{Lang: "en", Format: FormatTTL, Reader: bytes.NewReader(props.Bytes())},
			{Lang: "en", Format: FormatTTL, Reader: bytes.NewReader(links.Bytes())},
		}
		if padded {
			sources = append(sources, Source{Lang: "en", Format: FormatTTL,
				Reader: &repeatReader{chunk: pad, n: padRepeat}})
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		floor := ms.HeapAlloc
		var peak atomic.Uint64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-done:
					return
				default:
				}
				runtime.ReadMemStats(&ms)
				if h := ms.HeapAlloc; h > peak.Load() {
					peak.Store(h)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		res, err := Run(context.Background(), sources, Options{})
		done <- struct{}{}
		<-done
		if err != nil {
			t.Fatal(err)
		}
		p := peak.Load()
		if p < floor {
			p = floor
		}
		return p - floor, res.Bytes, res.Corpus.Fingerprint()
	}

	peak1, bytes1, fp1 := run(false)
	peak10, bytes10, fp10 := run(true)
	if fp1 != fp10 {
		t.Fatalf("padding changed the corpus: %x != %x", fp10, fp1)
	}
	extra := bytes10 - bytes1
	if extra < 8*bytes1 {
		t.Fatalf("padding too small: %d extra over %d base", extra, bytes1)
	}
	// Allow generous jitter, but growth must stay far below the extra
	// input: a quarter of the padding bytes plus a fixed allowance.
	limit := uint64(extra/4) + 8<<20
	if peak10 > peak1+limit {
		t.Fatalf("peak heap grew %d bytes on %d padding bytes (base peak %d) — ingestion is not streaming",
			peak10-peak1, extra, peak1)
	}
	t.Logf("base: %d dump bytes, peak +%d heap; padded: %d dump bytes, peak +%d heap",
		bytes1, peak1, bytes10, peak10)
}
