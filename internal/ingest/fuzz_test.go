package ingest

import (
	"context"
	"strings"
	"testing"

	"repro/internal/wiki"
)

// FuzzTTLTriple asserts the parser's two safety properties on arbitrary
// lines: it never panics, and every accepted triple round-trips through
// its canonical rendering — parse(render(t)) == t, and the rendering is
// itself a fixed point.
func FuzzTTLTriple(f *testing.F) {
	seeds := []string{
		`<http://dbpedia.org/resource/A> <http://dbpedia.org/property/n> "Ada" .`,
		`<http://pt.dbpedia.org/resource/Lisboa> <http://www.w3.org/2002/07/owl#sameAs> <http://dbpedia.org/resource/Lisbon> .`,
		`<http://vi.dbpedia.org/resource/A> <http://vi.dbpedia.org/property/ten> "Hà Nội"@vi .`,
		`<http://dbpedia.org/resource/A> <http://dbpedia.org/property/pop> "12"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<http://dbpedia.org/resource/A> <http://dbpedia.org/property/q> "a \"b\"\t\\\né\U0001F600" .`,
		"# comment",
		"",
		`_:b0 <http://p/q> "x" .`,
		`<http://a/b> <http://p/q> "x" . # trailing`,
		`<broken`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseTriple(line)
		if err != nil {
			return
		}
		rendered := tr.String()
		again, err := ParseTriple(rendered)
		if err != nil {
			t.Fatalf("canonical form %q of accepted line %q rejected: %v", rendered, line, err)
		}
		if again != tr {
			t.Fatalf("round trip changed triple:\n line %q\n was  %+v\n got  %+v", line, tr, again)
		}
		if again.String() != rendered {
			t.Fatalf("canonical render is not a fixed point: %q -> %q", rendered, again.String())
		}
	})
}

// FuzzIngestInfobox streams arbitrary bytes through the whole TTL
// ingestion path: whatever the input, ingestion must neither panic nor
// produce an invalid corpus, and its accounting must stay coherent.
func FuzzIngestInfobox(f *testing.F) {
	f.Add(`<http://dbpedia.org/resource/A> <http://dbpedia.org/property/name> "Ada" .
<http://dbpedia.org/resource/A> <http://dbpedia.org/property/wikiPageUsesTemplate> <http://dbpedia.org/resource/Template:Infobox_person> .
<http://dbpedia.org/resource/A> <http://www.w3.org/2002/07/owl#sameAs> <http://pt.dbpedia.org/resource/Ada> .`)
	f.Add(`<http://dbpedia.org/resource/B> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://dbpedia.org/ontology/Person> .
garbage line
<http://de.dbpedia.org/resource/C> <http://de.dbpedia.org/property/x> "y" .`)
	f.Add("# nothing but comments\n\n")
	f.Add(strings.Repeat(`<http://dbpedia.org/resource/R> <http://dbpedia.org/property/v> "w" .`+"\n", 40))
	f.Fuzz(func(t *testing.T, doc string) {
		res, err := Run(context.Background(),
			[]Source{{Lang: "en", Format: FormatTTL, Reader: strings.NewReader(doc)}},
			Options{Languages: []wiki.Language{"en", "pt"}})
		if err != nil {
			// Only infrastructure errors (unreadable source, cancellation)
			// are fatal; malformed content must be skipped, not fatal.
			t.Fatalf("Run failed on in-memory source: %v", err)
		}
		var entities int
		for _, l := range res.Corpus.Languages() {
			for _, a := range res.Corpus.Articles(l) {
				entities++
				if err := a.Validate(); err != nil {
					t.Fatalf("ingested article fails validation: %v", err)
				}
			}
		}
		tot := res.Totals()
		if entities != tot.Entities {
			t.Fatalf("corpus holds %d articles, stats claim %d", entities, tot.Entities)
		}
		if tot.AttrTriples+tot.TypeTriples+tot.TemplateTriples+tot.CrossLinks > tot.Triples {
			t.Fatalf("accepted more triples than parsed: %+v", tot)
		}
		// Ingesting the same stream twice is deterministic.
		res2, err := Run(context.Background(),
			[]Source{{Lang: "en", Format: FormatTTL, Reader: strings.NewReader(doc)}},
			Options{Languages: []wiki.Language{"en", "pt"}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Corpus.Fingerprint() != res2.Corpus.Fingerprint() {
			t.Fatal("same input produced different corpora")
		}
	})
}
