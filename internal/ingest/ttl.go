package ingest

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"unicode/utf8"

	"repro/internal/wiki"
)

// Triple is one parsed N-Triples statement. Subject and Predicate are
// IRIs (without the angle brackets); Object is either a resource IRI or
// a literal.
type Triple struct {
	Subject   string
	Predicate string
	Object    Object
}

// Object is an N-Triples object term: a resource IRI, or a literal with
// its decoded lexical form plus an optional language tag or datatype
// IRI (at most one of the two, per the grammar).
type Object struct {
	IsLiteral bool
	IRI       string // resource objects
	Lexical   string // literal objects, escape sequences decoded
	LangTag   string // @tag
	Datatype  string // ^^<iri>
}

// String renders the triple back to canonical N-Triples form. For every
// triple accepted by ParseTriple, re-parsing the rendering yields the
// identical Triple (the fuzz-checked round-trip property).
func (t Triple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(t.Subject)
	b.WriteString("> <")
	b.WriteString(t.Predicate)
	b.WriteString("> ")
	if t.Object.IsLiteral {
		b.WriteByte('"')
		escapeLiteral(&b, t.Object.Lexical)
		b.WriteByte('"')
		if t.Object.LangTag != "" {
			b.WriteByte('@')
			b.WriteString(t.Object.LangTag)
		} else if t.Object.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Object.Datatype)
			b.WriteByte('>')
		}
	} else {
		b.WriteByte('<')
		b.WriteString(t.Object.IRI)
		b.WriteByte('>')
	}
	b.WriteString(" .")
	return b.String()
}

// escapeLiteral writes s with the N-Triples string escapes applied.
func escapeLiteral(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// errSkipLine marks a line that carries no triple at all (blank or
// comment); it is neither counted nor reported.
var errSkipLine = fmt.Errorf("ingest: blank or comment line")

// ParseTriple parses one N-Triples line. Blank lines and #-comments
// return errSkipLine (detectable via IsSkipLine); anything else that
// fails the grammar returns a descriptive error. Blank nodes and
// multi-line literals are out of scope for DBpedia dump files and are
// rejected as malformed.
func ParseTriple(line string) (Triple, error) {
	s := strings.TrimLeft(line, " \t")
	if s == "" || s[0] == '#' {
		return Triple{}, errSkipLine
	}
	var t Triple
	var err error
	t.Subject, s, err = parseIRI(s)
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	s = strings.TrimLeft(s, " \t")
	t.Predicate, s, err = parseIRI(s)
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	s = strings.TrimLeft(s, " \t")
	t.Object, s, err = parseObject(s)
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	s = strings.TrimLeft(s, " \t")
	if !strings.HasPrefix(s, ".") {
		return Triple{}, fmt.Errorf("missing terminating dot")
	}
	if rest := strings.TrimLeft(s[1:], " \t"); rest != "" && rest[0] != '#' {
		return Triple{}, fmt.Errorf("trailing content after dot: %q", rest)
	}
	if !utf8.ValidString(line) {
		return Triple{}, fmt.Errorf("invalid UTF-8")
	}
	return t, nil
}

// IsSkipLine reports whether err marks a blank or comment line rather
// than a malformed triple.
func IsSkipLine(err error) bool { return err == errSkipLine }

// parseIRI consumes an <iri> term and returns the IRI and the rest of
// the line.
func parseIRI(s string) (string, string, error) {
	if !strings.HasPrefix(s, "<") {
		return "", "", fmt.Errorf("want '<', have %q", truncate(s))
	}
	end := strings.IndexByte(s, '>')
	if end < 0 {
		return "", "", fmt.Errorf("unterminated IRI")
	}
	iri := s[1:end]
	if iri == "" {
		return "", "", fmt.Errorf("empty IRI")
	}
	if strings.ContainsAny(iri, " \t\"{}|^`\\<") {
		return "", "", fmt.Errorf("forbidden character in IRI %q", truncate(iri))
	}
	return iri, s[end+1:], nil
}

// parseObject consumes the object term — an IRI or a literal with
// optional language tag / datatype — and returns the rest of the line.
func parseObject(s string) (Object, string, error) {
	if strings.HasPrefix(s, "<") {
		iri, rest, err := parseIRI(s)
		if err != nil {
			return Object{}, "", err
		}
		return Object{IRI: iri}, rest, restObject(rest)
	}
	if !strings.HasPrefix(s, `"`) {
		return Object{}, "", fmt.Errorf("want IRI or literal, have %q", truncate(s))
	}
	lex, rest, err := parseQuoted(s)
	if err != nil {
		return Object{}, "", err
	}
	o := Object{IsLiteral: true, Lexical: lex}
	switch {
	case strings.HasPrefix(rest, "@"):
		end := 1
		for end < len(rest) && (isAlnum(rest[end]) || rest[end] == '-') {
			end++
		}
		o.LangTag = rest[1:end]
		if o.LangTag == "" {
			return Object{}, "", fmt.Errorf("empty language tag")
		}
		rest = rest[end:]
	case strings.HasPrefix(rest, "^^<"):
		dt, r, err := parseIRI(rest[2:])
		if err != nil {
			return Object{}, "", fmt.Errorf("datatype: %w", err)
		}
		o.Datatype = dt
		rest = r
	}
	return o, rest, restObject(rest)
}

// restObject validates that what follows a parsed object can only be
// whitespace and the terminating dot (checked by the caller); it
// rejects a second term glued directly on.
func restObject(rest string) error {
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '.' {
		return fmt.Errorf("unexpected content after object term: %q", truncate(rest))
	}
	return nil
}

// parseQuoted consumes a double-quoted literal, decoding the N-Triples
// escapes, and returns the lexical form plus the rest of the line.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if s[i] == 'U' {
					n = 8
				}
				if i+n >= len(s) {
					return "", "", fmt.Errorf("truncated \\%c escape", s[i])
				}
				v, err := strconv.ParseUint(s[i+1:i+1+n], 16, 32)
				if err != nil {
					return "", "", fmt.Errorf("bad \\%c escape: %v", s[i], err)
				}
				if !utf8.ValidRune(rune(v)) {
					return "", "", fmt.Errorf("escape \\%c%0*x is not a valid rune", s[i], n, v)
				}
				b.WriteRune(rune(v))
				i += n
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
			i++
		case '\n', '\r':
			return "", "", fmt.Errorf("unterminated literal")
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated literal")
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}

// Well-known predicate IRIs of the DBpedia dump vocabulary.
const (
	rdfTypeIRI   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	owlSameAsIRI = "http://www.w3.org/2002/07/owl#sameAs"
	// usesTemplateLocal is the local name of the template-membership
	// predicate, found under both the /property/ and /ontology/
	// namespaces depending on dump vintage.
	usesTemplateLocal = "wikiPageUsesTemplate"
	// interLanguageLocal is the explicit interlanguage-link predicate
	// of the interlanguage-links dumps.
	interLanguageLocal = "wikiPageInterLanguageLink"
)

// dbpediaLang extracts the language edition from a DBpedia IRI host:
// "http://pt.dbpedia.org/…" → "pt", and the bare "http://dbpedia.org/…"
// is the English edition. The second result is false for non-DBpedia
// IRIs or malformed hosts.
func dbpediaLang(iri string) (wiki.Language, bool) {
	rest, ok := strings.CutPrefix(iri, "http://")
	if !ok {
		if rest, ok = strings.CutPrefix(iri, "https://"); !ok {
			return "", false
		}
	}
	host, _, _ := strings.Cut(rest, "/")
	if host == "dbpedia.org" {
		return wiki.English, true
	}
	sub, ok := strings.CutSuffix(host, ".dbpedia.org")
	if !ok {
		return "", false
	}
	lang := wiki.Language(sub)
	if !lang.Valid() {
		return "", false
	}
	return lang, true
}

// localName returns the path segment after the last '/' of an IRI,
// percent-decoded with underscores restored to spaces — the resource
// title or property name. The second result is false when the segment
// is empty or undecodable.
func localName(iri string) (string, bool) {
	idx := strings.LastIndexByte(iri, '/')
	if idx < 0 || idx+1 >= len(iri) {
		return "", false
	}
	seg := iri[idx+1:]
	dec, err := url.PathUnescape(seg)
	if err != nil {
		return "", false
	}
	name := strings.ReplaceAll(dec, "_", " ")
	if strings.TrimSpace(name) == "" {
		return "", false
	}
	return name, true
}

// resourceTitle resolves a DBpedia resource IRI into its language and
// article title ("http://pt.dbpedia.org/resource/São_Paulo" → pt,
// "São Paulo").
func resourceTitle(iri string) (wiki.Language, string, bool) {
	lang, ok := dbpediaLang(iri)
	if !ok || !strings.Contains(iri, "/resource/") {
		return "", "", false
	}
	title, ok := localName(iri)
	if !ok {
		return "", "", false
	}
	return lang, title, true
}

// propertyName resolves a DBpedia property IRI ("…/property/nome") into
// its attribute name; false for IRIs outside a /property/ namespace.
func propertyName(iri string) (string, bool) {
	if !strings.Contains(iri, "/property/") {
		return "", false
	}
	return localName(iri)
}

// encodeTitle renders an article title as a DBpedia IRI segment: spaces
// become underscores, everything else is percent-encoded as a path
// segment. localName inverts it for any title without literal
// underscores (real wiki titles normalize underscores to spaces).
func encodeTitle(title string) string {
	return url.PathEscape(strings.ReplaceAll(title, " ", "_"))
}

// Scanner streams triples out of one N-Triples document without
// holding more than a line at a time. Lines that carry no triple
// (blank, comments) are skipped silently; malformed lines are counted
// per reason and skipped. Use Next until it returns io.EOF.
type Scanner struct {
	sc    *bufio.Scanner
	lines int
	// Malformed counts skipped lines by reason.
	Malformed map[string]int
}

// maxLineBytes bounds a single N-Triples line; DBpedia abstracts can
// run long, 4 MiB is far beyond any property value.
const maxLineBytes = 4 << 20

// NewScanner wraps r.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return &Scanner{sc: sc, Malformed: make(map[string]int)}
}

// Next returns the next well-formed triple, io.EOF at the end of the
// stream, or the underlying reader's error. Malformed lines are
// tallied in Malformed and skipped.
func (s *Scanner) Next() (Triple, error) {
	for s.sc.Scan() {
		s.lines++
		// Blank and comment lines are dropped on the raw byte slice,
		// before any per-line string is allocated.
		raw := bytes.TrimLeft(s.sc.Bytes(), " \t")
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		t, err := ParseTriple(string(raw))
		if err == nil {
			return t, nil
		}
		if !IsSkipLine(err) {
			s.Malformed[SkipMalformedTriple]++
		}
	}
	if err := s.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// Lines returns how many lines have been consumed so far.
func (s *Scanner) Lines() int { return s.lines }
