package ingest

import (
	"bufio"
	"compress/bzip2"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// openDecoded wraps r with the decompressor its leading magic bytes
// call for: gzip (1f 8b), bzip2 ("BZh"), or none. The format is sniffed
// from the stream itself, not the file name, so ".ttl" files that are
// secretly compressed (common with re-served dump mirrors) still
// decode. The returned name is "gzip", "bzip2" or "plain".
func openDecoded(r io.Reader) (io.Reader, string, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	magic, err := br.Peek(3)
	if err != nil && err != io.EOF {
		return nil, "", fmt.Errorf("ingest: sniffing stream: %w", err)
	}
	switch {
	case len(magic) >= 2 && magic[0] == 0x1f && magic[1] == 0x8b:
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, "", fmt.Errorf("ingest: gzip header: %w", err)
		}
		return zr, "gzip", nil
	case len(magic) >= 3 && magic[0] == 'B' && magic[1] == 'Z' && magic[2] == 'h':
		return bzip2.NewReader(br), "bzip2", nil
	default:
		return br, "plain", nil
	}
}

// countingReader counts the raw (compressed) bytes drawn from the
// underlying reader, so throughput reports measure real file bytes.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// openFile opens path and returns a decoded stream plus the counting
// reader tracking raw bytes read. Close the returned closer (the file)
// when done.
func openFile(path string) (io.Reader, *countingReader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	cr := &countingReader{r: f}
	dec, _, err := openDecoded(cr)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return dec, cr, f, nil
}
