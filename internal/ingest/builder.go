package ingest

import (
	"sort"
	"strings"

	"repro/internal/wiki"
)

// Structured skip reasons, shared by the stats report and the CLI
// summary. Every skipped unit of input is tallied under exactly one.
const (
	SkipMalformedTriple  = "malformed-triple"  // line failed the N-Triples grammar
	SkipForeignSubject   = "foreign-subject"   // subject not a resource of this source's language
	SkipNonArticle       = "non-article"       // subject in a non-article namespace (Category:, Template:, …)
	SkipIgnoredPredicate = "ignored-predicate" // predicate outside the infobox vocabulary (abstracts, page links, …)
	SkipForeignLink      = "foreign-link"      // interlanguage link into an edition outside the requested set
	SkipSelfLink         = "self-link"         // interlanguage link back into its own edition
	SkipBadObject        = "bad-object"        // object term unusable for its predicate
	SkipValueOverflow    = "value-overflow"    // attribute already at maxAtomsPerAttr atoms
	SkipNamespace        = "namespace"         // XML page outside namespace 0
	SkipRedirect         = "redirect"          // XML redirect page
	SkipPageError        = "page-error"        // XML page whose wikitext failed to parse
	SkipInvalidArticle   = "invalid-article"   // assembled article failed corpus validation
)

// maxAtomsPerAttr bounds how many value atoms a single attribute
// accumulates; DBpedia property dumps occasionally carry degenerate
// subjects with thousands of repeated triples.
const maxAtomsPerAttr = 32

// atom is one value fragment of an attribute: a literal lexical form,
// or a same-language resource reference that becomes a wiki.Link.
type atom struct {
	text string
	link bool
}

// entityAttr accumulates one attribute's atoms in file order.
type entityAttr struct {
	name  string
	atoms []atom
}

// entity accumulates everything known about one article while its
// triples stream by.
type entity struct {
	title    string
	template string // wikiPageUsesTemplate evidence
	typ      string // rdf:type ontology evidence
	attrs    []*entityAttr
	attrIdx  map[string]int
	links    map[wiki.Language]string
}

// langBuilder assembles one language edition's articles from streamed
// triples and parsed XML pages. It is confined to a single goroutine —
// parallelism in Run is across languages, never within one.
type langBuilder struct {
	lang     wiki.Language
	langSet  map[wiki.Language]bool // requested editions; cross-links outside it are dropped
	dryRun   bool                   // count everything, retain nothing
	entities []*entity              // first-seen order, for deterministic corpora
	index    map[string]*entity
	articles []*wiki.Article // XML path: already-parsed articles, in page order
	artIdx   map[string]int
	stats    *LangStats
}

func newLangBuilder(lang wiki.Language, langSet map[wiki.Language]bool, dryRun bool) *langBuilder {
	return &langBuilder{
		lang:    lang,
		langSet: langSet,
		dryRun:  dryRun,
		index:   make(map[string]*entity),
		artIdx:  make(map[string]int),
		stats:   newLangStats(),
	}
}

func (b *langBuilder) skip(reason string) { b.stats.Skipped[reason]++ }

func (b *langBuilder) entityFor(title string) *entity {
	if e, ok := b.index[title]; ok {
		return e
	}
	e := &entity{title: title, attrIdx: make(map[string]int)}
	b.index[title] = e
	b.entities = append(b.entities, e)
	return e
}

// AddTriple classifies one parsed triple and applies it to the
// builder's state. Triples are accepted only for subjects of the
// builder's own language; everything else is tallied and dropped.
func (b *langBuilder) AddTriple(t Triple) {
	b.stats.Triples++
	subjLang, title, ok := resourceTitle(t.Subject)
	if !ok || subjLang != b.lang {
		b.skip(SkipForeignSubject)
		return
	}
	if ns, _, found := strings.Cut(title, ":"); found && knownNamespace(ns) {
		b.skip(SkipNonArticle)
		return
	}

	predLocal, _ := localName(t.Predicate)
	switch {
	case t.Predicate == rdfTypeIRI:
		b.applyType(title, t.Object)
	case t.Predicate == owlSameAsIRI || predLocal == interLanguageLocal:
		b.applyCrossLink(title, t.Object)
	case predLocal == usesTemplateLocal:
		b.applyTemplate(title, t.Object)
	default:
		name, ok := propertyName(t.Predicate)
		if !ok {
			b.skip(SkipIgnoredPredicate)
			return
		}
		b.applyAttribute(title, name, t.Object)
	}
}

// knownNamespace recognizes the non-article namespace prefixes that
// appear as subjects in DBpedia dumps. Matching is exact and
// case-sensitive: real titles like "Star Trek: Voyager" must not be
// mistaken for namespaced pages.
func knownNamespace(ns string) bool {
	switch ns {
	case "Category", "Template", "File", "Wikipedia", "Help", "Portal",
		"Module", "MediaWiki", "Draft", "Talk", "User":
		return true
	}
	return false
}

func (b *langBuilder) applyType(title string, o Object) {
	if o.IsLiteral || !strings.Contains(o.IRI, "/ontology/") {
		b.skip(SkipIgnoredPredicate)
		return
	}
	name, ok := localName(o.IRI)
	if !ok {
		b.skip(SkipBadObject)
		return
	}
	b.stats.TypeTriples++
	if b.dryRun {
		return
	}
	e := b.entityFor(title)
	if e.typ == "" {
		e.typ = strings.ToLower(name)
	}
}

func (b *langBuilder) applyTemplate(title string, o Object) {
	if o.IsLiteral {
		b.skip(SkipBadObject)
		return
	}
	_, tmplTitle, ok := resourceTitle(o.IRI)
	if !ok {
		b.skip(SkipBadObject)
		return
	}
	tmpl := strings.TrimPrefix(tmplTitle, "Template:")
	// Only infobox templates type an entity; navboxes etc. are noise.
	if !strings.HasPrefix(strings.ToLower(tmpl), "infobox") {
		b.skip(SkipIgnoredPredicate)
		return
	}
	b.stats.TemplateTriples++
	if b.dryRun {
		return
	}
	e := b.entityFor(title)
	if e.template == "" {
		e.template = tmpl
	}
}

func (b *langBuilder) applyCrossLink(title string, o Object) {
	if o.IsLiteral {
		b.skip(SkipBadObject)
		return
	}
	lang, target, ok := resourceTitle(o.IRI)
	if !ok {
		b.skip(SkipBadObject)
		return
	}
	if lang == b.lang {
		b.skip(SkipSelfLink)
		return
	}
	if !b.langSet[lang] {
		b.skip(SkipForeignLink)
		return
	}
	b.stats.CrossLinks++
	if b.dryRun {
		return
	}
	e := b.entityFor(title)
	if e.links == nil {
		e.links = make(map[wiki.Language]string)
	}
	if _, dup := e.links[lang]; !dup {
		e.links[lang] = target
	}
}

func (b *langBuilder) applyAttribute(title, name string, o Object) {
	var a atom
	switch {
	case o.IsLiteral:
		text := strings.TrimSpace(o.Lexical)
		if text == "" {
			b.skip(SkipBadObject)
			return
		}
		a = atom{text: text}
	default:
		lang, target, ok := resourceTitle(o.IRI)
		if !ok {
			b.skip(SkipBadObject)
			return
		}
		// A resource value in another edition is not a same-language
		// hyperlink; keep its title as plain text.
		a = atom{text: target, link: lang == b.lang}
	}
	b.stats.AttrTriples++
	if b.dryRun {
		return
	}
	e := b.entityFor(title)
	idx, ok := e.attrIdx[name]
	if !ok {
		idx = len(e.attrs)
		e.attrIdx[name] = idx
		e.attrs = append(e.attrs, &entityAttr{name: name})
	}
	ea := e.attrs[idx]
	if len(ea.atoms) >= maxAtomsPerAttr {
		b.skip(SkipValueOverflow)
		return
	}
	ea.atoms = append(ea.atoms, a)
}

// AddArticle records an already-parsed article (the MediaWiki XML
// path). Cross-links outside the requested edition set are dropped to
// keep XML- and TTL-built corpora consistent.
func (b *langBuilder) AddArticle(a *wiki.Article) {
	for lang := range a.CrossLinks {
		if !b.langSet[lang] {
			b.skip(SkipForeignLink)
			delete(a.CrossLinks, lang)
			continue
		}
		b.stats.CrossLinks++
	}
	if b.dryRun {
		return
	}
	if _, dup := b.artIdx[a.Title]; dup {
		b.skip(SkipInvalidArticle)
		return
	}
	b.artIdx[a.Title] = len(b.articles)
	b.articles = append(b.articles, a)
}

// finish turns the accumulated state into articles: entity atoms are
// merged into attribute values, the template/ontology/profile evidence
// chain assigns types, and XML articles are appended after the TTL
// entities (each path keeps its own first-seen order).
func (b *langBuilder) finish(inferTypes bool) []*wiki.Article {
	out := make([]*wiki.Article, 0, len(b.entities)+len(b.articles))
	var untyped []*wiki.Article
	for _, e := range b.entities {
		a := &wiki.Article{Language: b.lang, Title: e.title}
		if len(e.attrs) > 0 {
			ib := &wiki.Infobox{}
			for _, ea := range e.attrs {
				texts := make([]string, 0, len(ea.atoms))
				var links []wiki.Link
				for _, at := range ea.atoms {
					texts = append(texts, at.text)
					if at.link {
						links = append(links, wiki.Link{Target: at.text, Anchor: at.text})
					}
				}
				ib.Attrs = append(ib.Attrs, wiki.AttributeValue{
					Name:  ea.name,
					Text:  strings.Join(texts, ", "),
					Links: links,
				})
			}
			if e.template != "" {
				ib.Template = e.template
			} else {
				ib.Template = "Infobox"
			}
			a.Infobox = ib
		}
		switch {
		case e.template != "":
			a.Type = wiki.TemplateType(e.template)
			b.stats.TypedByTemplate++
		case e.typ != "":
			a.Type = e.typ
			b.stats.TypedByOntology++
		case a.Infobox != nil:
			untyped = append(untyped, a)
		}
		if len(e.links) > 0 {
			a.CrossLinks = e.links
		}
		out = append(out, a)
	}
	for _, a := range b.articles {
		out = append(out, a)
	}
	if inferTypes {
		b.stats.TypedByProfile = inferTypesFromProfiles(out, untyped)
	}
	b.stats.Entities = len(out)
	for _, a := range out {
		if a.Infobox != nil {
			b.stats.Infoboxes++
		}
	}
	return out
}

// inferTypesFromProfiles types untyped infobox articles by attribute
// evidence: each known type's attribute-name profile is learned from
// the already-typed articles, and an untyped article adopts the type
// whose profile covers the largest fraction of its schema — if at
// least half of it, with two attributes shared. Ties break
// lexicographically, keeping the assignment deterministic. Returns how
// many articles were typed.
func inferTypesFromProfiles(all, untyped []*wiki.Article) int {
	if len(untyped) == 0 {
		return 0
	}
	profiles := make(map[string]map[string]bool)
	for _, a := range all {
		if a.Type == "" || a.Infobox == nil {
			continue
		}
		p := profiles[a.Type]
		if p == nil {
			p = make(map[string]bool)
			profiles[a.Type] = p
		}
		for _, av := range a.Infobox.Attrs {
			p[av.Name] = true
		}
	}
	if len(profiles) == 0 {
		return 0
	}
	types := make([]string, 0, len(profiles))
	for t := range profiles {
		types = append(types, t)
	}
	sort.Strings(types)
	n := 0
	for _, a := range untyped {
		bestType, bestShared := "", 0
		for _, t := range types {
			shared := 0
			for _, av := range a.Infobox.Attrs {
				if profiles[t][av.Name] {
					shared++
				}
			}
			if shared > bestShared {
				bestType, bestShared = t, shared
			}
		}
		if bestType != "" && bestShared >= 2 && bestShared*2 >= a.Infobox.Len() {
			a.Type = bestType
			n++
		}
	}
	return n
}
