package ingest

import (
	"strings"
	"testing"

	"repro/internal/wiki"
)

func TestParseTriple(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Triple
	}{
		{
			name: "resource object",
			line: `<http://pt.dbpedia.org/resource/Lisboa> <http://www.w3.org/2002/07/owl#sameAs> <http://dbpedia.org/resource/Lisbon> .`,
			want: Triple{
				Subject:   "http://pt.dbpedia.org/resource/Lisboa",
				Predicate: "http://www.w3.org/2002/07/owl#sameAs",
				Object:    Object{IRI: "http://dbpedia.org/resource/Lisbon"},
			},
		},
		{
			name: "plain literal",
			line: `<http://dbpedia.org/resource/A> <http://dbpedia.org/property/name> "Ada" .`,
			want: Triple{
				Subject:   "http://dbpedia.org/resource/A",
				Predicate: "http://dbpedia.org/property/name",
				Object:    Object{IsLiteral: true, Lexical: "Ada"},
			},
		},
		{
			name: "language-tagged literal",
			line: `<http://vi.dbpedia.org/resource/A> <http://vi.dbpedia.org/property/ten> "Hà Nội"@vi .`,
			want: Triple{
				Subject:   "http://vi.dbpedia.org/resource/A",
				Predicate: "http://vi.dbpedia.org/property/ten",
				Object:    Object{IsLiteral: true, Lexical: "Hà Nội", LangTag: "vi"},
			},
		},
		{
			name: "typed literal",
			line: `<http://dbpedia.org/resource/A> <http://dbpedia.org/property/pop> "12345"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
			want: Triple{
				Subject:   "http://dbpedia.org/resource/A",
				Predicate: "http://dbpedia.org/property/pop",
				Object:    Object{IsLiteral: true, Lexical: "12345", Datatype: "http://www.w3.org/2001/XMLSchema#integer"},
			},
		},
		{
			name: "escapes decoded",
			line: `<http://dbpedia.org/resource/A> <http://dbpedia.org/property/q> "a \"b\"\t\\\né" .`,
			want: Triple{
				Subject:   "http://dbpedia.org/resource/A",
				Predicate: "http://dbpedia.org/property/q",
				Object:    Object{IsLiteral: true, Lexical: "a \"b\"\t\\\né"},
			},
		},
		{
			name: "unicode escapes",
			line: `<http://dbpedia.org/resource/A> <http://dbpedia.org/property/q> "é\U0001F600" .`,
			want: Triple{
				Subject:   "http://dbpedia.org/resource/A",
				Predicate: "http://dbpedia.org/property/q",
				Object:    Object{IsLiteral: true, Lexical: "é\U0001F600"},
			},
		},
		{
			name: "leading whitespace and trailing comment",
			line: "\t <http://dbpedia.org/resource/A> <http://dbpedia.org/property/n> \"x\" . # note",
			want: Triple{
				Subject:   "http://dbpedia.org/resource/A",
				Predicate: "http://dbpedia.org/property/n",
				Object:    Object{IsLiteral: true, Lexical: "x"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseTriple(tc.line)
			if err != nil {
				t.Fatalf("ParseTriple(%q): %v", tc.line, err)
			}
			if got != tc.want {
				t.Fatalf("ParseTriple(%q)\n got  %+v\n want %+v", tc.line, got, tc.want)
			}
			// The canonical rendering must re-parse to the identical triple.
			again, err := ParseTriple(got.String())
			if err != nil {
				t.Fatalf("re-parse of %q: %v", got.String(), err)
			}
			if again != got {
				t.Fatalf("round trip changed the triple:\n was %+v\n got %+v", got, again)
			}
		})
	}
}

func TestParseTripleRejects(t *testing.T) {
	lines := []string{
		`<http://a/b> <http://p/q>`,                         // no object
		`<http://a/b> <http://p/q> "x"`,                     // no dot
		`<http://a/b> <http://p/q> "x" extra .`,             // junk between object and dot
		`<http://a/b> <http://p/q> "x" . extra`,             // junk after dot
		`<http://a/b> <http://p/q> "unterminated .`,         // unterminated literal
		`<http://a/b> <http://p/q> "bad\z" .`,               // unknown escape
		`<http://a/b> <http://p/q> "\uD800" .`,              // surrogate rune
		`<http://a/b> <http://p/q> "\u12" .`,                // truncated escape
		`<http://a/b> <http://p/q> ""@ .`,                   // empty language tag
		`<http://a/b> <http://p q> "x" .`,                   // space in IRI
		`<http://a/b> <http://p/q> <http://o/p>"glued" .`,   // glued second term
		`_:b0 <http://p/q> "x" .`,                           // blank node subject
		`<> <http://p/q> "x" .`,                             // empty IRI
		`<http://a/b> <http://p/q> "x"^^<http://d t> .`,     // bad datatype IRI
		"<http://a/b> <http://p/q> \"x\xff\xfe\" .",         // invalid UTF-8
		`<http://a/<b> <http://p/q> "x" .`,                  // '<' inside IRI
		`<http://a/b> <http://p/q> "a" "b" .`,               // two objects
		`<http://a/b> <http://p/q> "x" .<http://a/b> <http`, // run-on line
	}
	for _, line := range lines {
		if _, err := ParseTriple(line); err == nil || IsSkipLine(err) {
			t.Errorf("ParseTriple(%q) = %v, want malformed error", line, err)
		}
	}
}

func TestParseTripleSkipsBlankAndComments(t *testing.T) {
	for _, line := range []string{"", "   ", "\t", "# a comment", "  # indented comment"} {
		if _, err := ParseTriple(line); !IsSkipLine(err) {
			t.Errorf("ParseTriple(%q) = %v, want skip-line", line, err)
		}
	}
}

func TestScannerTalliesMalformed(t *testing.T) {
	doc := strings.Join([]string{
		"# header",
		`<http://dbpedia.org/resource/A> <http://dbpedia.org/property/n> "one" .`,
		"this is not a triple",
		"",
		`<http://dbpedia.org/resource/B> <http://dbpedia.org/property/n> "two" .`,
		`<http://broken> <http://p/q>`,
	}, "\n")
	sc := NewScanner(strings.NewReader(doc))
	var got []Triple
	for {
		tr, err := sc.Next()
		if err != nil {
			break
		}
		got = append(got, tr)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d triples, want 2", len(got))
	}
	if sc.Malformed[SkipMalformedTriple] != 2 {
		t.Fatalf("malformed = %v, want 2 under %s", sc.Malformed, SkipMalformedTriple)
	}
	if sc.Lines() != 6 {
		t.Fatalf("lines = %d, want 6", sc.Lines())
	}
}

func TestDBpediaLang(t *testing.T) {
	cases := []struct {
		iri  string
		lang wiki.Language
		ok   bool
	}{
		{"http://dbpedia.org/resource/Lisbon", "en", true},
		{"https://dbpedia.org/resource/Lisbon", "en", true},
		{"http://pt.dbpedia.org/resource/Lisboa", "pt", true},
		{"http://zh-min-nan.dbpedia.org/resource/A", "zh-min-nan", true},
		{"http://be-tarask.dbpedia.org/resource/A", "be-tarask", true},
		{"http://example.org/resource/A", "", false},
		{"http://EN.dbpedia.org/resource/A", "", false},
		{"ftp://dbpedia.org/resource/A", "", false},
		{"http://dbpedia.org.evil.com/resource/A", "", false},
	}
	for _, tc := range cases {
		lang, ok := dbpediaLang(tc.iri)
		if lang != tc.lang || ok != tc.ok {
			t.Errorf("dbpediaLang(%q) = %q, %v; want %q, %v", tc.iri, lang, ok, tc.lang, tc.ok)
		}
	}
}

func TestResourceTitle(t *testing.T) {
	lang, title, ok := resourceTitle("http://pt.dbpedia.org/resource/S%C3%A3o_Paulo")
	if !ok || lang != "pt" || title != "São Paulo" {
		t.Fatalf("resourceTitle = %q, %q, %v", lang, title, ok)
	}
	if _, _, ok := resourceTitle("http://pt.dbpedia.org/property/nome"); ok {
		t.Fatal("property IRI accepted as resource")
	}
	if _, _, ok := resourceTitle("http://pt.dbpedia.org/resource/"); ok {
		t.Fatal("empty title accepted")
	}
}

func TestPropertyName(t *testing.T) {
	name, ok := propertyName("http://vi.dbpedia.org/property/d%C3%A2n_s%E1%BB%91")
	if !ok || name != "dân số" {
		t.Fatalf("propertyName = %q, %v", name, ok)
	}
	if _, ok := propertyName("http://vi.dbpedia.org/resource/A"); ok {
		t.Fatal("resource IRI accepted as property")
	}
}

func TestEncodeTitleRoundTrip(t *testing.T) {
	for _, title := range []string{"São Paulo", "Łódź", "C++ (programming language)", "Plain", "A/B testing"} {
		iri := "http://dbpedia.org/resource/" + encodeTitle(title)
		lang, got, ok := resourceTitle(iri)
		if !ok || lang != "en" || got != title {
			t.Errorf("round trip of %q via %q = %q, %v", title, iri, got, ok)
		}
	}
}
