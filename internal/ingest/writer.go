package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/wiki"
)

// This file renders a corpus back into DBpedia-style dump files — the
// inverse of the TTL ingestion path. corpusgen uses it to fabricate
// dump sets for CI and benchmarks, and the round-trip tests use it to
// prove ingestion reconstructs what was written.

// hostOf renders the DBpedia host of a language edition: the English
// edition lives on the bare apex domain, exactly as in real dumps, so
// ingestion's apex→en mapping is exercised by generated data too.
func hostOf(lang wiki.Language) string {
	if lang == wiki.English {
		return "dbpedia.org"
	}
	return string(lang) + ".dbpedia.org"
}

func resourceIRI(lang wiki.Language, title string) string {
	return "http://" + hostOf(lang) + "/resource/" + encodeTitle(title)
}

func propertyIRI(lang wiki.Language, name string) string {
	return "http://" + hostOf(lang) + "/property/" + encodeTitle(name)
}

// WriteProperties renders one language edition's infobox data as a
// DBpedia infobox-properties N-Triples dump: per article, one template
// triple plus one triple per attribute value atom. Values split on the
// ", " joiner ingestion uses, so a written corpus re-ingests to the
// same attribute values; atoms that match a link become resource
// triples, the rest literals.
func WriteProperties(w io.Writer, c *wiki.Corpus, lang wiki.Language) error {
	bw := bufio.NewWriterSize(w, 256<<10)
	fmt.Fprintf(bw, "# infobox properties for %s\n", lang)
	for _, a := range c.Articles(lang) {
		if a.Infobox == nil {
			continue
		}
		subj := resourceIRI(lang, a.Title)
		if a.Infobox.Template != "" && a.Infobox.Template != "Infobox" {
			t := Triple{
				Subject:   subj,
				Predicate: "http://dbpedia.org/property/" + usesTemplateLocal,
				Object:    Object{IRI: resourceIRI(lang, "Template:"+a.Infobox.Template)},
			}
			fmt.Fprintln(bw, t.String())
		}
		for _, av := range a.Infobox.Attrs {
			pred := propertyIRI(lang, av.Name)
			links := make(map[string]bool, len(av.Links))
			for _, l := range av.Links {
				links[l.Target] = true
			}
			for _, atomText := range strings.Split(av.Text, ", ") {
				if atomText == "" {
					continue
				}
				var obj Object
				if links[atomText] {
					obj = Object{IRI: resourceIRI(lang, atomText)}
				} else {
					obj = Object{IsLiteral: true, Lexical: atomText}
				}
				fmt.Fprintln(bw, Triple{Subject: subj, Predicate: pred, Object: obj}.String())
			}
		}
	}
	return bw.Flush()
}

// WriteLinks renders one language edition's cross-language links as a
// DBpedia interlanguage-links N-Triples dump (owl:sameAs).
func WriteLinks(w io.Writer, c *wiki.Corpus, lang wiki.Language) error {
	bw := bufio.NewWriterSize(w, 256<<10)
	fmt.Fprintf(bw, "# interlanguage links for %s\n", lang)
	for _, a := range c.Articles(lang) {
		subj := resourceIRI(lang, a.Title)
		for _, cl := range a.SortedCrossLinks() {
			t := Triple{
				Subject:   subj,
				Predicate: owlSameAsIRI,
				Object:    Object{IRI: resourceIRI(cl.Language, cl.Title)},
			}
			fmt.Fprintln(bw, t.String())
		}
	}
	return bw.Flush()
}
