package dump

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/wiki"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, wiki.English)
	pages := []struct{ title, text string }{
		{"Alpha", "{{Infobox film\n| name = Alpha\n}}\n[[Category:Films]]"},
		{"Beta & Gamma", "text with <angle> brackets & ampersands"},
		{"Hoàng đế cuối cùng", "unicode title"},
	}
	for _, p := range pages {
		if err := w.WritePage(p.title, p.text); err != nil {
			t.Fatalf("WritePage: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.WritePage("late", "x"); err == nil {
		t.Error("expected write-after-close error")
	}

	r := NewReader(&buf)
	got, err := r.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(got) != len(pages) {
		t.Fatalf("pages = %d, want %d", len(got), len(pages))
	}
	for i, p := range pages {
		if got[i].Title != p.title {
			t.Errorf("page %d title = %q, want %q", i, got[i].Title, p.title)
		}
		if got[i].Text != p.text {
			t.Errorf("page %d text = %q, want %q", i, got[i].Text, p.text)
		}
		if got[i].ID != i+1 {
			t.Errorf("page %d id = %d", i, got[i].ID)
		}
	}
	if r.LangHint != wiki.English {
		t.Errorf("LangHint = %q", r.LangHint)
	}
}

func TestReaderEOFIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, wiki.English)
	w.WritePage("One", "x")
	w.Close()
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("Next after end = %v, want EOF", err)
		}
	}
}

func TestReaderMalformedXML(t *testing.T) {
	r := NewReader(strings.NewReader("<mediawiki><page><title>X</title>"))
	_, err := r.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("err = %v, want structural error", err)
	}
}

func TestCorpusDumpRoundTrip(t *testing.T) {
	orig := wiki.NewCorpus()
	en := &wiki.Article{
		Language: wiki.English, Title: "The Last Emperor", Type: "film",
		Infobox: &wiki.Infobox{Template: "Infobox film", Attrs: []wiki.AttributeValue{
			{Name: "directed by", Text: "Bernardo Bertolucci", Links: []wiki.Link{{Target: "Bernardo Bertolucci", Anchor: "Bernardo Bertolucci"}}},
			{Name: "running time", Text: "160 minutes"},
		}},
		Categories: []string{"1987 films"},
		CrossLinks: map[wiki.Language]string{wiki.Portuguese: "O Último Imperador"},
	}
	pt := &wiki.Article{
		Language: wiki.Portuguese, Title: "O Último Imperador", Type: "filme",
		Infobox: &wiki.Infobox{Template: "Infobox filme", Attrs: []wiki.AttributeValue{
			{Name: "direção", Text: "Bernardo Bertolucci"},
			{Name: "duração", Text: "165 min"},
		}},
		CrossLinks: map[wiki.Language]string{wiki.English: "The Last Emperor"},
	}
	orig.MustAdd(en)
	orig.MustAdd(pt)

	loaded := wiki.NewCorpus()
	for _, lang := range []wiki.Language{wiki.English, wiki.Portuguese} {
		var buf bytes.Buffer
		if err := WriteCorpus(&buf, orig, lang); err != nil {
			t.Fatalf("WriteCorpus(%s): %v", lang, err)
		}
		res, err := LoadCorpus(loaded, &buf, lang)
		if err != nil {
			t.Fatalf("LoadCorpus(%s): %v", lang, err)
		}
		if len(res.Errors) > 0 {
			t.Fatalf("LoadCorpus(%s) page errors: %v", lang, res.Errors)
		}
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d articles", loaded.Len())
	}
	pairs := loaded.Pairs(wiki.PtEn)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	gotEn, _ := loaded.Get(wiki.English, "The Last Emperor")
	if gotEn.Type != "film" || gotEn.Infobox.Len() != 2 {
		t.Errorf("round-trip en article = %+v", gotEn)
	}
	dir, ok := gotEn.Infobox.Get("directed by")
	if !ok || len(dir.Links) != 1 {
		t.Errorf("round-trip links = %+v", dir)
	}
}

func TestLoadCorpusSkipsNonArticleNamespaces(t *testing.T) {
	xmlDoc := `<mediawiki xml:lang="en"><siteinfo><lang>en</lang></siteinfo>
<page><title>Talk:X</title><ns>1</ns><id>1</id><revision><id>1</id><text>talk</text></revision></page>
<page><title>Real</title><ns>0</ns><id>2</id><revision><id>2</id><text>body</text></revision></page>
</mediawiki>`
	c := wiki.NewCorpus()
	res, err := LoadCorpus(c, strings.NewReader(xmlDoc), wiki.English)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if res.Skipped != 1 || res.Pages != 1 {
		t.Errorf("result = %+v", res)
	}
	if c.Len() != 1 {
		t.Errorf("corpus len = %d", c.Len())
	}
}

func TestLoadCorpusUsesLangHint(t *testing.T) {
	xmlDoc := `<mediawiki xml:lang="pt"><page><title>P</title><ns>0</ns><id>1</id><revision><id>1</id><text>t</text></revision></page></mediawiki>`
	c := wiki.NewCorpus()
	if _, err := LoadCorpus(c, strings.NewReader(xmlDoc), ""); err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if _, ok := c.Get(wiki.Portuguese, "P"); !ok {
		t.Error("article not stored under hinted language")
	}
}

func TestLoadCorpusRecordsPageErrors(t *testing.T) {
	bad := "{{Infobox film\n| name = unclosed"
	xmlDoc := `<mediawiki xml:lang="en"><page><title>Bad</title><ns>0</ns><id>1</id><revision><id>1</id><text>` + bad + `</text></revision></page></mediawiki>`
	c := wiki.NewCorpus()
	res, err := LoadCorpus(c, strings.NewReader(xmlDoc), wiki.English)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(res.Errors) != 1 {
		t.Errorf("errors = %v", res.Errors)
	}
	if c.Len() != 0 {
		t.Errorf("bad page stored")
	}
}
