package dump

import (
	"strings"
	"testing"

	"repro/internal/wiki"
)

func TestReaderTakesLatestRevision(t *testing.T) {
	doc := `<mediawiki xml:lang="en"><page><title>X</title><ns>0</ns><id>1</id>
<revision><id>1</id><text>old text</text></revision>
<revision><id>2</id><text>new text</text></revision>
</page></mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 1 || pages[0].Text != "new text" {
		t.Fatalf("pages = %+v", pages)
	}
}

func TestReaderPageWithoutRevision(t *testing.T) {
	doc := `<mediawiki xml:lang="en"><page><title>X</title><ns>0</ns><id>1</id></page></mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 1 || pages[0].Text != "" {
		t.Fatalf("pages = %+v", pages)
	}
}

func TestReaderAssignsSequentialIDsWhenMissing(t *testing.T) {
	doc := `<mediawiki xml:lang="en">
<page><title>A</title><ns>0</ns><revision><text>a</text></revision></page>
<page><title>B</title><ns>0</ns><revision><text>b</text></revision></page>
</mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if pages[0].ID != 1 || pages[1].ID != 2 {
		t.Fatalf("ids = %d, %d", pages[0].ID, pages[1].ID)
	}
}

func TestReaderIgnoresUnknownElements(t *testing.T) {
	doc := `<mediawiki xml:lang="en"><unknown><deep>stuff</deep></unknown>
<page><title>X</title><ns>0</ns><id>1</id><revision><id>1</id><text>t</text></revision></page>
</mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 1 {
		t.Fatalf("pages = %d", len(pages))
	}
}

func TestWriterEmptyDumpIsValid(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, wiki.Portuguese)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pages, err := NewReader(strings.NewReader(b.String())).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 0 {
		t.Fatalf("pages = %d", len(pages))
	}
}

func TestWriterCloseIdempotent(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, wiki.English)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "</mediawiki>"); n != 1 {
		t.Fatalf("document closed %d times", n)
	}
}
