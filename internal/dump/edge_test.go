package dump

import (
	"strings"
	"testing"

	"repro/internal/wiki"
)

func TestReaderTakesLatestRevision(t *testing.T) {
	doc := `<mediawiki xml:lang="en"><page><title>X</title><ns>0</ns><id>1</id>
<revision><id>1</id><text>old text</text></revision>
<revision><id>2</id><text>new text</text></revision>
</page></mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 1 || pages[0].Text != "new text" {
		t.Fatalf("pages = %+v", pages)
	}
}

func TestReaderPageWithoutRevision(t *testing.T) {
	doc := `<mediawiki xml:lang="en"><page><title>X</title><ns>0</ns><id>1</id></page></mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 1 || pages[0].Text != "" {
		t.Fatalf("pages = %+v", pages)
	}
}

func TestReaderAssignsSequentialIDsWhenMissing(t *testing.T) {
	doc := `<mediawiki xml:lang="en">
<page><title>A</title><ns>0</ns><revision><text>a</text></revision></page>
<page><title>B</title><ns>0</ns><revision><text>b</text></revision></page>
</mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if pages[0].ID != 1 || pages[1].ID != 2 {
		t.Fatalf("ids = %d, %d", pages[0].ID, pages[1].ID)
	}
}

func TestReaderIgnoresUnknownElements(t *testing.T) {
	doc := `<mediawiki xml:lang="en"><unknown><deep>stuff</deep></unknown>
<page><title>X</title><ns>0</ns><id>1</id><revision><id>1</id><text>t</text></revision></page>
</mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 1 {
		t.Fatalf("pages = %d", len(pages))
	}
}

func TestWriterEmptyDumpIsValid(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, wiki.Portuguese)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pages, err := NewReader(strings.NewReader(b.String())).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 0 {
		t.Fatalf("pages = %d", len(pages))
	}
}

func TestWriterCloseIdempotent(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, wiki.English)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "</mediawiki>"); n != 1 {
		t.Fatalf("document closed %d times", n)
	}
}

func TestReaderRedirectPage(t *testing.T) {
	doc := `<mediawiki xml:lang="en">
<page><title>UK</title><ns>0</ns><id>1</id><redirect title="United Kingdom"/>
<revision><id>1</id><text>#REDIRECT [[United Kingdom]]</text></revision></page>
<page><title>United Kingdom</title><ns>0</ns><id>2</id><revision><id>2</id><text>plain</text></revision></page>
</mediawiki>`
	pages, err := NewReader(strings.NewReader(doc)).All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(pages) != 2 {
		t.Fatalf("pages = %d, want 2", len(pages))
	}
	if pages[0].Redirect != "United Kingdom" {
		t.Fatalf("redirect = %q, want United Kingdom", pages[0].Redirect)
	}
	if pages[1].Redirect != "" {
		t.Fatalf("regular page carries redirect %q", pages[1].Redirect)
	}
}

func TestLoadCorpusSkipsRedirectsAndNamespaces(t *testing.T) {
	doc := `<mediawiki xml:lang="en">
<page><title>UK</title><ns>0</ns><id>1</id><redirect title="United Kingdom"/>
<revision><text>#REDIRECT [[United Kingdom]]</text></revision></page>
<page><title>Talk:United Kingdom</title><ns>1</ns><id>2</id><revision><text>chatter</text></revision></page>
<page><title>Template:Infobox country</title><ns>10</ns><id>3</id><revision><text>{{doc}}</text></revision></page>
<page><title>United Kingdom</title><ns>0</ns><id>4</id><revision><text>An article.</text></revision></page>
<page><title>Empty</title><ns>0</ns><id>5</id></page>
</mediawiki>`
	c := wiki.NewCorpus()
	res, err := LoadCorpus(c, strings.NewReader(doc), wiki.English)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if res.Redirects != 1 {
		t.Fatalf("redirects = %d, want 1", res.Redirects)
	}
	if res.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", res.Skipped)
	}
	// The redirect and the namespaced pages never become articles; the
	// zero-revision page still does (an article with no infobox).
	if res.Pages != 2 || len(res.Errors) != 0 {
		t.Fatalf("pages = %d errors = %v, want 2 pages, no errors", res.Pages, res.Errors)
	}
	if _, ok := c.Get(wiki.English, "UK"); ok {
		t.Fatal("redirect page was loaded as an article")
	}
	if _, ok := c.Get(wiki.English, "Template:Infobox country"); ok {
		t.Fatal("template page was loaded as an article")
	}
	for _, title := range []string{"United Kingdom", "Empty"} {
		a, ok := c.Get(wiki.English, title)
		if !ok {
			t.Fatalf("article %q not loaded", title)
		}
		if a.Infobox != nil {
			t.Fatalf("article %q unexpectedly has an infobox", title)
		}
	}
}

func TestLoadCorpusExplicitLanguageBeatsSiteinfo(t *testing.T) {
	doc := `<mediawiki xml:lang="en"><siteinfo><sitename>Wikipedia</sitename><lang>en</lang></siteinfo>
<page><title>Lisboa</title><ns>0</ns><id>1</id><revision><text>article text</text></revision></page>
</mediawiki>`
	// The dump claims to be English; the caller says Portuguese. The
	// flag-supplied language wins.
	c := wiki.NewCorpus()
	if _, err := LoadCorpus(c, strings.NewReader(doc), wiki.Portuguese); err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	a, ok := c.Get(wiki.Portuguese, "Lisboa")
	if !ok || a.Language != wiki.Portuguese {
		t.Fatalf("article not loaded under pt: ok=%v a=%+v", ok, a)
	}
	if langs := c.Languages(); len(langs) != 1 || langs[0] != wiki.Portuguese {
		t.Fatalf("languages = %v, want [pt]", langs)
	}

	// With no caller language, the siteinfo hint is used.
	c2 := wiki.NewCorpus()
	if _, err := LoadCorpus(c2, strings.NewReader(doc), ""); err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if _, ok := c2.Get(wiki.English, "Lisboa"); !ok {
		t.Fatal("siteinfo language was not used as the fallback")
	}
}
