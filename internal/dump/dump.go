// Package dump reads and writes MediaWiki-style XML dumps. It provides a
// streaming page reader (so arbitrarily large dumps never need to fit in
// memory), a matching writer, and corpus-level helpers that connect dump
// files to the wiki.Corpus model by parsing each page's wikitext.
package dump

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/wiki"
)

// Page is one <page> element of a dump: its title, namespace, numeric id
// and the wikitext of its latest revision. Redirect carries the target
// title of a <redirect/> page (empty for regular articles); a page with
// zero revisions has empty Text.
type Page struct {
	Title    string
	NS       int
	ID       int
	Text     string
	Redirect string
}

// Reader streams pages out of a MediaWiki XML dump.
type Reader struct {
	dec      *xml.Decoder
	lang     wiki.Language
	sawRoot  bool
	exhaust  bool
	pageSeq  int
	LangHint wiki.Language // language from <siteinfo>, if present
}

// NewReader wraps r. The language recorded in the dump's <siteinfo> is
// exposed through LangHint after the first Next call that passes it.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: xml.NewDecoder(r)}
}

// xmlPage mirrors the subset of the <page> element we consume.
type xmlPage struct {
	Title    string `xml:"title"`
	NS       int    `xml:"ns"`
	ID       int    `xml:"id"`
	Redirect struct {
		Title string `xml:"title,attr"`
	} `xml:"redirect"`
	Revisions []struct {
		Text string `xml:"text"`
	} `xml:"revision"`
}

type xmlSiteinfo struct {
	Lang string `xml:"lang"`
}

// Next returns the next page in the dump, or io.EOF when exhausted.
func (r *Reader) Next() (Page, error) {
	if r.exhaust {
		return Page{}, io.EOF
	}
	for {
		tok, err := r.dec.Token()
		if err == io.EOF {
			r.exhaust = true
			return Page{}, io.EOF
		}
		if err != nil {
			return Page{}, fmt.Errorf("dump: reading token: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case "mediawiki":
			r.sawRoot = true
			for _, attr := range start.Attr {
				if attr.Name.Local == "lang" {
					r.LangHint = wiki.Language(attr.Value)
				}
			}
		case "siteinfo":
			var si xmlSiteinfo
			if err := r.dec.DecodeElement(&si, &start); err != nil {
				return Page{}, fmt.Errorf("dump: siteinfo: %w", err)
			}
			if si.Lang != "" {
				r.LangHint = wiki.Language(si.Lang)
			}
		case "page":
			var xp xmlPage
			if err := r.dec.DecodeElement(&xp, &start); err != nil {
				return Page{}, fmt.Errorf("dump: page: %w", err)
			}
			r.pageSeq++
			p := Page{Title: xp.Title, NS: xp.NS, ID: xp.ID, Redirect: xp.Redirect.Title}
			if p.ID == 0 {
				p.ID = r.pageSeq
			}
			if len(xp.Revisions) > 0 {
				p.Text = xp.Revisions[len(xp.Revisions)-1].Text
			}
			return p, nil
		}
	}
}

// All reads every remaining page.
func (r *Reader) All() ([]Page, error) {
	var pages []Page
	for {
		p, err := r.Next()
		if err == io.EOF {
			return pages, nil
		}
		if err != nil {
			return pages, err
		}
		pages = append(pages, p)
	}
}

// Writer streams pages into a MediaWiki XML dump.
type Writer struct {
	w      io.Writer
	lang   wiki.Language
	opened bool
	closed bool
	nextID int
	err    error
}

// NewWriter creates a dump writer for the given language edition.
func NewWriter(w io.Writer, lang wiki.Language) *Writer {
	return &Writer{w: w, lang: lang, nextID: 1}
}

func (w *Writer) write(s string) {
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}

func (w *Writer) open() {
	if w.opened {
		return
	}
	w.opened = true
	w.write(xml.Header)
	w.write(fmt.Sprintf("<mediawiki xml:lang=%q>\n", w.lang))
	w.write("  <siteinfo>\n")
	w.write(fmt.Sprintf("    <sitename>Wikipedia</sitename>\n    <dbname>%swiki</dbname>\n    <lang>%s</lang>\n", w.lang, w.lang))
	w.write("  </siteinfo>\n")
}

// WritePage appends a page in namespace 0 with the given wikitext.
func (w *Writer) WritePage(title, text string) error {
	if w.closed {
		return fmt.Errorf("dump: write after Close")
	}
	w.open()
	id := w.nextID
	w.nextID++
	w.write("  <page>\n")
	w.write("    <title>" + escape(title) + "</title>\n")
	w.write("    <ns>0</ns>\n")
	w.write(fmt.Sprintf("    <id>%d</id>\n", id))
	w.write("    <revision>\n")
	w.write(fmt.Sprintf("      <id>%d</id>\n", id))
	w.write("      <text>" + escape(text) + "</text>\n")
	w.write("    </revision>\n")
	w.write("  </page>\n")
	return w.err
}

// Close terminates the dump document. It is an error to write afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.open()
	w.closed = true
	w.write("</mediawiki>\n")
	return w.err
}

// escape XML-escapes text content.
func escape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// WriteCorpus renders every article of one language edition into a dump.
func WriteCorpus(w io.Writer, c *wiki.Corpus, lang wiki.Language) error {
	dw := NewWriter(w, lang)
	for _, a := range c.Articles(lang) {
		if err := dw.WritePage(a.Title, wiki.RenderPage(a)); err != nil {
			return err
		}
	}
	return dw.Close()
}

// LoadResult reports what happened while loading a dump into a corpus.
type LoadResult struct {
	Pages     int
	Skipped   int // non-article namespaces
	Redirects int // <redirect/> pages (not loaded as articles)
	Errors    []error
}

// LoadCorpus parses a dump for the given language into the corpus. Pages
// whose wikitext fails to parse are recorded in the result's Errors and
// skipped; redirect pages are counted and skipped (they describe no
// entity of their own); structural XML errors abort. When lang is empty
// the dump's own <siteinfo> language is used; a non-empty lang always
// wins over the siteinfo hint.
func LoadCorpus(c *wiki.Corpus, r io.Reader, lang wiki.Language) (LoadResult, error) {
	var res LoadResult
	dr := NewReader(r)
	for {
		p, err := dr.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		if p.NS != 0 {
			res.Skipped++
			continue
		}
		if p.Redirect != "" {
			res.Redirects++
			continue
		}
		res.Pages++
		effLang := lang
		if effLang == "" {
			effLang = dr.LangHint
		}
		a, err := wiki.ParsePage(effLang, p.Title, p.Text)
		if err != nil {
			res.Errors = append(res.Errors, err)
			continue
		}
		if err := c.Add(a); err != nil {
			res.Errors = append(res.Errors, err)
		}
	}
}
