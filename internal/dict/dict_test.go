package dict

import (
	"testing"
	"testing/quick"

	"repro/internal/wiki"
)

func linkedCorpus(t *testing.T) *wiki.Corpus {
	t.Helper()
	c := wiki.NewCorpus()
	add := func(lang wiki.Language, title string, links map[wiki.Language]string) {
		a := &wiki.Article{Language: lang, Title: title, CrossLinks: links}
		c.MustAdd(a)
	}
	add(wiki.Portuguese, "Estados Unidos", map[wiki.Language]string{wiki.English: "United States"})
	add(wiki.Portuguese, "Irlanda", map[wiki.Language]string{wiki.English: "Ireland"})
	add(wiki.English, "Ireland", map[wiki.Language]string{wiki.Portuguese: "Irlanda"})
	// Link recorded only on the English side.
	add(wiki.English, "Bernardo Bertolucci", map[wiki.Language]string{wiki.Portuguese: "Bernardo Bertolucci (cineasta)"})
	return c
}

func TestBuildFromCrossLinks(t *testing.T) {
	c := linkedCorpus(t)
	d := Build(c, wiki.Portuguese, wiki.English)
	if d.Len() != 3 {
		t.Fatalf("len = %d, entries = %v", d.Len(), d.Entries())
	}
	if got, ok := d.Translate("Estados Unidos"); !ok || got != "United States" {
		t.Errorf("Translate(Estados Unidos) = %q, %v", got, ok)
	}
	// Normalized lookup: case and diacritics insensitive.
	if got, ok := d.Translate("estados unidos"); !ok || got != "United States" {
		t.Errorf("normalized lookup = %q, %v", got, ok)
	}
	// Entry contributed by an en-side cross-link.
	if got, ok := d.Translate("Bernardo Bertolucci (cineasta)"); !ok || got != "Bernardo Bertolucci" {
		t.Errorf("en-side entry = %q, %v", got, ok)
	}
	if _, ok := d.Translate("missing"); ok {
		t.Error("unexpected hit for missing phrase")
	}
}

func TestTranslateOrKeep(t *testing.T) {
	d := New(wiki.Portuguese, wiki.English)
	d.Add("Irlanda", "Ireland")
	if got := d.TranslateOrKeep("Irlanda"); got != "Ireland" {
		t.Errorf("hit = %q", got)
	}
	if got := d.TranslateOrKeep("1963"); got != "1963" {
		t.Errorf("miss = %q", got)
	}
}

func TestAddIgnoresEmpty(t *testing.T) {
	d := New(wiki.Portuguese, wiki.English)
	d.Add("", "x")
	d.Add("y", "")
	d.Add("  ", "z")
	if d.Len() != 0 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestInvert(t *testing.T) {
	d := New(wiki.Portuguese, wiki.English)
	d.Add("Irlanda", "Ireland")
	d.Add("Estados Unidos", "United States")
	inv := d.Invert()
	if inv.From != wiki.English || inv.To != wiki.Portuguese {
		t.Errorf("direction = %s→%s", inv.From, inv.To)
	}
	if got, ok := inv.Translate("Ireland"); !ok || got != "irlanda" {
		t.Errorf("inverted = %q, %v", got, ok)
	}
}

func TestInvertDeterministicOnCollision(t *testing.T) {
	prop := func(seed uint8) bool {
		d := New(wiki.Portuguese, wiki.English)
		d.Add("alpha", "Same")
		d.Add("beta", "Same")
		got, _ := d.Invert().Translate("Same")
		return got == "alpha"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestLabelTranslatorCorrectAndLiteral(t *testing.T) {
	lt := NewLabelTranslator(0, 1)
	lt.Add("elenco original", "starring", "original cast")
	lt.Add("direção", "directed by")
	if got, ok := lt.Translate("Elenco Original"); !ok || got != "starring" {
		t.Errorf("zero error rate = %q, %v", got, ok)
	}
	if got, ok := lt.Translate("direção"); !ok || got != "directed by" {
		t.Errorf("no literal form = %q, %v", got, ok)
	}
	if _, ok := lt.Translate("unknown"); ok {
		t.Error("unexpected hit")
	}

	always := NewLabelTranslator(1, 1)
	always.Add("elenco original", "starring", "original cast")
	if got, _ := always.Translate("elenco original"); got != "original cast" {
		t.Errorf("error rate 1 = %q, want literal", got)
	}
}

func TestLabelTranslatorLiteralOnly(t *testing.T) {
	lt := NewLabelTranslator(0, 1)
	lt.wrong["x"] = "literal x"
	if got, ok := lt.Translate("x"); !ok || got != "literal x" {
		t.Errorf("literal-only = %q, %v", got, ok)
	}
	if lt.Len() != 1 {
		t.Errorf("Len = %d", lt.Len())
	}
}

func TestLabelTranslatorErrorRateStatistics(t *testing.T) {
	lt := NewLabelTranslator(0.5, 42)
	lt.Add("kịch bản", "written by", "script")
	literal := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if got, _ := lt.Translate("kịch bản"); got == "script" {
			literal++
		}
	}
	frac := float64(literal) / n
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("literal fraction = %v, want ≈0.5", frac)
	}
}

func TestDictionaryEqual(t *testing.T) {
	a := New(wiki.Portuguese, wiki.English)
	a.Add("Cidade de Deus", "City of God")
	a.Add("Central do Brasil", "Central Station")

	b := New(wiki.Portuguese, wiki.English)
	b.Add("Central do Brasil", "Central Station")
	b.Add("Cidade de Deus", "City of God")
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("same entries in different insertion order not Equal")
	}

	var nilDict *Dictionary
	if !nilDict.Equal(nil) {
		t.Error("nil.Equal(nil) = false")
	}
	if a.Equal(nil) || nilDict.Equal(a) {
		t.Error("nil compared equal to a populated dictionary")
	}

	c := New(wiki.Vietnamese, wiki.English)
	c.Add("Cidade de Deus", "City of God")
	c.Add("Central do Brasil", "Central Station")
	if a.Equal(c) {
		t.Error("dictionaries with different language pairs compared equal")
	}

	d := New(wiki.Portuguese, wiki.English)
	d.Add("Cidade de Deus", "City of God")
	if a.Equal(d) {
		t.Error("different sizes compared equal")
	}
	d.Add("Central do Brasil", "Estação Central")
	if a.Equal(d) {
		t.Error("different target titles compared equal")
	}
}
