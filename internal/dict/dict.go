// Package dict builds translation dictionaries from Wikipedia's
// cross-language links, following the construction of Oh et al. that the
// paper adopts in Section 3.2: for every article A in language L with a
// cross-language link to article A' in L', the dictionary maps A's title
// to A's title in L'.
//
// The package also provides LabelTranslator, a lookup-table translator
// with configurable error injection that stands in for the external
// machine-translation system (Google Translator) used by the COMA++
// baseline's "+G" configurations. See DESIGN.md §1 for why this
// substitution preserves the behaviour under study.
package dict

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/text"
	"repro/internal/wiki"
)

// Dictionary translates article titles from one language to another. Keys
// are normalized (lowercased, diacritics folded); translations preserve
// the target title's original form. A Dictionary is immutable once built,
// so any number of goroutines may Translate concurrently.
type Dictionary struct {
	From, To wiki.Language
	entries  map[string]string
}

// New returns an empty dictionary for the given direction.
func New(from, to wiki.Language) *Dictionary {
	return &Dictionary{From: from, To: to, entries: make(map[string]string)}
}

// Build constructs the title-translation dictionary from the corpus's
// cross-language links, in both recorded directions (a link stored on
// either article contributes the same entry).
func Build(c *wiki.Corpus, from, to wiki.Language) *Dictionary {
	d, _ := BuildCtx(context.Background(), c, from, to)
	return d
}

// buildCheckEvery is how many articles BuildCtx scans between context
// checks.
const buildCheckEvery = 1024

// BuildCtx is Build with cancellation: it checks ctx between article
// batches and returns ctx.Err() (with a nil dictionary) once the context
// is done.
func BuildCtx(ctx context.Context, c *wiki.Corpus, from, to wiki.Language) (*Dictionary, error) {
	d := New(from, to)
	n := 0
	for _, a := range c.Articles(from) {
		if n++; n%buildCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if title, ok := a.CrossLink(to); ok {
			d.Add(a.Title, title)
		}
	}
	for _, b := range c.Articles(to) {
		if n++; n%buildCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if title, ok := b.CrossLink(from); ok {
			d.Add(title, b.Title)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Add records a translation from a title in the source language to a
// title in the target language. Empty strings are ignored.
func (d *Dictionary) Add(from, to string) {
	key := text.Normalize(from)
	if key == "" || to == "" {
		return
	}
	d.entries[key] = to
}

// Translate returns the target-language title for a source-language
// phrase, looked up on the normalized form.
func (d *Dictionary) Translate(phrase string) (string, bool) {
	t, ok := d.entries[text.Normalize(phrase)]
	return t, ok
}

// TranslateOrKeep translates when possible and otherwise returns the
// input unchanged — the paper's "whenever possible, the values are
// translated" rule for building translated value vectors.
func (d *Dictionary) TranslateOrKeep(phrase string) string {
	if t, ok := d.Translate(phrase); ok {
		return t
	}
	return phrase
}

// Len returns the number of entries.
func (d *Dictionary) Len() int { return len(d.entries) }

// Equal reports whether two dictionaries have the same direction and
// the same entries. Nil dictionaries (the NoDictionary ablation) are
// equal only to nil. The session's delta path uses this to decide
// whether a corpus edit actually changed a pair's dictionary.
func (d *Dictionary) Equal(o *Dictionary) bool {
	if d == nil || o == nil {
		return d == nil && o == nil
	}
	if d.From != o.From || d.To != o.To || len(d.entries) != len(o.entries) {
		return false
	}
	for k, v := range d.entries {
		if ov, ok := o.entries[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Entries returns the dictionary contents sorted by key, for inspection.
func (d *Dictionary) Entries() [][2]string {
	keys := make([]string, 0, len(d.entries))
	for k := range d.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]string, len(keys))
	for i, k := range keys {
		out[i] = [2]string{k, d.entries[k]}
	}
	return out
}

// FromEntries reconstructs a dictionary from Entries output: keys are
// stored verbatim (they are already normalized), so a dictionary rebuilt
// from its own Entries is identical to the original. This is the
// deserialization path of the snapshot store.
func FromEntries(from, to wiki.Language, entries [][2]string) *Dictionary {
	d := New(from, to)
	for _, e := range entries {
		d.entries[e[0]] = e[1]
	}
	return d
}

// Invert returns the reverse-direction dictionary. When several source
// titles map to the same target, the lexicographically smallest source
// wins, making inversion deterministic.
func (d *Dictionary) Invert() *Dictionary {
	inv := New(d.To, d.From)
	for _, e := range d.Entries() {
		key := text.Normalize(e[1])
		if cur, dup := inv.entries[key]; dup && cur <= e[0] {
			continue
		}
		inv.entries[key] = e[0]
	}
	return inv
}

// LabelTranslator is a dictionary-backed stand-in for an external machine
// translation system operating on attribute labels. A non-zero ErrorRate
// makes the translator deterministically (per seed) emit a wrong-but-
// plausible translation for that fraction of lookups — reproducing the
// paper's observation that label MT returns literal renderings (e.g.
// "diễn viên" → "actor" rather than the template attribute "starring").
type LabelTranslator struct {
	entries   map[string]string
	wrong     map[string]string
	ErrorRate float64
	rng       *rand.Rand
}

// NewLabelTranslator creates a translator with the given error rate and
// deterministic seed.
func NewLabelTranslator(errorRate float64, seed int64) *LabelTranslator {
	return &LabelTranslator{
		entries:   make(map[string]string),
		wrong:     make(map[string]string),
		ErrorRate: errorRate,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Add records the correct translation for a label and, optionally, the
// literal (incorrect) rendering an MT system would produce for it.
func (t *LabelTranslator) Add(label, correct string, literal ...string) {
	key := text.Normalize(label)
	t.entries[key] = correct
	if len(literal) > 0 && literal[0] != "" {
		t.wrong[key] = literal[0]
	}
}

// Translate renders a label into the target language. With probability
// ErrorRate (and always when only a literal rendering is known), the
// literal form is returned instead of the template-correct one.
func (t *LabelTranslator) Translate(label string) (string, bool) {
	key := text.Normalize(label)
	correct, okC := t.entries[key]
	literal, okW := t.wrong[key]
	switch {
	case okC && okW:
		if t.rng.Float64() < t.ErrorRate {
			return literal, true
		}
		return correct, true
	case okC:
		return correct, true
	case okW:
		return literal, true
	}
	return "", false
}

// Len returns the number of labels with any translation.
func (t *LabelTranslator) Len() int {
	n := len(t.entries)
	for k := range t.wrong {
		if _, dup := t.entries[k]; !dup {
			n++
		}
	}
	return n
}
