// Package artifact is the session's artifact-cache engine: a keyed
// single-flight build executor over the pipeline's fixed dependency
// graph.
//
// # Keys and the dependency graph
//
// Every cacheable artifact is addressed by a typed Key of one of three
// kinds, mirroring the paper's pipeline stages:
//
//	corpus(lang)             the per-language corpus slice (virtual)
//	pair(A-B)                the pair-level artifacts: translation
//	                         dictionary + entity-type alignment
//	type(A-B, typeA, typeB)  one type pair's similarity workspace and
//	                         LSI model
//
// Dependencies are declared by the keys themselves (Key.Deps): a pair
// node depends on the corpus slices of both of its languages, and a
// type node depends on its pair node (whose dictionary and alignment
// are inputs to the type build). Corpus nodes are virtual — they are
// never built or stored — and exist purely as invalidation anchors:
// invalidating corpus(vi) transitively drops every pair node containing
// Vietnamese and every type node under those pairs, and nothing else.
//
// # Build execution
//
// Get is single-flight per key: concurrent requests for the same key
// share one build, waiters block on the builder's completion with their
// own contexts, and a builder cancelled mid-build discards its entry so
// surviving waiters retry with their own contexts. An entry invalidated
// while its build is in flight is orphaned: the builder still returns
// its value to its own caller, but the value never re-enters the graph,
// and waiters parked on the orphaned entry retry against the live graph
// instead of consuming the stale value.
//
// # Epochs
//
// The graph carries an epoch that advances on every Apply (the
// corpus-delta path). Get callers pass the epoch they captured together
// with their corpus snapshot; a caller from a superseded epoch builds
// privately — correct for its own corpus snapshot, never cached — so an
// old-generation request can never seed the new graph with artifacts
// built from a corpus the graph no longer serves.
//
// # Statistics
//
// The engine keeps aggregate hit/miss/failure counters and per-node
// build/hit/failure counts that survive invalidation, so a caller can
// assert that an incremental update rebuilt exactly the dirty nodes.
// Misses count completed builds only; builds that fail (in practice:
// cancelled contexts) count as failures, keeping the miss rate an
// honest measure of work materialized into the cache.
package artifact

import (
	"fmt"

	"repro/internal/wiki"
)

// Kind classifies a Key into its pipeline stage.
type Kind uint8

// The three node kinds, in dependency order.
const (
	KindCorpus Kind = iota // per-language corpus slice (virtual, never built)
	KindPair               // dictionary + entity-type alignment
	KindType               // similarity workspace + LSI model
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCorpus:
		return "corpus"
	case KindPair:
		return "pair"
	case KindType:
		return "type"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Key addresses one node of the artifact graph. Only the fields
// relevant to the Kind are set: Lang for corpus nodes, Pair for pair
// nodes, Pair+TypeA+TypeB for type nodes. Keys are comparable and used
// directly as map keys.
type Key struct {
	Kind         Kind
	Lang         wiki.Language
	Pair         wiki.LanguagePair
	TypeA, TypeB string
}

// CorpusKey returns the virtual invalidation anchor for one language's
// corpus slice.
func CorpusKey(lang wiki.Language) Key {
	return Key{Kind: KindCorpus, Lang: lang}
}

// PairKey returns the key of a pair's dictionary + alignment node.
func PairKey(pair wiki.LanguagePair) Key {
	return Key{Kind: KindPair, Pair: pair}
}

// TypeKey returns the key of one type pair's similarity workspace + LSI
// model node.
func TypeKey(pair wiki.LanguagePair, typeA, typeB string) Key {
	return Key{Kind: KindType, Pair: pair, TypeA: typeA, TypeB: typeB}
}

// Deps returns the node's declared dependencies: a pair node depends on
// the corpus slices of both its languages, a type node on its pair
// node, and a corpus node on nothing.
func (k Key) Deps() []Key {
	switch k.Kind {
	case KindPair:
		return []Key{CorpusKey(k.Pair.A), CorpusKey(k.Pair.B)}
	case KindType:
		return []Key{PairKey(k.Pair)}
	}
	return nil
}

// String renders the key for diagnostics, e.g. "type(pt-en film/filme)".
func (k Key) String() string {
	switch k.Kind {
	case KindCorpus:
		return fmt.Sprintf("corpus(%s)", k.Lang)
	case KindPair:
		return fmt.Sprintf("pair(%s)", k.Pair)
	case KindType:
		return fmt.Sprintf("type(%s %s/%s)", k.Pair, k.TypeA, k.TypeB)
	}
	return fmt.Sprintf("key(%d)", uint8(k.Kind))
}

// less orders keys canonically (kind, language, pair, type pair) for
// deterministic enumeration.
func (k Key) less(o Key) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.Lang != o.Lang {
		return k.Lang < o.Lang
	}
	if k.Pair.A != o.Pair.A {
		return k.Pair.A < o.Pair.A
	}
	if k.Pair.B != o.Pair.B {
		return k.Pair.B < o.Pair.B
	}
	if k.TypeA != o.TypeA {
		return k.TypeA < o.TypeA
	}
	return k.TypeB < o.TypeB
}
