package artifact

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/wiki"
)

func TestKeyDeps(t *testing.T) {
	pk := PairKey(wiki.PtEn)
	deps := pk.Deps()
	if len(deps) != 2 || deps[0] != CorpusKey(wiki.Portuguese) || deps[1] != CorpusKey(wiki.English) {
		t.Fatalf("pair deps = %v", deps)
	}
	tk := TypeKey(wiki.PtEn, "film", "filme")
	deps = tk.Deps()
	if len(deps) != 1 || deps[0] != pk {
		t.Fatalf("type deps = %v", deps)
	}
	if deps := CorpusKey(wiki.English).Deps(); deps != nil {
		t.Fatalf("corpus deps = %v", deps)
	}
}

func TestGetSingleFlight(t *testing.T) {
	e := NewEngine()
	key := PairKey(wiki.PtEn)
	var builds atomic.Int32
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
				builds.Add(1)
				<-release
				return "artifact", nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1 (single-flight)", got)
	}
	for i, v := range results {
		if v != "artifact" {
			t.Fatalf("results[%d] = %v", i, v)
		}
	}
	s := e.Stats()
	if s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", s.Hits, s.Misses, n-1)
	}
}

func TestFailedBuildCountsFailureNotMiss(t *testing.T) {
	e := NewEngine()
	key := PairKey(wiki.PtEn)
	boom := errors.New("boom")
	if _, err := e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	s := e.Stats()
	if s.Misses != 0 || s.Failures != 1 {
		t.Fatalf("misses/failures = %d/%d, want 0/1", s.Misses, s.Failures)
	}
	if s.Entries[KindPair] != 0 {
		t.Fatalf("failed build left an entry behind")
	}
	ns := e.NodeStats(key)
	if ns.Failures != 1 || ns.Builds != 0 {
		t.Fatalf("node stats = %+v", ns)
	}
	// The next request rebuilds cleanly.
	v, err := e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("rebuild = %v, %v", v, err)
	}
	if s := e.Stats(); s.Misses != 1 {
		t.Fatalf("misses after rebuild = %d, want 1", s.Misses)
	}
}

func TestTransitiveInvalidation(t *testing.T) {
	e := NewEngine()
	bg := context.Background()
	build := func(v any) BuildFunc { return func(context.Context) (any, error) { return v, nil } }

	mustGet := func(k Key) {
		t.Helper()
		if _, err := e.Get(bg, k, 0, build(k.String())); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(PairKey(wiki.PtEn))
	mustGet(PairKey(wiki.VnEn))
	mustGet(TypeKey(wiki.PtEn, "film", "filme"))
	mustGet(TypeKey(wiki.PtEn, "city", "cidade"))
	mustGet(TypeKey(wiki.VnEn, "film", "phim"))

	// Invalidating Vietnamese must drop vi-en and its type, nothing else.
	dropped := e.Invalidate(CorpusKey(wiki.Vietnamese))
	if dropped[KindPair] != 1 || dropped[KindType] != 1 {
		t.Fatalf("dropped = %v, want 1 pair + 1 type", dropped)
	}
	s := e.Stats()
	if s.Entries[KindPair] != 1 || s.Entries[KindType] != 2 {
		t.Fatalf("entries after invalidate = %v", s.Entries)
	}
	if _, ok := e.Value(PairKey(wiki.PtEn)); !ok {
		t.Fatal("pt-en pair should have survived")
	}
	if _, ok := e.Value(PairKey(wiki.VnEn)); ok {
		t.Fatal("vi-en pair should be gone")
	}

	// Invalidating a pair node drops its types but not the pair's siblings.
	dropped = e.Invalidate(PairKey(wiki.PtEn))
	if dropped[KindPair] != 1 || dropped[KindType] != 2 {
		t.Fatalf("dropped = %v, want 1 pair + 2 types", dropped)
	}
	if s := e.Stats(); s.Entries[KindPair] != 0 || s.Entries[KindType] != 0 {
		t.Fatalf("entries = %v, want empty", s.Entries)
	}
}

func TestInvalidateAll(t *testing.T) {
	e := NewEngine()
	bg := context.Background()
	for _, k := range []Key{PairKey(wiki.PtEn), TypeKey(wiki.PtEn, "a", "b")} {
		if _, err := e.Get(bg, k, 0, func(context.Context) (any, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	dropped := e.InvalidateAll()
	if dropped[KindPair] != 1 || dropped[KindType] != 1 {
		t.Fatalf("dropped = %v", dropped)
	}
	if s := e.Stats(); len(s.Entries) != 0 {
		t.Fatalf("entries = %v", s.Entries)
	}
}

func TestSeedRestores(t *testing.T) {
	e := NewEngine()
	key := PairKey(wiki.PtEn)
	e.Seed(key, "warm")
	s := e.Stats()
	if s.Restored[KindPair] != 1 || s.Misses != 0 {
		t.Fatalf("stats after seed = %+v", s)
	}
	v, err := e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
		t.Fatal("seeded entry must not rebuild")
		return nil, nil
	})
	if err != nil || v != "warm" {
		t.Fatalf("get = %v, %v", v, err)
	}
	if s := e.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0", s.Hits, s.Misses)
	}
	if ns := e.NodeStats(key); !ns.Restored {
		t.Fatal("node not marked restored")
	}
}

func TestStaleEpochBuildsPrivately(t *testing.T) {
	e := NewEngine()
	key := PairKey(wiki.PtEn)
	e.Apply(func(*Tx) {}) // epoch 0 → 1

	var built atomic.Int32
	v, err := e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
		built.Add(1)
		return "stale-gen", nil
	})
	if err != nil || v != "stale-gen" {
		t.Fatalf("get = %v, %v", v, err)
	}
	if built.Load() != 1 {
		t.Fatal("stale-epoch caller did not build")
	}
	// The private build must not touch the graph or its counters.
	s := e.Stats()
	if s.Entries[KindPair] != 0 || s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("stale build leaked into graph: %+v", s)
	}
}

func TestWaitersRetryOrphanedEntry(t *testing.T) {
	e := NewEngine()
	key := PairKey(wiki.PtEn)
	inBuild := make(chan struct{})
	release := make(chan struct{})

	go func() {
		_, _ = e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
			close(inBuild)
			<-release
			return "stale", nil
		})
	}()
	<-inBuild

	// A waiter parks on the in-flight entry.
	got := make(chan any, 1)
	waiterStarted := make(chan struct{})
	go func() {
		close(waiterStarted)
		v, err := e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
			return "fresh", nil
		})
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		got <- v
	}()
	<-waiterStarted

	// Invalidate mid-build: the entry is orphaned, the build completes
	// into it, and the waiter must rebuild rather than consume "stale".
	if dropped := e.Invalidate(key); dropped[KindPair] != 1 {
		t.Fatalf("dropped = %v", dropped)
	}
	close(release)

	if v := <-got; v != "fresh" {
		t.Fatalf("waiter got %v, want fresh rebuild", v)
	}
	if v, ok := e.Value(key); !ok || v != "fresh" {
		t.Fatalf("graph holds %v/%v, want fresh", v, ok)
	}
	// The orphaned "stale" build completed into a discarded entry: only
	// the waiter's rebuild materialized into the cache, so only it counts.
	if s := e.Stats(); s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (orphaned build must not count)", s.Misses)
	}
	if ns := e.NodeStats(key); ns.Builds != 1 {
		t.Fatalf("node builds = %d, want 1 (orphaned build must not count)", ns.Builds)
	}
}

func TestCancelledBuilderWaitersRetry(t *testing.T) {
	e := NewEngine()
	key := PairKey(wiki.PtEn)
	builderCtx, cancelBuilder := context.WithCancel(context.Background())
	inBuild := make(chan struct{})

	go func() {
		_, _ = e.Get(builderCtx, key, 0, func(ctx context.Context) (any, error) {
			close(inBuild)
			<-ctx.Done()
			return nil, ctx.Err()
		})
	}()
	<-inBuild

	got := make(chan any, 1)
	go func() {
		v, err := e.Get(context.Background(), key, 0, func(context.Context) (any, error) {
			return "retried", nil
		})
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		got <- v
	}()

	cancelBuilder()
	if v := <-got; v != "retried" {
		t.Fatalf("waiter got %v, want retried", v)
	}
	s := e.Stats()
	if s.Failures != 1 || s.Misses != 1 {
		t.Fatalf("failures/misses = %d/%d, want 1/1", s.Failures, s.Misses)
	}
}

func TestApplySeedAndInvalidate(t *testing.T) {
	e := NewEngine()
	bg := context.Background()
	pk, tk1, tk2 := PairKey(wiki.PtEn), TypeKey(wiki.PtEn, "film", "filme"), TypeKey(wiki.PtEn, "city", "cidade")
	for _, k := range []Key{pk, tk1, tk2} {
		if _, err := e.Get(bg, k, 0, func(context.Context) (any, error) { return "v1", nil }); err != nil {
			t.Fatal(err)
		}
	}
	var newEpoch uint64
	dropped := e.Apply(func(tx *Tx) {
		newEpoch = tx.Epoch()
		tx.Invalidate(tk1)
		tx.Seed(pk, "v2")
	})
	if newEpoch != 1 {
		t.Fatalf("epoch = %d, want 1", newEpoch)
	}
	// Seed replaces the live pair entry without counting a drop; only
	// the explicit Invalidate shows up in the counts.
	if dropped[KindType] != 1 || dropped[KindPair] != 0 {
		t.Fatalf("dropped = %v, want exactly 1 type", dropped)
	}
	if v, ok := e.Value(pk); !ok || v != "v2" {
		t.Fatalf("pair value = %v/%v, want v2", v, ok)
	}
	if _, ok := e.Value(tk1); ok {
		t.Fatal("tk1 should be dropped")
	}
	if _, ok := e.Value(tk2); !ok {
		t.Fatal("tk2 should survive")
	}
	if ns := e.NodeStats(pk); ns.Builds != 2 {
		t.Fatalf("pair builds = %d, want 2 (initial + reseed)", ns.Builds)
	}
	if e.Epoch() != 1 {
		t.Fatalf("engine epoch = %d", e.Epoch())
	}
}
