package artifact

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
)

// BuildFunc materializes one node's value. It runs outside the engine
// lock and must honour ctx.
type BuildFunc func(ctx context.Context) (any, error)

// entry is one node's in-cache state. done is closed when the build
// finishes (successfully or not); orphaned is set when the entry is
// dropped from the graph while callers may still hold a pointer to it,
// telling waiters to retry instead of consuming a stale value.
type entry struct {
	done     chan struct{}
	val      any
	err      error
	orphaned atomic.Bool
}

// NodeStats counts one node's lifetime activity. The counters survive
// invalidation: a node rebuilt after a corpus delta reports Builds == 2.
type NodeStats struct {
	Builds   uint64 // successful builds that entered the graph (including delta reseeds)
	Hits     uint64 // completed-entry reuses
	Failures uint64 // failed builds (in practice: cancelled contexts)
	Restored bool   // the node was seeded from a snapshot at least once
}

// Stats is an aggregate snapshot of the engine.
type Stats struct {
	Entries  map[Kind]int // live completed or in-flight entries per kind
	Restored map[Kind]int // snapshot-seeded entries per kind (never decremented)
	Hits     uint64
	Misses   uint64 // completed builds that entered the graph; failures count separately
	Failures uint64
}

// Node is one exported (key, value) pair — the unit the persistence
// layer serializes.
type Node struct {
	Key   Key
	Value any
}

// Engine is the artifact graph: a keyed single-flight cache with
// declared dependencies, transitive invalidation, restore seeding and
// per-node statistics. The zero value is not usable; create with
// NewEngine. All methods are safe for concurrent use.
type Engine struct {
	mu         sync.Mutex
	epoch      uint64
	nodes      map[Key]*entry
	dependents map[Key]map[Key]bool // dep key → keys of live entries depending on it
	stats      map[Key]*NodeStats   // survives entry drops
	restored   map[Kind]int
	hits       uint64
	misses     uint64
	failures   uint64
}

// NewEngine returns an empty engine at epoch 0.
func NewEngine() *Engine {
	return &Engine{
		nodes:      make(map[Key]*entry),
		dependents: make(map[Key]map[Key]bool),
		stats:      make(map[Key]*NodeStats),
		restored:   make(map[Kind]int),
	}
}

// Epoch returns the current graph epoch. Callers capture it together
// with their corpus snapshot and pass it back to Get.
func (e *Engine) Epoch() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// Get returns the node's value, building it with build on a miss.
// Concurrent callers for the same key share one build; if the builder's
// context is cancelled the entry is discarded and surviving waiters
// retry with their own contexts. epoch is the graph epoch the caller
// captured with its corpus snapshot: a caller from a superseded epoch
// gets a private build (correct for its snapshot, never cached).
func (e *Engine) Get(ctx context.Context, key Key, epoch uint64, build BuildFunc) (any, error) {
	for {
		e.mu.Lock()
		if epoch != e.epoch {
			e.mu.Unlock()
			// A superseded-generation caller must not touch the live
			// graph: build privately against its own corpus snapshot.
			return build(ctx)
		}
		ent, ok := e.nodes[key]
		if !ok {
			ent = &entry{done: make(chan struct{})}
			e.nodes[key] = ent
			e.link(key)
			e.mu.Unlock()
			ent.val, ent.err = build(ctx)
			e.finishBuild(key, ent)
			close(ent.done)
			if ent.err != nil {
				return nil, ent.err
			}
			return ent.val, nil
		}
		e.mu.Unlock()
		select {
		case <-ent.done:
			if ent.err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				continue // builder was cancelled, not us: rebuild
			}
			if ent.orphaned.Load() {
				// Invalidated while we waited; the value belongs to a
				// graph that no longer exists. Retry against the live one.
				continue
			}
			e.recordHit(key)
			return ent.val, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// finishBuild accounts for a completed build and, on failure, discards
// the entry (if it is still the live one) so the next request rebuilds.
func (e *Engine) finishBuild(key Key, ent *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ns := e.nodeStats(key)
	if ent.err != nil {
		e.failures++
		ns.Failures++
		if e.nodes[key] == ent {
			delete(e.nodes, key)
			e.unlink(key)
		}
		return
	}
	// Count the miss only now that the build completed — and only if the
	// entry is still the live node. Cancelled builds must not inflate the
	// miss rate, and a build orphaned mid-flight (invalidated, or replaced
	// by a Tx.Seed) never enters the graph, so it is not work materialized
	// into the cache; its waiters retry and their rebuilds count.
	if e.nodes[key] != ent {
		return
	}
	e.misses++
	ns.Builds++
}

func (e *Engine) recordHit(key Key) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hits++
	e.nodeStats(key).Hits++
}

// nodeStats returns the node's stats record, creating it on first use.
// Caller holds e.mu.
func (e *Engine) nodeStats(key Key) *NodeStats {
	ns := e.stats[key]
	if ns == nil {
		ns = &NodeStats{}
		e.stats[key] = ns
	}
	return ns
}

// link registers key as a dependent of each of its declared
// dependencies. Caller holds e.mu.
func (e *Engine) link(key Key) {
	for _, d := range key.Deps() {
		m := e.dependents[d]
		if m == nil {
			m = make(map[Key]bool)
			e.dependents[d] = m
		}
		m[key] = true
	}
}

// unlink removes key from its dependencies' dependent sets. Caller
// holds e.mu.
func (e *Engine) unlink(key Key) {
	for _, d := range key.Deps() {
		if m := e.dependents[d]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(e.dependents, d)
			}
		}
	}
}

// Seed inserts a completed node restored from a snapshot. Restored
// entries are born complete: the first request against one counts as a
// cache hit, and Stats' Restored counters record the seeding.
func (e *Engine) Seed(key Key, val any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nodes[key] = &entry{done: closedChan(), val: val}
	e.link(key)
	e.restored[key.Kind]++
	e.nodeStats(key).Restored = true
}

// Invalidate drops the nodes rooted at keys and, transitively, every
// node that depends on them — and nothing else. It returns how many
// entries of each kind were dropped. In-flight entries are orphaned:
// their builds complete into the discarded entry and waiters retry.
func (e *Engine) Invalidate(roots ...Key) map[Kind]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	dropped := make(map[Kind]int)
	e.invalidate(roots, dropped)
	return dropped
}

// InvalidateAll drops every entry in the graph.
func (e *Engine) InvalidateAll() map[Kind]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	dropped := make(map[Kind]int)
	keys := make([]Key, 0, len(e.nodes))
	for k := range e.nodes {
		keys = append(keys, k)
	}
	e.invalidate(keys, dropped)
	return dropped
}

// invalidate drops roots and their transitive dependents, tallying into
// dropped. Caller holds e.mu.
func (e *Engine) invalidate(roots []Key, dropped map[Kind]int) {
	for _, r := range roots {
		deps := e.dependents[r]
		children := make([]Key, 0, len(deps))
		for d := range deps {
			children = append(children, d)
		}
		e.invalidate(children, dropped)
		if ent, ok := e.nodes[r]; ok {
			ent.orphaned.Store(true)
			delete(e.nodes, r)
			e.unlink(r)
			dropped[r.Kind]++
		}
	}
}

// Keys returns the live entry keys of one kind, canonically sorted.
// In-flight entries are included.
func (e *Engine) Keys(kind Kind) []Key {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.keys(kind)
}

func (e *Engine) keys(kind Kind) []Key {
	var out []Key
	for k := range e.nodes {
		if k.Kind == kind {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Value returns the node's value if its build has completed
// successfully.
func (e *Engine) Value(key Key) (any, bool) {
	e.mu.Lock()
	ent, ok := e.nodes[key]
	e.mu.Unlock()
	if !ok || !entryDone(ent.done) || ent.err != nil {
		return nil, false
	}
	return ent.val, true
}

// Export returns every completed, successful node — the set the
// persistence layer serializes. In-flight and failed builds are
// skipped, so Export is safe to call at any time on a live engine.
func (e *Engine) Export() []Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Node, 0, len(e.nodes))
	for k, ent := range e.nodes {
		if !entryDone(ent.done) || ent.err != nil {
			continue
		}
		out = append(out, Node{Key: k, Value: ent.val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.less(out[j].Key) })
	return out
}

// Stats returns an aggregate snapshot of the engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		Entries:  make(map[Kind]int),
		Restored: make(map[Kind]int, len(e.restored)),
		Hits:     e.hits,
		Misses:   e.misses,
		Failures: e.failures,
	}
	for k := range e.nodes {
		s.Entries[k.Kind]++
	}
	for k, n := range e.restored {
		s.Restored[k] = n
	}
	return s
}

// NodeStats returns one node's lifetime counters (zero value for nodes
// never seen).
func (e *Engine) NodeStats(key Key) NodeStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ns := e.stats[key]; ns != nil {
		return *ns
	}
	return NodeStats{}
}

// Tx is the transactional view Apply hands its callback: every
// operation runs under the engine lock, so the callback's reads, drops,
// seeds and the epoch advance are one atomic graph update.
type Tx struct {
	e       *Engine
	dropped map[Kind]int
}

// Apply advances the graph epoch and runs fn as one atomic update.
// Get callers block for the duration; callers holding the previous
// epoch build privately afterwards (see Get). It returns the per-kind
// counts of entries fn dropped.
func (e *Engine) Apply(fn func(*Tx)) map[Kind]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch++
	tx := &Tx{e: e, dropped: make(map[Kind]int)}
	fn(tx)
	return tx.dropped
}

// Epoch returns the epoch this update established.
func (t *Tx) Epoch() uint64 { return t.e.epoch }

// Keys lists the live entry keys of one kind, canonically sorted.
func (t *Tx) Keys(kind Kind) []Key { return t.e.keys(kind) }

// Value returns a node's completed value, as Engine.Value.
func (t *Tx) Value(key Key) (any, bool) {
	ent, ok := t.e.nodes[key]
	if !ok || !entryDone(ent.done) || ent.err != nil {
		return nil, false
	}
	return ent.val, true
}

// Invalidate drops roots and their transitive dependents, tallying into
// the counts Apply returns.
func (t *Tx) Invalidate(roots ...Key) { t.e.invalidate(roots, t.dropped) }

// Seed installs a freshly built value as a completed entry, replacing
// (and orphaning) any live entry under the key. The install counts as a
// completed build — it is one — in both the aggregate miss counter and
// the node's Builds, not in the Restored counters.
func (t *Tx) Seed(key Key, val any) {
	e := t.e
	if old, ok := e.nodes[key]; ok {
		old.orphaned.Store(true)
		delete(e.nodes, key)
		e.unlink(key)
	}
	e.nodes[key] = &entry{done: closedChan(), val: val}
	e.link(key)
	e.misses++
	e.nodeStats(key).Builds++
}

// entryDone reports whether a build's done channel is closed.
func entryDone(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// closedChan returns an already-closed channel: seeded entries are born
// complete.
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}
