// Package protocol defines wire protocol v1 of the WikiMatch service:
// the typed request model, the structured error envelope, and every
// response DTO the /v1/ HTTP API and the Go client SDK exchange.
//
// The package is deliberately the single source of truth for request
// validation. The in-process Session (internal/service), the HTTP
// handlers, and the CLI all funnel requests through
// MatchRequest.Validate, so a request rejected over the wire is
// rejected identically in process — and anything the validator accepts
// has fully resolved, typed fields (a wiki.LanguagePair, a multi.Mode)
// by the time matching code sees it.
package protocol

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/wiki"
)

// Version is the wire protocol version, also the URL prefix ("/v1")
// every typed endpoint is mounted under.
const Version = "v1"

// MatchRequest is the one request model of protocol v1. The same shape
// drives every matching endpoint:
//
//   - a pair request (All false, Type empty) runs one language pair end
//     to end — POST /v1/match or /v1/stream;
//   - a single-type request (Type set) restricts the pair to one
//     source-language entity type — POST /v1/match;
//   - an all-pairs request (All true) runs the multilingual batch with
//     Mode/Hub/Workers — POST /v1/matchall or /v1/stream.
//
// TSim/TLSI/TEg optionally override the session's matching thresholds
// for this request only. Thresholds are match-time parameters, not
// artifact-shaping ones, so an overridden request still reuses the
// session's cached dictionaries and LSI models.
type MatchRequest struct {
	// Pair is the language pair, "pt-en" style ("vn-en" is accepted as an
	// alias of the paper's Vietnamese–English pair). Empty defaults to
	// pt-en. Must be empty on all-pairs requests.
	Pair string `json:"pair,omitempty"`
	// Type restricts the pair match to one source-language entity type.
	Type string `json:"type,omitempty"`
	// All selects the all-pairs multilingual batch.
	All bool `json:"all,omitempty"`
	// Mode is the batch coverage, "pivot" (default) or "direct".
	Mode string `json:"mode,omitempty"`
	// Hub is the pivot edition. Empty resolves against the corpus:
	// "en" when the corpus has an English edition, otherwise its
	// lexicographically first language (multi.DefaultHub).
	Hub string `json:"hub,omitempty"`
	// Workers bounds concurrent pairs in a batch; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// TSim/TLSI/TEg override the session's thresholds for this request.
	TSim *float64 `json:"tsim,omitempty"`
	TLSI *float64 `json:"tlsi,omitempty"`
	TEg  *float64 `json:"teg,omitempty"`
	// Candidates overrides the per-attribute shortlist width of the
	// pruned scoring path (0 restores the default, -1 disables pruning).
	// Like the thresholds it is a match-time parameter: results are
	// identical at any width, only the work to produce them changes, and
	// cached artifacts are reused untouched.
	Candidates *int `json:"candidates,omitempty"`
	// ExactScore forces the exhaustive reference scoring path.
	ExactScore *bool `json:"exactScore,omitempty"`
}

// Resolved is a validated MatchRequest with every field parsed into its
// typed form.
type Resolved struct {
	All       bool
	Pair      wiki.LanguagePair
	Type      string
	Multi     multi.Options
	Overrides Overrides
}

// Overrides carries the per-request match-time overrides; nil fields
// keep the session's configuration.
type Overrides struct {
	TSim, TLSI, TEg *float64
	Candidates      *int
	ExactScore      *bool
}

// Empty reports whether no override is set.
func (o Overrides) Empty() bool {
	return o.TSim == nil && o.TLSI == nil && o.TEg == nil &&
		o.Candidates == nil && o.ExactScore == nil
}

// Apply returns cfg with the overrides applied. Only matching
// thresholds can be overridden, so the artifact-shaping fields
// (dictionary use, LSI rank, SVD path) are untouched by construction.
func (o Overrides) Apply(cfg core.Config) core.Config {
	if o.TSim != nil {
		cfg.TSim = *o.TSim
	}
	if o.TLSI != nil {
		cfg.TLSI = *o.TLSI
	}
	if o.TEg != nil {
		cfg.TEg = *o.TEg
	}
	if o.Candidates != nil {
		cfg.Candidates = *o.Candidates
	}
	if o.ExactScore != nil {
		cfg.ExactScore = *o.ExactScore
	}
	return cfg
}

// Validate checks the request and resolves it into typed fields. Every
// returned error is a *Error with CodeInvalidArgument.
func (r MatchRequest) Validate() (Resolved, error) {
	res := Resolved{All: r.All, Type: r.Type, Overrides: Overrides{
		TSim: r.TSim, TLSI: r.TLSI, TEg: r.TEg,
		Candidates: r.Candidates, ExactScore: r.ExactScore,
	}}
	for _, th := range []struct {
		name string
		v    *float64
	}{{"tsim", r.TSim}, {"tlsi", r.TLSI}, {"teg", r.TEg}} {
		if th.v != nil && (*th.v < 0 || *th.v > 1) {
			return Resolved{}, Errorf(CodeInvalidArgument, "invalid %s %v (want a threshold in [0,1])", th.name, *th.v)
		}
	}
	if r.Candidates != nil && *r.Candidates < -1 {
		return Resolved{}, Errorf(CodeInvalidArgument, "invalid candidates %d (want -1 to disable pruning, 0 for the default, or a positive shortlist width)", *r.Candidates)
	}
	if r.All {
		if r.Pair != "" {
			return Resolved{}, Errorf(CodeInvalidArgument, "all-pairs request must not set pair (got %q)", r.Pair)
		}
		if r.Type != "" {
			return Resolved{}, Errorf(CodeInvalidArgument, "all-pairs request must not set type (got %q)", r.Type)
		}
		res.Multi = multi.Options{Mode: multi.ModePivot, Workers: r.Workers}
		if r.Mode != "" {
			mode, err := multi.ParseMode(r.Mode)
			if err != nil {
				return Resolved{}, &Error{Code: CodeInvalidArgument, Message: err.Error()}
			}
			res.Multi.Mode = mode
		}
		if r.Hub != "" {
			hub := wiki.Language(r.Hub)
			if !hub.Valid() {
				return Resolved{}, Errorf(CodeInvalidArgument, "invalid hub language %q", r.Hub)
			}
			res.Multi.Hub = hub
		}
		if r.Workers < 0 {
			return Resolved{}, Errorf(CodeInvalidArgument, "invalid workers %d", r.Workers)
		}
		return res, nil
	}
	if r.Mode != "" || r.Hub != "" || r.Workers != 0 {
		return Resolved{}, Errorf(CodeInvalidArgument, "mode, hub and workers apply only to all-pairs requests (set \"all\": true)")
	}
	if r.Pair == "" {
		res.Pair = wiki.PtEn
		return res, nil
	}
	pair, err := ParsePair(r.Pair)
	if err != nil {
		return Resolved{}, &Error{Code: CodeInvalidArgument, Message: err.Error()}
	}
	res.Pair = pair
	return res, nil
}

// ParsePair parses a "pt-en"-style language pair. "vn-en" is accepted
// as an alias of the paper's Vietnamese–English pair. Because edition
// codes may themselves contain hyphens ("zh-min-nan"), a colon is
// accepted as an unambiguous separator ("zh-min-nan:en"); the hyphen
// form remains valid whenever it splits into exactly two codes one way
// ("pt-en", "zh-min-nan-en" is rejected as ambiguous).
func ParsePair(s string) (wiki.LanguagePair, error) {
	if s == "vn-en" {
		return wiki.VnEn, nil
	}
	if a, b, ok := strings.Cut(s, ":"); ok {
		pair := wiki.LanguagePair{A: wiki.Language(a), B: wiki.Language(b)}
		if !pair.A.Valid() || !pair.B.Valid() || strings.Contains(b, ":") {
			return wiki.LanguagePair{}, fmt.Errorf("invalid language pair %q (want e.g. %q or %q)", s, "pt-en", "zh-min-nan:en")
		}
		return pair, nil
	}
	switch strings.Count(s, "-") {
	case 1:
		a, b, _ := strings.Cut(s, "-")
		pair := wiki.LanguagePair{A: wiki.Language(a), B: wiki.Language(b)}
		if !pair.A.Valid() || !pair.B.Valid() {
			return wiki.LanguagePair{}, fmt.Errorf("invalid language pair %q (want e.g. %q)", s, "pt-en")
		}
		return pair, nil
	case 0:
		return wiki.LanguagePair{}, fmt.Errorf("invalid language pair %q (want e.g. %q)", s, "pt-en")
	default:
		// Multiple hyphens: every split point could be valid
		// ("zh-min-nan-en" is zh-min-nan/en or zh/min-nan-en …), so
		// require the colon form instead of guessing.
		return wiki.LanguagePair{}, fmt.Errorf("ambiguous language pair %q: edition codes may contain hyphens, separate them with a colon (e.g. %q)", s, "zh-min-nan:en")
	}
}
