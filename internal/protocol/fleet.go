package protocol

// The fleet DTOs of the router/coordinator (internal/router): the
// aggregated health, metrics and delta-fanout bodies a router serves in
// place of a single replica's. Pair-scoped and all-pairs matching reuse
// the single-binary DTOs unchanged — the fleet is invisible on those
// routes by design.

// Fleet status values, shared by FleetHealth and ShardHealth.
const (
	// FleetOK: every shard answered its health probe.
	FleetOK = "ok"
	// FleetDegraded: some shards are down; requests routed to the
	// surviving shards still succeed, pairs owned by dead shards fail
	// with CodeUnavailable.
	FleetDegraded = "degraded"
	// FleetDown: no shard answered; the fleet serves nothing.
	FleetDown = "down"
)

// ShardHealth is one replica's status within a fleet.
type ShardHealth struct {
	Shard  int    `json:"shard"`
	Addr   string `json:"addr"`
	Status string `json:"status"` // FleetOK or FleetDown
	// Error is the probe failure when the shard is down.
	Error string `json:"error,omitempty"`
	// Health is the shard's own /v1/healthz body when it answered.
	Health *Health `json:"health,omitempty"`
}

// FleetHealth is the router's aggregated GET /v1/healthz body: the
// rollup status plus every shard's last probe outcome.
type FleetHealth struct {
	Status        string        `json:"status"` // FleetOK, FleetDegraded or FleetDown
	UptimeSeconds float64       `json:"uptimeSeconds"`
	ShardsTotal   int           `json:"shardsTotal"`
	ShardsHealthy int           `json:"shardsHealthy"`
	Shards        []ShardHealth `json:"shards"`
}

// ShardMetrics is one replica's counters within the aggregated metrics
// body, or the probe error when the shard did not answer.
type ShardMetrics struct {
	Shard   int      `json:"shard"`
	Addr    string   `json:"addr"`
	Error   string   `json:"error,omitempty"`
	Metrics *Metrics `json:"metrics,omitempty"`
}

// FleetMetrics is the router's aggregated GET /v1/metrics body: the
// router's own middleware counters plus each shard's.
type FleetMetrics struct {
	Router Metrics        `json:"router"`
	Shards []ShardMetrics `json:"shards"`
}

// ShardDelta is one replica's outcome of a fanned-out corpus delta.
type ShardDelta struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	// Error is set when the shard rejected or never received the delta;
	// Response when it applied it. Exactly one is non-nil.
	Error    *Error         `json:"error,omitempty"`
	Response *DeltaResponse `json:"response,omitempty"`
}

// FleetDeltaResponse answers POST /v1/corpus/delta on a router: the
// delta fans out to every shard (each replica holds the full corpus —
// only artifacts are sharded) and the per-shard outcomes are reported
// individually, because a partially-applied delta is a real state the
// operator must see: the fleet's corpora have diverged until the failed
// shards are retried or restarted.
type FleetDeltaResponse struct {
	Status string `json:"status"` // FleetOK or FleetDegraded (some shards failed)
	// Consistent reports whether every shard that applied the delta
	// ended at the same corpus fingerprint.
	Consistent bool         `json:"consistent"`
	Shards     []ShardDelta `json:"shards"`
	ElapsedMS  float64      `json:"elapsedMs"`
}
