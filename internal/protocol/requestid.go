package protocol

import "context"

// requestIDKey carries a request ID through a context. The key lives in
// the protocol package — not the HTTP layer — because both sides of the
// wire use it: the service middleware stamps every inbound request's ID
// into its context, and the client SDK forwards a stamped ID as the
// outbound X-Request-Id header, so one user request stays traceable
// across router→shard hops.
type requestIDKey struct{}

// ContextWithRequestID returns ctx carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext extracts the request ID ("" when unset).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ValidRequestID accepts short printable ASCII tokens, rejecting
// anything that could corrupt logs or headers. The service middleware
// uses it to decide whether to echo a client-supplied X-Request-Id, and
// the client SDK to decide whether a context-carried ID is safe to
// forward as a header.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}
