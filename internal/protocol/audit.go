package protocol

import (
	"repro/internal/multi"
	"repro/internal/wiki"
)

// AuditRequest asks the service to audit cross-edition value
// consistency: run (or reuse) the all-pairs batch match, then compare
// every cross-linked entity's values across the matched attribute
// clusters — POST /v1/audit or /v1/audit/stream.
type AuditRequest struct {
	// Mode is the batch coverage for the matching phase, "pivot"
	// (default) or "direct".
	Mode string `json:"mode,omitempty"`
	// Hub is the pivot edition; empty resolves against the corpus
	// (multi.DefaultHub: "en" when present, else the lexicographically
	// first language). A malformed code is an invalid_argument error; a
	// well-formed hub the corpus does not serve surfaces as not_found
	// from the matching phase.
	Hub string `json:"hub,omitempty"`
	// Workers bounds concurrent pairs in the matching phase; 0 means
	// GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Pair optionally restricts the report to findings whose compared
	// editions are exactly this pair ("pt-en" style). The matching phase
	// still runs the full batch — clusters need every edition.
	Pair string `json:"pair,omitempty"`
	// MinSeverity drops findings scoring below it.
	MinSeverity float64 `json:"minSeverity,omitempty"`
	// Limit caps the ranked findings (0 = unlimited).
	Limit int `json:"limit,omitempty"`
	// Clusters, when non-nil, skips the matching phase and audits
	// against the provided clusters. This is the router's forwarding
	// path: the router merges the fleet's pair matches into clusters and
	// hands them to one corpus-bearing shard for value comparison. The
	// field is deliberately not omitempty — an empty (but present)
	// cluster set still means "the matching phase already ran".
	Clusters []multi.Cluster `json:"clusters"`
}

// ResolvedAudit is a validated AuditRequest.
type ResolvedAudit struct {
	Multi multi.Options
	// Pair restriction; zero value means unrestricted.
	Pair     wiki.LanguagePair
	HasPair  bool
	MinSev   float64
	Limit    int
	Clusters []multi.Cluster
}

// Validate checks the request and resolves its typed fields. Bad pair,
// mode, or hub spellings are CodeInvalidArgument; hub membership in the
// corpus is checked by the matching phase (multi.UnknownHubError →
// CodeNotFound).
func (r AuditRequest) Validate() (ResolvedAudit, error) {
	res := ResolvedAudit{
		Multi:    multi.Options{Mode: multi.ModePivot, Workers: r.Workers},
		MinSev:   r.MinSeverity,
		Limit:    r.Limit,
		Clusters: r.Clusters,
	}
	if r.Mode != "" {
		mode, err := multi.ParseMode(r.Mode)
		if err != nil {
			return ResolvedAudit{}, &Error{Code: CodeInvalidArgument, Message: err.Error()}
		}
		res.Multi.Mode = mode
	}
	if r.Hub != "" {
		hub := wiki.Language(r.Hub)
		if !hub.Valid() {
			return ResolvedAudit{}, Errorf(CodeInvalidArgument, "invalid hub language %q", r.Hub)
		}
		res.Multi.Hub = hub
	}
	if r.Workers < 0 {
		return ResolvedAudit{}, Errorf(CodeInvalidArgument, "invalid workers %d", r.Workers)
	}
	if r.MinSeverity < 0 || r.MinSeverity > 1 {
		return ResolvedAudit{}, Errorf(CodeInvalidArgument, "invalid minSeverity %v (want [0,1])", r.MinSeverity)
	}
	if r.Limit < 0 {
		return ResolvedAudit{}, Errorf(CodeInvalidArgument, "invalid limit %d", r.Limit)
	}
	if r.Pair != "" {
		pair, err := ParsePair(r.Pair)
		if err != nil {
			return ResolvedAudit{}, &Error{Code: CodeInvalidArgument, Message: err.Error()}
		}
		res.Pair, res.HasPair = pair, true
	}
	return res, nil
}

// AuditValue is one edition's observation inside a finding.
type AuditValue struct {
	Lang string `json:"lang"`
	Attr string `json:"attr"`
	Raw  string `json:"raw,omitempty"`
	Norm string `json:"norm,omitempty"`
}

// AuditFinding is one ranked inconsistency.
type AuditFinding struct {
	Entity     string            `json:"entity"`
	Titles     map[string]string `json:"titles"`
	Cluster    int               `json:"cluster"`
	Kind       string            `json:"kind"`
	Magnitude  float64           `json:"magnitude"`
	Confidence float64           `json:"confidence"`
	Severity   float64           `json:"severity"`
	Detail     string            `json:"detail"`
	Values     []AuditValue      `json:"values"`
}

// AuditResponse answers POST /v1/audit: the matching phase's summary
// (mode, hub, per-pair outcomes) plus the ranked findings.
type AuditResponse struct {
	Mode      string         `json:"mode"`
	Hub       string         `json:"hub"`
	Pairs     []MatchAllPair `json:"pairs,omitempty"`
	Clusters  int            `json:"clusters"`
	Entities  int            `json:"entities"`
	Compared  int            `json:"compared"`
	Findings  []AuditFinding `json:"findings"`
	ElapsedMS float64        `json:"elapsedMs"`
	Cache     CacheStats     `json:"cache"`
}
