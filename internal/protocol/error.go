package protocol

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/multi"
)

// The stable error codes of protocol v1. Codes — not HTTP statuses —
// are the contract clients dispatch on; the status is a transport
// projection (see HTTPStatus).
const (
	// CodeInvalidArgument rejects a request that fails validation.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound marks an unknown route or an unknown entity type.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed rejects a known route hit with the wrong HTTP
	// method (e.g. a mutating endpoint over GET).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodePayloadTooLarge rejects a request body over the server's limit.
	CodePayloadTooLarge = "payload_too_large"
	// CodeOverloaded sheds a request the concurrency limiter could not
	// admit; always retryable, paired with a Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeCanceled reports a request whose context was cancelled (in
	// practice a disconnected client).
	CodeCanceled = "canceled"
	// CodeDeadlineExceeded reports a request that outran the per-request
	// timeout.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeUnavailable reports that the backend owning the request is
	// unreachable — in a sharded fleet, the owning replica is down or
	// not yet serving. Always retryable: the shard may come back.
	CodeUnavailable = "unavailable"
	// CodeInternal is an unexpected server-side failure (including
	// recovered panics).
	CodeInternal = "internal"
)

// Error is the structured error of protocol v1. It is both the wire
// form (inside ErrorEnvelope) and the error value the client SDK and
// the in-process execution path return, so a caller switching on Code
// behaves identically in process and over HTTP.
type Error struct {
	Code      string            `json:"code"`
	Message   string            `json:"message"`
	Retryable bool              `json:"retryable"`
	Details   map[string]string `json:"details,omitempty"`
}

// ErrorEnvelope is the JSON body of every non-2xx v1 response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errorf builds an Error with a formatted message. Retryability is
// derived from the code.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), Retryable: retryable(code)}
}

// WithDetail returns a copy of the error with one detail attached.
func (e *Error) WithDetail(key, value string) *Error {
	out := *e
	out.Details = make(map[string]string, len(e.Details)+1)
	for k, v := range e.Details {
		out.Details[k] = v
	}
	out.Details[key] = value
	return &out
}

// retryable reports whether a code marks a transient condition a client
// may safely retry.
func retryable(code string) bool {
	switch code {
	case CodeOverloaded, CodeCanceled, CodeDeadlineExceeded, CodeUnavailable:
		return true
	}
	return false
}

// HTTPStatus maps the code to its transport status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeCanceled, CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// CodeForStatus is the reverse transport mapping, used by the client
// when a response carries no decodable envelope (a proxy error page,
// say).
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		// 503 is ambiguous between canceled and unavailable; with no
		// envelope to disambiguate, an unreachable backend is the likelier
		// (and equally retryable) reading.
		return CodeUnavailable
	case http.StatusGatewayTimeout:
		return CodeDeadlineExceeded
	}
	return CodeInternal
}

// FromErr coerces any error into a protocol *Error: *Error values pass
// through, context cancellation and deadline errors get their dedicated
// retryable codes, an unknown pivot hub is the caller naming an edition
// the corpus does not serve (CodeNotFound), everything else becomes
// CodeInternal.
func FromErr(err error) *Error {
	var pe *Error
	var hubErr *multi.UnknownHubError
	switch {
	case errors.As(err, &pe):
		return pe
	case errors.As(err, &hubErr):
		return Errorf(CodeNotFound, "%s", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		return Errorf(CodeDeadlineExceeded, "%s", err.Error())
	case errors.Is(err, context.Canceled):
		return Errorf(CodeCanceled, "%s", err.Error())
	}
	return Errorf(CodeInternal, "%s", err.Error())
}
