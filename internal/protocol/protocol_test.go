package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/wiki"
)

func f64(v float64) *float64 { return &v }

func i(v int) *int { return &v }

// TestValidate table-tests the one shared validation path.
func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		req     MatchRequest
		wantErr string // "" means valid
		check   func(t *testing.T, r Resolved)
	}{
		{
			name: "default pair",
			req:  MatchRequest{},
			check: func(t *testing.T, r Resolved) {
				if r.All || r.Pair != wiki.PtEn {
					t.Errorf("resolved %+v, want default pt-en", r)
				}
			},
		},
		{
			name: "vn alias",
			req:  MatchRequest{Pair: "vn-en"},
			check: func(t *testing.T, r Resolved) {
				if r.Pair != wiki.VnEn {
					t.Errorf("pair = %v", r.Pair)
				}
			},
		},
		{
			name: "colon pair with hyphenated codes",
			req:  MatchRequest{Pair: "zh-min-nan:en"},
			check: func(t *testing.T, r Resolved) {
				if r.Pair != (wiki.LanguagePair{A: "zh-min-nan", B: "en"}) {
					t.Errorf("pair = %v", r.Pair)
				}
			},
		},
		{
			name:    "multi-hyphen pair is ambiguous",
			req:     MatchRequest{Pair: "zh-min-nan-en"},
			wantErr: `ambiguous language pair "zh-min-nan-en": edition codes may contain hyphens, separate them with a colon (e.g. "zh-min-nan:en")`,
		},
		{
			name: "single type",
			req:  MatchRequest{Pair: "pt-en", Type: "filme"},
			check: func(t *testing.T, r Resolved) {
				if r.Type != "filme" {
					t.Errorf("type = %q", r.Type)
				}
			},
		},
		{
			name: "all defaults",
			req:  MatchRequest{All: true},
			check: func(t *testing.T, r Resolved) {
				// Hub stays empty here: multi.NewPlan resolves it against
				// the corpus's language set (DefaultHub).
				if r.Multi.Mode != multi.ModePivot || r.Multi.Hub != "" {
					t.Errorf("multi = %+v", r.Multi)
				}
			},
		},
		{
			name: "all direct with hub and workers",
			req:  MatchRequest{All: true, Mode: "direct", Hub: "pt", Workers: 3},
			check: func(t *testing.T, r Resolved) {
				if r.Multi.Mode != multi.ModeDirect || r.Multi.Hub != wiki.Portuguese || r.Multi.Workers != 3 {
					t.Errorf("multi = %+v", r.Multi)
				}
			},
		},
		{
			name: "threshold overrides pass through",
			req:  MatchRequest{TSim: f64(0.8), TLSI: f64(0.2), TEg: f64(0.3)},
			check: func(t *testing.T, r Resolved) {
				cfg := r.Overrides.Apply(core.DefaultConfig())
				if cfg.TSim != 0.8 || cfg.TLSI != 0.2 || cfg.TEg != 0.3 {
					t.Errorf("applied config = %+v", cfg)
				}
				// Artifact-shaping fields must be untouched.
				if cfg.LSIRank != core.DefaultConfig().LSIRank || cfg.NoDictionary || cfg.ExactSVD {
					t.Errorf("override leaked into artifact-shaping config: %+v", cfg)
				}
			},
		},
		{
			name: "scoring overrides pass through",
			req:  MatchRequest{Candidates: i(4), ExactScore: func() *bool { b := true; return &b }()},
			check: func(t *testing.T, r Resolved) {
				cfg := r.Overrides.Apply(core.DefaultConfig())
				if cfg.Candidates != 4 || !cfg.ExactScore {
					t.Errorf("applied config = %+v", cfg)
				}
				if cfg.LSIRank != core.DefaultConfig().LSIRank || cfg.NoDictionary || cfg.ExactSVD {
					t.Errorf("override leaked into artifact-shaping config: %+v", cfg)
				}
			},
		},
		{
			name: "candidates disable pruning",
			req:  MatchRequest{Candidates: i(-1)},
			check: func(t *testing.T, r Resolved) {
				if cfg := r.Overrides.Apply(core.DefaultConfig()); cfg.Candidates != -1 {
					t.Errorf("applied config = %+v", cfg)
				}
			},
		},
		{name: "bad pair", req: MatchRequest{Pair: "bogus"}, wantErr: `invalid language pair "bogus" (want e.g. "pt-en")`},
		{name: "bad mode", req: MatchRequest{All: true, Mode: "sideways"}, wantErr: `multi: unknown mode "sideways" (want "pivot" or "direct")`},
		{name: "bad hub", req: MatchRequest{All: true, Hub: "EN"}, wantErr: `invalid hub language "EN"`},
		{name: "bad workers", req: MatchRequest{All: true, Workers: -1}, wantErr: `invalid workers -1`},
		{name: "all with pair", req: MatchRequest{All: true, Pair: "pt-en"}, wantErr: `all-pairs request must not set pair (got "pt-en")`},
		{name: "all with type", req: MatchRequest{All: true, Type: "filme"}, wantErr: `all-pairs request must not set type (got "filme")`},
		{name: "pair with mode", req: MatchRequest{Pair: "pt-en", Mode: "pivot"}, wantErr: `mode, hub and workers apply only to all-pairs requests (set "all": true)`},
		{name: "pair with workers", req: MatchRequest{Workers: 2}, wantErr: `mode, hub and workers apply only to all-pairs requests (set "all": true)`},
		{name: "tsim too big", req: MatchRequest{TSim: f64(1.5)}, wantErr: `invalid tsim 1.5 (want a threshold in [0,1])`},
		{name: "teg negative", req: MatchRequest{TEg: f64(-0.1)}, wantErr: `invalid teg -0.1 (want a threshold in [0,1])`},
		{name: "candidates too negative", req: MatchRequest{Candidates: i(-2)}, wantErr: `invalid candidates -2 (want -1 to disable pruning, 0 for the default, or a positive shortlist width)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := c.req.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				if c.check != nil {
					c.check(t, r)
				}
				return
			}
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T), want *Error", err, err)
			}
			if pe.Code != CodeInvalidArgument {
				t.Errorf("code = %s, want %s", pe.Code, CodeInvalidArgument)
			}
			if pe.Message != c.wantErr {
				t.Errorf("message = %q, want %q", pe.Message, c.wantErr)
			}
		})
	}
}

// TestOverridesEmpty checks that an override-free request keeps the
// session's matcher (Empty drives that fast path).
func TestOverridesEmpty(t *testing.T) {
	if !(Overrides{}).Empty() {
		t.Error("zero Overrides not Empty")
	}
	if (Overrides{TSim: f64(0.5)}).Empty() {
		t.Error("set Overrides reported Empty")
	}
	if (Overrides{Candidates: i(8)}).Empty() {
		t.Error("candidates Overrides reported Empty")
	}
	cfg := core.DefaultConfig()
	if got := (Overrides{}).Apply(cfg); got != cfg {
		t.Errorf("empty Apply changed config: %+v", got)
	}
}

// TestErrorHTTPMapping checks both directions of the code↔status
// mapping and the retryability contract.
func TestErrorHTTPMapping(t *testing.T) {
	cases := []struct {
		code      string
		status    int
		retryable bool
	}{
		{CodeInvalidArgument, http.StatusBadRequest, false},
		{CodeNotFound, http.StatusNotFound, false},
		{CodeMethodNotAllowed, http.StatusMethodNotAllowed, false},
		{CodePayloadTooLarge, http.StatusRequestEntityTooLarge, false},
		{CodeOverloaded, http.StatusTooManyRequests, true},
		{CodeUnavailable, http.StatusServiceUnavailable, true},
		{CodeDeadlineExceeded, http.StatusGatewayTimeout, true},
		{CodeInternal, http.StatusInternalServerError, false},
	}
	for _, c := range cases {
		e := Errorf(c.code, "x")
		if got := e.HTTPStatus(); got != c.status {
			t.Errorf("%s: status %d, want %d", c.code, got, c.status)
		}
		if e.Retryable != c.retryable {
			t.Errorf("%s: retryable %v, want %v", c.code, e.Retryable, c.retryable)
		}
		if got := CodeForStatus(c.status); got != c.code {
			t.Errorf("CodeForStatus(%d) = %s, want %s", c.status, got, c.code)
		}
	}
	if got := CodeForStatus(http.StatusTeapot); got != CodeInternal {
		t.Errorf("unknown status mapped to %s", got)
	}
	// CodeCanceled shares 503 with CodeUnavailable on the way out; the
	// reverse mapping prefers unavailable (see CodeForStatus).
	e := Errorf(CodeCanceled, "x")
	if got := e.HTTPStatus(); got != http.StatusServiceUnavailable {
		t.Errorf("canceled: status %d, want 503", got)
	}
	if !e.Retryable {
		t.Error("canceled not retryable")
	}
}

// TestFromErr covers the error coercion rules.
func TestFromErr(t *testing.T) {
	orig := Errorf(CodeNotFound, "gone")
	if got := FromErr(orig); got != orig {
		t.Error("FromErr did not pass *Error through")
	}
	if got := FromErr(context.Canceled); got.Code != CodeCanceled || !got.Retryable {
		t.Errorf("canceled → %+v", got)
	}
	if got := FromErr(context.DeadlineExceeded); got.Code != CodeDeadlineExceeded {
		t.Errorf("deadline → %+v", got)
	}
	if got := FromErr(errors.New("boom")); got.Code != CodeInternal || got.Message != "boom" {
		t.Errorf("opaque → %+v", got)
	}
}

// TestErrorEnvelopeRoundTrip checks the wire shape is stable through
// JSON, details included.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	e := Errorf(CodeOverloaded, "full").WithDetail("retryAfter", "1")
	raw, err := json.Marshal(ErrorEnvelope{Error: e})
	if err != nil {
		t.Fatal(err)
	}
	var back ErrorEnvelope
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Error.Code != CodeOverloaded || !back.Error.Retryable || back.Error.Details["retryAfter"] != "1" {
		t.Errorf("round-tripped envelope = %+v", back.Error)
	}
	// WithDetail must not mutate the receiver.
	if len(Errorf(CodeOverloaded, "full").Details) != 0 {
		t.Error("Errorf produced details")
	}
}

// TestMatchRequestJSONRoundTrip pins the request wire shape: optional
// fields are omitted, pointers survive.
func TestMatchRequestJSONRoundTrip(t *testing.T) {
	raw, err := json.Marshal(MatchRequest{Pair: "pt-en"})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"pair":"pt-en"}` {
		t.Errorf("minimal request marshals to %s", raw)
	}
	full := MatchRequest{All: true, Mode: "direct", Hub: "en", Workers: 2, TSim: f64(0.7)}
	raw, err = json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	var back MatchRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !back.All || back.Mode != "direct" || back.TSim == nil || *back.TSim != 0.7 {
		t.Errorf("round-tripped request = %+v", back)
	}
}

// TestMatchAllResponsePlan reconstructs a plan from the wire response.
func TestMatchAllResponsePlan(t *testing.T) {
	resp := MatchAllResponse{Mode: "pivot", Hub: "en", Planned: []string{"pt-en", "vi-en"}}
	plan, err := resp.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != multi.ModePivot || plan.Hub != wiki.English || len(plan.Pairs) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if !plan.Contains(wiki.Portuguese, wiki.English) || plan.Contains(wiki.Portuguese, wiki.Vietnamese) {
		t.Error("plan membership wrong")
	}
	if _, err := (&MatchAllResponse{Mode: "bogus"}).Plan(); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := (&MatchAllResponse{Mode: "pivot", Hub: "en", Planned: []string{"xx"}}).Plan(); err == nil {
		t.Error("bad planned pair accepted")
	}
}

// TestMatchResponseResult checks the wire→core reconstruction the
// router's scatter-gather path rests on: a MatchResponse round-trips
// into a core.Result that preserves the type alignment, the cross sets
// and the exact float64 confidences.
func TestMatchResponseResult(t *testing.T) {
	resp := &MatchResponse{
		Pair:  "pt-en",
		Types: [][2]string{{"cidade", "city"}, {"filme", "film"}},
		Results: []TypeResult{
			{
				TypeA: "cidade", TypeB: "city",
				Correspondences: []Correspondence{
					{A: "nome", B: "name", Confidence: 0.9381695036041293},
					{A: "área", B: "area", Confidence: 0.5935862876098503},
				},
			},
			{TypeA: "filme", TypeB: "film"},
		},
	}
	res, err := resp.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pair != wiki.PtEn {
		t.Errorf("pair = %v", res.Pair)
	}
	if len(res.Types) != 2 || res.Types[0] != [2]string{"cidade", "city"} {
		t.Errorf("types = %v", res.Types)
	}
	tr := res.PerType[[2]string{"cidade", "city"}]
	if tr == nil {
		t.Fatal("missing reconstructed type result")
	}
	if !tr.Cross["nome"]["name"] || !tr.Cross["área"]["area"] {
		t.Errorf("cross = %v", tr.Cross)
	}
	if got := tr.Confidence("nome", "name"); got != 0.9381695036041293 {
		t.Errorf("confidence = %v (want the exact wire float)", got)
	}
	if got := tr.Confidence("nome", "missing"); got != 0 {
		t.Errorf("absent pair confidence = %v", got)
	}
	if empty := res.PerType[[2]string{"filme", "film"}]; empty == nil || len(empty.Cross) != 0 {
		t.Errorf("empty type result = %+v", empty)
	}
	if _, err := (&MatchResponse{Pair: "bogus"}).Result(); err == nil {
		t.Error("invalid pair accepted")
	}
}
